(* Benchmark harness: regenerates every table of the two papers.

   ACE (DAC 1983):
     Table 5-1 — performance on seven chips (linearity in box count)
     Table 5-2 — ACE vs Partlist (raster) vs Cifplot (flat, non-incremental)
     §5 coarse time distribution over the extraction phases
   HEXT (1982):
     Table 4-1 — ideal square arrays: HEXT O(√N) vs flat O(N)
     Table 5-1 — HEXT front/back/total vs flat ACE per chip
     Table 5-2 — calls to flat extractor vs compose; % time composing

   Absolute numbers come from this machine, not a VAX-11/780; the tables
   reproduce the paper's *shape*: who wins, by what factor, and how cost
   scales.  `--scale` shrinks the chips (default 0.15 of the paper's device
   counts); `--full` uses the paper's sizes.  One Bechamel Test.make per
   table runs under `--bechamel`. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let mmss seconds =
  let total = int_of_float (seconds *. 100.0) in
  Printf.sprintf "%d:%05.2f" (total / 6000) (float_of_int (total mod 6000) /. 100.0)

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let build_suite scale =
  List.map
    (fun (r : Ace_workloads.Chips.recipe) ->
      let design, gen_time = time (fun () -> r.build ~scale) in
      (r, design, gen_time))
    Ace_workloads.Chips.paper_suite

(* ------------------------------------------------------------------ *)
(* ACE Table 5-1                                                        *)
(* ------------------------------------------------------------------ *)

let ace_table_5_1 suite =
  header "ACE Table 5-1: Performance (flat edge-based extraction)";
  Printf.printf "%-10s %9s %9s %10s %10s %11s\n" "Name" "Devices"
    "Boxes(k)" "Time" "Devs/sec" "Boxes/sec";
  let rates = ref [] in
  List.iter
    (fun ((r : Ace_workloads.Chips.recipe), design, _) ->
      let (circuit, _stats), elapsed =
        time (fun () -> Ace_core.Extractor.extract_with_stats design)
      in
      let devices = Ace_netlist.Circuit.device_count circuit in
      let boxes = Ace_cif.Design.count_boxes design in
      let box_rate = float_of_int boxes /. elapsed in
      rates := box_rate :: !rates;
      Printf.printf "%-10s %9d %9.1f %10s %10.0f %11.0f\n" r.chip_name devices
        (float_of_int boxes /. 1000.0)
        (mmss elapsed)
        (float_of_int devices /. elapsed)
        box_rate)
    suite;
  let mx = List.fold_left max 0.0 !rates
  and mn = List.fold_left min infinity !rates in
  let boxes (_, d, _) = float_of_int (Ace_cif.Design.count_boxes d) in
  let all = List.map boxes suite in
  Printf.printf
    "shape check: boxes/sec varies only %.1fx across a %.0fx size range — \
     run time is linear in N, as the paper reports\n"
    (mx /. mn)
    (List.fold_left max 0.0 all /. List.fold_left min infinity all)

(* ------------------------------------------------------------------ *)
(* ACE Table 5-2                                                        *)
(* ------------------------------------------------------------------ *)

(* The paper's "-" cells: Partlist was not run on riscb, Cifplot on neither
   testram nor riscb. *)
let partlist_skips = [ "riscb" ]
let cifplot_skips = [ "testram"; "riscb" ]

let ace_table_5_2 suite =
  header "ACE Table 5-2: Comparison with Partlist (raster) and Cifplot";
  Printf.printf "%-10s %9s | %10s %12s %12s\n" "chip" "devices" "ACE"
    "Partlist" "Cifplot";
  List.iter
    (fun ((r : Ace_workloads.Chips.recipe), design, _) ->
      if
        List.exists
          (fun (c : Ace_workloads.Chips.recipe) -> c.chip_name = r.chip_name)
          Ace_workloads.Chips.comparison_suite
      then begin
        let circuit, t_ace = time (fun () -> Ace_core.Extractor.extract design) in
        let raster =
          if not (List.mem r.chip_name partlist_skips) then
            let _, t = time (fun () -> Ace_baseline.Raster.extract ~grid:250 design) in
            mmss t
          else "-"
        in
        let region =
          if not (List.mem r.chip_name cifplot_skips) then
            let _, t = time (fun () -> Ace_baseline.Region.extract design) in
            mmss t
          else "-"
        in
        Printf.printf "%-10s %9d | %10s %12s %12s\n" r.chip_name
          (Ace_netlist.Circuit.device_count circuit)
          (mmss t_ace) raster region
      end)
    suite;
  print_endline
    "shape check: ACE leads both, and Cifplot's gap grows with chip size";
  print_endline
    "(Partlist pays per grid square; Cifplot rescans all boxes per stop)"

(* ------------------------------------------------------------------ *)
(* ACE §5 time distribution                                             *)
(* ------------------------------------------------------------------ *)

let ace_time_distribution suite =
  header "ACE §5: Coarse distribution of time over the extraction algorithm";
  (* the paper measured this on full chips; use the largest suite entry *)
  let _, design, _ =
    List.fold_left
      (fun ((_, best, _) as acc) ((_, d, _) as entry) ->
        if Ace_cif.Design.count_boxes d > Ace_cif.Design.count_boxes best then
          entry
        else acc)
      (List.hd suite) suite
  in
  (* the paper's pipeline starts from CIF text: include parsing in the
     front-end phase by round-tripping the design through its CIF form *)
  let text = Ace_cif.Writer.to_string (Ace_cif.Design.ast design) in
  let design, t_parse =
    time (fun () -> Ace_cif.Design.of_ast (Ace_cif.Parser.parse_string text))
  in
  let _, stats = Ace_core.Extractor.extract_with_stats design in
  Ace_core.Timing.add stats.Ace_core.Extractor.timing
    Ace_core.Timing.Front_end t_parse;
  let dist = Ace_core.Timing.distribution stats.Ace_core.Extractor.timing in
  (* the paper's §5 percentages; Stitch is ours (parallel runs only) and
     stays silent in a flat distribution table *)
  let paper = function
    | Ace_core.Timing.Front_end -> Some 40.0
    | Ace_core.Timing.List_update -> Some 15.0
    | Ace_core.Timing.Devices -> Some 20.0
    | Ace_core.Timing.Output -> Some 10.0
    | Ace_core.Timing.Stitch -> None
  in
  List.iter
    (fun (phase, pct) ->
      match paper phase with
      | Some paper_pct ->
          Printf.printf "  %4.0f%%  (paper: %2.0f%%)  %s\n" pct paper_pct
            (Ace_core.Timing.phase_name phase)
      | None -> ())
    dist;
  print_endline "  (the paper's remaining 15% is 'miscellaneous')"

(* ------------------------------------------------------------------ *)
(* ACE §4 model check                                                   *)
(* ------------------------------------------------------------------ *)

let ace_model_check () =
  header "ACE §4: expected-time model — scanline population and stops vs sqrt N";
  Printf.printf "%-12s %9s %10s %9s %12s %9s\n" "mesh" "boxes"
    "max-active" "stops" "active/sqrtN" "stops/sqrtN";
  List.iter
    (fun n ->
      let design =
        Ace_cif.Design.of_ast (Ace_workloads.Arrays.mesh ~rows:n ~cols:n ())
      in
      let _, stats = Ace_core.Extractor.extract_with_stats design in
      let sqrt_n = sqrt (float_of_int stats.Ace_core.Extractor.boxes) in
      Printf.printf "%-12s %9d %10d %9d %12.2f %9.2f\n"
        (Printf.sprintf "%dx%d" n n)
        stats.boxes stats.max_active stats.stops
        (float_of_int stats.max_active /. sqrt_n)
        (float_of_int stats.stops /. sqrt_n))
    [ 16; 32; 64; 128 ];
  print_endline
    "shape check: both ratios stay constant as N grows 64x — the O(sqrt N)\n\
    \  scanline population and stop count the linear-time argument rests on";
  print_endline "\nworkload statistics (Bentley/Haken/Hon-style):";
  List.iter
    (fun (r : Ace_workloads.Chips.recipe) ->
      let design = r.build ~scale:0.05 in
      Format.printf "  %-10s %a@." r.chip_name Ace_cif.Stats.pp
        (Ace_cif.Stats.of_design design))
    Ace_workloads.Chips.paper_suite

(* ------------------------------------------------------------------ *)
(* HEXT Table 4-1                                                       *)
(* ------------------------------------------------------------------ *)

let hext_table_4_1 ~full () =
  header "HEXT Table 4-1: Ideal case — square arrays of one-transistor cells";
  let sizes = [ 1; 1024; 4096; 16384; 65536 ] @ if full then [ 262144 ] else [] in
  (* k = initialization + extracting one cell *)
  let k =
    let d = Ace_cif.Design.of_ast (Ace_workloads.Arrays.square_array_tree ~cells:1 ()) in
    snd (time (fun () -> Ace_hext.Hext.extract d))
  in
  Printf.printf "%-14s %12s %12s %14s %10s\n" "N (cells)" "HEXT(s)"
    "HEXT-k(s)" "flat(s)" "composes";
  List.iter
    (fun n ->
      let design =
        Ace_cif.Design.of_ast (Ace_workloads.Arrays.square_array_tree ~cells:n ())
      in
      let (_, stats), t_hext = time (fun () -> Ace_hext.Hext.extract design) in
      let _, t_flat = time (fun () -> Ace_core.Extractor.extract design) in
      Printf.printf "%-14d %12.4f %12.4f %14.4f %10d\n" n t_hext
        (max 0.0 (t_hext -. k))
        t_flat stats.Ace_hext.Hext.compose_calls)
    sizes;
  print_endline
    "shape check: each 4x in N roughly doubles HEXT-k (O(sqrt N)) while the \
     flat extractor quadruples (O(N)) — the paper's 1.6/3.2/6.8/12.7 column"

(* ------------------------------------------------------------------ *)
(* HEXT Tables 5-1 and 5-2                                              *)
(* ------------------------------------------------------------------ *)

let hext_tables_5 suite =
  header "HEXT Table 5-1: HEXT vs flat ACE per chip";
  Printf.printf "%-10s %9s | %11s %11s %11s | %11s\n" "chip" "devices"
    "front-end" "back-end" "HEXT total" "ACE flat";
  let per_chip =
    List.map
      (fun ((r : Ace_workloads.Chips.recipe), design, _) ->
        let (hier, stats), t_hext = time (fun () -> Ace_hext.Hext.extract design) in
        let circuit, t_flat = time (fun () -> Ace_core.Extractor.extract design) in
        let devices = Ace_netlist.Circuit.device_count circuit in
        ignore hier;
        Printf.printf "%-10s %9d | %11s %11s %11s | %11s\n" r.chip_name devices
          (mmss stats.Ace_hext.Hext.front_end_seconds)
          (mmss (Ace_hext.Hext.back_end_seconds stats))
          (mmss t_hext) (mmss t_flat);
        (r, stats, devices))
      suite
  in
  print_endline
    "shape check: HEXT wins big on the regular chips (testram, riscb) and \
     loses on the irregular ones (cherry, schip2, psc) — the paper's split";
  header "HEXT Table 5-2: Analysis of the back-end";
  Printf.printf "%-10s %9s %10s %10s | %10s %10s %8s\n" "chip" "devices"
    "flat-calls" "composes" "back-end" "compose" "%compose";
  let fracs =
    List.map
      (fun ((r : Ace_workloads.Chips.recipe), stats, devices) ->
        let frac = Ace_hext.Hext.compose_fraction stats in
        Printf.printf "%-10s %9d %10d %10d | %10s %10s %7.0f%%\n" r.chip_name
          devices stats.Ace_hext.Hext.leaf_extractions stats.compose_calls
          (mmss (Ace_hext.Hext.back_end_seconds stats))
          (mmss stats.compose_seconds) (100.0 *. frac);
        frac)
      per_chip
  in
  Printf.printf
    "shape check: composing averages %.0f%% of back-end time (paper: 72%%) — \
     'it is more important to optimize the compose routine'\n"
    (100.0 *. (List.fold_left ( +. ) 0.0 fracs /. float_of_int (List.length fracs)))

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let diagonal_chip n =
  (* polygons and wires with sloped edges: exercises the non-manhattan
     approximation of the front-end *)
  let elements =
    List.concat
      (List.init n (fun i ->
           let x = i * 3000 in
           [
             Ace_cif.Ast.Shape
               {
                 layer = "NM";
                 shape =
                   Ace_cif.Ast.Polygon
                     [ Ace_geom.Point.make x 0; Ace_geom.Point.make (x + 2000) 0;
                       Ace_geom.Point.make (x + 1000) 1750 ];
               };
             Ace_cif.Ast.Shape
               {
                 layer = "NP";
                 shape =
                   Ace_cif.Ast.Wire
                     {
                       width = 250;
                       path =
                         [ Ace_geom.Point.make x 2000;
                           Ace_geom.Point.make (x + 1500) 3500;
                           Ace_geom.Point.make (x + 2500) 3500 ];
                     };
               };
           ]))
  in
  { Ace_cif.Ast.symbols = []; top_level = elements }

let ablations scale =
  header "Ablation: lazy front-end vs full instantiation before sorting";
  let r = List.nth Ace_workloads.Chips.paper_suite 3 (* testram *) in
  let design = r.build ~scale in
  let _, t_lazy = time (fun () -> Ace_core.Extractor.extract design) in
  let boxes, t_flatten = time (fun () -> Ace_cif.Flatten.flatten design) in
  let _, t_eager = time (fun () -> Ace_core.Extractor.extract_boxes boxes) in
  Printf.printf
    "  lazy stream: %s | flatten-then-extract: %s (+%s just to flatten)\n"
    (mmss t_lazy)
    (mmss (t_flatten +. t_eager))
    (mmss t_flatten);
  print_endline
    "  (the lazy front-end also never holds the full chip in memory)";

  header "Ablation: HEXT redundant-window and compose memoization";
  List.iter
    (fun (label, design) ->
      let (_, s_on), t_on = time (fun () -> Ace_hext.Hext.extract design) in
      let (_, s_off), t_off =
        time (fun () -> Ace_hext.Hext.extract ~memoize:false design)
      in
      Printf.printf
        "  %-16s on: %s (%d leafs, %d composes) | off: %s (%d leafs, %d composes)\n"
        label (mmss t_on) s_on.Ace_hext.Hext.leaf_extractions
        s_on.Ace_hext.Hext.compose_calls (mmss t_off)
        s_off.Ace_hext.Hext.leaf_extractions s_off.Ace_hext.Hext.compose_calls)
    [
      ( "mesh 48x48",
        Ace_cif.Design.of_ast (Ace_workloads.Arrays.mesh ~rows:48 ~cols:48 ()) );
      ( "random 150",
        Ace_cif.Design.of_ast
          (Ace_workloads.Chips.random_logic ~cells:150 ~seed:3 ()) );
    ];

  header "Ablation: leaf window size (HEXT front-end/back-end trade-off)";
  let design =
    Ace_cif.Design.of_ast (Ace_workloads.Chips.random_logic ~cells:200 ~seed:4 ())
  in
  List.iter
    (fun leaf_limit ->
      let (_, s), t =
        time (fun () -> Ace_hext.Hext.extract ~leaf_limit design)
      in
      Printf.printf "  leaf_limit %5d: %s (%d leafs, %d composes)\n" leaf_limit
        (mmss t) s.Ace_hext.Hext.leaf_extractions s.Ace_hext.Hext.compose_calls)
    [ 2; 4; 8; 32; 512 ];
  print_endline
    "  (HEXT §5: beyond a point, more front-end effort stops paying off)";

  header "Extension: incremental re-extraction through a persistent cache";
  (* ACE §6: "the edge-based algorithms are well suited for hierarchical
     and incremental extractors".  Extract, edit one cell, re-extract. *)
  let base = Ace_workloads.Chips.random_logic ~cells:300 ~seed:8 () in
  let edited =
    {
      base with
      Ace_cif.Ast.top_level =
        base.Ace_cif.Ast.top_level
        @ [
            Ace_cif.Ast.Shape
              {
                layer = "NM";
                shape =
                  Ace_cif.Ast.Box
                    {
                      length = 500;
                      width = 750;
                      center = Ace_geom.Point.make 1250 5375;
                      direction = None;
                    };
              };
          ];
    }
  in
  let cache = Ace_hext.Hext.create_cache () in
  let (_, s_cold), t_cold =
    time (fun () -> Ace_hext.Hext.extract ~cache (Ace_cif.Design.of_ast base))
  in
  let (_, s_warm), t_warm =
    time (fun () -> Ace_hext.Hext.extract ~cache (Ace_cif.Design.of_ast edited))
  in
  Printf.printf
    "  cold: %s (%d leafs, %d composes) | after editing one cell: %s (%d \
     leafs, %d composes)\n"
    (mmss t_cold) s_cold.Ace_hext.Hext.leaf_extractions
    s_cold.Ace_hext.Hext.compose_calls (mmss t_warm)
    s_warm.Ace_hext.Hext.leaf_extractions s_warm.Ace_hext.Hext.compose_calls;
  Printf.printf "  re-extraction is %.0fx cheaper in back-end work\n"
    (float_of_int (s_cold.Ace_hext.Hext.leaf_extractions
                   + s_cold.Ace_hext.Hext.compose_calls)
    /. float_of_int
         (max 1
            (s_warm.Ace_hext.Hext.leaf_extractions
            + s_warm.Ace_hext.Hext.compose_calls)));

  header "Ablation: non-manhattan approximation quantum";
  List.iter
    (fun quantum ->
      let design = Ace_cif.Design.of_ast ~quantum (diagonal_chip 120) in
      let (c, _), t =
        time (fun () -> Ace_core.Extractor.extract_with_stats design)
      in
      Printf.printf "  quantum %4d: %6d boxes, %d nets, extract %s\n" quantum
        (Ace_cif.Design.count_boxes design)
        (Ace_netlist.Circuit.net_count c)
        (mmss t))
    [ 500; 250; 125; 50 ];
  print_endline
    "  (finer quanta approximate sloped geometry better at more boxes)"

(* ------------------------------------------------------------------ *)
(* Parallel sharded extraction + BENCH_extract.json                     *)
(* ------------------------------------------------------------------ *)

(* Minimal JSON writer (the repo's convention: no JSON dependency). *)
let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let json_obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields) ^ "}"

let json_arr items = "[" ^ String.concat "," items ^ "]"
let json_float f = Printf.sprintf "%.6f" f

let json_phases (t : Ace_core.Timing.t) =
  json_obj
    (List.map
       (fun p ->
         (Ace_core.Timing.phase_slug p, json_float (Ace_core.Timing.seconds t p)))
       Ace_core.Timing.all_phases)

let json_counters counters =
  json_obj
    (List.map
       (fun (c, v) -> (Ace_trace.Trace.Counter.slug c, string_of_int v))
       counters)

let json_shard (s : Ace_core.Parallel.shard) =
  json_obj
    [
      ("l", string_of_int s.s_window.Ace_geom.Box.l);
      ("r", string_of_int s.s_window.Ace_geom.Box.r);
      ("boxes", string_of_int s.s_boxes);
      ("stops", string_of_int s.s_stops);
      ("max_active", string_of_int s.s_max_active);
      ("devices", string_of_int s.s_devices);
      ("partial_devices", string_of_int s.s_partials);
      ("seconds", json_float s.s_seconds);
      ("phases", json_phases s.s_timing);
      ( "counters",
        json_counters
          (List.map
             (fun c ->
               (c, s.s_counters.(Ace_trace.Trace.Counter.index c)))
             Ace_trace.Trace.Counter.all) );
    ]

(* Per-run counter contributions: the tracer's counters are cumulative
   across the whole process, so a run's own numbers are the delta. *)
let counter_deltas f =
  let before = Ace_trace.Trace.counter_totals () in
  let r = f () in
  let after = Ace_trace.Trace.counter_totals () in
  (r, List.map2 (fun (c, a) (_, b) -> (c, a - b)) after before)

(* The 2-D grid with the same tile count as -j N strips, as square as N's
   divisors allow: the tiled-vs-strip comparison holds work constant and
   varies only the partition shape. *)
let tile_grid jobs =
  let r = ref 1 in
  for d = 1 to jobs do
    if jobs mod d = 0 && d * d <= jobs then r := d
  done;
  (jobs / !r, !r)

let bench_extract suite ~jobs ~scale ~reps =
  let tcols, trows = tile_grid jobs in
  header
    (Printf.sprintf
       "Parallel tiled extraction: -j %d strips and %dx%d tiles vs flat -j 1"
       jobs tcols trows);
  Printf.printf "%-10s %9s %9s %10s %10s %10s %8s %9s %8s\n" "Name" "Devices"
    "Boxes(k)" "j1"
    (Printf.sprintf "j%d" jobs)
    (Printf.sprintf "%dx%d" tcols trows)
    "speedup" "stitch" "balance";
  let cores = Domain.recommended_domain_count () in
  let chips =
    List.map
      (fun ((r : Ace_workloads.Chips.recipe), design, _) ->
        let ((c1, s1), t1), counters =
          counter_deltas (fun () ->
              time (fun () ->
                  Ace_core.Parallel.extract_with_stats ~jobs:1 design))
        in
        (* best-of-reps: the minimum wall is the standard noise-robust
           estimator, and what the regression gate compares *)
        let t1 = ref t1 in
        for _ = 2 to reps do
          let _, t =
            time (fun () -> Ace_core.Parallel.extract_with_stats ~jobs:1 design)
          in
          if t < !t1 then t1 := t
        done;
        let t1 = !t1 in
        let (cn, sn), tn =
          time (fun () -> Ace_core.Parallel.extract_with_stats ~jobs design)
        in
        let tn = ref tn in
        for _ = 2 to reps do
          let _, t =
            time (fun () -> Ace_core.Parallel.extract_with_stats ~jobs design)
          in
          if t < !tn then tn := t
        done;
        let tn = !tn in
        let (ct, st), tt =
          time (fun () ->
              Ace_core.Parallel.extract_with_stats ~jobs
                ~tile:(tcols, trows) design)
        in
        let tt = ref tt in
        for _ = 2 to reps do
          let _, t =
            time (fun () ->
                Ace_core.Parallel.extract_with_stats ~jobs
                  ~tile:(tcols, trows) design)
          in
          if t < !tt then tt := t
        done;
        let tt = !tt in
        ignore ct;
        (* With fewer cores than jobs the OS timeslices the domains, so
           every spawned shard's wall clock spans the whole run and tells
           us nothing.  Re-run the same shards sequentially to get
           uncontended per-shard times for the concurrency projection. *)
        let proj =
          if cores >= jobs then sn
          else
            snd
              (Ace_core.Parallel.extract_with_stats ~sequential:true ~jobs
                 design)
        in
        let projt =
          if cores >= jobs then st
          else
            snd
              (Ace_core.Parallel.extract_with_stats ~sequential:true ~jobs
                 ~tile:(tcols, trows) design)
        in
        let devices = Ace_netlist.Circuit.device_count c1 in
        if Ace_netlist.Circuit.device_count cn <> devices then
          Printf.printf
            "  WARNING %s: -j %d found %d devices, flat found %d\n" r.chip_name
            jobs
            (Ace_netlist.Circuit.device_count cn)
            devices;
        let speedup = if tn > 0.0 then t1 /. tn else 0.0 in
        Printf.printf "%-10s %9d %9.1f %10s %10s %10s %7.2fx %9s %8.2f\n"
          r.chip_name devices
          (float_of_int s1.Ace_core.Parallel.boxes /. 1000.0)
          (mmss t1) (mmss tn) (mmss tt) speedup
          (mmss sn.Ace_core.Parallel.stitch_seconds)
          (Ace_core.Parallel.balance proj);
        (r.chip_name, devices, s1, sn, proj, t1, tn, counters, st, projt, tt))
      suite
  in
  (* On a machine with < jobs cores the measured wall time cannot show the
     parallel win.  From the uncontended sequential shard times, slowest
     shard + stitch is the projected -jN wall time with >= jobs cores.
     Both numbers go into the JSON, clearly labelled. *)
  let projected_wall (sn : Ace_core.Parallel.stats) =
    List.fold_left (fun a (s : Ace_core.Parallel.shard) -> max a s.s_seconds)
      0.0 sn.Ace_core.Parallel.shards
    +. sn.Ace_core.Parallel.stitch_seconds
  in
  (match
     List.fold_left
       (fun best ((_, _, s1, _, _, _, _, _, _, _, _) as c) ->
         match best with
         | Some (_, _, bs1, _, _, _, _, _, _, _, _)
           when bs1.Ace_core.Parallel.boxes >= s1.Ace_core.Parallel.boxes ->
             best
         | _ -> Some c)
       None chips
   with
  | Some (name, _, _, _, proj, t1, tn, _, _, _, _) when tn > 0.0 ->
      if cores >= jobs then
        Printf.printf
          "shape check: largest chip (%s) speeds up %.2fx at -j %d — the \
           scan phases parallelize, the per-shard front-end overlaps in \
           wall clock\n"
          name (t1 /. tn) jobs
      else
        Printf.printf
          "shape check: largest chip (%s): measured %.2fx (only %d core(s) — \
           the domains timeslice); slowest-shard + stitch projects %.2fx \
           with >= %d cores\n"
          name (t1 /. tn) cores
          (if projected_wall proj > 0.0 then t1 /. projected_wall proj else 0.0)
          jobs
  | _ -> ());
  let fields =
      [
        ("schema", json_string "ace-bench-extract/4");
        ("generator", json_string "bench/main.exe --table extract");
        ("scale", json_float scale);
        ("jobs", string_of_int jobs);
        ("tile", json_string (Printf.sprintf "%dx%d" tcols trows));
        ("cores", string_of_int cores);
        ( "chips",
          json_arr
            (List.map
               (fun ( name,
                      devices,
                      s1,
                      (sn : Ace_core.Parallel.stats),
                      (proj : Ace_core.Parallel.stats),
                      t1,
                      tn,
                      counters,
                      (st : Ace_core.Parallel.stats),
                      (projt : Ace_core.Parallel.stats),
                      tt ) ->
                 json_obj
                   [
                     ("chip", json_string name);
                     ("devices", string_of_int devices);
                     ("boxes", string_of_int s1.Ace_core.Parallel.boxes);
                     ("stops_j1", string_of_int s1.Ace_core.Parallel.stops);
                     ( "max_active_j1",
                       string_of_int s1.Ace_core.Parallel.max_active );
                     ("wall_j1_seconds", json_float t1);
                     ( "devices_phase_j1_seconds",
                       json_float
                         (Ace_core.Timing.seconds s1.Ace_core.Parallel.timing
                            Ace_core.Timing.Devices) );
                     ( "wall_jn_seconds", json_float tn);
                     ("wall_tiled_seconds", json_float tt);
                     ("speedup", json_float (if tn > 0.0 then t1 /. tn else 0.0));
                     ( "tiled_speedup",
                       json_float (if tt > 0.0 then t1 /. tt else 0.0) );
                     ( "projected_wall_jn_seconds",
                       json_float (projected_wall proj) );
                     ( "projected_wall_tiled_seconds",
                       json_float (projected_wall projt) );
                     ( "tiled_stitch_seconds",
                       json_float st.Ace_core.Parallel.stitch_seconds );
                     ( "projected_speedup",
                       json_float
                         (if projected_wall proj > 0.0 then
                            t1 /. projected_wall proj
                          else 0.0) );
                     ( "stitch_seconds",
                       json_float sn.Ace_core.Parallel.stitch_seconds );
                     ("balance", json_float (Ace_core.Parallel.balance proj));
                     ("phases_j1", json_phases s1.Ace_core.Parallel.timing);
                     ("phases_jn", json_phases sn.Ace_core.Parallel.timing);
                     ("counters_j1", json_counters counters);
                     ( "shards",
                       json_arr
                         (List.map json_shard proj.Ace_core.Parallel.shards) );
                   ])
               chips) );
      ]
  in
  fields

(* Assemble the telemetry file from whichever tables ran: the extract
   table contributes the headline fields, the lvs and serve tables hang
   their rows off optional top-level arrays so old /2 baselines still
   gate the extract numbers. *)
let write_bench_json ~json_path ~extract_fields ~lvs_rows ~serve_rows =
  let fields =
    extract_fields
    @ (match lvs_rows with Some rows -> [ ("lvs", rows) ] | None -> [])
    @ match serve_rows with Some rows -> [ ("serve", rows) ] | None -> []
  in
  let oc = open_out json_path in
  output_string oc (json_obj fields);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" json_path

(* ------------------------------------------------------------------ *)
(* Trace overhead: extraction with recording off vs on                  *)
(* ------------------------------------------------------------------ *)

(* The tracer's hot path must be near-free when no session is recording:
   [Trace.with_span] reduces to one Atomic.get, [Trace.timed] to the two
   clock reads Timing needed anyway.  This smoke table measures the same
   flat extraction with recording off and on and prints the ratio, so a
   regression that puts allocation or locking on the disabled path shows
   up as a large "off" delta in bench output. *)
let bench_trace_overhead suite =
  header "Trace overhead: identical extraction, recording off vs on";
  let module Trace = Ace_trace.Trace in
  let reps = 3 in
  Printf.printf "%-10s %12s %12s %9s %10s\n" "Name" "off (s)" "on (s)"
    "on/off" "events";
  List.iter
    (fun ((r : Ace_workloads.Chips.recipe), design, _) ->
      (* warm caches so the first timed run is not penalised *)
      ignore (Ace_core.Extractor.extract design);
      let run () =
        for _ = 1 to reps do
          ignore (Ace_core.Extractor.extract design)
        done
      in
      let (), t_off = time run in
      Trace.start ();
      let (), t_on = time run in
      let session = Trace.stop () in
      let events =
        List.fold_left
          (fun a (t : Trace.track) -> a + Array.length t.t_events)
          0 session.tracks
      in
      Printf.printf "%-10s %12.4f %12.4f %8.2fx %10d\n" r.chip_name
        (t_off /. float_of_int reps)
        (t_on /. float_of_int reps)
        (if t_off > 0.0 then t_on /. t_off else 0.0)
        events)
    suite

(* ------------------------------------------------------------------ *)
(* aced request latency: cold compute vs warm cache hit                 *)
(* ------------------------------------------------------------------ *)

(* Drives the daemon's request handler in-process (no socket, no
   subprocess) so the table isolates what the persistent cache buys: a
   cold extract request parses, extracts and stores; a warm one reads
   the entry back, checksums it and splices the payload bytes.  The
   cold/warm ratio is the headline number for editor-integration
   latency. *)
let bench_serve suite =
  header "aced request latency: cold extract vs warm cache hit";
  let module Serve = Ace_serve.Server in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "aced-bench-%d" (Unix.getpid ()))
  in
  let cache =
    match Ace_serve.Cache.open_dir ~faults:(Ace_serve.Faults.none ()) dir with
    | Ok c -> c
    | Error m -> failwith m
  in
  let t = Serve.create (Serve.config ~cache ()) in
  let reps = 5 in
  Printf.printf "%-10s %12s %12s %10s\n" "Name" "cold (ms)" "warm (ms)"
    "cold/warm";
  let rows =
    List.map
      (fun ((r : Ace_workloads.Chips.recipe), design, _) ->
        let cif = Ace_cif.Writer.to_string (Ace_cif.Design.ast design) in
        let req =
          Ace_serve.Proto.obj
            [
              ("id", Ace_serve.Proto.str r.chip_name);
              ("op", Ace_serve.Proto.str "extract");
              ("cif", Ace_serve.Proto.str cif);
            ]
        in
        let (), t_cold = time (fun () -> ignore (Serve.handle_line t req)) in
        let (), t_warm =
          time (fun () ->
              for _ = 1 to reps do
                ignore (Serve.handle_line t req)
              done)
        in
        let t_warm = t_warm /. float_of_int reps in
        Printf.printf "%-10s %12.2f %12.2f %9.1fx\n" r.chip_name
          (t_cold *. 1000.0) (t_warm *. 1000.0)
          (if t_warm > 0.0 then t_cold /. t_warm else 0.0);
        json_obj
          [
            ("chip", json_string r.chip_name);
            ("cold_seconds", json_float t_cold);
            ("warm_seconds", json_float t_warm);
          ])
      suite
  in
  (* scratch cache: remove entries, then the directory *)
  Array.iter
    (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  (try Unix.rmdir dir with Unix.Unix_error _ -> ());
  json_arr rows

(* ------------------------------------------------------------------ *)
(* LVS: parse / reduce / compare walls per chip                         *)
(* ------------------------------------------------------------------ *)

(* Each chip self-compares: the extracted circuit round-trips through the
   SPICE writer into the reference parser and is then matched against
   itself.  That exercises the full acelvs pipeline (parse, reduction,
   seeded refinement) on realistic sizes with a known answer — the
   verdict column must read "clean" — and splits the wall into the three
   phases an interactive LVS run pays. *)
let verdict_name = function
  | Ace_lvs.Match.Clean -> "clean"
  | Ace_lvs.Match.Mismatch -> "MISMATCH"
  | Ace_lvs.Match.Inconclusive -> "inconclusive"

let bench_lvs suite =
  header "LVS: reference parse / reduce / compare (self-comparison)";
  Printf.printf "%-10s %9s %11s %11s %11s %9s\n" "Name" "Devices"
    "parse (s)" "reduce (s)" "compare (s)" "verdict";
  List.iter
    (fun ((r : Ace_workloads.Chips.recipe), design, _) ->
      let circuit = Ace_core.Extractor.extract ~name:r.chip_name design in
      let spice = Ace_netlist.Spice.to_string circuit in
      let (reference, _diags), t_parse =
        time (fun () -> Ace_lvs.Reference.parse spice)
      in
      let _, t_reduce = time (fun () -> Ace_lvs.Reduce.reduce circuit) in
      let res, t_compare =
        time (fun () -> Ace_lvs.Match.run ~layout:circuit ~reference ())
      in
      Printf.printf "%-10s %9d %11.4f %11.4f %11.4f %9s\n" r.chip_name
        (Ace_netlist.Circuit.device_count circuit)
        t_parse t_reduce t_compare
        (verdict_name res.Ace_lvs.Match.outcome))
    suite;
  (* Hierarchical vs flat: each workload writes its own hierarchical deck
     (Spice.of_hier) and is compared both ways.  On regular cell arrays
     the hier path matches one cell summary and serves every other
     instance from the memo; the verdicts must agree by construction
     (Hier falls back to the flat comparator on any obstruction). *)
  header "LVS: hierarchical vs flat compare (cell-summary memoization)";
  Printf.printf "%-12s %9s %7s %10s %10s %8s %8s %6s %9s %7s\n" "workload"
    "devices" "insts" "flat (s)" "hier (s)" "speedup" "matches" "hits"
    "fallback" "agree";
  (* an n x n array of one-transistor cells under a single TOP, the
     data/mesh4x4 fixture generalized: one distinct cell summary, n*n-1
     memo hits *)
  let mesh_cells n =
    let open Ace_netlist.Hier in
    let cell =
      {
        part_name = "CELL";
        net_count = 3;
        exports = [ 0; 1; 2 ];
        net_names = [ (0, "D"); (1, "G"); (2, "S") ];
        devices =
          [
            {
              dtype = Ace_tech.Nmos.Enhancement;
              gate = 1;
              source = 2;
              drain = 0;
              length = 500;
              width = 500;
              location = Ace_geom.Point.make 0 0;
            };
          ];
        instances = [];
      }
    in
    let col_net c s = (c * (n + 1)) + s in
    let gate_net r = (n * (n + 1)) + r in
    let net_count = (n * (n + 1)) + n in
    let top =
      {
        part_name = "TOP";
        net_count;
        exports = [];
        net_names =
          List.init net_count (fun i ->
              ( i,
                if i < n * (n + 1) then
                  Printf.sprintf "C%dS%d" (i / (n + 1)) (i mod (n + 1))
                else Printf.sprintf "P%d" (i - (n * (n + 1))) ));
        devices = [];
        instances =
          List.concat
            (List.init n (fun r ->
                 List.init n (fun c ->
                     {
                       part_name = "CELL";
                       inst_name = Printf.sprintf "X%d_%d" r c;
                       offset = Ace_geom.Point.make (c * 1000) (r * 1000);
                       net_map =
                         [
                           (0, col_net c (r + 1));
                           (1, gate_net r);
                           (2, col_net c r);
                         ];
                     })))
      }
    in
    { parts = [ cell; top ]; top = "TOP" }
  in
  let hext_of design = fst (Ace_hext.Hext.extract design) in
  let workloads =
    [
      ("mesh4x4", mesh_cells 4);
      ("mesh32x32", mesh_cells 32);
      ( "random150",
        hext_of
          (Ace_cif.Design.of_ast
             (Ace_workloads.Chips.random_logic ~cells:150 ~seed:3 ())) );
    ]
  in
  let rows =
    List.map
      (fun (label, hier) ->
        let deck = Ace_netlist.Spice.of_hier hier in
        let reference =
          match Ace_lvs.Reference.load ~name:label deck with
          | Ok (r, _) -> r
          | Error _ -> failwith (label ^ ": unreadable hierarchical deck")
        in
        let ref_view = Ace_lvs.Reference.hier_view ~name:label deck in
        let flat_c = Ace_netlist.Hier.flatten hier in
        let rf, t_flat =
          time (fun () -> Ace_lvs.Match.run ~layout:flat_c ~reference ())
        in
        let rh, t_hier =
          time (fun () ->
              Ace_lvs.Hier.run ~layout:hier ~reference ?ref_view ())
        in
        let agree =
          rh.Ace_lvs.Hier.r.Ace_lvs.Match.outcome = rf.Ace_lvs.Match.outcome
        in
        let insts =
          List.fold_left
            (fun a (p : Ace_netlist.Hier.part) ->
              a + List.length p.Ace_netlist.Hier.instances)
            0 hier.Ace_netlist.Hier.parts
        in
        let devices = Ace_netlist.Circuit.device_count flat_c in
        Printf.printf "%-12s %9d %7d %10.4f %10.4f %7.2fx %8d %6d %9b %7b\n"
          label devices insts t_flat t_hier
          (if t_hier > 0.0 then t_flat /. t_hier else 0.0)
          rh.Ace_lvs.Hier.cell_matches rh.Ace_lvs.Hier.cell_hits
          rh.Ace_lvs.Hier.fallback agree;
        json_obj
          [
            ("workload", json_string label);
            ("devices", string_of_int devices);
            ("instances", string_of_int insts);
            ("flat_seconds", json_float t_flat);
            ("hier_seconds", json_float t_hier);
            ("cell_matches", string_of_int rh.Ace_lvs.Hier.cell_matches);
            ("cell_hits", string_of_int rh.Ace_lvs.Hier.cell_hits);
            ( "fallback",
              if rh.Ace_lvs.Hier.fallback then "true" else "false" );
            ("agree", if agree then "true" else "false");
            ( "verdict",
              json_string
                (String.lowercase_ascii
                   (verdict_name rh.Ace_lvs.Hier.r.Ace_lvs.Match.outcome)) );
          ])
      workloads
  in
  print_endline
    "shape check: the regular meshes match 1 cell and serve the rest from \
     the memo; verdicts agree with the flat comparator on every row";
  json_arr rows

(* ------------------------------------------------------------------ *)
(* Regression gate: fresh extract JSON vs a checked-in baseline         *)
(* ------------------------------------------------------------------ *)

(* Compares a fresh run's JSON against a checked-in BENCH_extract.json
   and exits non-zero when any gated wall regressed more than the
   threshold.  The gate is table-driven: every spec names a top-level
   array, its row key and the wall field to compare.  Tables absent from
   the baseline are skipped (old /2 baselines gate only the extract
   walls); rows present on only one side are reported but do not fail
   the gate (suites can grow). *)
type gate_spec = {
  g_label : string;
  g_array : string;
  g_key : string;
  g_wall : string;
  g_required : bool;  (** fail hard when the baseline lacks the array *)
}

let gate_specs =
  [
    {
      g_label = "extract wall_j1";
      g_array = "chips";
      g_key = "chip";
      g_wall = "wall_j1_seconds";
      g_required = true;
    };
    {
      g_label = "extract devices phase (j1)";
      g_array = "chips";
      g_key = "chip";
      g_wall = "devices_phase_j1_seconds";
      g_required = false;
    };
    {
      (* the contended tiled wall is scheduler noise when cores < jobs;
         gate the slowest-tile + stitch projection instead, which is
         measured uncontended (see the sequential re-run above) *)
      g_label = "extract tiled projected";
      g_array = "chips";
      g_key = "chip";
      g_wall = "projected_wall_tiled_seconds";
      g_required = false;
    };
    {
      g_label = "lvs flat compare";
      g_array = "lvs";
      g_key = "workload";
      g_wall = "flat_seconds";
      g_required = false;
    };
    {
      g_label = "lvs hier compare";
      g_array = "lvs";
      g_key = "workload";
      g_wall = "hier_seconds";
      g_required = false;
    };
    {
      g_label = "serve warm hit";
      g_array = "serve";
      g_key = "chip";
      g_wall = "warm_seconds";
      g_required = false;
    };
  ]

let bench_gate ~baseline_path ~fresh_path ~threshold ~min_wall =
  let module Json = Ace_trace.Json in
  let read path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Json.parse s with
    | Ok j -> j
    | Error m -> failwith (Printf.sprintf "%s: invalid JSON: %s" path m)
  in
  let rows spec j =
    match Json.member spec.g_array j with
    | Some (Json.Arr cs) ->
        Some
          (List.filter_map
             (fun c ->
               match (Json.member spec.g_key c, Json.member spec.g_wall c) with
               | Some (Json.Str name), Some (Json.Num w) -> Some (name, w)
               | _ -> None)
             cs)
    | _ -> None
  in
  let base_j = read baseline_path and fresh_j = read fresh_path in
  header
    (Printf.sprintf "Bench regression gate: %s vs %s (threshold %+.0f%%)"
       fresh_path baseline_path (threshold *. 100.0));
  let regressions = ref 0 in
  let gate_table spec =
    match rows spec base_j with
    | None ->
        if spec.g_required then
          failwith
            (Printf.sprintf "baseline JSON carries no %S array" spec.g_array)
        else
          Printf.printf "-- %s: not in baseline, skipped (regenerate %s to arm)\n"
            spec.g_label baseline_path
    | Some base ->
        let fresh = Option.value (rows spec fresh_j) ~default:[] in
        (* Machines running the gate are rarely the machine that recorded
           the baseline, and shared CI boxes slow down wholesale under
           load.  A uniform slowdown is not a regression in the code
           under test, so we cancel it: the load factor is the ratio of
           total wall over the rows common to both runs, and per-row
           deltas are measured against the load-adjusted fresh wall.  A
           single row regressing still moves its own delta far more than
           it moves the total. *)
        let load_factor =
          let bsum, fsum =
            List.fold_left
              (fun (bs, fs) (name, b) ->
                match List.assoc_opt name fresh with
                | Some f -> (bs +. b, fs +. f)
                | None -> (bs, fs))
              (0.0, 0.0) base
          in
          if bsum > 0.0 && fsum > 0.0 then fsum /. bsum else 1.0
        in
        Printf.printf "-- %s (load factor x%.2f, cancelled)\n" spec.g_label
          load_factor;
        Printf.printf "%-10s %12s %12s %9s  %s\n" "Name" "baseline (s)"
          "fresh (s)" "delta" "verdict";
        List.iter
          (fun (name, b) ->
            match List.assoc_opt name fresh with
            | None ->
                Printf.printf "%-10s %12.4f %12s %9s  missing from fresh run\n"
                  name b "-" "-"
            | Some f ->
                let delta =
                  if b > 0.0 then ((f /. load_factor) -. b) /. b else 0.0
                in
                (* rows whose baseline wall is under the floor are noise-
                   dominated at this scale; report them but do not fail
                   the gate on them — raise --scale to gate small chips *)
                let measurable = b >= min_wall in
                let bad = measurable && delta > threshold in
                if bad then incr regressions;
                Printf.printf "%-10s %12.4f %12.4f %+8.1f%%  %s\n" name b f
                  (delta *. 100.0)
                  (if bad then "REGRESSION"
                   else if measurable then "ok"
                   else "below floor (info)"))
          base;
        List.iter
          (fun (name, _) ->
            if not (List.mem_assoc name base) then
              Printf.printf "%-10s (new row, not in baseline)\n" name)
          fresh
  in
  List.iter gate_table gate_specs;
  if !regressions > 0 then begin
    Printf.printf "%d row(s) regressed beyond %.0f%%\n" !regressions
      (threshold *. 100.0);
    exit 1
  end
  else
    Printf.printf "gate passed: no gated wall regressed beyond %.0f%%\n"
      (threshold *. 100.0)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per paper table             *)
(* ------------------------------------------------------------------ *)

let bechamel_tables () =
  let open Bechamel in
  let tiny_suite = lazy (build_suite 0.01) in
  let pick name =
    let _, d, _ =
      List.find
        (fun ((r : Ace_workloads.Chips.recipe), _, _) -> r.chip_name = name)
        (Lazy.force tiny_suite)
    in
    d
  in
  let array_1k =
    lazy (Ace_cif.Design.of_ast (Ace_workloads.Arrays.square_array_tree ~cells:1024 ()))
  in
  let tests =
    [
      Test.make ~name:"ace_table_5_1"
        (Staged.stage (fun () ->
             ignore (Ace_core.Extractor.extract (pick "cherry"))));
      Test.make ~name:"ace_table_5_2_partlist"
        (Staged.stage (fun () ->
             ignore (Ace_baseline.Raster.extract ~grid:250 (pick "cherry"))));
      Test.make ~name:"ace_table_5_2_cifplot"
        (Staged.stage (fun () ->
             ignore (Ace_baseline.Region.extract (pick "cherry"))));
      Test.make ~name:"ace_time_distribution"
        (Staged.stage (fun () ->
             ignore (Ace_core.Extractor.extract_with_stats (pick "dchip"))));
      Test.make ~name:"hext_table_4_1"
        (Staged.stage (fun () ->
             ignore (Ace_hext.Hext.extract (Lazy.force array_1k))));
      Test.make ~name:"hext_table_5_1"
        (Staged.stage (fun () ->
             ignore (Ace_hext.Hext.extract (pick "dchip"))));
      Test.make ~name:"hext_table_5_2"
        (Staged.stage (fun () ->
             ignore (Ace_hext.Hext.extract (pick "testram"))));
    ]
  in
  header "Bechamel micro-benchmarks (monotonic clock, one test per table)";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysis = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-26s %12.0f ns/run\n" name est
          | Some _ | None -> Printf.printf "  %-26s (no estimate)\n" name)
        analysis)
    tests

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let () =
  let scale = ref 0.15 in
  let full = ref false in
  let run_bechamel = ref false in
  let only = ref [] in
  let jobs = ref 4 in
  let reps = ref 1 in
  let json_path = ref "BENCH_extract.json" in
  let gate_path = ref "" in
  let gate_threshold = ref 0.15 in
  let gate_min_wall = ref 0.01 in
  let spec =
    [
      ("--scale", Arg.Set_float scale, "FACTOR scale chips to FACTOR of the paper's device counts (default 0.15)");
      ("--full", Arg.Set full, " use the paper's full chip sizes (minutes of CPU)");
      ("--bechamel", Arg.Set run_bechamel, " also run the Bechamel micro-benchmarks");
      ("--table", Arg.String (fun s -> only := s :: !only),
       "NAME run one table (ace51 ace52 dist model hext41 hext5 extract lvs trace serve ablations); repeatable");
      ("--jobs", Arg.Set_int jobs, "N shard count for the extract table (default 4)");
      ("--reps", Arg.Set_int reps,
       "N repeat each extract-table measurement N times and keep the best wall (default 1)");
      ("--json", Arg.Set_string json_path,
       "PATH where the extract table writes its JSON telemetry (default BENCH_extract.json)");
      ("--gate", Arg.Set_string gate_path,
       "BASELINE after the extract table, fail if any chip's wall_j1_seconds regressed beyond the threshold vs BASELINE");
      ("--gate-threshold", Arg.Set_float gate_threshold,
       "FRAC allowed relative slowdown for --gate (default 0.15)");
      ("--gate-min-wall", Arg.Set_float gate_min_wall,
       "SECONDS baseline walls below this are informational only in the \
        gate (default 0.01)");
    ]
  in
  Arg.parse spec (fun _ -> ()) "bench/main.exe — regenerate the papers' tables";
  if !full then scale := 1.0;
  let want name = !only = [] || List.mem name !only in
  Printf.printf "chip scale: %.2f of the papers' device counts%s\n" !scale
    (if !full then " (--full)" else "");
  let suite =
    if
      want "ace51" || want "ace52" || want "dist" || want "hext5"
      || want "extract" || want "lvs" || want "trace" || want "serve"
    then build_suite !scale
    else []
  in
  if want "ace51" then ace_table_5_1 suite;
  if want "ace52" then ace_table_5_2 suite;
  if want "dist" then ace_time_distribution suite;
  if want "model" then ace_model_check ();
  if want "hext41" then hext_table_4_1 ~full:!full ();
  if want "hext5" then hext_tables_5 suite;
  let extract_fields =
    if want "extract" then
      Some (bench_extract suite ~jobs:!jobs ~scale:!scale ~reps:!reps)
    else None
  in
  let lvs_rows = if want "lvs" then Some (bench_lvs suite) else None in
  if want "trace" then bench_trace_overhead suite;
  let serve_rows = if want "serve" then Some (bench_serve suite) else None in
  (match extract_fields with
  | Some extract_fields ->
      write_bench_json ~json_path:!json_path ~extract_fields ~lvs_rows
        ~serve_rows
  | None -> ());
  if !gate_path <> "" then
    bench_gate ~baseline_path:!gate_path ~fresh_path:!json_path
      ~threshold:!gate_threshold ~min_wall:!gate_min_wall;
  if want "ablations" then ablations !scale;
  if !run_bechamel then bechamel_tables ()
