* nand2.swapped.sp — nand2.sp with the commutative gate inputs exchanged
* (A drives the top pull-down and B the bottom one; electrically the same
* NAND, so canonicalization must report Clean)
.MODEL ENH NMOS (LEVEL=1 VTO=1.0)
.MODEL DEP NMOS (LEVEL=1 VTO=-3.0)

M1 MID B 0 0 ENH L=5U W=5U
M2 OUT A MID 0 ENH L=5U W=5U
M3 VDD OUT OUT 0 DEP L=20U W=5U

.END
