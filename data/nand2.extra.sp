* nand2.extra.sp — seeded-mismatch fixture for data/nand2.cif:
* the B pull-down is missing from the reference, so the layout reports
* an extra enhancement transistor (lvs-extra-device)
.MODEL ENH NMOS (LEVEL=1 VTO=1.0)
.MODEL DEP NMOS (LEVEL=1 VTO=-3.0)

M1 OUT A 0 0 ENH L=5U W=5U
M3 VDD OUT OUT 0 DEP L=20U W=5U

.END
