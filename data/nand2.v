// nand2.v — structural-Verilog reference for data/nand2.cif
// (series pull-down chain through an anonymous internal node)
module nand2 (out, a, b);
  output out;
  input a, b;

  nand u1 (out, a, b);
endmodule
