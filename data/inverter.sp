* inverter.sp — reference netlist for data/inverter.cif
* (depletion-load NMOS inverter, ACE Figure 3-3)
.MODEL ENH NMOS (LEVEL=1 VTO=1.0)
.MODEL DEP NMOS (LEVEL=1 VTO=-3.0)

M1 OUT INP 0 0 ENH L=5U W=5U
M2 VDD OUT OUT 0 DEP L=20U W=5U

.END
