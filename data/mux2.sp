* mux2.sp — reference netlist for data/mux2.cif
* (2:1 pass-transistor multiplexer; no rails, no sizes on purpose —
* unspecified L/W is never size-checked)
.MODEL ENH NMOS (LEVEL=1 VTO=1.0)

M1 A S Y 0 ENH
M2 B SB Y 0 ENH

.END
