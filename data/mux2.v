// mux2.v — structural-Verilog reference for data/mux2.cif
// (2:1 pass-transistor multiplexer, written hierarchically with named
// port maps; nmos ports are (out, data, control))
module mux_cell (y, a, s);
  inout y, a;
  input s;

  nmos u1 (a, y, s);
endmodule

module mux2 (y, a, b, s, sb);
  inout y, a, b;
  input s, sb;

  mux_cell m1 (.y(y), .a(a), .s(s));
  mux_cell m2 (.y(y), .a(b), .s(sb));
endmodule
