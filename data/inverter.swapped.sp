* inverter.swapped.sp — seeded-mismatch fixture for data/inverter.cif:
* the pull-up's L and W are transposed (lvs-size-mismatch)
.MODEL ENH NMOS (LEVEL=1 VTO=1.0)
.MODEL DEP NMOS (LEVEL=1 VTO=-3.0)

M1 OUT INP 0 0 ENH L=5U W=5U
M2 VDD OUT OUT 0 DEP L=5U W=20U

.END
