// nor2.v — structural-Verilog reference for data/nor2.cif
// (two parallel pull-downs)
module nor2 (out, a, b);
  output out;
  input a, b;

  nor u1 (out, a, b);
endmodule
