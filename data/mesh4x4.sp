* mesh4x4.sp — reference netlist for data/mesh4x4.cif
* (4x4 single-transistor array: poly word lines P0..P3 crossing four
* diffusion bit lines, each cut into five segments C<col>S<seg>;
* written hierarchically — one CELL subcircuit, sixteen instances — so
* acelvs --hier matches the cell once and memoizes the other fifteen;
* lowercase cards exercise the parser's case-insensitivity)
.MODEL ENH NMOS (LEVEL=1 VTO=1.0)

.SUBCKT CELL D G S
m1 d g s 0 enh l=5u w=5u
.ENDS

x00 c0s1 p0 c0s0 cell
x01 c1s1 p0 c1s0 cell
x02 c2s1 p0 c2s0 cell
x03 c3s1 p0 c3s0 cell
x10 c0s2 p1 c0s1 cell
x11 c1s2 p1 c1s1 cell
x12 c2s2 p1 c2s1 cell
x13 c3s2 p1 c3s1 cell
x20 c0s3 p2 c0s2 cell
x21 c1s3 p2 c1s2 cell
x22 c2s3 p2 c2s2 cell
x23 c3s3 p2 c3s2 cell
x30 c0s4 p3 c0s3 cell
x31 c1s4 p3 c1s3 cell
x32 c2s4 p3 c2s3 cell
x33 c3s4 p3 c3s3 cell

.END
