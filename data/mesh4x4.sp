* mesh4x4.sp — reference netlist for data/mesh4x4.cif
* (4x4 single-transistor array: poly word lines P0..P3 crossing four
* diffusion bit lines, each cut into five segments C<col>S<seg>;
* lowercase cards exercise the parser's case-insensitivity)
.MODEL ENH NMOS (LEVEL=1 VTO=1.0)

m00 c0s1 p0 c0s0 0 enh l=5u w=5u
m01 c1s1 p0 c1s0 0 enh l=5u w=5u
m02 c2s1 p0 c2s0 0 enh l=5u w=5u
m03 c3s1 p0 c3s0 0 enh l=5u w=5u
m10 c0s2 p1 c0s1 0 enh l=5u w=5u
m11 c1s2 p1 c1s1 0 enh l=5u w=5u
m12 c2s2 p1 c2s1 0 enh l=5u w=5u
m13 c3s2 p1 c3s1 0 enh l=5u w=5u
m20 c0s3 p2 c0s2 0 enh l=5u w=5u
m21 c1s3 p2 c1s2 0 enh l=5u w=5u
m22 c2s3 p2 c2s2 0 enh l=5u w=5u
m23 c3s3 p2 c3s2 0 enh l=5u w=5u
m30 c0s4 p3 c0s3 0 enh l=5u w=5u
m31 c1s4 p3 c1s3 0 enh l=5u w=5u
m32 c2s4 p3 c2s3 0 enh l=5u w=5u
m33 c3s4 p3 c3s3 0 enh l=5u w=5u

.END
