// nor2.wrongprim.v — seeded mismatch: the layout is a NOR (parallel
// pull-downs) but the reference instantiates a NAND (series pull-downs),
// a wrong-primitive topology difference.
module nor2 (out, a, b);
  output out;
  input a, b;

  nand u1 (out, a, b);
endmodule
