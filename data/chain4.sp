* chain4.sp — reference netlist for data/chain4.cif
* (four depletion-load inverters in a chain, written hierarchically)
.MODEL ENH NMOS (LEVEL=1 VTO=1.0)
.MODEL DEP NMOS (LEVEL=1 VTO=-3.0)
.GLOBAL VDD

.SUBCKT INV IN OUT
M1 OUT IN 0 0 ENH L=5U W=5U
M2 VDD OUT OUT 0 DEP L=20U W=5U
.ENDS INV

X1 INP N1 INV
X2 N1 N2 INV
X3 N2 N3 INV
X4 N3 OUT INV

.END
