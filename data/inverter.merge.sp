* inverter.merge.sp — seeded-mismatch fixture for data/inverter.cif:
* the reference keeps the pull-up source (OUTA) and the pull-down drain
* (OUTB) as separate nets where the layout connects them, so one layout
* net matches two reference nets (lvs-net-merge)
.MODEL ENH NMOS (LEVEL=1 VTO=1.0)
.MODEL DEP NMOS (LEVEL=1 VTO=-3.0)

M1 OUTB INP 0 0 ENH L=5U W=5U
M2 VDD OUTA OUTA 0 DEP L=20U W=5U

.END
