// latch.v — structural-Verilog reference for data/latch.cif
// (cross-coupled inverter pair)
module latch (q, qb);
  inout q, qb;

  not u1 (q, qb);
  not u2 (qb, q);
endmodule
