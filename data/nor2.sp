* nor2.sp — reference netlist for data/nor2.cif
* (two parallel pull-downs)
.MODEL ENH NMOS (LEVEL=1 VTO=1.0)
.MODEL DEP NMOS (LEVEL=1 VTO=-3.0)

M1 OUT A 0 0 ENH L=5U W=5U
M2 OUT B 0 0 ENH L=5U W=5U
M3 VDD OUT OUT 0 DEP L=20U W=5U

.END
