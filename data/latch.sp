* latch.sp — reference netlist for data/latch.cif
* (cross-coupled inverter pair, written hierarchically)
.MODEL ENH NMOS (LEVEL=1 VTO=1.0)
.MODEL DEP NMOS (LEVEL=1 VTO=-3.0)
.GLOBAL VDD

.SUBCKT INV IN OUT
M1 OUT IN 0 0 ENH L=5U W=5U
M2 VDD OUT OUT 0 DEP L=20U W=5U
.ENDS

X1 Q QB INV
X2 QB Q INV

.END
