// inverter.v — structural-Verilog reference for data/inverter.cif
// (depletion-load NMOS inverter; the `not` primitive lowers to a
// pull-down enhancement device plus a gate-tied depletion load)
module inverter (out, inp);
  output out;
  input inp;

  not u1 (out, inp);
endmodule
