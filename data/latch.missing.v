// latch.missing.v — seeded mismatch: one of the two cross-coupled
// inverters is missing, so the layout has extra devices.
module latch (q, qb);
  inout q, qb;

  not u1 (q, qb);
endmodule
