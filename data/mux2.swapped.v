// mux2.swapped.v — seeded mismatch: the named port map of m1 swaps the
// data and control pins (.a/.s), turning a pass transistor's gate into
// its channel — NOT a commutative swap, so this must stay a mismatch
// even under pin-permutation canonicalization.
module mux_cell (y, a, s);
  inout y, a;
  input s;

  nmos u1 (a, y, s);
endmodule

module mux2 (y, a, b, s, sb);
  inout y, a, b;
  input s, sb;

  mux_cell m1 (.y(y), .a(s), .s(a));
  mux_cell m2 (.y(y), .a(b), .s(sb));
endmodule
