* chain4.split.sp — seeded-mismatch fixture for data/chain4.cif:
* the reference shorts the chain input INP to the second stage output
* (every N2 below is INP), so one reference net corresponds to two
* separate layout nets (lvs-net-split)
.MODEL ENH NMOS (LEVEL=1 VTO=1.0)
.MODEL DEP NMOS (LEVEL=1 VTO=-3.0)

M1 N1 INP 0 0 ENH L=5U W=5U
M2 INP N1 0 0 ENH L=5U W=5U
M3 N3 INP 0 0 ENH L=5U W=5U
M4 OUT N3 0 0 ENH L=5U W=5U
M5 VDD N1 N1 0 DEP L=20U W=5U
M6 VDD INP INP 0 DEP L=20U W=5U
M7 VDD N3 N3 0 DEP L=20U W=5U
M8 VDD OUT OUT 0 DEP L=20U W=5U

.END
