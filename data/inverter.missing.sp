* inverter.missing.sp — seeded-mismatch fixture for data/inverter.cif:
* the reference has a second pull-down (gate INP2) that the layout does
* not implement (lvs-missing-device)
.MODEL ENH NMOS (LEVEL=1 VTO=1.0)
.MODEL DEP NMOS (LEVEL=1 VTO=-3.0)

M1 OUT INP 0 0 ENH L=5U W=5U
M2 VDD OUT OUT 0 DEP L=20U W=5U
M3 OUT INP2 0 0 ENH L=5U W=5U

.END
