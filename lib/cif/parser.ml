open Ace_geom
module Diag = Ace_diag.Diag
module Collector = Ace_diag.Collector

exception Error of { position : int; message : string }

(* Internal failure carrying the stable diagnostic code; the public strict
   entry point re-raises it as {!Error}, the lenient one records it and
   resynchronizes. *)
exception Perror of { position : int; code : string; message : string }

let fail ~code pos fmt =
  Format.kasprintf
    (fun message -> raise (Perror { position = pos; code; message }))
    fmt

type cursor = { src : string; mutable pos : int }

let is_digit c = c >= '0' && c <= '9'
let is_upper c = c >= 'A' && c <= 'Z'

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

(* Skip CIF blanks: anything that is not a digit, uppercase letter, '-',
   '(', ')' or ';'.  Parenthesized comments nest and count as blank. *)
let rec skip_blanks cur =
  match peek cur with
  | None -> ()
  | Some '(' ->
      let opened = cur.pos in
      let depth = ref 0 in
      let continue = ref true in
      while !continue do
        (match peek cur with
        | None ->
            fail ~code:"cif-unterminated-comment" opened "unterminated comment"
        | Some '(' -> incr depth
        | Some ')' -> if !depth = 1 then continue := false else decr depth
        | Some _ -> ());
        cur.pos <- cur.pos + 1
      done;
      skip_blanks cur
  | Some c when is_digit c || is_upper c || c = '-' || c = ';' || c = ')' -> ()
  | Some _ ->
      cur.pos <- cur.pos + 1;
      skip_blanks cur

let read_int cur =
  skip_blanks cur;
  let neg =
    match peek cur with
    | Some '-' ->
        cur.pos <- cur.pos + 1;
        true
    | _ -> false
  in
  let start = cur.pos in
  while match peek cur with Some c when is_digit c -> true | _ -> false do
    cur.pos <- cur.pos + 1
  done;
  if cur.pos = start then
    fail ~code:"cif-expected-integer" cur.pos "expected an integer";
  let digits = String.sub cur.src start (cur.pos - start) in
  match int_of_string digits with
  | n -> if neg then -n else n
  | exception Failure _ ->
      fail ~code:"cif-integer-overflow" start
        "integer literal '%s%s' out of range"
        (if neg then "-" else "")
        digits

let try_read_int cur =
  skip_blanks cur;
  match peek cur with
  | Some c when is_digit c || c = '-' -> Some (read_int cur)
  | Some _ | None -> None

let read_point cur =
  let x = read_int cur in
  let y = read_int cur in
  Point.make x y

let expect_semi cur =
  skip_blanks cur;
  match peek cur with
  | Some ';' -> cur.pos <- cur.pos + 1
  | Some c -> fail ~code:"cif-expected-semi" cur.pos "expected ';', found %c" c
  | None ->
      fail ~code:"cif-expected-semi" cur.pos "expected ';', found end of input"

(* Read the rest of the command verbatim (for user extensions). *)
let read_to_semi cur =
  let start = cur.pos in
  while
    match peek cur with
    | Some ';' -> false
    | Some _ -> true
    | None ->
        fail ~code:"cif-unterminated-command" start "unterminated command"
  do
    cur.pos <- cur.pos + 1
  done;
  let text = String.sub cur.src start (cur.pos - start) in
  cur.pos <- cur.pos + 1;
  String.trim text

let read_layer_name cur =
  skip_blanks cur;
  let start = cur.pos in
  while
    match peek cur with
    | Some c when is_upper c || is_digit c -> true
    | Some _ | None -> false
  do
    cur.pos <- cur.pos + 1
  done;
  if cur.pos = start then
    fail ~code:"cif-expected-layer-name" cur.pos "expected a layer name";
  String.sub cur.src start (cur.pos - start)

let read_points_until_semi cur =
  let rec go acc =
    match try_read_int cur with
    | None -> List.rev acc
    | Some x ->
        let y = read_int cur in
        go (Point.make x y :: acc)
  in
  go []

let read_transform_ops cur =
  let rec go acc =
    skip_blanks cur;
    match peek cur with
    | Some 'T' ->
        cur.pos <- cur.pos + 1;
        let dx = read_int cur in
        let dy = read_int cur in
        go (Ast.Translate (dx, dy) :: acc)
    | Some 'M' ->
        cur.pos <- cur.pos + 1;
        skip_blanks cur;
        (match peek cur with
        | Some 'X' ->
            cur.pos <- cur.pos + 1;
            go (Ast.Mirror_x :: acc)
        | Some 'Y' ->
            cur.pos <- cur.pos + 1;
            go (Ast.Mirror_y :: acc)
        | _ -> fail ~code:"cif-bad-transform" cur.pos "expected X or Y after M")
    | Some 'R' ->
        cur.pos <- cur.pos + 1;
        let a = read_int cur in
        let b = read_int cur in
        go (Ast.Rotate (a, b) :: acc)
    | Some _ | None -> List.rev acc
  in
  go []

(* A word of uppercase letters (used after a label position for an optional
   layer name); returns None at ';'. *)
let try_read_word cur =
  skip_blanks cur;
  match peek cur with
  | Some c when is_upper c -> Some (read_layer_name cur)
  | Some _ | None -> None

(* Labels in extension 94: a name is any run of non-blank, non-';'
   characters starting at the first non-blank position. *)
let read_label_name cur =
  let rec skip_soft () =
    match peek cur with
    | Some c when c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = ',' ->
        cur.pos <- cur.pos + 1;
        skip_soft ()
    | _ -> ()
  in
  skip_soft ();
  let start = cur.pos in
  while
    match peek cur with
    | Some c when c <> ';' && c <> ' ' && c <> '\t' && c <> '\n' && c <> '\r' ->
        true
    | Some _ | None -> false
  do
    cur.pos <- cur.pos + 1
  done;
  if cur.pos = start then
    fail ~code:"cif-expected-label-name" cur.pos "expected a label name";
  String.sub cur.src start (cur.pos - start)

type def_state = {
  def_id : int;
  scale_num : int;
  scale_den : int;
  mutable def_name : string option;
  mutable def_elements : Ast.element list;  (** reversed *)
}

let scale st n =
  match st with
  | None -> n
  | Some d ->
      (* round-half-away-from-zero on the (rare) non-exact case *)
      let v = n * d.scale_num in
      if v mod d.scale_den = 0 then v / d.scale_den
      else
        let q = float_of_int v /. float_of_int d.scale_den in
        int_of_float (Float.round q)

let scale_point st (p : Point.t) = Point.make (scale st p.x) (scale st p.y)

(* Recovery: skip forward to just past the next ';'.  Stop (without
   consuming) at an 'E' or "DF" that follows at least one consumed
   character, so end-of-definition and end-of-file markers inside garbage
   still close their scopes.  Raw byte scan on purpose: after an error the
   comment/blank structure cannot be trusted. *)
let resync cur =
  let start = cur.pos in
  let len = String.length cur.src in
  (* a marker only counts when it is not a prefix of a longer word *)
  let word_ends_at i =
    i >= len || not (is_upper cur.src.[i] || is_digit cur.src.[i])
  in
  let stop = ref false in
  while not !stop do
    if cur.pos >= len then stop := true
    else
      match cur.src.[cur.pos] with
      | ';' ->
          cur.pos <- cur.pos + 1;
          stop := true
      | 'E' when cur.pos > start && word_ends_at (cur.pos + 1) -> stop := true
      | 'D'
        when cur.pos > start
             && cur.pos + 1 < len
             && cur.src.[cur.pos + 1] = 'F'
             && word_ends_at (cur.pos + 2) ->
          stop := true
      | _ -> cur.pos <- cur.pos + 1
  done;
  (* guarantee progress even when the error position itself is the marker *)
  if cur.pos = start && start < len then cur.pos <- start + 1

(* [collector = None] is strict mode: the first [Perror] propagates.  With
   a collector every error is recorded and parsing resumes at the next
   synchronization point, so the returned AST covers everything that could
   be salvaged. *)
let parse ?collector src =
  let cur = { src; pos = 0 } in
  let symbols = ref [] in
  let top = ref [] in
  let current_def : def_state option ref = ref None in
  let current_layer = ref None in
  let add_element e =
    match !current_def with
    | Some d -> d.def_elements <- e :: d.def_elements
    | None -> top := e :: !top
  in
  let require_layer pos =
    match !current_layer with
    | Some layer -> layer
    | None ->
        fail ~code:"cif-no-layer" pos "geometry before any L (layer) command"
  in
  let add_shape layer shape = add_element (Ast.Shape { layer; shape }) in
  let commit_def (d : def_state) =
    symbols :=
      { Ast.id = d.def_id; name = d.def_name; elements = List.rev d.def_elements }
      :: !symbols;
    current_def := None;
    (* CIF: the current layer does not survive a definition *)
    current_layer := None
  in
  let finished = ref false in
  let step () =
    skip_blanks cur;
    match peek cur with
    | None -> (
        match !current_def with
        | Some _ ->
            fail ~code:"cif-unterminated-definition" cur.pos
              "end of input inside a symbol definition (missing DF)"
        | None -> fail ~code:"cif-missing-end" cur.pos "missing E (end) command")
    | Some ';' -> cur.pos <- cur.pos + 1 (* empty command *)
    | Some 'P' ->
        let layer = require_layer cur.pos in
        cur.pos <- cur.pos + 1;
        let pts = read_points_until_semi cur in
        expect_semi cur;
        let st = !current_def in
        add_shape layer (Ast.Polygon (List.map (scale_point st) pts))
    | Some 'B' ->
        let layer = require_layer cur.pos in
        cur.pos <- cur.pos + 1;
        let st = !current_def in
        let length = scale st (read_int cur) in
        let width = scale st (read_int cur) in
        let center = scale_point st (read_point cur) in
        let direction =
          match try_read_int cur with
          | None -> None
          | Some a ->
              let b = read_int cur in
              Some (Point.make a b)
        in
        expect_semi cur;
        add_shape layer (Ast.Box { length; width; center; direction })
    | Some 'W' ->
        let layer = require_layer cur.pos in
        cur.pos <- cur.pos + 1;
        let st = !current_def in
        let width = scale st (read_int cur) in
        let path = List.map (scale_point st) (read_points_until_semi cur) in
        expect_semi cur;
        add_shape layer (Ast.Wire { width; path })
    | Some 'R' ->
        let layer = require_layer cur.pos in
        cur.pos <- cur.pos + 1;
        let st = !current_def in
        let diameter = scale st (read_int cur) in
        let center = scale_point st (read_point cur) in
        expect_semi cur;
        add_shape layer (Ast.Round_flash { diameter; center })
    | Some 'L' ->
        cur.pos <- cur.pos + 1;
        let name = read_layer_name cur in
        expect_semi cur;
        current_layer := Some name
    | Some 'D' ->
        cur.pos <- cur.pos + 1;
        skip_blanks cur;
        (match peek cur with
        | Some 'S' ->
            if !current_def <> None then
              fail ~code:"cif-nested-definition" cur.pos
                "nested DS (symbol definitions cannot nest)";
            cur.pos <- cur.pos + 1;
            let id = read_int cur in
            let scale_num, scale_den =
              match try_read_int cur with
              | None -> (1, 1)
              | Some a ->
                  let b = read_int cur in
                  if a <= 0 || b <= 0 then
                    fail ~code:"cif-bad-scale" cur.pos
                      "DS scale factors must be positive";
                  (a, b)
            in
            expect_semi cur;
            current_def :=
              Some
                {
                  def_id = id;
                  scale_num;
                  scale_den;
                  def_name = None;
                  def_elements = [];
                }
        | Some 'F' ->
            cur.pos <- cur.pos + 1;
            (match !current_def with
            | None ->
                fail ~code:"cif-df-without-ds" cur.pos "DF without matching DS"
            | Some d ->
                expect_semi cur;
                commit_def d)
        | Some 'D' ->
            cur.pos <- cur.pos + 1;
            let n = read_int cur in
            expect_semi cur;
            (* Delete definitions >= n.  Rare; honored literally. *)
            symbols := List.filter (fun (s : Ast.symbol_def) -> s.id < n) !symbols
        | _ ->
            fail ~code:"cif-bad-d-command" cur.pos "expected S, F or D after D")
    | Some 'C' ->
        cur.pos <- cur.pos + 1;
        let symbol = read_int cur in
        let raw_ops = read_transform_ops cur in
        expect_semi cur;
        let st = !current_def in
        let ops =
          List.map
            (function
              | Ast.Translate (dx, dy) ->
                  Ast.Translate (scale st dx, scale st dy)
              | (Ast.Mirror_x | Ast.Mirror_y | Ast.Rotate _) as op -> op)
            raw_ops
        in
        add_element (Ast.Call { symbol; ops })
    | Some 'E' ->
        cur.pos <- cur.pos + 1;
        if !current_def <> None then
          fail ~code:"cif-end-in-definition" (cur.pos - 1)
            "E inside a symbol definition";
        finished := true
    | Some '9' -> (
        cur.pos <- cur.pos + 1;
        match peek cur with
        | Some '4' ->
            cur.pos <- cur.pos + 1;
            let name = read_label_name cur in
            let st = !current_def in
            let position = scale_point st (read_point cur) in
            let layer = try_read_word cur in
            expect_semi cur;
            add_element (Ast.Label { name; position; layer })
        | _ ->
            (* 9 name; — names the current symbol *)
            let name = read_label_name cur in
            expect_semi cur;
            (match !current_def with
            | Some d -> d.def_name <- Some name
            | None -> add_element (Ast.Comment_ext ("9 " ^ name))))
    | Some c when is_digit c ->
        let text = read_to_semi cur in
        add_element (Ast.Comment_ext text)
    | Some c -> fail ~code:"cif-unknown-command" cur.pos "unknown command '%c'" c
  in
  (match collector with
  | None -> while not !finished do step () done
  | Some c ->
      while not !finished do
        try step ()
        with Perror { position; code; message } ->
          let stop = min (String.length src) (position + 1) in
          Collector.add c
            (Diag.error ~span:{ Diag.start = position; stop } ~code message);
          (match code with
          | "cif-end-in-definition" ->
              (* the designer forgot DF: close the definition and end *)
              (match !current_def with Some d -> commit_def d | None -> ());
              finished := true
          | "cif-missing-end" -> finished := true
          | "cif-unterminated-definition" ->
              (match !current_def with Some d -> commit_def d | None -> ());
              finished := true
          | _ -> resync cur);
          if Collector.saturated c && not !finished then begin
            Collector.add c
              (Diag.hint ~code:"too-many-errors"
                 "error cap reached: the rest of the input was not parsed");
            finished := true
          end
      done);
  { Ast.symbols = List.rev !symbols; top_level = List.rev !top }

let parse_string src =
  Ace_trace.Trace.with_span "cif.parse" @@ fun () ->
  try parse src
  with Perror { position; message; _ } -> raise (Error { position; message })

let parse_string_lenient ?max_errors src =
  Ace_trace.Trace.with_span "cif.parse" @@ fun () ->
  let collector = Collector.create ?max_errors () in
  let file = parse ~collector src in
  (file, Collector.to_list collector)

let parse_file path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string s

let describe_error ~source ~position ~message =
  let line, col = Diag.line_col ~source position in
  Printf.sprintf "CIF parse error at line %d, column %d: %s" line col message
