open Ace_geom
module Diag = Ace_diag.Diag
module Collector = Ace_diag.Collector

exception Error of { position : int; message : string }

(* Internal failure carrying the stable diagnostic code; the public strict
   entry point re-raises it as {!Error}, the lenient one records it and
   resynchronizes. *)
exception Perror of { position : int; code : string; message : string }

let fail ~code pos fmt =
  Format.kasprintf
    (fun message -> raise (Perror { position = pos; code; message }))
    fmt

let is_digit c = c >= '0' && c <= '9'
let is_upper c = c >= 'A' && c <= 'Z'

type def_state = {
  def_id : int;
  scale_num : int;
  scale_den : int;
  mutable def_name : string option;
  mutable def_elements : Ast.element list;  (** reversed *)
}

let scale st n =
  match st with
  | None -> n
  | Some d ->
      (* round-half-away-from-zero on the (rare) non-exact case *)
      let v = n * d.scale_num in
      if v mod d.scale_den = 0 then v / d.scale_den
      else
        let q = float_of_int v /. float_of_int d.scale_den in
        int_of_float (Float.round q)

let scale_point st (p : Point.t) = Point.make (scale st p.x) (scale st p.y)

(* The lexer is generic in how it reads characters, so the same code path
   serves an in-memory string and a memory-mapped file without copying
   either.  Each instantiation is compiled separately; the cursor logic
   below never indexes past [length] (every access is guarded by a bounds
   check or a preceding [peek]). *)
module type CHARS = sig
  type t

  val length : t -> int
  val get : t -> int -> char
  val sub : t -> int -> int -> string
end

module Make (S : CHARS) = struct
  type cursor = { src : S.t; mutable pos : int }

  let peek cur = if cur.pos < S.length cur.src then Some (S.get cur.src cur.pos) else None

  (* Skip CIF blanks: anything that is not a digit, uppercase letter, '-',
     '(', ')' or ';'.  Parenthesized comments nest and count as blank. *)
  let rec skip_blanks cur =
    match peek cur with
    | None -> ()
    | Some '(' ->
        let opened = cur.pos in
        let depth = ref 0 in
        let continue = ref true in
        while !continue do
          (match peek cur with
          | None ->
              fail ~code:"cif-unterminated-comment" opened "unterminated comment"
          | Some '(' -> incr depth
          | Some ')' -> if !depth = 1 then continue := false else decr depth
          | Some _ -> ());
          cur.pos <- cur.pos + 1
        done;
        skip_blanks cur
    | Some c when is_digit c || is_upper c || c = '-' || c = ';' || c = ')' -> ()
    | Some _ ->
        cur.pos <- cur.pos + 1;
        skip_blanks cur

  let read_int cur =
    skip_blanks cur;
    let neg =
      match peek cur with
      | Some '-' ->
          cur.pos <- cur.pos + 1;
          true
      | _ -> false
    in
    let start = cur.pos in
    while match peek cur with Some c when is_digit c -> true | _ -> false do
      cur.pos <- cur.pos + 1
    done;
    if cur.pos = start then
      fail ~code:"cif-expected-integer" cur.pos "expected an integer";
    let digits = S.sub cur.src start (cur.pos - start) in
    match int_of_string digits with
    | n -> if neg then -n else n
    | exception Failure _ ->
        fail ~code:"cif-integer-overflow" start
          "integer literal '%s%s' out of range"
          (if neg then "-" else "")
          digits

  let try_read_int cur =
    skip_blanks cur;
    match peek cur with
    | Some c when is_digit c || c = '-' -> Some (read_int cur)
    | Some _ | None -> None

  let read_point cur =
    let x = read_int cur in
    let y = read_int cur in
    Point.make x y

  let expect_semi cur =
    skip_blanks cur;
    match peek cur with
    | Some ';' -> cur.pos <- cur.pos + 1
    | Some c -> fail ~code:"cif-expected-semi" cur.pos "expected ';', found %c" c
    | None ->
        fail ~code:"cif-expected-semi" cur.pos "expected ';', found end of input"

  (* Read the rest of the command verbatim (for user extensions). *)
  let read_to_semi cur =
    let start = cur.pos in
    while
      match peek cur with
      | Some ';' -> false
      | Some _ -> true
      | None ->
          fail ~code:"cif-unterminated-command" start "unterminated command"
    do
      cur.pos <- cur.pos + 1
    done;
    let text = S.sub cur.src start (cur.pos - start) in
    cur.pos <- cur.pos + 1;
    String.trim text

  let read_layer_name cur =
    skip_blanks cur;
    let start = cur.pos in
    while
      match peek cur with
      | Some c when is_upper c || is_digit c -> true
      | Some _ | None -> false
    do
      cur.pos <- cur.pos + 1
    done;
    if cur.pos = start then
      fail ~code:"cif-expected-layer-name" cur.pos "expected a layer name";
    S.sub cur.src start (cur.pos - start)

  let read_points_until_semi cur =
    let rec go acc =
      match try_read_int cur with
      | None -> List.rev acc
      | Some x ->
          let y = read_int cur in
          go (Point.make x y :: acc)
    in
    go []

  let read_transform_ops cur =
    let rec go acc =
      skip_blanks cur;
      match peek cur with
      | Some 'T' ->
          cur.pos <- cur.pos + 1;
          let dx = read_int cur in
          let dy = read_int cur in
          go (Ast.Translate (dx, dy) :: acc)
      | Some 'M' ->
          cur.pos <- cur.pos + 1;
          skip_blanks cur;
          (match peek cur with
          | Some 'X' ->
              cur.pos <- cur.pos + 1;
              go (Ast.Mirror_x :: acc)
          | Some 'Y' ->
              cur.pos <- cur.pos + 1;
              go (Ast.Mirror_y :: acc)
          | _ -> fail ~code:"cif-bad-transform" cur.pos "expected X or Y after M")
      | Some 'R' ->
          cur.pos <- cur.pos + 1;
          let a = read_int cur in
          let b = read_int cur in
          go (Ast.Rotate (a, b) :: acc)
      | Some _ | None -> List.rev acc
    in
    go []

  (* A word of uppercase letters (used after a label position for an optional
     layer name); returns None at ';'. *)
  let try_read_word cur =
    skip_blanks cur;
    match peek cur with
    | Some c when is_upper c -> Some (read_layer_name cur)
    | Some _ | None -> None

  (* Labels in extension 94: a name is any run of non-blank, non-';'
     characters starting at the first non-blank position. *)
  let read_label_name cur =
    let rec skip_soft () =
      match peek cur with
      | Some c when c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = ',' ->
          cur.pos <- cur.pos + 1;
          skip_soft ()
      | _ -> ()
    in
    skip_soft ();
    let start = cur.pos in
    while
      match peek cur with
      | Some c when c <> ';' && c <> ' ' && c <> '\t' && c <> '\n' && c <> '\r' ->
          true
      | Some _ | None -> false
    do
      cur.pos <- cur.pos + 1
    done;
    if cur.pos = start then
      fail ~code:"cif-expected-label-name" cur.pos "expected a label name";
    S.sub cur.src start (cur.pos - start)

  (* Recovery: skip forward to just past the next ';'.  Stop (without
     consuming) at an 'E' or "DF" that follows at least one consumed
     character, so end-of-definition and end-of-file markers inside garbage
     still close their scopes.  Raw byte scan on purpose: after an error the
     comment/blank structure cannot be trusted. *)
  let resync cur =
    let start = cur.pos in
    let len = S.length cur.src in
    (* a marker only counts when it is not a prefix of a longer word *)
    let word_ends_at i =
      i >= len || not (is_upper (S.get cur.src i) || is_digit (S.get cur.src i))
    in
    let stop = ref false in
    while not !stop do
      if cur.pos >= len then stop := true
      else
        match S.get cur.src cur.pos with
        | ';' ->
            cur.pos <- cur.pos + 1;
            stop := true
        | 'E' when cur.pos > start && word_ends_at (cur.pos + 1) -> stop := true
        | 'D'
          when cur.pos > start
               && cur.pos + 1 < len
               && S.get cur.src (cur.pos + 1) = 'F'
               && word_ends_at (cur.pos + 2) ->
            stop := true
        | _ -> cur.pos <- cur.pos + 1
    done;
    (* guarantee progress even when the error position itself is the marker *)
    if cur.pos = start && start < len then cur.pos <- start + 1

  (* [collector = None] is strict mode: the first [Perror] propagates.  With
     a collector every error is recorded and parsing resumes at the next
     synchronization point, so the returned AST covers everything that could
     be salvaged. *)
  let parse ?collector src =
    let cur = { src; pos = 0 } in
    let symbols = ref [] in
    let top = ref [] in
    let current_def : def_state option ref = ref None in
    let current_layer = ref None in
    let add_element e =
      match !current_def with
      | Some d -> d.def_elements <- e :: d.def_elements
      | None -> top := e :: !top
    in
    let require_layer pos =
      match !current_layer with
      | Some layer -> layer
      | None ->
          fail ~code:"cif-no-layer" pos "geometry before any L (layer) command"
    in
    let add_shape layer shape = add_element (Ast.Shape { layer; shape }) in
    let commit_def (d : def_state) =
      symbols :=
        { Ast.id = d.def_id; name = d.def_name; elements = List.rev d.def_elements }
        :: !symbols;
      current_def := None;
      (* CIF: the current layer does not survive a definition *)
      current_layer := None
    in
    let finished = ref false in
    let step () =
      skip_blanks cur;
      match peek cur with
      | None -> (
          match !current_def with
          | Some _ ->
              fail ~code:"cif-unterminated-definition" cur.pos
                "end of input inside a symbol definition (missing DF)"
          | None -> fail ~code:"cif-missing-end" cur.pos "missing E (end) command")
      | Some ';' -> cur.pos <- cur.pos + 1 (* empty command *)
      | Some 'P' ->
          let layer = require_layer cur.pos in
          cur.pos <- cur.pos + 1;
          let pts = read_points_until_semi cur in
          expect_semi cur;
          let st = !current_def in
          add_shape layer (Ast.Polygon (List.map (scale_point st) pts))
      | Some 'B' ->
          let layer = require_layer cur.pos in
          cur.pos <- cur.pos + 1;
          let st = !current_def in
          let length = scale st (read_int cur) in
          let width = scale st (read_int cur) in
          let center = scale_point st (read_point cur) in
          let direction =
            match try_read_int cur with
            | None -> None
            | Some a ->
                let b = read_int cur in
                Some (Point.make a b)
          in
          expect_semi cur;
          add_shape layer (Ast.Box { length; width; center; direction })
      | Some 'W' ->
          let layer = require_layer cur.pos in
          cur.pos <- cur.pos + 1;
          let st = !current_def in
          let width = scale st (read_int cur) in
          let path = List.map (scale_point st) (read_points_until_semi cur) in
          expect_semi cur;
          add_shape layer (Ast.Wire { width; path })
      | Some 'R' ->
          let layer = require_layer cur.pos in
          cur.pos <- cur.pos + 1;
          let st = !current_def in
          let diameter = scale st (read_int cur) in
          let center = scale_point st (read_point cur) in
          expect_semi cur;
          add_shape layer (Ast.Round_flash { diameter; center })
      | Some 'L' ->
          cur.pos <- cur.pos + 1;
          let name = read_layer_name cur in
          expect_semi cur;
          current_layer := Some name
      | Some 'D' ->
          cur.pos <- cur.pos + 1;
          skip_blanks cur;
          (match peek cur with
          | Some 'S' ->
              if !current_def <> None then
                fail ~code:"cif-nested-definition" cur.pos
                  "nested DS (symbol definitions cannot nest)";
              cur.pos <- cur.pos + 1;
              let id = read_int cur in
              let scale_num, scale_den =
                match try_read_int cur with
                | None -> (1, 1)
                | Some a ->
                    let b = read_int cur in
                    if a <= 0 || b <= 0 then
                      fail ~code:"cif-bad-scale" cur.pos
                        "DS scale factors must be positive";
                    (a, b)
              in
              expect_semi cur;
              current_def :=
                Some
                  {
                    def_id = id;
                    scale_num;
                    scale_den;
                    def_name = None;
                    def_elements = [];
                  }
          | Some 'F' ->
              cur.pos <- cur.pos + 1;
              (match !current_def with
              | None ->
                  fail ~code:"cif-df-without-ds" cur.pos "DF without matching DS"
              | Some d ->
                  expect_semi cur;
                  commit_def d)
          | Some 'D' ->
              cur.pos <- cur.pos + 1;
              let n = read_int cur in
              expect_semi cur;
              (* Delete definitions >= n.  Rare; honored literally. *)
              symbols := List.filter (fun (s : Ast.symbol_def) -> s.id < n) !symbols
          | _ ->
              fail ~code:"cif-bad-d-command" cur.pos "expected S, F or D after D")
      | Some 'C' ->
          cur.pos <- cur.pos + 1;
          let symbol = read_int cur in
          let raw_ops = read_transform_ops cur in
          expect_semi cur;
          let st = !current_def in
          let ops =
            List.map
              (function
                | Ast.Translate (dx, dy) ->
                    Ast.Translate (scale st dx, scale st dy)
                | (Ast.Mirror_x | Ast.Mirror_y | Ast.Rotate _) as op -> op)
              raw_ops
          in
          add_element (Ast.Call { symbol; ops })
      | Some 'E' ->
          cur.pos <- cur.pos + 1;
          if !current_def <> None then
            fail ~code:"cif-end-in-definition" (cur.pos - 1)
              "E inside a symbol definition";
          finished := true
      | Some '9' -> (
          cur.pos <- cur.pos + 1;
          match peek cur with
          | Some '4' ->
              cur.pos <- cur.pos + 1;
              let name = read_label_name cur in
              let st = !current_def in
              let position = scale_point st (read_point cur) in
              let layer = try_read_word cur in
              expect_semi cur;
              add_element (Ast.Label { name; position; layer })
          | _ ->
              (* 9 name; — names the current symbol *)
              let name = read_label_name cur in
              expect_semi cur;
              (match !current_def with
              | Some d -> d.def_name <- Some name
              | None -> add_element (Ast.Comment_ext ("9 " ^ name))))
      | Some c when is_digit c ->
          let text = read_to_semi cur in
          add_element (Ast.Comment_ext text)
      | Some c -> fail ~code:"cif-unknown-command" cur.pos "unknown command '%c'" c
    in
    (match collector with
    | None -> while not !finished do step () done
    | Some c ->
        while not !finished do
          try step ()
          with Perror { position; code; message } ->
            let stop = min (S.length src) (position + 1) in
            Collector.add c
              (Diag.error ~span:{ Diag.start = position; stop } ~code message);
            (match code with
            | "cif-end-in-definition" ->
                (* the designer forgot DF: close the definition and end *)
                (match !current_def with Some d -> commit_def d | None -> ());
                finished := true
            | "cif-missing-end" -> finished := true
            | "cif-unterminated-definition" ->
                (match !current_def with Some d -> commit_def d | None -> ());
                finished := true
            | _ -> resync cur);
            if Collector.saturated c && not !finished then begin
              Collector.add c
                (Diag.hint ~code:"too-many-errors"
                   "error cap reached: the rest of the input was not parsed");
              finished := true
            end
        done);
    { Ast.symbols = List.rev !symbols; top_level = List.rev !top }
end

module Of_string = Make (struct
  type t = string

  let length = String.length
  let get = String.get
  let sub = String.sub
end)

(* A read-only view of a memory-mapped file: the bytes stay in the page
   cache, nothing is copied onto the OCaml heap. *)
type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

module Of_bigstring = Make (struct
  type t = bigstring

  let length = Bigarray.Array1.dim
  let get = Bigarray.Array1.get

  let sub ba pos len =
    let b = Bytes.create len in
    for i = 0 to len - 1 do
      Bytes.unsafe_set b i (Bigarray.Array1.unsafe_get ba (pos + i))
    done;
    Bytes.unsafe_to_string b
end)

type input = In_memory of string | Mapped of bigstring

let input_of_string s = In_memory s
let input_is_mapped = function Mapped _ -> true | In_memory _ -> false

let input_length = function
  | In_memory s -> String.length s
  | Mapped ba -> Bigarray.Array1.dim ba

let input_to_string = function
  | In_memory s -> s
  | Mapped ba ->
      let n = Bigarray.Array1.dim ba in
      let b = Bytes.create n in
      for i = 0 to n - 1 do
        Bytes.unsafe_set b i (Bigarray.Array1.unsafe_get ba i)
      done;
      Bytes.unsafe_to_string b

let read_all_channel ic = In_memory (In_channel.input_all ic)

(* Open a CIF input for parsing.  Regular files are memory-mapped —
   zero-copy: the lexer's cursor walks the mapping directly.  Anything
   else (a pipe, a FIFO, stdin via /dev/fd, a device) cannot be mapped and
   falls back to draining the stream into a string.  The fd is closed on
   every exit path — [Fun.protect] below — and closing it immediately is
   safe: a POSIX mapping survives its descriptor, and the mapping itself
   is released when the bigarray is collected.  Failures surface as
   [Sys_error], exactly like [open_in_bin]. *)
let open_file path =
  let fd =
    try Unix.openfile path [ Unix.O_RDONLY ] 0
    with Unix.Unix_error (e, _, _) ->
      raise (Sys_error (path ^ ": " ^ Unix.error_message e))
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      try
        let st = Unix.fstat fd in
        if st.Unix.st_kind = Unix.S_REG && st.Unix.st_size > 0 then
          match
            Unix.map_file fd Bigarray.char Bigarray.c_layout false
              [| st.Unix.st_size |]
          with
          | genarray -> Mapped (Bigarray.array1_of_genarray genarray)
          | exception Unix.Unix_error _ ->
              (* exotic filesystems can refuse mmap; fall back to reading *)
              read_all_channel (Unix.in_channel_of_descr fd)
        else if st.Unix.st_kind = Unix.S_REG then In_memory ""
        else read_all_channel (Unix.in_channel_of_descr fd)
      with Unix.Unix_error (e, _, _) ->
        raise (Sys_error (path ^ ": " ^ Unix.error_message e)))

let parse_input input =
  Ace_trace.Trace.with_span "cif.parse" @@ fun () ->
  try
    match input with
    | In_memory s -> Of_string.parse s
    | Mapped ba -> Of_bigstring.parse ba
  with Perror { position; message; _ } -> raise (Error { position; message })

let parse_input_lenient ?max_errors input =
  Ace_trace.Trace.with_span "cif.parse" @@ fun () ->
  let collector = Collector.create ?max_errors () in
  let file =
    match input with
    | In_memory s -> Of_string.parse ~collector s
    | Mapped ba -> Of_bigstring.parse ~collector ba
  in
  (file, Collector.to_list collector)

let parse_string src = parse_input (In_memory src)
let parse_string_lenient ?max_errors src = parse_input_lenient ?max_errors (In_memory src)
let parse_file path = parse_input (open_file path)

let describe_error ~source ~position ~message =
  let line, col = Diag.line_col ~source position in
  Printf.sprintf "CIF parse error at line %d, column %d: %s" line col message
