
(** CIF 2.0 parser.

    Accepts the full command set: [P] polygon, [B] box, [W] wire, [R]
    roundflash, [L] layer, [DS]/[DF] symbol definition with scale factor,
    [DD] delete, [C] call with transformation list, [E] end, parenthesized
    (nested) comments, and user extensions — of which [9 name] (symbol
    name) and [94 name x y \[layer\]] (net label) are interpreted, the rest
    preserved verbatim.

    The [DS a b] scale factor is applied to all contained distances at parse
    time; the stateful current layer is resolved onto each shape. *)

exception Error of { position : int; message : string }

(** [parse_string s] parses a complete CIF file.  Raises {!Error}. *)
val parse_string : string -> Ast.file

(** [parse_string_lenient s] never raises: every malformed command is
    recorded as a diagnostic (with a stable code and a byte span) and the
    parser resynchronizes at the next [;] (or [DF]/[E]), so a single run
    reports every problem and returns everything that could be salvaged.
    On a clean input the result is identical to {!parse_string} with an
    empty diagnostic list.  [max_errors] caps the number of
    [Error]-severity diagnostics (default 100); past the cap parsing
    stops and a trailing [Hint] reports the suppressed count. *)
val parse_string_lenient :
  ?max_errors:int -> string -> Ast.file * Ace_diag.Diag.t list

val parse_file : string -> Ast.file

(** Human-readable rendering of a parse error against its source. *)
val describe_error : source:string -> position:int -> message:string -> string
