
(** CIF 2.0 parser.

    Accepts the full command set: [P] polygon, [B] box, [W] wire, [R]
    roundflash, [L] layer, [DS]/[DF] symbol definition with scale factor,
    [DD] delete, [C] call with transformation list, [E] end, parenthesized
    (nested) comments, and user extensions — of which [9 name] (symbol
    name) and [94 name x y \[layer\]] (net label) are interpreted, the rest
    preserved verbatim.

    The [DS a b] scale factor is applied to all contained distances at parse
    time; the stateful current layer is resolved onto each shape. *)

exception Error of { position : int; message : string }

(** A parser input: either an in-memory string or a read-only memory
    mapping of a regular file.  The lexer walks a mapping in place —
    zero-copy — so parsing a large chip never materializes the file as an
    OCaml string. *)
type input

(** Wrap an in-memory string. *)
val input_of_string : string -> input

(** [open_file path] opens [path] for parsing.  Regular non-empty files
    are memory-mapped ([Unix.map_file]); pipes, FIFOs and other
    non-mappable inputs fall back to reading the stream into memory.  The
    file descriptor is closed on every exit path, including failures.
    Raises [Sys_error] (like [open_in_bin]) when the file cannot be
    opened. *)
val open_file : string -> input

(** Whether the input is a zero-copy memory mapping (for telemetry). *)
val input_is_mapped : input -> bool

val input_length : input -> int

(** Materialize the input as a string (copies a mapping; the string form
    is only needed to render diagnostics with source context). *)
val input_to_string : input -> string

(** [parse_input i] parses a complete CIF file.  Raises {!Error}. *)
val parse_input : input -> Ast.file

(** Lenient counterpart of {!parse_input}; see {!parse_string_lenient}. *)
val parse_input_lenient :
  ?max_errors:int -> input -> Ast.file * Ace_diag.Diag.t list

(** [parse_string s] parses a complete CIF file.  Raises {!Error}. *)
val parse_string : string -> Ast.file

(** [parse_string_lenient s] never raises: every malformed command is
    recorded as a diagnostic (with a stable code and a byte span) and the
    parser resynchronizes at the next [;] (or [DF]/[E]), so a single run
    reports every problem and returns everything that could be salvaged.
    On a clean input the result is identical to {!parse_string} with an
    empty diagnostic list.  [max_errors] caps the number of
    [Error]-severity diagnostics (default 100); past the cap parsing
    stops and a trailing [Hint] reports the suppressed count. *)
val parse_string_lenient :
  ?max_errors:int -> string -> Ast.file * Ace_diag.Diag.t list

(** [parse_file path] = [parse_input (open_file path)]. *)
val parse_file : string -> Ast.file

(** Human-readable rendering of a parse error against its source. *)
val describe_error : source:string -> position:int -> message:string -> string
