open Ace_geom
open Ace_tech

(** Semantically-checked CIF designs.

    Wraps a parsed {!Ast.file} with a symbol table and validates it:
    duplicate or missing symbol definitions, recursive call chains, unknown
    layer names and non-manhattan call rotations are all reported.  Also
    computes memoized per-symbol bounding boxes and flattened box counts —
    the statistics the papers' tables are keyed on — without ever
    instantiating the full chip. *)

exception Semantic_error of string

(** A net label, resolved to chip coordinates. *)
type label = { name : string; position : Point.t; layer : Layer.t option }

type t

(** [of_ast ?quantum ast] validates and wraps a parsed file.  [quantum] is
    the strip height for non-manhattan approximation (default λ/2 = 125
    centimicrons).  Raises {!Semantic_error}. *)
val of_ast : ?quantum:int -> Ast.file -> t

(** [of_ast_lenient ast] never raises: every semantic problem — duplicate
    definitions, unknown layers, undefined or recursive symbol calls,
    unsupported rotations, zero/negative-extent boxes, out-of-range
    coordinates — is recorded as a diagnostic and only the offending
    elements are dropped, so the rest of the design stays extractable.
    On a clean input the design is identical to {!of_ast} and the list is
    empty.  Problems {!of_ast} would reject are [Error] severity; purely
    defensive drops (degenerate boxes, coordinate-overflow guards) are
    [Warning]s. *)
val of_ast_lenient :
  ?quantum:int -> ?max_errors:int -> Ast.file -> t * Ace_diag.Diag.t list

val ast : t -> Ast.file
val quantum : t -> int

(** [symbol t id] raises [Not_found] for undefined ids. *)
val symbol : t -> int -> Ast.symbol_def

val symbol_ids : t -> int list

(** Conservative bounding box of a symbol's full expansion; [None] when the
    symbol contains no geometry. *)
val symbol_bbox : t -> int -> Box.t option

(** Bounding box of the whole chip (top-level elements). *)
val bbox : t -> Box.t option

(** Number of primitive boxes the fully-instantiated chip decomposes into —
    the "N" of the papers' tables.  Computed from memoized per-symbol counts
    in time proportional to the hierarchy, not to N. *)
val count_boxes : t -> int

(** Number of symbol instantiations in the full expansion. *)
val count_instances : t -> int

(** Transform of a call-operation list.  Non-manhattan rotations are snapped
    to the nearest axis (the papers' extractor only handles manhattan
    orientations); exact 45° raises {!Semantic_error}. *)
val transform_of_ops : Ast.transform_op list -> Transform.t

(** All labels in the design, fully instantiated and transformed, sorted by
    decreasing y. *)
val labels : t -> label list

(** [resolve_layer t name] maps a CIF layer name; unknown names were already
    rejected by [of_ast], so this never fails on shapes from [t]. *)
val resolve_layer : string -> Layer.t option
