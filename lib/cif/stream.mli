open Ace_geom
open Ace_tech

(** ACE's lazy front-end: sorted top-to-bottom geometry without full
    instantiation.

    A max-heap holds pending items keyed by top-edge y: concrete boxes use
    their exact top; symbol instances use their (conservative) transformed
    bounding-box top.  Popping an instance expands it {e one level} and
    pushes its children back — the paper's "recursively expands only those
    cells that intersect the current scanline", which keeps resident state
    proportional to the scanline population rather than to N. *)

type t

(** [create ?window design] builds the stream.  With [window], geometry
    with no positive-area overlap is never pushed and instances whose
    conservative bounding boxes miss the window are never expanded — the
    sharded extractor uses this so each shard's front-end cost is
    proportional to its strip, not to the chip.  The filter is exactly as
    strict as [Box.clip]: anything dropped would have clipped to nothing. *)
val create : ?window:Box.t -> Design.t -> t

(** y of the next scanline stop at which new geometry appears; [None] when
    the stream is exhausted.  Forces just enough expansion to make the
    answer exact. *)
val peek_top : t -> int option

(** [pop_at t y] returns every primitive box whose top edge is exactly [y],
    expanding instances as needed.  Must be called with [y = peek_top t].
    Boxes sharing the top [y] come back in insertion (FIFO) order — the
    heap breaks priority ties by sequence number, so the result is a pure
    function of the design, never of heap shape. *)
val pop_at : t -> int -> (Layer.t * Box.t) list

(** Convenience: drain the whole stream, checking descending-top order. *)
val drain : t -> (Layer.t * Box.t) list

(** Number of items (boxes and unexpanded instances) currently resident in
    the heap — the front-end's memory footprint.  Never negative: popping
    an empty heap raises [Invalid_argument] instead of underflowing.
    Exposed for the streaming-boundedness tests and telemetry. *)
val pending : t -> int

(** All labels of the design (eagerly collected — labels are rare), sorted
    by decreasing y. *)
val labels : t -> Design.label list

(** Number of one-level expansions performed so far (front-end work
    metric). *)
val expansions : t -> int
