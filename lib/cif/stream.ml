open Ace_geom
open Ace_tech

type item =
  | Item_box of Layer.t * Box.t
  | Item_call of int * Transform.t

type t = {
  design : Design.t;
  window : Box.t option;
      (** geometry filter: boxes and instance bboxes with no positive-area
          overlap are never pushed (nor expanded) *)
  mutable keys : int array;  (** heap priorities: top y *)
  mutable seqs : int array;
      (** insertion sequence numbers: ties on [keys] break FIFO, so pops at
          equal top-y are deterministic regardless of heap shape *)
  mutable items : item array;
  mutable size : int;
  mutable next_seq : int;
  shape_cache : (int, (Layer.t * Box.t) list) Hashtbl.t;
      (** per-symbol direct (non-call) geometry, symbol-local coordinates *)
  labels : Design.label list;
  mutable expansions : int;
}

let dummy = Item_call (min_int, Transform.identity)

(* --- binary max-heap on (keys, seqs, items) --- *)

(* Strict priority order: larger top y first; at equal tops, earlier
   insertion first.  FIFO at equal keys makes the pop order a pure function
   of the push order, which the wirelist-determinism tests (and the -j1 vs
   -jN equivalence check) rely on. *)
let above t i j =
  t.keys.(i) > t.keys.(j)
  || (t.keys.(i) = t.keys.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let k = t.keys.(i) in
  t.keys.(i) <- t.keys.(j);
  t.keys.(j) <- k;
  let s = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- s;
  let x = t.items.(i) in
  t.items.(i) <- t.items.(j);
  t.items.(j) <- x

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if above t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let largest = ref i in
  if l < t.size && above t l !largest then largest := l;
  if r < t.size && above t r !largest then largest := r;
  if !largest <> i then begin
    swap t i !largest;
    sift_down t !largest
  end

let push t key item =
  if t.size = Array.length t.keys then begin
    let cap = max 16 (2 * t.size) in
    let keys = Array.make cap 0
    and seqs = Array.make cap 0
    and items = Array.make cap dummy in
    Array.blit t.keys 0 keys 0 t.size;
    Array.blit t.seqs 0 seqs 0 t.size;
    Array.blit t.items 0 items 0 t.size;
    t.keys <- keys;
    t.seqs <- seqs;
    t.items <- items
  end;
  t.keys.(t.size) <- key;
  t.seqs.(t.size) <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  t.items.(t.size) <- item;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then invalid_arg "Stream.pop: empty heap";
  let item = t.items.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.keys.(0) <- t.keys.(t.size);
    t.seqs.(0) <- t.seqs.(t.size);
    t.items.(0) <- t.items.(t.size);
    sift_down t 0
  end;
  item

(* --- expansion --- *)

let wants t bx =
  match t.window with None -> true | Some w -> Box.overlaps bx w

let direct_geometry t sym_id =
  match Hashtbl.find_opt t.shape_cache sym_id with
  | Some g -> g
  | None ->
      let quantum = Design.quantum t.design in
      let g =
        List.concat_map
          (fun el ->
            match el with
            | Ast.Shape { layer; shape } -> (
                match Design.resolve_layer layer with
                | None -> []
                | Some lyr ->
                    List.map
                      (fun bx -> (lyr, bx))
                      (Shapes.boxes_of_shape ~quantum shape))
            | Ast.Call _ | Ast.Label _ | Ast.Comment_ext _ -> [])
          (Design.symbol t.design sym_id).Ast.elements
      in
      Hashtbl.replace t.shape_cache sym_id g;
      g

let push_elements t tr elements =
  List.iter
    (fun el ->
      match el with
      | Ast.Shape _ | Ast.Label _ | Ast.Comment_ext _ -> ()
      | Ast.Call { symbol; ops } -> (
          match Design.symbol_bbox t.design symbol with
          | exception Not_found ->
              () (* undefined callee: lenient designs have dropped it *)
          | None -> () (* empty symbol: nothing will ever come out *)
          | Some bb ->
              let tr' = Transform.compose tr (Design.transform_of_ops ops) in
              let placed = Transform.apply_box tr' bb in
              if wants t placed then
                push t placed.Box.t (Item_call (symbol, tr'))))
    elements

let push_direct_boxes t tr sym_id =
  List.iter
    (fun (lyr, bx) ->
      let placed = Transform.apply_box tr bx in
      if wants t placed then push t placed.Box.t (Item_box (lyr, placed)))
    (direct_geometry t sym_id)

let expand_call t sym_id tr =
  Ace_trace.Trace.incr Ace_trace.Trace.Counter.Expansions;
  t.expansions <- t.expansions + 1;
  push_direct_boxes t tr sym_id;
  push_elements t tr (Design.symbol t.design sym_id).Ast.elements

(* Keep expanding while the heap's max item is an instance, so the top key
   is an exact box top. *)
let rec settle t =
  if t.size > 0 then
    match t.items.(0) with
    | Item_box _ -> ()
    | Item_call (sym, tr) ->
        ignore (pop t);
        expand_call t sym tr;
        settle t

let create ?window design =
  let quantum = Design.quantum design in
  let t =
    {
      design;
      window;
      keys = Array.make 64 0;
      seqs = Array.make 64 0;
      items = Array.make 64 dummy;
      size = 0;
      next_seq = 0;
      shape_cache = Hashtbl.create 64;
      labels = Design.labels design;
      expansions = 0;
    }
  in
  (* top level behaves like an anonymous symbol expanded once *)
  List.iter
    (fun el ->
      match el with
      | Ast.Shape { layer; shape } -> (
          match Design.resolve_layer layer with
          | None -> ()
          | Some lyr ->
              List.iter
                (fun bx ->
                  if wants t bx then push t bx.Box.t (Item_box (lyr, bx)))
                (Shapes.boxes_of_shape ~quantum shape))
      | Ast.Call _ | Ast.Label _ | Ast.Comment_ext _ -> ())
    (Design.ast design).Ast.top_level;
  push_elements t Transform.identity (Design.ast design).Ast.top_level;
  t

let peek_top t =
  settle t;
  if t.size = 0 then None else Some t.keys.(0)

let pop_at t y =
  (* Do not settle below [y]: an instance whose conservative key is already
     < y cannot contribute a box with top = y, and expanding it now would
     defeat the front-end's laziness. *)
  let rec go acc =
    if t.size = 0 || t.keys.(0) < y then acc
    else
      match pop t with
      | Item_box (lyr, bx) ->
          Ace_trace.Trace.incr Ace_trace.Trace.Counter.Boxes_popped;
          go ((lyr, bx) :: acc)
      | Item_call (sym, tr) ->
          expand_call t sym tr;
          go acc
  in
  (* pops arrive FIFO (insertion order) at equal keys; undo the
     accumulator's reversal so callers see that order *)
  List.rev (go [])

let drain t =
  let rec go acc last =
    match peek_top t with
    | None -> List.rev acc
    | Some y ->
        assert (match last with None -> true | Some prev -> y <= prev);
        let boxes = pop_at t y in
        go (List.rev_append boxes acc) (Some y)
  in
  go [] None

let pending t = t.size
let labels t = t.labels
let expansions t = t.expansions
