open Ace_geom
open Ace_tech

exception Semantic_error of string

type label = { name : string; position : Point.t; layer : Layer.t option }

type t = {
  ast : Ast.file;
  quantum : int;
  table : (int, Ast.symbol_def) Hashtbl.t;
  bbox_memo : (int, Box.t option) Hashtbl.t;
  count_memo : (int, int) Hashtbl.t;
  inst_memo : (int, int) Hashtbl.t;
}

let fail fmt = Format.kasprintf (fun m -> raise (Semantic_error m)) fmt
let ast t = t.ast
let quantum t = t.quantum
let symbol t id = Hashtbl.find t.table id
let symbol_ids t = List.map (fun (s : Ast.symbol_def) -> s.id) t.ast.symbols
let resolve_layer = Layer.of_cif_name

let transform_of_ops ops =
  List.fold_left
    (fun acc op ->
      let prim =
        match op with
        | Ast.Translate (dx, dy) -> Transform.translation ~dx ~dy
        | Ast.Mirror_x -> Transform.mirror_x
        | Ast.Mirror_y -> Transform.mirror_y
        | Ast.Rotate (a, b) ->
            (* Snap to the dominant axis; the extractor is manhattan-only. *)
            if a = 0 && b = 0 then fail "R 0 0 in a call: null direction"
            else if abs a = abs b then
              fail "45-degree call rotation R %d %d is not supported" a b
            else if abs a > abs b then Transform.rotation ~a:(compare a 0) ~b:0
            else Transform.rotation ~a:0 ~b:(compare b 0)
      in
      Transform.then_ acc prim)
    Transform.identity ops

let check_layers elements =
  List.iter
    (function
      | Ast.Shape { layer; _ } ->
          if Layer.of_cif_name layer = None then
            fail "unknown layer name %S (NMOS layers are ND NP NC NM NI NB NG)"
              layer
      | Ast.Label { layer = Some name; _ } ->
          if Layer.of_cif_name name = None then
            fail "unknown layer name %S in label" name
      | Ast.Label { layer = None; _ } | Ast.Call _ | Ast.Comment_ext _ -> ())
    elements

let check_calls table elements ~context =
  List.iter
    (function
      | Ast.Call { symbol; ops } ->
          if not (Hashtbl.mem table symbol) then
            fail "%s calls undefined symbol %d" context symbol;
          (* evaluate eagerly so unsupported rotations surface here *)
          ignore (transform_of_ops ops)
      | Ast.Shape _ | Ast.Label _ | Ast.Comment_ext _ -> ())
    elements

(* Detect recursion with a three-color DFS over the call graph. *)
let check_acyclic table top_level =
  let state = Hashtbl.create 16 in
  let rec visit id =
    match Hashtbl.find_opt state id with
    | Some `Done -> ()
    | Some `Active -> fail "recursive symbol call chain through symbol %d" id
    | None ->
        Hashtbl.replace state id `Active;
        let def : Ast.symbol_def = Hashtbl.find table id in
        List.iter visit (Ast.called_symbols def.elements);
        Hashtbl.replace state id `Done
  in
  List.iter visit (Ast.called_symbols top_level);
  Hashtbl.iter (fun id _ -> visit id) table

let make ~quantum file table =
  {
    ast = file;
    quantum;
    table;
    bbox_memo = Hashtbl.create 64;
    count_memo = Hashtbl.create 64;
    inst_memo = Hashtbl.create 64;
  }

(* Coordinates beyond this bound would overflow downstream arithmetic
   (areas multiply two extents; transforms add translations), so the
   lenient path drops the offending elements.  2^30 centimicrons is about
   ten meters of silicon — far beyond any legitimate design. *)
let coord_limit = 1 lsl 30

let point_in_range (p : Point.t) =
  abs p.x < coord_limit && abs p.y < coord_limit

let shape_in_range = function
  | Ast.Box { length; width; center; direction } ->
      abs length < coord_limit
      && abs width < coord_limit
      && point_in_range center
      && (match direction with None -> true | Some d -> point_in_range d)
  | Ast.Polygon pts -> List.for_all point_in_range pts
  | Ast.Wire { width; path } ->
      abs width < coord_limit && List.for_all point_in_range path
  | Ast.Round_flash { diameter; center } ->
      abs diameter < coord_limit && point_in_range center

let ops_in_range ops =
  List.for_all
    (function
      | Ast.Translate (dx, dy) -> abs dx < coord_limit && abs dy < coord_limit
      | Ast.Rotate (a, b) -> abs a < coord_limit && abs b < coord_limit
      | Ast.Mirror_x | Ast.Mirror_y -> true)
    ops

let of_ast_lenient ?(quantum = 125) ?max_errors (file : Ast.file) =
  let module Diag = Ace_diag.Diag in
  let module Collector = Ace_diag.Collector in
  let c = Collector.create ?max_errors () in
  let err code fmt =
    Format.kasprintf (fun m -> Collector.add c (Diag.error ~code m)) fmt
  in
  let warn code fmt =
    Format.kasprintf (fun m -> Collector.add c (Diag.warning ~code m)) fmt
  in
  let quantum =
    if quantum <= 0 then begin
      err "sem-bad-quantum" "quantum must be positive (got %d); using 125"
        quantum;
      125
    end
    else quantum
  in
  (* deduplicate symbol definitions, keeping the first of each id *)
  let table = Hashtbl.create 64 in
  let symbols =
    List.filter
      (fun (def : Ast.symbol_def) ->
        if Hashtbl.mem table def.id then begin
          err "sem-duplicate-symbol"
            "duplicate symbol definition %d (keeping the first)" def.id;
          false
        end
        else begin
          Hashtbl.add table def.id def;
          true
        end)
      file.symbols
  in
  (* drop elements with unknown layers, undefined callees, unsupported
     rotations or out-of-range coordinates *)
  let clean_elements ~context elements =
    List.filter_map
      (fun el ->
        match el with
        | Ast.Shape { layer; shape } ->
            if Layer.of_cif_name layer = None then begin
              err "sem-unknown-layer"
                "%s: unknown layer name %S (NMOS layers are ND NP NC NM NI NB \
                 NG)"
                context layer;
              None
            end
            else if not (shape_in_range shape) then begin
              warn "sem-coordinate-overflow"
                "%s: shape coordinates exceed the supported range" context;
              None
            end
            else (
              (* degenerate shapes either produce no geometry or would
                 crash the decomposer (zero-width wires, zero-diameter
                 flashes); drop them all uniformly *)
              match shape with
              | Ast.Box { length; width; _ } when length <= 0 || width <= 0 ->
                  warn "sem-degenerate-box"
                    "%s: box with zero or negative extent %dx%d produces no \
                     geometry"
                    context length width;
                  None
              | Ast.Box { direction = Some d; _ } when d.x = 0 && d.y = 0 ->
                  warn "sem-degenerate-box"
                    "%s: box with null direction vector produces no geometry"
                    context;
                  None
              | Ast.Wire { width; _ } when width <= 0 ->
                  warn "sem-degenerate-box"
                    "%s: wire with zero or negative width %d produces no \
                     geometry"
                    context width;
                  None
              | Ast.Round_flash { diameter; _ } when diameter <= 0 ->
                  warn "sem-degenerate-box"
                    "%s: roundflash with zero or negative diameter %d \
                     produces no geometry"
                    context diameter;
                  None
              | _ -> Some el)
        | Ast.Label { name; position; layer } ->
            if not (point_in_range position) then begin
              warn "sem-coordinate-overflow"
                "%s: label %S position exceeds the supported range" context
                name;
              None
            end
            else (
              match layer with
              | Some l when Layer.of_cif_name l = None ->
                  err "sem-unknown-layer"
                    "%s: unknown layer name %S in label %S" context l name;
                  Some (Ast.Label { name; position; layer = None })
              | Some _ | None -> Some el)
        | Ast.Call { symbol; ops } ->
            if not (Hashtbl.mem table symbol) then begin
              err "sem-undefined-symbol" "%s calls undefined symbol %d" context
                symbol;
              None
            end
            else if not (ops_in_range ops) then begin
              warn "sem-coordinate-overflow"
                "%s: call of symbol %d has out-of-range transform" context
                symbol;
              None
            end
            else (
              match transform_of_ops ops with
              | (_ : Transform.t) -> Some el
              | exception Semantic_error m ->
                  err "sem-bad-rotation" "%s, call of symbol %d: %s" context
                    symbol m;
                  None)
        | Ast.Comment_ext _ -> Some el)
      elements
  in
  let symbols =
    List.map
      (fun (def : Ast.symbol_def) ->
        let context = Printf.sprintf "symbol %d" def.id in
        let def = { def with Ast.elements = clean_elements ~context def.elements } in
        Hashtbl.replace table def.id def;
        def)
      symbols
  in
  let top_level = clean_elements ~context:"top level" file.top_level in
  (* break recursion: drop every call edge that closes a cycle *)
  let drop_edges = Hashtbl.create 8 in
  let state = Hashtbl.create 16 in
  let rec visit id =
    match Hashtbl.find_opt state id with
    | Some `Done -> ()
    | Some `Active -> () (* handled at the edge below *)
    | None ->
        Hashtbl.replace state id `Active;
        let def : Ast.symbol_def = Hashtbl.find table id in
        List.iter
          (fun callee ->
            match Hashtbl.find_opt state callee with
            | Some `Active ->
                err "sem-recursive-symbol"
                  "recursive symbol call chain: dropping call of %d from \
                   symbol %d"
                  callee id;
                Hashtbl.replace drop_edges (id, callee) ()
            | Some `Done -> ()
            | None -> visit callee)
          (Ast.called_symbols def.elements);
        Hashtbl.replace state id `Done
  in
  List.iter visit (Ast.called_symbols top_level);
  Hashtbl.iter (fun id _ -> visit id) table;
  let symbols =
    if Hashtbl.length drop_edges = 0 then symbols
    else
      List.map
        (fun (def : Ast.symbol_def) ->
          let elements =
            List.filter
              (function
                | Ast.Call { symbol; _ } ->
                    not (Hashtbl.mem drop_edges (def.id, symbol))
                | Ast.Shape _ | Ast.Label _ | Ast.Comment_ext _ -> true)
              def.elements
          in
          let def = { def with Ast.elements = elements } in
          Hashtbl.replace table def.id def;
          def)
        symbols
  in
  let file = { Ast.symbols; top_level } in
  (make ~quantum file table, Collector.to_list c)

let of_ast ?(quantum = 125) (file : Ast.file) =
  if quantum <= 0 then fail "quantum must be positive";
  let table = Hashtbl.create 64 in
  List.iter
    (fun (def : Ast.symbol_def) ->
      if Hashtbl.mem table def.id then fail "duplicate symbol definition %d" def.id
      else Hashtbl.add table def.id def)
    file.symbols;
  List.iter
    (fun (def : Ast.symbol_def) ->
      check_layers def.elements;
      check_calls table def.elements
        ~context:(Printf.sprintf "symbol %d" def.id))
    file.symbols;
  check_layers file.top_level;
  check_calls table file.top_level ~context:"top level";
  check_acyclic table file.top_level;
  make ~quantum file table

let hull_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (Box.hull a b)

let rec elements_bbox t elements =
  List.fold_left
    (fun acc el ->
      let b =
        match el with
        | Ast.Shape { shape; _ } -> Shapes.shape_bbox shape
        | Ast.Call { symbol; ops } -> (
            match symbol_bbox t symbol with
            | None -> None
            | Some bx -> Some (Transform.apply_box (transform_of_ops ops) bx))
        | Ast.Label { position; _ } ->
            (* labels are part of a symbol's spatial extent: a label placed
               outside the geometry (naming something a sibling provides)
               must keep its instance's bounding box covering it, or window
               partitioning could separate the label from the geometry it
               lands on.  The box is symmetric so it still covers the point
               after any orthogonal transform. *)
            Some
              (Box.make
                 ~l:(position.Point.x - 1)
                 ~b:(position.Point.y - 1)
                 ~r:(position.Point.x + 1)
                 ~t:(position.Point.y + 1))
        | Ast.Comment_ext _ -> None
      in
      hull_opt acc b)
    None elements

and symbol_bbox t id =
  match Hashtbl.find_opt t.bbox_memo id with
  | Some b -> b
  | None ->
      let def = symbol t id in
      let b = elements_bbox t def.elements in
      Hashtbl.replace t.bbox_memo id b;
      b

let bbox t = elements_bbox t t.ast.top_level

let rec elements_box_count t elements =
  List.fold_left
    (fun acc el ->
      acc
      +
      match el with
      | Ast.Shape { shape; _ } ->
          List.length (Shapes.boxes_of_shape ~quantum:t.quantum shape)
      | Ast.Call { symbol; _ } -> symbol_box_count t symbol
      | Ast.Label _ | Ast.Comment_ext _ -> 0)
    0 elements

and symbol_box_count t id =
  match Hashtbl.find_opt t.count_memo id with
  | Some n -> n
  | None ->
      let n = elements_box_count t (symbol t id).elements in
      Hashtbl.replace t.count_memo id n;
      n

let count_boxes t = elements_box_count t t.ast.top_level

let rec elements_inst_count t elements =
  List.fold_left
    (fun acc el ->
      acc
      +
      match el with
      | Ast.Call { symbol; _ } -> 1 + symbol_inst_count t symbol
      | Ast.Shape _ | Ast.Label _ | Ast.Comment_ext _ -> 0)
    0 elements

and symbol_inst_count t id =
  match Hashtbl.find_opt t.inst_memo id with
  | Some n -> n
  | None ->
      let n = elements_inst_count t (symbol t id).elements in
      Hashtbl.replace t.inst_memo id n;
      n

let count_instances t = elements_inst_count t t.ast.top_level

let labels t =
  let acc = ref [] in
  let rec walk tr elements =
    List.iter
      (fun el ->
        match el with
        | Ast.Label { name; position; layer } ->
            let layer =
              match layer with None -> None | Some n -> Layer.of_cif_name n
            in
            acc := { name; position = Transform.apply tr position; layer } :: !acc
        | Ast.Call { symbol = callee; ops } ->
            let inner = (symbol t callee).Ast.elements in
            walk (Transform.compose tr (transform_of_ops ops)) inner
        | Ast.Shape _ | Ast.Comment_ext _ -> ())
      elements
  in
  walk Transform.identity t.ast.top_level;
  List.sort (fun (a : label) b -> Int.compare b.position.y a.position.y) !acc
