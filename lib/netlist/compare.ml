type reason =
  | Device_counts of int * int
  | Net_counts of int * int
  | Structure of string

let reason_to_string = function
  | Device_counts (a, b) -> Printf.sprintf "device counts differ: %d vs %d" a b
  | Net_counts (a, b) ->
      Printf.sprintf "connected net counts differ: %d vs %d" a b
  | Structure why -> why

type verdict = Equivalent | Distinct of reason | Inconclusive of string

let verdict_to_string = function
  | Equivalent -> "equivalent"
  | Distinct why -> "distinct: " ^ reason_to_string why
  | Inconclusive why -> "inconclusive: " ^ why

let mix h x = (h * 1000003) + x + 0x9e3779b9

let hash_sorted ints =
  let sorted = List.sort Int.compare ints in
  List.fold_left mix 0x1234567 sorted land max_int

(* Views of circuits restricted to nets that touch at least one device (or
   carry a user name): extractors legitimately differ on purely decorative
   geometry only in the geometry dumps, never in connectivity, but keeping
   the restriction makes comparisons robust to isolated-net numbering. *)
type view = {
  circuit : Circuit.t;
  nets : int array;  (** connected net indices *)
  net_pos : (int, int) Hashtbl.t;  (** circuit net -> view index *)
}

let view_of circuit =
  let nets = Array.of_list (Circuit.connected_net_indices circuit) in
  let net_pos = Hashtbl.create (Array.length nets) in
  Array.iteri (fun i n -> Hashtbl.replace net_pos n i) nets;
  { circuit; nets; net_pos }

let device_type_code = function
  | Ace_tech.Nmos.Enhancement -> 1
  | Ace_tech.Nmos.Depletion -> 2

let name_code names =
  hash_sorted (List.map (fun s -> Hashtbl.hash s) names)

(* One refinement round: recompute device colors from net colors, then net
   colors from device colors.  Gate terminals and source/drain terminals
   hash differently; source and drain are interchangeable (an extractor may
   emit them in either order), so they enter as an unordered pair. *)
let refine v ~with_sizes ~with_names =
  let c = v.circuit in
  let n_nets = Array.length v.nets in
  let n_devs = Array.length c.Circuit.devices in
  let net_color = Array.make n_nets 0 in
  let dev_color = Array.make n_devs 0 in
  Array.iteri
    (fun i net_idx ->
      let net = c.Circuit.nets.(net_idx) in
      net_color.(i) <- if with_names then name_code net.Circuit.names else 0)
    v.nets;
  Array.iteri
    (fun i (d : Circuit.device) ->
      let base = device_type_code d.dtype in
      dev_color.(i) <-
        (if with_sizes then mix (mix base d.length) d.width else base))
    c.Circuit.devices;
  let pos net = Hashtbl.find v.net_pos net in
  let rounds = ref 0 in
  let distinct a = List.length (List.sort_uniq Int.compare (Array.to_list a)) in
  let stable = ref false in
  while not !stable do
    incr rounds;
    let before = distinct net_color + distinct dev_color in
    let dev_color' =
      Array.mapi
        (fun i (d : Circuit.device) ->
          let g = net_color.(pos d.gate) in
          let s = net_color.(pos d.source) and dr = net_color.(pos d.drain) in
          let sd = hash_sorted [ s; dr ] in
          mix (mix (mix dev_color.(i) g) sd) 17)
        c.Circuit.devices
    in
    let incidences = Array.make n_nets [] in
    Array.iteri
      (fun i (d : Circuit.device) ->
        let add role net =
          let p = pos net in
          incidences.(p) <- mix dev_color'.(i) role :: incidences.(p)
        in
        add 1 d.gate;
        add 2 d.source;
        add 2 d.drain)
      c.Circuit.devices;
    let net_color' =
      Array.mapi (fun i _ -> mix net_color.(i) (hash_sorted incidences.(i))) v.nets
    in
    let after =
      List.length (List.sort_uniq Int.compare (Array.to_list net_color'))
      + List.length (List.sort_uniq Int.compare (Array.to_list dev_color'))
    in
    Array.blit dev_color' 0 dev_color 0 n_devs;
    Array.blit net_color' 0 net_color 0 n_nets;
    if after <= before || !rounds > n_nets + n_devs + 2 then stable := true
  done;
  (net_color, dev_color)

let multiset a = List.sort Int.compare (Array.to_list a)

let compare ?(with_sizes = false) ?(with_names = false) ca cb =
  let va = view_of ca and vb = view_of cb in
  if Array.length ca.Circuit.devices <> Array.length cb.Circuit.devices then
    Distinct
      (Device_counts
         ( Array.length ca.Circuit.devices,
           Array.length cb.Circuit.devices ))
  else if Array.length va.nets <> Array.length vb.nets then
    Distinct (Net_counts (Array.length va.nets, Array.length vb.nets))
  else begin
    let neta, deva = refine va ~with_sizes ~with_names in
    let netb, devb = refine vb ~with_sizes ~with_names in
    if multiset deva <> multiset devb then
      Distinct (Structure "device color multisets differ (structure mismatch)")
    else if multiset neta <> multiset netb then
      Distinct (Structure "net color multisets differ (connectivity mismatch)")
    else begin
      (* If refinement individuated every vertex, verify the induced
         mapping edge by edge (exact); otherwise rely on the color
         multiset identity (sound to hash collisions, and to graphs whose
         automorphism classes the refinement cannot split — the regular
         arrays the papers benchmark are exactly such graphs). *)
      let singleton colors =
        let tbl = Hashtbl.create 64 in
        Array.iter
          (fun c ->
            Hashtbl.replace tbl c (1 + try Hashtbl.find tbl c with Not_found -> 0))
          colors;
        Hashtbl.fold (fun _ n acc -> acc && n = 1) tbl true
      in
      if singleton neta && singleton deva then begin
        let index_by colors =
          let tbl = Hashtbl.create 64 in
          Array.iteri (fun i c -> Hashtbl.replace tbl c i) colors;
          tbl
        in
        let net_of_b = index_by netb and dev_of_b = index_by devb in
        let ok = ref true and why = ref "" in
        Array.iteri
          (fun i (d : Circuit.device) ->
            match Hashtbl.find_opt dev_of_b deva.(i) with
            | None ->
                ok := false;
                why := "unmatched device color"
            | Some j ->
                let d' = cb.Circuit.devices.(j) in
                let net_maps na nb =
                  match
                    ( Hashtbl.find_opt net_of_b
                        neta.(Hashtbl.find va.net_pos na),
                      Hashtbl.find_opt vb.net_pos nb )
                  with
                  | Some x, Some y -> x = y
                  | _ -> false
                in
                if not (net_maps d.gate d'.gate) then begin
                  ok := false;
                  why := Printf.sprintf "gate of device %d maps inconsistently" i
                end
                else if
                  not
                    (net_maps d.source d'.source && net_maps d.drain d'.drain
                    || net_maps d.source d'.drain && net_maps d.drain d'.source)
                then begin
                  ok := false;
                  why :=
                    Printf.sprintf "source/drain of device %d map inconsistently" i
                end)
          ca.Circuit.devices;
        if !ok then Equivalent else Distinct (Structure !why)
      end
      else Equivalent
    end
  end

let equivalent ?with_sizes ?with_names a b =
  match compare ?with_sizes ?with_names a b with
  | Equivalent -> true
  | Distinct _ | Inconclusive _ -> false
