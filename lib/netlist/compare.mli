(** Wirelist comparison by iterative color refinement.

    The papers motivate extraction with "if a circuit's schematic diagram is
    available … it can be compared to the extracted circuit: if the two are
    equivalent, the layout corresponds to the original circuit".  This module
    is that comparator, and is also how the test-suite proves that ACE, the
    baseline extractors and HEXT agree on the same layout.

    Algorithm (Gemini-style partition refinement): nets and devices receive
    initial structural colors, then colors are rehashed from neighbour
    colors until the partition stabilizes; two circuits are declared
    equivalent when their final color multisets match; when refinement
    individuates every vertex the induced mapping is additionally verified
    edge-by-edge (exact).  On highly automorphic graphs — the papers'
    regular arrays — the multiset identity alone decides, which is sound up
    to hash collisions. *)

(** Why two circuits are distinct.  Count mismatches are structured so
    that callers (wlcmp, the LVS engine) can attach stable diagnostic
    codes instead of pattern-matching message text. *)
type reason =
  | Device_counts of int * int  (** device counts differ: (a, b) *)
  | Net_counts of int * int  (** connected net counts differ: (a, b) *)
  | Structure of string  (** human-readable first structural difference *)

val reason_to_string : reason -> string

type verdict =
  | Equivalent
  | Distinct of reason  (** first difference found *)
  | Inconclusive of string
      (** refinement could not separate enough vertices to build a mapping *)

(** [compare ?with_sizes ?with_names a b].  [with_sizes] (default false)
    includes device L/W in the initial colors; [with_names] (default false)
    requires net names to correspond. *)
val compare :
  ?with_sizes:bool -> ?with_names:bool -> Circuit.t -> Circuit.t -> verdict

val verdict_to_string : verdict -> string

(** Convenience: [Equivalent] as a boolean. *)
val equivalent : ?with_sizes:bool -> ?with_names:bool -> Circuit.t -> Circuit.t -> bool
