(** Growable disjoint-set forest (union by rank, iterative two-pass path
    compression).

    The extractor creates a net for every piece of geometry that enters the
    active list independently, and merges nets as the scanline discovers
    connections — exactly the classic union-find workload.  Elements are
    dense integers handed out by {!fresh}.

    Storage is one flat unboxed int Bigarray (parent and rank interleaved),
    so the forest adds nothing to the GC-scanned heap, and {!find} is
    iterative — deep parent chains can never overflow the stack. *)

type t

(** [create ?hint ()] sizes the forest for [hint] elements up front
    (default 64); it still grows past the hint by doubling. *)
val create : ?hint:int -> unit -> t

(** Allocate a new singleton element; ids are consecutive from 0. *)
val fresh : t -> int

(** Number of elements allocated. *)
val count : t -> int

(** Representative of the element's class. *)
val find : t -> int -> int

val same : t -> int -> int -> bool

(** Merge two classes; returns the surviving representative. *)
val union : t -> int -> int -> int

(** Number of distinct classes. *)
val class_count : t -> int

(** [compress t] returns an array mapping every element to a dense class
    index in [0, class_count); representatives map to their own class.
    The array is a buffer owned by [t], reused (and overwritten) by the
    next [compress] call on the same forest; it may be longer than
    {!count}, with only the first {!count} entries meaningful. *)
val compress : t -> int array

(** Test-only back door. *)
module For_testing : sig
  (** [link t a b] points [a]'s root directly at [b]'s root, bypassing the
      rank balancing — rank keeps real forests logarithmic, so this is the
      only way to build the pathologically deep chains the deep-chain
      regression tests need. *)
  val link : t -> int -> int -> unit
end
