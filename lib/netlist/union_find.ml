type t = {
  mutable parent : int array;
  mutable rank : int array;
  mutable size : int;
  mutable classes : int;
}

let create () =
  { parent = Array.make 64 0; rank = Array.make 64 0; size = 0; classes = 0 }

let fresh t =
  if t.size = Array.length t.parent then begin
    let cap = 2 * t.size in
    let parent = Array.make cap 0 and rank = Array.make cap 0 in
    Array.blit t.parent 0 parent 0 t.size;
    Array.blit t.rank 0 rank 0 t.size;
    t.parent <- parent;
    t.rank <- rank
  end;
  let id = t.size in
  t.parent.(id) <- id;
  t.size <- t.size + 1;
  t.classes <- t.classes + 1;
  id

let count t = t.size

let rec find_root t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find_root t p in
    t.parent.(x) <- root;
    root
  end

(* Only the public entry points count: internal root lookups (union's
   own, compress) stay out of the telemetry. *)
let find t x =
  Ace_trace.Trace.incr Ace_trace.Trace.Counter.Uf_finds;
  find_root t x

let same t a b = find t a = find t b

let union t a b =
  Ace_trace.Trace.incr Ace_trace.Trace.Counter.Uf_unions;
  let ra = find_root t a and rb = find_root t b in
  if ra = rb then ra
  else begin
    t.classes <- t.classes - 1;
    if t.rank.(ra) < t.rank.(rb) then begin
      t.parent.(ra) <- rb;
      rb
    end
    else if t.rank.(ra) > t.rank.(rb) then begin
      t.parent.(rb) <- ra;
      ra
    end
    else begin
      t.parent.(rb) <- ra;
      t.rank.(ra) <- t.rank.(ra) + 1;
      ra
    end
  end

let class_count t = t.classes

let compress t =
  let mapping = Array.make t.size (-1) in
  let next = ref 0 in
  for x = 0 to t.size - 1 do
    let r = find_root t x in
    if mapping.(r) = -1 then begin
      mapping.(r) <- !next;
      incr next
    end;
    if x <> r then mapping.(x) <- mapping.(r)
  done;
  mapping
