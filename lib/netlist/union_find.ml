(* Flat unboxed storage: one int Bigarray holds the whole forest, parent
   at slot [2i] and rank at slot [2i+1].  Bigarray data lives outside the
   OCaml heap, so a million-element forest adds nothing to the major heap
   the GC must scan or copy — at large-chip scale the two boxed [int
   array]s this replaces dominated the extractor's GC pressure. *)

type slots =
  (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  mutable slots : slots;
  mutable size : int;
  mutable classes : int;
  mutable mapping : int array;  (** reusable {!compress} buffer *)
}

let alloc cap : slots = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (2 * cap)
let capacity t = Bigarray.Array1.dim t.slots / 2

let create ?(hint = 64) () =
  { slots = alloc (max 1 hint); size = 0; classes = 0; mapping = [||] }

let parent t i = Bigarray.Array1.unsafe_get t.slots (2 * i)
let set_parent t i p = Bigarray.Array1.unsafe_set t.slots (2 * i) p
let rank t i = Bigarray.Array1.unsafe_get t.slots ((2 * i) + 1)
let set_rank t i r = Bigarray.Array1.unsafe_set t.slots ((2 * i) + 1) r

(* All public entry points bounds-check before the unsafe accessors above:
   an out-of-range element is a caller bug and must fail loudly, not read
   stale slots. *)
let check t x =
  if x < 0 || x >= t.size then
    invalid_arg (Printf.sprintf "Union_find: element %d out of range 0..%d" x (t.size - 1))

let fresh t =
  if t.size = capacity t then begin
    (* growing moves no element between classes: the class accounting must
       read the same before and after the blit *)
    let classes_before = t.classes in
    let slots = alloc (2 * t.size) in
    Bigarray.Array1.blit t.slots
      (Bigarray.Array1.sub slots 0 (Bigarray.Array1.dim t.slots));
    t.slots <- slots;
    assert (t.classes = classes_before && t.classes <= t.size)
  end;
  let id = t.size in
  set_parent t id id;
  set_rank t id 0;
  t.size <- t.size + 1;
  t.classes <- t.classes + 1;
  id

let count t = t.size

(* Iterative two-pass path compression.  The recursive formulation this
   replaces allocated one stack frame per link on the way to the root; a
   pathological parent chain (however it arises) then turns a find into a
   [Stack_overflow] at large-chip scale.  Two flat loops — walk to the
   root, then repoint every node on the path — visit the same links with
   O(1) stack. *)
let find_root t x =
  let r = ref x in
  while parent t !r <> !r do
    r := parent t !r
  done;
  let root = !r in
  let c = ref x in
  while !c <> root do
    let next = parent t !c in
    set_parent t !c root;
    c := next
  done;
  root

(* Only the public entry points count: internal root lookups (union's
   own, compress) stay out of the telemetry. *)
let find t x =
  check t x;
  Ace_trace.Trace.incr Ace_trace.Trace.Counter.Uf_finds;
  find_root t x

let same t a b = find t a = find t b

let union t a b =
  check t a;
  check t b;
  Ace_trace.Trace.incr Ace_trace.Trace.Counter.Uf_unions;
  let ra = find_root t a and rb = find_root t b in
  if ra = rb then ra
  else begin
    t.classes <- t.classes - 1;
    let ka = rank t ra and kb = rank t rb in
    if ka < kb then begin
      set_parent t ra rb;
      rb
    end
    else if ka > kb then begin
      set_parent t rb ra;
      ra
    end
    else begin
      set_parent t rb ra;
      set_rank t ra (ka + 1);
      ra
    end
  end

let class_count t = t.classes

let compress t =
  (* The mapping buffer persists on [t] and is reused by later calls (a
     long-lived daemon compresses once per request; the per-call fresh
     array this replaces was pure churn).  It may be longer than [size];
     callers index it by element id, which stays in range. *)
  let mapping =
    if Array.length t.mapping >= t.size then t.mapping
    else begin
      let m = Array.make (max t.size (2 * Array.length t.mapping)) (-1) in
      t.mapping <- m;
      m
    end
  in
  Array.fill mapping 0 t.size (-1);
  let next = ref 0 in
  for x = 0 to t.size - 1 do
    let r = find_root t x in
    if mapping.(r) = -1 then begin
      mapping.(r) <- !next;
      incr next
    end;
    if x <> r then mapping.(x) <- mapping.(r)
  done;
  mapping

module For_testing = struct
  let link t a b =
    check t a;
    check t b;
    let ra = find_root t a and rb = find_root t b in
    if ra <> rb then begin
      set_parent t ra rb;
      t.classes <- t.classes - 1
    end
end
