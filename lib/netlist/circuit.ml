open Ace_geom
open Ace_tech

type device = {
  dtype : Nmos.device_type;
  gate : int;
  source : int;
  drain : int;
  length : int;
  width : int;
  location : Point.t;
  geometry : (Layer.t * Box.t) list;
}

type net = {
  names : string list;
  location : Point.t;
  geometry : (Layer.t * Box.t) list;
}

type t = { name : string; devices : device array; nets : net array }

let device_count t = Array.length t.devices
let net_count t = Array.length t.nets

let connected_net_indices t =
  let used = Array.make (net_count t) false in
  Array.iter
    (fun d ->
      used.(d.gate) <- true;
      used.(d.source) <- true;
      used.(d.drain) <- true)
    t.devices;
  Array.iteri (fun i n -> if n.names <> [] then used.(i) <- true) t.nets;
  let acc = ref [] in
  for i = net_count t - 1 downto 0 do
    if used.(i) then acc := i :: !acc
  done;
  !acc

let find_net t name =
  let found = ref (-1) in
  Array.iteri
    (fun i n -> if !found < 0 && List.mem name n.names then found := i)
    t.nets;
  if !found < 0 then raise Not_found else !found

let find_net_opt t name =
  match find_net t name with i -> Some i | exception Not_found -> None

let find_rail t name =
  match find_net_opt t name with
  | Some i -> Some i
  | None ->
      let target = String.lowercase_ascii name in
      let found = ref None in
      Array.iteri
        (fun i n ->
          if
            !found = None
            && List.exists
                 (fun s -> String.lowercase_ascii s = target)
                 n.names
          then found := Some i)
        t.nets;
      !found

let net_display_name t i =
  match t.nets.(i).names with
  | [] -> Printf.sprintf "N%d" i
  | name :: _ -> name

let validate t =
  let problems = ref [] in
  let problem fmt = Format.kasprintf (fun m -> problems := m :: !problems) fmt in
  let n = net_count t in
  Array.iteri
    (fun i d ->
      let check_terminal what idx =
        if idx < 0 || idx >= n then
          problem "device %d: %s net index %d out of range" i what idx
      in
      check_terminal "gate" d.gate;
      check_terminal "source" d.source;
      check_terminal "drain" d.drain;
      if d.length <= 0 then problem "device %d: non-positive length %d" i d.length;
      if d.width <= 0 then problem "device %d: non-positive width %d" i d.width)
    t.devices;
  List.rev !problems

let device_type_counts t =
  Array.fold_left
    (fun (e, d) dev ->
      match dev.dtype with
      | Nmos.Enhancement -> (e + 1, d)
      | Nmos.Depletion -> (e, d + 1))
    (0, 0) t.devices

let pp_summary ppf t =
  let e, d = device_type_counts t in
  Format.fprintf ppf "%s: %d devices (%d enh, %d dep), %d nets" t.name
    (device_count t) e d (net_count t)
