open Ace_geom
open Ace_tech

(** Hierarchical wirelists — HEXT's output model (paper Figure 2-2).

    A hierarchy is a list of parts in dependency order (leaves first).  Each
    part owns [net_count] local nets (indices [0 .. net_count-1]), a subset
    of which are exported; it contains primitive transistors and instances
    of earlier parts.  An instance binds child nets to parent nets through
    [net_map] — the figure's [(Net P1/N3 N16)] equivalences — and places the
    child at [offset] ([LocOffset]).

    Composite parts store only references to their children (the paper:
    "the resulting new window does not copy the contents of its component
    windows, but simply stores pointers to them"); {!flatten} instantiates
    the whole tree into a flat {!Circuit.t}. *)

type hdevice = {
  dtype : Nmos.device_type;
  gate : int;
  source : int;
  drain : int;
  length : int;
  width : int;
  location : Point.t;
}

type instance = {
  part_name : string;
  inst_name : string;
  offset : Point.t;
  net_map : (int * int) list;  (** (child-local net, parent-local net) *)
}

type part = {
  part_name : string;
  net_count : int;
  exports : int list;
  net_names : (int * string) list;
  devices : hdevice list;
  instances : instance list;
}

type t = { parts : part list; top : string }

exception Error of string

(** Find a part by name; raises {!Error}. *)
val part : t -> string -> part

(** Structural checks: top exists, instances reference earlier parts only,
    net indices in range, net maps bind exported child nets.  Returns
    problems (empty = valid). *)
val validate : t -> string list

(** Total device count of the full expansion (without expanding). *)
val flat_device_count : t -> int

(** Expand the hierarchy into a flat circuit.  Instance offsets accumulate
    into device locations; net names propagate through bindings. *)
val flatten : t -> Circuit.t

(** One record per part activation in the expansion, for consumers that
    need the hierarchy's shape over the flat circuit (e.g. per-leaf-cell
    analysis summaries):

    - [act_nets.(l)] is the flat net index of local net [l];
    - [act_bound.(l)] marks locals bound to the parent through the
      instance's net map;
    - [act_exports.(l)] marks declared exports;
    - [act_leaf] is true when the part has no instances;
    - the activation's own primitive devices occupy the contiguous flat
      device range [act_device, act_device + act_device_count).

    A local that is neither bound nor exported maps to a flat net touched
    by no other activation's devices. *)
type activation = {
  act_part : string;
  act_nets : int array;
  act_bound : bool array;
  act_exports : bool array;
  act_leaf : bool;
  act_device : int;
  act_device_count : int;
}

(** [flatten_ext t] is {!flatten} plus the activation records of the
    expansion (instantiation order). *)
val flatten_ext : t -> Circuit.t * activation list

(** Render in the Figure 2-2 dialect. *)
val to_string : t -> string

(** Parse the Figure 2-2 dialect back.  Raises {!Error}. *)
val of_string : string -> t
