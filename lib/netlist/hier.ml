open Ace_geom
open Ace_tech

type hdevice = {
  dtype : Nmos.device_type;
  gate : int;
  source : int;
  drain : int;
  length : int;
  width : int;
  location : Point.t;
}

type instance = {
  part_name : string;
  inst_name : string;
  offset : Point.t;
  net_map : (int * int) list;
}

type part = {
  part_name : string;
  net_count : int;
  exports : int list;
  net_names : (int * string) list;
  devices : hdevice list;
  instances : instance list;
}

type t = { parts : part list; top : string }

exception Error of string

let fail fmt = Format.kasprintf (fun m -> raise (Error m)) fmt

let part t name =
  match List.find_opt (fun p -> p.part_name = name) t.parts with
  | Some p -> p
  | None -> fail "unknown part %S" name

let validate t =
  let problems = ref [] in
  let problem fmt = Format.kasprintf (fun m -> problems := m :: !problems) fmt in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun p ->
      if Hashtbl.mem seen p.part_name then
        problem "duplicate part %S" p.part_name;
      let check_net what n =
        if n < 0 || n >= p.net_count then
          problem "part %S: %s net %d out of range [0,%d)" p.part_name what n
            p.net_count
      in
      List.iter (check_net "export") p.exports;
      List.iter (fun (n, _) -> check_net "named" n) p.net_names;
      List.iter
        (fun d ->
          check_net "gate" d.gate;
          check_net "source" d.source;
          check_net "drain" d.drain)
        p.devices;
      List.iter
        (fun (inst : instance) ->
          match Hashtbl.find_opt seen inst.part_name with
          | None ->
              problem "part %S instantiates %S before its definition"
                p.part_name inst.part_name
          | Some (child : part) ->
              List.iter
                (fun (inner, outer) ->
                  if inner < 0 || inner >= child.net_count then
                    problem "part %S: binding of %S net %d out of range"
                      p.part_name inst.part_name inner;
                  check_net "binding target" outer)
                inst.net_map)
        p.instances;
      Hashtbl.replace seen p.part_name p)
    t.parts;
  if not (Hashtbl.mem seen t.top) then problem "top part %S undefined" t.top;
  List.rev !problems

let flat_device_count t =
  let memo = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let n =
        List.length p.devices
        + List.fold_left
            (fun acc (inst : instance) ->
              acc + try Hashtbl.find memo inst.part_name with Not_found -> 0)
            0 p.instances
      in
      Hashtbl.replace memo p.part_name n)
    t.parts;
  try Hashtbl.find memo t.top with Not_found -> 0

type activation = {
  act_part : string;
  act_nets : int array;
  act_bound : bool array;
  act_exports : bool array;
  act_leaf : bool;
  act_device : int;
  act_device_count : int;
}

let flatten_ext t =
  (match validate t with
  | [] -> ()
  | p :: _ -> fail "invalid hierarchy: %s" p);
  let uf = Union_find.create () in
  let devices = ref [] in
  let dev_counter = ref 0 in
  let activations = ref [] in
  let names : (int, string list) Hashtbl.t = Hashtbl.create 64 in
  let locations : (int, Point.t) Hashtbl.t = Hashtbl.create 64 in
  let rec instantiate part_def (offset : Point.t) =
    (* fresh global nets for this activation's local nets *)
    let map = Array.init part_def.net_count (fun _ -> Union_find.fresh uf) in
    let bound = Array.make part_def.net_count false in
    let first_device = !dev_counter in
    List.iter
      (fun (n, name) ->
        let g = map.(n) in
        let existing = try Hashtbl.find names g with Not_found -> [] in
        Hashtbl.replace names g (name :: existing))
      part_def.net_names;
    List.iter
      (fun d ->
        let location = Point.add d.location offset in
        List.iter
          (fun net ->
            if not (Hashtbl.mem locations map.(net)) then
              Hashtbl.replace locations map.(net) location)
          [ d.gate; d.source; d.drain ];
        incr dev_counter;
        devices :=
          ( d.dtype,
            map.(d.gate),
            map.(d.source),
            map.(d.drain),
            d.length,
            d.width,
            location )
          :: !devices)
      part_def.devices;
    let own_devices = !dev_counter - first_device in
    List.iter
      (fun (inst : instance) ->
        let child = part t inst.part_name in
        let child_map, child_bound =
          instantiate child (Point.add offset inst.offset)
        in
        List.iter
          (fun (inner, outer) ->
            child_bound.(inner) <- true;
            ignore (Union_find.union uf child_map.(inner) map.(outer)))
          inst.net_map)
      part_def.instances;
    let exports = Array.make part_def.net_count false in
    List.iter (fun e -> exports.(e) <- true) part_def.exports;
    activations :=
      {
        act_part = part_def.part_name;
        act_nets = map;
        act_bound = bound;
        act_exports = exports;
        act_leaf = part_def.instances = [];
        act_device = first_device;
        act_device_count = own_devices;
      }
      :: !activations;
    (map, bound)
  in
  ignore (instantiate (part t t.top) Point.origin);
  let dense = Union_find.compress uf in
  let class_count = Union_find.class_count uf in
  let net_names = Array.make class_count [] in
  let net_locations = Array.make class_count Point.origin in
  Hashtbl.iter
    (fun g ns -> net_names.(dense.(g)) <- ns @ net_names.(dense.(g)))
    names;
  Hashtbl.iter (fun g loc -> net_locations.(dense.(g)) <- loc) locations;
  let nets =
    Array.init class_count (fun i ->
        {
          Circuit.names = List.sort_uniq String.compare net_names.(i);
          location = net_locations.(i);
          geometry = [];
        })
  in
  let devices =
    Array.of_list
      (List.rev_map
         (fun (dtype, g, s, d, length, width, location) ->
           {
             Circuit.dtype;
             gate = dense.(g);
             source = dense.(s);
             drain = dense.(d);
             length;
             width;
             location;
             geometry = [];
           })
         !devices)
  in
  let circuit = { Circuit.name = t.top; devices; nets } in
  let activations =
    List.rev_map
      (fun a -> { a with act_nets = Array.map (fun g -> dense.(g)) a.act_nets })
      !activations
  in
  (circuit, activations)

let flatten t = fst (flatten_ext t)

(* ------------------------------------------------------------------ *)
(* Figure 2-2 dialect                                                  *)
(* ------------------------------------------------------------------ *)

let net_id i = Printf.sprintf "N%d" i

let to_string t =
  let buf = Buffer.create 4096 in
  let pr fmt = Printf.bprintf buf fmt in
  pr "(DefPart nEnh (Exports G S D))\n";
  pr "(DefPart nDepl (Exports G S D))\n";
  List.iter
    (fun p ->
      pr "(DefPart %s\n" p.part_name;
      pr " (Exports";
      List.iter (fun n -> pr " %s" (net_id n)) p.exports;
      pr ")\n";
      List.iter
        (fun (n, name) -> pr " (NetName %s %s)\n" (net_id n) name)
        p.net_names;
      List.iteri
        (fun i d ->
          pr " (Part %s (Name D%d) (Loc %d %d) (T G %s) (T S %s) (T D %s)"
            (match d.dtype with
            | Nmos.Enhancement -> "nEnh"
            | Nmos.Depletion -> "nDepl")
            i d.location.Point.x d.location.Point.y (net_id d.gate)
            (net_id d.source) (net_id d.drain);
          pr " (Channel (Length %d) (Width %d)))\n" d.length d.width)
        p.devices;
      List.iter
        (fun (inst : instance) ->
          pr " (Part %s (Name %s) (LocOffset %d %d))\n" inst.part_name
            inst.inst_name inst.offset.Point.x inst.offset.Point.y;
          List.iter
            (fun (inner, outer) ->
              pr " (Net %s/%s %s)\n" inst.inst_name (net_id inner)
                (net_id outer))
            inst.net_map)
        p.instances;
      pr " (Local";
      let exported = p.exports in
      for n = 0 to p.net_count - 1 do
        if not (List.mem n exported) then pr " %s" (net_id n)
      done;
      pr ")\n";
      pr " (NetCount %d))\n" p.net_count)
    t.parts;
  pr "(Part %s (Name Top))\n" t.top;
  Buffer.contents buf

let parse_net_ref atom =
  if String.length atom >= 2 && atom.[0] = 'N' then
    match int_of_string_opt (String.sub atom 1 (String.length atom - 1)) with
    | Some n -> n
    | None -> fail "bad net id %S" atom
  else fail "bad net id %S" atom

let of_string text =
  let sexps =
    try Sexp.parse_string text
    with Sexp.Parse_error m -> fail "s-expression error: %s" m
  in
  let atom = function
    | Sexp.Atom a -> a
    | s -> fail "expected atom, got %s" (Sexp.to_string s)
  in
  let int_atom s =
    match int_of_string_opt (atom s) with
    | Some n -> n
    | None -> fail "expected integer, got %s" (Sexp.to_string s)
  in
  let parts = ref [] and top = ref None in
  let parse_defpart name body =
    let exports = ref []
    and net_names = ref []
    and devices = ref []
    and instances = ref []
    and net_count = ref 0
    and pending_nets = ref [] in
    let clause head items =
      match (head, items) with
      | "Exports", nets -> exports := List.map (fun s -> parse_net_ref (atom s)) nets
      | "NetName", [ n; nm ] ->
          net_names := (parse_net_ref (atom n), atom nm) :: !net_names
      | "NetCount", [ n ] -> net_count := int_atom n
      | "Local", _ -> ()
      | "Part", Sexp.Atom ptype :: rest -> (
          let find_clause what =
            List.find_map
              (function
                | Sexp.List (Sexp.Atom h :: items) when h = what -> Some items
                | _ -> None)
              rest
          in
          let name_of =
            match find_clause "Name" with
            | Some [ n ] -> atom n
            | _ -> fail "Part without Name"
          in
          match ptype with
          | "nEnh" | "nDepl" ->
              let terminals =
                List.filter_map
                  (function
                    | Sexp.List [ Sexp.Atom "T"; Sexp.Atom role; Sexp.Atom n ] ->
                        Some (role, parse_net_ref n)
                    | _ -> None)
                  rest
              in
              let terminal role =
                match List.assoc_opt role terminals with
                | Some n -> n
                | None -> fail "device %s missing terminal %s" name_of role
              in
              let loc =
                match find_clause "Loc" with
                | Some [ x; y ] -> Point.make (int_atom x) (int_atom y)
                | _ -> Point.origin
              in
              let channel =
                match find_clause "Channel" with
                | Some c -> c
                | None -> fail "device %s missing Channel" name_of
              in
              let dim what =
                match
                  List.find_map
                    (function
                      | Sexp.List [ Sexp.Atom h; v ] when h = what -> Some v
                      | _ -> None)
                    channel
                with
                | Some v -> int_atom v
                | None -> fail "device %s channel missing %s" name_of what
              in
              devices :=
                {
                  dtype =
                    (if ptype = "nEnh" then Nmos.Enhancement else Nmos.Depletion);
                  gate = terminal "G";
                  source = terminal "S";
                  drain = terminal "D";
                  length = dim "Length";
                  width = dim "Width";
                  location = loc;
                }
                :: !devices
          | child_part ->
              let offset =
                match find_clause "LocOffset" with
                | Some [ x; y ] -> Point.make (int_atom x) (int_atom y)
                | _ -> Point.origin
              in
              instances :=
                {
                  part_name = child_part;
                  inst_name = name_of;
                  offset;
                  net_map = [];
                }
                :: !instances)
      | "Net", [ Sexp.Atom qualified; Sexp.Atom outer ] -> (
          match String.index_opt qualified '/' with
          | Some slash ->
              let inst = String.sub qualified 0 slash in
              let inner =
                parse_net_ref
                  (String.sub qualified (slash + 1)
                     (String.length qualified - slash - 1))
              in
              pending_nets := (inst, inner, parse_net_ref outer) :: !pending_nets
          | None -> fail "unqualified Net equivalence %s" qualified)
      | other, _ -> fail "unknown clause %S in DefPart %s" other name
    in
    List.iter
      (function
        | Sexp.List (Sexp.Atom head :: items) -> clause head items
        | other -> fail "unexpected item %s" (Sexp.to_string other))
      body;
    let instances =
      List.rev_map
        (fun (inst : instance) ->
          {
            inst with
            net_map =
              List.rev
                (List.filter_map
                   (fun (i, inner, outer) ->
                     if i = inst.inst_name then Some (inner, outer) else None)
                   !pending_nets);
          })
        !instances
    in
    {
      part_name = name;
      net_count = !net_count;
      exports = !exports;
      net_names = List.rev !net_names;
      devices = List.rev !devices;
      instances;
    }
  in
  List.iter
    (function
      | Sexp.List [ Sexp.Atom "DefPart"; Sexp.Atom ("nEnh" | "nDepl"); _ ] -> ()
      | Sexp.List (Sexp.Atom "DefPart" :: Sexp.Atom name :: body) ->
          parts := parse_defpart name body :: !parts
      | Sexp.List (Sexp.Atom "Part" :: Sexp.Atom name :: _) -> top := Some name
      | other -> fail "unexpected top-level form %s" (Sexp.to_string other))
    sexps;
  match !top with
  | None -> fail "missing top-level (Part <name> (Name Top))"
  | Some top -> { parts = List.rev !parts; top }
