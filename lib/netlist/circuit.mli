open Ace_geom
open Ace_tech

(** Flat extracted circuits — ACE's output model.

    A circuit is a list of transistors and nets (the paper's "wirelist").
    Nets are identified by dense indices into {!nets}; every device terminal
    refers to a net index.  Geometry lists are populated only when the
    extractor is asked to output geometry (the paper's user option, normally
    suppressed) — they are what the C/R post-processor consumes. *)

type device = {
  dtype : Nmos.device_type;
  gate : int;
  source : int;
  drain : int;
  length : int;  (** channel length in centimicrons (area / width) *)
  width : int;  (** mean of source- and drain-edge lengths *)
  location : Point.t;  (** min corner of the channel *)
  geometry : (Layer.t * Box.t) list;  (** channel boxes (optional) *)
}

type net = {
  names : string list;  (** user-given names, e.g. from 94 labels *)
  location : Point.t;  (** a representative point on the net *)
  geometry : (Layer.t * Box.t) list;  (** conducting boxes (optional) *)
}

type t = { name : string; devices : device array; nets : net array }

val device_count : t -> int
val net_count : t -> int

(** Nets having at least one device terminal or a name (isolated unnamed
    nets — e.g. decorative metal — can be filtered for comparison). *)
val connected_net_indices : t -> int list

(** [find_net t name] is the index of the net carrying [name].
    Raises [Not_found]. *)
val find_net : t -> string -> int

val find_net_opt : t -> string -> int option

(** Power-rail lookup: exact name match first, then a case-insensitive
    fallback, so a chip labelling its rails "Vdd"/"vdd" still resolves. *)
val find_rail : t -> string -> int option

(** All names attached to a net, or [N<i>] when anonymous. *)
val net_display_name : t -> int -> string

(** Checks internal consistency: terminal indices in range, positive
    dimensions.  Returns the list of problems found (empty = valid). *)
val validate : t -> string list

(** Histogram: (enhancement count, depletion count). *)
val device_type_counts : t -> int * int

val pp_summary : Format.formatter -> t -> unit
