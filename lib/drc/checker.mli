open Ace_geom
open Ace_tech

(** Scanline design-rule checker.

    The papers place design-rule checking beside extraction in the artwork
    analysis family (Baker's thesis covers both; Whitney's and Seiler's
    checkers are cited).  This checker reuses the same strip decomposition
    as the extractor: per strip it has merged per-layer x-intervals, so

    - {e x-direction} rules (interval too narrow, gap too small, missing
      x-surround of a cut, missing gate overhang) read off directly, and
    - {e y-direction} rules come from running the identical pass over the
      transposed layout.

    Corner-to-corner spacing is not checked (a documented approximation
    that early checkers shared). *)

type violation = {
  rule : string;  (** e.g. "width", "spacing", "cut-size" *)
  layer : Layer.t;
  at : Box.t;  (** area the violation was seen in *)
  detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

(** A violation as an [Error]-severity structured diagnostic with stable
    code ["drc-<rule>"], for the shared text/JSON/SARIF renderers. *)
val to_diag : violation -> Ace_diag.Diag.t

(** (code, description) for every rule {!to_diag} can emit — SARIF
    [tool.driver.rules] metadata. *)
val rule_info : (string * string) list

(** Check a full design.  Violations are deduplicated per (rule, layer,
    location) and sorted by position. *)
val check : ?rules:Rules.t -> Ace_cif.Design.t -> violation list

(** Check a raw box list (tests, windows). *)
val check_boxes : ?rules:Rules.t -> (Layer.t * Box.t) list -> violation list
