open Ace_geom
open Ace_tech

type violation = {
  rule : string;
  layer : Layer.t;
  at : Box.t;
  detail : string;
}

let pp_violation ppf v =
  Format.fprintf ppf "%s on %a at %a: %s" v.rule Layer.pp v.layer Box.pp v.at
    v.detail

(* DRC violations as structured diagnostics, with a stable "drc-"-prefixed
   code per rule, so they flow through the same --diag-format renderers
   (text / JSON / SARIF) as every other finding. *)
let to_diag v =
  Ace_diag.Diag.errorf
    ~code:("drc-" ^ v.rule)
    "%s on %a at %a: %s" v.rule Layer.pp v.layer Box.pp v.at v.detail

let rule_info =
  [
    ("drc-width", "feature narrower than the layer's minimum width");
    ("drc-spacing", "gap between features below the layer's minimum spacing");
    ( "drc-cut-surround",
      "contact cut not surrounded by metal and poly/diffusion" );
    ("drc-cut-size", "contact cut is not the mandated fixed square");
    ( "drc-gate-overhang",
      "poly does not extend far enough beyond the channel" );
  ]

let transpose_box (b : Box.t) = Box.make ~l:b.b ~b:b.l ~r:b.t ~t:b.r
let transpose_boxes = List.map (fun (lyr, b) -> (lyr, transpose_box b))

(* One directional pass over a box list: all rules expressible on the
   per-strip x-intervals.  Runs twice, the second time on the transposed
   layout, so both axes are covered. *)
let directional_pass rules boxes ~axis =
  let violations = ref [] in
  let add rule layer span ~bottom ~top detail =
    let at = Box.make ~l:span.Interval.lo ~b:bottom ~r:span.Interval.hi ~t:top in
    violations := { rule; layer; at; detail } :: !violations
  in
  let stops =
    List.concat_map (fun (_, (bx : Box.t)) -> [ bx.t; bx.b ]) boxes
    |> List.sort_uniq (fun a b -> Int.compare b a)
  in
  let spans_of layer ~top ~bottom =
    Interval.of_spans
      (List.filter_map
         (fun (lyr, (bx : Box.t)) ->
           if Layer.equal lyr layer && bx.t >= top && bx.b <= bottom then
             Some (bx.l, bx.r)
           else None)
         boxes)
  in
  let surround = Rules.scaled rules rules.Rules.cut_surround in
  let overhang = Rules.scaled rules rules.Rules.gate_overhang in
  let covers intervals (s : Interval.span) =
    List.exists
      (fun (i : Interval.span) -> i.lo <= s.lo && s.hi <= i.hi)
      intervals
  in
  let rec strips = function
    | top :: (bottom :: _ as rest) ->
        let layer_spans = Hashtbl.create 8 in
        let spans layer =
          match Hashtbl.find_opt layer_spans layer with
          | Some s -> s
          | None ->
              let s = spans_of layer ~top ~bottom in
              Hashtbl.replace layer_spans layer s;
              s
        in
        (* width and spacing per constrained layer *)
        List.iter
          (fun layer ->
            let min_w = Rules.width_of rules layer in
            let min_s = Rules.spacing_of rules layer in
            let rec walk = function
              | [] -> ()
              | (s : Interval.span) :: tl ->
                  if min_w > 0 && s.hi - s.lo < min_w then
                    add "width" layer s ~bottom ~top
                      (Printf.sprintf "feature %d < minimum %d" (s.hi - s.lo)
                         min_w);
                  (match tl with
                  | (next : Interval.span) :: _
                    when min_s > 0 && next.lo - s.hi < min_s ->
                      add "spacing" layer
                        { Interval.lo = s.hi; hi = next.lo }
                        ~bottom ~top
                        (Printf.sprintf "gap %d < minimum %d" (next.lo - s.hi)
                           min_s)
                  | _ -> ());
                  walk tl
            in
            walk (spans layer))
          [ Layer.Diffusion; Layer.Poly; Layer.Metal; Layer.Implant;
            Layer.Buried ];
        (* contact cut surround: metal and (poly or diffusion) must extend
           [surround] beyond the cut in this axis *)
        List.iter
          (fun (c : Interval.span) ->
            let expanded = { Interval.lo = c.lo - surround; hi = c.hi + surround } in
            if not (covers (spans Layer.Metal) expanded) then
              add "cut-surround" Layer.Metal c ~bottom ~top
                "metal does not surround the contact cut";
            if
              not
                (covers (spans Layer.Poly) expanded
                || covers (spans Layer.Diffusion) expanded)
            then
              add "cut-surround" Layer.Contact c ~bottom ~top
                "neither poly nor diffusion surrounds the contact cut")
          (spans Layer.Contact);
        (* gate overhang: where a channel ends without adjacent conducting
           diffusion, the poly must extend beyond it *)
        let gate = Interval.inter (spans Layer.Diffusion) (spans Layer.Poly) in
        let channel = Interval.diff gate (spans Layer.Buried) in
        let diff_cond = Interval.diff (spans Layer.Diffusion) channel in
        List.iter
          (fun (c : Interval.span) ->
            let poly = spans Layer.Poly in
            let covering =
              List.find_opt
                (fun (p : Interval.span) -> p.lo <= c.lo && c.hi <= p.hi)
                poly
            in
            let diff_abuts x =
              List.exists
                (fun (d : Interval.span) -> d.hi = x || d.lo = x)
                diff_cond
            in
            match covering with
            | None -> ()
            | Some p ->
                if (not (diff_abuts c.lo)) && c.lo - p.lo < overhang then
                  add "gate-overhang" Layer.Poly c ~bottom ~top
                    "poly does not extend far enough beyond the channel";
                if (not (diff_abuts c.hi)) && p.hi - c.hi < overhang then
                  add "gate-overhang" Layer.Poly c ~bottom ~top
                    "poly does not extend far enough beyond the channel")
          channel;
        strips rest
    | [ _ ] | [] -> ()
  in
  strips stops;
  match axis with
  | `X -> !violations
  | `Y -> List.map (fun v -> { v with at = transpose_box v.at }) !violations

(* Merge vertically stacked reports of the same rule/layer/detail so a
   narrow wire yields one violation, not one per strip. *)
let coalesce violations =
  let groups = Hashtbl.create 16 in
  List.iter
    (fun v ->
      let key = (v.rule, v.layer, v.detail) in
      let prev = try Hashtbl.find groups key with Not_found -> [] in
      Hashtbl.replace groups key (v.at :: prev))
    violations;
  let merge boxes =
    (* coalesce vertically stacked boxes, then horizontally adjacent ones *)
    let cols = Ace_geom.Poly.coalesce_columns boxes in
    List.map transpose_box
      (Ace_geom.Poly.coalesce_columns (List.map transpose_box cols))
  in
  Hashtbl.fold
    (fun (rule, layer, detail) boxes acc ->
      List.fold_left
        (fun acc at -> { rule; layer; at; detail } :: acc)
        acc (merge boxes))
    groups []
  |> List.sort (fun a b ->
         let c = Stdlib.compare (a.rule, a.layer) (b.rule, b.layer) in
         if c <> 0 then c else Box.compare a.at b.at)

let check_boxes ?(rules = Rules.mead_conway ()) boxes =
  let cut_violations =
    (* cut dimensions are a per-box rule: the paper-era processes used a
       fixed square contact *)
    let want = Rules.scaled rules rules.Rules.cut_size in
    List.filter_map
      (fun (lyr, bx) ->
        if
          Layer.equal lyr Layer.Contact
          && (Box.width bx <> want || Box.height bx <> want)
        then
          Some
            {
              rule = "cut-size";
              layer = Layer.Contact;
              at = bx;
              detail =
                Printf.sprintf "contact cut is %dx%d, must be %dx%d"
                  (Box.width bx) (Box.height bx) want want;
            }
        else None)
      boxes
  in
  coalesce
    (cut_violations
    @ directional_pass rules boxes ~axis:`X
    @ directional_pass rules (transpose_boxes boxes) ~axis:`Y)

let check ?rules design =
  check_boxes ?rules (Ace_cif.Flatten.flatten design)
