open Ace_geom
open Ace_tech
open Ace_netlist

type stats = { grid_width : int; grid_height : int; squares_visited : int }

let layer_bit lyr = 1 lsl Layer.index lyr
let has mask lyr = mask land layer_bit lyr <> 0

let extract_raw ~grid boxes labels =
  let bbox =
    match Box.hull_list (List.map snd boxes) with
    | Some b -> b
    | None -> Box.make ~l:0 ~b:0 ~r:1 ~t:1
  in
  let floor_div a b = if a >= 0 then a / b else -(((-a) + b - 1) / b) in
  let ceil_div a b = -floor_div (-a) b in
  let x0 = floor_div bbox.Box.l grid and y0 = floor_div bbox.Box.b grid in
  let x1 = ceil_div bbox.Box.r grid and y1 = ceil_div bbox.Box.t grid in
  let gw = x1 - x0 and gh = y1 - y0 in
  let masks = Bytes.make (gw * gh) '\000' in
  let idx x y = (y * gw) + x in
  List.iter
    (fun (lyr, (bx : Box.t)) ->
      let cl = floor_div bx.l grid - x0
      and cr = ceil_div bx.r grid - x0
      and cb = floor_div bx.b grid - y0
      and ct = ceil_div bx.t grid - y0 in
      for y = cb to ct - 1 do
        for x = cl to cr - 1 do
          let i = idx x y in
          Bytes.unsafe_set masks i
            (Char.chr (Char.code (Bytes.unsafe_get masks i) lor layer_bit lyr))
        done
      done)
    boxes;
  let mask_at x y =
    if x < 0 || y < 0 || x >= gw || y >= gh then 0
    else Char.code (Bytes.unsafe_get masks (idx x y))
  in
  let is_channel m =
    has m Layer.Diffusion && has m Layer.Poly && not (has m Layer.Buried)
  in
  let is_diffc m = has m Layer.Diffusion && not (is_channel m) in
  let is_poly m = has m Layer.Poly in
  let is_metal m = has m Layer.Metal in
  let nets = Union_find.create () in
  let dev_uf = Union_find.create () in
  let net_locations = Hashtbl.create 256 in
  (* id grids: diffusion, poly, metal nets and channel devices *)
  let none = -1 in
  let diff_id = Array.make (gw * gh) none in
  let poly_id = Array.make (gw * gh) none in
  let metal_id = Array.make (gw * gh) none in
  let chan_id = Array.make (gw * gh) none in
  let fresh_net x y =
    let e = Union_find.fresh nets in
    Hashtbl.replace net_locations e
      (Point.make ((x + x0) * grid) ((y + y0) * grid));
    e
  in
  (* Assign an id to the cell from its left and upper neighbours (the
     L-shaped window); returns the id. *)
  let assign uf ids ~fresh x y =
    let left = if x > 0 then ids.(idx (x - 1) y) else none in
    (* scanning top to bottom: the row above is y+1 *)
    let up = if y < gh - 1 then ids.(idx x (y + 1)) else none in
    let id =
      match (left, up) with
      | -1, -1 -> fresh x y
      | l, -1 -> l
      | -1, u -> u
      | l, u -> Union_find.union uf l u
    in
    ids.(idx x y) <- id;
    id
  in
  let visited = ref 0 in
  for y = gh - 1 downto 0 do
    for x = 0 to gw - 1 do
      incr visited;
      let m = mask_at x y in
      if m <> 0 then begin
        let d =
          if is_diffc m then assign nets diff_id ~fresh:fresh_net x y else none
        in
        let p =
          if is_poly m then assign nets poly_id ~fresh:fresh_net x y else none
        in
        let mt =
          if is_metal m then assign nets metal_id ~fresh:fresh_net x y else none
        in
        if is_channel m then
          ignore
            (assign dev_uf chan_id
               ~fresh:(fun _ _ -> Union_find.fresh dev_uf)
               x y);
        (* contact cut connects whatever conductors are present *)
        if has m Layer.Contact then begin
          let present = List.filter (fun i -> i <> none) [ d; p; mt ] in
          match present with
          | a :: rest -> List.iter (fun b -> ignore (Union_find.union nets a b)) rest
          | [] -> ()
        end;
        (* buried contact connects poly and diffusion *)
        if has m Layer.Buried && d <> none && p <> none then
          ignore (Union_find.union nets d p)
      end
    done
  done;
  (* Contact runs: the scanline engine's cut rule bridges every conductor
     overlapping a cut interval within one strip, so a wide cut can join
     conductors that never share a grid square.  Mirror that semantics: in
     each row, union everything conducting under a maximal run of cut
     squares. *)
  for y = 0 to gh - 1 do
    let run_ids = ref [] in
    let flush () =
      (match !run_ids with
      | [] | [ _ ] -> ()
      | first :: rest ->
          List.iter (fun b -> ignore (Union_find.union nets first b)) rest);
      run_ids := []
    in
    for x = 0 to gw - 1 do
      if has (mask_at x y) Layer.Contact then
        List.iter
          (fun ids ->
            let id = ids.(idx x y) in
            if id <> none then run_ids := id :: !run_ids)
          [ diff_id; poly_id; metal_id ]
      else flush ()
    done;
    flush ()
  done;
  (* second pass: device data and channel/diffusion adjacency *)
  let dev_area = Hashtbl.create 64 in
  let dev_implant = Hashtbl.create 64 in
  let dev_bbox = Hashtbl.create 64 in
  let dev_gate = Hashtbl.create 64 in
  let edges : (int * int, (int * (Point.t * int)) ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let bump tbl key v =
    match Hashtbl.find_opt tbl key with
    | Some r -> r := !r + v
    | None -> Hashtbl.replace tbl key (ref v)
  in
  let bump_edge tbl key len key_edge =
    match Hashtbl.find_opt tbl key with
    | Some r ->
        let total, best = !r in
        r :=
          ( total + len,
            if Ace_core.Engine.edge_key_less key_edge best then key_edge
            else best )
    | None -> Hashtbl.replace tbl key (ref (len, key_edge))
  in
  for y = 0 to gh - 1 do
    for x = 0 to gw - 1 do
      let c = chan_id.(idx x y) in
      if c <> none then begin
        let root = Union_find.find dev_uf c in
        bump dev_area root (grid * grid);
        if has (mask_at x y) Layer.Implant then bump dev_implant root (grid * grid);
        let cell =
          Box.make ~l:((x + x0) * grid) ~b:((y + y0) * grid)
            ~r:((x + x0 + 1) * grid)
            ~t:((y + y0 + 1) * grid)
        in
        (match Hashtbl.find_opt dev_bbox root with
        | Some r -> r := Box.hull !r cell
        | None -> Hashtbl.replace dev_bbox root (ref cell));
        if not (Hashtbl.mem dev_gate root) then
          Hashtbl.replace dev_gate root poly_id.(idx x y);
        List.iter
          (fun (nx, ny) ->
            if nx >= 0 && ny >= 0 && nx < gw && ny < gh then begin
              let n = diff_id.(idx nx ny) in
              if n <> none then begin
                (* edge position and side in chip coordinates, matching the
                   scanline engine's convention: vertical edges use
                   (x, bottom), horizontal edges (left, y) *)
                let key_edge =
                  if ny = y then
                    ( Point.make ((x0 + max x nx) * grid) ((y0 + y) * grid),
                      if nx < x then Ace_core.Engine.side_left
                      else Ace_core.Engine.side_right )
                  else
                    ( Point.make ((x0 + x) * grid) ((y0 + max y ny) * grid),
                      if ny < y then Ace_core.Engine.side_below
                      else Ace_core.Engine.side_above )
                in
                bump_edge edges (root, Union_find.find nets n) grid key_edge
              end
            end)
          [ (x - 1, y); (x + 1, y); (x, y - 1); (x, y + 1) ]
      end
    done
  done;
  (* labels *)
  let net_names = ref [] in
  let warnings = ref [] in
  List.iter
    (fun (lab : Ace_cif.Design.label) ->
      let x = floor_div lab.position.Point.x grid - x0
      and y = floor_div lab.position.Point.y grid - y0 in
      let lookup ids =
        if x < 0 || y < 0 || x >= gw || y >= gh then none else ids.(idx x y)
      in
      let candidates =
        match lab.layer with
        | Some Layer.Metal -> [ lookup metal_id ]
        | Some Layer.Poly -> [ lookup poly_id ]
        | Some Layer.Diffusion -> [ lookup diff_id ]
        | Some (Layer.Contact | Layer.Implant | Layer.Buried | Layer.Glass)
        | None ->
            [ lookup metal_id; lookup poly_id; lookup diff_id ]
      in
      match List.find_opt (fun i -> i <> none) candidates with
      | Some net -> net_names := (net, lab.name) :: !net_names
      | None ->
          warnings :=
            Printf.sprintf "label %S touches no conducting geometry" lab.name
            :: !warnings)
    labels;
  (* package as an Engine.raw so the standard resolution applies *)
  let devices =
    Hashtbl.fold
      (fun root area acc ->
        let implant =
          match Hashtbl.find_opt dev_implant root with Some r -> !r | None -> 0
        in
        let bbox =
          match Hashtbl.find_opt dev_bbox root with
          | Some r -> !r
          | None -> assert false
        in
        let gate =
          match Hashtbl.find_opt dev_gate root with Some g -> g | None -> -1
        in
        let contacts =
          Hashtbl.fold
            (fun (dr, nr) r acc ->
              if dr = root then
                let len, (pos, side) = !r in
                (nr, len, pos, side) :: acc
              else acc)
            edges []
        in
        ( root,
          {
            Ace_core.Engine.area = !area;
            implant_area = implant;
            bbox;
            gate;
            contacts;
            channel_geometry = [];
            touches_boundary = false;
          } )
        :: acc)
      dev_area []
  in
  ( {
      Ace_core.Engine.nets;
      net_names = !net_names;
      net_locations;
      net_phase = Hashtbl.create 1;
      net_geometry = Hashtbl.create 1;
      devices;
      boundary_nets = [];
      boundary_channels = [];
      warnings = List.rev !warnings;
      stops = gh;
      max_active = 0;
      timing = Ace_core.Timing.create ();
    },
    { grid_width = gw; grid_height = gh; squares_visited = !visited } )

let extract_boxes ?(grid = 125) ?(name = "chip") ?(labels = []) boxes =
  let raw, _ = extract_raw ~grid boxes labels in
  Ace_core.Extractor.circuit_of_raw ~name ~include_partial:true raw

let extract_with_stats ?(grid = 125) ?(name = "chip") design =
  let boxes = Ace_cif.Flatten.flatten design in
  let labels = Ace_cif.Design.labels design in
  let raw, stats = extract_raw ~grid boxes labels in
  (Ace_core.Extractor.circuit_of_raw ~name ~include_partial:true raw, stats)

let extract ?grid ?name design = fst (extract_with_stats ?grid ?name design)
