open Ace_geom
open Ace_tech
open Ace_netlist

(* An independent re-implementation of strip-decomposition extraction with
   deliberately non-incremental structure: every strip re-scans the whole
   box array to find its active set.  Besides reproducing the comparison
   table's shape, this provides an N-version cross-check of the scanline
   engine (the test-suite requires both to produce equivalent circuits). *)

type stats = { stops : int; boxes_scanned : int }

type tagged = (Interval.span * int) list

let spans_of boxes layer ~top ~bottom =
  let spans =
    List.filter_map
      (fun (lyr, (bx : Box.t)) ->
        if Layer.equal lyr layer && bx.t >= top && bx.b <= bottom then
          Some (bx.l, bx.r)
        else None)
      boxes
  in
  Interval.of_spans spans

(* Tag current-strip intervals with net ids inherited from the previous
   strip by x-overlap. *)
let tag uf prev cur ~fresh =
  List.map
    (fun (c : Interval.span) ->
      let overlapping =
        List.filter_map
          (fun ((p : Interval.span), id) ->
            if max p.lo c.lo < min p.hi c.hi then Some id else None)
          prev
      in
      match overlapping with
      | [] -> (c, fresh c)
      | first :: rest ->
          List.iter (fun id -> ignore (Union_find.union uf first id)) rest;
          (c, first))
    cur

let ids_overlapping (tagged : tagged) (s : Interval.span) =
  List.filter_map
    (fun ((t : Interval.span), id) ->
      if max t.lo s.lo < min t.hi s.hi then Some id else None)
    tagged

let extract_raw boxes labels =
  let nets = Union_find.create () in
  let dev_uf = Union_find.create () in
  let net_locations = Hashtbl.create 256 in
  let net_names = ref [] in
  let warnings = ref [] in
  let dev_area = Hashtbl.create 64 in
  let dev_implant = Hashtbl.create 64 in
  let dev_bbox = Hashtbl.create 64 in
  let dev_gate = Hashtbl.create 64 in
  let edge_len : (int * int, (int * (Point.t * int)) ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let bump tbl key v =
    match Hashtbl.find_opt tbl key with
    | Some r -> r := !r + v
    | None -> Hashtbl.replace tbl key (ref v)
  in
  let bump_edge key len key_edge =
    match Hashtbl.find_opt edge_len key with
    | Some r ->
        let total, best = !r in
        r :=
          ( total + len,
            if Ace_core.Engine.edge_key_less key_edge best then key_edge
            else best )
    | None -> Hashtbl.replace edge_len key (ref (len, key_edge))
  in
  let stops =
    List.concat_map (fun (_, (bx : Box.t)) -> [ bx.t; bx.b ]) boxes
    |> List.sort_uniq (fun a b -> Int.compare b a)
  in
  let boxes_scanned = ref 0 in
  let prev_diff = ref [] and prev_poly = ref [] and prev_metal = ref [] in
  let prev_chan = ref [] in
  let pending_labels = ref labels in
  let rec strip_pairs = function
    | top :: (bottom :: _ as rest) ->
        process ~top ~bottom;
        strip_pairs rest
    | [ _ ] | [] -> ()
  and process ~top ~bottom =
    boxes_scanned := !boxes_scanned + List.length boxes;
    let height = top - bottom in
    let diff_raw = spans_of boxes Layer.Diffusion ~top ~bottom in
    let poly_raw = spans_of boxes Layer.Poly ~top ~bottom in
    let metal_raw = spans_of boxes Layer.Metal ~top ~bottom in
    let cut_raw = spans_of boxes Layer.Contact ~top ~bottom in
    let buried_raw = spans_of boxes Layer.Buried ~top ~bottom in
    let implant_raw = spans_of boxes Layer.Implant ~top ~bottom in
    let gate_overlap = Interval.inter diff_raw poly_raw in
    let channel = Interval.diff gate_overlap buried_raw in
    let buried_contact = Interval.inter gate_overlap buried_raw in
    let diff_cond = Interval.diff diff_raw channel in
    let fresh_net (s : Interval.span) =
      let e = Union_find.fresh nets in
      Hashtbl.replace net_locations e (Point.make s.lo bottom);
      e
    in
    let new_diff = tag nets !prev_diff diff_cond ~fresh:fresh_net in
    let new_poly = tag nets !prev_poly poly_raw ~fresh:fresh_net in
    let new_metal = tag nets !prev_metal metal_raw ~fresh:fresh_net in
    let new_chan =
      tag dev_uf !prev_chan channel ~fresh:(fun _ -> Union_find.fresh dev_uf)
    in
    (* Accumulate against element ids — classes are still merging; data is
       grouped by final root after the sweep. *)
    List.iter
      (fun ((s : Interval.span), dev) ->
        bump dev_area dev ((s.hi - s.lo) * height);
        let imp = Interval.overlap_length [ s ] implant_raw in
        if imp > 0 then bump dev_implant dev (imp * height);
        let cell = Box.make ~l:s.lo ~b:bottom ~r:s.hi ~t:top in
        (match Hashtbl.find_opt dev_bbox dev with
        | Some r -> r := Box.hull !r cell
        | None -> Hashtbl.replace dev_bbox dev (ref cell));
        (match ids_overlapping new_poly s with
        | g :: _ ->
            if not (Hashtbl.mem dev_gate dev) then Hashtbl.replace dev_gate dev g
        | [] -> ());
        (* same-strip abutment with conducting diffusion *)
        List.iter
          (fun ((d : Interval.span), net) ->
            if d.hi = s.lo then
              bump_edge (dev, net) height
                (Point.make s.lo bottom, Ace_core.Engine.side_left)
            else if d.lo = s.hi then
              bump_edge (dev, net) height
                (Point.make s.hi bottom, Ace_core.Engine.side_right))
          new_diff;
        (* cross-strip overlap with the previous strip's diffusion *)
        List.iter
          (fun ((d : Interval.span), net) ->
            let len = max 0 (min d.hi s.hi - max d.lo s.lo) in
            if len > 0 then
              bump_edge (dev, net) len
                (Point.make (max d.lo s.lo) top, Ace_core.Engine.side_above))
          !prev_diff)
      new_chan;
    (* previous strip's channels over this strip's diffusion *)
    List.iter
      (fun ((s : Interval.span), dev) ->
        List.iter
          (fun ((d : Interval.span), net) ->
            let len = max 0 (min d.hi s.hi - max d.lo s.lo) in
            if len > 0 then
              bump_edge (dev, net) len
                (Point.make (max d.lo s.lo) top, Ace_core.Engine.side_below))
          new_diff)
      !prev_chan;
    let connect vias tracks =
      List.iter
        (fun via ->
          let ids = List.concat_map (fun t -> ids_overlapping t via) tracks in
          match ids with
          | [] | [ _ ] -> ()
          | first :: rest ->
              List.iter (fun id -> ignore (Union_find.union nets first id)) rest)
        vias
    in
    connect cut_raw [ new_metal; new_poly; new_diff ];
    connect buried_contact [ new_poly; new_diff ];
    let rec bind () =
      match !pending_labels with
      | (lab : Ace_cif.Design.label) :: rest
        when lab.position.Point.y >= bottom && lab.position.Point.y < top ->
          pending_labels := rest;
          let x = lab.position.Point.x in
          let find_in tagged =
            List.find_map
              (fun ((s : Interval.span), id) ->
                if s.lo <= x && x < s.hi then Some id else None)
              tagged
          in
          let tracks =
            match lab.layer with
            | Some Layer.Metal -> [ new_metal ]
            | Some Layer.Poly -> [ new_poly ]
            | Some Layer.Diffusion -> [ new_diff ]
            | Some (Layer.Contact | Layer.Implant | Layer.Buried | Layer.Glass)
            | None ->
                [ new_metal; new_poly; new_diff ]
          in
          (match List.find_map find_in tracks with
          | Some net -> net_names := (net, lab.name) :: !net_names
          | None ->
              warnings :=
                Printf.sprintf "label %S touches no conducting geometry"
                  lab.name
                :: !warnings);
          bind ()
      | (_ : Ace_cif.Design.label) :: rest
        when (match !pending_labels with
              | l :: _ -> l.position.Point.y >= top
              | [] -> false) ->
          pending_labels := rest;
          bind ()
      | _ -> ()
    in
    bind ();
    prev_diff := new_diff;
    prev_poly := new_poly;
    prev_metal := new_metal;
    prev_chan := new_chan
  in
  strip_pairs stops;
  (* group per-element accumulators by final device root *)
  let devices =
    let by_root : (int, Ace_core.Engine.device_data ref) Hashtbl.t =
      Hashtbl.create 64
    in
    Hashtbl.iter
      (fun elem area ->
        let root = Union_find.find dev_uf elem in
        let implant =
          match Hashtbl.find_opt dev_implant elem with Some r -> !r | None -> 0
        in
        let bbox =
          match Hashtbl.find_opt dev_bbox elem with
          | Some r -> !r
          | None -> assert false
        in
        let gate =
          match Hashtbl.find_opt dev_gate elem with Some g -> g | None -> -1
        in
        match Hashtbl.find_opt by_root root with
        | Some r ->
            r :=
              {
                !r with
                Ace_core.Engine.area = !r.Ace_core.Engine.area + !area;
                implant_area = !r.Ace_core.Engine.implant_area + implant;
                bbox = Box.hull !r.Ace_core.Engine.bbox bbox;
                gate =
                  (if !r.Ace_core.Engine.gate >= 0 then !r.Ace_core.Engine.gate
                   else gate);
              }
        | None ->
            Hashtbl.replace by_root root
              (ref
                 {
                   Ace_core.Engine.area = !area;
                   implant_area = implant;
                   bbox;
                   gate;
                   contacts = [];
                   channel_geometry = [];
                   touches_boundary = false;
                 }))
      dev_area;
    (* edge contacts: re-key to (final device root, final net root) *)
    let merged : (int * int, (int * (Point.t * int)) ref) Hashtbl.t =
    Hashtbl.create 64
  in
    Hashtbl.iter
      (fun (dev_elem, net_elem) r0 ->
        let len, key_edge = !r0 in
        let key =
          (Union_find.find dev_uf dev_elem, Union_find.find nets net_elem)
        in
        match Hashtbl.find_opt merged key with
        | Some r ->
            let total, best = !r in
            r :=
              ( total + len,
                if Ace_core.Engine.edge_key_less key_edge best then key_edge
                else best )
        | None -> Hashtbl.replace merged key (ref (len, key_edge)))
      edge_len;
    Hashtbl.iter
      (fun (dev_root, net_root) r0 ->
        let len, (pos, side) = !r0 in
        match Hashtbl.find_opt by_root dev_root with
        | Some r ->
            r :=
              {
                !r with
                Ace_core.Engine.contacts =
                  (net_root, len, pos, side) :: !r.Ace_core.Engine.contacts;
              }
        | None -> ())
      merged;
    Hashtbl.fold (fun root r acc -> (root, !r) :: acc) by_root []
  in
  ( {
      Ace_core.Engine.nets;
      net_names = !net_names;
      net_locations;
      net_phase = Hashtbl.create 1;
      net_geometry = Hashtbl.create 1;
      devices;
      boundary_nets = [];
      boundary_channels = [];
      warnings = List.rev !warnings;
      stops = List.length stops;
      max_active = 0;
      timing = Ace_core.Timing.create ();
    },
    { stops = List.length stops; boxes_scanned = !boxes_scanned } )

let extract_boxes ?(name = "chip") ?(labels = []) boxes =
  let raw, _ = extract_raw boxes labels in
  Ace_core.Extractor.circuit_of_raw ~name ~include_partial:true raw

let extract_with_stats ?(name = "chip") design =
  let boxes = Ace_cif.Flatten.flatten design in
  let labels = Ace_cif.Design.labels design in
  let raw, stats = extract_raw boxes labels in
  (Ace_core.Extractor.circuit_of_raw ~name ~include_partial:true raw, stats)

let extract ?name design = fst (extract_with_stats ?name design)
