(* Flat-arena interval vectors: the allocation-free counterpart of
   [Interval.t] used by the scanline engine's per-strip `devices` algebra.
   A vector is a pair (triple, tagged) of parallel int arrays reused
   across strips — operations write into caller-owned destinations, so the
   steady-state scan allocates no cons cell per interval (the same
   discipline PR 8 gave the active lists).  Semantics match the list
   module exactly; the qcheck equivalence properties in test_geom pin
   them together. *)

type t = { mutable lo : int array; mutable hi : int array; mutable len : int }

type tagged = {
  mutable tlo : int array;
  mutable thi : int array;
  mutable ttag : int array;
  mutable tlen : int;
}

let create ?(cap = 16) () =
  let cap = max cap 1 in
  { lo = Array.make cap 0; hi = Array.make cap 0; len = 0 }

let clear v = v.len <- 0

let reserve v extra =
  let need = v.len + extra in
  if need > Array.length v.lo then begin
    let cap = max need (2 * Array.length v.lo) in
    let grow src =
      let dst = Array.make cap 0 in
      Array.blit src 0 dst 0 v.len;
      dst
    in
    v.lo <- grow v.lo;
    v.hi <- grow v.hi
  end

let push v lo hi =
  reserve v 1;
  let i = v.len in
  v.lo.(i) <- lo;
  v.hi.(i) <- hi;
  v.len <- i + 1

let to_list v =
  let acc = ref [] in
  for i = v.len - 1 downto 0 do
    acc := { Interval.lo = v.lo.(i); hi = v.hi.(i) } :: !acc
  done;
  !acc

let of_list (ivl : Interval.t) =
  let v = create ~cap:(max 1 (List.length ivl)) () in
  List.iter (fun (s : Interval.span) -> push v s.lo s.hi) ivl;
  v

let total_length v =
  let acc = ref 0 in
  for i = 0 to v.len - 1 do
    acc := !acc + v.hi.(i) - v.lo.(i)
  done;
  !acc

let tagged_create ?(cap = 16) () =
  let cap = max cap 1 in
  {
    tlo = Array.make cap 0;
    thi = Array.make cap 0;
    ttag = Array.make cap 0;
    tlen = 0;
  }

let tagged_clear v = v.tlen <- 0

let tagged_reserve v extra =
  let need = v.tlen + extra in
  if need > Array.length v.tlo then begin
    let cap = max need (2 * Array.length v.tlo) in
    let grow src =
      let dst = Array.make cap 0 in
      Array.blit src 0 dst 0 v.tlen;
      dst
    in
    v.tlo <- grow v.tlo;
    v.thi <- grow v.thi;
    v.ttag <- grow v.ttag
  end

let tagged_push v lo hi tag =
  tagged_reserve v 1;
  let i = v.tlen in
  v.tlo.(i) <- lo;
  v.thi.(i) <- hi;
  v.ttag.(i) <- tag;
  v.tlen <- i + 1

let tagged_to_list v =
  let acc = ref [] in
  for i = v.tlen - 1 downto 0 do
    acc := ({ Interval.lo = v.tlo.(i); hi = v.thi.(i) }, v.ttag.(i)) :: !acc
  done;
  !acc

let tagged_of_list l =
  let v = tagged_create ~cap:(max 1 (List.length l)) () in
  List.iter (fun ((s : Interval.span), tag) -> tagged_push v s.lo s.hi tag) l;
  v

let inter_into ~dst a b =
  clear dst;
  let i = ref 0 and j = ref 0 in
  while !i < a.len && !j < b.len do
    let lo = max a.lo.(!i) b.lo.(!j) and hi = min a.hi.(!i) b.hi.(!j) in
    if lo < hi then push dst lo hi;
    if a.hi.(!i) < b.hi.(!j) then incr i else incr j
  done

let diff_into ~dst a b =
  clear dst;
  (* [j] is the first b-span whose end lies beyond the current a-span's
     start; it only ever advances (a is sorted), but the scan below must
     not consume a b-span that also clips the next a-span. *)
  let j = ref 0 in
  for i = 0 to a.len - 1 do
    let alo = a.lo.(i) and ahi = a.hi.(i) in
    while !j < b.len && b.hi.(!j) <= alo do incr j done;
    let cur = ref alo and k = ref !j in
    while !k < b.len && b.lo.(!k) < ahi do
      if b.lo.(!k) > !cur then push dst !cur b.lo.(!k);
      if b.hi.(!k) > !cur then cur := b.hi.(!k);
      incr k
    done;
    if !cur < ahi then push dst !cur ahi
  done

let overlap_length a b =
  let acc = ref 0 and i = ref 0 and j = ref 0 in
  while !i < a.len && !j < b.len do
    let o = min a.hi.(!i) b.hi.(!j) - max a.lo.(!i) b.lo.(!j) in
    if o > 0 then acc := !acc + o;
    if a.hi.(!i) < b.hi.(!j) then incr i else incr j
  done;
  !acc

(* Id assignment by vertical overlap with the previous strip — the arena
   counterpart of the engine's list-based [assign]: for each current span,
   the first overlapping previous span donates its id (every further
   overlapping one is unioned into it, in left-to-right order, exactly as
   the list walk did); a span with no overlap gets [fresh lo hi]. *)
let assign ~prev ~cur ~dst ~fresh ~union =
  tagged_clear dst;
  let p = ref 0 in
  for c = 0 to cur.len - 1 do
    let clo = cur.lo.(c) and chi = cur.hi.(c) in
    while !p < prev.tlen && prev.thi.(!p) <= clo do incr p done;
    let first = ref (-1) and k = ref !p in
    while !k < prev.tlen && prev.tlo.(!k) < chi do
      let id = prev.ttag.(!k) in
      if !first < 0 then first := id else union !first id;
      incr k
    done;
    let id = if !first < 0 then fresh clo chi else !first in
    tagged_push dst clo chi id
  done

(* Overlap pairs between two tagged vectors, ascending; [f ia ib len lo]
   for each strict overlap — same visit order and tie-breaking as the
   list-based walk (ties on the right edge advance [b]). *)
let iter_tagged_overlaps a b ~f =
  let i = ref 0 and j = ref 0 in
  while !i < a.tlen && !j < b.tlen do
    let lo = max a.tlo.(!i) b.tlo.(!j) in
    let len = min a.thi.(!i) b.thi.(!j) - lo in
    if len > 0 then f a.ttag.(!i) b.ttag.(!j) len lo;
    if a.thi.(!i) < b.thi.(!j) then incr i else incr j
  done

let iter_tagged v ~f =
  for i = 0 to v.tlen - 1 do
    f v.tlo.(i) v.thi.(i) v.ttag.(i)
  done
