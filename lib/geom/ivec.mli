(** Flat-arena interval vectors.

    The allocation-free counterpart of {!Interval.t} for the scanline
    engine's per-strip `devices` algebra: canonical interval sets stored
    as parallel int arrays, with set operations writing into caller-owned,
    reusable destination vectors.  In steady state the engine recycles a
    fixed pool of these across strips, so the devices phase allocates no
    cons cell per interval.

    Every operation assumes — and produces — the same canonical form as
    {!Interval}: spans sorted by [lo], pairwise disjoint; plain vectors
    are additionally non-abutting.  Semantics are pinned to the list
    module by qcheck equivalence properties (test_geom).

    The record fields are exposed for zero-overhead reads on the engine's
    hot path; treat them as read-only outside this module and mutate only
    through the operations below. *)

type t = { mutable lo : int array; mutable hi : int array; mutable len : int }
(** A canonical interval set: span [i] is [\[lo.(i), hi.(i))], for
    [i < len]. *)

type tagged = {
  mutable tlo : int array;
  mutable thi : int array;
  mutable ttag : int array;
  mutable tlen : int;
}
(** A sorted, disjoint span set with an id per span (net or device
    class) — the engine's per-layer strip tracks. *)

val create : ?cap:int -> unit -> t
val clear : t -> unit

val push : t -> int -> int -> unit
(** Append one span; the caller maintains canonical order. *)

val to_list : t -> Interval.t
val of_list : Interval.t -> t
val total_length : t -> int

val tagged_create : ?cap:int -> unit -> tagged
val tagged_clear : tagged -> unit
val tagged_push : tagged -> int -> int -> int -> unit
val tagged_to_list : tagged -> (Interval.span * int) list
val tagged_of_list : (Interval.span * int) list -> tagged

val inter_into : dst:t -> t -> t -> unit
(** [inter_into ~dst a b]: [dst] becomes the intersection of [a] and [b]
    ([Interval.inter]).  [dst] must be distinct from [a] and [b]. *)

val diff_into : dst:t -> t -> t -> unit
(** [diff_into ~dst a b]: [dst] becomes [a] minus [b] ([Interval.diff]).
    [dst] must be distinct from [a] and [b]. *)

val overlap_length : t -> t -> int
(** Total length of the intersection, without building it. *)

val assign :
  prev:tagged ->
  cur:t ->
  dst:tagged ->
  fresh:(int -> int -> int) ->
  union:(int -> int -> unit) ->
  unit
(** [assign ~prev ~cur ~dst ~fresh ~union] tags each span of [cur] by
    overlap with the previous strip's tagged spans: the first overlapping
    span donates its id and every further overlapping one is passed to
    [union first other] in ascending order; a span overlapping nothing
    gets [fresh lo hi].  [dst] must be distinct from [prev]. *)

val iter_tagged_overlaps :
  tagged -> tagged -> f:(int -> int -> int -> int -> unit) -> unit
(** [iter_tagged_overlaps a b ~f] calls [f ida idb len lo] for every
    strictly-overlapping span pair, in ascending order. *)

val iter_tagged : tagged -> f:(int -> int -> int -> unit) -> unit
(** [iter_tagged v ~f] calls [f lo hi tag] on each span in order. *)
