open Ace_netlist

(** Lenient structural-Verilog reference front end.

    Accepts the structural subset gate-level netlisters emit:
    [module]/[endmodule], [wire]/[input]/[output]/[inout] declarations,
    and instances with named ([.p(net)]) or positional port maps.  The
    gate primitives [not], [nand], [nor], and the [nmos] switch lower to
    the depletion-load transistor IR the extractor produces (pull-down
    enhancement network plus a gate-tied depletion load), so Verilog
    references feed the same {!Reduce}/{!Match} pipeline as SPICE ones.
    Lowered devices carry L=W=0, which the size audit treats as
    "unspecified" and skips.

    Parsing never raises: every malformed construct becomes a diagnostic
    with a byte span and a stable code ([lvs-ref-verilog-syntax],
    [lvs-ref-bad-portmap], [lvs-ref-unknown-primitive],
    [lvs-ref-pin-mismatch], [lvs-ref-recursive], [lvs-ref-too-large]),
    and a circuit is always produced from whatever was readable.

    The compared module is the last-defined module that is never
    instantiated (falling back to the last-defined module); the rest are
    expanded into it.  [vdd]/[gnd] (defaults ["VDD"]/["GND"]) are
    implicit global nets, and node [0] aliases ground as in SPICE. *)

val parse :
  ?name:string ->
  ?vdd:string ->
  ?gnd:string ->
  string ->
  Circuit.t * Ace_diag.Diag.t list
