open Ace_netlist

(** Series/parallel transistor-chain reduction.

    Schematic transistors are routinely drawn as several layout fingers:
    parallel devices sharing gate and both channel terminals (widths add),
    and series chains through anonymous internal nets sharing gate and
    width (lengths add).  Reducing both circuits to this canonical form
    before comparison makes LVS insensitive to fingering, and the
    multiplicity counts expose genuinely duplicated devices.

    Reduction is conservative: only anonymous internal nets with exactly
    two channel terminals and no gate terminals are collapsed by the
    series rule, so user-visible nets always survive.  [anonymous]
    decides which nets qualify (default: nets with no name at all); the
    comparator passes "no name shared with the other side", so a net
    auto-named by a SPICE round trip reduces exactly like its unnamed
    layout counterpart. *)

type t = {
  circuit : Circuit.t;  (** the reduced circuit (original nets kept) *)
  mult : int array;
      (** per reduced device: how many original devices it absorbed in
          parallel (series chains count as their parallel multiplicity) *)
  merged : int;  (** total merge operations performed *)
}

val reduce :
  ?cancel:Ace_core.Cancel.t ->
  ?anonymous:(Circuit.net -> bool) ->
  Circuit.t ->
  t

val canonicalize :
  ?seed:(int -> int) -> ?anonymous:(Circuit.net -> bool) -> t -> t
(** Canonical terminal order for commutative series gate chains.

    A series chain of identical devices linked through anonymous interior
    nets (no gate terminals, exactly two channel terminals each) conducts
    iff all its gates do, regardless of gate order — so a NAND drawn with
    swapped inputs is electrically the layout's NAND, yet a purely
    structural compare reports a net split.  [canonicalize] rewrites each
    such chain into a canonical order: keys come from partition refinement
    on a collapsed graph where the whole chain is one super-device with an
    unordered gate set (keys cannot depend on gate position), seeded by
    [seed] (e.g. shared net names and rails, identically on both sides).
    A chain is reoriented only when its endpoint keys are distinct, and
    gates are stable-sorted by key, so refinement-indistinguishable ties
    are left exactly as found — symmetric structures are never scrambled.

    [mult] stays aligned because chain members are required to share
    dtype, size, and multiplicity; only terminal assignments move. *)
