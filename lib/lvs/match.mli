open Ace_netlist

(** The LVS comparator: layout-vs-schematic by seeded partition
    refinement.

    Both circuits are first series/parallel-reduced ({!Reduce}), then nets
    and devices are colored by Gemini-style iterative refinement — the
    same hashing discipline as {!Ace_netlist.Compare} — with initial
    colors seeded from pinned power rails and net-name hints shared by the
    two sides (a name attached to exactly one net on each side).  Device
    sizes deliberately stay out of the colors, so a W/L discrepancy
    surfaces as a size finding on matched devices instead of dissolving
    into an opaque topology mismatch.

    When the final color multisets agree the circuits are structurally
    equivalent; sizes and multiplicities are then audited class by class.
    When they disagree, devices are paired greedily by their color
    histories (finest round first) and the unpaired remainder plus
    terminal-correspondence votes localize the difference: extra/missing
    devices, split/merged nets, count mismatches, or — as a last resort —
    a bare topology verdict. *)

type finding = {
  code : string;  (** stable [lvs-*] identifier *)
  severity : Ace_diag.Diag.severity;
  message : string;
  anchor : string;
      (** stable identity token (physical locations, user names — never
          array indices) for waiver fingerprints *)
  layout_net : int option;  (** anchor net in the layout circuit, if any *)
}

type stats = {
  layout_devices : int;  (** after reduction *)
  ref_devices : int;
  layout_nets : int;  (** connected nets after reduction *)
  ref_nets : int;
  reductions : int;  (** series/parallel merges, both sides *)
  rounds : int;  (** refinement rounds *)
  matched : int;  (** devices paired across the two sides *)
}

type outcome = Clean | Mismatch | Inconclusive

type result = {
  outcome : outcome;
  findings : finding list;
  stats : stats;
}

(** [run ?cancel ?with_sizes ?tolerance ?vdd ?gnd ?max_findings ~layout
    ~reference ()].  [with_sizes] (default true) audits L/W on
    structurally matched devices; [tolerance] (default 0.) is the allowed
    relative deviation ([|a-b| <= tolerance * max a b]); reference sizes
    of 0 (unspecified) are never checked.  [vdd]/[gnd] (defaults
    ["VDD"]/["GND"]) pin the rails.  [max_findings] (default 20) caps
    each per-code finding flood, with an overflow note; 0 means
    unlimited.  Commutative series gate chains are canonicalized on both
    sides before refinement ({!Reduce.canonicalize}), so swapped inputs
    on a NAND compare Clean.  Comparison is symmetric: swapping the two
    circuits yields the same outcome with mirrored finding polarity
    (extra <-> missing). *)
val run :
  ?cancel:Ace_core.Cancel.t ->
  ?with_sizes:bool ->
  ?tolerance:float ->
  ?vdd:string ->
  ?gnd:string ->
  ?max_findings:int ->
  layout:Circuit.t ->
  reference:Circuit.t ->
  unit ->
  result

val run_full :
  ?cancel:Ace_core.Cancel.t ->
  ?with_sizes:bool ->
  ?tolerance:float ->
  ?vdd:string ->
  ?gnd:string ->
  ?max_findings:int ->
  layout:Circuit.t ->
  reference:Circuit.t ->
  unit ->
  result * (int * int) list * (int * int) list
(** Like {!run}, but additionally returns each side's final refinement
    colors as [(original net index, color)] pairs over the comparison
    nets (layout side first).  On a Clean outcome the color partitions of
    the two sides correspond class by class, which is how {!Hier} derives
    the boundary-pin correspondence of a matched cell; reduction never
    renumbers nets, so the indices are valid in the input circuits. *)
