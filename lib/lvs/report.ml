module Diag = Ace_diag.Diag

let to_diag (f : Match.finding) =
  Diag.make f.Match.severity ~code:f.Match.code f.Match.message

(* FNV-1a, 64 bit — the same function Ace_lint.Finding uses, applied to
   the comparator's stable anchor tokens. *)
let fnv1a64 s =
  let prime = 0x100000001b3L and basis = 0xcbf29ce484222325L in
  let h = ref basis in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  Printf.sprintf "%016Lx" !h

let fingerprint (f : Match.finding) =
  fnv1a64 (String.concat "|" [ "lvs"; f.Match.code; f.Match.anchor ])

(* One entry per stable code: comparator verdict codes first, then the
   lenient reference-parser codes.  Levels are the default severities. *)
let rules =
  [
    ("lvs-device-count", "device counts differ after reduction", "error");
    ("lvs-net-count", "connected net counts differ", "error");
    ("lvs-extra-device", "layout transistor with no reference counterpart", "error");
    ("lvs-missing-device", "reference transistor with no layout counterpart", "error");
    ("lvs-dup-device", "parallel multiplicity differs between layout and reference", "error");
    ("lvs-net-split", "one reference net corresponds to several layout nets", "error");
    ("lvs-net-merge", "one layout net matches several reference nets", "error");
    ("lvs-size-mismatch", "transistor L/W differs beyond tolerance", "error");
    ("lvs-topology", "connectivity differs with equal counts", "error");
    ("lvs-inconclusive", "comparison could not be decided", "warning");
    ("lvs-ref-bad-card", "malformed card in the reference netlist", "error");
    ("lvs-ref-bad-device", "malformed transistor card", "error");
    ("lvs-ref-bad-number", "unparsable dimension value", "error");
    ("lvs-ref-unknown-model", "unknown device model treated as enhancement", "note");
    ("lvs-ref-unknown-card", "unknown control card ignored", "note");
    ("lvs-ref-ignored-card", "non-transistor element ignored", "note");
    ("lvs-ref-undefined-subckt", "instance of an undefined subcircuit", "error");
    ("lvs-ref-pin-mismatch", "instance pin count differs from the definition", "error");
    ("lvs-ref-recursive", "recursive subcircuit expansion", "error");
    ("lvs-ref-unmatched-ends", ".ENDS without a matching .SUBCKT", "error");
    ("lvs-ref-unterminated-subckt", ".SUBCKT never closed", "error");
    ("lvs-ref-too-large", "flattened netlist exceeds the device limit", "error");
    ("lvs-ref-verilog-syntax", "unparsable structural-Verilog statement", "error");
    ("lvs-ref-bad-portmap", "malformed instance port map", "error");
    ("lvs-ref-unknown-primitive", "unknown gate primitive ignored", "error");
    ("lvs-cell-mismatch", "a layout cell does not match its reference subcircuit", "error");
    ("lvs-cell-unmatched", "a layout cell has no candidate reference subcircuit", "note");
  ]

let sarif_rules () =
  List.map
    (fun (id, summary, level) ->
      { Ace_diag.Sarif.id; summary; help = ""; level })
    rules
