(* Lenient SPICE-ish reference-netlist parser.

   Mirrors the CIF front-end philosophy: never raise, always produce a
   circuit from whatever was readable, and report every problem as an
   Ace_diag diagnostic with a byte span and a stable lvs-ref-* code.  The
   dialect is deliberately small — M cards, .SUBCKT/.ENDS/X hierarchy,
   .MODEL, .GLOBAL, comments and continuations — which covers both what
   schematic tools emit and what Ace_netlist.Spice prints, so extracted
   decks round-trip. *)

open Ace_netlist
module Diag = Ace_diag.Diag
module Point = Ace_geom.Point

(* ---------- logical cards ---------------------------------------------- *)

type card = { span : Diag.span; tokens : string list }

(* Split [text] into logical cards: physical lines, with a leading '+'
   continuing the previous card.  '*' lines are comments; '$' starts an
   inline comment.  Spans cover the full logical card. *)
let cards_of_string text =
  let len = String.length text in
  let lines = ref [] in
  let start = ref 0 in
  for i = 0 to len - 1 do
    if text.[i] = '\n' then begin
      lines := (!start, i) :: !lines;
      start := i + 1
    end
  done;
  if !start < len then lines := (!start, len) :: !lines;
  let lines = List.rev !lines in
  let strip (a, b) =
    let s = String.sub text a (b - a) in
    let s =
      match String.index_opt s '$' with
      | Some k -> String.sub s 0 k
      | None -> s
    in
    String.trim s
  in
  let cards = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | None -> ()
    | Some (a, b, buf) ->
        let tokens =
          String.concat " " (List.rev buf)
          |> String.map (function '(' | ')' | ',' -> ' ' | c -> c)
          |> String.split_on_char ' '
          |> List.filter (fun t -> t <> "")
        in
        if tokens <> [] then
          cards := { span = { Diag.start = a; stop = b }; tokens } :: !cards;
        current := None
  in
  List.iter
    (fun (a, b) ->
      let s = strip (a, b) in
      if s = "" || s.[0] = '*' then ()
      else if s.[0] = '+' then
        match !current with
        | Some (a0, _, buf) ->
            current := Some (a0, b, String.sub s 1 (String.length s - 1) :: buf)
        | None -> current := Some (a, b, [ String.sub s 1 (String.length s - 1) ])
      else begin
        flush ();
        current := Some (a, b, [ s ])
      end)
    lines;
  flush ();
  List.rev !cards

(* ---------- numbers ----------------------------------------------------- *)

(* Dimension values: bare numbers are centimicrons; U = microns (x100),
   N = nanometers (/10), M = millimeters (x100_000).  Returns rounded
   centimicrons, or None on malformed input. *)
let parse_dim s =
  let s = String.uppercase_ascii s in
  let n = String.length s in
  if n = 0 then None
  else
    let scale, cut =
      match s.[n - 1] with
      | 'U' -> (100., 1)
      | 'N' -> (0.1, 1)
      | 'M' -> (100_000., 1)
      | _ -> (1., 0)
    in
    match float_of_string_opt (String.sub s 0 (n - cut)) with
    | Some v when v >= 0. -> Some (int_of_float (Float.round (v *. scale)))
    | _ -> None

(* ---------- first pass: collect scopes ---------------------------------- *)

type dev_card = {
  d_span : Diag.span;
  d_name : string;
  d_model : string;  (** uppercased model token *)
  d_d : string;
  d_g : string;
  d_s : string;  (** node tokens, original spelling *)
  d_l : int;
  d_w : int;  (** centimicrons; 0 = unspecified *)
}

type inst_card = {
  i_span : Diag.span;
  i_name : string;
  i_nodes : string list;
  i_sub : string;  (** uppercased subckt name *)
}

type item = Dev of dev_card | Inst of inst_card

type scope = {
  s_name : string;  (** uppercased; "" = top level *)
  s_pins : string list;  (** uppercased formal pin names *)
  s_span : Diag.span option;
  mutable s_items : item list;  (** reversed *)
}

let up = String.uppercase_ascii

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Split card tokens into positional tokens and K=V parameters. *)
let split_params tokens =
  List.partition_map
    (fun t ->
      match String.index_opt t '=' with
      | Some k when k > 0 ->
          Right
            ( up (String.sub t 0 k),
              String.sub t (k + 1) (String.length t - k - 1) )
      | _ -> Left t)
    tokens

(* First-pass result: scopes, models, and globals collected from the
   cards, shared by the flat flattener and the hierarchical view. *)
type scan = {
  sc_subckts : (string, scope) Hashtbl.t;
  sc_models : (string, Ace_tech.Nmos.device_type) Hashtbl.t;
  sc_globals : (string, unit) Hashtbl.t;
  sc_top : scope;
  sc_diags : Diag.t list;  (** in order *)
}

let scan_text text =
  let diags = ref [] in
  let diag d = diags := d :: !diags in
  let cards = cards_of_string text in
  let subckts : (string, scope) Hashtbl.t = Hashtbl.create 8 in
  let models : (string, Ace_tech.Nmos.device_type) Hashtbl.t =
    Hashtbl.create 4
  in
  let globals : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let top = { s_name = ""; s_pins = []; s_span = None; s_items = [] } in
  let stack = ref [ top ] in
  let cur () = List.hd !stack in
  let stopped = ref false in
  let do_card { span; tokens } =
    let head = List.hd tokens in
    let keyword = up head in
    match keyword.[0] with
    | '.' -> (
        match keyword with
        | ".SUBCKT" -> (
            match tokens with
            | _ :: sname :: pins ->
                let pins, _params = split_params pins in
                let scope =
                  {
                    s_name = up sname;
                    s_pins = List.map up pins;
                    s_span = Some span;
                    s_items = [];
                  }
                in
                stack := scope :: !stack
            | _ ->
                diag
                  (Diag.error ~span ~code:"lvs-ref-bad-card"
                     ".SUBCKT needs a name"))
        | ".ENDS" -> (
            match !stack with
            | scope :: (_ :: _ as rest) ->
                Hashtbl.replace subckts scope.s_name scope;
                stack := rest
            | _ ->
                diag
                  (Diag.error ~span ~code:"lvs-ref-unmatched-ends"
                     ".ENDS without a matching .SUBCKT"))
        | ".MODEL" -> (
            let positional, params = split_params (List.tl tokens) in
            match positional with
            | mname :: _ ->
                (* VTO sign decides enhancement vs depletion when present;
                   otherwise names containing DEP (or the literal D prefix
                   convention) are depletion. *)
                let dtype =
                  match List.assoc_opt "VTO" params with
                  | Some v -> (
                      match float_of_string_opt v with
                      | Some v when v < 0. -> Ace_tech.Nmos.Depletion
                      | Some _ -> Ace_tech.Nmos.Enhancement
                      | None -> Ace_tech.Nmos.Enhancement)
                  | None ->
                      if contains_sub (up mname) "DEP" then
                        Ace_tech.Nmos.Depletion
                      else Ace_tech.Nmos.Enhancement
                in
                Hashtbl.replace models (up mname) dtype
            | [] ->
                diag
                  (Diag.error ~span ~code:"lvs-ref-bad-card"
                     ".MODEL needs a name"))
        | ".GLOBAL" ->
            List.iter (fun t -> Hashtbl.replace globals (up t) ()) (List.tl tokens)
        | ".END" -> stopped := true
        | _ ->
            diag
              (Diag.hint ~span ~code:"lvs-ref-unknown-card"
                 (Printf.sprintf "ignoring unknown control card %s" keyword)))
    | 'M' -> (
        let positional, params = split_params tokens in
        (* Mname d g s [b] model — 3-node (no bulk) and 4-node forms. *)
        match positional with
        | nm :: d :: g :: s :: rest
          when List.length rest = 1 || List.length rest = 2 ->
            let model = up (List.nth rest (List.length rest - 1)) in
            let dim key =
              match List.assoc_opt key params with
              | None -> 0
              | Some v -> (
                  match parse_dim v with
                  | Some cm -> cm
                  | None ->
                      diag
                        (Diag.error ~span ~code:"lvs-ref-bad-number"
                           (Printf.sprintf "cannot parse %s=%s" key v));
                      0)
            in
            (cur ()).s_items <-
              Dev
                {
                  d_span = span;
                  d_name = nm;
                  d_model = model;
                  d_d = d;
                  d_g = g;
                  d_s = s;
                  d_l = dim "L";
                  d_w = dim "W";
                }
              :: (cur ()).s_items
        | _ ->
            diag
              (Diag.error ~span ~code:"lvs-ref-bad-device"
                 (Printf.sprintf
                    "device card %s needs 3 or 4 nodes and a model" head)))
    | 'X' -> (
        let positional, _params = split_params tokens in
        match positional with
        | nm :: (_ :: _ as rest) ->
            let nodes = List.filteri (fun i _ -> i < List.length rest - 1) rest in
            let sub = up (List.nth rest (List.length rest - 1)) in
            (cur ()).s_items <-
              Inst { i_span = span; i_name = nm; i_nodes = nodes; i_sub = sub }
              :: (cur ()).s_items
        | _ ->
            diag
              (Diag.error ~span ~code:"lvs-ref-bad-card"
                 (Printf.sprintf "instance card %s needs nodes and a name" head)))
    | 'R' | 'C' | 'V' | 'I' | 'L' | 'D' | 'Q' | 'J' | 'K' | 'E' | 'F' | 'G'
    | 'H' ->
        diag
          (Diag.hint ~span ~code:"lvs-ref-ignored-card"
             (Printf.sprintf
                "%c card %s ignored (only transistors take part in switch-level \
                 comparison)"
                keyword.[0] head))
    | _ ->
        diag
          (Diag.error ~span ~code:"lvs-ref-bad-card"
             (Printf.sprintf "unrecognized card %s" head))
  in
  List.iter (fun c -> if not !stopped then do_card c) cards;
  (match !stack with
  | _ :: (_ :: _) ->
      List.iter
        (fun scope ->
          if scope.s_name <> "" then begin
            (match scope.s_span with
            | Some span ->
                diag
                  (Diag.error ~span ~code:"lvs-ref-unterminated-subckt"
                     (Printf.sprintf ".SUBCKT %s never closed by .ENDS"
                        scope.s_name))
            | None -> ());
            Hashtbl.replace subckts scope.s_name scope
          end)
        !stack
  | _ -> ());
  {
    sc_subckts = subckts;
    sc_models = models;
    sc_globals = globals;
    sc_top = top;
    sc_diags = List.rev !diags;
  }

let parse ?(name = "reference") ?(gnd = "GND") text =
  let sc = scan_text text in
  let subckts = sc.sc_subckts
  and models = sc.sc_models
  and globals = sc.sc_globals
  and top = sc.sc_top in
  let diags = ref (List.rev sc.sc_diags) in
  let diag d = diags := d :: !diags in

  (* -------- second pass: flatten into a Circuit.t -------- *)
  let gnd_key = up gnd in
  let net_index : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let net_names = ref [] (* reversed display names *) in
  let n_nets = ref 0 in
  let net_of ~display key =
    match Hashtbl.find_opt net_index key with
    | Some i -> i
    | None ->
        let i = !n_nets in
        Hashtbl.replace net_index key i;
        net_names := display :: !net_names;
        incr n_nets;
        i
  in
  let devices = ref [] (* reversed *) in
  let n_devices = ref 0 in
  let max_devices = 1_000_000 in
  let model_type span m =
    match Hashtbl.find_opt models m with
    | Some t -> t
    | None ->
        if m = "ENH" || m = "NMOS" || m = "N" then Ace_tech.Nmos.Enhancement
        else if contains_sub m "DEP" then Ace_tech.Nmos.Depletion
        else begin
          diag
            (Diag.hint ~span ~code:"lvs-ref-unknown-model"
               (Printf.sprintf "unknown model %s treated as enhancement" m));
          Hashtbl.replace models m Ace_tech.Nmos.Enhancement;
          Ace_tech.Nmos.Enhancement
        end
  in
  let rec emit path active scope bind =
    let resolve tok =
      let u = up tok in
      if u = "0" || u = gnd_key then net_of ~display:gnd gnd_key
      else
        match List.assoc_opt u bind with
        | Some i -> i
        | None ->
            if Hashtbl.mem globals u || path = "" then net_of ~display:tok u
            else net_of ~display:(path ^ tok) (up path ^ u)
    in
    List.iter
      (function
        | Dev d ->
            if !n_devices >= max_devices then begin
              if !n_devices = max_devices then
                diag
                  (Diag.error ~span:d.d_span ~code:"lvs-ref-too-large"
                     (Printf.sprintf
                        "flattened netlist exceeds %d devices; truncating"
                        max_devices));
              incr n_devices
            end
            else begin
              let dev =
                {
                  Circuit.dtype = model_type d.d_span d.d_model;
                  gate = resolve d.d_g;
                  source = resolve d.d_s;
                  drain = resolve d.d_d;
                  length = d.d_l;
                  width = d.d_w;
                  location = Point.make !n_devices 0;
                  geometry = [];
                }
              in
              devices := dev :: !devices;
              incr n_devices
            end
        | Inst inst -> (
            match Hashtbl.find_opt subckts inst.i_sub with
            | None ->
                diag
                  (Diag.error ~span:inst.i_span ~code:"lvs-ref-undefined-subckt"
                     (Printf.sprintf "instance %s of undefined subcircuit %s"
                        inst.i_name inst.i_sub))
            | Some sub when List.mem inst.i_sub active ->
                diag
                  (Diag.error ~span:inst.i_span ~code:"lvs-ref-recursive"
                     (Printf.sprintf "recursive expansion of subcircuit %s"
                        sub.s_name))
            | Some sub ->
                if List.length inst.i_nodes <> List.length sub.s_pins then
                  diag
                    (Diag.error ~span:inst.i_span ~code:"lvs-ref-pin-mismatch"
                       (Printf.sprintf
                          "instance %s passes %d nodes but %s declares %d pins"
                          inst.i_name
                          (List.length inst.i_nodes)
                          sub.s_name (List.length sub.s_pins)))
                else
                  let bind' =
                    List.map2
                      (fun formal actual -> (formal, resolve actual))
                      sub.s_pins inst.i_nodes
                  in
                  emit
                    (path ^ inst.i_name ^ "/")
                    (inst.i_sub :: active) sub bind'))
      (List.rev scope.s_items)
  in
  emit "" [] top [];
  let nets =
    !net_names |> List.rev
    |> List.mapi (fun i display ->
           { Circuit.names = [ display ]; location = Point.make i 0; geometry = [] })
    |> Array.of_list
  in
  let circuit =
    { Circuit.name; devices = Array.of_list (List.rev !devices); nets }
  in
  (circuit, List.rev !diags)

(* ---------- hierarchical view ------------------------------------------- *)

type hcell = {
  hc_name : string;
  hc_pins : string list;
  hc_formals : int;
  hc_body : Circuit.t;
  hc_pin_nets : int array;
}

type hinst = { hi_cell : int; hi_nets : int array }

type hview = {
  hv_glue : Circuit.t;
  hv_cells : hcell array;
  hv_insts : hinst list;
}

let hier_view ?(name = "reference") ?(gnd = "GND") text =
  let sc = scan_text text in
  let gnd_key = up gnd in
  let has_top_inst =
    List.exists
      (function Inst _ -> true | Dev _ -> false)
      sc.sc_top.s_items
  in
  (* Any first-pass error, or a flat deck, and the hierarchical view is
     worthless — the caller falls back to the flat compare, which owns
     diagnostics. *)
  if List.exists Diag.is_error sc.sc_diags || not has_top_inst then None
  else begin
    let ok = ref true in
    let budget = ref 1_000_000 in
    let model_type m =
      match Hashtbl.find_opt sc.sc_models m with
      | Some t -> t
      | None ->
          if contains_sub m "DEP" then Ace_tech.Nmos.Depletion
          else Ace_tech.Nmos.Enhancement
    in
    (* Build one cell body per subckt instantiated at the top level;
       nested instances flatten into the body.  Globals (and ground)
       referenced inside become implicit pins appended after the formals,
       so every cell terminal surfaces at its instances. *)
    let build_cell (sub : scope) =
      let net_index = Hashtbl.create 16 in
      let net_names = ref [] in
      let n_nets = ref 0 in
      let net_of ~display key =
        match Hashtbl.find_opt net_index key with
        | Some i -> i
        | None ->
            let i = !n_nets in
            Hashtbl.replace net_index key i;
            net_names := display :: !net_names;
            incr n_nets;
            i
      in
      let pin_nets =
        List.map (fun p -> net_of ~display:p p) sub.s_pins
      in
      let implicit = ref [] (* (name, net), reversed first-use order *) in
      let implicit_net key display =
        match List.assoc_opt key !implicit with
        | Some i -> i
        | None ->
            let i = net_of ~display ("\x00GLOBAL/" ^ key) in
            implicit := (key, i) :: !implicit;
            i
      in
      let devices = ref [] in
      let n_devices = ref 0 in
      let rec emit_body path active (scope : scope) bind =
        let resolve tok =
          let u = up tok in
          if u = "0" || u = gnd_key then implicit_net gnd_key gnd
          else
            match List.assoc_opt u bind with
            | Some i -> i
            | None ->
                if Hashtbl.mem sc.sc_globals u then implicit_net u tok
                else if path = "" then net_of ~display:tok u
                else net_of ~display:(path ^ tok) (up path ^ u)
        in
        List.iter
          (function
            | Dev d ->
                decr budget;
                if !budget < 0 then ok := false
                else begin
                  let dev =
                    {
                      Circuit.dtype = model_type d.d_model;
                      gate = resolve d.d_g;
                      source = resolve d.d_s;
                      drain = resolve d.d_d;
                      length = d.d_l;
                      width = d.d_w;
                      location = Point.make !n_devices 0;
                      geometry = [];
                    }
                  in
                  devices := dev :: !devices;
                  incr n_devices
                end
            | Inst inst -> (
                match Hashtbl.find_opt sc.sc_subckts inst.i_sub with
                | None -> ok := false
                | Some _ when List.mem inst.i_sub active -> ok := false
                | Some nested ->
                    if
                      List.length inst.i_nodes <> List.length nested.s_pins
                    then ok := false
                    else
                      let bind' =
                        List.map2
                          (fun formal actual -> (formal, resolve actual))
                          nested.s_pins inst.i_nodes
                      in
                      emit_body
                        (path ^ inst.i_name ^ "/")
                        (inst.i_sub :: active) nested bind'))
          (List.rev scope.s_items)
      in
      emit_body "" [ sub.s_name ] sub
        (List.map2 (fun p n -> (p, n)) sub.s_pins pin_nets);
      let implicit = List.rev !implicit in
      let nets =
        !net_names |> List.rev
        |> List.mapi (fun i display ->
               {
                 Circuit.names = [ display ];
                 location = Point.make i 0;
                 geometry = [];
               })
        |> Array.of_list
      in
      {
        hc_name = sub.s_name;
        hc_pins = sub.s_pins @ List.map fst implicit;
        hc_formals = List.length sub.s_pins;
        hc_body =
          {
            Circuit.name = sub.s_name;
            devices = Array.of_list (List.rev !devices);
            nets;
          };
        hc_pin_nets =
          Array.of_list (pin_nets @ List.map snd implicit);
      }
    in
    (* Glue: top-level nets, devices, and one pseudo-instance per X card. *)
    let net_index = Hashtbl.create 32 in
    let net_names = ref [] in
    let n_nets = ref 0 in
    let net_of ~display key =
      match Hashtbl.find_opt net_index key with
      | Some i -> i
      | None ->
          let i = !n_nets in
          Hashtbl.replace net_index key i;
          net_names := display :: !net_names;
          incr n_nets;
          i
    in
    let resolve_top tok =
      let u = up tok in
      if u = "0" || u = gnd_key then net_of ~display:gnd gnd_key
      else net_of ~display:tok u
    in
    let cells = ref [] (* reversed *) in
    let n_cells = ref 0 in
    let cell_index = Hashtbl.create 8 in
    let cell_of sub_name =
      match Hashtbl.find_opt cell_index sub_name with
      | Some i -> i
      | None -> (
          match Hashtbl.find_opt sc.sc_subckts sub_name with
          | None ->
              ok := false;
              -1
          | Some sub ->
              let cell = build_cell sub in
              let i = !n_cells in
              Hashtbl.replace cell_index sub_name i;
              cells := cell :: !cells;
              incr n_cells;
              i)
    in
    let glue_devices = ref [] in
    let n_glue = ref 0 in
    let insts = ref [] (* reversed *) in
    List.iter
      (function
        | Dev d ->
            let dev =
              {
                Circuit.dtype = model_type d.d_model;
                gate = resolve_top d.d_g;
                source = resolve_top d.d_s;
                drain = resolve_top d.d_d;
                length = d.d_l;
                width = d.d_w;
                location = Point.make !n_glue 0;
                geometry = [];
              }
            in
            glue_devices := dev :: !glue_devices;
            incr n_glue
        | Inst inst ->
            let ci = cell_of inst.i_sub in
            if ci >= 0 then begin
              let cell = List.nth !cells (!n_cells - 1 - ci) in
              if List.length inst.i_nodes <> cell.hc_formals then
                ok := false
              else begin
                let formal_nets = List.map resolve_top inst.i_nodes in
                let implicit_names =
                  List.filteri
                    (fun i _ -> i >= cell.hc_formals)
                    cell.hc_pins
                in
                let implicit_nets =
                  List.map
                    (fun g ->
                      if up g = gnd_key then net_of ~display:gnd gnd_key
                      else resolve_top g)
                    implicit_names
                in
                insts :=
                  {
                    hi_cell = ci;
                    hi_nets = Array.of_list (formal_nets @ implicit_nets);
                  }
                  :: !insts
              end
            end)
      (List.rev sc.sc_top.s_items);
    if not !ok then None
    else begin
      let nets =
        !net_names |> List.rev
        |> List.mapi (fun i display ->
               {
                 Circuit.names = [ display ];
                 location = Point.make i 0;
                 geometry = [];
               })
        |> Array.of_list
      in
      Some
        {
          hv_glue =
            {
              Circuit.name;
              devices = Array.of_list (List.rev !glue_devices);
              nets;
            };
          hv_cells = Array.of_list (List.rev !cells);
          hv_insts = List.rev !insts;
        }
    end
  end

let load ?name ?gnd text =
  let rec first_nonspace i =
    if i >= String.length text then i
    else
      match text.[i] with
      | ' ' | '\t' | '\n' | '\r' -> first_nonspace (i + 1)
      | _ -> i
  in
  let i = first_nonspace 0 in
  let looks_like_wirelist =
    i < String.length text
    && text.[i] = '('
    &&
    let rest = String.sub text i (min 12 (String.length text - i)) in
    String.length rest >= 8 && String.uppercase_ascii (String.sub rest 0 8) = "(DEFPART"
  in
  if looks_like_wirelist then
    match Wirelist.of_string text with
    | c -> Ok (c, [])
    | exception Wirelist.Error m ->
        Error (Diag.errorf ~code:"wirelist-error" "%s" m)
  else Ok (parse ?name ?gnd text)
