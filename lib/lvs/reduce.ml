open Ace_netlist
module Cancel = Ace_core.Cancel
module Trace = Ace_trace.Trace

(* Working devices: mutable so merges rewrite terminals in place. *)
type wdev = {
  mutable alive : bool;
  dtype : Ace_tech.Nmos.device_type;
  gate : int;
  mutable s : int;
  mutable d : int;
  mutable l : int;
  mutable w : int;
  mutable mult : int;
  location : Ace_geom.Point.t;
}

type t = { circuit : Circuit.t; mult : int array; merged : int }

let type_code = function
  | Ace_tech.Nmos.Enhancement -> 0
  | Ace_tech.Nmos.Depletion -> 1

(* Parallel rule: same type, gate, unordered channel pair and length —
   widths and multiplicities add.  One pass over a bucket table. *)
let parallel_pass devs =
  let tbl = Hashtbl.create 64 in
  let merges = ref 0 in
  Array.iter
    (fun dv ->
      if dv.alive then begin
        let lo = min dv.s dv.d and hi = max dv.s dv.d in
        let key = (type_code dv.dtype, dv.gate, lo, hi, dv.l) in
        match Hashtbl.find_opt tbl key with
        | None -> Hashtbl.replace tbl key dv
        | Some keep ->
            keep.w <- keep.w + dv.w;
            keep.mult <- keep.mult + dv.mult;
            dv.alive <- false;
            incr merges
      end)
    devs;
  !merges

(* Series rule: an anonymous net with exactly two channel terminals and
   no gate terminals joins two devices of the same type, gate, width and
   multiplicity — lengths add, the internal net drops out of the
   conduction path.  The gate net must differ from the internal net (a
   gate tied to its own channel is not a plain chain).  What counts as
   anonymous is the caller's [anonymous] predicate: by default any
   unnamed net, but the comparator relaxes it to "no name shared with
   the other side" so reduction stays symmetric when one side auto-names
   its nets (a SPICE round trip names everything). *)
let series_pass ~anonymous (circuit : Circuit.t) devs =
  let n_nets = Array.length circuit.Circuit.nets in
  let chan = Array.make n_nets [] in
  let gates = Array.make n_nets 0 in
  Array.iter
    (fun dv ->
      if dv.alive then begin
        gates.(dv.gate) <- gates.(dv.gate) + 1;
        chan.(dv.s) <- (dv, `S) :: chan.(dv.s);
        if dv.d <> dv.s then chan.(dv.d) <- (dv, `D) :: chan.(dv.d)
      end)
    devs;
  let merges = ref 0 in
  for n = 0 to n_nets - 1 do
    if anonymous circuit.Circuit.nets.(n) && gates.(n) = 0 then
      match chan.(n) with
      | [ (a, ta); (b, tb) ]
        when a != b && a.alive && b.alive && a.dtype = b.dtype
             && a.gate = b.gate && a.w = b.w && a.mult = b.mult
             && a.gate <> n && a.s <> a.d && b.s <> b.d ->
          (* a keeps its far terminal; its near terminal becomes b's far
             terminal; b dies. *)
          let far_b = match tb with `S -> b.d | `D -> b.s in
          (match ta with `S -> a.s <- far_b | `D -> a.d <- far_b);
          a.l <- a.l + b.l;
          b.alive <- false;
          incr merges
      | _ -> ()
  done;
  !merges

let reduce ?(cancel = Cancel.never)
    ?(anonymous = fun (n : Circuit.net) -> n.Circuit.names = [])
    (circuit : Circuit.t) =
  let devs =
    Array.map
      (fun (d : Circuit.device) ->
        {
          alive = true;
          dtype = d.dtype;
          gate = d.gate;
          s = d.source;
          d = d.drain;
          l = d.length;
          w = d.width;
          mult = 1;
          location = d.location;
        })
      circuit.Circuit.devices
  in
  let merged = ref 0 in
  let progress = ref true in
  while !progress do
    Cancel.check cancel;
    let m = parallel_pass devs + series_pass ~anonymous circuit devs in
    merged := !merged + m;
    progress := m > 0
  done;
  Trace.count Trace.Counter.Lvs_reductions !merged;
  let alive =
    Array.to_list devs |> List.filter (fun dv -> dv.alive) |> Array.of_list
  in
  let devices =
    Array.map
      (fun dv ->
        {
          Circuit.dtype = dv.dtype;
          gate = dv.gate;
          source = dv.s;
          drain = dv.d;
          length = dv.l;
          width = dv.w;
          location = dv.location;
          geometry = [];
        })
      alive
  in
  {
    circuit = { circuit with Circuit.devices };
    mult = Array.map (fun (dv : wdev) -> dv.mult) alive;
    merged = !merged;
  }

(* ---------- pin-permutation canonicalization ---------------------------- *)

(* Same hashing discipline as Match, so canonical keys and refinement
   colors agree on what "same structure" means. *)
let mix h x = (h * 1000003) + x + 0x9e3779b9

let hash_sorted ints =
  List.fold_left mix 0x1234567 (List.sort Int.compare ints) land max_int

(* A collapsed-graph node: an ordinary device, or a whole series chain as
   one super-device with an *unordered* gate set.  Keys computed on this
   graph cannot depend on a gate's position inside its chain — the whole
   point: a NAND with swapped inputs and its reference get identical
   keys. *)
type cnode = { cg : int list; ct : int list; ctag : int }

let canonicalize ?(seed = fun (_ : int) -> 0)
    ?(anonymous = fun (n : Circuit.net) -> n.Circuit.names = []) (r : t) =
  let c = r.circuit in
  let devs = c.Circuit.devices in
  let nd = Array.length devs in
  let n_nets = Array.length c.Circuit.nets in
  if nd < 2 then r
  else begin
    let gates = Array.make n_nets 0 in
    let chan = Array.make n_nets [] in
    Array.iteri
      (fun i (d : Circuit.device) ->
        gates.(d.gate) <- gates.(d.gate) + 1;
        chan.(d.source) <- i :: chan.(d.source);
        if d.drain <> d.source then chan.(d.drain) <- i :: chan.(d.drain))
      devs;
    (* A chain link: an anonymous net with exactly two channel terminals,
       no gate terminals, joining two distinct devices with separate
       source and drain — the same shape the series rule dissolves, minus
       the same-gate requirement. *)
    let chainable i =
      let d = devs.(i) in
      d.Circuit.source <> d.Circuit.drain
    in
    let link n =
      anonymous c.Circuit.nets.(n)
      && gates.(n) = 0
      &&
      match chan.(n) with
      | [ i; j ] -> i <> j && chainable i && chainable j
      | _ -> false
    in
    let step i n =
      if not (link n) then -1
      else
        match chan.(n) with [ a; b ] -> (if a = i then b else a) | _ -> -1
    in
    let other_net i via =
      let d = devs.(i) in
      if d.Circuit.source = via then d.Circuit.drain else d.Circuit.source
    in
    (* Maximal chains, discovered once per component; rings (every net a
       link) have no endpoints and are skipped. *)
    let in_chain = Array.make nd false in
    let chains = ref [] in
    for i0 = 0 to nd - 1 do
      if
        (not in_chain.(i0))
        && chainable i0
        && (link devs.(i0).Circuit.source || link devs.(i0).Circuit.drain)
      then begin
        (* walk to one end (bounded by nd steps; hitting the bound means a
           ring) *)
        let rec to_end i via steps =
          if steps > nd then None
          else
            let n = other_net i via in
            let j = step i n in
            if j = -1 then Some (i, n)
            else to_end j n (steps + 1)
        in
        let start_via =
          if link devs.(i0).Circuit.source then devs.(i0).Circuit.source
          else devs.(i0).Circuit.drain
        in
        match to_end i0 start_via 0 with
        | None ->
            (* ring: mark the component visited so we do not rediscover it *)
            let rec mark i via =
              if not in_chain.(i) then begin
                in_chain.(i) <- true;
                let n = other_net i via in
                let j = step i n in
                if j <> -1 then mark j n
              end
            in
            in_chain.(i0) <- true;
            let j = step i0 start_via in
            if j <> -1 then mark j start_via
        | Some (e, end_net) ->
            (* walk from endpoint [e] across the whole chain *)
            let rec collect i via devs_acc nets_acc =
              let n = other_net i via in
              let j = step i n in
              if j = -1 then (List.rev (i :: devs_acc), List.rev (n :: nets_acc))
              else collect j n (i :: devs_acc) (n :: nets_acc)
            in
            let cdevs, tail_nets = collect e end_net [] [] in
            let cnets = end_net :: tail_nets in
            List.iter (fun i -> in_chain.(i) <- true) cdevs;
            if List.length cdevs >= 2 then begin
              (* only chains of identical devices are commutative: moving a
                 gate to a device of a different size would change which
                 size pairs with which input *)
              let d0 = devs.(List.hd cdevs) in
              let uniform =
                List.for_all
                  (fun i ->
                    let d = devs.(i) in
                    d.Circuit.dtype = d0.Circuit.dtype
                    && d.Circuit.length = d0.Circuit.length
                    && d.Circuit.width = d0.Circuit.width
                    && r.mult.(i) = r.mult.(List.hd cdevs))
                  cdevs
              in
              if uniform then chains := (cdevs, cnets) :: !chains
            end
      end
    done;
    if !chains = [] then r
    else begin
      (* collapsed graph: chains become super-devices, everything else is
         carried over unchanged *)
      let nodes = ref [] in
      Array.iteri
        (fun i (d : Circuit.device) ->
          if not in_chain.(i) then
            nodes :=
              {
                cg = [ d.Circuit.gate ];
                ct = [ d.Circuit.source; d.Circuit.drain ];
                ctag = mix (type_code d.Circuit.dtype) 1;
              }
              :: !nodes)
        devs;
      List.iter
        (fun (cdevs, cnets) ->
          let d0 = devs.(List.hd cdevs) in
          nodes :=
            {
              cg = List.map (fun i -> devs.(i).Circuit.gate) cdevs;
              ct = [ List.hd cnets; List.nth cnets (List.length cnets - 1) ];
              ctag = mix (type_code d0.Circuit.dtype) (List.length cdevs);
            }
            :: !nodes)
        !chains;
      let nodes = Array.of_list !nodes in
      let used = Array.make n_nets false in
      Array.iter
        (fun nd ->
          List.iter (fun n -> used.(n) <- true) nd.cg;
          List.iter (fun n -> used.(n) <- true) nd.ct)
        nodes;
      let ncolor = Array.init n_nets (fun n -> seed n) in
      let dcolor = Array.map (fun nd -> nd.ctag) nodes in
      let distinct_used () =
        let l = ref [] in
        Array.iteri (fun n u -> if u then l := ncolor.(n) :: !l) used;
        Array.iter (fun ccol -> l := ccol :: !l) dcolor;
        List.length (List.sort_uniq Int.compare !l)
      in
      let cap = Array.length nodes + n_nets + 2 in
      let stable = ref false in
      let rounds = ref 0 in
      while not !stable do
        incr rounds;
        let before = distinct_used () in
        Array.iteri
          (fun k nd ->
            dcolor.(k) <-
              mix
                (mix
                   (mix dcolor.(k)
                      (hash_sorted (List.map (fun g -> ncolor.(g)) nd.cg)))
                   (hash_sorted (List.map (fun t -> ncolor.(t)) nd.ct)))
                19)
          nodes;
        let incid = Array.make n_nets [] in
        Array.iteri
          (fun k nd ->
            List.iter
              (fun g -> incid.(g) <- mix dcolor.(k) 1 :: incid.(g))
              nd.cg;
            List.iter
              (fun t -> incid.(t) <- mix dcolor.(k) 2 :: incid.(t))
              nd.ct)
          nodes;
        Array.iteri
          (fun n u ->
            if u then ncolor.(n) <- mix ncolor.(n) (hash_sorted incid.(n)))
          used;
        let after = distinct_used () in
        if after <= before || !rounds > cap then stable := true
      done;
      (* reorder each chain whose endpoints the keys can tell apart *)
      let out = Array.copy devs in
      List.iter
        (fun (cdevs, cnets) ->
          let a = List.hd cnets
          and b = List.nth cnets (List.length cnets - 1) in
          if ncolor.(a) <> ncolor.(b) then begin
            let cdevs, cnets =
              if ncolor.(a) < ncolor.(b) then (cdevs, cnets)
              else (List.rev cdevs, List.rev cnets)
            in
            let keyed =
              List.map
                (fun i ->
                  (ncolor.(devs.(i).Circuit.gate), devs.(i).Circuit.gate))
                cdevs
            in
            (* stable: tied gates keep their oriented-walk order, so keys
               that cannot distinguish two inputs leave them untouched *)
            let sorted =
              List.stable_sort (fun (ka, _) (kb, _) -> Int.compare ka kb) keyed
            in
            let nets_arr = Array.of_list cnets in
            List.iteri
              (fun t (i, (_, g)) ->
                out.(i) <-
                  {
                    (devs.(i)) with
                    Circuit.gate = g;
                    source = nets_arr.(t);
                    drain = nets_arr.(t + 1);
                  })
              (List.combine cdevs sorted)
          end)
        !chains;
      { r with circuit = { c with Circuit.devices = out } }
    end
  end
