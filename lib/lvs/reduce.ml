open Ace_netlist
module Cancel = Ace_core.Cancel
module Trace = Ace_trace.Trace

(* Working devices: mutable so merges rewrite terminals in place. *)
type wdev = {
  mutable alive : bool;
  dtype : Ace_tech.Nmos.device_type;
  gate : int;
  mutable s : int;
  mutable d : int;
  mutable l : int;
  mutable w : int;
  mutable mult : int;
  location : Ace_geom.Point.t;
}

type t = { circuit : Circuit.t; mult : int array; merged : int }

let type_code = function
  | Ace_tech.Nmos.Enhancement -> 0
  | Ace_tech.Nmos.Depletion -> 1

(* Parallel rule: same type, gate, unordered channel pair and length —
   widths and multiplicities add.  One pass over a bucket table. *)
let parallel_pass devs =
  let tbl = Hashtbl.create 64 in
  let merges = ref 0 in
  Array.iter
    (fun dv ->
      if dv.alive then begin
        let lo = min dv.s dv.d and hi = max dv.s dv.d in
        let key = (type_code dv.dtype, dv.gate, lo, hi, dv.l) in
        match Hashtbl.find_opt tbl key with
        | None -> Hashtbl.replace tbl key dv
        | Some keep ->
            keep.w <- keep.w + dv.w;
            keep.mult <- keep.mult + dv.mult;
            dv.alive <- false;
            incr merges
      end)
    devs;
  !merges

(* Series rule: an anonymous net with exactly two channel terminals and
   no gate terminals joins two devices of the same type, gate, width and
   multiplicity — lengths add, the internal net drops out of the
   conduction path.  The gate net must differ from the internal net (a
   gate tied to its own channel is not a plain chain).  What counts as
   anonymous is the caller's [anonymous] predicate: by default any
   unnamed net, but the comparator relaxes it to "no name shared with
   the other side" so reduction stays symmetric when one side auto-names
   its nets (a SPICE round trip names everything). *)
let series_pass ~anonymous (circuit : Circuit.t) devs =
  let n_nets = Array.length circuit.Circuit.nets in
  let chan = Array.make n_nets [] in
  let gates = Array.make n_nets 0 in
  Array.iter
    (fun dv ->
      if dv.alive then begin
        gates.(dv.gate) <- gates.(dv.gate) + 1;
        chan.(dv.s) <- (dv, `S) :: chan.(dv.s);
        if dv.d <> dv.s then chan.(dv.d) <- (dv, `D) :: chan.(dv.d)
      end)
    devs;
  let merges = ref 0 in
  for n = 0 to n_nets - 1 do
    if anonymous circuit.Circuit.nets.(n) && gates.(n) = 0 then
      match chan.(n) with
      | [ (a, ta); (b, tb) ]
        when a != b && a.alive && b.alive && a.dtype = b.dtype
             && a.gate = b.gate && a.w = b.w && a.mult = b.mult
             && a.gate <> n && a.s <> a.d && b.s <> b.d ->
          (* a keeps its far terminal; its near terminal becomes b's far
             terminal; b dies. *)
          let far_b = match tb with `S -> b.d | `D -> b.s in
          (match ta with `S -> a.s <- far_b | `D -> a.d <- far_b);
          a.l <- a.l + b.l;
          b.alive <- false;
          incr merges
      | _ -> ()
  done;
  !merges

let reduce ?(cancel = Cancel.never)
    ?(anonymous = fun (n : Circuit.net) -> n.Circuit.names = [])
    (circuit : Circuit.t) =
  let devs =
    Array.map
      (fun (d : Circuit.device) ->
        {
          alive = true;
          dtype = d.dtype;
          gate = d.gate;
          s = d.source;
          d = d.drain;
          l = d.length;
          w = d.width;
          mult = 1;
          location = d.location;
        })
      circuit.Circuit.devices
  in
  let merged = ref 0 in
  let progress = ref true in
  while !progress do
    Cancel.check cancel;
    let m = parallel_pass devs + series_pass ~anonymous circuit devs in
    merged := !merged + m;
    progress := m > 0
  done;
  Trace.count Trace.Counter.Lvs_reductions !merged;
  let alive =
    Array.to_list devs |> List.filter (fun dv -> dv.alive) |> Array.of_list
  in
  let devices =
    Array.map
      (fun dv ->
        {
          Circuit.dtype = dv.dtype;
          gate = dv.gate;
          source = dv.s;
          drain = dv.d;
          length = dv.l;
          width = dv.w;
          location = dv.location;
          geometry = [];
        })
      alive
  in
  {
    circuit = { circuit with Circuit.devices };
    mult = Array.map (fun (dv : wdev) -> dv.mult) alive;
    merged = !merged;
  }
