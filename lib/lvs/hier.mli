open Ace_netlist

(** Hierarchical LVS over HEXT cell summaries.

    Instead of flattening the layout and re-matching every instance of
    every cell, this pass compares each distinct part (keyed by
    {!Ace_hext.Hext.cell_fingerprint}) against candidate reference
    subcircuits ONCE via the flat comparator, memoizes the verdict
    together with the boundary-pin correspondence, and substitutes every
    further instance as an opaque multi-terminal pseudo-device.  The
    residual top-level glue — unsubstituted transistors plus
    pseudo-devices on both sides — is then verified by the same seeded
    partition refinement.

    Verdicts are provably identical to the flat compare because the
    hierarchical path only ever CONFIRMS equivalence: a hierarchical
    Clean requires a complete witness (every reference cell instance
    paired, pin-role multisets corresponding, glue color multisets
    equal), and any obstruction — an unmatched cell, a shared net name
    hidden inside a substituted instance, a glue discrepancy — falls back
    to {!Match.run} on the flattened layout, which owns the verdict.  In
    the fallback the hierarchical pass contributes [lvs-cell-mismatch]
    (error) and [lvs-cell-unmatched] (hint) findings naming the offending
    cell type, prepended to the flat findings on a Mismatch. *)

type result = {
  r : Match.result;
  cell_matches : int;  (** distinct cell summaries compared *)
  cell_hits : int;  (** instances served from the summary memo *)
  fallback : bool;  (** the verdict came from the flat comparator *)
}

(** [run ?cancel ?with_sizes ?tolerance ?vdd ?gnd ?max_findings ~layout
    ~reference ?ref_view ()] compares the hierarchical [layout] wirelist
    against the flat [reference].  [ref_view] is the reference's own
    hierarchy ({!Reference.hier_view}); when [None] (flat or obstructed
    reference) the pass degenerates to the flat comparator immediately.
    The optional knobs have the same meaning as in {!Match.run}. *)
val run :
  ?cancel:Ace_core.Cancel.t ->
  ?with_sizes:bool ->
  ?tolerance:float ->
  ?vdd:string ->
  ?gnd:string ->
  ?max_findings:int ->
  layout:Hier.t ->
  reference:Circuit.t ->
  ?ref_view:Reference.hview ->
  unit ->
  result
