(* Lenient structural-Verilog reference front end.

   Schematic flows increasingly emit gate-level structural Verilog rather
   than transistor-level SPICE, so the comparator accepts the structural
   subset directly: module/endmodule, wire/input/output/inout
   declarations, and instances with named or positional port maps.  A
   small gate-primitive library (not/nand/nor and the nmos switch) lowers
   to the same depletion-load transistor IR the extractor produces, so
   the Reduce/Match pipeline consumes Verilog references identically to
   SPICE ones.

   Parsing follows the house rule: never raise, always produce a circuit
   from whatever was readable, and report every malformed construct as an
   Ace_diag diagnostic with a byte span and a stable lvs-ref-* code.
   Lowered devices carry L=W=0 ("unspecified"), which the size audit
   skips — a gate-level reference has no geometry opinion. *)

open Ace_netlist
module Diag = Ace_diag.Diag
module Point = Ace_geom.Point

(* ---------- tokens ------------------------------------------------------ *)

type tok = { t : string; pos : int; stop : int }

let is_id_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_id_char c = is_id_start c || (c >= '0' && c <= '9') || c = '$'

let tokenize text =
  let n = String.length text in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then incr i
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '/' then
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '*' then begin
      i := !i + 2;
      let stop = ref false in
      while (not !stop) && !i < n do
        if text.[!i] = '*' && !i + 1 < n && text.[!i + 1] = '/' then begin
          i := !i + 2;
          stop := true
        end
        else incr i
      done
    end
    else if c = '`' then
      (* compiler directive: significant to simulation only *)
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    else if is_id_start c then begin
      let a = !i in
      while !i < n && is_id_char text.[!i] do
        incr i
      done;
      toks := { t = String.sub text a (!i - a); pos = a; stop = !i } :: !toks
    end
    else if c >= '0' && c <= '9' then begin
      (* sized literals (1'b0) stay one token *)
      let a = !i in
      while !i < n && (is_id_char text.[!i] || text.[!i] = '\'') do
        incr i
      done;
      toks := { t = String.sub text a (!i - a); pos = a; stop = !i } :: !toks
    end
    else begin
      toks := { t = String.make 1 c; pos = !i; stop = !i + 1 } :: !toks;
      incr i
    end
  done;
  Array.of_list (List.rev !toks)

(* ---------- AST --------------------------------------------------------- *)

type conn = CNamed of string * string option | CPos of string option

type vinst = {
  v_span : Diag.span;
  v_type : string;
  v_name : string;
  v_conns : conn list;
}

type vmodule = {
  m_name : string;
  m_span : Diag.span;
  m_ports : string list;
  mutable m_insts : vinst list;  (** reversed *)
}

let decl_keywords =
  [ "input"; "output"; "inout"; "wire"; "reg"; "supply0"; "supply1" ]

let ignored_keywords = [ "assign"; "initial"; "always"; "parameter" ]

(* ---------- parser ------------------------------------------------------ *)

let parse ?(name = "reference") ?(vdd = "VDD") ?(gnd = "GND") text =
  let diags = ref [] in
  let diag d = diags := d :: !diags in
  let toks = tokenize text in
  let nt = Array.length toks in
  let p = ref 0 in
  let span_at i =
    if nt = 0 then { Diag.start = 0; stop = 0 }
    else if i >= nt then
      { Diag.start = toks.(nt - 1).pos; stop = toks.(nt - 1).stop }
    else { Diag.start = toks.(i).pos; stop = toks.(i).stop }
  in
  let span_range a b =
    let sa = span_at a and sb = span_at (max a b) in
    { Diag.start = sa.Diag.start; stop = sb.Diag.stop }
  in
  let peek () = if !p < nt then Some toks.(!p).t else None in
  let is_ident i =
    i < nt && String.length toks.(i).t > 0 && is_id_start toks.(i).t.[0]
  in
  let syntax i msg =
    diag (Diag.error ~span:(span_at i) ~code:"lvs-ref-verilog-syntax" msg)
  in
  (* recover to just past the next ';' without crossing endmodule *)
  let skip_to_semi () =
    while
      !p < nt && toks.(!p).t <> ";" && toks.(!p).t <> "endmodule"
      && toks.(!p).t <> "module"
    do
      incr p
    done;
    if !p < nt && toks.(!p).t = ";" then incr p
  in
  let skip_brackets () =
    (* vector selects add no structure we compare *)
    if peek () = Some "[" then begin
      incr p;
      while !p < nt && toks.(!p).t <> "]" && toks.(!p).t <> ";" do
        incr p
      done;
      if !p < nt && toks.(!p).t = "]" then incr p
    end
  in
  let modules = ref [] (* reversed *) in
  let anon = ref 0 in
  let parse_ports () =
    (* header port list: idents, skipping directions and vectors *)
    let ports = ref [] in
    if peek () = Some "(" then begin
      incr p;
      while !p < nt && toks.(!p).t <> ")" && toks.(!p).t <> ";" do
        let t = toks.(!p).t in
        if List.mem t decl_keywords then incr p
        else if t = "[" then skip_brackets ()
        else if t = "," then incr p
        else if is_ident !p then begin
          ports := t :: !ports;
          incr p
        end
        else begin
          syntax !p (Printf.sprintf "unexpected %s in port list" t);
          incr p
        end
      done;
      if !p < nt && toks.(!p).t = ")" then incr p
    end;
    List.rev !ports
  in
  let parse_conns () =
    (* inside (...): .formal(actual), positional nets, or empty slots *)
    let conns = ref [] in
    let expecting = ref true in
    let stop = ref false in
    while not !stop do
      match peek () with
      | None | Some ";" | Some "endmodule" | Some "module" ->
          syntax !p "unterminated port connection list";
          stop := true
      | Some ")" ->
          incr p;
          if !expecting && !conns <> [] then conns := CPos None :: !conns;
          stop := true
      | Some "," ->
          if !expecting then conns := CPos None :: !conns;
          expecting := true;
          incr p
      | Some "." ->
          incr p;
          if is_ident !p then begin
            let formal = toks.(!p).t in
            incr p;
            if peek () = Some "(" then begin
              incr p;
              skip_brackets ();
              let actual =
                if is_ident !p || (!p < nt && toks.(!p).t <> ")") then
                  if is_ident !p then begin
                    let a = toks.(!p).t in
                    incr p;
                    skip_brackets ();
                    Some a
                  end
                  else begin
                    syntax !p "expected a net name in port connection";
                    while !p < nt && toks.(!p).t <> ")" && toks.(!p).t <> ";"
                    do
                      incr p
                    done;
                    None
                  end
                else None
              in
              if peek () = Some ")" then incr p
              else syntax !p "expected ) after port connection";
              conns := CNamed (formal, actual) :: !conns;
              expecting := false
            end
            else begin
              syntax !p
                (Printf.sprintf "expected ( after .%s in port map" formal);
              conns := CNamed (formal, None) :: !conns;
              expecting := false
            end
          end
          else begin
            syntax !p "expected a port name after . in port map";
            incr p
          end
      | Some t when is_ident !p || (t <> "(" && t <> ".") ->
          incr p;
          skip_brackets ();
          conns := CPos (Some t) :: !conns;
          expecting := false
      | Some t ->
          syntax !p (Printf.sprintf "unexpected %s in port connections" t);
          incr p
    done;
    List.rev !conns
  in
  let parse_instances m =
    let tstart = !p in
    let ty = toks.(!p).t in
    incr p;
    let rec one () =
      let iname =
        if is_ident !p then begin
          let n = toks.(!p).t in
          incr p;
          skip_brackets ();
          n
        end
        else begin
          incr anon;
          Printf.sprintf "u$%d" !anon
        end
      in
      if peek () = Some "(" then begin
        incr p;
        let conns = parse_conns () in
        m.m_insts <-
          {
            v_span = span_range tstart (!p - 1);
            v_type = ty;
            v_name = iname;
            v_conns = conns;
          }
          :: m.m_insts;
        match peek () with
        | Some "," ->
            incr p;
            one ()
        | Some ";" -> incr p
        | _ ->
            syntax !p "expected ; after instance";
            skip_to_semi ()
      end
      else begin
        syntax !p (Printf.sprintf "expected ( after instance %s" iname);
        skip_to_semi ()
      end
    in
    one ()
  in
  let parse_module () =
    let mstart = !p in
    incr p;
    let mname =
      if is_ident !p then begin
        let n = toks.(!p).t in
        incr p;
        n
      end
      else begin
        syntax !p "module needs a name";
        incr anon;
        Printf.sprintf "module$%d" !anon
      end
    in
    let ports = parse_ports () in
    (match peek () with
    | Some ";" -> incr p
    | _ ->
        syntax !p "expected ; after module header";
        skip_to_semi ());
    let m =
      {
        m_name = mname;
        m_span = span_range mstart (!p - 1);
        m_ports = ports;
        m_insts = [];
      }
    in
    let stop = ref false in
    while not !stop do
      match peek () with
      | None ->
          syntax (nt - 1)
            (Printf.sprintf "module %s never closed by endmodule" mname);
          stop := true
      | Some "endmodule" ->
          incr p;
          stop := true
      | Some "module" ->
          syntax !p
            (Printf.sprintf "module %s never closed by endmodule" mname);
          stop := true
      | Some t when List.mem t decl_keywords -> skip_to_semi ()
      | Some t when List.mem t ignored_keywords ->
          diag
            (Diag.hint ~span:(span_at !p) ~code:"lvs-ref-ignored-card"
               (Printf.sprintf
                  "%s ignored (only structure takes part in switch-level \
                   comparison)"
                  t));
          skip_to_semi ()
      | Some _ when is_ident !p -> parse_instances m
      | Some t ->
          syntax !p (Printf.sprintf "unexpected %s" t);
          incr p
    done;
    modules := m :: !modules
  in
  (* top level: modules separated by junk we flag once per run of it *)
  while !p < nt do
    if toks.(!p).t = "module" then parse_module ()
    else begin
      let a = !p in
      while !p < nt && toks.(!p).t <> "module" do
        incr p
      done;
      syntax a "expected module"
    end
  done;
  let modules = List.rev !modules in

  (* -------- elaboration ------------------------------------------------ *)
  let vdd_key = String.uppercase_ascii vdd
  and gnd_key = String.uppercase_ascii gnd in
  let up = String.uppercase_ascii in
  let mod_tbl = Hashtbl.create 8 in
  List.iter (fun m -> Hashtbl.replace mod_tbl m.m_name m) modules;
  let instantiated = Hashtbl.create 16 in
  List.iter
    (fun m ->
      List.iter
        (fun i -> Hashtbl.replace instantiated i.v_type ())
        m.m_insts)
    modules;
  let top =
    (* last-defined module nobody instantiates; among those, prefer one
       with instances, so an empty module recovered from junk does not
       shadow the real design *)
    let candidates =
      List.filter (fun m -> not (Hashtbl.mem instantiated m.m_name)) modules
    in
    let wired = List.filter (fun m -> m.m_insts <> []) candidates in
    match (List.rev wired, List.rev candidates, List.rev modules) with
    | m :: _, _, _ -> Some m
    | [], m :: _, _ -> Some m
    | [], [], m :: _ -> Some m
    | [], [], [] -> None
  in
  let net_index : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let net_names = ref [] in
  let n_nets = ref 0 in
  let net_of ~display key =
    match Hashtbl.find_opt net_index key with
    | Some i -> i
    | None ->
        let i = !n_nets in
        Hashtbl.replace net_index key i;
        net_names := display :: !net_names;
        incr n_nets;
        i
  in
  let devices = ref [] in
  let n_devices = ref 0 in
  let max_devices = 1_000_000 in
  let emit_dev span dtype ~gate ~source ~drain =
    if !n_devices >= max_devices then begin
      if !n_devices = max_devices then
        diag
          (Diag.error ~span ~code:"lvs-ref-too-large"
             (Printf.sprintf
                "flattened netlist exceeds %d devices; truncating"
                max_devices));
      incr n_devices
    end
    else begin
      devices :=
        {
          Circuit.dtype;
          gate;
          source;
          drain;
          length = 0;
          width = 0;
          location = Point.make !n_devices 0;
          geometry = [];
        }
        :: !devices;
      incr n_devices
    end
  in
  let fresh = ref 0 in
  let fresh_net path =
    incr fresh;
    let display = Printf.sprintf "%s$nc%d" path !fresh in
    net_of ~display (up display)
  in
  let resolve path bind tok =
    let u = up tok in
    if u = vdd_key then net_of ~display:vdd vdd_key
    else if u = gnd_key || u = "0" then net_of ~display:gnd gnd_key
    else
      match List.assoc_opt u bind with
      | Some i -> i
      | None ->
          if path = "" then net_of ~display:tok u
          else net_of ~display:(path ^ tok) (up path ^ u)
  in
  (* depletion-load NMOS lowering, the same shapes the extractor sees:
     pull-down enhancement network to ground, depletion load gate-tied to
     the output *)
  let load_dev span y =
    emit_dev span Ace_tech.Nmos.Depletion ~gate:y ~source:y
      ~drain:(net_of ~display:vdd vdd_key)
  in
  let lower_prim inst path nets =
    let span = inst.v_span in
    let gndn = net_of ~display:gnd gnd_key in
    let arity k =
      if List.length nets <> k then begin
        diag
          (Diag.error ~span ~code:"lvs-ref-pin-mismatch"
             (Printf.sprintf "%s takes %d ports but instance %s passes %d"
                (String.lowercase_ascii inst.v_type)
                k inst.v_name (List.length nets)));
        false
      end
      else true
    in
    match String.lowercase_ascii inst.v_type with
    | "not" ->
        if arity 2 then begin
          match nets with
          | [ y; a ] ->
              emit_dev span Ace_tech.Nmos.Enhancement ~gate:a ~source:gndn
                ~drain:y;
              load_dev span y
          | _ -> ()
        end
    | "nand" ->
        if List.length nets < 3 then
          diag
            (Diag.error ~span ~code:"lvs-ref-pin-mismatch"
               (Printf.sprintf
                  "nand needs an output and at least 2 inputs; instance %s \
                   passes %d ports"
                  inst.v_name (List.length nets)))
        else begin
          match nets with
          | y :: ins ->
              (* series pull-down chain gnd -> y through fresh nets *)
              let k = List.length ins in
              let node i =
                if i = 0 then gndn
                else if i = k then y
                else begin
                  let display =
                    Printf.sprintf "%s%s$n%d" path inst.v_name i
                  in
                  net_of ~display (up display)
                end
              in
              List.iteri
                (fun i g ->
                  emit_dev span Ace_tech.Nmos.Enhancement ~gate:g
                    ~source:(node i) ~drain:(node (i + 1)))
                ins;
              load_dev span y
          | [] -> ()
        end
    | "nor" ->
        if List.length nets < 3 then
          diag
            (Diag.error ~span ~code:"lvs-ref-pin-mismatch"
               (Printf.sprintf
                  "nor needs an output and at least 2 inputs; instance %s \
                   passes %d ports"
                  inst.v_name (List.length nets)))
        else begin
          match nets with
          | y :: ins ->
              List.iter
                (fun g ->
                  emit_dev span Ace_tech.Nmos.Enhancement ~gate:g
                    ~source:gndn ~drain:y)
                ins;
              load_dev span y
          | [] -> ()
        end
    | "nmos" ->
        if arity 3 then begin
          match nets with
          | [ d; s; g ] ->
              emit_dev span Ace_tech.Nmos.Enhancement ~gate:g ~source:s
                ~drain:d
          | _ -> ()
        end
    | other ->
        diag
          (Diag.error ~span ~code:"lvs-ref-unknown-primitive"
             (Printf.sprintf
                "instance %s of unknown module or primitive %s" inst.v_name
                other))
  in
  (* port binding: fully positional or fully named, never mixed *)
  let conn_nets path bind inst =
    let value = function
      | Some tok -> resolve path bind tok
      | None -> fresh_net path
    in
    let named =
      List.exists (function CNamed _ -> true | CPos _ -> false) inst.v_conns
    in
    let positional =
      List.exists (function CPos _ -> true | CNamed _ -> false) inst.v_conns
    in
    if named && positional then begin
      diag
        (Diag.error ~span:inst.v_span ~code:"lvs-ref-bad-portmap"
           (Printf.sprintf
              "instance %s mixes named and positional port connections"
              inst.v_name));
      None
    end
    else if named then Some (`Named, value)
    else
      Some
        ( `Pos
            (List.map
               (function CPos a -> value a | CNamed _ -> assert false)
               inst.v_conns),
          value )
  in
  let rec emit path active (m : vmodule) bind =
    List.iter
      (fun inst ->
        match Hashtbl.find_opt mod_tbl inst.v_type with
        | Some sub ->
            if List.mem sub.m_name active then
              diag
                (Diag.error ~span:inst.v_span ~code:"lvs-ref-recursive"
                   (Printf.sprintf "recursive expansion of module %s"
                      sub.m_name))
            else begin
              let bind' =
                match conn_nets path bind inst with
                | None -> None
                | Some (`Named, value) ->
                    let seen = Hashtbl.create 8 in
                    let pairs = ref [] in
                    let bad = ref false in
                    List.iter
                      (function
                        | CNamed (f, a) ->
                            let fu = up f in
                            if Hashtbl.mem seen fu then begin
                              diag
                                (Diag.error ~span:inst.v_span
                                   ~code:"lvs-ref-bad-portmap"
                                   (Printf.sprintf
                                      "instance %s connects port %s twice"
                                      inst.v_name f));
                              bad := true
                            end
                            else if
                              not
                                (List.exists
                                   (fun port -> up port = fu)
                                   sub.m_ports)
                            then begin
                              diag
                                (Diag.error ~span:inst.v_span
                                   ~code:"lvs-ref-bad-portmap"
                                   (Printf.sprintf
                                      "instance %s connects unknown port %s \
                                       of module %s"
                                      inst.v_name f sub.m_name));
                              bad := true
                            end
                            else begin
                              Hashtbl.replace seen fu ();
                              pairs := (fu, a) :: !pairs
                            end
                        | CPos _ -> ())
                      inst.v_conns;
                    if !bad then None
                    else
                      Some
                        (List.map
                           (fun port ->
                             let fu = up port in
                             match List.assoc_opt fu !pairs with
                             | Some a -> (fu, value a)
                             | None -> (fu, fresh_net path))
                           sub.m_ports)
                | Some (`Pos nets, _) ->
                    if List.length nets <> List.length sub.m_ports then begin
                      diag
                        (Diag.error ~span:inst.v_span
                           ~code:"lvs-ref-pin-mismatch"
                           (Printf.sprintf
                              "instance %s passes %d ports but module %s \
                               declares %d"
                              inst.v_name (List.length nets) sub.m_name
                              (List.length sub.m_ports)));
                      None
                    end
                    else
                      Some
                        (List.map2
                           (fun port net -> (up port, net))
                           sub.m_ports nets)
              in
              match bind' with
              | None -> ()
              | Some bind' ->
                  emit
                    (path ^ inst.v_name ^ "/")
                    (sub.m_name :: active) sub bind'
            end
        | None -> (
            match conn_nets path bind inst with
            | None -> ()
            | Some (`Named, _) ->
                diag
                  (Diag.error ~span:inst.v_span ~code:"lvs-ref-bad-portmap"
                     (Printf.sprintf
                        "primitive instance %s cannot use named port \
                         connections"
                        inst.v_name))
            | Some (`Pos nets, _) -> lower_prim inst path nets))
      (List.rev m.m_insts)
  in
  (match top with None -> () | Some m -> emit "" [ m.m_name ] m []);
  let nets =
    !net_names |> List.rev
    |> List.mapi (fun i display ->
           {
             Circuit.names = [ display ];
             location = Point.make i 0;
             geometry = [];
           })
    |> Array.of_list
  in
  let circuit =
    { Circuit.name; devices = Array.of_list (List.rev !devices); nets }
  in
  (circuit, List.rev !diags)
