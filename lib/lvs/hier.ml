(* Hierarchical LVS over HEXT cell summaries.

   The flat comparator re-matches every instance of every cell from
   scratch; on a chip built from repeated cells that forfeits exactly the
   asymptotics HEXT's hierarchy bought.  This pass walks the extractor's
   hierarchical wirelist instead: each distinct part (by structural
   fingerprint) is compared against candidate reference subckts ONCE, the
   verdict and the boundary-pin correspondence are memoized, and every
   further instance is substituted as an opaque multi-terminal
   pseudo-device.  Only the residual top-level glue is then verified, by
   the same seeded partition refinement generalized to (role, net)
   terminal lists.

   The contract is verdict equivalence with the flat compare, enforced
   conservatively: a hierarchical Clean requires a full witness — every
   reference cell instance paired, pin-color multisets corresponding, and
   the glue color multisets equal.  ANY obstruction (no matching cell, a
   shared net name hidden inside a substituted instance, glue mismatch)
   abandons the attempt and falls back to the flat comparator, which owns
   the verdict; the hierarchical pass then only contributes lvs-cell-*
   findings that name the offending cell type. *)

open Ace_netlist
module Cancel = Ace_core.Cancel
module Trace = Ace_trace.Trace
module Diag = Ace_diag.Diag
module Hext = Ace_hext.Hext

type result = {
  r : Match.result;
  cell_matches : int;  (** distinct cell summaries compared *)
  cell_hits : int;  (** instances served from the summary memo *)
  fallback : bool;  (** the verdict came from the flat comparator *)
}

(* Same hashing discipline as Match. *)
let mix h x = (h * 1000003) + x + 0x9e3779b9

let hash_sorted ints =
  List.fold_left mix 0x1234567 (List.sort Int.compare ints) land max_int

let str_code s =
  String.fold_left (fun h c -> mix h (Char.code c)) 0x5EED s land max_int

let type_code = function
  | Ace_tech.Nmos.Enhancement -> 3
  | Ace_tech.Nmos.Depletion -> 4

(* ---------- growable union-find over glue nets -------------------------- *)

module Uf = struct
  type t = { mutable parent : int array; mutable n : int }

  let create () = { parent = Array.make 256 0; n = 0 }

  let fresh t =
    if t.n = Array.length t.parent then begin
      let p = Array.make (2 * t.n) 0 in
      Array.blit t.parent 0 p 0 t.n;
      t.parent <- p
    end;
    let i = t.n in
    t.parent.(i) <- i;
    t.n <- i + 1;
    i

  let rec find t i =
    let p = t.parent.(i) in
    if p = i then i
    else begin
      let r = find t p in
      t.parent.(i) <- r;
      r
    end

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then t.parent.(ra) <- rb
end

(* ---------- generic glue graph ------------------------------------------ *)

(* A glue element: a real transistor (tag encodes type and, with sizes,
   geometry) or a matched-cell pseudo-device (tag encodes which pairing).
   Terminals carry a role so a pseudo-device's symmetric pins stay
   interchangeable while distinct pins stay distinct. *)
type gdev = { gtag : int; gterms : (int * int) list (* (role, net) *) }

type gside = {
  g_nets : int;  (** net count *)
  g_names : (int * string) list;  (** (net, name) *)
  g_devs : gdev array;
}

(* Seeded refinement over a glue graph pair; [None] = correspond,
   [Some ()] = the color multisets differ.  Mirrors Match.run's loop with
   (role, net) terminal lists instead of fixed gate/source/drain. *)
let glue_compare ~vdd ~gnd a b =
  (* seeds: a name on exactly one net of EACH side pins the pair; the
     rails pin through their configured names *)
  let names_of side =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun (n, name) ->
        let key = String.uppercase_ascii name in
        Hashtbl.replace tbl key
          (match Hashtbl.find_opt tbl key with
          | None -> `One n
          | Some (`One m) when m = n -> `One n
          | Some _ -> `Many))
      side.g_names;
    tbl
  in
  let ta = names_of a and tb = names_of b in
  let seed_of tbl =
    let seeds = Hashtbl.create 32 in
    Hashtbl.iter
      (fun key v ->
        match (v, Hashtbl.find_opt (if tbl == ta then tb else ta) key) with
        | `One n, Some (`One _) ->
            let color =
              if key = String.uppercase_ascii vdd then 0x56DD
              else if key = String.uppercase_ascii gnd then 0x06ED
              else str_code key
            in
            Hashtbl.replace seeds n color
        | _ -> ())
      tbl;
    seeds
  in
  let sa = seed_of ta and sb = seed_of tb in
  let refine side seeds =
    let ncolor =
      Array.init side.g_nets (fun n ->
          match Hashtbl.find_opt seeds n with Some c -> c | None -> 0)
    in
    let dcolor = Array.map (fun d -> d.gtag) side.g_devs in
    let used = Array.make side.g_nets false in
    Array.iter
      (fun d -> List.iter (fun (_, n) -> used.(n) <- true) d.gterms)
      side.g_devs;
    let distinct () =
      let l = ref [] in
      Array.iteri (fun n u -> if u then l := ncolor.(n) :: !l) used;
      Array.iter (fun c -> l := c :: !l) dcolor;
      List.length (List.sort_uniq Int.compare !l)
    in
    let cap = side.g_nets + Array.length side.g_devs + 2 in
    let rounds = ref 0 in
    let stable = ref false in
    while not !stable do
      incr rounds;
      let before = distinct () in
      Array.iteri
        (fun i d ->
          dcolor.(i) <-
            mix dcolor.(i)
              (hash_sorted
                 (List.map (fun (role, n) -> mix ncolor.(n) role) d.gterms)))
        side.g_devs;
      let incid = Array.make side.g_nets [] in
      Array.iteri
        (fun i d ->
          List.iter
            (fun (role, n) -> incid.(n) <- mix dcolor.(i) role :: incid.(n))
            d.gterms)
        side.g_devs;
      Array.iteri
        (fun n u -> if u then ncolor.(n) <- mix ncolor.(n) (hash_sorted incid.(n)))
        used;
      let after = distinct () in
      if after <= before || !rounds > cap then stable := true
    done;
    let net_multiset = ref [] in
    Array.iteri (fun n u -> if u then net_multiset := ncolor.(n) :: !net_multiset) used;
    ( List.sort Int.compare !net_multiset,
      List.sort Int.compare (Array.to_list dcolor) )
  in
  let na, da = refine a sa and nb, db = refine b sb in
  na = nb && da = db

(* ---------- cell pairing ------------------------------------------------ *)

type pairing = {
  pr_cell : int;  (** index into the reference view's cells *)
  pr_lay_roles : (int * int) list;
      (** (export local net, role) — colorless (inert) exports omitted *)
  pr_ref_roles : (int * int) list;  (** (pin index, role), inert omitted *)
}

(* ---------- main -------------------------------------------------------- *)

let flat_fallback ?cancel ?with_sizes ?tolerance ~vdd ~gnd ?max_findings
    ~layout ~reference ~cell_findings () =
  let flat = Hier.flatten layout in
  let r =
    Match.run ?cancel ?with_sizes ?tolerance ~vdd ~gnd ?max_findings
      ~layout:flat ~reference ()
  in
  let r =
    if r.Match.outcome = Match.Mismatch && cell_findings <> [] then
      { r with Match.findings = cell_findings @ r.Match.findings }
    else r
  in
  r

let run ?cancel ?(with_sizes = true) ?(tolerance = 0.) ?(vdd = "VDD")
    ?(gnd = "GND") ?max_findings ~layout ~reference ?ref_view () =
  let matches = ref 0 and hits = ref 0 in
  let finish ~fallback r =
    { r; cell_matches = !matches; cell_hits = !hits; fallback }
  in
  match ref_view with
  | None ->
      finish ~fallback:true
        (flat_fallback ?cancel ~with_sizes ~tolerance ~vdd ~gnd ?max_findings
           ~layout ~reference ~cell_findings:[] ())
  | Some (view : Reference.hview) ->
      let parts_tbl = Hashtbl.create 16 in
      List.iter
        (fun (p : Hier.part) -> Hashtbl.replace parts_tbl p.Hier.part_name p)
        layout.Hier.parts;
      (* names the reference knows anywhere (flat): a layout name shared
         with these must not disappear inside a substituted cell, or the
         flat compare could have used it as a seed we just hid *)
      let ref_names = Hashtbl.create 64 in
      Array.iter
        (fun (n : Circuit.net) ->
          List.iter
            (fun nm -> Hashtbl.replace ref_names (String.uppercase_ascii nm) ())
            n.Circuit.names)
        reference.Circuit.nets;
      (* interior circuit of a part, with the flat net index of each export *)
      let interior_of (p : Hier.part) =
        if p.Hier.instances = [] then begin
          let nets =
            Array.init p.Hier.net_count (fun i ->
                let names =
                  List.filter_map
                    (fun (n, nm) -> if n = i then Some nm else None)
                    p.Hier.net_names
                in
                {
                  Circuit.names;
                  location = Ace_geom.Point.make i 0;
                  geometry = [];
                })
          in
          let devices =
            p.Hier.devices
            |> List.map (fun (d : Hier.hdevice) ->
                   {
                     Circuit.dtype = d.Hier.dtype;
                     gate = d.Hier.gate;
                     source = d.Hier.source;
                     drain = d.Hier.drain;
                     length = d.Hier.length;
                     width = d.Hier.width;
                     location = d.Hier.location;
                     geometry = [];
                   })
            |> Array.of_list
          in
          ( { Circuit.name = p.Hier.part_name; devices; nets },
            List.map (fun e -> e) p.Hier.exports )
        end
        else begin
          let sub = { Hier.parts = layout.Hier.parts; top = p.Hier.part_name } in
          let c, acts = Hier.flatten_ext sub in
          let root =
            List.find
              (fun (a : Hier.activation) -> a.Hier.act_part = p.Hier.part_name)
              acts
          in
          ( { c with Circuit.name = p.Hier.part_name },
            List.map (fun e -> root.Hier.act_nets.(e)) p.Hier.exports )
        end
      in
      (* one pairing attempt per distinct fingerprint *)
      let memo : (int, pairing option) Hashtbl.t = Hashtbl.create 16 in
      let claimed : (int, int) Hashtbl.t = Hashtbl.create 8 in
      let mismatched = ref [] (* (part name, cell name), first per part *) in
      let unmatched = ref [] (* leaf part names with no candidate *) in
      let inst_counts = Hashtbl.create 16 in
      let try_pair (p : Hier.part) =
        let n_pins = List.length p.Hier.exports in
        let candidates =
          view.Reference.hv_cells |> Array.to_list
          |> List.mapi (fun i c -> (i, c))
          |> List.filter (fun (_, (c : Reference.hcell)) ->
                 List.length c.Reference.hc_pins = n_pins && n_pins > 0)
        in
        if candidates = [] then begin
          if p.Hier.instances = [] && p.Hier.devices <> [] then
            unmatched := p.Hier.part_name :: !unmatched;
          None
        end
        else begin
          let interior, ex_nets = interior_of p in
          let rec try_all = function
            | [] -> None
            | (ci, (cell : Reference.hcell)) :: rest ->
                if Hashtbl.mem claimed ci then try_all rest
                else begin
                  incr matches;
                  Trace.incr Trace.Counter.Lvs_cell_matches;
                  let res, cols_a, cols_b =
                    Match.run_full ?cancel ~with_sizes ~tolerance ~vdd ~gnd
                      ~max_findings:0 ~layout:interior
                      ~reference:cell.Reference.hc_body ()
                  in
                  if res.Match.outcome <> Match.Clean then begin
                    if
                      res.Match.outcome = Match.Mismatch
                      && not
                           (List.mem_assoc p.Hier.part_name !mismatched)
                    then
                      mismatched :=
                        (p.Hier.part_name, cell.Reference.hc_name)
                        :: !mismatched;
                    try_all rest
                  end
                  else begin
                    let color_a = Hashtbl.create 16
                    and color_b = Hashtbl.create 16 in
                    List.iter (fun (n, c) -> Hashtbl.replace color_a n c) cols_a;
                    List.iter (fun (n, c) -> Hashtbl.replace color_b n c) cols_b;
                    let lay_roles =
                      List.filter_map
                        (fun (local, flat) ->
                          match Hashtbl.find_opt color_a flat with
                          | Some c -> Some (local, c)
                          | None -> None)
                        (List.combine p.Hier.exports ex_nets)
                    in
                    let ref_roles =
                      cell.Reference.hc_pin_nets |> Array.to_list
                      |> List.mapi (fun k n -> (k, n))
                      |> List.filter_map (fun (k, n) ->
                             match Hashtbl.find_opt color_b n with
                             | Some c -> Some (k, c)
                             | None -> None)
                    in
                    let roles l = List.sort Int.compare (List.map snd l) in
                    (* soundness guard: a non-boundary net sharing a color
                       with a boundary pin means the automorphism that
                       would justify permuting equal-role pins can drag a
                       pin onto a HIDDEN interior net — the pseudo-device
                       cannot represent that coupling, so refuse the
                       summary and let the flat compare decide *)
                    let interior_leak cols pins =
                      let pin_set = Hashtbl.create 8 in
                      List.iter (fun n -> Hashtbl.replace pin_set n ()) pins;
                      let pin_colors = Hashtbl.create 8 in
                      List.iter
                        (fun (n, c) ->
                          if Hashtbl.mem pin_set n then
                            Hashtbl.replace pin_colors c ())
                        cols;
                      List.exists
                        (fun (n, c) ->
                          (not (Hashtbl.mem pin_set n))
                          && Hashtbl.mem pin_colors c)
                        cols
                    in
                    (* soundness guard: a pin with device terminals in the
                       UNREDUCED interior but absent from the comparison
                       nets was reduced away (e.g. a series merge through
                       the boundary) — the flat compare, where the net has
                       outside connections, would not have reduced it, so
                       the summary under-represents the boundary *)
                    let reduced_away (c : Circuit.t) pins colors =
                      let used =
                        Array.make (Array.length c.Circuit.nets) false
                      in
                      Array.iter
                        (fun (d : Circuit.device) ->
                          used.(d.Circuit.gate) <- true;
                          used.(d.Circuit.source) <- true;
                          used.(d.Circuit.drain) <- true)
                        c.Circuit.devices;
                      List.exists
                        (fun n ->
                          n >= 0
                          && n < Array.length used
                          && used.(n)
                          && not (Hashtbl.mem colors n))
                        pins
                    in
                    if
                      roles lay_roles <> roles ref_roles
                      || interior_leak cols_a ex_nets
                      || interior_leak cols_b
                           (Array.to_list cell.Reference.hc_pin_nets)
                      || reduced_away interior ex_nets color_a
                      || reduced_away cell.Reference.hc_body
                           (Array.to_list cell.Reference.hc_pin_nets)
                           color_b
                    then try_all rest
                    else begin
                      Hashtbl.replace claimed ci 1;
                      Some { pr_cell = ci; pr_lay_roles = lay_roles; pr_ref_roles = ref_roles }
                    end
                  end
                end
          in
          try_all candidates
        end
      in
      let pairing_for (p : Hier.part) =
        let fp = Hext.cell_fingerprint p in
        match Hashtbl.find_opt memo fp with
        | Some entry ->
            (match entry with
            | Some _ ->
                incr hits;
                Trace.incr Trace.Counter.Lvs_cell_hits
            | None -> ());
            entry
        | None ->
            let entry = try_pair p in
            Hashtbl.replace memo fp entry;
            entry
      in
      (* layout traversal: expand unpaired parts, substitute paired ones *)
      let uf = Uf.create () in
      let obstructed = ref false in
      let lay_names = ref [] in
      let lay_real = ref [] (* (dtype, l, w, g, s, d) over uf nodes *) in
      let lay_pseudo = ref [] (* (cell index, (role, uf node) list) *) in
      let count_inst name =
        Hashtbl.replace inst_counts name
          (1 + Option.value ~default:0 (Hashtbl.find_opt inst_counts name))
      in
      let rec expand (p : Hier.part) (lmap : int array) =
        List.iter
          (fun (n, nm) -> lay_names := (lmap.(n), nm) :: !lay_names)
          p.Hier.net_names;
        List.iter
          (fun (d : Hier.hdevice) ->
            lay_real :=
              ( d.Hier.dtype,
                d.Hier.length,
                d.Hier.width,
                lmap.(d.Hier.gate),
                lmap.(d.Hier.source),
                lmap.(d.Hier.drain) )
              :: !lay_real)
          p.Hier.devices;
        List.iter
          (fun (inst : Hier.instance) ->
            if not !obstructed then begin
              match Hashtbl.find_opt parts_tbl inst.Hier.part_name with
              | None -> obstructed := true
              | Some child -> (
                  count_inst child.Hier.part_name;
                  match pairing_for child with
                  | Some pr ->
                      (* bind exports through the net map; unbound exports
                         dangle on fresh nets *)
                      let bound = Hashtbl.create 8 in
                      List.iter
                        (fun (inner, outer) ->
                          match Hashtbl.find_opt bound inner with
                          | Some prev -> Uf.union uf prev lmap.(outer)
                          | None -> Hashtbl.replace bound inner lmap.(outer))
                        inst.Hier.net_map;
                      (* an inner binding that is not an export would mean
                         glue reaches into the cell: hide nothing *)
                      Hashtbl.iter
                        (fun inner _ ->
                          if not (List.mem inner child.Hier.exports) then
                            obstructed := true)
                        bound;
                      (* interior names the reference also knows must not
                         vanish from the compare *)
                      List.iter
                        (fun (n, nm) ->
                          if
                            (not (Hashtbl.mem bound n))
                            && Hashtbl.mem ref_names
                                 (String.uppercase_ascii nm)
                          then obstructed := true
                          else
                            match Hashtbl.find_opt bound n with
                            | Some g -> lay_names := (g, nm) :: !lay_names
                            | None -> ())
                        child.Hier.net_names;
                      let net_of_export e =
                        match Hashtbl.find_opt bound e with
                        | Some g -> g
                        | None -> Uf.fresh uf
                      in
                      let terms =
                        List.map
                          (fun (local, role) -> (role, net_of_export local))
                          pr.pr_lay_roles
                      in
                      lay_pseudo := (pr.pr_cell, terms) :: !lay_pseudo
                  | None ->
                      let cmap = Array.make child.Hier.net_count (-1) in
                      List.iter
                        (fun (inner, outer) ->
                          if cmap.(inner) >= 0 then
                            Uf.union uf cmap.(inner) lmap.(outer)
                          else cmap.(inner) <- lmap.(outer))
                        inst.Hier.net_map;
                      for i = 0 to child.Hier.net_count - 1 do
                        if cmap.(i) < 0 then cmap.(i) <- Uf.fresh uf
                      done;
                      expand child cmap)
            end)
          p.Hier.instances
      in
      let attempt () =
        let top = Hashtbl.find_opt parts_tbl layout.Hier.top in
        match top with
        | None ->
            obstructed := true;
            None
        | Some top ->
            let tmap =
              Array.init top.Hier.net_count (fun _ -> Uf.fresh uf)
            in
            expand top tmap;
            if !obstructed then None
            else begin
              (* every reference cell instance must be paired, or the
                 pseudo-devices cannot correspond *)
              let all_paired =
                List.for_all
                  (fun (hi : Reference.hinst) ->
                    Hashtbl.mem claimed hi.Reference.hi_cell)
                  view.Reference.hv_insts
              in
              if not all_paired then None
              else begin
                (* compress layout glue nets *)
                let dense = Hashtbl.create 64 in
                let n_dense = ref 0 in
                let nd i =
                  let r = Uf.find uf i in
                  match Hashtbl.find_opt dense r with
                  | Some k -> k
                  | None ->
                      let k = !n_dense in
                      Hashtbl.replace dense r k;
                      incr n_dense;
                      k
                in
                let dev_tag dtype l w =
                  if with_sizes then mix (mix (mix 101 (type_code dtype)) l) w
                  else mix 101 (type_code dtype)
                in
                let lay_devs =
                  List.map
                    (fun (dt, l, w, g, s, d) ->
                      {
                        gtag = dev_tag dt l w;
                        gterms = [ (1, nd g); (2, nd s); (2, nd d) ];
                      })
                    !lay_real
                  @ List.map
                      (fun (cell, terms) ->
                        {
                          gtag = mix 201 cell;
                          gterms =
                            List.map (fun (role, n) -> (role, nd n)) terms;
                        })
                      !lay_pseudo
                in
                let lay_side =
                  {
                    g_nets = !n_dense;
                    g_names =
                      List.filter_map
                        (fun (n, nm) ->
                          match Hashtbl.find_opt dense (Uf.find uf n) with
                          | Some k -> Some (k, nm)
                          | None -> None)
                        !lay_names;
                    g_devs = Array.of_list lay_devs;
                  }
                in
                (* reference glue side *)
                let pair_of_cell = Hashtbl.create 8 in
                Hashtbl.iter
                  (fun _ entry ->
                    match entry with
                    | Some pr -> Hashtbl.replace pair_of_cell pr.pr_cell pr
                    | None -> ())
                  memo;
                let ref_devs =
                  (view.Reference.hv_glue.Circuit.devices |> Array.to_list
                  |> List.map (fun (d : Circuit.device) ->
                         {
                           gtag =
                             dev_tag d.Circuit.dtype d.Circuit.length
                               d.Circuit.width;
                           gterms =
                             [
                               (1, d.Circuit.gate);
                               (2, d.Circuit.source);
                               (2, d.Circuit.drain);
                             ];
                         }))
                  @ List.filter_map
                      (fun (hi : Reference.hinst) ->
                        match
                          Hashtbl.find_opt pair_of_cell hi.Reference.hi_cell
                        with
                        | None -> None
                        | Some pr ->
                            Some
                              {
                                gtag = mix 201 pr.pr_cell;
                                gterms =
                                  List.map
                                    (fun (k, role) ->
                                      (role, hi.Reference.hi_nets.(k)))
                                    pr.pr_ref_roles;
                              })
                      view.Reference.hv_insts
                in
                let ref_side =
                  {
                    g_nets =
                      Array.length view.Reference.hv_glue.Circuit.nets;
                    g_names =
                      view.Reference.hv_glue.Circuit.nets |> Array.to_list
                      |> List.mapi (fun i (n : Circuit.net) ->
                             List.map (fun nm -> (i, nm)) n.Circuit.names)
                      |> List.concat;
                    g_devs = Array.of_list ref_devs;
                  }
                in
                if glue_compare ~vdd ~gnd lay_side ref_side then
                  Some (lay_side, ref_side)
                else None
              end
            end
      in
      let verdict = attempt () in
      (match cancel with Some c -> Cancel.check c | None -> ());
      (match verdict with
      | Some (lay_side, ref_side) ->
          let stats =
            {
              Match.layout_devices = Array.length lay_side.g_devs;
              ref_devices = Array.length ref_side.g_devs;
              layout_nets = lay_side.g_nets;
              ref_nets = ref_side.g_nets;
              reductions = 0;
              rounds = 0;
              matched = Array.length lay_side.g_devs;
            }
          in
          finish ~fallback:false
            { Match.outcome = Match.Clean; findings = []; stats }
      | None ->
          (* assemble the cell-level findings the flat report will carry
             when it does mismatch *)
          let cell_findings =
            List.rev_map
              (fun (part, cell) ->
                let n =
                  Option.value ~default:1
                    (Hashtbl.find_opt inst_counts part)
                in
                {
                  Match.code = "lvs-cell-mismatch";
                  severity = Diag.Error;
                  message =
                    Printf.sprintf
                      "cell %s (%d instance%s) does not match reference \
                       subcircuit %s"
                      part n
                      (if n = 1 then "" else "s")
                      cell;
                  anchor = part;
                  layout_net = None;
                })
              !mismatched
            @ List.rev_map
                (fun part ->
                  let n =
                    Option.value ~default:1
                      (Hashtbl.find_opt inst_counts part)
                  in
                  {
                    Match.code = "lvs-cell-unmatched";
                    severity = Diag.Hint;
                    message =
                      Printf.sprintf
                        "cell %s (%d instance%s) has no reference \
                         subcircuit with a matching pin count; compared \
                         flat"
                        part n
                        (if n = 1 then "" else "s");
                    anchor = part;
                    layout_net = None;
                  })
                !unmatched
          in
          finish ~fallback:true
            (flat_fallback ?cancel ~with_sizes ~tolerance ~vdd ~gnd
               ?max_findings ~layout ~reference ~cell_findings ()))
