open Ace_netlist

(** The LVS reference-netlist front end: a lenient SPICE-ish structural
    parser.

    The input dialect is the subset every schematic-capture flow can emit
    (and that {!Ace_netlist.Spice} itself produces): [M] transistor cards,
    [.SUBCKT]/[.ENDS] definitions with [X] instance cards, [.MODEL] cards
    deciding enhancement vs depletion, [.GLOBAL], [*] comments and [+]
    continuation lines.  Parsing is lenient in the {!Ace_diag} sense: it
    never raises, every problem becomes a diagnostic with a byte span and
    a stable [lvs-ref-*] code, and a circuit is always produced from
    whatever was readable.

    The output is the same flat {!Circuit.t} shape the extractor emits, so
    the comparator ({!Match}) and the existing wirelist machinery consume
    reference netlists and extracted layouts identically. *)

(** [parse ?name ?gnd text] — [gnd] (default ["GND"]) is the net that
    SPICE node [0] aliases.  Net and model names are case-insensitive;
    devices missing [L=]/[W=] get 0 (meaning "unknown", skipped by size
    comparison).  Dimension suffixes: [U] microns, [N] nanometers, [M]
    millimeters; bare numbers are centimicrons. *)
val parse :
  ?name:string -> ?gnd:string -> string -> Circuit.t * Ace_diag.Diag.t list

(** [load ?name ?gnd text] sniffs the format: text starting with
    [(DefPart] is read as a CMU wirelist (strict, one [wirelist-error]
    diagnostic on failure), anything else goes through {!parse}. *)
val load :
  ?name:string ->
  ?gnd:string ->
  string ->
  (Circuit.t * Ace_diag.Diag.t list, Ace_diag.Diag.t) result
