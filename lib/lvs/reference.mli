open Ace_netlist

(** The LVS reference-netlist front end: a lenient SPICE-ish structural
    parser.

    The input dialect is the subset every schematic-capture flow can emit
    (and that {!Ace_netlist.Spice} itself produces): [M] transistor cards,
    [.SUBCKT]/[.ENDS] definitions with [X] instance cards, [.MODEL] cards
    deciding enhancement vs depletion, [.GLOBAL], [*] comments and [+]
    continuation lines.  Parsing is lenient in the {!Ace_diag} sense: it
    never raises, every problem becomes a diagnostic with a byte span and
    a stable [lvs-ref-*] code, and a circuit is always produced from
    whatever was readable.

    The output is the same flat {!Circuit.t} shape the extractor emits, so
    the comparator ({!Match}) and the existing wirelist machinery consume
    reference netlists and extracted layouts identically. *)

(** [parse ?name ?gnd text] — [gnd] (default ["GND"]) is the net that
    SPICE node [0] aliases.  Net and model names are case-insensitive;
    devices missing [L=]/[W=] get 0 (meaning "unknown", skipped by size
    comparison).  Dimension suffixes: [U] microns, [N] nanometers, [M]
    millimeters; bare numbers are centimicrons. *)
val parse :
  ?name:string -> ?gnd:string -> string -> Circuit.t * Ace_diag.Diag.t list

(** [load ?name ?gnd text] sniffs the format: text starting with
    [(DefPart] is read as a CMU wirelist (strict, one [wirelist-error]
    diagnostic on failure), anything else goes through {!parse}. *)
val load :
  ?name:string ->
  ?gnd:string ->
  string ->
  (Circuit.t * Ace_diag.Diag.t list, Ace_diag.Diag.t) result

(** {1 Hierarchical view}

    The same deck, read without flattening the top level: each subckt
    instantiated at the top becomes a cell body circuit, and the top
    becomes a glue circuit plus a list of cell instances.  {!Hier} feeds
    this to the cell-summary comparison. *)

type hcell = {
  hc_name : string;  (** uppercased subckt name *)
  hc_pins : string list;
      (** uppercased formal pins, then implicit pins (globals and ground
          referenced in the body), in first-use order *)
  hc_formals : int;  (** how many of [hc_pins] are formals *)
  hc_body : Circuit.t;
      (** the flattened cell interior (nested subckts expanded) *)
  hc_pin_nets : int array;  (** body net per pin, aligned with [hc_pins] *)
}

type hinst = {
  hi_cell : int;  (** index into [hv_cells] *)
  hi_nets : int array;  (** glue net per pin, aligned with [hc_pins] *)
}

type hview = {
  hv_glue : Circuit.t;  (** top-level devices and nets only *)
  hv_cells : hcell array;
  hv_insts : hinst list;
}

val hier_view : ?name:string -> ?gnd:string -> string -> hview option
(** [None] when the deck is flat (no top-level instances), has any
    first-pass parse error, or hits an obstruction (undefined subckt, pin
    arity mismatch, recursion, size cap) — the caller falls back to the
    flat compare, which owns diagnostics.  Flattening [hv_glue] with
    every instance's cell body substituted yields exactly the circuit
    {!parse} produces (up to net numbering). *)
