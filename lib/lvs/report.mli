(** Rendering LVS findings through the shared diagnostics stack:
    {!Ace_diag.Diag} values with stable [lvs-*] codes, 64-bit FNV-1a
    fingerprints for {!Ace_lint.Baseline} waivers, and the SARIF rule
    registry for [tool.driver.rules]. *)

(** Structured diagnostic for a comparator finding (no span — findings
    anchor to circuit structure, not source bytes). *)
val to_diag : Match.finding -> Ace_diag.Diag.t

(** Stable waiver identity: FNV-1a of the code and the finding's anchor
    (physical locations and user names, never array indices), so
    fingerprints survive re-extraction and message rewording. *)
val fingerprint : Match.finding -> string

(** Registry of every [lvs-*] code the comparator and the reference
    parser can emit, for SARIF [tool.driver.rules]. *)
val sarif_rules : unit -> Ace_diag.Sarif.rule list
