open Ace_netlist
module Diag = Ace_diag.Diag
module Cancel = Ace_core.Cancel
module Trace = Ace_trace.Trace
module Point = Ace_geom.Point
module Nmos = Ace_tech.Nmos

type finding = {
  code : string;
  severity : Diag.severity;
  message : string;
  anchor : string;
  layout_net : int option;
}

type stats = {
  layout_devices : int;
  ref_devices : int;
  layout_nets : int;
  ref_nets : int;
  reductions : int;
  rounds : int;
  matched : int;
}

type outcome = Clean | Mismatch | Inconclusive
type result = { outcome : outcome; findings : finding list; stats : stats }

(* Same hashing discipline as Ace_netlist.Compare, so the two comparators
   agree on what "same structure" means. *)
let mix h x = (h * 1000003) + x + 0x9e3779b9

let hash_sorted ints =
  List.fold_left mix 0x1234567 (List.sort Int.compare ints) land max_int

let str_code s =
  String.fold_left (fun h c -> mix h (Char.code c)) 0x5EED s land max_int

let type_code = function Nmos.Enhancement -> 3 | Nmos.Depletion -> 4

(* One side of the comparison: the reduced circuit restricted to nets
   carrying at least one device terminal (deviceless nets contribute no
   structure to a switch-level comparison), with per-round color history
   (newest first) for the localization pairing. *)
type side = {
  c : Circuit.t;
  mult : int array;
  nets : int array;
  net_pos : (int, int) Hashtbl.t;
  mutable net_color : int array;
  mutable dev_color : int array;
  mutable net_hist : int array list;
  mutable dev_hist : int array list;
}

let side_of (r : Reduce.t) =
  let c = r.Reduce.circuit in
  let used = Array.make (Array.length c.Circuit.nets) false in
  Array.iter
    (fun (d : Circuit.device) ->
      used.(d.gate) <- true;
      used.(d.source) <- true;
      used.(d.drain) <- true)
    c.Circuit.devices;
  let nets = ref [] in
  Array.iteri (fun i u -> if u then nets := i :: !nets) used;
  let nets = Array.of_list (List.rev !nets) in
  let net_pos = Hashtbl.create (Array.length nets) in
  Array.iteri (fun i n -> Hashtbl.replace net_pos n i) nets;
  {
    c;
    mult = r.Reduce.mult;
    nets;
    net_pos;
    net_color = [||];
    dev_color = [||];
    net_hist = [];
    dev_hist = [];
  }

(* Net-name seeds: a (case-insensitive) name attached to exactly one
   comparison net on EACH side pins those two nets to the same initial
   color; the power rails are pinned through Circuit.find_rail.  Names
   present on only one side are ignored — they must not be able to turn an
   isomorphic pair into a mismatch. *)
let seed_table a b ~vdd ~gnd =
  let names_of side =
    let tbl = Hashtbl.create 32 in
    Array.iter
      (fun n ->
        List.iter
          (fun name ->
            let key = String.uppercase_ascii name in
            Hashtbl.replace tbl key
              (match Hashtbl.find_opt tbl key with
              | None -> `One n
              | Some _ -> `Many))
          side.c.Circuit.nets.(n).Circuit.names)
      side.nets;
    tbl
  in
  let ta = names_of a and tb = names_of b in
  let seeds = Hashtbl.create 32 (* (side-id, net) -> color *) in
  Hashtbl.iter
    (fun key va ->
      match (va, Hashtbl.find_opt tb key) with
      | `One na, Some (`One nb) ->
          let color = str_code key in
          Hashtbl.replace seeds (`A, na) color;
          Hashtbl.replace seeds (`B, nb) color
      | _ -> ())
    ta;
  List.iter
    (fun (rail, color) ->
      match (Circuit.find_rail a.c rail, Circuit.find_rail b.c rail) with
      | Some na, Some nb
        when Hashtbl.mem a.net_pos na && Hashtbl.mem b.net_pos nb ->
          Hashtbl.replace seeds (`A, na) color;
          Hashtbl.replace seeds (`B, nb) color
      | _ -> ())
    [ (vdd, 0x56DD); (gnd, 0x06ED) ];
  seeds

let init_colors tag seeds side =
  side.net_color <-
    Array.map
      (fun n ->
        match Hashtbl.find_opt seeds (tag, n) with Some c -> c | None -> 0)
      side.nets;
  side.dev_color <-
    Array.map
      (fun (d : Circuit.device) -> type_code d.dtype)
      side.c.Circuit.devices;
  side.net_hist <- [ Array.copy side.net_color ];
  side.dev_hist <- [ Array.copy side.dev_color ]

let distinct a = List.length (List.sort_uniq Int.compare (Array.to_list a))

(* One refinement round, identical in shape to Compare.refine: devices
   rehash from gate color and the unordered source/drain pair, nets from
   the incident device colors with terminal roles. *)
let round side =
  let c = side.c in
  let pos net = Hashtbl.find side.net_pos net in
  let dev_color' =
    Array.mapi
      (fun i (d : Circuit.device) ->
        let g = side.net_color.(pos d.gate) in
        let s = side.net_color.(pos d.source)
        and dr = side.net_color.(pos d.drain) in
        let sd = hash_sorted [ s; dr ] in
        mix (mix (mix side.dev_color.(i) g) sd) 17)
      c.Circuit.devices
  in
  let incidences = Array.make (Array.length side.nets) [] in
  Array.iteri
    (fun i (d : Circuit.device) ->
      let add role net =
        let p = pos net in
        incidences.(p) <- mix dev_color'.(i) role :: incidences.(p)
      in
      add 1 d.gate;
      add 2 d.source;
      add 2 d.drain)
    c.Circuit.devices;
  let net_color' =
    Array.mapi
      (fun i _ -> mix side.net_color.(i) (hash_sorted incidences.(i)))
      side.nets
  in
  side.dev_color <- dev_color';
  side.net_color <- net_color';
  side.dev_hist <- Array.copy dev_color' :: side.dev_hist;
  side.net_hist <- Array.copy net_color' :: side.net_hist

let multiset a = List.sort Int.compare (Array.to_list a)

(* ---------- rendering helpers ------------------------------------------ *)

let um v = Printf.sprintf "%.2f" (float_of_int v /. 100.)
let tname t = Nmos.device_type_name t

let dev_site side i =
  let d = side.c.Circuit.devices.(i) in
  Printf.sprintf "%s@%d,%d" (tname d.dtype) d.location.Point.x
    d.location.Point.y

let net_name side n = Circuit.net_display_name side.c n

(* Cap per-code finding floods at [cap]; the overflow note keeps a stable
   anchor so it too can be waived. *)
let cap_findings cap fs =
  let n = List.length fs in
  if cap <= 0 || n <= cap then fs
  else
    match fs with
    | [] -> fs
    | { code; severity; _ } :: _ ->
        List.filteri (fun i _ -> i < cap) fs
        @ [
            {
              code;
              severity;
              message = Printf.sprintf "... and %d more %s findings" (n - cap) code;
              anchor = "more";
              layout_net = None;
            };
          ]

(* ---------- main -------------------------------------------------------- *)

let run_full ?(cancel = Cancel.never) ?(with_sizes = true) ?(tolerance = 0.)
    ?(vdd = "VDD") ?(gnd = "GND") ?(max_findings = 20) ~layout ~reference () =
  (* A name only one side knows carries no matching information, so it
     must not block the series rule either — a SPICE round trip
     auto-names every net, and reduction has to stay symmetric under
     that.  Names present on both sides are potential hints and
     protect their nets from reduction. *)
  let name_set (c : Circuit.t) =
    let s = Hashtbl.create 32 in
    Array.iter
      (fun (n : Circuit.net) ->
        List.iter
          (fun nm -> Hashtbl.replace s (String.uppercase_ascii nm) ())
          n.Circuit.names)
      c.Circuit.nets;
    s
  in
  let sa = name_set layout and sb = name_set reference in
  let anonymous (n : Circuit.net) =
    not
      (List.exists
         (fun nm ->
           let k = String.uppercase_ascii nm in
           Hashtbl.mem sa k && Hashtbl.mem sb k)
         n.Circuit.names)
  in
  let ra = Reduce.reduce ~cancel ~anonymous layout
  and rb = Reduce.reduce ~cancel ~anonymous reference in
  (* Canonicalize commutative series gate chains before refinement, with
     seeds both sides compute identically (unique shared names, rails),
     so a NAND drawn with swapped inputs lines up with its layout. *)
  let canon_seed (this : Circuit.t) (other : Circuit.t) =
    let uniq (c : Circuit.t) =
      let tbl = Hashtbl.create 32 in
      Array.iteri
        (fun n (net : Circuit.net) ->
          List.iter
            (fun name ->
              let key = String.uppercase_ascii name in
              Hashtbl.replace tbl key
                (match Hashtbl.find_opt tbl key with
                | None -> `One n
                | Some _ -> `Many))
            net.Circuit.names)
        c.Circuit.nets;
      tbl
    in
    let ut = uniq this and uo = uniq other in
    let colors = Hashtbl.create 32 in
    Hashtbl.iter
      (fun key v ->
        match (v, Hashtbl.find_opt uo key) with
        | `One n, Some (`One _) -> Hashtbl.replace colors n (str_code key)
        | _ -> ())
      ut;
    List.iter
      (fun (rail, color) ->
        match (Circuit.find_rail this rail, Circuit.find_rail other rail) with
        | Some n, Some _ -> Hashtbl.replace colors n color
        | _ -> ())
      [ (vdd, 0x56DD); (gnd, 0x06ED) ];
    fun n -> match Hashtbl.find_opt colors n with Some c -> c | None -> 0
  in
  let ca = ra.Reduce.circuit and cb = rb.Reduce.circuit in
  let ra = Reduce.canonicalize ~seed:(canon_seed ca cb) ~anonymous ra
  and rb = Reduce.canonicalize ~seed:(canon_seed cb ca) ~anonymous rb in
  let a = side_of ra and b = side_of rb in
  let seeds = seed_table a b ~vdd ~gnd in
  init_colors `A seeds a;
  init_colors `B seeds b;
  let rounds = ref 0 in
  let cap =
    Array.length a.nets + Array.length a.c.Circuit.devices
    + Array.length b.nets
    + Array.length b.c.Circuit.devices + 2
  in
  let stable = ref false in
  while not !stable do
    Cancel.check cancel;
    incr rounds;
    let before =
      distinct a.net_color + distinct a.dev_color + distinct b.net_color
      + distinct b.dev_color
    in
    round a;
    round b;
    let after =
      distinct a.net_color + distinct a.dev_color + distinct b.net_color
      + distinct b.dev_color
    in
    if after <= before || !rounds > cap then stable := true
  done;
  Trace.count Trace.Counter.Lvs_rounds !rounds;
  let stats matched =
    {
      layout_devices = Array.length a.c.Circuit.devices;
      ref_devices = Array.length b.c.Circuit.devices;
      layout_nets = Array.length a.nets;
      ref_nets = Array.length b.nets;
      reductions = ra.Reduce.merged + rb.Reduce.merged;
      rounds = !rounds;
      matched;
    }
  in
  let size_ok la lb =
    lb = 0 || la = lb
    || float_of_int (abs (la - lb)) <= tolerance *. float_of_int (max la lb)
  in
  let net_colors side =
    Array.to_list (Array.mapi (fun i n -> (n, side.net_color.(i))) side.nets)
  in
  let result =
  if
    multiset a.dev_color = multiset b.dev_color
    && multiset a.net_color = multiset b.net_color
  then begin
    (* Structurally equivalent.  Verify the induced mapping exactly when
       refinement individuated everything, then audit multiplicities and
       sizes class by class (class memberships correspond because the
       color multisets agree). *)
    let matched = Array.length a.c.Circuit.devices in
    Trace.count Trace.Counter.Lvs_matches matched;
    let singleton colors =
      let tbl = Hashtbl.create 64 in
      Array.iter
        (fun c ->
          Hashtbl.replace tbl c
            (1 + try Hashtbl.find tbl c with Not_found -> 0))
        colors;
      Hashtbl.fold (fun _ n acc -> acc && n = 1) tbl true
    in
    let verify_failed =
      if
        singleton a.net_color && singleton a.dev_color
        && singleton b.net_color && singleton b.dev_color
      then begin
        let index_by colors =
          let tbl = Hashtbl.create 64 in
          Array.iteri (fun i c -> Hashtbl.replace tbl c i) colors;
          tbl
        in
        let net_of_b = index_by b.net_color
        and dev_of_b = index_by b.dev_color in
        let ok = ref true in
        Array.iteri
          (fun i (d : Circuit.device) ->
            match Hashtbl.find_opt dev_of_b a.dev_color.(i) with
            | None -> ok := false
            | Some j ->
                let d' = b.c.Circuit.devices.(j) in
                let net_maps na nb =
                  match
                    ( Hashtbl.find_opt net_of_b
                        a.net_color.(Hashtbl.find a.net_pos na),
                      Hashtbl.find_opt b.net_pos nb )
                  with
                  | Some x, Some y -> x = y
                  | _ -> false
                in
                if
                  not
                    (net_maps d.gate d'.gate
                    && (net_maps d.source d'.source
                        && net_maps d.drain d'.drain
                       || net_maps d.source d'.drain
                          && net_maps d.drain d'.source))
                then ok := false)
          a.c.Circuit.devices;
        not !ok
      end
      else false
    in
    if verify_failed then
      {
        outcome = Inconclusive;
        findings =
          [
            {
              code = "lvs-inconclusive";
              severity = Diag.Warning;
              message =
                "color multisets agree but the induced device mapping does \
                 not verify (likely hash collision); treat as inconclusive";
              anchor = "verify";
              layout_net = None;
            };
          ];
        stats = stats matched;
      }
    else begin
      (* class-by-class multiplicity and size audit *)
      let classes = Hashtbl.create 64 in
      let add tbl_key i side_sel =
        let la, lb =
          match Hashtbl.find_opt classes tbl_key with
          | Some p -> p
          | None -> ([], [])
        in
        Hashtbl.replace classes tbl_key
          (match side_sel with
          | `A -> (i :: la, lb)
          | `B -> (la, i :: lb))
      in
      Array.iteri (fun i c -> add c i `A) a.dev_color;
      Array.iteri (fun i c -> add c i `B) b.dev_color;
      let findings = ref [] in
      let colors =
        Hashtbl.fold (fun c _ acc -> c :: acc) classes []
        |> List.sort Int.compare
      in
      List.iter
        (fun color ->
          let la, lb = Hashtbl.find classes color in
          let key side i =
            let d = side.c.Circuit.devices.(i) in
            (d.Circuit.length, d.Circuit.width, side.mult.(i), i)
          in
          let la =
            List.sort (fun x y -> compare (key a x) (key a y)) la
          and lb = List.sort (fun x y -> compare (key b x) (key b y)) lb in
          List.iter2
            (fun i j ->
              let da = a.c.Circuit.devices.(i)
              and db = b.c.Circuit.devices.(j) in
              if a.mult.(i) <> b.mult.(j) then
                findings :=
                  {
                    code = "lvs-dup-device";
                    severity = Diag.Error;
                    message =
                      Printf.sprintf
                        "%s transistor at %d,%d: %d parallel copies in \
                         layout vs %d in reference"
                        (tname da.Circuit.dtype) da.Circuit.location.Point.x
                        da.Circuit.location.Point.y a.mult.(i) b.mult.(j);
                    anchor = dev_site a i;
                    layout_net = Some da.Circuit.gate;
                  }
                  :: !findings
              else if
                with_sizes
                && not
                     (size_ok da.Circuit.length db.Circuit.length
                     && size_ok da.Circuit.width db.Circuit.width)
              then
                findings :=
                  {
                    code = "lvs-size-mismatch";
                    severity = Diag.Error;
                    message =
                      Printf.sprintf
                        "%s transistor at %d,%d: L/W %s/%su (layout) vs \
                         %s/%su (reference)"
                        (tname da.Circuit.dtype) da.Circuit.location.Point.x
                        da.Circuit.location.Point.y
                        (um da.Circuit.length) (um da.Circuit.width)
                        (um db.Circuit.length) (um db.Circuit.width);
                    anchor = dev_site a i;
                    layout_net = Some da.Circuit.gate;
                  }
                  :: !findings)
            la lb)
        colors;
      let findings = cap_findings max_findings (List.rev !findings) in
      {
        outcome = (if findings = [] then Clean else Mismatch);
        findings;
        stats = stats matched;
      }
    end
  end
  else begin
    (* Structural mismatch: localize.  Pair devices greedily by color
       history (finest refinement first), then read extra/missing devices
       off the unpaired remainder and split/merged nets off the terminal
       correspondence votes of the paired devices. *)
    let findings = ref [] in
    let push f = findings := f :: !findings in
    let nd_a = Array.length a.c.Circuit.devices
    and nd_b = Array.length b.c.Circuit.devices in
    if nd_a <> nd_b then
      push
        {
          code = "lvs-device-count";
          severity = Diag.Error;
          message =
            Printf.sprintf
              "device counts differ after reduction: %d (layout) vs %d \
               (reference)"
              nd_a nd_b;
          anchor = "device-count";
          layout_net = None;
        };
    if Array.length a.nets <> Array.length b.nets then
      push
        {
          code = "lvs-net-count";
          severity = Diag.Error;
          message =
            Printf.sprintf
              "connected net counts differ: %d (layout) vs %d (reference)"
              (Array.length a.nets) (Array.length b.nets);
          anchor = "net-count";
          layout_net = None;
        };
    let hist_a = Array.of_list a.dev_hist (* newest first *)
    and hist_b = Array.of_list b.dev_hist in
    let n_hist = min (Array.length hist_a) (Array.length hist_b) in
    let paired_a = Array.make nd_a false
    and paired_b = Array.make nd_b false in
    let pairs = ref [] in
    (* Deterministic member order inside a bucket: remaining history
       sequence, then sizes, then index — the same comparator on both
       sides so the pairing is as symmetric as the inputs allow. *)
    let member_key side hist r i =
      let tail = ref [] in
      for k = min (Array.length hist - 1) (r + 4) downto r do
        tail := hist.(k).(i) :: !tail
      done;
      let d = side.c.Circuit.devices.(i) in
      (!tail, d.Circuit.length, d.Circuit.width, side.mult.(i), i)
    in
    for r = 0 to n_hist - 1 do
      let buckets = Hashtbl.create 64 in
      let add color v =
        Hashtbl.replace buckets color
          (v
          ::
          (match Hashtbl.find_opt buckets color with
          | Some l -> l
          | None -> []))
      in
      for i = 0 to nd_a - 1 do
        if not paired_a.(i) then add hist_a.(r).(i) (`A i)
      done;
      for j = 0 to nd_b - 1 do
        if not paired_b.(j) then add hist_b.(r).(j) (`B j)
      done;
      let colors =
        Hashtbl.fold (fun c _ acc -> c :: acc) buckets []
        |> List.sort Int.compare
      in
      List.iter
        (fun color ->
          let members = Hashtbl.find buckets color in
          let la =
            List.filter_map (function `A i -> Some i | `B _ -> None) members
            |> List.sort (fun x y ->
                   compare (member_key a hist_a r x) (member_key a hist_a r y))
          and lb =
            List.filter_map (function `B j -> Some j | `A _ -> None) members
            |> List.sort (fun x y ->
                   compare (member_key b hist_b r x) (member_key b hist_b r y))
          in
          let rec zip la lb =
            match (la, lb) with
            | i :: la', j :: lb' ->
                paired_a.(i) <- true;
                paired_b.(j) <- true;
                pairs := (i, j) :: !pairs;
                zip la' lb'
            | _ -> ()
          in
          zip la lb)
        colors
    done;
    let matched = List.length !pairs in
    Trace.count Trace.Counter.Lvs_matches matched;
    (* extra / missing devices from the unpaired remainder *)
    let extras = ref [] and missings = ref [] in
    for i = 0 to nd_a - 1 do
      if not paired_a.(i) then
        let d = a.c.Circuit.devices.(i) in
        extras :=
          {
            code = "lvs-extra-device";
            severity = Diag.Error;
            message =
              Printf.sprintf
                "extra %s transistor at %d,%d in layout (gate %s, channel \
                 %s-%s): no reference counterpart"
                (tname d.Circuit.dtype) d.Circuit.location.Point.x
                d.Circuit.location.Point.y
                (net_name a d.Circuit.gate)
                (net_name a d.Circuit.source)
                (net_name a d.Circuit.drain);
            anchor = dev_site a i;
            layout_net = Some d.Circuit.gate;
          }
          :: !extras
    done;
    for j = 0 to nd_b - 1 do
      if not paired_b.(j) then
        let d = b.c.Circuit.devices.(j) in
        let sd =
          List.sort String.compare
            [ net_name b d.Circuit.source; net_name b d.Circuit.drain ]
        in
        missings :=
          {
            code = "lvs-missing-device";
            severity = Diag.Error;
            message =
              Printf.sprintf
                "reference %s transistor (gate %s, channel %s-%s) has no \
                 layout counterpart"
                (tname d.Circuit.dtype)
                (net_name b d.Circuit.gate)
                (List.nth sd 0) (List.nth sd 1);
            anchor =
              Printf.sprintf "%s:%s:%s" (tname d.Circuit.dtype)
                (net_name b d.Circuit.gate)
                (String.concat ":" sd);
            layout_net = None;
          }
          :: !missings
    done;
    List.iter push (cap_findings max_findings (List.rev !extras));
    List.iter push (cap_findings max_findings (List.rev !missings));
    (* split / merged nets from terminal-correspondence votes *)
    let votes_rl = Hashtbl.create 64 (* ref net -> layout net -> votes *)
    and votes_lr = Hashtbl.create 64 in
    let vote tbl k v =
      let inner =
        match Hashtbl.find_opt tbl k with
        | Some t -> t
        | None ->
            let t = Hashtbl.create 4 in
            Hashtbl.replace tbl k t;
            t
      in
      Hashtbl.replace inner v
        (1 + match Hashtbl.find_opt inner v with Some n -> n | None -> 0)
    in
    let cast ln rn =
      vote votes_rl rn ln;
      vote votes_lr ln rn
    in
    List.iter
      (fun (i, j) ->
        let da = a.c.Circuit.devices.(i) and db = b.c.Circuit.devices.(j) in
        cast da.Circuit.gate db.Circuit.gate;
        let col side n = side.net_color.(Hashtbl.find side.net_pos n) in
        let cs = col a da.Circuit.source and cd = col a da.Circuit.drain in
        let cs' = col b db.Circuit.source and cd' = col b db.Circuit.drain in
        let aligned =
          cs = cs' || cd = cd' || not (cs = cd' || cd = cs')
        in
        if aligned then begin
          cast da.Circuit.source db.Circuit.source;
          cast da.Circuit.drain db.Circuit.drain
        end
        else begin
          cast da.Circuit.source db.Circuit.drain;
          cast da.Circuit.drain db.Circuit.source
        end)
      !pairs;
    let partner_sets tbl =
      Hashtbl.fold
        (fun k inner acc ->
          let ps = Hashtbl.fold (fun v _ l -> v :: l) inner [] in
          (k, List.sort Int.compare ps) :: acc)
        tbl []
      |> List.sort compare
    in
    let splits = ref [] and merges = ref [] in
    List.iter
      (fun (rn, partners) ->
        if List.length partners >= 2 then
          let names = List.map (net_name a) partners in
          splits :=
            {
              code = "lvs-net-split";
              severity = Diag.Error;
              message =
                Printf.sprintf
                  "reference net %s corresponds to %d separate layout nets \
                   (%s)"
                  (net_name b rn) (List.length partners)
                  (String.concat ", " names);
              anchor =
                Printf.sprintf "%s:%s" (net_name b rn)
                  (String.concat "," (List.sort String.compare names));
              layout_net = Some (List.hd partners);
            }
            :: !splits)
      (partner_sets votes_rl);
    List.iter
      (fun (ln, partners) ->
        if List.length partners >= 2 then
          let names =
            List.sort String.compare (List.map (net_name b) partners)
          in
          merges :=
            {
              code = "lvs-net-merge";
              severity = Diag.Error;
              message =
                Printf.sprintf
                  "layout net %s matches %d distinct reference nets (%s)"
                  (net_name a ln) (List.length partners)
                  (String.concat ", " names);
              anchor =
                Printf.sprintf "%s:%s" (net_name a ln)
                  (String.concat "," names);
              layout_net = Some ln;
            }
            :: !merges)
      (partner_sets votes_lr);
    List.iter push (cap_findings max_findings (List.rev !splits));
    List.iter push (cap_findings max_findings (List.rev !merges));
    if !findings = [] then
      push
        {
          code = "lvs-topology";
          severity = Diag.Error;
          message =
            "connectivity differs: equal device and net counts, but the \
             refined color partitions do not correspond";
          anchor = "topology";
          layout_net = None;
        };
    { outcome = Mismatch; findings = List.rev !findings; stats = stats matched }
  end
  in
  (result, net_colors a, net_colors b)

let run ?cancel ?with_sizes ?tolerance ?vdd ?gnd ?max_findings ~layout
    ~reference () =
  let r, _, _ =
    run_full ?cancel ?with_sizes ?tolerance ?vdd ?gnd ?max_findings ~layout
      ~reference ()
  in
  r
