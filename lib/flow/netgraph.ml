open Ace_tech
open Ace_netlist

type 'a lattice = {
  bottom : 'a;
  join : 'a -> 'a -> 'a;
  equal : 'a -> 'a -> bool;
  enc : 'a -> int;
}

type 'a spec = {
  lat : 'a lattice;
  seed : 'a array;
  clamp : bool array;
  attr : int array;
  flow :
    Nmos.device_type ->
    gate:'a ->
    gattr:int ->
    src:'a ->
    sattr:int ->
    dattr:int ->
    'a;
}

(* inc.(n): one entry per channel terminal touching n, as
   (far-side net, gate net, device type). *)
let incidence devices net_count =
  let inc = Array.make net_count [] in
  Array.iter
    (fun (d : Circuit.device) ->
      if d.source >= 0 && d.source < net_count && d.drain >= 0
         && d.drain < net_count && d.gate >= 0 && d.gate < net_count
      then begin
        inc.(d.drain) <- (d.source, d.gate, d.dtype) :: inc.(d.drain);
        inc.(d.source) <- (d.drain, d.gate, d.dtype) :: inc.(d.source)
      end)
    devices;
  inc

let inflow_at (spec : 'a spec) inc env n =
  List.fold_left
    (fun acc (other, g, dtype) ->
      spec.lat.join acc
        (spec.flow dtype ~gate:(env g) ~gattr:spec.attr.(g) ~src:(env other)
           ~sattr:spec.attr.(other) ~dattr:spec.attr.(n)))
    spec.lat.bottom inc.(n)

let inflows (spec : 'a spec) devices ~net_count ~values =
  let inc = incidence devices net_count in
  Array.init net_count (inflow_at spec inc (fun v -> values.(v)))

let solve (type a) ?cancel ?widen_after (spec : a spec) devices ~net_count =
  let module L = struct
    type t = a

    let bottom = spec.lat.bottom
    let join = spec.lat.join
    let equal = spec.lat.equal

    (* All lattices used over netlists here are finite; join widens. *)
    let widen = spec.lat.join
  end in
  let module S = Solver.Make (L) in
  let inc = incidence devices net_count in
  let inflow_of env n = inflow_at spec inc env n in
  let system =
    {
      S.size = net_count;
      deps =
        (fun n ->
          if spec.clamp.(n) then []
          else
            List.concat_map (fun (other, g, _) -> [ other; g ]) inc.(n));
      transfer =
        (fun env n ->
          if spec.clamp.(n) then spec.seed.(n)
          else spec.lat.join spec.seed.(n) (inflow_of env n));
    }
  in
  let values, stats = S.solve ?cancel ?widen_after system in
  let inflows = Array.init net_count (inflow_of (fun v -> values.(v))) in
  (values, inflows, stats)
