open Ace_netlist

(** Reachability analyses over channel adjacency, expressed as dataflow
    problems on {!Solver}.  These back the connectivity-flavoured lint
    rules (undriven, stuck, sneak-path, pass-depth). *)

(** [reachable ?stop circuit seeds] marks every net reachable from [seeds]
    through device channels.  Nets in [stop] can be reached (marked) but
    are never expanded through — a reached stop net blocks propagation. *)
val reachable : ?stop:int list -> Circuit.t -> int list -> bool array

(** [distances circuit ~seeds ~use_device] is the channel-hop distance
    from the seed set, walking only devices for which
    [use_device index device] holds.  Unreachable nets get [max_int]. *)
val distances :
  Circuit.t ->
  seeds:int list ->
  use_device:(int -> Circuit.device -> bool) ->
  int array
