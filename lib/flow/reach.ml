open Ace_netlist

let channel_adjacency ?(use_device = fun _ _ -> true) (c : Circuit.t) =
  let n = Circuit.net_count c in
  let adj = Array.make n [] in
  Array.iteri
    (fun i (d : Circuit.device) ->
      if use_device i d && d.source >= 0 && d.source < n && d.drain >= 0
         && d.drain < n
      then begin
        adj.(d.source) <- d.drain :: adj.(d.source);
        adj.(d.drain) <- d.source :: adj.(d.drain)
      end)
    c.devices;
  adj

module Bool_lattice = struct
  type t = bool

  let bottom = false
  let join = ( || )
  let equal = Bool.equal
  let widen = ( || )
end

module B = Solver.Make (Bool_lattice)

let reachable ?(stop = []) (c : Circuit.t) seeds =
  let n = Circuit.net_count c in
  let is_seed = Array.make n false in
  List.iter (fun s -> if s >= 0 && s < n then is_seed.(s) <- true) seeds;
  let is_stop = Array.make n false in
  List.iter (fun s -> if s >= 0 && s < n then is_stop.(s) <- true) stop;
  let adj = channel_adjacency c in
  let values, _ =
    B.solve
      {
        B.size = n;
        deps = (fun i -> adj.(i));
        transfer =
          (fun env i ->
            is_seed.(i)
            || List.exists (fun j -> (not is_stop.(j)) && env j) adj.(i));
      }
  in
  values

module Dist_lattice = struct
  type t = int

  let bottom = max_int
  let join = min
  let equal = Int.equal
  let widen = min
end

module D = Solver.Make (Dist_lattice)

let distances (c : Circuit.t) ~seeds ~use_device =
  let n = Circuit.net_count c in
  let is_seed = Array.make n false in
  List.iter (fun s -> if s >= 0 && s < n then is_seed.(s) <- true) seeds;
  let adj = channel_adjacency ~use_device c in
  let step d = if d = max_int then max_int else d + 1 in
  let values, _ =
    (* Distance relaxation can take O(size^2) updates inside one component;
       widening is min (= join), so raising the bound only avoids a spurious
       non-convergence report. *)
    D.solve ~widen_after:(n + 2)
      {
        D.size = n;
        deps = (fun i -> adj.(i));
        transfer =
          (fun env i ->
            if is_seed.(i) then 0
            else List.fold_left (fun acc j -> min acc (step (env j))) max_int
                   adj.(i));
      }
  in
  values
