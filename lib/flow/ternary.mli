open Ace_tech
open Ace_netlist

(** Ternary switch-level abstract interpretation.

    Each net is assigned the {e set} of drive conditions it can exhibit
    across all input assignments, encoded as a bit mask over
    strength × {0, 1, X} plus a floating marker:

    - {!s0}/{!s1}/{!sx}: strong (rail- or input-driven) low/high/unknown;
    - {!w0}/{!w1}/{!wx}: the same weakened through a depletion load;
    - {!float_bit}: the net is not always driven (charge storage).

    Primary inputs are treated as top ({!s0} ∨ {!s1}); the analysis is a
    may-analysis, so every concrete steady state is covered by the mask
    (possible contention is reported, proven-impossible behaviour such as
    a gate that can never go high is reported as dead logic). *)

val s0 : int
val s1 : int
val sx : int
val w0 : int
val w1 : int
val wx : int
val float_bit : int

val may0 : int -> bool
val may1 : int -> bool
val mayx : int -> bool

(** Render a mask, e.g. ["{S1,W0,FLOAT}"]. *)
val mask_to_string : int -> string

(** Channel transfer: what a device passes from [src] towards the other
    terminal given the abstract [gate] value.  Depletion always conducts
    and weakens; enhancement conducts when the gate may be high, and
    contributes an X-ified copy when the gate may be X. *)
val device_flow : Nmos.device_type -> gate:int -> src:int -> int

(** The mask lattice (join = set union). *)
val mask_lattice : int Netgraph.lattice

(** Heuristic primary inputs: named nets that gate at least one device,
    never appear on a channel, and are not a rail — the same exemption
    the undriven lint rule applies. *)
val default_inputs : Circuit.t -> vdd:int -> gnd:int -> bool array

(** Phase A: nets that are {e always} driven (conservatively: reachable
    from a rail or input through depletion channels and enhancement
    channels gated by VDD).  The complement is the charge-storage set. *)
val always_driven :
  ?cancel:Ace_core.Cancel.t ->
  Circuit.t ->
  vdd:int ->
  gnd:int ->
  inputs:bool array ->
  bool array * Solver.stats

(** Phase-B equation system (seeds, clamps, channel transfer) for a
    circuit whose floating set is already known.  Exposed so the
    hierarchical summariser can solve the same system piecewise. *)
val signal_spec :
  Circuit.t ->
  vdd:int ->
  gnd:int ->
  inputs:bool array ->
  floating:bool array ->
  int Netgraph.spec

type dead = Never_high | Never_low

type verdict = {
  values : int array;  (** per-net abstract value *)
  inflows : int array;  (** per-net join of channel inflows *)
  floating : bool array;  (** phase-A complement: charge-storage nets *)
  inputs : bool array;  (** the input set the analysis assumed *)
  vdd : int;
  gnd : int;
  contention : int list;
      (** nets where a strong 0 and a strong 1 can fight *)
  bridges : int list;
      (** device indices forming a direct VDD–GND enhancement channel *)
  dead : (int * dead) list;  (** gate nets with a provably constant level *)
  float_nets : int list;  (** driven-sometimes nets that can float *)
  share : int list;
      (** devices that can connect two floating (charge-sharing) nets *)
  x_devices : int list;  (** devices whose gate can be X *)
  x_nets : int list;  (** nets that can carry an X level *)
  stats : Solver.stats;
}

(** Derive the verdict lists from solved values/inflows.  Shared between
    the flat analysis and the hierarchical summariser so both report
    identically. *)
val make_verdict :
  Circuit.t ->
  vdd:int ->
  gnd:int ->
  inputs:bool array ->
  floating:bool array ->
  values:int array ->
  inflows:int array ->
  stats:Solver.stats ->
  verdict

(** Flat analysis: phase A then phase B on the whole circuit.  Total for
    any well-formed circuit, including [vdd = gnd] (the shared net is
    then clamped to [s0 ∨ s1]).  [cancel] is polled inside both solves. *)
val analyze :
  ?cancel:Ace_core.Cancel.t ->
  ?inputs:bool array ->
  ?widen_after:int ->
  Circuit.t ->
  vdd:int ->
  gnd:int ->
  verdict

(** [x_trace v c net] walks inflows backwards from [net] to a floating
    X source and returns the chain source-first ([[net]] when the net is
    its own source or no source is found).  Deterministic. *)
val x_trace : verdict -> Circuit.t -> int -> int list
