open Ace_tech
open Ace_netlist

(** Dataflow over the net/device bipartite graph.

    A netlist analysis assigns each net a lattice value; a device's channel
    propagates a function of the source-side value (gated by the gate net's
    value) into the drain-side net, symmetrically in both directions.  This
    module builds the corresponding equation system — net value = seed
    joined with all channel inflows, clamped nets pinned to their seed —
    and hands it to {!Solver}. *)

type 'a lattice = {
  bottom : 'a;
  join : 'a -> 'a -> 'a;
  equal : 'a -> 'a -> bool;
  enc : 'a -> int;  (** injective encoding, for memo keys *)
}

type 'a spec = {
  lat : 'a lattice;
  seed : 'a array;  (** per-net initial contribution *)
  clamp : bool array;  (** clamped nets keep exactly their seed *)
  attr : int array;  (** per-net static attribute fed to [flow] *)
  flow :
    Nmos.device_type ->
    gate:'a ->
    gattr:int ->
    src:'a ->
    sattr:int ->
    dattr:int ->
    'a;
      (** value a channel contributes to the net on the far side *)
}

(** [solve spec devices ~net_count] returns the least-fixpoint net values,
    the per-net join of channel inflows recomputed from the final values
    (clamped nets included — this is what flows {e into} a net regardless
    of what the net holds), and solver statistics.  All arrays in [spec]
    must have length [net_count]. *)
val solve :
  ?cancel:Ace_core.Cancel.t ->
  ?widen_after:int ->
  'a spec ->
  Circuit.device array ->
  net_count:int ->
  'a array * 'a array * Solver.stats

(** Recompute per-net channel inflows from externally obtained values
    (used by the hierarchical summariser after its piecewise solve). *)
val inflows :
  'a spec ->
  Circuit.device array ->
  net_count:int ->
  values:'a array ->
  'a array
