open Ace_tech
open Ace_netlist

let s0 = 1
let s1 = 2
let sx = 4
let w0 = 8
let w1 = 16
let wx = 32
let float_bit = 64
let strong = s0 lor s1 lor sx
let weak = w0 lor w1 lor wx
let may0 m = m land (s0 lor w0) <> 0
let may1 m = m land (s1 lor w1) <> 0
let mayx m = m land (sx lor wx lor float_bit) <> 0

let mask_to_string m =
  let bits =
    [
      (s0, "S0"); (s1, "S1"); (sx, "SX"); (w0, "W0"); (w1, "W1"); (wx, "WX");
      (float_bit, "FLOAT");
    ]
  in
  let parts =
    List.filter_map (fun (b, n) -> if m land b <> 0 then Some n else None) bits
  in
  "{" ^ String.concat "," parts ^ "}"

(* Demote strong drive to weak: passing through a depletion load. *)
let weaken m = ((m land strong) lsl 3) lor (m land weak)

(* Everything becomes unknown at its strength: passing through a channel
   whose gate may be X (or may be floating, hence at an unknown level). *)
let xify m =
  (if m land strong <> 0 then sx else 0) lor (if m land weak <> 0 then wx else 0)

let device_flow dtype ~gate ~src =
  let c = src land (strong lor weak) in
  match dtype with
  | Nmos.Depletion -> weaken c
  | Nmos.Enhancement ->
      (if may1 gate then c else 0) lor (if mayx gate then xify c else 0)

let mask_lattice =
  {
    Netgraph.bottom = 0;
    join = ( lor );
    equal = Int.equal;
    enc = Fun.id;
  }

let bool_lattice =
  {
    Netgraph.bottom = false;
    join = ( || );
    equal = Bool.equal;
    enc = Bool.to_int;
  }

let default_inputs (c : Circuit.t) ~vdd ~gnd =
  let n = Circuit.net_count c in
  let gates = Array.make n false in
  let channels = Array.make n false in
  Array.iter
    (fun (d : Circuit.device) ->
      if d.gate >= 0 && d.gate < n then gates.(d.gate) <- true;
      if d.source >= 0 && d.source < n then channels.(d.source) <- true;
      if d.drain >= 0 && d.drain < n then channels.(d.drain) <- true)
    c.devices;
  Array.init n (fun i ->
      gates.(i) && (not channels.(i)) && i <> vdd && i <> gnd
      && c.nets.(i).Circuit.names <> [])

let always_driven ?cancel (c : Circuit.t) ~vdd ~gnd ~inputs =
  let n = Circuit.net_count c in
  let seed = Array.make n false in
  let clamp = Array.make n false in
  let attr = Array.make n 0 in
  Array.iteri
    (fun i inp ->
      if inp then begin
        seed.(i) <- true;
        clamp.(i) <- true
      end)
    inputs;
  List.iter
    (fun r ->
      if r >= 0 && r < n then begin
        seed.(r) <- true;
        clamp.(r) <- true
      end)
    [ vdd; gnd ];
  if vdd >= 0 && vdd < n then attr.(vdd) <- 1;
  let spec =
    {
      Netgraph.lat = bool_lattice;
      seed;
      clamp;
      attr;
      flow =
        (fun dtype ~gate:_ ~gattr ~src ~sattr:_ ~dattr:_ ->
          src && (dtype = Nmos.Depletion || gattr = 1));
    }
  in
  let driven, _, stats = Netgraph.solve ?cancel spec c.devices ~net_count:n in
  (driven, stats)

let signal_spec (c : Circuit.t) ~vdd ~gnd ~inputs ~floating =
  let n = Circuit.net_count c in
  let seed = Array.init n (fun i -> if floating.(i) then float_bit else 0) in
  let clamp = Array.make n false in
  Array.iteri
    (fun i inp ->
      if inp then begin
        seed.(i) <- s0 lor s1;
        clamp.(i) <- true
      end)
    inputs;
  if vdd >= 0 && vdd < n then begin
    seed.(vdd) <- s1;
    clamp.(vdd) <- true
  end;
  if gnd >= 0 && gnd < n then begin
    seed.(gnd) <- (if gnd = vdd then s0 lor s1 else s0);
    clamp.(gnd) <- true
  end;
  {
    Netgraph.lat = mask_lattice;
    seed;
    clamp;
    attr = Array.make n 0;
    flow =
      (fun dtype ~gate ~gattr:_ ~src ~sattr:_ ~dattr:_ ->
        device_flow dtype ~gate ~src);
  }

type dead = Never_high | Never_low

type verdict = {
  values : int array;
  inflows : int array;
  floating : bool array;
  inputs : bool array;
  vdd : int;
  gnd : int;
  contention : int list;
  bridges : int list;
  dead : (int * dead) list;
  float_nets : int list;
  share : int list;
  x_devices : int list;
  x_nets : int list;
  stats : Solver.stats;
}

let make_verdict (c : Circuit.t) ~vdd ~gnd ~inputs ~floating ~values ~inflows
    ~stats =
  let n = Circuit.net_count c in
  let spec = signal_spec c ~vdd ~gnd ~inputs ~floating in
  let clamp = spec.Netgraph.clamp in
  let gates = Array.make n false in
  Array.iter
    (fun (d : Circuit.device) ->
      if d.gate >= 0 && d.gate < n then gates.(d.gate) <- true)
    c.devices;
  let in_range i = i >= 0 && i < n in
  let contention = ref [] in
  for i = n - 1 downto 0 do
    let full = values.(i) lor inflows.(i) in
    let inf = inflows.(i) in
    if (full land s1 <> 0 && inf land s0 <> 0)
       || (full land s0 <> 0 && inf land s1 <> 0)
    then contention := i :: !contention
  done;
  let bridges = ref [] in
  let share = ref [] in
  let x_devices = ref [] in
  for di = Array.length c.devices - 1 downto 0 do
    let d = c.devices.(di) in
    if d.dtype = Nmos.Enhancement && d.source <> d.drain
       && in_range d.source && in_range d.drain && in_range d.gate
    then begin
      let gv = values.(d.gate) in
      let conducts = may1 gv || mayx gv in
      if conducts
         && ((d.source = vdd && d.drain = gnd)
            || (d.source = gnd && d.drain = vdd))
         && vdd <> gnd
      then bridges := di :: !bridges;
      if conducts
         && values.(d.source) land float_bit <> 0
         && values.(d.drain) land float_bit <> 0
      then share := di :: !share;
      if mayx gv then x_devices := di :: !x_devices
    end
  done;
  let dead = ref [] in
  for i = n - 1 downto 0 do
    let v = values.(i) in
    if gates.(i) && (not clamp.(i)) && i <> vdd && i <> gnd && v <> 0
       && v land float_bit = 0
       && v land (sx lor wx) = 0
    then
      match (may1 v, may0 v) with
      | true, false -> dead := (i, Never_low) :: !dead
      | false, true -> dead := (i, Never_high) :: !dead
      | _ -> ()
  done;
  let float_nets = ref [] in
  let x_nets = ref [] in
  for i = n - 1 downto 0 do
    let v = values.(i) in
    if (not clamp.(i)) && v land float_bit <> 0 && v <> float_bit then
      float_nets := i :: !float_nets;
    if v land (sx lor wx) <> 0 then x_nets := i :: !x_nets
  done;
  {
    values;
    inflows;
    floating;
    inputs;
    vdd;
    gnd;
    contention = !contention;
    bridges = !bridges;
    dead = !dead;
    float_nets = !float_nets;
    share = !share;
    x_devices = !x_devices;
    x_nets = !x_nets;
    stats;
  }

let merge_stats (a : Solver.stats) (b : Solver.stats) =
  {
    Solver.sccs = b.Solver.sccs;
    max_scc = max a.Solver.max_scc b.Solver.max_scc;
    iterations = a.Solver.iterations + b.Solver.iterations;
    widenings = a.Solver.widenings + b.Solver.widenings;
    converged = a.Solver.converged && b.Solver.converged;
  }

let analyze ?cancel ?inputs ?widen_after (c : Circuit.t) ~vdd ~gnd =
  let n = Circuit.net_count c in
  let inputs =
    match inputs with Some a -> a | None -> default_inputs c ~vdd ~gnd
  in
  let driven, stats_a = always_driven ?cancel c ~vdd ~gnd ~inputs in
  let floating = Array.map not driven in
  let spec = signal_spec c ~vdd ~gnd ~inputs ~floating in
  let values, inflows, stats_b =
    Netgraph.solve ?cancel ?widen_after spec c.devices ~net_count:n
  in
  make_verdict c ~vdd ~gnd ~inputs ~floating ~values ~inflows
    ~stats:(merge_stats stats_a stats_b)

let x_trace v (c : Circuit.t) net =
  let n = Circuit.net_count c in
  if net < 0 || net >= n then [ net ]
  else if v.values.(net) land float_bit <> 0 then [ net ]
  else begin
    (* Backward BFS along channels that can carry X towards [net]; stop at
       the first net that can float (the X source).  Deterministic: devices
       scanned in index order, queue is FIFO. *)
    let adj = Array.make n [] in
    for di = Array.length c.devices - 1 downto 0 do
      let d = c.devices.(di) in
      if d.source >= 0 && d.source < n && d.drain >= 0 && d.drain < n
         && d.gate >= 0 && d.gate < n
      then begin
        let gv = v.values.(d.gate) in
        let conducts =
          match d.dtype with
          | Nmos.Depletion -> true
          | Nmos.Enhancement -> may1 gv || mayx gv
        in
        if conducts then begin
          adj.(d.drain) <- d.source :: adj.(d.drain);
          adj.(d.source) <- d.drain :: adj.(d.source)
        end
      end
    done;
    let parent = Array.make n (-1) in
    let seen = Array.make n false in
    seen.(net) <- true;
    let q = Queue.create () in
    Queue.add net q;
    let source = ref None in
    while !source = None && not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun w ->
          if !source = None && (not seen.(w)) && mayx v.values.(w) then begin
            seen.(w) <- true;
            parent.(w) <- u;
            if v.values.(w) land float_bit <> 0 then source := Some w
            else Queue.add w q
          end)
        adj.(u)
    done;
    match !source with
    | None -> [ net ]
    | Some s ->
        let rec chain acc u = if u = net then net :: acc else
            chain (u :: acc) parent.(u)
        in
        List.rev (chain [] s)
  end
