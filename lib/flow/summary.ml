open Ace_netlist

type stats = { cells : int; instances : int; hits : int; misses : int }

let pp_stats ppf s =
  let total = s.hits + s.misses in
  Format.fprintf ppf "cells=%d instances=%d cache=%d/%d hits" s.cells
    s.instances s.hits total

type unit_info = {
  u_part : string;
  u_nets : int array;  (** local -> flat *)
  u_boundary : bool array;  (** bound or exported locals *)
  u_devices : Circuit.device array;  (** part devices over local indices *)
}

let inner_devices_of_part (p : Hier.part) =
  Array.of_list
    (List.map
       (fun (d : Hier.hdevice) ->
         {
           Circuit.dtype = d.dtype;
           gate = d.gate;
           source = d.source;
           drain = d.drain;
           length = d.length;
           width = d.width;
           location = d.location;
           geometry = [];
         })
       p.devices)

module Mask = struct
  type t = int

  let bottom = 0
  let join = ( lor )
  let equal = Int.equal
  let widen = ( lor )
end

module M = Solver.Make (Mask)

let run circuit acts (h : Hier.t) ~vdd ~gnd =
  let n = Circuit.net_count circuit in
  let inputs = Ternary.default_inputs circuit ~vdd ~gnd in
  (* Phase A (always-driven) is a cheap boolean pass; run it flat. *)
  let driven, stats_a = Ternary.always_driven circuit ~vdd ~gnd ~inputs in
  let floating = Array.map not driven in
  let spec = Ternary.signal_spec circuit ~vdd ~gnd ~inputs ~floating in
  let seed = spec.Netgraph.seed and clamp = spec.Netgraph.clamp in
  (* Select the summarisable units: leaf activations with devices and at
     least one internal local (neither bound nor exported — such locals
     map to flat nets no other activation touches). *)
  let part_cache = Hashtbl.create 16 in
  let part_devices name =
    match Hashtbl.find_opt part_cache name with
    | Some d -> d
    | None ->
        let d = inner_devices_of_part (Hier.part h name) in
        Hashtbl.add part_cache name d;
        d
  in
  let unit_act =
    List.filter
      (fun (a : Hier.activation) ->
        a.act_leaf && a.act_device_count > 0
        && Array.exists2 (fun b e -> not (b || e)) a.act_bound a.act_exports)
      acts
  in
  let units =
    Array.of_list
      (List.map
         (fun (a : Hier.activation) ->
           {
             u_part = a.act_part;
             u_nets = a.act_nets;
             u_boundary =
               Array.mapi (fun l b -> b || a.act_exports.(l)) a.act_bound;
             u_devices = part_devices a.act_part;
           })
         unit_act)
  in
  (* Ownership: internal flat nets are solved inside their unit. *)
  let owner = Array.make n (-1) in
  Array.iteri
    (fun ui u ->
      Array.iteri
        (fun l f -> if not u.u_boundary.(l) then owner.(f) <- ui)
        u.u_nets)
    units;
  (* Devices covered by a unit's inner system; the rest stay top-level. *)
  let is_unit_device = Array.make (Array.length circuit.Circuit.devices) false in
  List.iter
    (fun (a : Hier.activation) ->
      for d = a.act_device to a.act_device + a.act_device_count - 1 do
        is_unit_device.(d) <- true
      done)
    unit_act;
  let top_devices =
    let out = ref [] in
    Array.iteri
      (fun i d -> if not is_unit_device.(i) then out := d :: !out)
      circuit.Circuit.devices;
    Array.of_list (List.rev !out)
  in
  let top_inc = Array.make n [] in
  Array.iter
    (fun (d : Circuit.device) ->
      if d.source >= 0 && d.source < n && d.drain >= 0 && d.drain < n
         && d.gate >= 0 && d.gate < n
      then begin
        top_inc.(d.drain) <- (d.source, d.gate, d.dtype) :: top_inc.(d.drain);
        top_inc.(d.source) <- (d.drain, d.gate, d.dtype) :: top_inc.(d.source)
      end)
    top_devices;
  (* Units adjacent to each flat net through a boundary local. *)
  let adj_units = Array.make n [] in
  Array.iteri
    (fun ui u ->
      Array.iteri
        (fun l f ->
          if u.u_boundary.(l) && not (List.mem ui adj_units.(f)) then
            adj_units.(f) <- ui :: adj_units.(f))
        u.u_nets)
    units;
  (* Memoised leaf solve: boundary locals clamped to the environment,
     internal locals seeded/clamped as in the flat system. *)
  let memo = Hashtbl.create 64 in
  let hits = ref 0 and misses = ref 0 in
  let inner_iter = ref 0 and inner_widen = ref 0 in
  let inner_conv = ref true in
  let solve_unit u env =
    let nl = Array.length u.u_nets in
    let buf = Buffer.create (16 + (4 * nl)) in
    Buffer.add_string buf u.u_part;
    Buffer.add_char buf ':';
    for l = 0 to nl - 1 do
      let f = u.u_nets.(l) in
      if u.u_boundary.(l) then begin
        Buffer.add_char buf 'b';
        Buffer.add_string buf (string_of_int (env f))
      end
      else begin
        Buffer.add_char buf 'i';
        Buffer.add_string buf (string_of_int seed.(f));
        if clamp.(f) then Buffer.add_char buf 'c'
      end;
      Buffer.add_char buf ';'
    done;
    let key = Buffer.contents buf in
    match Hashtbl.find_opt memo key with
    | Some r ->
        incr hits;
        Ace_trace.Trace.incr Ace_trace.Trace.Counter.Summary_hits;
        r
    | None ->
        incr misses;
        Ace_trace.Trace.incr Ace_trace.Trace.Counter.Summary_misses;
        let lseed = Array.make nl 0 and lclamp = Array.make nl false in
        for l = 0 to nl - 1 do
          let f = u.u_nets.(l) in
          if u.u_boundary.(l) then begin
            lseed.(l) <- env f;
            lclamp.(l) <- true
          end
          else begin
            lseed.(l) <- seed.(f);
            lclamp.(l) <- clamp.(f)
          end
        done;
        let lspec =
          {
            Netgraph.lat = Ternary.mask_lattice;
            seed = lseed;
            clamp = lclamp;
            attr = Array.make nl 0;
            flow =
              (fun dtype ~gate ~gattr:_ ~src ~sattr:_ ~dattr:_ ->
                Ternary.device_flow dtype ~gate ~src);
          }
        in
        let lvalues, linflows, lstats =
          Netgraph.solve lspec u.u_devices ~net_count:nl
        in
        inner_iter := !inner_iter + lstats.Solver.iterations;
        inner_widen := !inner_widen + lstats.Solver.widenings;
        if not lstats.Solver.converged then inner_conv := false;
        let r = (lvalues, linflows) in
        Hashtbl.add memo key r;
        r
  in
  (* Outer system over the flat nets: block Gauss–Seidel.  A net owned by
     a unit is solved inside it; everything else joins its seed with
     top-level channel inflows and the units' boundary inflows. *)
  let system =
    {
      M.size = n;
      deps =
        (fun f ->
          if clamp.(f) || owner.(f) >= 0 then []
          else
            List.concat_map (fun (other, g, _) -> [ other; g ]) top_inc.(f)
            @ List.concat_map
                (fun ui ->
                  let u = units.(ui) in
                  let out = ref [] in
                  Array.iteri
                    (fun l bf -> if u.u_boundary.(l) then out := bf :: !out)
                    u.u_nets;
                  !out)
                adj_units.(f));
      transfer =
        (fun env f ->
          if clamp.(f) then seed.(f)
          else if owner.(f) >= 0 then 0
          else
            let acc = ref seed.(f) in
            List.iter
              (fun (other, g, dtype) ->
                acc :=
                  !acc
                  lor Ternary.device_flow dtype ~gate:(env g) ~src:(env other))
              top_inc.(f);
            List.iter
              (fun ui ->
                let u = units.(ui) in
                let _, linflows = solve_unit u env in
                Array.iteri
                  (fun l bf ->
                    if u.u_boundary.(l) && bf = f then
                      acc := !acc lor linflows.(l))
                  u.u_nets)
              adj_units.(f);
            !acc);
    }
  in
  let ovalues, ostats = M.solve system in
  (* Write unit-internal values back from the final summaries, then
     recompute inflows globally so the verdict matches the flat run. *)
  let values = Array.copy ovalues in
  let env f = ovalues.(f) in
  Array.iter
    (fun u ->
      let lvalues, _ = solve_unit u env in
      Array.iteri
        (fun l f -> if not u.u_boundary.(l) then values.(f) <- lvalues.(l))
        u.u_nets)
    units;
  let inflows =
    Netgraph.inflows spec circuit.Circuit.devices ~net_count:n ~values
  in
  let stats_b =
    {
      Solver.sccs = ostats.Solver.sccs;
      max_scc = ostats.Solver.max_scc;
      iterations = ostats.Solver.iterations + !inner_iter;
      widenings = ostats.Solver.widenings + !inner_widen;
      converged = ostats.Solver.converged && !inner_conv;
    }
  in
  let stats =
    {
      Solver.sccs = stats_b.Solver.sccs;
      max_scc = max stats_a.Solver.max_scc stats_b.Solver.max_scc;
      iterations = stats_a.Solver.iterations + stats_b.Solver.iterations;
      widenings = stats_a.Solver.widenings + stats_b.Solver.widenings;
      converged = stats_a.Solver.converged && stats_b.Solver.converged;
    }
  in
  let verdict =
    Ternary.make_verdict circuit ~vdd ~gnd ~inputs ~floating ~values ~inflows
      ~stats
  in
  let cell_names =
    Array.fold_left
      (fun acc u -> if List.mem u.u_part acc then acc else u.u_part :: acc)
      [] units
  in
  ( verdict,
    {
      cells = List.length cell_names;
      instances = Array.length units;
      hits = !hits;
      misses = !misses;
    } )

let analyze ?(vdd = "VDD") ?(gnd = "GND") (h : Hier.t) =
  let circuit, acts = Hier.flatten_ext h in
  match (Circuit.find_rail circuit vdd, Circuit.find_rail circuit gnd) with
  | Some v, Some g when v <> g ->
      let verdict, stats = run circuit acts h ~vdd:v ~gnd:g in
      (circuit, Some verdict, stats)
  | _ -> (circuit, None, { cells = 0; instances = 0; hits = 0; misses = 0 })
