module type LATTICE = sig
  type t

  val bottom : t
  val join : t -> t -> t
  val equal : t -> t -> bool
  val widen : t -> t -> t
end

type stats = {
  sccs : int;
  max_scc : int;
  iterations : int;
  widenings : int;
  converged : bool;
}

let pp_stats ppf s =
  Format.fprintf ppf "sccs=%d max-scc=%d iterations=%d widenings=%d%s" s.sccs
    s.max_scc s.iterations s.widenings
    (if s.converged then "" else " NOT-CONVERGED")

(* Tarjan over successor lists, iterative (netlists can be deep enough to
   blow the OCaml stack on a recursive DFS).  Components come out
   consumers-first; prepending builds the producers-first order. *)
let sccs_of size succ =
  let index = Array.make size (-1) in
  let lowlink = Array.make size 0 in
  let on_stack = Array.make size false in
  let stack = ref [] in
  let next_index = ref 0 in
  let components = ref [] in
  let visit root =
    if index.(root) < 0 then begin
      let call = ref [ (root, ref (succ root)) ] in
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      stack := root :: !stack;
      on_stack.(root) <- true;
      while !call <> [] do
        match !call with
        | [] -> ()
        | (v, rest) :: tail -> (
            match !rest with
            | w :: more ->
                rest := more;
                if index.(w) < 0 then begin
                  index.(w) <- !next_index;
                  lowlink.(w) <- !next_index;
                  incr next_index;
                  stack := w :: !stack;
                  on_stack.(w) <- true;
                  call := (w, ref (succ w)) :: !call
                end
                else if on_stack.(w) && index.(w) < lowlink.(v) then
                  lowlink.(v) <- index.(w)
            | [] ->
                call := tail;
                (match tail with
                | (parent, _) :: _ ->
                    if lowlink.(v) < lowlink.(parent) then
                      lowlink.(parent) <- lowlink.(v)
                | [] -> ());
                if lowlink.(v) = index.(v) then begin
                  let comp = ref [] in
                  let continue = ref true in
                  while !continue do
                    match !stack with
                    | [] -> continue := false
                    | w :: rest ->
                        stack := rest;
                        on_stack.(w) <- false;
                        comp := w :: !comp;
                        if w = v then continue := false
                  done;
                  components := !comp :: !components
                end)
      done
    end
  in
  for v = 0 to size - 1 do
    visit v
  done;
  !components

module Make (L : LATTICE) = struct
  type system = {
    size : int;
    deps : int -> int list;
    transfer : (int -> L.t) -> int -> L.t;
  }

  let solve ?(cancel = Ace_core.Cancel.never) ?(widen_after = 8) sys =
    Ace_trace.Trace.with_span "flow.solve" @@ fun () ->
    let n = sys.size in
    let values = Array.make n L.bottom in
    if n = 0 then
      ( values,
        { sccs = 0; max_scc = 0; iterations = 0; widenings = 0; converged = true }
      )
    else begin
      (* Successors: succ.(j) lists the variables whose transfer reads j. *)
      let succ = Array.make n [] in
      for v = 0 to n - 1 do
        List.iter (fun d -> if d >= 0 && d < n then succ.(d) <- v :: succ.(d))
          (sys.deps v)
      done;
      let components = sccs_of n (fun v -> succ.(v)) in
      let comp_of = Array.make n (-1) in
      let priority = Array.make n 0 in
      let rank = ref 0 in
      List.iteri
        (fun ci comp ->
          List.iter
            (fun v ->
              comp_of.(v) <- ci;
              priority.(v) <- !rank;
              incr rank)
            comp)
        components;
      let env v = values.(v) in
      (* Binary min-heap on priority, one shared backing store. *)
      let heap = Array.make n 0 in
      let heap_len = ref 0 in
      let in_q = Array.make n false in
      let swap i j =
        let t = heap.(i) in
        heap.(i) <- heap.(j);
        heap.(j) <- t
      in
      let push v =
        if not in_q.(v) then begin
          in_q.(v) <- true;
          heap.(!heap_len) <- v;
          incr heap_len;
          let i = ref (!heap_len - 1) in
          while
            !i > 0 && priority.(heap.((!i - 1) / 2)) > priority.(heap.(!i))
          do
            swap ((!i - 1) / 2) !i;
            i := (!i - 1) / 2
          done
        end
      in
      let pop () =
        let v = heap.(0) in
        decr heap_len;
        heap.(0) <- heap.(!heap_len);
        let i = ref 0 in
        let break = ref false in
        while not !break do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let s = ref !i in
          if l < !heap_len && priority.(heap.(l)) < priority.(heap.(!s)) then
            s := l;
          if r < !heap_len && priority.(heap.(r)) < priority.(heap.(!s)) then
            s := r;
          if !s = !i then break := true
          else begin
            swap !i !s;
            i := !s
          end
        done;
        in_q.(v) <- false;
        v
      in
      let iterations = ref 0 in
      let widenings = ref 0 in
      let converged = ref true in
      let max_scc = ref 0 in
      let n_sccs = ref 0 in
      List.iter
        (fun comp ->
          incr n_sccs;
          let size_c = List.length comp in
          if size_c > !max_scc then max_scc := size_c;
          let bound = widen_after * (size_c + 1) in
          let updates = ref 0 in
          List.iter push comp;
          while !heap_len > 0 do
            let v = pop () in
            incr iterations;
            (* stride the cancellation poll: a transfer evaluation is far
               cheaper than a clock read, so check every 256 iterations *)
            if !iterations land 255 = 0 then Ace_core.Cancel.check cancel;
            let candidate = sys.transfer env v in
            let cur = values.(v) in
            let next =
              if !updates <= bound then L.join cur candidate
              else begin
                incr widenings;
                L.widen cur candidate
              end
            in
            if not (L.equal cur next) then begin
              values.(v) <- next;
              incr updates;
              if !updates > 2 * bound then begin
                (* Backstop: report non-convergence, drain the queue. *)
                converged := false;
                while !heap_len > 0 do
                  ignore (pop ())
                done
              end
              else
                List.iter
                  (fun w -> if comp_of.(w) = comp_of.(v) then push w)
                  succ.(v)
            end
          done)
        components;
      Ace_trace.Trace.count Ace_trace.Trace.Counter.Solver_iterations
        !iterations;
      ( values,
        {
          sccs = !n_sccs;
          max_scc = !max_scc;
          iterations = !iterations;
          widenings = !widenings;
          converged = !converged;
        } )
    end
end
