open Ace_netlist

(** Hierarchical ternary analysis with per-leaf-cell summaries.

    Instead of flattening a hierarchy and solving one monolithic system,
    this module solves each leaf-cell activation as its own sub-system
    (boundary nets clamped to the enclosing environment) and iterates the
    boundary equations to a global fixpoint — a block Gauss–Seidel over
    the same monotone system, so the result is the {e same} least
    fixpoint as the flat analysis and the verdict is identical.

    Leaf solves are memoised on (cell, boundary environment), HEXT-style:
    an array of identical cells in identical surroundings is solved once
    and the summary reused, which is where the speed comes from. *)

type stats = {
  cells : int;  (** distinct leaf cell types summarised *)
  instances : int;  (** leaf activations covered by summaries *)
  hits : int;  (** summary-cache hits *)
  misses : int;  (** summary-cache misses (actual leaf solves) *)
}

val pp_stats : Format.formatter -> stats -> unit

(** [analyze h] flattens [h] (returning the flat circuit for downstream
    consumers) and runs the summarised ternary analysis.  The verdict is
    [None] when either rail is missing or both names resolve to the same
    net. *)
val analyze :
  ?vdd:string -> ?gnd:string -> Hier.t -> Circuit.t * Ternary.verdict option * stats
