(** Generic monotone-framework fixpoint solver.

    The netlist analyses in this repository all reduce to the same shape:
    a finite system of equations [x_i = f_i(x)] over a join-semilattice,
    solved to a least fixpoint.  This module is the one traversal engine:
    it condenses the dependency graph into strongly connected components
    (Tarjan), solves the components in topological order (producers before
    consumers, so acyclic parts of a netlist are solved in one pass), and
    iterates a priority worklist inside each component with a
    bounded-iteration backstop: past the bound the solver switches from
    [join] to [widen], and past twice the bound it gives up and reports
    [converged = false] rather than looping forever. *)

module type LATTICE = sig
  type t

  val bottom : t

  val join : t -> t -> t

  val equal : t -> t -> bool

  (** Accelerated join used after the iteration bound; [join] itself is a
      correct widening for finite lattices. *)
  val widen : t -> t -> t
end

type stats = {
  sccs : int;  (** components of the dependency graph *)
  max_scc : int;  (** size of the largest component *)
  iterations : int;  (** transfer-function evaluations *)
  widenings : int;  (** updates that went through [widen] *)
  converged : bool;  (** false = a component hit the iteration backstop *)
}

val pp_stats : Format.formatter -> stats -> unit

module Make (L : LATTICE) : sig
  (** [deps i] lists the variables [transfer _ i] may read; [transfer env i]
      recomputes variable [i] from the current environment.  [transfer]
      must be monotone in [env] for the result to be the least fixpoint. *)
  type system = {
    size : int;
    deps : int -> int list;
    transfer : (int -> L.t) -> int -> L.t;
  }

  (** Least fixpoint from [L.bottom]; [widen_after] scales the per-component
      iteration bound ([widen_after * (component size + 1)] value updates
      before widening kicks in, twice that before the backstop).  [cancel]
      is polled every 256 iterations; a tripped token raises
      {!Ace_core.Cancel.Cancelled} mid-solve. *)
  val solve :
    ?cancel:Ace_core.Cancel.t -> ?widen_after:int -> system -> L.t array * stats
end
