(** Lint configuration: rule enablement/severity plus engine parameters.

    Parsed from a simple line-based [key=value] rules file ([#] starts a
    comment) and/or per-rule CLI overrides.  A key is either an engine
    parameter ([lambda], [max-fanout], [max-pass-depth]) or a registered
    rule code bound to a level ([error] / [warn] / [info] / [off]).
    Unknown keys and levels are errors — a typo must not silently disable
    a check.  Later bindings win. *)

type setting = Severity of Finding.severity | Off

type t = {
  overrides : (string * setting) list;  (** newest first *)
  lambda : int;
  max_fanout : int;
  max_pass_depth : int;
}

(** No overrides; λ from {!Ace_tech.Nmos.default}, fan-out limit 16,
    pass-depth limit 3. *)
val default : t

val setting_of_string : string -> (setting, string) result
val setting_to_string : setting -> string

(** Apply one [key=value] binding (e.g. ["ratio=off"], ["lambda=200"]). *)
val parse_binding : t -> string -> (t, string) result

(** Parse a whole rules file; errors carry [file:line:]. *)
val parse : ?file:string -> t -> string -> (t, string) result

(** The severity a rule reports at, or [None] when disabled. *)
val severity_for : t -> Rule.t -> Finding.severity option
