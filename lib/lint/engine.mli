open Ace_netlist

(** The lint engine: runs every enabled registry rule over a circuit.

    [run] resolves the rails once (exact net-name match, then
    case-insensitive fallback), builds the {!Rule.ctx} from the
    configuration, and concatenates each enabled rule's findings stamped
    with its configured severity, in registry order. *)

(** [find_rail circuit name] — exact match first, then case-insensitive. *)
val find_rail : Circuit.t -> string -> int option

val context :
  ?config:Config.t -> ?vdd:string -> ?gnd:string -> Circuit.t -> Rule.ctx

val run :
  ?config:Config.t -> ?vdd:string -> ?gnd:string -> Circuit.t ->
  Finding.t list
