open Ace_netlist

(** The lint engine: runs every enabled registry rule over a circuit.

    [run] resolves the rails once (exact net-name match, then
    case-insensitive fallback), builds the {!Rule.ctx} from the
    configuration, and concatenates each enabled rule's findings stamped
    with its configured severity, in registry order.

    The [flow] argument controls the ternary dataflow analysis feeding
    the flow-* rules: [`Auto] (default) computes it lazily the first
    time an enabled flow rule asks for it; [`Off] disables those rules'
    input entirely; [`Pre v] injects an already-computed verdict (used
    by the hierarchical checker so the summarised analysis is reused
    rather than recomputed flat). *)

(** [find_rail circuit name] — exact match first, then case-insensitive. *)
val find_rail : Circuit.t -> string -> int option

val context :
  ?config:Config.t ->
  ?vdd:string ->
  ?gnd:string ->
  ?flow:[ `Auto | `Off | `Pre of Ace_flow.Ternary.verdict option ] ->
  Circuit.t ->
  Rule.ctx

val run :
  ?config:Config.t ->
  ?vdd:string ->
  ?gnd:string ->
  ?flow:[ `Auto | `Off | `Pre of Ace_flow.Ternary.verdict option ] ->
  Circuit.t ->
  Finding.t list
