open Ace_netlist

type ctx = {
  circuit : Circuit.t;
  vdd : int option;
  gnd : int option;
  vdd_name : string;
  gnd_name : string;
  lambda : int;
  max_fanout : int;
  max_pass_depth : int;
  flow : Ace_flow.Ternary.verdict option Lazy.t;
}

type draft = { message : string; device : int option; net : int option }

let draft ?device ?net fmt =
  Format.kasprintf (fun message -> { message; device; net }) fmt

type t = {
  code : string;
  summary : string;
  doc : string;
  default : Finding.severity;
  check : ctx -> draft list;
}
