open Ace_netlist

(** The rule interface of the lint engine.

    A rule is a pure function from a resolved checking context to a list of
    draft findings; the engine stamps each draft with the rule's code and
    its configured severity.  Rules never decide their own enablement or
    severity — that is {!Config}'s job — so one registry serves every
    configuration. *)

(** Everything a rule body may depend on, resolved once per run: the
    circuit, the power-rail net indices (located by name, falling back to a
    case-insensitive match; [None] when absent), and the technology /
    threshold parameters from the configuration. *)
type ctx = {
  circuit : Circuit.t;
  vdd : int option;
  gnd : int option;
  vdd_name : string;
  gnd_name : string;
  lambda : int;  (** λ in centimicrons, for grid checks *)
  max_fanout : int;  (** gate fan-out threshold *)
  max_pass_depth : int;  (** series pass-transistor depth threshold *)
  flow : Ace_flow.Ternary.verdict option Lazy.t;
      (** ternary dataflow verdict, forced only when a flow-* rule is
          enabled; [None] when a rail is missing or the rails collide *)
}

(** A finding minus code and severity (the engine adds those). *)
type draft = { message : string; device : int option; net : int option }

val draft :
  ?device:int -> ?net:int -> ('a, Format.formatter, unit, draft) format4 -> 'a

type t = {
  code : string;  (** stable identifier, e.g. ["ratio"] *)
  summary : string;  (** one-line description for [--list-rules] / SARIF *)
  doc : string;  (** rationale, typically citing the paper *)
  default : Finding.severity;
  check : ctx -> draft list;
}
