open Ace_netlist

type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_of_string = function
  | "error" | "err" -> Some Error
  | "warn" | "warning" -> Some Warning
  | "info" | "note" | "hint" -> Some Info
  | _ -> None

let sarif_level = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "note"

type t = {
  code : string;
  severity : severity;
  message : string;
  device : int option;
  net : int option;
}

let summarize findings =
  List.fold_left
    (fun (e, w, i) f ->
      match f.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) findings

(* " (device D3) (net OUT)" — the location suffix shared by the text
   renderer and the Diag conversion. *)
let context circuit f =
  let buf = Buffer.create 16 in
  (match f.device with
  | Some d -> Buffer.add_string buf (Printf.sprintf " (device D%d)" d)
  | None -> ());
  (match f.net with
  | Some n ->
      Buffer.add_string buf
        (Printf.sprintf " (net %s)" (Circuit.net_display_name circuit n))
  | None -> ());
  Buffer.contents buf

let to_string circuit f =
  Printf.sprintf "%s[%s]: %s%s"
    (severity_to_string f.severity)
    f.code f.message (context circuit f)

let to_diag circuit f =
  let severity =
    match f.severity with
    | Error -> Ace_diag.Diag.Error
    | Warning -> Ace_diag.Diag.Warning
    | Info -> Ace_diag.Diag.Hint
  in
  Ace_diag.Diag.make severity ~code:f.code (f.message ^ context circuit f)

(* FNV-1a, 64 bit: cheap, stable across runs and platforms. *)
let fnv1a64 s =
  let prime = 0x100000001b3L and basis = 0xcbf29ce484222325L in
  let h = ref basis in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  Printf.sprintf "%016Lx" !h

(* Fingerprints identify a finding by rule code plus the *physical*
   identity of the flagged device/net — type and layout location for
   devices, user name (or location) for nets — rather than by array
   index or message text, so they survive re-extraction, renumbering and
   message-wording changes. *)
let fingerprint circuit f =
  let device_key =
    match f.device with
    | None -> "-"
    | Some i ->
        let d = circuit.Circuit.devices.(i) in
        Printf.sprintf "%s@%d,%d"
          (Ace_tech.Nmos.device_type_name d.dtype)
          d.location.Ace_geom.Point.x d.location.Ace_geom.Point.y
  in
  let net_key =
    match f.net with
    | None -> "-"
    | Some n -> (
        match circuit.Circuit.nets.(n).names with
        | name :: _ -> name
        | [] ->
            let p = circuit.Circuit.nets.(n).location in
            Printf.sprintf "@%d,%d" p.Ace_geom.Point.x p.Ace_geom.Point.y)
  in
  fnv1a64 (String.concat "|" [ f.code; device_key; net_key ])
