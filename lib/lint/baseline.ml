module S = Set.Make (String)

type t = S.t

let empty = S.empty
let mem t fp = S.mem fp t
let of_fingerprints fps = S.of_list fps
let fingerprints t = S.elements t
let size = S.cardinal

let to_json t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{\n  \"version\": 1,\n  \"tool\": \"acecheck\",\n";
  Buffer.add_string buf "  \"fingerprints\": [";
  let first = ref true in
  S.iter
    (fun fp ->
      if not !first then Buffer.add_char buf ',';
      first := false;
      Buffer.add_string buf "\n    \"";
      Buffer.add_string buf (Ace_diag.Diag.json_escape fp);
      Buffer.add_char buf '"')
    t;
  Buffer.add_string buf (if S.is_empty t then "]\n}\n" else "\n  ]\n}\n");
  Buffer.contents buf

(* A deliberately small JSON reader: finds the "fingerprints" array and
   collects its string elements, handling escapes.  Tolerates (ignores)
   every other key so the format can grow. *)
let of_json text =
  let len = String.length text in
  let find_key key from =
    let needle = "\"" ^ key ^ "\"" in
    let nlen = String.length needle in
    let rec go i =
      if i + nlen > len then None
      else if String.sub text i nlen = needle then Some (i + nlen)
      else go (i + 1)
    in
    go from
  in
  let rec skip_ws i =
    if i < len && (text.[i] = ' ' || text.[i] = '\n' || text.[i] = '\t'
                  || text.[i] = '\r')
    then skip_ws (i + 1)
    else i
  in
  let parse_string i =
    (* [i] points at the opening quote *)
    let buf = Buffer.create 16 in
    let rec go i =
      if i >= len then Error "unterminated string in baseline file"
      else
        match text.[i] with
        | '"' -> Ok (Buffer.contents buf, i + 1)
        | '\\' when i + 1 < len ->
            let c = text.[i + 1] in
            let add c = Buffer.add_char buf c in
            (match c with
            | 'n' -> add '\n'
            | 't' -> add '\t'
            | 'r' -> add '\r'
            | c -> add c);
            go (i + 2)
        | c ->
            Buffer.add_char buf c;
            go (i + 1)
    in
    go (i + 1)
  in
  match find_key "fingerprints" 0 with
  | None -> Error "baseline file has no \"fingerprints\" array"
  | Some i -> (
      let i = skip_ws i in
      if i >= len || text.[i] <> ':' then
        Error "malformed baseline: expected ':' after \"fingerprints\""
      else
        let i = skip_ws (i + 1) in
        if i >= len || text.[i] <> '[' then
          Error "malformed baseline: expected '[' after \"fingerprints\":"
        else
          let rec elements acc i =
            let i = skip_ws i in
            if i >= len then Error "unterminated fingerprint array"
            else
              match text.[i] with
              | ']' -> Ok (of_fingerprints (List.rev acc))
              | ',' -> elements acc (i + 1)
              | '"' -> (
                  match parse_string i with
                  | Ok (s, j) -> elements (s :: acc) j
                  | Error m -> Error m)
              | c ->
                  Error
                    (Printf.sprintf
                       "malformed baseline: unexpected %C in array" c)
          in
          elements [] (i + 1))

let load path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic -> (
      match
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | text -> of_json text
      | exception Sys_error m -> Error m
      | exception End_of_file -> Error (path ^ ": truncated read"))

let save path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_json t))
