type setting = Severity of Finding.severity | Off

type t = {
  overrides : (string * setting) list;
  lambda : int;
  max_fanout : int;
  max_pass_depth : int;
}

let default =
  {
    overrides = [];
    lambda = Ace_tech.Nmos.default.Ace_tech.Nmos.lambda;
    max_fanout = 16;
    max_pass_depth = 3;
  }

let setting_of_string s =
  match String.lowercase_ascii s with
  | "off" | "none" | "disable" | "disabled" -> Ok Off
  | s -> (
      match Finding.severity_of_string s with
      | Some sev -> Ok (Severity sev)
      | None ->
          Error (Printf.sprintf "unknown level %S (want error|warn|info|off)" s))

let setting_to_string = function
  | Off -> "off"
  | Severity s -> Finding.severity_to_string s

let positive_int key v =
  match int_of_string_opt v with
  | Some n when n > 0 -> Ok n
  | Some _ | None ->
      Error (Printf.sprintf "%s wants a positive integer, got %S" key v)

(* One [key=value] binding: either an engine parameter or a rule
   severity override. *)
let set cfg key value =
  match key with
  | "lambda" ->
      Result.map (fun lambda -> { cfg with lambda }) (positive_int key value)
  | "max-fanout" ->
      Result.map
        (fun max_fanout -> { cfg with max_fanout })
        (positive_int key value)
  | "max-pass-depth" ->
      Result.map
        (fun max_pass_depth -> { cfg with max_pass_depth })
        (positive_int key value)
  | code -> (
      match Rules.find code with
      | None -> Error (Printf.sprintf "unknown rule or parameter %S" code)
      | Some _ ->
          Result.map
            (fun s -> { cfg with overrides = (code, s) :: cfg.overrides })
            (setting_of_string value))

let parse_binding cfg spec =
  match String.index_opt spec '=' with
  | None -> Error (Printf.sprintf "expected key=value, got %S" spec)
  | Some i ->
      let key = String.trim (String.sub spec 0 i) in
      let value =
        String.trim (String.sub spec (i + 1) (String.length spec - i - 1))
      in
      set cfg key value

let strip_comment line =
  match String.index_opt line '#' with
  | None -> line
  | Some i -> String.sub line 0 i

let parse ?(file = "<rules>") cfg text =
  let lines = String.split_on_char '\n' text in
  let rec go cfg lineno = function
    | [] -> Ok cfg
    | line :: rest -> (
        let line = String.trim (strip_comment line) in
        if line = "" then go cfg (lineno + 1) rest
        else
          match parse_binding cfg line with
          | Ok cfg -> go cfg (lineno + 1) rest
          | Error m -> Error (Printf.sprintf "%s:%d: %s" file lineno m))
  in
  go cfg 1 lines

let severity_for cfg (rule : Rule.t) =
  match List.assoc_opt rule.Rule.code cfg.overrides with
  | Some Off -> None
  | Some (Severity s) -> Some s
  | None -> Some rule.Rule.default
