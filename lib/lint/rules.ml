open Ace_tech
open Ace_netlist
open Rule

(* ------------------------------------------------------------------ *)
(* Shared structural helpers                                           *)
(* ------------------------------------------------------------------ *)

(* Channel-graph reachability from a seed net list.  Nets in [stop] are
   marked when touched but never expanded: a rail is a fixed potential,
   not a conductor to route through, so a VDD-origin search must not
   continue out the far side of GND.  Now solved as a boolean dataflow
   problem on the shared fixpoint engine. *)
let reachable = Ace_flow.Reach.reachable

(* gates.(n) / channels.(n): net n appears on a gate / channel terminal *)
let terminal_roles circuit =
  let n = Circuit.net_count circuit in
  let gates = Array.make n false in
  let channels = Array.make n false in
  Array.iter
    (fun (d : Circuit.device) ->
      gates.(d.gate) <- true;
      channels.(d.source) <- true;
      channels.(d.drain) <- true)
    circuit.Circuit.devices;
  (gates, channels)

(* [other_terminal d rail] is the net across the channel from [rail], or
   [None] when the device does not touch [rail] (or is degenerate). *)
let other_terminal (d : Circuit.device) rail =
  if d.source = rail && d.drain <> rail then Some d.drain
  else if d.drain = rail && d.source <> rail then Some d.source
  else None

(* Push-pull (superbuffer) output nodes: an enhancement pull-up from VDD
   whose gate is a separate control node, together with an enhancement
   pull-down to GND on the same node.  The Mead-Conway ratio rule does not
   apply to such actively-driven stages, and a VDD-GND path through them
   is intentional, not a sneak path.  Returns (nodes, pullup_devices):
   [nodes.(n)] marks the output node, [pullup_devices.(i)] the pull-up. *)
let push_pull circuit ~vdd ~gnd =
  let n = Circuit.net_count circuit in
  let up = Array.make n (-1) in
  let down = Array.make n false in
  Array.iteri
    (fun i (d : Circuit.device) ->
      if d.dtype = Nmos.Enhancement then begin
        (match other_terminal d vdd with
        | Some m when d.gate <> m -> up.(m) <- i
        | Some _ | None -> ());
        match other_terminal d gnd with
        | Some m -> down.(m) <- true
        | None -> ()
      end)
    circuit.Circuit.devices;
  let nodes = Array.init n (fun i -> up.(i) >= 0 && down.(i)) in
  let pullups = Array.make (Circuit.device_count circuit) false in
  Array.iteri (fun i is_pp -> if is_pp then pullups.(up.(i)) <- true) nodes;
  (nodes, pullups)

(* ------------------------------------------------------------------ *)
(* Ported checks (the original Static_check battery)                   *)
(* ------------------------------------------------------------------ *)

let no_rail =
  {
    code = "no-rail";
    summary = "a power rail net (VDD/GND) could not be located by name";
    doc =
      "ACE \xc2\xa71's ratio and stuck-at checks need both rails; a chip \
       without the expected labels silently loses most of the battery.";
    default = Finding.Info;
    check =
      (fun ctx ->
        match (ctx.vdd, ctx.gnd) with
        | None, _ ->
            [
              draft "no net named %s: rail-dependent checks skipped"
                ctx.vdd_name;
            ]
        | _, None ->
            [
              draft "no net named %s: rail-dependent checks skipped"
                ctx.gnd_name;
            ]
        | Some _, Some _ -> []);
  }

let power_short =
  {
    code = "power-short";
    summary = "VDD and GND resolve to the same net";
    doc =
      "A conducting path merging the rails shorts the supply: the chip \
       cannot function and every ratio check is meaningless.";
    default = Finding.Error;
    check =
      (fun ctx ->
        match (ctx.vdd, ctx.gnd) with
        | Some v, Some g when v = g ->
            [ draft ~net:v "%s and %s are the same net" ctx.vdd_name ctx.gnd_name ]
        | _ -> []);
  }

let malformed =
  {
    code = "malformed";
    summary = "floating channel: gate, source and drain on one net";
    doc =
      "ACE \xc2\xa71: the static checker \"detects malformed transistors\" \
       \xe2\x80\x94 a channel whose three terminals merged into one net does \
       nothing and usually marks a layout slip.";
    default = Finding.Error;
    check =
      (fun ctx ->
        let out = ref [] in
        Array.iteri
          (fun i (d : Circuit.device) ->
            if d.gate = d.source && d.gate = d.drain then
              out :=
                draft ~device:i
                  "floating channel: gate, source and drain on one net"
                :: !out)
          ctx.circuit.Circuit.devices;
        List.rev !out);
  }

let self_gate =
  {
    code = "self-gate";
    summary = "enhancement device gated by its own source/drain";
    doc =
      "An enhancement transistor whose gate is its own channel terminal can \
       never be driven past threshold by that node \xe2\x80\x94 legitimate \
       only for depletion loads (gate tied to source is the standard \
       Mead-Conway load).";
    default = Finding.Warning;
    check =
      (fun ctx ->
        let out = ref [] in
        Array.iteri
          (fun i (d : Circuit.device) ->
            if not (d.gate = d.source && d.gate = d.drain) then
              match d.dtype with
              | Nmos.Enhancement ->
                  if d.gate = d.source || d.gate = d.drain then
                    out :=
                      draft ~device:i
                        "enhancement device gated by its own source/drain"
                      :: !out
              | Nmos.Depletion -> ())
          ctx.circuit.Circuit.devices;
        List.rev !out);
  }

let ratio =
  {
    code = "ratio";
    summary = "pull-up/pull-down ratio below the Mead-Conway 4:1 minimum";
    doc =
      "ACE \xc2\xa71: the checker \"performs ratio checks\".  A gate-tied \
       depletion load against an enhancement pull-down must satisfy \
       (L/W)up / (L/W)down \xe2\x89\xa5 4 or the output low level rises above \
       the inverter threshold.  Push-pull (superbuffer) stages are exempt.";
    default = Finding.Warning;
    check =
      (fun ctx ->
        match (ctx.vdd, ctx.gnd) with
        | Some v, Some g ->
            let circuit = ctx.circuit in
            let pp_nodes, _ = push_pull circuit ~vdd:v ~gnd:g in
            (* depletion load from VDD to node N with gate tied to N *)
            let loads = Hashtbl.create 16 in
            Array.iter
              (fun (d : Circuit.device) ->
                match d.dtype with
                | Nmos.Depletion -> (
                    match other_terminal d v with
                    | Some n when d.gate = n -> Hashtbl.replace loads n d
                    | Some _ | None -> ())
                | Nmos.Enhancement -> ())
              circuit.Circuit.devices;
            let out = ref [] in
            Array.iteri
              (fun i (d : Circuit.device) ->
                match d.dtype with
                | Nmos.Enhancement -> (
                    match other_terminal d g with
                    | Some n when not pp_nodes.(n) -> (
                        match Hashtbl.find_opt loads n with
                        | Some (load : Circuit.device) ->
                            let k =
                              float_of_int load.length
                              /. float_of_int load.width
                              /. (float_of_int d.length /. float_of_int d.width)
                            in
                            if k < Nmos.min_inverter_ratio -. 1e-9 then
                              out :=
                                draft ~device:i ~net:n
                                  "pull-up/pull-down ratio %.2f below %.1f" k
                                  Nmos.min_inverter_ratio
                                :: !out
                        | None -> ())
                    | Some _ | None -> ())
                | Nmos.Depletion -> ())
              circuit.Circuit.devices;
            List.rev !out
        | _ -> []);
  }

let undriven =
  {
    code = "undriven";
    summary = "net gates devices but has no channel path to either rail";
    doc =
      "A gate input with no conducting path to VDD or GND floats at an \
       unknown level (stuck at X): ACE \xc2\xa71's \"signals stuck at \
       logical 0 or 1\" family.";
    default = Finding.Warning;
    check =
      (fun ctx ->
        match (ctx.vdd, ctx.gnd) with
        | Some v, Some g ->
            let circuit = ctx.circuit in
            let gates, channels = terminal_roles circuit in
            let from_vdd = reachable ~stop:[ g ] circuit [ v ] in
            let from_gnd = reachable ~stop:[ v ] circuit [ g ] in
            let out = ref [] in
            for net = 0 to Circuit.net_count circuit - 1 do
              if
                gates.(net) && net <> v && net <> g
                && (not (from_vdd.(net) || from_gnd.(net)))
                && (channels.(net) || circuit.Circuit.nets.(net).names = [])
              then
                out :=
                  draft ~net
                    "gates devices but has no channel path to either rail"
                  :: !out
            done;
            List.rev !out
        | _ -> []);
  }

let stuck =
  {
    code = "stuck";
    summary = "net reachable from only one rail (stuck at 0 or 1)";
    doc =
      "ACE \xc2\xa71: the checker \"checks for signals that are stuck at \
       logical 0 or 1\" \xe2\x80\x94 a gating net whose only channel paths \
       come from a single rail can never switch.";
    default = Finding.Warning;
    check =
      (fun ctx ->
        match (ctx.vdd, ctx.gnd) with
        | Some v, Some g ->
            let circuit = ctx.circuit in
            let gates, channels = terminal_roles circuit in
            let from_vdd = reachable ~stop:[ g ] circuit [ v ] in
            let from_gnd = reachable ~stop:[ v ] circuit [ g ] in
            let out = ref [] in
            for net = 0 to Circuit.net_count circuit - 1 do
              if gates.(net) && net <> v && net <> g then
                if from_vdd.(net) && not from_gnd.(net) then
                  out :=
                    draft ~net "can only be pulled high (stuck at 1)" :: !out
                else if from_gnd.(net) && (not from_vdd.(net)) && channels.(net)
                then
                  out :=
                    draft ~net "can only be pulled low (stuck at 0)" :: !out
            done;
            List.rev !out
        | _ -> []);
  }

let floating_gate =
  {
    code = "floating-gate";
    summary = "gate net with no channel connection and no name";
    doc =
      "A net that only gates devices, touches no channel and carries no \
       user label is almost always a wire that missed its contact.";
    default = Finding.Warning;
    check =
      (fun ctx ->
        let circuit = ctx.circuit in
        let gates, channels = terminal_roles circuit in
        let out = ref [] in
        for net = 0 to Circuit.net_count circuit - 1 do
          if
            gates.(net) && (not channels.(net))
            && circuit.Circuit.nets.(net).names = []
          then out := draft ~net "gate net has no driver and no name" :: !out
        done;
        List.rev !out);
  }

let isolated =
  {
    code = "isolated";
    summary = "unnamed net touching no devices";
    doc =
      "Decorative or dead geometry; harmless, but worth surfacing because \
       isolated conducting islands sometimes mark a missing contact cut.";
    default = Finding.Info;
    check =
      (fun ctx ->
        let circuit = ctx.circuit in
        let gates, channels = terminal_roles circuit in
        let out = ref [] in
        for net = 0 to Circuit.net_count circuit - 1 do
          if
            (not gates.(net))
            && (not channels.(net))
            && circuit.Circuit.nets.(net).names = []
          then out := draft ~net "unnamed net touches no devices" :: !out
        done;
        List.rev !out);
  }

(* ------------------------------------------------------------------ *)
(* New NMOS analyses                                                   *)
(* ------------------------------------------------------------------ *)

(* Pass devices: enhancement transistors whose channel connects two
   internal (non-rail) nets — the building blocks of pass-transistor
   steering networks. *)
let pass_devices circuit ~vdd ~gnd =
  Array.map
    (fun (d : Circuit.device) ->
      d.dtype = Nmos.Enhancement && d.source <> vdd && d.source <> gnd
      && d.drain <> vdd && d.drain <> gnd && d.source <> d.drain)
    circuit.Circuit.devices

let pass_depth =
  {
    code = "pass-depth";
    summary = "gate input reached only through a deep series pass chain";
    doc =
      "Each enhancement pass transistor drops one threshold voltage; after \
       a few in series an NMOS level no longer clears V_th at the receiving \
       gate (Mead-Conway budget: restore after at most one drop; the \
       default limit here is 3).";
    default = Finding.Warning;
    check =
      (fun ctx ->
        match (ctx.vdd, ctx.gnd) with
        | Some v, Some g when v <> g ->
            let circuit = ctx.circuit in
            let n = Circuit.net_count circuit in
            let is_pass = pass_devices circuit ~vdd:v ~gnd:g in
            (* restored (full-level) nets: the rails and anything a
               depletion load touches *)
            let seeds = ref [ v; g ] in
            Array.iter
              (fun (d : Circuit.device) ->
                if d.dtype = Nmos.Depletion then
                  seeds := d.source :: d.drain :: !seeds)
              circuit.Circuit.devices;
            let dist =
              Ace_flow.Reach.distances circuit ~seeds:!seeds
                ~use_device:(fun i _ -> is_pass.(i))
            in
            let gates, _ = terminal_roles circuit in
            let out = ref [] in
            for net = 0 to n - 1 do
              if
                gates.(net) && dist.(net) <> max_int
                && dist.(net) > ctx.max_pass_depth
              then
                out :=
                  draft ~net
                    "gate input driven through %d series pass transistors \
                     (threshold-drop limit %d)"
                    dist.(net) ctx.max_pass_depth
                  :: !out
            done;
            List.rev !out
        | _ -> []);
  }

let fanout =
  {
    code = "fanout";
    summary = "net drives more transistor gates than the fan-out limit";
    doc =
      "Every driven gate adds its oxide capacitance to the net; past the \
       limit (default 16) a ratioed NMOS stage becomes unacceptably slow \
       and should be superbuffered (Mead-Conway ch. 1).";
    default = Finding.Warning;
    check =
      (fun ctx ->
        let circuit = ctx.circuit in
        let n = Circuit.net_count circuit in
        let counts = Array.make n 0 in
        Array.iter
          (fun (d : Circuit.device) ->
            counts.(d.gate) <- counts.(d.gate) + 1)
          circuit.Circuit.devices;
        let out = ref [] in
        for net = 0 to n - 1 do
          if counts.(net) > ctx.max_fanout then
            out :=
              draft ~net "drives %d transistor gates (fan-out limit %d)"
                counts.(net) ctx.max_fanout
              :: !out
        done;
        List.rev !out);
  }

let sneak_path =
  {
    code = "sneak-path";
    summary = "load-free conducting path between VDD and GND";
    doc =
      "A rail-to-rail path made only of enhancement channels has no \
       current-limiting load: when every gate on it happens to be high the \
       supply is shorted through the pass network.  Recognized push-pull \
       (superbuffer) stages are exempt.";
    default = Finding.Warning;
    check =
      (fun ctx ->
        match (ctx.vdd, ctx.gnd) with
        | Some v, Some g when v <> g ->
            let circuit = ctx.circuit in
            let _, pp_pullups = push_pull circuit ~vdd:v ~gnd:g in
            (* Shortest-hop distances from VDD over enhancement channels,
               skipping recognized push-pull pull-ups; the report anchors
               on a closing edge of a shortest path into GND. *)
            let eligible i (d : Circuit.device) =
              d.dtype = Nmos.Enhancement
              && (not pp_pullups.(i))
              && d.source <> d.drain
            in
            let dist =
              Ace_flow.Reach.distances circuit ~seeds:[ v ]
                ~use_device:eligible
            in
            if dist.(g) = max_int then []
            else begin
              let hit = ref None in
              Array.iteri
                (fun i (d : Circuit.device) ->
                  if !hit = None && eligible i d then
                    match other_terminal d g with
                    | Some m when dist.(m) = dist.(g) - 1 -> hit := Some i
                    | Some _ | None -> ())
                circuit.Circuit.devices;
              match !hit with
              | Some dev ->
                  [
                    draft ~device:dev
                      "possible sneak path: %s reaches %s through %d \
                       enhancement channels with no load"
                      ctx.vdd_name ctx.gnd_name dist.(g);
                  ]
              | None -> []
            end
        | _ -> []);
  }

let superbuffer =
  {
    code = "superbuffer";
    summary = "recognized push-pull / bootstrap driver stage";
    doc =
      "Superbuffers and bootstrap drivers are the Mead-Conway idiom for \
       driving large loads; recognizing them here both documents the \
       design and suppresses false ratio warnings on their output nodes.";
    default = Finding.Info;
    check =
      (fun ctx ->
        match (ctx.vdd, ctx.gnd) with
        | Some v, Some g when v <> g ->
            let circuit = ctx.circuit in
            let pp_nodes, _ = push_pull circuit ~vdd:v ~gnd:g in
            let out = ref [] in
            Array.iteri
              (fun net is_pp ->
                if is_pp then
                  out :=
                    draft ~net
                      "push-pull (superbuffer) output stage: ratio check \
                       suppressed"
                    :: !out)
              pp_nodes;
            (* bootstrap / off-node depletion loads: gate on a separate
               node rather than tied to the output *)
            Array.iteri
              (fun i (d : Circuit.device) ->
                if d.dtype = Nmos.Depletion then
                  match other_terminal d v with
                  | Some m when d.gate <> m && d.gate <> v ->
                      out :=
                        draft ~device:i ~net:m
                          "depletion load with off-node gate (bootstrap \
                           driver?): not ratio-checked"
                        :: !out
                  | Some _ | None -> ())
              circuit.Circuit.devices;
            List.rev !out
        | _ -> []);
  }

let name_collision =
  {
    code = "name-collision";
    summary = "one label names several electrically distinct nets";
    doc =
      "Two nets carrying the same user label usually mean a wire the \
       designer believed connected but the extractor found split \xe2\x80\x94 \
       the classic extraction bug ACE exists to catch.";
    default = Finding.Warning;
    check =
      (fun ctx ->
        let circuit = ctx.circuit in
        let first = Hashtbl.create 16 in
        let seen = Hashtbl.create 16 in
        Array.iteri
          (fun i (net : Circuit.net) ->
            List.iter
              (fun name ->
                match Hashtbl.find_opt seen name with
                | None ->
                    Hashtbl.replace seen name 1;
                    Hashtbl.replace first name i
                | Some k ->
                    (* count distinct nets only once each *)
                    if Hashtbl.find first name <> i then
                      Hashtbl.replace seen name (k + 1))
              (List.sort_uniq compare net.names))
          circuit.Circuit.nets;
        Hashtbl.fold
          (fun name k acc ->
            if k > 1 then
              draft
                ~net:(Hashtbl.find first name)
                "label %S names %d electrically distinct nets" name k
              :: acc
            else acc)
          seen []
        |> List.sort compare);
  }

let aliased_net =
  {
    code = "aliased-net";
    summary = "one net carries several distinct labels";
    doc =
      "Multiple labels merging onto one net is sometimes intentional \
       (aliases) and sometimes an accidental short between two signals \
       \xe2\x80\x94 surfaced as informational so shorts are visible in \
       review.";
    default = Finding.Info;
    check =
      (fun ctx ->
        let out = ref [] in
        Array.iteri
          (fun i (net : Circuit.net) ->
            let names = List.sort_uniq compare net.names in
            if List.length names > 1 then
              out :=
                draft ~net:i "net carries %d labels: %s" (List.length names)
                  (String.concat ", " names)
                :: !out)
          ctx.circuit.Circuit.nets;
        List.rev !out);
  }

let off_grid =
  {
    code = "off-grid";
    summary = "channel dimensions not a multiple of λ";
    doc =
      "Mead-Conway design rules are stated in λ; a channel length or width \
       that is not a λ multiple means artwork drawn off the design grid, \
       which the fabrication line may round unpredictably.";
    default = Finding.Warning;
    check =
      (fun ctx ->
        if ctx.lambda <= 0 then []
        else begin
          let out = ref [] in
          Array.iteri
            (fun i (d : Circuit.device) ->
              if d.length mod ctx.lambda <> 0 || d.width mod ctx.lambda <> 0
              then
                out :=
                  draft ~device:i
                    "channel %d x %d c\xc2\xb5 is not on the \xce\xbb=%d grid"
                    d.length d.width ctx.lambda
                  :: !out)
            ctx.circuit.Circuit.devices;
          List.rev !out
        end);
  }

(* ------------------------------------------------------------------ *)
(* Dataflow rules: ternary switch-level abstract interpretation        *)
(* over the shared fixpoint engine                                     *)
(* ------------------------------------------------------------------ *)

module Flow = Ace_flow.Ternary

let with_flow ctx f =
  match Lazy.force ctx.flow with None -> [] | Some fv -> f fv

let flow_contention =
  {
    code = "flow-contention";
    summary = "an input assignment can drive strong 0 and strong 1 together";
    doc =
      "The ternary dataflow pass over-approximates every net's reachable \
       drive set; a net whose inflows include both a strong high and a \
       strong low can be fought over under some input assignment, burning \
       static current through the pass network.  Push-pull output stages \
       are exempt (their fight is brief and intentional); direct \
       rail-to-rail enhancement channels are reported at the device.";
    default = Finding.Error;
    check =
      (fun ctx ->
        with_flow ctx (fun fv ->
            let pp_nodes, _ =
              push_pull ctx.circuit ~vdd:fv.Flow.vdd ~gnd:fv.Flow.gnd
            in
            let nets =
              List.filter
                (fun n ->
                  n <> fv.Flow.vdd && n <> fv.Flow.gnd && not pp_nodes.(n))
                fv.Flow.contention
            in
            List.map
              (fun n ->
                draft ~net:n
                  "a strong 0 and a strong 1 can drive this net under the \
                   same input assignment (possible contention)")
              nets
            @ List.map
                (fun di ->
                  draft ~device:di
                    "enhancement channel connects %s and %s directly and its \
                     gate can go high"
                    ctx.vdd_name ctx.gnd_name)
                fv.Flow.bridges));
  }

let flow_dead =
  {
    code = "flow-dead";
    summary = "gate net with a provably constant logic level (dead logic)";
    doc =
      "A net that gates transistors but can only ever reach one logic level \
       never switches them: the logic behind it is dead \xe2\x80\x94 \
       typically a tied-off input that should be a rail contact, or a \
       missing pull path.  Proved by the ternary dataflow pass (a \
       may-analysis, so the constancy is sound).";
    default = Finding.Warning;
    check =
      (fun ctx ->
        with_flow ctx (fun fv ->
            List.map
              (fun (n, kind) ->
                match kind with
                | Flow.Never_low ->
                    draft ~net:n
                      "gate net can never be driven low (value always %s): \
                       pull-down logic dead or missing"
                      (Flow.mask_to_string fv.Flow.values.(n))
                | Flow.Never_high ->
                    draft ~net:n
                      "gate net can never be driven high (value always %s): \
                       pull-up logic dead or missing"
                      (Flow.mask_to_string fv.Flow.values.(n)))
              fv.Flow.dead));
  }

let flow_float =
  {
    code = "flow-float";
    summary = "net driven under some inputs but floating under others";
    doc =
      "A net not always connected to a driver stores charge while isolated \
       (dynamic node).  Legitimate in clocked designs, but each instance \
       deserves review: the stored level decays, and any path that can \
       later dump the charge into a sampling gate is a hazard.";
    default = Finding.Warning;
    check =
      (fun ctx ->
        with_flow ctx (fun fv ->
            List.map
              (fun n ->
                draft ~net:n
                  "can be isolated from all drivers (charge storage); \
                   reachable drive set %s"
                  (Flow.mask_to_string fv.Flow.values.(n)))
              fv.Flow.float_nets));
  }

let flow_share =
  {
    code = "flow-share";
    summary = "pass transistor can bridge two charge-storage nets";
    doc =
      "When a pass transistor whose gate can go high joins two nets that \
       can both be floating, their stored charge redistributes by \
       capacitance ratio \xe2\x80\x94 the classic charge-sharing hazard of \
       dynamic NMOS design.";
    default = Finding.Warning;
    check =
      (fun ctx ->
        with_flow ctx (fun fv ->
            List.map
              (fun di ->
                draft ~device:di
                  "can connect two charge-storage nets (charge sharing \
                   hazard)")
              fv.Flow.share));
  }

let flow_x =
  {
    code = "flow-x";
    summary = "transistor gated by a possibly-unknown (X) level";
    doc =
      "A gate that can sit at an unknown level makes the channel's state \
       unpredictable; the trace names the floating net the X originates \
       from, which is where the fix belongs.";
    default = Finding.Info;
    check =
      (fun ctx ->
        with_flow ctx (fun fv ->
            List.map
              (fun di ->
                let d = ctx.circuit.Circuit.devices.(di) in
                let suffix =
                  match Flow.x_trace fv ctx.circuit d.gate with
                  | src :: _ :: _ ->
                      Printf.sprintf " (X originates at floating net %s)"
                        (Circuit.net_display_name ctx.circuit src)
                  | _ -> ""
                in
                draft ~device:di ~net:d.gate
                  "gate can be at an unknown level%s" suffix)
              fv.Flow.x_devices));
  }

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let all =
  [
    no_rail;
    power_short;
    malformed;
    self_gate;
    ratio;
    undriven;
    stuck;
    floating_gate;
    isolated;
    pass_depth;
    fanout;
    sneak_path;
    superbuffer;
    name_collision;
    aliased_net;
    off_grid;
    flow_contention;
    flow_dead;
    flow_float;
    flow_share;
    flow_x;
  ]

let find code = List.find_opt (fun r -> r.code = code) all
