open Ace_netlist

let find_rail = Circuit.find_rail

let context ?(config = Config.default) ?(vdd = "VDD") ?(gnd = "GND")
    ?(flow = `Auto) circuit =
  let vdd_net = find_rail circuit vdd in
  let gnd_net = find_rail circuit gnd in
  let flow =
    match flow with
    | `Off -> Lazy.from_val None
    | `Pre v -> Lazy.from_val v
    | `Auto ->
        lazy
          (match (vdd_net, gnd_net) with
          | Some v, Some g when v <> g ->
              Some (Ace_flow.Ternary.analyze circuit ~vdd:v ~gnd:g)
          | _ -> None)
  in
  {
    Rule.circuit;
    vdd = vdd_net;
    gnd = gnd_net;
    vdd_name = vdd;
    gnd_name = gnd;
    lambda = config.Config.lambda;
    max_fanout = config.Config.max_fanout;
    max_pass_depth = config.Config.max_pass_depth;
    flow;
  }

let run ?(config = Config.default) ?vdd ?gnd ?flow circuit =
  Ace_trace.Trace.with_span "lint.run" @@ fun () ->
  let ctx = context ~config ?vdd ?gnd ?flow circuit in
  List.concat_map
    (fun (r : Rule.t) ->
      match Config.severity_for config r with
      | None -> []
      | Some severity ->
          List.map
            (fun (d : Rule.draft) ->
              {
                Finding.code = r.Rule.code;
                severity;
                message = d.Rule.message;
                device = d.Rule.device;
                net = d.Rule.net;
              })
            (r.Rule.check ctx))
    Rules.all
