open Ace_netlist

(* Exact-name rail lookup with a case-insensitive fallback, so a chip
   labelling its rails "Vdd"/"vdd" still gets the rail-dependent checks. *)
let find_rail circuit name =
  match Circuit.find_net circuit name with
  | i -> Some i
  | exception Not_found ->
      let target = String.lowercase_ascii name in
      let found = ref None in
      Array.iteri
        (fun i (n : Circuit.net) ->
          if
            !found = None
            && List.exists
                 (fun s -> String.lowercase_ascii s = target)
                 n.names
          then found := Some i)
        circuit.Circuit.nets;
      !found

let context ?(config = Config.default) ?(vdd = "VDD") ?(gnd = "GND") circuit =
  {
    Rule.circuit;
    vdd = find_rail circuit vdd;
    gnd = find_rail circuit gnd;
    vdd_name = vdd;
    gnd_name = gnd;
    lambda = config.Config.lambda;
    max_fanout = config.Config.max_fanout;
    max_pass_depth = config.Config.max_pass_depth;
  }

let run ?(config = Config.default) ?vdd ?gnd circuit =
  let ctx = context ~config ?vdd ?gnd circuit in
  List.concat_map
    (fun (r : Rule.t) ->
      match Config.severity_for config r with
      | None -> []
      | Some severity ->
          List.map
            (fun (d : Rule.draft) ->
              {
                Finding.code = r.Rule.code;
                severity;
                message = d.Rule.message;
                device = d.Rule.device;
                net = d.Rule.net;
              })
            (r.Rule.check ctx))
    Rules.all
