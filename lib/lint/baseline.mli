(** Waiver baselines: a persisted set of finding fingerprints.

    A baseline records the fingerprints of every finding present at some
    accepted point in time ([acecheck --write-baseline]); later runs load
    it ([--baseline]) and suppress exactly those findings, so CI fails only
    on {e new} problems.  The on-disk format is a small JSON document
    ([{"version":1,"tool":"acecheck","fingerprints":[…]}]); the reader
    ignores unknown keys. *)

type t

val empty : t
val mem : t -> string -> bool
val of_fingerprints : string list -> t

(** Sorted, deduplicated. *)
val fingerprints : t -> string list

val size : t -> int
val to_json : t -> string
val of_json : string -> (t, string) result

(** Read/write a baseline file; [Error] carries a printable message. *)
val load : string -> (t, string) result

val save : string -> t -> unit
