open Ace_netlist

(** Lint findings — one reported problem from one rule.

    A finding carries the rule's stable code, the (possibly
    config-overridden) severity it was reported at, a human message, and
    the device/net it is anchored to.  Findings are pure data; rendering
    (text, JSON, SARIF) goes through {!to_diag} and {!Ace_diag}. *)

type severity = Error | Warning | Info

val severity_to_string : severity -> string

(** Accepts ["error"], ["warn"]/["warning"], ["info"]/["note"]/["hint"]. *)
val severity_of_string : string -> severity option

(** SARIF 2.1.0 result level: error / warning / note. *)
val sarif_level : severity -> string

type t = {
  code : string;  (** stable rule identifier, kebab-case *)
  severity : severity;
  message : string;  (** without the device/net suffix *)
  device : int option;  (** index into the circuit's device array *)
  net : int option;  (** index into the circuit's net array *)
}

(** Counts by severity: (errors, warnings, infos). *)
val summarize : t list -> int * int * int

(** ["error[ratio]: … (device D3) (net OUT)"]. *)
val to_string : Circuit.t -> t -> string

(** Convert to a structured diagnostic (severity [Info] maps to
    {!Ace_diag.Diag.Hint}); the device/net context is folded into the
    message. *)
val to_diag : Circuit.t -> t -> Ace_diag.Diag.t

(** Stable identity for waiver baselines: a 64-bit FNV-1a hash of the rule
    code plus the flagged device's type and layout location and the flagged
    net's first user name (or location).  Deliberately excludes array
    indices and message text so fingerprints survive re-extraction and
    message rewording. *)
val fingerprint : Circuit.t -> t -> string
