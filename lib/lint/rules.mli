open Ace_netlist

(** The built-in electrical rule registry.

    The original {!Ace_analysis.Static_check} battery (ACE §1's ratio
    / malformed-transistor / stuck-signal checker) ported to the registry,
    plus the pass-network, fan-out, sneak-path, superbuffer, labelling and
    λ-grid analyses.  Every rule has a stable kebab-case code; severities
    and enablement are decided by {!Config}, not here. *)

(** Channel-graph reachability from seed nets (source/drain edges conduct,
    gates do not).  Nets in [stop] are marked when touched but never
    expanded — a power rail is a fixed potential, not a conductor to pass
    through, so rail-origin searches stop at the opposite rail.  Exposed
    for reuse by downstream analyses. *)
val reachable : ?stop:int list -> Circuit.t -> int list -> bool array

(** All registered rules, in reporting order. *)
val all : Rule.t list

val find : string -> Rule.t option
