open Ace_geom
open Ace_tech
open Ace_netlist
module Trace = Ace_trace.Trace

type source = {
  peek : unit -> int option;
  pop : int -> (Layer.t * Box.t) list;
}

let source_of_stream ?(cancel = Cancel.never) stream =
  {
    peek = (fun () -> Ace_cif.Stream.peek_top stream);
    pop =
      (fun y ->
        (* checkpoint at the Stream.pop hot site: a pop can expand an
           arbitrarily deep symbol subtree, so deadline trips must be
           noticed before the next batch is pulled *)
        Cancel.check cancel;
        Ace_cif.Stream.pop_at stream y);
  }

let source_of_boxes boxes =
  let arr = Array.of_list (List.mapi (fun i b -> (i, b)) boxes) in
  (* Stable order: descending top, input order at equal tops — the same
     FIFO discipline as Stream's heap, so a re-sorted source pops
     deterministically (Array.sort alone is unstable). *)
  Array.sort
    (fun (i, (_, (a : Box.t))) (j, (_, (b : Box.t))) ->
      match Int.compare b.t a.t with 0 -> Int.compare i j | c -> c)
    arr;
  let box i = snd arr.(i) in
  let idx = ref 0 in
  {
    peek =
      (fun () ->
        if !idx < Array.length arr then Some (snd (box !idx)).Box.t else None);
    pop =
      (fun y ->
        let acc = ref [] in
        while !idx < Array.length arr && (snd (box !idx)).Box.t = y do
          acc := box !idx :: !acc;
          incr idx
        done;
        List.rev !acc);
  }

(* Clip a sorted source to [window] without materializing it.  A clipped
   top is [min t window.t] — monotone in [t] — so descending-top order is
   preserved by clipping; the only regrouping needed is pooling every stop
   at or above the window top into one stop exactly at [window.t].  That
   pool holds just the clipped survivors crossing the window's top edge
   (the scanline population there), so peak memory stays proportional to
   the strip, never to the whole window contents.  Below the window top,
   stops pass through unchanged (clipping does not move those tops), and
   once the underlying source peeks at or below the window bottom we stop
   pulling from it entirely — boxes wholly below the window are never even
   expanded. *)
let source_clipped source ~window:(w : Box.t) =
  let top_pool = ref [] in
  let pooled = ref false in
  let fill () =
    if not !pooled then begin
      let rec go acc =
        match source.peek () with
        | Some y when y >= w.Box.t ->
            let survivors =
              List.filter_map
                (fun (lyr, bx) ->
                  match Box.clip bx ~window:w with
                  | Some c -> Some (lyr, c)
                  | None -> None)
                (source.pop y)
            in
            go (List.rev_append survivors acc)
        | _ -> List.rev acc
      in
      top_pool := go [];
      pooled := true
    end
  in
  let peek () =
    fill ();
    if !top_pool <> [] then Some w.Box.t
    else
      match source.peek () with Some y when y > w.Box.b -> Some y | _ -> None
  in
  let pop y =
    fill ();
    if y >= w.Box.t then begin
      let boxes = !top_pool in
      top_pool := [];
      boxes
    end
    else if y <= w.Box.b then []
    else
      List.filter_map
        (fun (lyr, bx) ->
          match Box.clip bx ~window:w with
          | Some c -> Some (lyr, c)
          | None -> None)
        (source.pop y)
  in
  { peek; pop }

(* Edge-side codes for contact tie-breaking: the adjacent net lies below
   (0) / above (1) the channel across a horizontal edge, or left (2) /
   right (3) across a vertical one.  Together with the edge's minimal
   position this identifies a unique edge segment, giving every extractor
   the same deterministic source/drain choice on tied lengths. *)
let side_below = 0
let side_above = 1
let side_left = 2
let side_right = 3

let edge_key_less (p1, s1) (p2, s2) =
  let c = Point.compare_yx p1 p2 in
  c < 0 || (c = 0 && s1 < s2)

type face = West | East | South | North

type boundary_span = {
  bface : face;
  bspan : Interval.span;
  blayer : Layer.t;
  bnet : int;
}

type boundary_channel = { cface : face; cspan : Interval.span; cdev : int }

type config = { emit_geometry : bool; window : Box.t option }

let default_config = { emit_geometry = false; window = None }

type device_data = {
  area : int;
  implant_area : int;
  bbox : Box.t;
  gate : int;
  contacts : (int * int * Point.t * int) list;
  channel_geometry : Box.t list;
  touches_boundary : bool;
}

type raw = {
  nets : Union_find.t;
  net_names : (int * string) list;
  net_locations : (int, Point.t) Hashtbl.t;
  net_phase : (int, int) Hashtbl.t;
  net_geometry : (int, (Layer.t * Box.t) list) Hashtbl.t;
  devices : (int * device_data) list;
  boundary_nets : boundary_span list;
  boundary_channels : boundary_channel list;
  warnings : string list;
  stops : int;
  max_active : int;
  timing : Timing.t;
}

(* The per-layer active list: every box currently intersecting the
   scanline, kept sorted by left edge.  Stored as a reusable arena of
   three parallel int arrays (left, right, bottom) — an active box spans
   [al.(i), ar.(i)) in x and persists until the scanline reaches
   [ab.(i)].  The arena is compacted in place as boxes expire and merged
   in place as newcomers arrive, so steady-state scanning allocates no
   cons cell per box (the paper's insertion sort of step 2.a/2.b over
   flat storage). *)
type arena = {
  mutable aal : int array;
  mutable aar : int array;
  mutable aab : int array;
  mutable alen : int;
}

let arena_create () =
  { aal = Array.make 16 0; aar = Array.make 16 0; aab = Array.make 16 0; alen = 0 }

let arena_reserve a extra =
  let need = a.alen + extra in
  if need > Array.length a.aal then begin
    let cap = max need (2 * Array.length a.aal) in
    let grow src =
      let dst = Array.make cap 0 in
      Array.blit src 0 dst 0 a.alen;
      dst
    in
    a.aal <- grow a.aal;
    a.aar <- grow a.aar;
    a.aab <- grow a.aab
  end

let arena_push a l r b =
  arena_reserve a 1;
  let i = a.alen in
  a.aal.(i) <- l;
  a.aar.(i) <- r;
  a.aab.(i) <- b;
  a.alen <- i + 1

(* Drop every box whose bottom edge is at or above the scanline: stable
   in-place compaction, nothing moves when nothing expires. *)
let arena_expire a y_top =
  let w = ref 0 in
  for i = 0 to a.alen - 1 do
    if a.aab.(i) < y_top then begin
      if !w < i then begin
        a.aal.(!w) <- a.aal.(i);
        a.aar.(!w) <- a.aar.(i);
        a.aab.(!w) <- a.aab.(i)
      end;
      incr w
    end
  done;
  a.alen <- !w

(* In-place quicksort by left edge (insertion sort under 12 elements).
   Equal-left order is irrelevant: the arena is only read back as merged
   intervals. *)
let arena_sort a =
  let swap i j =
    let tl = a.aal.(i) and tr = a.aar.(i) and tb = a.aab.(i) in
    a.aal.(i) <- a.aal.(j);
    a.aar.(i) <- a.aar.(j);
    a.aab.(i) <- a.aab.(j);
    a.aal.(j) <- tl;
    a.aar.(j) <- tr;
    a.aab.(j) <- tb
  in
  let rec sort lo hi =
    if hi - lo < 12 then
      for i = lo + 1 to hi do
        let l = a.aal.(i) and r = a.aar.(i) and b = a.aab.(i) in
        let j = ref (i - 1) in
        while !j >= lo && a.aal.(!j) > l do
          a.aal.(!j + 1) <- a.aal.(!j);
          a.aar.(!j + 1) <- a.aar.(!j);
          a.aab.(!j + 1) <- a.aab.(!j);
          decr j
        done;
        a.aal.(!j + 1) <- l;
        a.aar.(!j + 1) <- r;
        a.aab.(!j + 1) <- b
      done
    else begin
      let mid = lo + ((hi - lo) / 2) in
      (* median-of-three pivot to the middle *)
      if a.aal.(mid) < a.aal.(lo) then swap mid lo;
      if a.aal.(hi) < a.aal.(lo) then swap hi lo;
      if a.aal.(hi) < a.aal.(mid) then swap hi mid;
      let pivot = a.aal.(mid) in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while a.aal.(!i) < pivot do incr i done;
        while a.aal.(!j) > pivot do decr j done;
        if !i <= !j then begin
          if !i < !j then swap !i !j;
          incr i;
          decr j
        end
      done;
      sort lo !j;
      sort !i hi
    end
  in
  if a.alen > 1 then sort 0 (a.alen - 1)

(* Merge a sorted newcomer batch into the sorted arena, in place from the
   back (the classic backward two-way merge, no temporary storage). *)
let arena_merge a nb =
  arena_reserve a nb.alen;
  let i = ref (a.alen - 1) and j = ref (nb.alen - 1) in
  let k = ref (a.alen + nb.alen - 1) in
  while !j >= 0 do
    if !i >= 0 && a.aal.(!i) > nb.aal.(!j) then begin
      a.aal.(!k) <- a.aal.(!i);
      a.aar.(!k) <- a.aar.(!i);
      a.aab.(!k) <- a.aab.(!i);
      decr i
    end
    else begin
      a.aal.(!k) <- nb.aal.(!j);
      a.aar.(!k) <- nb.aar.(!j);
      a.aab.(!k) <- nb.aab.(!j);
      decr j
    end;
    decr k
  done;
  a.alen <- a.alen + nb.alen

(* Merged x-intervals of an arena, written into a reusable flat vector:
   one pass over the sorted boxes, coalescing overlapping or abutting
   spans and dropping degenerate ones — [Interval.of_spans] minus its
   sort, minus its allocation. *)
let ivec_of_arena dst a =
  Ivec.clear dst;
  if a.alen > 0 then begin
    let lo = ref a.aal.(0) and hi = ref a.aar.(0) in
    for i = 1 to a.alen - 1 do
      let l = a.aal.(i) and r = a.aar.(i) in
      if l <= !hi then begin
        if r > !hi then hi := r
      end
      else begin
        if !lo < !hi then Ivec.push dst !lo !hi;
        lo := l;
        hi := r
      end
    done;
    if !lo < !hi then Ivec.push dst !lo !hi
  end

(* First tagged span containing [x], scanning left to right. *)
let find_net_at (v : Ivec.tagged) x =
  let rec go i =
    if i >= v.Ivec.tlen then None
    else if v.Ivec.tlo.(i) <= x && x < v.Ivec.thi.(i) then
      Some v.Ivec.ttag.(i)
    else go (i + 1)
  in
  go 0

let run ?(cancel = Cancel.never) config source ~labels =
  Trace.with_span "engine.run" @@ fun () ->
  (* In window mode, clip lazily: tops at or above the window top pool
     into one stop at [w.t]; every other stop keeps its y, so the stream
     stays sorted without draining the design into a list (the paper's
     streaming invariant — peak heap stays proportional to the scanline,
     not to the window contents). *)
  let source =
    match config.window with
    | None -> source
    | Some w -> source_clipped source ~window:w
  in
  let timing = Timing.create () in
  let nets = Union_find.create () in
  let dev_uf = Union_find.create () in
  let net_names = ref [] in
  let net_locations = Hashtbl.create 256 in
  let net_phase = Hashtbl.create 256 in
  let net_geometry = Hashtbl.create 256 in
  let warnings = ref [] in
  let warn fmt = Format.kasprintf (fun m -> warnings := m :: !warnings) fmt in
  (* per device element accumulators *)
  let dev_area : (int, int ref) Hashtbl.t = Hashtbl.create 64 in
  let dev_implant : (int, int ref) Hashtbl.t = Hashtbl.create 64 in
  let dev_bbox : (int, Box.t ref) Hashtbl.t = Hashtbl.create 64 in
  let dev_gates = ref [] in
  let dev_edges = ref [] in
  let dev_geometry : (int, Box.t list ref) Hashtbl.t = Hashtbl.create 64 in
  let dev_boundary : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let boundary_nets = ref [] in
  let boundary_channels = ref [] in
  let accumulate tbl key v =
    match Hashtbl.find_opt tbl key with
    | Some r -> r := !r + v
    | None -> Hashtbl.replace tbl key (ref v)
  in
  let grow_bbox key bx =
    match Hashtbl.find_opt dev_bbox key with
    | Some r -> r := Box.hull !r bx
    | None -> Hashtbl.replace dev_bbox key (ref bx)
  in
  let add_geometry tbl key item =
    match Hashtbl.find_opt tbl key with
    | Some r -> r := item :: !r
    | None -> Hashtbl.replace tbl key (ref [ item ])
  in
  let active = Array.init Layer.count (fun _ -> arena_create ()) in
  (* per-layer newcomer batches, reset between stops *)
  let incoming_scratch = Array.init Layer.count (fun _ -> arena_create ()) in
  (* The devices phase's working set: a fixed pool of flat interval
     vectors reused across every strip (Ivec), so the per-strip algebra
     allocates nothing in steady state.  The four tagged tracks are
     double-buffered — [assign] reads prev and writes cur, and the
     references swap at the end of the strip. *)
  let diff_raw = Ivec.create ()
  and poly_raw = Ivec.create ()
  and metal_raw = Ivec.create ()
  and cut_raw = Ivec.create ()
  and buried_raw = Ivec.create ()
  and implant_raw = Ivec.create () in
  let gate_overlap = Ivec.create ()
  and channel_all = Ivec.create ()
  and buried_contact = Ivec.create ()
  and diff_cond = Ivec.create () in
  let prev_diff = ref (Ivec.tagged_create ())
  and cur_diff = ref (Ivec.tagged_create ())
  and prev_poly = ref (Ivec.tagged_create ())
  and cur_poly = ref (Ivec.tagged_create ())
  and prev_metal = ref (Ivec.tagged_create ())
  and cur_metal = ref (Ivec.tagged_create ())
  and prev_chan = ref (Ivec.tagged_create ())
  and cur_chan = ref (Ivec.tagged_create ()) in
  let cut_bound = Ivec.tagged_create () in
  (* reusable id buffer for the via bridging rule *)
  let connect_buf = ref (Array.make 16 0) in
  let pending_labels = ref labels in
  let stops = ref 0 and max_active = ref 0 in
  let clip bx =
    match config.window with
    | None -> Some bx
    | Some w -> Box.clip bx ~window:w
  in
  (* The creation point is (span lo, top of the creating strip): the
     strip top at creation is always a transition edge of the net's own
     geometry (a clipped box top, or the bottom of the poly/buried box
     whose end exposed the span), never an unrelated global stop — so a
     window-mode scan over a tile records the same creation key as the
     flat scan.  The phase rank orders same-strip creations the way the
     assignment code below runs them; together (y desc, phase asc,
     x asc) is exactly element-creation order. *)
  let fresh_net ~phase lo y =
    let e = Union_find.fresh nets in
    Hashtbl.replace net_locations e (Point.make lo y);
    Hashtbl.replace net_phase e phase;
    e
  in
  let union_nets a b =
    let before = Union_find.class_count nets in
    ignore (Union_find.union nets a b);
    if Union_find.class_count nets < before then
      Trace.incr Trace.Counter.Net_merges
  in
  let fresh_dev _lo _hi = Union_find.fresh dev_uf in
  let union_devs a b = ignore (Union_find.union dev_uf a b) in

  let record_boundary_tracks strip_bottom strip_top tracks chan =
    match config.window with
    | None -> ()
    | Some w ->
        let yspan = { Interval.lo = strip_bottom; hi = strip_top } in
        let record_track layer tagged =
          (* The cut layer bridges conductors horizontally within a strip,
             never vertically, so its interface spans live on the vertical
             faces only. *)
          let horizontal_faces = not (Layer.equal layer Layer.Contact) in
          Ivec.iter_tagged tagged ~f:(fun lo hi id ->
              if lo = w.Box.l then
                boundary_nets :=
                  { bface = West; bspan = yspan; blayer = layer; bnet = id }
                  :: !boundary_nets;
              if hi = w.Box.r then
                boundary_nets :=
                  { bface = East; bspan = yspan; blayer = layer; bnet = id }
                  :: !boundary_nets;
              let s = { Interval.lo; hi } in
              if horizontal_faces && strip_top = w.Box.t then
                boundary_nets :=
                  { bface = North; bspan = s; blayer = layer; bnet = id }
                  :: !boundary_nets;
              if horizontal_faces && strip_bottom = w.Box.b then
                boundary_nets :=
                  { bface = South; bspan = s; blayer = layer; bnet = id }
                  :: !boundary_nets)
        in
        List.iter (fun (layer, tagged) -> record_track layer tagged) tracks;
        Ivec.iter_tagged chan ~f:(fun lo hi dev ->
            let mark face span =
              Hashtbl.replace dev_boundary dev ();
              boundary_channels :=
                { cface = face; cspan = span; cdev = dev } :: !boundary_channels
            in
            if lo = w.Box.l then mark West yspan;
            if hi = w.Box.r then mark East yspan;
            if strip_top = w.Box.t then mark North { Interval.lo; hi };
            if strip_bottom = w.Box.b then mark South { Interval.lo; hi })
  in

  let process_strip ~bottom ~top =
    let height = top - bottom in
    (* walking the active lists into merged strip intervals is the paper's
       "updating the data structures" work; device/net computation below is
       charged separately *)
    Timing.charge timing Timing.List_update (fun () ->
        let layer_intervals dst lyr =
          ivec_of_arena dst active.(Layer.index lyr)
        in
        layer_intervals diff_raw Layer.Diffusion;
        layer_intervals poly_raw Layer.Poly;
        layer_intervals metal_raw Layer.Metal;
        layer_intervals cut_raw Layer.Contact;
        layer_intervals buried_raw Layer.Buried;
        layer_intervals implant_raw Layer.Implant);
    Timing.charge timing Timing.Devices (fun () ->
        Ivec.inter_into ~dst:gate_overlap diff_raw poly_raw;
        Ivec.diff_into ~dst:channel_all gate_overlap buried_raw;
        Ivec.inter_into ~dst:buried_contact gate_overlap buried_raw;
        Ivec.diff_into ~dst:diff_cond diff_raw channel_all;
        (* net assignment by vertical overlap with the previous strip *)
        Ivec.assign ~prev:!prev_diff ~cur:diff_cond ~dst:!cur_diff
          ~fresh:(fun lo _ -> fresh_net ~phase:0 lo top)
          ~union:union_nets;
        Ivec.assign ~prev:!prev_poly ~cur:poly_raw ~dst:!cur_poly
          ~fresh:(fun lo _ -> fresh_net ~phase:1 lo top)
          ~union:union_nets;
        Ivec.assign ~prev:!prev_metal ~cur:metal_raw ~dst:!cur_metal
          ~fresh:(fun lo _ -> fresh_net ~phase:2 lo top)
          ~union:union_nets;
        Ivec.assign ~prev:!prev_chan ~cur:channel_all ~dst:!cur_chan
          ~fresh:fresh_dev ~union:union_devs;
        let new_diff = !cur_diff
        and new_poly = !cur_poly
        and new_metal = !cur_metal
        and new_chan = !cur_chan in
        (* channel contributions; the implant cursor rides along the
           ascending channel spans *)
        let ic = ref 0 in
        for k = 0 to new_chan.Ivec.tlen - 1 do
          let lo = new_chan.Ivec.tlo.(k)
          and hi = new_chan.Ivec.thi.(k)
          and dev = new_chan.Ivec.ttag.(k) in
          accumulate dev_area dev ((hi - lo) * height);
          while
            !ic < implant_raw.Ivec.len && implant_raw.Ivec.hi.(!ic) <= lo
          do
            incr ic
          done;
          let over = ref 0 and j = ref !ic in
          while !j < implant_raw.Ivec.len && implant_raw.Ivec.lo.(!j) < hi do
            over :=
              !over
              + min hi implant_raw.Ivec.hi.(!j)
              - max lo implant_raw.Ivec.lo.(!j);
            incr j
          done;
          if !over > 0 then accumulate dev_implant dev (!over * height);
          grow_bbox dev (Box.make ~l:lo ~b:bottom ~r:hi ~t:top);
          if config.emit_geometry then
            add_geometry dev_geometry dev (Box.make ~l:lo ~b:bottom ~r:hi ~t:top)
        done;
        (* gate nets: the poly interval covering each channel interval *)
        Ivec.iter_tagged_overlaps new_chan new_poly
          ~f:(fun dev poly_net _len _lo ->
            dev_gates := (dev, poly_net) :: !dev_gates);
        (* same-strip source/drain contacts: vertical edges where channel and
           conducting diffusion abut *)
        let rec adjacency ci di =
          if ci < new_chan.Ivec.tlen && di < new_diff.Ivec.tlen then begin
            let clo = new_chan.Ivec.tlo.(ci)
            and chi = new_chan.Ivec.thi.(ci)
            and dev = new_chan.Ivec.ttag.(ci) in
            let dlo = new_diff.Ivec.tlo.(di)
            and dhi = new_diff.Ivec.thi.(di)
            and net = new_diff.Ivec.ttag.(di) in
            if dhi <= clo then begin
              if dhi = clo then
                dev_edges :=
                  (dev, net, height, Point.make clo bottom, side_left)
                  :: !dev_edges;
              adjacency ci (di + 1)
            end
            else begin
              (* disjoint tracks: here dlo >= chi *)
              if dlo = chi then
                dev_edges :=
                  (dev, net, height, Point.make chi bottom, side_right)
                  :: !dev_edges;
              adjacency (ci + 1) di
            end
          end
        in
        adjacency 0 0;
        (* cross-strip source/drain contacts along the strip boundary *)
        Ivec.iter_tagged_overlaps new_chan !prev_diff ~f:(fun dev net len lo ->
            dev_edges :=
              (dev, net, len, Point.make lo top, side_above) :: !dev_edges);
        Ivec.iter_tagged_overlaps !prev_chan new_diff ~f:(fun dev net len lo ->
            dev_edges :=
              (dev, net, len, Point.make lo top, side_below) :: !dev_edges);
        (* contact cuts connect metal/poly/diffusion; buried contacts connect
           poly and diffusion.  Each track keeps a cursor that only advances
           (vias ascend), so a strip's bridging is linear overall; the ids
           under one via are collected into a reusable buffer and unioned in
           the same order the list walk used (last-found first). *)
        let connect_through (vias : Ivec.t) (tracks : Ivec.tagged array) =
          let cursors = Array.make (Array.length tracks) 0 in
          for v = 0 to vias.Ivec.len - 1 do
            let vlo = vias.Ivec.lo.(v) and vhi = vias.Ivec.hi.(v) in
            let count = ref 0 in
            Array.iteri
              (fun ti (t : Ivec.tagged) ->
                let c = ref cursors.(ti) in
                while !c < t.Ivec.tlen && t.Ivec.thi.(!c) <= vlo do incr c done;
                cursors.(ti) <- !c;
                let j = ref !c in
                while !j < t.Ivec.tlen && t.Ivec.tlo.(!j) < vhi do
                  if !count = Array.length !connect_buf then begin
                    let b = Array.make (2 * !count) 0 in
                    Array.blit !connect_buf 0 b 0 !count;
                    connect_buf := b
                  end;
                  !connect_buf.(!count) <- t.Ivec.ttag.(!j);
                  incr count;
                  incr j
                done)
              tracks;
            if !count >= 2 then begin
              let buf = !connect_buf in
              let first = buf.(!count - 1) in
              for k = !count - 2 downto 0 do
                union_nets first buf.(k)
              done
            end
          done
        in
        connect_through cut_raw [| new_metal; new_poly; new_diff |];
        connect_through buried_contact [| new_poly; new_diff |];
        (* net geometry *)
        if config.emit_geometry then begin
          let record layer tagged =
            Ivec.iter_tagged tagged ~f:(fun lo hi net ->
                add_geometry net_geometry net
                  (layer, Box.make ~l:lo ~b:bottom ~r:hi ~t:top))
          in
          record Layer.Diffusion new_diff;
          record Layer.Poly new_poly;
          record Layer.Metal new_metal
        end;
        (* labels falling inside this strip *)
        let rec bind_labels () =
          match !pending_labels with
          | (lab : Ace_cif.Design.label) :: rest
            when lab.position.Point.y >= bottom && lab.position.Point.y < top ->
              pending_labels := rest;
              let x = lab.position.Point.x in
              let tracks =
                match lab.layer with
                | Some Layer.Metal -> [ new_metal ]
                | Some Layer.Poly -> [ new_poly ]
                | Some Layer.Diffusion -> [ new_diff ]
                | Some (Layer.Contact | Layer.Implant | Layer.Buried | Layer.Glass)
                | None ->
                    [ new_metal; new_poly; new_diff ]
              in
              (match List.find_map (fun t -> find_net_at t x) tracks with
              | Some net -> net_names := (net, lab.name) :: !net_names
              | None ->
                  warn "label %S at (%d,%d) touches no conducting geometry" lab.name
                    lab.position.Point.x lab.position.Point.y);
              bind_labels ()
          | (lab : Ace_cif.Design.label) :: rest when lab.position.Point.y >= top ->
              (* above every strip we will ever process: report once *)
              pending_labels := rest;
              warn "label %S at (%d,%d) lies above all geometry" lab.name
                lab.position.Point.x lab.position.Point.y;
              bind_labels ()
          | _ -> ()
        in
        bind_labels ();
        (* The interface must also carry contact-cut bridges: a cut piece
           abutting the window boundary can merge with a neighbouring
           window's piece into one interval whose per-strip rule bridges
           conductors across the seam.  Each boundary cut interval is
           tagged with the net class it bridges in this strip (all its
           overlapping conductors are already unioned).  A piece touching
           no conductor here is NOT represented: a phantom element would
           persist across this window's (coarser) strips and transitively
           union neighbour nets that the flat extractor keeps apart.  The
           only construction such a piece could legitimately bridge — a
           cut spanning three windows with nothing under its middle third —
           cannot arise, because guillotine cuts never pass through the
           interior of a merged cut extent. *)
        Ivec.tagged_clear cut_bound;
        if config.window <> None then begin
          let conductors = [| new_metal; new_poly; new_diff |] in
          let cursors = Array.make (Array.length conductors) 0 in
          for v = 0 to cut_raw.Ivec.len - 1 do
            let vlo = cut_raw.Ivec.lo.(v) and vhi = cut_raw.Ivec.hi.(v) in
            let found = ref (-1) in
            Array.iteri
              (fun ti (t : Ivec.tagged) ->
                if !found < 0 then begin
                  let c = ref cursors.(ti) in
                  while !c < t.Ivec.tlen && t.Ivec.thi.(!c) <= vlo do
                    incr c
                  done;
                  cursors.(ti) <- !c;
                  if !c < t.Ivec.tlen && t.Ivec.tlo.(!c) < vhi then
                    found := t.Ivec.ttag.(!c)
                end)
              conductors;
            if !found >= 0 then Ivec.tagged_push cut_bound vlo vhi !found
          done
        end;
        record_boundary_tracks bottom top
          [
            (Layer.Diffusion, new_diff);
            (Layer.Poly, new_poly);
            (Layer.Metal, new_metal);
            (Layer.Contact, cut_bound);
          ]
          new_chan;
        let swap a b =
          let t = !a in
          a := !b;
          b := t
        in
        swap prev_diff cur_diff;
        swap prev_poly cur_poly;
        swap prev_metal cur_metal;
        swap prev_chan cur_chan)
  in

  let count_active () =
    Array.fold_left (fun acc a -> acc + a.alen) 0 active
  in
  let rec loop y_top =
    (* the per-stop cancellation checkpoint: one atomic load when the
       token is inert, a clock read when a deadline is armed *)
    Cancel.check cancel;
    incr stops;
    Timing.charge timing Timing.List_update (fun () ->
        for i = 0 to Layer.count - 1 do
          arena_expire active.(i) y_top
        done);
    let incoming = Timing.charge timing Timing.Front_end (fun () -> source.pop y_top) in
    Timing.charge timing Timing.List_update (fun () ->
        for i = 0 to Layer.count - 1 do
          incoming_scratch.(i).alen <- 0
        done;
        List.iter
          (fun (lyr, bx) ->
            match clip bx with
            | None -> ()
            | Some (bx : Box.t) ->
                if bx.t = y_top then
                  arena_push incoming_scratch.(Layer.index lyr) bx.l bx.r bx.b)
          incoming;
        for i = 0 to Layer.count - 1 do
          let batch = incoming_scratch.(i) in
          if batch.alen > 0 then begin
            Trace.count Trace.Counter.Active_merges batch.alen;
            arena_sort batch;
            arena_merge active.(i) batch
          end
        done);
    max_active := max !max_active (count_active ());
    let next_peek = Timing.charge timing Timing.Front_end source.peek in
    let max_bottom =
      Array.fold_left
        (fun acc (a : arena) ->
          let acc = ref acc in
          for i = 0 to a.alen - 1 do
            match !acc with
            | None -> acc := Some a.aab.(i)
            | Some m -> if a.aab.(i) > m then acc := Some a.aab.(i)
          done;
          !acc)
        None active
    in
    let next_y =
      match (next_peek, max_bottom) with
      | None, None -> None
      | Some y, None | None, Some y -> Some y
      | Some a, Some b -> Some (max a b)
    in
    match next_y with
    | None -> ()
    | Some next_y ->
        process_strip ~bottom:next_y ~top:y_top;
        loop next_y
  in
  (match Timing.charge timing Timing.Front_end source.peek with
  | None -> ()
  | Some y0 -> loop y0);
  List.iter
    (fun (lab : Ace_cif.Design.label) ->
      warn "label %S at (%d,%d) lies below all geometry" lab.name
        lab.position.Point.x lab.position.Point.y)
    !pending_labels;
  (* fold per-element device data by device-class root *)
  let devices =
    Timing.charge timing Timing.Output (fun () ->
        let by_root : (int, device_data ref) Hashtbl.t = Hashtbl.create 64 in
        Hashtbl.iter
          (fun elem area ->
            let root = Union_find.find dev_uf elem in
            let implant =
              match Hashtbl.find_opt dev_implant elem with
              | Some r -> !r
              | None -> 0
            in
            let bbox =
              match Hashtbl.find_opt dev_bbox elem with
              | Some r -> !r
              | None -> assert false
            in
            let geometry =
              match Hashtbl.find_opt dev_geometry elem with
              | Some r -> !r
              | None -> []
            in
            let touches = Hashtbl.mem dev_boundary elem in
            match Hashtbl.find_opt by_root root with
            | Some r ->
                r :=
                  {
                    !r with
                    area = !r.area + !area;
                    implant_area = !r.implant_area + implant;
                    bbox = Box.hull !r.bbox bbox;
                    channel_geometry = geometry @ !r.channel_geometry;
                    touches_boundary = !r.touches_boundary || touches;
                  }
            | None ->
                Hashtbl.replace by_root root
                  (ref
                     {
                       area = !area;
                       implant_area = implant;
                       bbox;
                       gate = -1;
                       contacts = [];
                       channel_geometry = geometry;
                       touches_boundary = touches;
                     }))
          dev_area;
        List.iter
          (fun (dev, gate_elem) ->
            let root = Union_find.find dev_uf dev in
            match Hashtbl.find_opt by_root root with
            | Some r -> if !r.gate < 0 then r := { !r with gate = gate_elem }
            | None -> ())
          !dev_gates;
        (* aggregate edge contacts per (device root, net root); keep the
           minimal edge position for deterministic terminal tie-breaks *)
        let contact_len : (int * int, (int * (Point.t * int)) ref) Hashtbl.t =
          Hashtbl.create 64
        in
        List.iter
          (fun (dev, net, len, pos, side) ->
            let key = (Union_find.find dev_uf dev, Union_find.find nets net) in
            match Hashtbl.find_opt contact_len key with
            | Some r ->
                let total, best = !r in
                r :=
                  ( total + len,
                    if edge_key_less (pos, side) best then (pos, side) else best )
            | None -> Hashtbl.replace contact_len key (ref (len, (pos, side))))
          !dev_edges;
        Hashtbl.iter
          (fun (dev_root, net_root) r ->
            let len, (pos, side) = !r in
            match Hashtbl.find_opt by_root dev_root with
            | Some d ->
                d := { !d with contacts = (net_root, len, pos, side) :: !d.contacts }
            | None -> ())
          contact_len;
        Hashtbl.fold (fun root r acc -> (root, !r) :: acc) by_root [])
  in
  Trace.count Trace.Counter.Transistors (List.length devices);
  {
    nets;
    net_names = !net_names;
    net_locations;
    net_phase;
    net_geometry =
      (let tbl = Hashtbl.create 64 in
       Hashtbl.iter (fun k r -> Hashtbl.replace tbl k !r) net_geometry;
       tbl);
    devices;
    boundary_nets = !boundary_nets;
    boundary_channels =
      (* resolve element ids to the device roots used by [devices] *)
      List.map
        (fun bc -> { bc with cdev = Union_find.find dev_uf bc.cdev })
        !boundary_channels;
    warnings = List.rev !warnings;
    stops = !stops;
    max_active = !max_active;
    timing;
  }
