open Ace_geom
open Ace_tech
open Ace_netlist

(** Extracted window fragments and the compose routine (HEXT §3 back-end).

    A fragment is the circuit of one (origin-normalized) window: a
    {!Ace_netlist.Hier.part} holding its completed transistors and child
    references, plus the compose-facing summary — the {e interface}
    (conducting-layer boundary crossings with their local net ids) and the
    {e partial transistors} whose channels touch the boundary.

    [compose] merges two abutting fragments: it unifies nets across
    touching boundary spans, knits partial-transistor pieces (summing
    channel area and edge contacts, adding the source/drain contact that
    lies exactly on the seam), completes partials that no longer touch any
    open face, and builds the composed part — which stores only {e
    references} to its children plus net equivalences, never a copy
    (paper: "the resulting new window … simply stores pointers").  Its
    cost is proportional to the two interfaces, not to the children's
    contents — the property behind HEXT's O(√N) ideal-array behaviour.

    This module lives in [Ace_core] (not [Ace_hext]) so that both the
    hierarchical extractor and the domain-parallel sharded extractor
    ({!Parallel}) can stitch window wirelists with the same code;
    [Ace_hext.Fragment] re-exports it. *)

type partial = {
  p_area : int;
  p_implant : int;
  p_bbox : Box.t;  (** fragment-local *)
  p_gate : int;  (** local net *)
  p_contacts : (int * int * Point.t * int) list;
      (** (local net, edge length, minimal edge position in fragment
          coordinates, edge side) — used for deterministic terminal
          tie-breaks *)
  p_spans : (Engine.face * Interval.span) list;
      (** open boundary crossings, fragment-local *)
}

type iface_span = {
  face : Engine.face;
  span : Interval.span;
  layer : Layer.t;
  net : int;  (** local net *)
}

type t = {
  id : int;
  width : int;
  height : int;
  part : Hier.part;
  iface : iface_span list;
  partials : partial list;
}

(** Build a leaf fragment from an {e already computed} window-mode engine
    result for [window].  This is the piece {!leaf} and the parallel
    extractor share: the caller keeps control of how the engine ran (own
    source, own timing) and this routine turns boundary crossings into the
    fragment interface.  [next_id] names the part ("W<id>"). *)
val leaf_of_raw : next_id:int -> window:Box.t -> Engine.raw -> t

(** Build a leaf fragment by running the scanline engine over a window's
    geometry (window mode).  [next_id] names the part ("W<id>"). *)
val leaf :
  next_id:int ->
  window:Box.t ->
  boxes:(Layer.t * Box.t) list ->
  labels:Ace_cif.Design.label list ->
  t

(** [compose ~next_id a b ~offset] — [b] placed at [offset] from [a]'s
    origin; requires a guillotine adjacency: either [offset = (a.width, 0)]
    with equal heights, or [offset = (0, a.height)] with equal widths. *)
val compose : next_id:int -> t -> t -> offset:Point.t -> t

(** Wrap the root fragment, force-completing any partials still open at
    the chip boundary; returns the top part. *)
val finalize : next_id:int -> t -> Hier.part
