(** Cooperative cancellation tokens for long-running pipeline work.

    A token is either manual (tripped by {!cancel}, e.g. a client hanging
    up) or deadline-based (tripped when the monotonic clock passes a
    point fixed at creation).  Hot loops call {!check} at their natural
    checkpoints — scanline stops in {!Engine.run}, stream pops, solver
    iterations — and the token raises {!Cancelled} once tripped; the
    exception unwinds through [Fun.protect] finalizers, so spans close
    and worker domains are still joined.

    Tokens are safe to share across domains: the flag is an [Atomic.t]
    and the deadline is immutable.  {!never} never trips and costs one
    atomic load per {!check}, so threading it through by default is
    free. *)

type t

exception Cancelled of string
(** The payload is the reason slug: ["deadline-exceeded"] for deadline
    trips, the {!cancel} reason (default ["cancelled"]) otherwise.  The
    slugs double as wire-protocol error codes. *)

val never : t
(** A token that never trips. *)

val create : unit -> t
(** A manual token, tripped only by {!cancel}. *)

val with_deadline_ms : int -> t
(** A token that trips once the given number of milliseconds has elapsed
    on the monotonic clock ({!Ace_trace.Trace.now_ns}); immune to
    wall-clock steps.  A non-positive budget is already expired. *)

val cancel : ?reason:string -> t -> unit
(** Trip the token manually.  Idempotent; the first reason wins. *)

val is_cancelled : t -> bool
(** Has the token tripped (flag set, or deadline passed)?  Reads the
    clock only when a deadline is armed. *)

val check : t -> unit
(** Raise {!Cancelled} if the token has tripped, else return. *)

val reason : t -> string option
(** The trip reason, once tripped. *)

val remaining_ms : t -> int option
(** Milliseconds left until the deadline ([Some 0] when expired);
    [None] for tokens without one. *)
