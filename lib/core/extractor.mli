open Ace_geom
open Ace_tech
open Ace_netlist

(** ACE — the flat edge-based circuit extractor (public entry points).

    [extract] runs the full pipeline of the paper: the lazy front-end
    ({!Ace_cif.Stream}) feeds sorted geometry to the scanline back-end
    ({!Engine}), and the raw result is resolved into a {!Circuit.t}
    wirelist.  Transistor sizing follows ACE §3: the width is the mean of
    the source-edge and drain-edge contact lengths, the length is the
    channel area divided by the width. *)

type stats = {
  boxes : int;  (** primitive boxes processed (the papers' N) *)
  stops : int;  (** scanline stops *)
  max_active : int;  (** peak scanline population *)
  timing : Timing.t;
  warnings : Ace_diag.Diag.t list;
      (** scanline anomalies, as structured diagnostics (code
          ["extract-anomaly"], no source span) *)
}

(** Extract a parsed-and-checked design.  [emit_geometry] populates per-net
    and per-device geometry (the paper's user option, default off).  [name]
    is the wirelist part name.  [cancel] is checked at every stream pop
    and scanline stop; a tripped token raises {!Cancel.Cancelled}. *)
val extract :
  ?cancel:Cancel.t ->
  ?emit_geometry:bool ->
  ?name:string ->
  Ace_cif.Design.t ->
  Circuit.t

(** Same, returning run statistics alongside. *)
val extract_with_stats :
  ?cancel:Cancel.t ->
  ?emit_geometry:bool ->
  ?name:string ->
  Ace_cif.Design.t ->
  Circuit.t * stats

(** Extract a pre-flattened box list (used by tests and by HEXT's window
    back-end; bypasses the lazy front-end). *)
val extract_boxes :
  ?emit_geometry:bool ->
  ?name:string ->
  ?labels:Ace_cif.Design.label list ->
  (Layer.t * Box.t) list ->
  Circuit.t

(** Resolve an {!Engine.raw} result into a circuit.  Exposed for HEXT.
    [include_partial] keeps boundary-touching channels as devices (flat
    extraction wants [true]; HEXT separates them). *)
val circuit_of_raw :
  name:string -> include_partial:bool -> Engine.raw -> Circuit.t

(** Parse, check and extract a CIF string in one step. *)
val extract_cif_string : ?emit_geometry:bool -> ?name:string -> string -> Circuit.t

(** The transistor sizing rule of ACE §3, shared with HEXT's partial-device
    completion: terminals are the two largest edge contacts, W is their
    mean, L is area/W; length ties are broken by the contact edge's
    geometric position so every extractor picks the same terminals.
    Returns (source, drain, width, length); a device with a single
    adjacent net has source = drain; a floating channel gets
    source = drain = gate and a √area fallback width. *)
val channel_terminals :
  gate:int ->
  area:int ->
  contacts:(int * int * Point.t * int) list ->
  int * int * int * int

(** Resolve one channel component into a device, mapping net elements
    through the union-find and a compression array.  Exposed for HEXT's
    leaf windows. *)
val resolve_device :
  Union_find.t -> int array -> Engine.device_data -> Circuit.device
