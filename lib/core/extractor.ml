open Ace_geom
open Ace_tech
open Ace_netlist

type stats = {
  boxes : int;
  stops : int;
  max_active : int;
  timing : Timing.t;
  warnings : Ace_diag.Diag.t list;
}

(* The transistor sizing rule of ACE §3: source edge = perimeter along
   which the source net touches the channel; W = mean(source edge, drain
   edge); L = area / W. *)
let channel_terminals ~gate ~area ~contacts =
  (* longest edges first; ties broken by the edge's geometric position so
     flat and hierarchical extraction always agree *)
  let contacts =
    List.sort
      (fun (_, la, pa, sa) (_, lb, pb, sb) ->
        let c = Int.compare lb la in
        if c <> 0 then c
        else if Engine.edge_key_less (pa, sa) (pb, sb) then -1
        else if Engine.edge_key_less (pb, sb) (pa, sa) then 1
        else 0)
      contacts
  in
  let source, drain, width =
    match contacts with
    | (n1, l1, _, _) :: (n2, l2, _, _) :: _ -> (n1, n2, (l1 + l2) / 2)
    | [ (n1, l1, _, _) ] -> (n1, n1, l1 / 2)
    | [] ->
        (* floating channel; keep indices valid, let the checker flag it *)
        (gate, gate, max 1 (int_of_float (sqrt (float_of_int area))))
  in
  let width = max 1 width in
  let length = max 1 (area / width) in
  (source, drain, width, length)

let resolve_device nets dense (data : Engine.device_data) =
  let resolve e = dense.(Union_find.find nets e) in
  let gate = if data.gate >= 0 then resolve data.gate else 0 in
  let contacts =
    List.map (fun (n, l, p, side) -> (resolve n, l, p, side)) data.contacts
  in
  let source, drain, width, length =
    channel_terminals ~gate ~area:data.area ~contacts
  in
  let dtype = Nmos.channel_type ~implanted:(2 * data.implant_area >= data.area) in
  {
    Circuit.dtype;
    gate;
    source;
    drain;
    length;
    width;
    location = Box.min_corner data.bbox;
    geometry = List.map (fun bx -> (Layer.Diffusion, bx)) data.channel_geometry;
  }

let circuit_of_raw ~name ~include_partial (raw : Engine.raw) =
  let nets = raw.nets in
  let dense = Union_find.compress nets in
  let class_count = Union_find.class_count nets in
  let names = Array.make class_count [] in
  List.iter
    (fun (e, n) ->
      let c = dense.(Union_find.find nets e) in
      names.(c) <- n :: names.(c))
    raw.net_names;
  (* location: the creation point of the earliest (topmost-created) element
     of each class *)
  let locations = Array.make class_count None in
  let first_elem = Array.make class_count max_int in
  Hashtbl.iter
    (fun e loc ->
      let c = dense.(Union_find.find nets e) in
      if e < first_elem.(c) then begin
        first_elem.(c) <- e;
        locations.(c) <- Some loc
      end)
    raw.net_locations;
  let geometry = Array.make class_count [] in
  Hashtbl.iter
    (fun e boxes ->
      let c = dense.(Union_find.find nets e) in
      geometry.(c) <- boxes @ geometry.(c))
    raw.net_geometry;
  (* order nets by descending location y (the figures list top nets first) *)
  let order = Array.init class_count (fun i -> i) in
  let loc_of i =
    match locations.(i) with Some p -> p | None -> Point.origin
  in
  Array.sort
    (fun a b ->
      let pa = loc_of a and pb = loc_of b in
      let c = Int.compare pb.Point.y pa.Point.y in
      if c <> 0 then c else Int.compare pa.Point.x pb.Point.x)
    order;
  let position = Array.make class_count 0 in
  Array.iteri (fun rank c -> position.(c) <- rank) order;
  let nets_arr =
    Array.map
      (fun c ->
        let coalesce boxes =
          List.concat_map
            (fun layer ->
              let mine =
                List.filter_map
                  (fun (l, b) -> if Layer.equal l layer then Some b else None)
                  boxes
              in
              List.map (fun b -> (layer, b)) (Poly.coalesce_columns mine))
            Layer.conducting_layers
        in
        {
          Circuit.names = List.sort_uniq String.compare names.(c);
          location = loc_of c;
          geometry = coalesce geometry.(c);
        })
      order
  in
  (* dense-with-ordering mapping for terminals *)
  let dense_ordered = Array.map (fun c -> position.(c)) dense in
  let devices =
    raw.devices
    |> List.filter (fun (_, (d : Engine.device_data)) ->
           include_partial || not d.touches_boundary)
    |> List.map (fun (_, d) -> resolve_device nets dense_ordered d)
    |> List.sort (fun (a : Circuit.device) b ->
           let c = Int.compare a.location.Point.y b.location.Point.y in
           if c <> 0 then c else Int.compare a.location.Point.x b.location.Point.x)
    |> Array.of_list
  in
  { Circuit.name; devices; nets = nets_arr }

let extract_with_stats ?(cancel = Cancel.never) ?(emit_geometry = false)
    ?(name = "chip") design =
  let stream = Ace_cif.Stream.create design in
  let labels = Ace_cif.Stream.labels stream in
  let source = Engine.source_of_stream ~cancel stream in
  let raw =
    Engine.run ~cancel { Engine.emit_geometry; window = None } source ~labels
  in
  let circuit = circuit_of_raw ~name ~include_partial:true raw in
  ( circuit,
    {
      boxes = Ace_cif.Design.count_boxes design;
      stops = raw.stops;
      max_active = raw.max_active;
      timing = raw.timing;
      warnings =
        List.map
          (Ace_diag.Diag.warning ~code:"extract-anomaly")
          raw.warnings;
    } )

let extract ?cancel ?emit_geometry ?name design =
  fst (extract_with_stats ?cancel ?emit_geometry ?name design)

let extract_boxes ?(emit_geometry = false) ?(name = "chip") ?(labels = []) boxes =
  let source = Engine.source_of_boxes boxes in
  let raw = Engine.run { Engine.emit_geometry; window = None } source ~labels in
  circuit_of_raw ~name ~include_partial:true raw

let extract_cif_string ?emit_geometry ?name text =
  let ast = Ace_cif.Parser.parse_string text in
  let design = Ace_cif.Design.of_ast ast in
  extract ?emit_geometry ?name design
