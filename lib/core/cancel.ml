exception Cancelled of string

type t = {
  flag : string option Atomic.t;  (* [Some reason] once tripped *)
  deadline_ns : int64;  (* monotonic; [Int64.max_int] = no deadline *)
}

let never = { flag = Atomic.make None; deadline_ns = Int64.max_int }
let create () = { flag = Atomic.make None; deadline_ns = Int64.max_int }

let deadline_reason = "deadline-exceeded"

let with_deadline_ms ms =
  let now = Ace_trace.Trace.now_ns () in
  let budget =
    if ms <= 0 then 0L else Int64.mul (Int64.of_int ms) 1_000_000L
  in
  { flag = Atomic.make None; deadline_ns = Int64.add now budget }

let cancel ?(reason = "cancelled") t =
  ignore (Atomic.compare_and_set t.flag None (Some reason))

(* Deadline trips are latched into the flag so later checks skip the
   clock read and every domain sharing the token agrees on the reason. *)
let tripped t =
  match Atomic.get t.flag with
  | Some _ as r -> r
  | None ->
      if
        t.deadline_ns <> Int64.max_int
        && Ace_trace.Trace.now_ns () >= t.deadline_ns
      then begin
        ignore (Atomic.compare_and_set t.flag None (Some deadline_reason));
        Atomic.get t.flag
      end
      else None

let is_cancelled t = tripped t <> None
let reason t = tripped t

let check t =
  match tripped t with None -> () | Some r -> raise (Cancelled r)

let remaining_ms t =
  if t.deadline_ns = Int64.max_int then None
  else
    let left = Int64.sub t.deadline_ns (Ace_trace.Trace.now_ns ()) in
    Some (if left <= 0L then 0 else Int64.to_int (Int64.div left 1_000_000L))
