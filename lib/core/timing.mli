(** Phase timing for the extraction pipeline.

    ACE §5 reports a coarse distribution of time over the extraction
    algorithm (parsing/sorting 40%, list updates 15%, device computation
    20%, storage/io 10%, miscellaneous 15%).  The engine charges wall time
    to these phases so the benchmark can regenerate that table. *)

type phase =
  | Front_end  (** parsing, instantiating, sorting (geometry source) *)
  | List_update  (** entering new geometry, updating active lists *)
  | Devices  (** computing devices, nets, connectivity *)
  | Output  (** storage allocation, output, initialization *)
  | Stitch
      (** composing shard interfaces across seams (parallel extraction
          only; always zero for a flat run) *)

val all_phases : phase list

val phase_name : phase -> string

(** Short machine-readable identifier ([front_end], [stitch], …) for JSON
    telemetry. *)
val phase_slug : phase -> string

type t

val create : unit -> t

(** [charge t phase f] runs [f ()], adding its wall time to [phase] (also
    on exceptions).  Rides {!Ace_trace.Trace.timed}: when a trace session
    is recording, the same clock samples are also emitted as a span named
    {!phase_slug}[ phase], so phase timings reconstructed from the trace
    agree exactly with the accumulated seconds. *)
val charge : t -> phase -> (unit -> 'a) -> 'a

(** Add externally measured seconds to a phase (e.g. CIF text parsing,
    which happens before the engine runs). *)
val add : t -> phase -> float -> unit

(** Seconds accumulated in a phase. *)
val seconds : t -> phase -> float

val total_seconds : t -> float

(** [merge_into ~src ~dst] adds every phase of [src] into [dst] — used to
    aggregate per-shard timings into a whole-run view. *)
val merge_into : src:t -> dst:t -> unit

(** Phase-wise sum of a list of timings (e.g. one per shard). *)
val sum : t list -> t

(** Percentage table, phase order of {!all_phases}. *)
val distribution : t -> (phase * float) list
