open Ace_geom
open Ace_netlist

(** Domain-parallel tiled extraction.

    The chip's bounding box is partitioned into a [cols] x [rows] grid
    of tiles; each tile runs the ordinary scanline engine in window mode
    over its own lazy front-end stream clipped to the tile
    ({!Engine.source_clipped}) — so no domain ever materializes the
    chip, and peak memory per domain stays proportional to its tile's
    scanline population.  Tiles are scheduled over [jobs] worker domains
    by per-domain Chase–Lev work-stealing deques: each worker starts
    with a contiguous block of tiles and an idle worker steals half of a
    victim's visible tiles.  The per-tile results become HEXT fragments
    ({!Fragment.leaf_of_raw}) and are stitched with {!Fragment.compose}
    — exactly the seam logic the hierarchical extractor uses — along
    both axes: each column composes bottom-to-top, then the columns
    compose left-to-right.  A final canonicalization pass rebuilds the
    flat extractor's net numbering from the engine's intrinsic creation
    keys ({!Engine.raw.net_locations} / [net_phase]) and re-sorts
    devices with the flat comparator, so the output is {e
    byte-identical} to {!Extractor.extract} for every grid, worker
    count, and steal schedule (see DESIGN.md, "Work-stealing
    determinism").

    With no geometry or a grid that degenerates to a single tile, this
    falls back to {!Extractor.extract_with_stats} — a [-j 1] run without
    [--tile] {e is} the flat extractor. *)

(** Per-tile telemetry. *)
type shard = {
  s_window : Box.t;  (** the tile, chip coordinates *)
  s_boxes : int;  (** clipped boxes the tile's engine processed *)
  s_stops : int;  (** scanline stops *)
  s_max_active : int;  (** peak scanline population *)
  s_seconds : float;  (** wall time of the whole tile (stream + scan) *)
  s_timing : Timing.t;  (** per-phase split of the tile's engine run *)
  s_devices : int;  (** transistors completed inside the tile *)
  s_partials : int;  (** partial transistors open at the tile boundary *)
  s_counters : int array;
      (** the tile's own {!Ace_trace.Trace.Counter} contributions,
          [Counter.index]-indexed (its trace track starts at zero) *)
}

type stats = {
  jobs : int;  (** worker domains used (≤ requested [jobs], ≤ tiles) *)
  shards : shard list;
      (** per tile, column-major — left-to-right, bottom-to-top within a
          column; empty for a flat fallback run *)
  stitch_seconds : float;  (** composing + flattening, after the join *)
  boxes : int;  (** the design's flat box count (the papers' N) *)
  stops : int;  (** total stops over all tiles *)
  max_active : int;  (** max over tiles *)
  timing : Timing.t;
      (** phase-wise sum over tiles plus the stitch phase — CPU time, not
          wall time: tiles overlap in wall clock *)
  warnings : Ace_diag.Diag.t list;
}

(** Slowest shard over the mean shard time: 1.0 = perfectly balanced. *)
val balance : stats -> float

(** [tile_windows ~cols ~rows bb] partitions [bb] into a grid of
    near-equal tiles, indexed [column].(row) — columns left to right,
    rows bottom to top.  Width remainder spreads over the leftmost
    columns, height remainder over the bottom rows.  Clamped: at most
    one column per x unit and one row per y unit, at least one of each;
    tiles are adjacent and cover the box exactly. *)
val tile_windows : cols:int -> rows:int -> Box.t -> Box.t array array

(** Full-height vertical strips: [tile_windows ~cols:jobs ~rows:1],
    flattened.  The partition the [-j]-only path uses. *)
val windows : jobs:int -> Box.t -> Box.t array

(** Parse a "COLSxROWS" grid spec (e.g. ["4x2"]), both ≥ 1. *)
val tile_of_string : string -> (int * int, string) result

(** [extract_with_stats ?sequential ?jobs ?tile ?name design]:

    [tile] gives the grid explicitly as [(cols, rows)]; default is
    [(jobs, 1)] — classic vertical strips.  A multi-tile grid engages
    the tiled path even at [jobs = 1] (useful for testing seams without
    domains).

    [sequential] (default false) runs the tiles one after another in the
    calling domain instead of scheduling over spawned workers —
    identical tile/stitch code path and output.  Benches use it on hosts
    with fewer cores than [jobs], where timeslicing inflates every
    spawned tile's wall clock, to get uncontended per-tile timings;
    tests use it for simpler failure traces.

    [cancel] is threaded into every tile's engine run and checked in the
    scheduler's steal loop; a deadline trip raises {!Cancel.Cancelled}
    out of this call.  [on_shard] is invoked with the tile index at the
    start of each tile's work, on whichever domain runs it (fault
    injection and tests hook it; default no-op).

    If any tile's work raises — including [on_shard], and including on a
    spawned domain — every sibling domain is still joined before the
    exception propagates, so no domain is leaked and the calling process
    stays consistent; the lowest-indexed tile's exception wins, with its
    original backtrace. *)
val extract_with_stats :
  ?sequential:bool ->
  ?cancel:Cancel.t ->
  ?on_shard:(int -> unit) ->
  ?jobs:int ->
  ?tile:int * int ->
  ?name:string ->
  Ace_cif.Design.t ->
  Circuit.t * stats

val extract :
  ?sequential:bool ->
  ?cancel:Cancel.t ->
  ?on_shard:(int -> unit) ->
  ?jobs:int ->
  ?tile:int * int ->
  ?name:string ->
  Ace_cif.Design.t ->
  Circuit.t
