open Ace_geom
open Ace_netlist

(** Domain-parallel sharded extraction.

    The chip's bounding box is partitioned into N full-height vertical
    strips; each strip runs the ordinary scanline engine in window mode on
    its own OCaml 5 domain, over its own lazy front-end stream clipped to
    the strip ({!Engine.source_clipped}) — so no domain ever materializes
    the chip, and peak memory per domain stays proportional to its strip's
    scanline population.  The per-strip results become HEXT fragments
    ({!Fragment.leaf_of_raw}) and are stitched left to right with
    {!Fragment.compose} — exactly the seam logic the hierarchical
    extractor uses: boundary-net spans unify across the shared face,
    partial transistors knit by channel-span overlap, and seam
    source/drain contacts are added where a channel ends on the seam.
    Flattening the resulting two-level hierarchy yields a circuit
    equivalent to the flat extractor's (same nets, names, devices and
    sizes; net numbering is canonicalized by comparison, see [wlcmp]).

    With [jobs <= 1], no geometry, or a chip too narrow to split, this
    falls back to {!Extractor.extract_with_stats} — a [-j 1] run {e is}
    the flat extractor. *)

(** Per-strip telemetry. *)
type shard = {
  s_window : Box.t;  (** the strip, chip coordinates *)
  s_boxes : int;  (** clipped boxes the strip's engine processed *)
  s_stops : int;  (** scanline stops *)
  s_max_active : int;  (** peak scanline population *)
  s_seconds : float;  (** wall time of the whole shard (stream + scan) *)
  s_timing : Timing.t;  (** per-phase split of the shard's engine run *)
  s_devices : int;  (** transistors completed inside the strip *)
  s_partials : int;  (** partial transistors open at the strip boundary *)
  s_counters : int array;
      (** the shard's own {!Ace_trace.Trace.Counter} contributions,
          [Counter.index]-indexed (its trace track starts at zero) *)
}

type stats = {
  jobs : int;  (** shards actually run (≤ requested [jobs]) *)
  shards : shard list;  (** empty for a flat fallback run *)
  stitch_seconds : float;  (** composing + flattening, after the join *)
  boxes : int;  (** the design's flat box count (the papers' N) *)
  stops : int;  (** total stops over all shards *)
  max_active : int;  (** max over shards *)
  timing : Timing.t;
      (** phase-wise sum over shards plus the stitch phase — CPU time, not
          wall time: shards overlap in wall clock *)
  warnings : Ace_diag.Diag.t list;
}

(** Slowest shard over the mean shard time: 1.0 = perfectly balanced. *)
val balance : stats -> float

(** The strip partition used for a given [jobs] request (exposed for
    tests): adjacent, full-height, covering the box exactly, at most
    [jobs] strips and never wider than one strip per x unit. *)
val windows : jobs:int -> Box.t -> Box.t array

(** [extract_with_stats ?sequential ?jobs ?name design]: [sequential]
    (default false) runs the shards one after another in the calling
    domain instead of spawning — identical shard/stitch code path and
    output.  Benches use it on hosts with fewer cores than [jobs], where
    timeslicing inflates every spawned shard's wall clock, to get
    uncontended per-shard timings; tests use it for simpler failure
    traces.

    [cancel] is threaded into every shard's engine run; a deadline trip
    raises {!Cancel.Cancelled} out of this call.  [on_shard] is invoked
    with the shard index at the start of each shard's work, on that
    shard's domain (fault injection and tests hook it; default no-op).

    If any shard's work raises — including [on_shard], and including on a
    spawned domain — every sibling domain is still joined before the
    exception propagates, so no domain is leaked and the calling process
    stays consistent; the lowest-indexed shard's exception wins, with its
    original backtrace. *)
val extract_with_stats :
  ?sequential:bool ->
  ?cancel:Cancel.t ->
  ?on_shard:(int -> unit) ->
  ?jobs:int ->
  ?name:string ->
  Ace_cif.Design.t ->
  Circuit.t * stats

val extract :
  ?sequential:bool ->
  ?cancel:Cancel.t ->
  ?on_shard:(int -> unit) ->
  ?jobs:int ->
  ?name:string ->
  Ace_cif.Design.t ->
  Circuit.t
