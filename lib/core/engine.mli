open Ace_geom
open Ace_tech
open Ace_netlist

(** The edge-based scanline engine — the algorithm of ACE §3.

    A scanline moves from the top of the chip to the bottom, pausing at
    every y where a box top or bottom occurs.  Between consecutive stops the
    mask state is constant, so the chip decomposes into horizontal strips;
    within each strip the engine maintains merged per-layer x-interval
    lists, assigns nets (union-find) by overlap with the previous strip,
    applies the NMOS contact and buried-contact rules, and tracks transistor
    channels (diffusion ∧ poly ∧ ¬buried) as components with accumulated
    area and per-net source/drain edge-contact lengths.

    The engine is shared by the flat extractor and by HEXT's leaf-window
    back-end: run with a [window], it additionally records every conducting
    interval and channel that touches the window boundary (the "interface"
    of HEXT §3). *)

(** Pull-source of geometry sorted by descending top edge. *)
type source = {
  peek : unit -> int option;  (** top y of the next box, if any *)
  pop : int -> (Layer.t * Box.t) list;  (** all boxes with that exact top *)
}

(** Source from ACE's lazy front-end.  [cancel] is checked on every pop,
    before the stream expands the next batch of symbols. *)
val source_of_stream : ?cancel:Cancel.t -> Ace_cif.Stream.t -> source

(** Source from a pre-flattened box list (stable-sorts it first:
    descending top, input order at equal tops). *)
val source_of_boxes : (Layer.t * Box.t) list -> source

(** [source_clipped src ~window] clips a sorted source to [window] {e
    lazily}: stops at or above the window top pool into a single stop at
    [window.t] (their clipped tops all land there); stops inside the
    window pass through with each box clipped; the underlying source is
    never pulled below the window bottom.  Peak buffered geometry is the
    clipped population crossing the window's top edge — proportional to
    the scanline, never to the window contents.  [run] applies this
    automatically when [config.window] is set. *)
val source_clipped : source -> window:Box.t -> source

(** Edge-side codes carried in {!device_data.contacts}: the adjacent net
    lies below/above the channel (horizontal edge) or left/right of it
    (vertical edge). *)
val side_below : int

val side_above : int
val side_left : int
val side_right : int

(** Lexicographic order on (position, side) keys. *)
val edge_key_less : Point.t * int -> Point.t * int -> bool

type face = West | East | South | North

(** A conducting-layer crossing of the window boundary: on [West]/[East]
    the span is a y-range, on [South]/[North] an x-range. *)
type boundary_span = {
  bface : face;
  bspan : Interval.span;
  blayer : Layer.t;
  bnet : int;  (** net element (pre-compression) *)
}

(** A channel crossing of the window boundary, tagged with its device
    component root (matching the keys of {!raw.devices}). *)
type boundary_channel = {
  cface : face;
  cspan : Interval.span;
  cdev : int;
}

type config = {
  emit_geometry : bool;  (** keep per-net and per-device box lists *)
  window : Box.t option;  (** record boundary crossings against this box *)
}

val default_config : config

(** Aggregated data of one channel component (a transistor, possibly
    partial when it touches the window boundary). *)
type device_data = {
  area : int;  (** channel area, centimicrons² *)
  implant_area : int;  (** area also covered by implant *)
  bbox : Box.t;
  gate : int;  (** gate net element *)
  contacts : (int * int * Point.t * int) list;
      (** (adjacent net element, edge length, minimal edge position, edge
          side code) — position and side make source/drain selection
          deterministic when two contacts tie in length; see
          {!side_below} *)
  channel_geometry : Box.t list;  (** populated when [emit_geometry] *)
  touches_boundary : bool;
}

(** Raw extraction result, before net compression. *)
type raw = {
  nets : Union_find.t;  (** net elements; classes are electrical nets *)
  net_names : (int * string) list;  (** label attachments *)
  net_locations : (int, Point.t) Hashtbl.t;
      (** element creation points: (span lo, top of the strip where the
          element first appeared).  The strip top at creation is the
          (clipped) transition y of the geometry itself, so it is
          independent of how the rest of the chip partitions the scan —
          a window-mode run over a tile records the same point the flat
          scan does for any element whose creation lies inside the
          window. *)
  net_phase : (int, int) Hashtbl.t;
      (** element creation phase within its strip: 0 = diffusion, 1 =
          poly, 2 = metal — the order the engine runs net assignment.
          [(y desc, phase asc, x asc)] over creation records is exactly
          element-creation order, which lets the parallel extractor
          reconstruct the flat extractor's net numbering from per-tile
          scans (see {!Parallel}). *)
  net_geometry : (int, (Layer.t * Box.t) list) Hashtbl.t;
  devices : (int * device_data) list;  (** (device element root, data) *)
  boundary_nets : boundary_span list;
  boundary_channels : boundary_channel list;
  warnings : string list;
  stops : int;  (** scanline stops made *)
  max_active : int;  (** peak boxes intersecting the scanline *)
  timing : Timing.t;
}

(** Run the scanline over a source.  [labels] must be sorted by decreasing
    y (as {!Ace_cif.Stream.labels} returns them).  [cancel] (default
    {!Cancel.never}) is checked at every scanline stop — both before the
    front-end pop and before the strip is processed — so a tripped token
    raises {!Cancel.Cancelled} within one strip of work. *)
val run :
  ?cancel:Cancel.t -> config -> source -> labels:Ace_cif.Design.label list -> raw
