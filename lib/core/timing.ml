type phase = Front_end | List_update | Devices | Output | Stitch

let all_phases = [ Front_end; List_update; Devices; Output; Stitch ]

let phase_name = function
  | Front_end -> "parsing, interpreting and sorting"
  | List_update -> "entering new geometry into lists"
  | Devices -> "computing devices, nets, etc."
  | Output -> "storage allocation, input/output"
  | Stitch -> "stitching shard seams"

let phase_slug = function
  | Front_end -> "front_end"
  | List_update -> "list_update"
  | Devices -> "devices"
  | Output -> "output"
  | Stitch -> "stitch"

let index = function
  | Front_end -> 0
  | List_update -> 1
  | Devices -> 2
  | Output -> 3
  | Stitch -> 4

type t = float array

let create () = Array.make 5 0.0

(* Phase accounting rides the tracer: the same clock samples feed the
   accumulated seconds and (when --trace is recording) the exported
   span, so trace-derived phase timings agree exactly with these. *)
let charge t phase f =
  Ace_trace.Trace.timed (phase_slug phase)
    (fun dt -> t.(index phase) <- t.(index phase) +. dt)
    f

let add t phase s = t.(index phase) <- t.(index phase) +. s
let seconds t phase = t.(index phase)
let total_seconds t = Array.fold_left ( +. ) 0.0 t

let merge_into ~src ~dst = Array.iteri (fun i s -> dst.(i) <- dst.(i) +. s) src

let sum ts =
  let acc = create () in
  List.iter (fun t -> merge_into ~src:t ~dst:acc) ts;
  acc

let distribution t =
  let total = total_seconds t in
  List.map
    (fun p ->
      (p, if total > 0.0 then 100.0 *. seconds t p /. total else 0.0))
    all_phases
