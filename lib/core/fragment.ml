open Ace_geom
open Ace_tech
open Ace_netlist

type partial = {
  p_area : int;
  p_implant : int;
  p_bbox : Box.t;
  p_gate : int;
  p_contacts : (int * int * Point.t * int) list;
      (** (local net, edge length, minimal edge position, edge side) *)
  p_spans : (Engine.face * Interval.span) list;
}

type iface_span = {
  face : Engine.face;
  span : Interval.span;
  layer : Layer.t;
  net : int;
}

type t = {
  id : int;
  width : int;
  height : int;
  part : Hier.part;
  iface : iface_span list;
  partials : partial list;
}

let part_name id = Printf.sprintf "W%d" id

let device_of_partial p ~resolve : Hier.hdevice =
  let gate = resolve p.p_gate in
  let contacts =
    List.map (fun (n, l, pos, side) -> (resolve n, l, pos, side)) p.p_contacts
  in
  (* merge contact entries that resolved to the same net, keeping the
     minimal edge key for deterministic terminal ties *)
  let contacts =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (n, l, pos, side) ->
        match Hashtbl.find_opt tbl n with
        | Some r ->
            let total, best = !r in
            r :=
              ( total + l,
                if Engine.edge_key_less (pos, side) best then (pos, side)
                else best )
        | None -> Hashtbl.replace tbl n (ref (l, (pos, side))))
      contacts;
    Hashtbl.fold
      (fun n r acc ->
        let l, (pos, side) = !r in
        (n, l, pos, side) :: acc)
      tbl []
  in
  let source, drain, width, length =
    Extractor.channel_terminals ~gate ~area:p.p_area ~contacts
  in
  {
    Hier.dtype = Nmos.channel_type ~implanted:(2 * p.p_implant >= p.p_area);
    gate;
    source;
    drain;
    length;
    width;
    location = Box.min_corner p.p_bbox;
  }

(* Coalesce same-tag spans that overlap or abut. *)
let coalesce_spans spans =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (tag, (s : Interval.span)) ->
      let existing = try Hashtbl.find tbl tag with Not_found -> [] in
      Hashtbl.replace tbl tag ((s.lo, s.hi) :: existing))
    spans;
  Hashtbl.fold
    (fun tag raw acc ->
      List.fold_left
        (fun acc s -> (tag, s) :: acc)
        acc
        (Interval.of_spans raw))
    tbl []

(* ------------------------------------------------------------------ *)
(* Leaf                                                                 *)
(* ------------------------------------------------------------------ *)

let leaf_of_raw ~next_id ~window (raw : Engine.raw) =
  let nets = raw.Engine.nets in
  let dense = Union_find.compress nets in
  let resolve e = dense.(Union_find.find nets e) in
  let net_count = Union_find.class_count nets in
  let dx = -window.Box.l and dy = -window.Box.b in
  let localize (bx : Box.t) = Box.translate bx ~dx ~dy in
  let local_span face (s : Interval.span) =
    match face with
    | Engine.West | Engine.East -> { Interval.lo = s.lo + dy; hi = s.hi + dy }
    | Engine.South | Engine.North -> { Interval.lo = s.lo + dx; hi = s.hi + dx }
  in
  let net_names =
    List.map (fun (e, name) -> (resolve e, name)) raw.Engine.net_names
  in
  (* boundary channel spans grouped by device root *)
  let spans_by_dev : (int, (Engine.face * Interval.span) list) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (bc : Engine.boundary_channel) ->
      let root = bc.Engine.cdev in
      let prev = try Hashtbl.find spans_by_dev root with Not_found -> [] in
      Hashtbl.replace spans_by_dev root
        ((bc.Engine.cface, local_span bc.Engine.cface bc.Engine.cspan) :: prev))
    raw.Engine.boundary_channels;
  let devices = ref [] and partials = ref [] in
  List.iter
    (fun (root, (d : Engine.device_data)) ->
      if d.Engine.touches_boundary then begin
        let my_spans =
          match Hashtbl.find_opt spans_by_dev root with
          | Some spans -> spans
          | None -> []
        in
        partials :=
          {
            p_area = d.Engine.area;
            p_implant = d.Engine.implant_area;
            p_bbox = localize d.Engine.bbox;
            p_gate = (if d.Engine.gate >= 0 then resolve d.Engine.gate else 0);
            p_contacts =
              List.map
                (fun (n, l, pos, side) ->
                  (resolve n, l, Point.add pos (Point.make dx dy), side))
                d.Engine.contacts;
            p_spans = coalesce_spans my_spans;
          }
          :: !partials
      end
      else begin
        let cd = Extractor.resolve_device nets dense d in
        devices :=
          {
            Hier.dtype = cd.Circuit.dtype;
            gate = cd.Circuit.gate;
            source = cd.Circuit.source;
            drain = cd.Circuit.drain;
            length = cd.Circuit.length;
            width = cd.Circuit.width;
            location = Point.add cd.Circuit.location (Point.make dx dy);
          }
          :: !devices
      end)
    raw.Engine.devices;
  let iface =
    coalesce_spans
      (List.map
         (fun (bs : Engine.boundary_span) ->
           ( (bs.Engine.bface, bs.Engine.blayer, resolve bs.Engine.bnet),
             local_span bs.Engine.bface bs.Engine.bspan ))
         raw.Engine.boundary_nets)
    |> List.map (fun ((face, layer, net), span) -> { face; span; layer; net })
  in
  if Sys.getenv_opt "ACE_DEBUG" <> None then
    Printf.eprintf "leaf W%d window=%s devices=%d partials=%d\n" next_id
      (Format.asprintf "%a" Box.pp window)
      (List.length !devices) (List.length !partials);
  {
    id = next_id;
    width = Box.width window;
    height = Box.height window;
    part =
      {
        Hier.part_name = part_name next_id;
        net_count;
        exports = List.sort_uniq Int.compare (List.map (fun s -> s.net) iface);
        net_names;
        devices =
          List.sort
            (fun (a : Hier.hdevice) b -> Point.compare_yx a.location b.location)
            !devices;
        instances = [];
      };
    iface;
    partials =
      List.sort (fun a b -> Box.compare a.p_bbox b.p_bbox) !partials;
  }

let leaf ~next_id ~window ~boxes ~labels =
  let source = Engine.source_of_boxes boxes in
  let labels =
    List.sort
      (fun (a : Ace_cif.Design.label) b ->
        Int.compare b.position.Point.y a.position.Point.y)
      labels
  in
  let raw =
    Engine.run { Engine.emit_geometry = false; window = Some window } source
      ~labels
  in
  if Sys.getenv_opt "ACE_DEBUG" <> None then begin
    Printf.eprintf "leaf W%d window=%s boxes=%d\n" next_id
      (Format.asprintf "%a" Box.pp window)
      (List.length boxes);
    List.iter
      (fun (lyr, bx) ->
        Printf.eprintf "    %s %s\n" (Layer.to_cif_name lyr)
          (Format.asprintf "%a" Box.pp bx))
      boxes
  end;
  leaf_of_raw ~next_id ~window raw

(* ------------------------------------------------------------------ *)
(* Compose                                                              *)
(* ------------------------------------------------------------------ *)

let translate_face_span ~(offset : Point.t) face (s : Interval.span) =
  match face with
  | Engine.West | Engine.East ->
      { Interval.lo = s.lo + offset.Point.y; hi = s.hi + offset.Point.y }
  | Engine.South | Engine.North ->
      { Interval.lo = s.lo + offset.Point.x; hi = s.hi + offset.Point.x }

let compose ~next_id a b ~offset =
  let horizontal = offset.Point.x > 0 in
  if horizontal then begin
    if not (offset.Point.x = a.width && offset.Point.y = 0 && a.height = b.height)
    then invalid_arg "Fragment.compose: not a horizontal guillotine pair"
  end
  else if not (offset.Point.y = a.height && offset.Point.x = 0 && a.width = b.width)
  then invalid_arg "Fragment.compose: not a vertical guillotine pair";
  let seam_a = if horizontal then Engine.East else Engine.North in
  let seam_b = if horizontal then Engine.West else Engine.South in
  (* referenced local nets of each side: everything the interfaces and
     partials mention *)
  let refs frag =
    List.sort_uniq Int.compare
      (List.map (fun s -> s.net) frag.iface
      @ List.concat_map
          (fun p -> p.p_gate :: List.map (fun (n, _, _, _) -> n) p.p_contacts)
          frag.partials)
  in
  let refs_a = refs a and refs_b = refs b in
  (* map (side, local net) -> uf element *)
  let uf = Union_find.create () in
  let elem_of = Hashtbl.create 64 in
  let register side net =
    if not (Hashtbl.mem elem_of (side, net)) then
      Hashtbl.replace elem_of (side, net) (Union_find.fresh uf)
  in
  List.iter (register `A) refs_a;
  List.iter (register `B) refs_b;
  let elem side net = Hashtbl.find elem_of (side, net) in
  (* seam net unification: overlapping same-layer spans on the touching
     faces.  b's seam spans need no translation: for a horizontal seam both
     East(a) and West(b) spans are y-ranges with the same y origin. *)
  let a_seam = List.filter (fun s -> s.face = seam_a) a.iface in
  let b_seam = List.filter (fun s -> s.face = seam_b) b.iface in
  let debug = Sys.getenv_opt "ACE_DEBUG" <> None in
  List.iter
    (fun sa ->
      List.iter
        (fun sb ->
          if
            Layer.equal sa.layer sb.layer
            && Interval.spans_overlap sa.span sb.span
          then begin
            if debug then
              Printf.eprintf
                "compose %d(%s)+%d(%s): seam %s a-net %d [%d,%d) ~ b-net %d [%d,%d)\n"
                a.id a.part.Hier.part_name b.id b.part.Hier.part_name
                (Layer.to_cif_name sa.layer) sa.net sa.span.Interval.lo
                sa.span.Interval.hi sb.net sb.span.Interval.lo
                sb.span.Interval.hi;
            ignore (Union_find.union uf (elem `A sa.net) (elem `B sb.net))
          end)
        b_seam)
    a_seam;
  (* partial knitting: channel spans overlapping across the seam *)
  let puf = Union_find.create () in
  let pa = Array.of_list a.partials and pb = Array.of_list b.partials in
  let na = Array.length pa in
  Array.iteri (fun _ _ -> ignore (Union_find.fresh puf)) pa;
  Array.iteri (fun _ _ -> ignore (Union_find.fresh puf)) pb;
  Array.iteri
    (fun i p ->
      let a_spans =
        List.filter_map
          (fun (f, s) -> if f = seam_a then Some s else None)
          p.p_spans
      in
      Array.iteri
        (fun j q ->
          let q_spans =
            List.filter_map
              (fun (f, s) -> if f = seam_b then Some s else None)
              q.p_spans
          in
          if
            List.exists
              (fun sa ->
                List.exists (fun sb -> Interval.spans_overlap sa sb) q_spans)
              a_spans
          then begin
            if debug then
              Printf.eprintf "compose %d+%d: knit partial a%d ~ b%d\n" a.id b.id i j;
            ignore (Union_find.union puf i (na + j))
          end)
        pb)
    pa;
  (* seam source/drain contacts: a channel ending at the seam against
     conducting diffusion beginning just across it *)
  let seam_contacts : (int * int, (int * (Point.t * int)) ref) Hashtbl.t =
    Hashtbl.create 16
  in
  (* the seam line in composed coordinates: x = a.width (horizontal
     compose) or y = a.height (vertical) *)
  let seam_pos (overlap_lo : int) =
    if horizontal then Point.make a.width overlap_lo
    else Point.make overlap_lo a.height
  in
  let add_seam_contact pidx side_net len key_edge =
    if debug then
      Printf.eprintf "compose %d+%d: seam contact partial-root %d net-elem %d len %d\n"
        a.id b.id (Union_find.find puf pidx) side_net len;
    let key = (Union_find.find puf pidx, side_net) in
    match Hashtbl.find_opt seam_contacts key with
    | Some r ->
        let total, best = !r in
        r :=
          ( total + len,
            if Engine.edge_key_less key_edge best then key_edge else best )
    | None -> Hashtbl.replace seam_contacts key (ref (len, key_edge))
  in
  let diff_seam_b =
    List.filter (fun s -> s.face = seam_b && Layer.equal s.layer Layer.Diffusion)
      b.iface
  in
  let diff_seam_a =
    List.filter (fun s -> s.face = seam_a && Layer.equal s.layer Layer.Diffusion)
      a.iface
  in
  Array.iteri
    (fun i p ->
      List.iter
        (fun (f, s) ->
          if f = seam_a then
            List.iter
              (fun d ->
                let len = Interval.span_overlap_length s d.span in
                if len > 0 then
                  add_seam_contact i (elem `B d.net) len
                    ( seam_pos (max s.Interval.lo d.span.Interval.lo),
                      (* channel in a, diffusion beyond the seam in b *)
                      if horizontal then Engine.side_right
                      else Engine.side_above ))
              diff_seam_b)
        p.p_spans)
    pa;
  Array.iteri
    (fun j q ->
      List.iter
        (fun (f, s) ->
          if f = seam_b then
            List.iter
              (fun d ->
                let len = Interval.span_overlap_length s d.span in
                if len > 0 then
                  add_seam_contact (na + j) (elem `A d.net) len
                    ( seam_pos (max s.Interval.lo d.span.Interval.lo),
                      (* channel in b, diffusion back across the seam in a *)
                      if horizontal then Engine.side_left
                      else Engine.side_below ))
              diff_seam_a)
        q.p_spans)
    pb;
  (* quotient the referenced nets *)
  let dense = Union_find.compress uf in
  let net_count = Union_find.class_count uf in
  let resolve side net = dense.(Union_find.find uf (elem side net)) in
  (* merged partials grouped by root *)
  let b_offset = offset in
  let groups : (int, partial ref) Hashtbl.t = Hashtbl.create 8 in
  let remap_partial side (p : partial) =
    let keep_faces (f, s) =
      if f = seam_a && side = `A then None
      else if f = seam_b && side = `B then None
      else
        match side with
        | `A -> Some (f, s)
        | `B -> Some (f, translate_face_span ~offset:b_offset f s)
    in
    {
      p with
      p_gate = resolve side p.p_gate;
      p_contacts =
        List.map
          (fun (n, l, pos, edge_side) ->
            ( resolve side n,
              l,
              (match side with `A -> pos | `B -> Point.add pos b_offset),
              edge_side ))
          p.p_contacts;
      p_bbox =
        (match side with
        | `A -> p.p_bbox
        | `B ->
            Box.translate p.p_bbox ~dx:b_offset.Point.x ~dy:b_offset.Point.y);
      p_spans = List.filter_map keep_faces p.p_spans;
    }
  in
  let merge_into root (p : partial) =
    match Hashtbl.find_opt groups root with
    | Some r ->
        r :=
          {
            p_area = !r.p_area + p.p_area;
            p_implant = !r.p_implant + p.p_implant;
            p_bbox = Box.hull !r.p_bbox p.p_bbox;
            p_gate = !r.p_gate;
            p_contacts = p.p_contacts @ !r.p_contacts;
            p_spans = p.p_spans @ !r.p_spans;
          }
    | None -> Hashtbl.replace groups root (ref p)
  in
  Array.iteri (fun i p -> merge_into (Union_find.find puf i) (remap_partial `A p)) pa;
  Array.iteri
    (fun j q -> merge_into (Union_find.find puf (na + j)) (remap_partial `B q))
    pb;
  (* attach seam contacts *)
  Hashtbl.iter
    (fun (root, net_elem) r0 ->
      let len, (pos, edge_side) = !r0 in
      match Hashtbl.find_opt groups root with
      | Some r ->
          let net = dense.(Union_find.find uf net_elem) in
          r :=
            { !r with p_contacts = (net, len, pos, edge_side) :: !r.p_contacts }
      | None -> ())
    seam_contacts;
  (* completed vs still-partial; sort for determinism (hash-table order is
     arbitrary and fragments are deduplicated by content) *)
  let devices = ref [] and partials = ref [] in
  Hashtbl.iter
    (fun _root r ->
      let p = !r in
      if p.p_spans = [] then begin
        if debug then
          Printf.eprintf "compose %d+%d: complete device area=%d contacts=[%s]\n"
            a.id b.id p.p_area
            (String.concat ";"
               (List.map (fun (n, l, _, _) -> Printf.sprintf "%d:%d" n l)
                  p.p_contacts));
        devices := device_of_partial p ~resolve:(fun n -> n) :: !devices
      end
      else partials := { p with p_spans = coalesce_spans p.p_spans } :: !partials)
    groups;
  let devices =
    List.sort
      (fun (a : Hier.hdevice) b -> Point.compare_yx a.location b.location)
      !devices
  and partials =
    List.sort (fun a b -> Box.compare a.p_bbox b.p_bbox) !partials
  in
  (* composed interface: outer-face spans of both sides *)
  let iface =
    List.filter_map
      (fun s ->
        if s.face = seam_a then None
        else Some { s with net = resolve `A s.net })
      a.iface
    @ List.filter_map
        (fun s ->
          if s.face = seam_b then None
          else
            Some
              {
                s with
                net = resolve `B s.net;
                span = translate_face_span ~offset:b_offset s.face s.span;
              })
        b.iface
  in
  let iface =
    coalesce_spans
      (List.map (fun s -> ((s.face, s.layer, s.net), s.span)) iface)
    |> List.map (fun ((face, layer, net), span) -> { face; span; layer; net })
  in
  let width = if horizontal then a.width + b.width else a.width in
  let height = if horizontal then a.height else a.height + b.height in
  {
    id = next_id;
    width;
    height;
    part =
      {
        Hier.part_name = part_name next_id;
        net_count;
        exports = List.sort_uniq Int.compare (List.map (fun s -> s.net) iface);
        net_names = [];
        devices;
        instances =
          [
            {
              Hier.part_name = a.part.Hier.part_name;
              inst_name = "P1";
              offset = Point.origin;
              net_map = List.map (fun n -> (n, resolve `A n)) refs_a;
            };
            {
              Hier.part_name = b.part.Hier.part_name;
              inst_name = "P2";
              offset = b_offset;
              net_map = List.map (fun n -> (n, resolve `B n)) refs_b;
            };
          ];
      };
    iface;
    partials;
  }

let finalize ~next_id root =
  let refs =
    List.sort_uniq Int.compare
      (List.concat_map
         (fun p -> p.p_gate :: List.map (fun (n, _, _, _) -> n) p.p_contacts)
         root.partials)
  in
  let index = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace index n i) refs;
  let resolve n = Hashtbl.find index n in
  let devices = List.map (device_of_partial ~resolve) root.partials in
  {
    Hier.part_name = part_name next_id;
    net_count = List.length refs;
    exports = [];
    net_names = [];
    devices;
    instances =
      [
        {
          Hier.part_name = root.part.Hier.part_name;
          inst_name = "P1";
          offset = Point.origin;
          net_map = List.map (fun n -> (n, resolve n)) refs;
        };
      ];
  }
