open Ace_geom
open Ace_netlist
module Trace = Ace_trace.Trace

type shard = {
  s_window : Box.t;
  s_boxes : int;
  s_stops : int;
  s_max_active : int;
  s_seconds : float;
  s_timing : Timing.t;
  s_devices : int;
  s_partials : int;
  s_counters : int array;
}

type stats = {
  jobs : int;
  shards : shard list;
  stitch_seconds : float;
  boxes : int;
  stops : int;
  max_active : int;
  timing : Timing.t;
  warnings : Ace_diag.Diag.t list;
}

(* Shard balance: slowest shard over the mean — 1.0 is a perfect split,
   2.0 means one tile did twice its share of the scan. *)
let balance stats =
  match stats.shards with
  | [] -> 1.0
  | shards ->
      let times = List.map (fun s -> s.s_seconds) shards in
      let total = List.fold_left ( +. ) 0.0 times in
      let mean = total /. float_of_int (List.length times) in
      if mean > 0.0 then List.fold_left max 0.0 times /. mean else 1.0

(* ------------------------------------------------------------------ *)
(* Tile partition                                                      *)
(* ------------------------------------------------------------------ *)

(* Partition the chip bbox into a [cols] x [rows] grid of tiles of
   near-equal size (the width remainder spreads one unit over the
   leftmost columns, the height remainder over the bottom rows).  The
   result is indexed [column].(row): columns left to right, rows bottom
   to top.  Never more than one column per x unit or one row per y
   unit. *)
let tile_windows ~cols ~rows (bb : Box.t) =
  let w = Box.width bb and h = Box.height bb in
  let nc = max 1 (min cols w) and nr = max 1 (min rows h) in
  let wbase = w / nc and wrem = w mod nc in
  let hbase = h / nr and hrem = h mod nr in
  let x = ref bb.Box.l in
  Array.init nc (fun ci ->
      let wd = wbase + if ci < wrem then 1 else 0 in
      let l = !x in
      x := !x + wd;
      let y = ref bb.Box.b in
      Array.init nr (fun ri ->
          let ht = hbase + if ri < hrem then 1 else 0 in
          let b = !y in
          y := !y + ht;
          Box.make ~l ~b ~r:(l + wd) ~t:(b + ht)))

(* The classic full-height vertical strips: one row of tiles.  Vertical
   strips keep every box top unchanged under clipping, so each shard's
   stream is exactly the flat stream restricted in x. *)
let windows ~jobs (bb : Box.t) =
  Array.map (fun col -> col.(0)) (tile_windows ~cols:jobs ~rows:1 bb)

(* "CxR" — e.g. "4x2" is four columns by two rows. *)
let tile_of_string s =
  let bad () =
    Error (Printf.sprintf "bad tile grid %S, expected COLSxROWS (e.g. 4x2)" s)
  in
  match String.index_opt s 'x' with
  | None -> bad ()
  | Some i -> (
      let c = String.sub s 0 i
      and r = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt c, int_of_string_opt r) with
      | Some c, Some r when c >= 1 && r >= 1 -> Ok (c, r)
      | _ -> bad ())

(* Assign each label to the tile whose x/y ranges hold it, clamping
   strays outside the chip bbox to the nearest tile.  Labels arrive
   sorted by decreasing y (Design.labels) and each bucket preserves that
   order, as Engine.run requires.  Buckets are indexed by the linear
   tile index [ci * rows + ri]. *)
let shard_labels grid labels =
  let cols = Array.length grid in
  let rows = if cols = 0 then 0 else Array.length grid.(0) in
  let buckets = Array.make (max 1 (cols * rows)) [] in
  List.iter
    (fun (lb : Ace_cif.Design.label) ->
      let x = lb.position.Point.x and y = lb.position.Point.y in
      let rec findc i =
        if i >= cols - 1 || x < grid.(i).(0).Box.r then i else findc (i + 1)
      in
      let ci = findc 0 in
      let rec findr j =
        if j >= rows - 1 || y < grid.(ci).(j).Box.t then j else findr (j + 1)
      in
      let ri = findr 0 in
      let t = (ci * rows) + ri in
      buckets.(t) <- lb :: buckets.(t))
    labels;
  Array.map List.rev buckets

(* ------------------------------------------------------------------ *)
(* Net creation keys                                                   *)
(* ------------------------------------------------------------------ *)

(* The flat extractor numbers net elements in creation order: strips top
   to bottom, phases (diffusion, poly, metal) in engine order within a
   strip, spans left to right within a phase.  The engine records each
   element's creation as (strip top, phase, span lo) — see
   {!Engine.raw.net_locations} — and that key is intrinsic to the
   geometry, not to how the scan was windowed.  [key_earlier] is
   element-creation order over those keys. *)
let key_earlier (y1, p1, x1) (y2, p2, x2) =
  y1 > y2 || (y1 = y2 && (p1 < p2 || (p1 = p2 && x1 < x2)))

(* Per part-local net (the same dense numbering {!Fragment.leaf_of_raw}
   uses), the earliest creation key of the class, in chip coordinates. *)
let leaf_net_keys (raw : Engine.raw) =
  let nets = raw.Engine.nets in
  let dense = Union_find.compress nets in
  let keys = Array.make (Union_find.class_count nets) None in
  Hashtbl.iter
    (fun e (p : Point.t) ->
      let phase = try Hashtbl.find raw.Engine.net_phase e with Not_found -> 0 in
      let k = (p.Point.y, phase, p.Point.x) in
      let c = dense.(Union_find.find nets e) in
      match keys.(c) with
      | Some k0 when key_earlier k0 k -> ()
      | _ -> keys.(c) <- Some k)
    raw.Engine.net_locations;
  keys

(* ------------------------------------------------------------------ *)
(* One tile                                                            *)
(* ------------------------------------------------------------------ *)

(* One tile: its own lazy stream over the shared (pre-warmed, read-only)
   design, clipped to the tile, run in window mode, and folded down to a
   fragment — all inside the worker domain. *)
let run_shard ~cancel ~on_shard design window labels idx =
  (* Each tile gets its own trace track whether it runs on a spawned
     domain or (worker 0, or sequential mode) on the calling one; the
     track's counters start at zero, so the snapshot at the end is the
     tile's own contribution. *)
  Trace.with_track ~tid:(idx + 1) ~name:(Printf.sprintf "shard %d" idx)
  @@ fun () ->
  on_shard idx;
  Cancel.check cancel;
  (* monotonic clock: shard telemetry must survive wall-clock steps *)
  let t0 = Trace.now_ns () in
  let stream = Ace_cif.Stream.create ~window design in
  let seen = ref 0 in
  let clipped =
    Engine.source_clipped (Engine.source_of_stream ~cancel stream) ~window
  in
  let source =
    {
      Engine.peek = clipped.Engine.peek;
      pop =
        (fun y ->
          let bs = clipped.Engine.pop y in
          seen := !seen + List.length bs;
          bs);
    }
  in
  let raw =
    Engine.run ~cancel
      { Engine.emit_geometry = false; window = Some window }
      source ~labels
  in
  let frag = Fragment.leaf_of_raw ~next_id:idx ~window raw in
  (* before the counter snapshot: the key scan's union-find lookups must
     be part of the shard's published counters *)
  let keys = leaf_net_keys raw in
  let shard =
    {
      s_window = window;
      s_boxes = !seen;
      s_stops = raw.Engine.stops;
      s_max_active = raw.Engine.max_active;
      s_seconds = Int64.to_float (Int64.sub (Trace.now_ns ()) t0) /. 1e9;
      s_timing = raw.Engine.timing;
      s_devices = List.length frag.Fragment.part.Hier.devices;
      s_partials = List.length frag.Fragment.partials;
      s_counters = Trace.counters_snapshot ();
    }
  in
  (frag, shard, raw.Engine.warnings, keys)

let stats_of_flat (st : Extractor.stats) =
  {
    jobs = 1;
    shards = [];
    stitch_seconds = 0.0;
    boxes = st.Extractor.boxes;
    stops = st.stops;
    max_active = st.max_active;
    timing = st.timing;
    warnings = st.warnings;
  }

(* ------------------------------------------------------------------ *)
(* Work-stealing scheduler                                             *)
(* ------------------------------------------------------------------ *)

(* A Chase–Lev work-stealing deque over a fixed ring of tile indices.
   The owner pushes and pops at [bottom]; thieves race on [top] with a
   CAS.  OCaml's Atomic operations are sequentially consistent, which is
   stronger than the fences the original algorithm needs.  The ring
   capacity exceeds the total tile count, so a push can never land on a
   slot a thief is still reading (at most [tcount] indices are
   outstanding across all deques at any moment). *)
module Deque = struct
  type t = { ring : int array; top : int Atomic.t; bottom : int Atomic.t }

  let create cap =
    { ring = Array.make (max 1 cap) 0; top = Atomic.make 0; bottom = Atomic.make 0 }

  let slot d i = i mod Array.length d.ring

  (* owner only *)
  let push d v =
    let b = Atomic.get d.bottom in
    d.ring.(slot d b) <- v;
    Atomic.set d.bottom (b + 1)

  (* owner only *)
  let pop d =
    let b = Atomic.get d.bottom - 1 in
    Atomic.set d.bottom b;
    let t = Atomic.get d.top in
    if b < t then begin
      (* empty; restore *)
      Atomic.set d.bottom t;
      None
    end
    else if b > t then Some d.ring.(slot d b)
    else begin
      (* last element: race the thieves for it *)
      let v = d.ring.(slot d b) in
      let won = Atomic.compare_and_set d.top t (t + 1) in
      Atomic.set d.bottom (t + 1);
      if won then Some v else None
    end

  let size d = Atomic.get d.bottom - Atomic.get d.top

  (* any thief *)
  let steal d =
    let t = Atomic.get d.top in
    let b = Atomic.get d.bottom in
    if t >= b then None
    else
      let v = d.ring.(slot d t) in
      if Atomic.compare_and_set d.top t (t + 1) then Some v else None
end

(* Run [work t] for every tile index once, over [nworkers] domains.
   Worker k starts with a contiguous block of tiles in its own deque;
   when it runs dry it steals half of the first non-empty victim's
   visible tiles.  Results land in [results] slot-per-tile, so the steal
   schedule can never affect anything downstream.  Every domain is
   joined before any failure propagates (a leaked domain wedges the
   runtime at exit); the lowest-indexed tile's exception wins, with its
   original backtrace. *)
let run_tiles ~cancel ~nworkers ~tcount work =
  let results = Array.make tcount None in
  let steals = Array.make nworkers 0 in
  let tile_err = Array.make tcount None in
  let worker_err = Array.make nworkers None in
  let deques = Array.init nworkers (fun _ -> Deque.create (tcount + 1)) in
  for k = 0 to nworkers - 1 do
    let lo = k * tcount / nworkers and hi = (k + 1) * tcount / nworkers in
    (* pushed high to low so the owner pops its lowest tile first *)
    for t = hi - 1 downto lo do
      Deque.push deques.(k) t
    done
  done;
  let remaining = Atomic.make tcount in
  let abort = Atomic.make false in
  let exception Tile_failed in
  let do_tile t =
    match work t with
    | r ->
        results.(t) <- Some r;
        ignore (Atomic.fetch_and_add remaining (-1))
    | exception e ->
        tile_err.(t) <- Some (e, Printexc.get_raw_backtrace ());
        Atomic.set abort true;
        raise Tile_failed
  in
  let try_steal k =
    let got = ref 0 and off = ref 1 in
    while !got = 0 && !off < nworkers do
      let victim = deques.((k + !off) mod nworkers) in
      let visible = Deque.size victim in
      if visible > 0 then begin
        (* half of what was visible; losing a CAS race just means the
           tile went to someone else, which costs nothing *)
        (try
           for _ = 1 to (visible + 1) / 2 do
             match Deque.steal victim with
             | Some t ->
                 incr got;
                 Deque.push deques.(k) t
             | None -> raise Exit
           done
         with Exit -> ())
      end;
      incr off
    done;
    steals.(k) <- steals.(k) + !got;
    !got > 0
  in
  let worker k =
    try
      let rec go () =
        if not (Atomic.get abort) then
          match Deque.pop deques.(k) with
          | Some t ->
              do_tile t;
              go ()
          | None -> hunt ()
      and hunt () =
        if Atomic.get remaining > 0 && not (Atomic.get abort) then begin
          Cancel.check cancel;
          if try_steal k then go ()
          else begin
            Domain.cpu_relax ();
            hunt ()
          end
        end
      in
      go ()
    with
    | Tile_failed -> ()
    | e ->
        (* a raise outside any tile (e.g. a deadline trip in the steal
           loop): remember it per worker, lowest worker index wins if no
           tile recorded anything more precise *)
        worker_err.(k) <- Some (e, Printexc.get_raw_backtrace ());
        Atomic.set abort true
  in
  let doms =
    Array.init (nworkers - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
  in
  (* the calling domain is the pool's first worker *)
  worker 0;
  Array.iter Domain.join doms;
  let reraise = function
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  in
  Array.iter reraise tile_err;
  Array.iter reraise worker_err;
  (Array.map Option.get results, Array.fold_left ( + ) 0 steals)

(* ------------------------------------------------------------------ *)
(* Canonical renumbering                                               *)
(* ------------------------------------------------------------------ *)

(* Rebuild the flattened circuit in the flat extractor's canonical
   shape, so a tiled extraction is byte-identical to the flat one for
   any grid, worker count and steal schedule.

   {!Extractor.circuit_of_raw} orders nets by sorting the dense class
   array (classes in first-creation order) with (location y descending,
   x ascending), where a class's location is its earliest element's
   creation point.  Both ingredients are reconstructible here: the
   merged class's earliest creation key is the [key_earlier]-minimum
   over the leaf classes flattening fused together, and arranging
   classes by that full (y, phase, x) key reproduces the flat dense
   order — so running the very same sort yields the very same
   permutation, ties included.  Devices are re-sorted with the flat
   comparator (location y then x, ascending). *)
let canonicalize ~name ~(bb : Box.t) (circuit : Circuit.t) activations
    tile_keys =
  let class_count = Array.length circuit.Circuit.nets in
  let keys = Array.make class_count None in
  List.iter
    (fun (a : Hier.activation) ->
      if a.Hier.act_leaf then begin
        let tile =
          (* leaf parts are named "W<tile index>" by Fragment *)
          let n = a.Hier.act_part in
          int_of_string (String.sub n 1 (String.length n - 1))
        in
        let leaf_keys : (int * int * int) option array = tile_keys.(tile) in
        Array.iteri
          (fun local g ->
            match leaf_keys.(local) with
            | None -> ()
            | Some k -> (
                match keys.(g) with
                | Some k0 when key_earlier k0 k -> ()
                | _ -> keys.(g) <- Some k))
          a.Hier.act_nets
      end)
    activations;
  let loc_of c =
    match keys.(c) with
    | Some (y, _, x) -> Point.make x y
    | None -> Point.origin
  in
  (* classes in flat dense order: first-creation order over full keys;
     keyless classes (impossible unless a net escaped every leaf) sink
     to the end deterministically *)
  let order = Array.init class_count (fun i -> i) in
  Array.sort
    (fun a b ->
      match (keys.(a), keys.(b)) with
      | Some ka, Some kb ->
          if key_earlier ka kb then -1 else if key_earlier kb ka then 1 else 0
      | Some _, None -> -1
      | None, Some _ -> 1
      | None, None -> Int.compare a b)
    order;
  (* ... then the flat extractor's own net sort, verbatim *)
  Array.sort
    (fun a b ->
      let pa = loc_of a and pb = loc_of b in
      let c = Int.compare pb.Point.y pa.Point.y in
      if c <> 0 then c else Int.compare pa.Point.x pb.Point.x)
    order;
  let position = Array.make class_count 0 in
  Array.iteri (fun rank c -> position.(c) <- rank) order;
  let nets =
    Array.map
      (fun c ->
        {
          Circuit.names = circuit.Circuit.nets.(c).Circuit.names;
          location = loc_of c;
          geometry = [];
        })
      order
  in
  let devices =
    Array.to_list circuit.Circuit.devices
    |> List.map (fun (d : Circuit.device) ->
           {
             d with
             Circuit.gate = position.(d.gate);
             source = position.(d.source);
             drain = position.(d.drain);
             location = Point.add d.location (Point.make bb.Box.l bb.Box.b);
           })
    |> List.sort (fun (a : Circuit.device) b ->
           let c = Int.compare a.location.Point.y b.location.Point.y in
           if c <> 0 then c
           else Int.compare a.location.Point.x b.location.Point.x)
    |> Array.of_list
  in
  { Circuit.name; devices; nets }

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)
(* ------------------------------------------------------------------ *)

let extract_with_stats ?(sequential = false) ?(cancel = Cancel.never)
    ?(on_shard = fun _ -> ()) ?(jobs = 1) ?tile ?(name = "chip") design =
  let flat () =
    on_shard 0;
    let circuit, st = Extractor.extract_with_stats ~cancel ~name design in
    (circuit, stats_of_flat st)
  in
  match Ace_cif.Design.bbox design with
  | None -> flat ()
  | Some bb ->
      let grid =
        match tile with
        | Some (cols, rows) -> tile_windows ~cols ~rows bb
        | None -> if jobs <= 1 then [||] else tile_windows ~cols:jobs ~rows:1 bb
      in
      let cols = Array.length grid in
      let rows = if cols = 0 then 0 else Array.length grid.(0) in
      let tcount = cols * rows in
      if tcount < 2 then flat ()
      else begin
        let tiles =
          Array.init tcount (fun t -> grid.(t / rows).(t mod rows))
        in
        (* Pre-warm every memo table the worker domains will read: the
           shared Design.t caches symbol bounding boxes and box counts in
           hash tables, so all writes must happen before the spawn. *)
        List.iter
          (fun id -> ignore (Ace_cif.Design.symbol_bbox design id))
          (Ace_cif.Design.symbol_ids design);
        ignore (Ace_cif.Design.count_boxes design);
        let buckets = shard_labels grid (Ace_cif.Design.labels design) in
        let work t =
          run_shard ~cancel ~on_shard design tiles.(t) buckets.(t) t
        in
        let nworkers = max 1 (min jobs tcount) in
        let results, steals =
          if sequential then (Array.init tcount work, 0)
          else run_tiles ~cancel ~nworkers ~tcount work
        in
        Trace.count Trace.Counter.Tiles_extracted tcount;
        if steals > 0 then Trace.count Trace.Counter.Tile_steals steals;
        let stitch_timing = Timing.create () in
        let circuit =
          (* the stitch gets its own track, after the per-tile ones *)
          Trace.with_track ~tid:(tcount + 1) ~name:"stitch" @@ fun () ->
          Timing.charge stitch_timing Timing.Stitch (fun () ->
              let frag_of t =
                let f, _, _, _ = results.(t) in
                f
              in
              let next = ref tcount in
              let parts = ref [] in
              let push_part (f : Fragment.t) =
                parts := f.Fragment.part :: !parts
              in
              let compose counter a b ~offset =
                let id = !next in
                incr next;
                let f = Fragment.compose ~next_id:id a b ~offset in
                Trace.incr counter;
                push_part f;
                f
              in
              (* each column composes bottom to top, then the columns
                 compose left to right — the same HEXT seam logic along
                 both axes *)
              let columns =
                Array.init cols (fun ci ->
                    let base = frag_of (ci * rows) in
                    push_part base;
                    let acc = ref base in
                    for ri = 1 to rows - 1 do
                      let b = frag_of ((ci * rows) + ri) in
                      push_part b;
                      acc :=
                        compose Trace.Counter.Seam_merges_v !acc b
                          ~offset:(Point.make 0 !acc.Fragment.height)
                    done;
                    !acc)
              in
              let root = ref columns.(0) in
              for ci = 1 to cols - 1 do
                root :=
                  compose Trace.Counter.Seam_merges_h !root columns.(ci)
                    ~offset:(Point.make !root.Fragment.width 0)
              done;
              let top =
                {
                  (Fragment.finalize ~next_id:!next !root) with
                  Hier.part_name = "Top";
                }
              in
              let hier =
                { Hier.parts = List.rev (top :: !parts); top = "Top" }
              in
              let flat_circuit, activations = Hier.flatten_ext hier in
              canonicalize ~name ~bb flat_circuit activations
                (Array.map (fun (_, _, _, keys) -> keys) results))
        in
        let shards =
          Array.to_list (Array.map (fun (_, s, _, _) -> s) results)
        in
        let warnings =
          List.concat
            (Array.to_list
               (Array.mapi
                  (fun i (_, _, ws, _) ->
                    List.map
                      (fun m ->
                        Ace_diag.Diag.warning ~code:"extract-anomaly"
                          (Printf.sprintf "shard %d/%d: %s" (i + 1) tcount m))
                      ws)
                  results))
        in
        let timing = Timing.sum (List.map (fun s -> s.s_timing) shards) in
        Timing.merge_into ~src:stitch_timing ~dst:timing;
        ( circuit,
          {
            jobs = nworkers;
            shards;
            stitch_seconds = Timing.seconds stitch_timing Timing.Stitch;
            boxes = Ace_cif.Design.count_boxes design;
            stops = List.fold_left (fun a s -> a + s.s_stops) 0 shards;
            max_active =
              List.fold_left (fun a s -> max a s.s_max_active) 0 shards;
            timing;
            warnings;
          } )
      end

let extract ?sequential ?cancel ?on_shard ?jobs ?tile ?name design =
  fst (extract_with_stats ?sequential ?cancel ?on_shard ?jobs ?tile ?name design)
