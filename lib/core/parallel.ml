open Ace_geom
open Ace_netlist
module Trace = Ace_trace.Trace

type shard = {
  s_window : Box.t;
  s_boxes : int;
  s_stops : int;
  s_max_active : int;
  s_seconds : float;
  s_timing : Timing.t;
  s_devices : int;
  s_partials : int;
  s_counters : int array;
}

type stats = {
  jobs : int;
  shards : shard list;
  stitch_seconds : float;
  boxes : int;
  stops : int;
  max_active : int;
  timing : Timing.t;
  warnings : Ace_diag.Diag.t list;
}

(* Shard balance: slowest shard over the mean — 1.0 is a perfect split,
   2.0 means one strip did twice its share of the scan. *)
let balance stats =
  match stats.shards with
  | [] -> 1.0
  | shards ->
      let times = List.map (fun s -> s.s_seconds) shards in
      let total = List.fold_left ( +. ) 0.0 times in
      let mean = total /. float_of_int (List.length times) in
      if mean > 0.0 then List.fold_left max 0.0 times /. mean else 1.0

(* Partition the chip bbox into [jobs] full-height vertical strips of
   near-equal width (the remainder spreads one unit over the leftmost
   strips).  Vertical strips keep every box top unchanged under clipping,
   so each shard's stream is exactly the flat stream restricted in x. *)
let windows ~jobs (bb : Box.t) =
  let w = Box.width bb in
  let n = max 1 (min jobs w) in
  let base = w / n and rem = w mod n in
  let x = ref bb.Box.l in
  Array.init n (fun i ->
      let wd = base + if i < rem then 1 else 0 in
      let l = !x in
      x := !x + wd;
      Box.make ~l ~b:bb.Box.b ~r:(l + wd) ~t:bb.Box.t)

(* Assign each label to the strip whose x-range holds it, clamping strays
   outside the chip bbox to the nearest strip.  Labels arrive sorted by
   decreasing y (Design.labels) and each bucket preserves that order, as
   Engine.run requires. *)
let shard_labels wins labels =
  let n = Array.length wins in
  let buckets = Array.make n [] in
  List.iter
    (fun (lb : Ace_cif.Design.label) ->
      let x = lb.position.Point.x in
      let rec find i =
        if i >= n - 1 || x < wins.(i).Box.r then i else find (i + 1)
      in
      let i = find 0 in
      buckets.(i) <- lb :: buckets.(i))
    labels;
  Array.map List.rev buckets

(* One shard: its own lazy stream over the shared (pre-warmed, read-only)
   design, clipped to the strip, run in window mode, and folded down to a
   fragment — all inside the worker domain. *)
let run_shard ~cancel ~on_shard design window labels idx =
  (* Each shard gets its own trace track whether it runs on a spawned
     domain or (worker 0, or sequential mode) on the calling one; the
     track's counters start at zero, so the snapshot at the end is the
     shard's own contribution. *)
  Trace.with_track ~tid:(idx + 1) ~name:(Printf.sprintf "shard %d" idx)
  @@ fun () ->
  on_shard idx;
  (* monotonic clock: shard telemetry must survive wall-clock steps *)
  let t0 = Trace.now_ns () in
  let stream = Ace_cif.Stream.create ~window design in
  let seen = ref 0 in
  let clipped =
    Engine.source_clipped (Engine.source_of_stream ~cancel stream) ~window
  in
  let source =
    {
      Engine.peek = clipped.Engine.peek;
      pop =
        (fun y ->
          let bs = clipped.Engine.pop y in
          seen := !seen + List.length bs;
          bs);
    }
  in
  let raw =
    Engine.run ~cancel
      { Engine.emit_geometry = false; window = Some window }
      source ~labels
  in
  let frag = Fragment.leaf_of_raw ~next_id:idx ~window raw in
  let shard =
    {
      s_window = window;
      s_boxes = !seen;
      s_stops = raw.Engine.stops;
      s_max_active = raw.Engine.max_active;
      s_seconds = Int64.to_float (Int64.sub (Trace.now_ns ()) t0) /. 1e9;
      s_timing = raw.Engine.timing;
      s_devices = List.length frag.Fragment.part.Hier.devices;
      s_partials = List.length frag.Fragment.partials;
      s_counters = Trace.counters_snapshot ();
    }
  in
  (frag, shard, raw.Engine.warnings)

let translate_circuit (c : Circuit.t) ~dx ~dy =
  let move p = Point.add p (Point.make dx dy) in
  {
    c with
    Circuit.devices =
      Array.map
        (fun (d : Circuit.device) -> { d with location = move d.location })
        c.Circuit.devices;
    nets =
      Array.map
        (fun (n : Circuit.net) -> { n with location = move n.location })
        c.Circuit.nets;
  }

let stats_of_flat (st : Extractor.stats) =
  {
    jobs = 1;
    shards = [];
    stitch_seconds = 0.0;
    boxes = st.Extractor.boxes;
    stops = st.stops;
    max_active = st.max_active;
    timing = st.timing;
    warnings = st.warnings;
  }

let extract_with_stats ?(sequential = false) ?(cancel = Cancel.never)
    ?(on_shard = fun _ -> ()) ?(jobs = 1) ?(name = "chip") design =
  let flat () =
    on_shard 0;
    let circuit, st = Extractor.extract_with_stats ~cancel ~name design in
    (circuit, stats_of_flat st)
  in
  match Ace_cif.Design.bbox design with
  | None -> flat ()
  | Some bb ->
      let wins = if jobs <= 1 then [||] else windows ~jobs bb in
      if Array.length wins < 2 then flat ()
      else begin
        let n = Array.length wins in
        (* Pre-warm every memo table the worker domains will read: the
           shared Design.t caches symbol bounding boxes and box counts in
           hash tables, so all writes must happen before the spawn. *)
        List.iter
          (fun id -> ignore (Ace_cif.Design.symbol_bbox design id))
          (Ace_cif.Design.symbol_ids design);
        ignore (Ace_cif.Design.count_boxes design);
        let buckets = shard_labels wins (Ace_cif.Design.labels design) in
        let work i = run_shard ~cancel ~on_shard design wins.(i) buckets.(i) i in
        let results =
          if sequential then Array.init n work
          else begin
            (* Capture instead of letting exceptions escape the spawned
               thunks: Domain.join re-raises a worker's exception, and a
               raise from the calling domain's own work (or from an early
               join) would leave later domains unjoined — leaked domains
               and a wedged runtime at exit.  Every domain is therefore
               joined unconditionally before any failure propagates; the
               lowest-indexed shard's exception wins, with its original
               backtrace. *)
            let capture f =
              match f () with
              | r -> Ok r
              | exception e -> Error (e, Printexc.get_raw_backtrace ())
            in
            let doms =
              Array.init (n - 1) (fun k ->
                  Domain.spawn (fun () -> capture (fun () -> work (k + 1))))
            in
            (* the calling domain is the pool's first worker *)
            let first = capture (fun () -> work 0) in
            let outcomes = Array.make n first in
            Array.iteri (fun k d -> outcomes.(k + 1) <- Domain.join d) doms;
            Array.map
              (function
                | Ok r -> r
                | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
              outcomes
          end
        in
        let stitch_timing = Timing.create () in
        let circuit =
          (* the stitch gets its own track, after the per-shard ones *)
          Trace.with_track ~tid:(n + 1) ~name:"stitch" @@ fun () ->
          Timing.charge stitch_timing Timing.Stitch (fun () ->
              let next = ref n in
              let parts = ref [] in
              let root =
                Array.fold_left
                  (fun acc (frag, _, _) ->
                    parts := frag.Fragment.part :: !parts;
                    match acc with
                    | None -> Some frag
                    | Some cur ->
                        let id = !next in
                        incr next;
                        let f =
                          Fragment.compose ~next_id:id cur frag
                            ~offset:(Point.make cur.Fragment.width 0)
                        in
                        parts := f.Fragment.part :: !parts;
                        Some f)
                  None results
              in
              let root = Option.get root in
              let top =
                {
                  (Fragment.finalize ~next_id:!next root) with
                  Hier.part_name = "Top";
                }
              in
              let hier =
                { Hier.parts = List.rev (top :: !parts); top = "Top" }
              in
              (* fragments are origin-normalized; shift back to chip
                 coordinates so locations match the flat extractor's *)
              translate_circuit (Hier.flatten hier) ~dx:bb.Box.l ~dy:bb.Box.b)
        in
        let circuit = { circuit with Circuit.name } in
        let shards =
          Array.to_list (Array.map (fun (_, s, _) -> s) results)
        in
        let warnings =
          List.concat
            (Array.to_list
               (Array.mapi
                  (fun i (_, _, ws) ->
                    List.map
                      (fun m ->
                        Ace_diag.Diag.warning ~code:"extract-anomaly"
                          (Printf.sprintf "shard %d/%d: %s" (i + 1) n m))
                      ws)
                  results))
        in
        let timing = Timing.sum (List.map (fun s -> s.s_timing) shards) in
        Timing.merge_into ~src:stitch_timing ~dst:timing;
        ( circuit,
          {
            jobs = n;
            shards;
            stitch_seconds = Timing.seconds stitch_timing Timing.Stitch;
            boxes = Ace_cif.Design.count_boxes design;
            stops = List.fold_left (fun a s -> a + s.s_stops) 0 shards;
            max_active =
              List.fold_left (fun a s -> max a s.s_max_active) 0 shards;
            timing;
            warnings;
          } )
      end

let extract ?sequential ?cancel ?on_shard ?jobs ?name design =
  fst (extract_with_stats ?sequential ?cancel ?on_shard ?jobs ?name design)
