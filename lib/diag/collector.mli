(** Bounded accumulation of diagnostics.

    A collector records diagnostics in order until its error cap is hit;
    producers poll {!saturated} to abandon work that could only generate
    more noise (cascading parse errors after a structural break).  Warnings
    and hints never count against the cap. *)

type t

(** [create ?max_errors ()] — default cap 100; the cap counts only
    [Error]-severity diagnostics.  [max_errors <= 0] means unbounded. *)
val create : ?max_errors:int -> unit -> t

(** Record a diagnostic.  Errors past the cap are dropped (counted, not
    stored); warnings and hints are always stored. *)
val add : t -> Diag.t -> unit

(** True once the error cap is reached — time to stop producing. *)
val saturated : t -> bool

(** Diagnostics in insertion order.  When errors were dropped, a trailing
    [Hint] with code ["too-many-errors"] reports how many. *)
val to_list : t -> Diag.t list

val error_count : t -> int

(** Total recorded (stored) diagnostics, all severities. *)
val count : t -> int
