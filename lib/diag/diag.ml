type severity = Error | Warning | Hint

type span = { start : int; stop : int }

type t = {
  severity : severity;
  code : string;
  span : span option;
  message : string;
}

let make ?span severity ~code message =
  Ace_trace.Trace.incr Ace_trace.Trace.Counter.Diags;
  { severity; code; span; message }
let error ?span ~code message = make ?span Error ~code message
let warning ?span ~code message = make ?span Warning ~code message
let hint ?span ~code message = make ?span Hint ~code message

let errorf ?span ~code fmt =
  Format.kasprintf (fun message -> error ?span ~code message) fmt

let warningf ?span ~code fmt =
  Format.kasprintf (fun message -> warning ?span ~code message) fmt

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Hint -> "hint"

let severity_rank = function Error -> 2 | Warning -> 1 | Hint -> 0
let compare_severity a b = Int.compare (severity_rank a) (severity_rank b)
let is_error d = d.severity = Error

let max_severity = function
  | [] -> None
  | d :: rest ->
      Some
        (List.fold_left
           (fun acc { severity; _ } ->
             if compare_severity severity acc > 0 then severity else acc)
           d.severity rest)

let line_col ~source pos =
  let pos = max 0 (min pos (String.length source)) in
  let line = ref 1 and col = ref 1 in
  for i = 0 to pos - 1 do
    if source.[i] = '\n' then (
      incr line;
      col := 1)
    else incr col
  done;
  (!line, !col)

(* The source line containing [pos], without its newline. *)
let source_line ~source pos =
  let len = String.length source in
  let pos = max 0 (min pos (max 0 (len - 1))) in
  if len = 0 then ("", 0)
  else begin
    let first = ref pos in
    while !first > 0 && source.[!first - 1] <> '\n' do
      decr first
    done;
    let last = ref pos in
    while !last < len && source.[!last] <> '\n' do
      incr last
    done;
    (String.sub source !first (!last - !first), pos - !first)
  end

let to_string ?source d =
  let head = Printf.sprintf "%s[%s]" (severity_to_string d.severity) d.code in
  match (d.span, source) with
  | None, _ -> Printf.sprintf "%s: %s" head d.message
  | Some { start; _ }, None ->
      Printf.sprintf "%s at byte %d: %s" head start d.message
  | Some { start; _ }, Some source ->
      let line, col = line_col ~source start in
      let text, offset = source_line ~source start in
      (* clip very long lines so the caret stays on screen *)
      let text, offset =
        if String.length text <= 120 then (text, offset)
        else
          let from = max 0 (offset - 60) in
          let len = min 120 (String.length text - from) in
          (String.sub text from len, offset - from)
      in
      let caret = String.make offset ' ' ^ "^" in
      Printf.sprintf "%s at line %d, column %d: %s\n  %s\n  %s" head line col
        d.message text caret

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ?source d =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"severity\":\"%s\",\"code\":\"%s\",\"message\":\"%s\""
       (severity_to_string d.severity)
       (json_escape d.code) (json_escape d.message));
  (match d.span with
  | None -> ()
  | Some { start; stop } ->
      Buffer.add_string buf (Printf.sprintf ",\"start\":%d,\"end\":%d" start stop);
      match source with
      | None -> ()
      | Some source ->
          let line, col = line_col ~source start in
          Buffer.add_string buf
            (Printf.sprintf ",\"line\":%d,\"column\":%d" line col));
  Buffer.add_char buf '}';
  Buffer.contents buf
