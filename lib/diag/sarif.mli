(** SARIF 2.1.0 output — the machine-readable reporting format GitHub CI
    ingests for inline annotations.

    One {!render} call produces one complete SARIF log (a single run):
    [tool.driver] carries the rule registry metadata, each result carries
    [ruleId], [level], a message, a physical location (artifact URI plus
    1-based line/column region) and, when given, a stable fingerprint under
    [partialFingerprints."acePrint/v1"]. *)

(** Registry metadata for [tool.driver.rules]. *)
type rule = {
  id : string;
  summary : string;  (** [shortDescription.text]; omitted when empty *)
  help : string;  (** [help.text]; omitted when empty *)
  level : string;  (** [defaultConfiguration.level] *)
}

type result = {
  rule_id : string;
  level : string;  (** "error" / "warning" / "note" *)
  message : string;
  uri : string option;  (** artifact the finding is located in *)
  line : int;  (** 1-based *)
  column : int;  (** 1-based *)
  fingerprint : string option;
}

(** Error → "error", Warning → "warning", Hint → "note". *)
val level_of_severity : Diag.severity -> string

(** Build a result from a diagnostic: line/column resolved from the span
    against [source] when both are available (else 1:1). *)
val of_diag :
  ?source:string -> ?uri:string -> ?fingerprint:string -> Diag.t -> result

(** Render a complete SARIF 2.1.0 log.  Rule ids appearing in results but
    not in [rules] get synthesized bare entries so [ruleIndex] always
    resolves. *)
val render :
  tool:string -> ?version:string -> ?rules:rule list -> result list -> string
