(** Structured diagnostics for the CIF front-end.

    A diagnostic carries a severity, a stable machine-readable code (e.g.
    ["cif-expected-semi"], ["sem-undefined-symbol"]), an optional byte span
    into the source text, and a human message.  Spans are resolved to
    line/column lazily, against whatever source string the renderer is
    given, so diagnostics stay cheap to create and independent of any
    particular file. *)

type severity = Error | Warning | Hint

(** Half-open byte range [\[start, stop)] into the source text. *)
type span = { start : int; stop : int }

type t = {
  severity : severity;
  code : string;  (** stable identifier, kebab-case, never localized *)
  span : span option;
  message : string;
}

val make : ?span:span -> severity -> code:string -> string -> t
val error : ?span:span -> code:string -> string -> t
val warning : ?span:span -> code:string -> string -> t
val hint : ?span:span -> code:string -> string -> t

(** [errorf ~code fmt …] — printf-style constructors. *)
val errorf :
  ?span:span -> code:string -> ('a, Format.formatter, unit, t) format4 -> 'a

val warningf :
  ?span:span -> code:string -> ('a, Format.formatter, unit, t) format4 -> 'a

val severity_to_string : severity -> string

(** Severity ordering: [Error > Warning > Hint]. *)
val compare_severity : severity -> severity -> int

val is_error : t -> bool

(** [max_severity diags] is [None] on an empty list. *)
val max_severity : t list -> severity option

(** [line_col ~source pos] is the 1-based (line, column) of byte [pos]. *)
val line_col : source:string -> int -> int * int

(** Human rendering: ["error[code] at line L, column C: message"], followed
    by the offending source line with a caret when [source] is given. *)
val to_string : ?source:string -> t -> string

(** One-line JSON object: severity, code, message, byte span, and — when
    [source] is given — resolved 1-based line/column. *)
val to_json : ?source:string -> t -> string

(** Escape a string for inclusion in a JSON string literal (shared by the
    JSON and SARIF renderers). *)
val json_escape : string -> string
