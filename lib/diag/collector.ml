type t = {
  max_errors : int;  (** <= 0 means unbounded *)
  mutable rev : Diag.t list;
  mutable stored : int;
  mutable errors : int;
  mutable dropped : int;
}

let create ?(max_errors = 100) () =
  { max_errors; rev = []; stored = 0; errors = 0; dropped = 0 }

let saturated t = t.max_errors > 0 && t.errors >= t.max_errors

let add t (d : Diag.t) =
  if Diag.is_error d then
    if saturated t then t.dropped <- t.dropped + 1
    else begin
      t.errors <- t.errors + 1;
      t.rev <- d :: t.rev;
      t.stored <- t.stored + 1
    end
  else begin
    t.rev <- d :: t.rev;
    t.stored <- t.stored + 1
  end

let to_list t =
  let tail =
    if t.dropped = 0 then []
    else
      [
        Diag.hint ~code:"too-many-errors"
          (Printf.sprintf
             "%d further error%s suppressed (error cap %d reached)" t.dropped
             (if t.dropped = 1 then "" else "s")
             t.max_errors);
      ]
  in
  List.rev_append t.rev tail

let error_count t = t.errors
let count t = t.stored
