(* SARIF 2.1.0 rendering — the CI-grade third renderer next to
   Diag.to_string and Diag.to_json.  One render call produces one complete
   SARIF log with a single run. *)

type rule = {
  id : string;
  summary : string;
  help : string;
  level : string;
}

type result = {
  rule_id : string;
  level : string;
  message : string;
  uri : string option;
  line : int;
  column : int;
  fingerprint : string option;
}

let level_of_severity = function
  | Diag.Error -> "error"
  | Diag.Warning -> "warning"
  | Diag.Hint -> "note"

let of_diag ?source ?uri ?fingerprint (d : Diag.t) =
  let line, column =
    match (d.Diag.span, source) with
    | Some { Diag.start; _ }, Some source -> Diag.line_col ~source start
    | _ -> (1, 1)
  in
  {
    rule_id = d.Diag.code;
    level = level_of_severity d.Diag.severity;
    message = d.Diag.message;
    uri;
    line;
    column;
    fingerprint;
  }

let esc = Diag.json_escape

(* tool.driver.rules must describe every ruleId appearing in results;
   ids with no registered metadata get a bare synthesized entry. *)
let complete_rules rules results =
  let known = List.map (fun r -> r.id) rules in
  let extra =
    List.fold_left
      (fun acc (r : result) ->
        if List.mem r.rule_id known || List.mem r.rule_id acc then acc
        else r.rule_id :: acc)
      [] results
    |> List.rev
    |> List.map (fun id -> { id; summary = ""; help = ""; level = "warning" })
  in
  rules @ extra

let render ~tool ?(version = "0.1") ?(rules = []) results =
  let rules = complete_rules rules results in
  let buf = Buffer.create 1024 in
  let add = Buffer.add_string buf in
  add "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",";
  add "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{";
  add (Printf.sprintf "\"name\":\"%s\",\"version\":\"%s\"," (esc tool)
         (esc version));
  add "\"informationUri\":\"https://doi.org/10.1145/800667.754923\",";
  add "\"rules\":[";
  List.iteri
    (fun i r ->
      if i > 0 then add ",";
      add (Printf.sprintf "{\"id\":\"%s\",\"name\":\"%s\"" (esc r.id)
             (esc r.id));
      if r.summary <> "" then
        add
          (Printf.sprintf ",\"shortDescription\":{\"text\":\"%s\"}"
             (esc r.summary));
      if r.help <> "" then
        add (Printf.sprintf ",\"help\":{\"text\":\"%s\"}" (esc r.help));
      add
        (Printf.sprintf ",\"defaultConfiguration\":{\"level\":\"%s\"}}"
           (esc r.level)))
    rules;
  add "]}},\"results\":[";
  let rule_index id =
    let rec go i = function
      | [] -> -1
      | r :: rest -> if r.id = id then i else go (i + 1) rest
    in
    go 0 rules
  in
  List.iteri
    (fun i (r : result) ->
      if i > 0 then add ",";
      add
        (Printf.sprintf "{\"ruleId\":\"%s\",\"ruleIndex\":%d,\"level\":\"%s\","
           (esc r.rule_id) (rule_index r.rule_id) (esc r.level));
      add (Printf.sprintf "\"message\":{\"text\":\"%s\"}," (esc r.message));
      add "\"locations\":[{\"physicalLocation\":{";
      (match r.uri with
      | Some uri ->
          add
            (Printf.sprintf "\"artifactLocation\":{\"uri\":\"%s\"}," (esc uri))
      | None -> ());
      add
        (Printf.sprintf
           "\"region\":{\"startLine\":%d,\"startColumn\":%d}}}]" r.line
           r.column);
      (match r.fingerprint with
      | Some fp ->
          add
            (Printf.sprintf
               ",\"partialFingerprints\":{\"acePrint/v1\":\"%s\"}" (esc fp))
      | None -> ());
      add "}")
    results;
  add "]}]}";
  Buffer.contents buf
