open Ace_geom
open Ace_netlist

(* Monotonic seconds for the phase-time accumulators: immune to wall-clock
   steps, same timebase as the trace spans. *)
let mono_s () = Int64.to_float (Ace_trace.Trace.now_ns ()) /. 1e9

type stats = {
  leaf_extractions : int;
  compose_calls : int;
  window_hits : int;
  compose_hits : int;
  front_end_seconds : float;
  leaf_seconds : float;
  compose_seconds : float;
}

let back_end_seconds s = s.leaf_seconds +. s.compose_seconds

let compose_fraction s =
  let b = back_end_seconds s in
  if b > 0.0 then s.compose_seconds /. b else 0.0

module Canon_table = Hashtbl.Make (struct
  type t = Content.canonical

  let equal = Content.canonical_equal
  let hash = Content.canonical_hash
end)

(* The window-redundancy and compose tables.  Because entries are keyed by
   canonical window *content*, a cache is valid across designs: re-running
   extraction after a local edit re-extracts only the windows whose
   contents actually changed — the papers' "incremental extractor". *)
type cache = {
  window_table : Fragment.t Canon_table.t;
  compose_table : (int * int * int * int, Fragment.t) Hashtbl.t;
  part_registry : (string, Hier.part) Hashtbl.t;
  mutable next_id : int;
}

let create_cache () =
  {
    window_table = Canon_table.create 256;
    compose_table = Hashtbl.create 256;
    part_registry = Hashtbl.create 256;
    next_id = 0;
  }

type state = {
  design : Ace_cif.Design.t;
  leaf_limit : int;
  memoize : bool;
  cache : cache;
  mutable leaf_extractions : int;
  mutable compose_calls : int;
  mutable window_hits : int;
  mutable compose_hits : int;
  mutable front_end_seconds : float;
  mutable leaf_seconds : float;
  mutable compose_seconds : float;
}

let fresh_id st =
  let id = st.cache.next_id in
  st.cache.next_id <- id + 1;
  id

let register_part st (frag : Fragment.t) =
  Hashtbl.replace st.cache.part_registry frag.Fragment.part.Hier.part_name
    frag.Fragment.part

let make_leaf st (w : Content.window) =
  st.leaf_extractions <- st.leaf_extractions + 1;
  let boxes =
    List.filter_map
      (function
        | Content.Geometry (lyr, bx) -> Some (lyr, bx)
        | Content.Label _ | Content.Instance _ -> None)
      w.Content.items
  in
  let labels =
    List.filter_map
      (function
        | Content.Label lab -> Some lab
        | Content.Geometry _ | Content.Instance _ -> None)
      w.Content.items
  in
  let frag =
    Fragment.leaf ~next_id:(fresh_id st) ~window:w.Content.area ~boxes ~labels
  in
  register_part st frag;
  frag

let make_compose st a b ~offset =
  st.compose_calls <- st.compose_calls + 1;
  let frag = Fragment.compose ~next_id:(fresh_id st) a b ~offset in
  register_part st frag;
  frag

(* Analyze one window to a fragment.  Fragments are origin-normalized; the
   caller places them at the window's min corner. *)
let rec analyze st (w : Content.window) : Fragment.t =
  let canon =
    let t0 = mono_s () in
    let c = Content.canonicalize w in
    st.front_end_seconds <-
      st.front_end_seconds +. (mono_s () -. t0);
    c
  in
  match
    if st.memoize then Canon_table.find_opt st.cache.window_table canon
    else None
  with
  | Some frag ->
      st.window_hits <- st.window_hits + 1;
      frag
  | None ->
      let frag = analyze_uncached st w in
      if st.memoize then Canon_table.replace st.cache.window_table canon frag;
      frag

and analyze_uncached st w =
  if Content.has_instances w then begin
    let cut =
      let t0 = mono_s () in
      let c = Content.choose_cut st.design w in
      st.front_end_seconds <-
        st.front_end_seconds +. (mono_s () -. t0);
      c
    in
    match cut with
    | Some cut -> subdivide st w cut
    | None ->
        (* overlapping bounding boxes: expand one level and retry *)
        let expanded =
          let t0 = mono_s () in
          let e = Content.expand_instances st.design w in
          st.front_end_seconds <-
            st.front_end_seconds +. (mono_s () -. t0);
          e
        in
        analyze st expanded
  end
  else if Content.box_count w > st.leaf_limit then begin
    match Content.choose_cut st.design w with
    | Some cut -> subdivide st w cut
    | None -> timed_leaf st w
  end
  else timed_leaf st w

and timed_leaf st w =
  let t0 = mono_s () in
  let frag = make_leaf st w in
  st.leaf_seconds <- st.leaf_seconds +. (mono_s () -. t0);
  frag

and subdivide st w cut =
  let t0 = mono_s () in
  let low, high = Content.split st.design w cut in
  st.front_end_seconds <- st.front_end_seconds +. (mono_s () -. t0);
  let fa = analyze st low in
  let fb = analyze st high in
  let offset =
    match cut with
    | Content.Vertical _ -> Point.make fa.Fragment.width 0
    | Content.Horizontal _ -> Point.make 0 fa.Fragment.height
  in
  let key = (fa.Fragment.id, fb.Fragment.id, offset.Point.x, offset.Point.y) in
  match
    if st.memoize then Hashtbl.find_opt st.cache.compose_table key else None
  with
  | Some frag ->
      st.compose_hits <- st.compose_hits + 1;
      frag
  | None ->
      let t0 = mono_s () in
      let frag = make_compose st fa fb ~offset in
      st.compose_seconds <- st.compose_seconds +. (mono_s () -. t0);
      if st.memoize then Hashtbl.replace st.cache.compose_table key frag;
      frag

(* Parts reachable from the root fragment's part, children first. *)
let reachable_parts registry root_part =
  let visited = Hashtbl.create 64 in
  let acc = ref [] in
  let rec visit (part : Hier.part) =
    if not (Hashtbl.mem visited part.Hier.part_name) then begin
      Hashtbl.replace visited part.Hier.part_name ();
      List.iter
        (fun (inst : Hier.instance) ->
          match Hashtbl.find_opt registry inst.Hier.part_name with
          | Some child -> visit child
          | None -> ())
        part.Hier.instances;
      acc := part :: !acc
    end
  in
  visit root_part;
  List.rev !acc

let extract ?(leaf_limit = 512) ?(memoize = true) ?cache design =
  Ace_trace.Trace.with_span "hext.extract" @@ fun () ->
  let cache =
    match cache with
    | Some c -> c
    | None -> create_cache ()
  in
  let st =
    {
      design;
      leaf_limit;
      memoize;
      cache;
      leaf_extractions = 0;
      compose_calls = 0;
      window_hits = 0;
      compose_hits = 0;
      front_end_seconds = 0.0;
      leaf_seconds = 0.0;
      compose_seconds = 0.0;
    }
  in
  let parts =
    match Content.of_design design with
    | None ->
        [
          {
            Hier.part_name = "Top";
            net_count = 0;
            exports = [];
            net_names = [];
            devices = [];
            instances = [];
          };
        ]
    | Some w ->
        let root = analyze st w in
        let top =
          { (Fragment.finalize ~next_id:(fresh_id st) root) with
            Hier.part_name = "Top" }
        in
        reachable_parts cache.part_registry root.Fragment.part @ [ top ]
  in
  let hier = { Hier.parts; top = "Top" } in
  ( hier,
    {
      leaf_extractions = st.leaf_extractions;
      compose_calls = st.compose_calls;
      window_hits = st.window_hits;
      compose_hits = st.compose_hits;
      front_end_seconds = st.front_end_seconds;
      leaf_seconds = st.leaf_seconds;
      compose_seconds = st.compose_seconds;
    } )

let extract_flat ?leaf_limit ?memoize ?cache ?(name = "chip") design =
  let hier, stats = extract ?leaf_limit ?memoize ?cache design in
  let circuit = Hier.flatten hier in
  ({ circuit with Circuit.name }, stats)

(* ---------- cell summaries for hierarchical LVS ------------------------- *)

let cell_fingerprint (p : Hier.part) =
  (* Structural hash over everything that determines the part's extracted
     behavior; identical parts (HEXT reuses one part for every redundant
     window) trivially share it, so a per-fingerprint memo pairs each
     distinct cell with its reference exactly once. *)
  let mix h x = ((h * 1000003) + x + 0x9e3779b9) land max_int in
  let str h s =
    String.fold_left
      (fun h c -> mix h (Char.code c))
      (mix h (String.length s))
      s
  in
  let h = ref (mix 0x0ACE p.Hier.net_count) in
  h := str !h p.Hier.part_name;
  List.iter (fun e -> h := mix !h e) p.Hier.exports;
  List.iter (fun (n, nm) -> h := str (mix !h n) nm) p.Hier.net_names;
  List.iter
    (fun (d : Hier.hdevice) ->
      h :=
        mix !h
          (match d.Hier.dtype with
          | Ace_tech.Nmos.Enhancement -> 3
          | Ace_tech.Nmos.Depletion -> 4);
      h := mix (mix (mix !h d.Hier.gate) d.Hier.source) d.Hier.drain;
      h := mix (mix !h d.Hier.length) d.Hier.width)
    p.Hier.devices;
  List.iter
    (fun (i : Hier.instance) ->
      h := str !h i.Hier.part_name;
      List.iter (fun (a, b) -> h := mix (mix !h a) b) i.Hier.net_map)
    p.Hier.instances;
  !h land max_int

let boundary_pins (p : Hier.part) = p.Hier.exports
