open Ace_netlist

(** HEXT — the hierarchical circuit extractor (public entry points).

    The front-end partitions the chip into non-overlapping windows
    ({!Content}), recognizing redundant windows through a canonical-form
    table; the back-end extracts each {e unique} leaf window with the
    scanline engine in interface mode and composes adjacent windows,
    memoizing compose results ({!Fragment}).  The output is a hierarchical
    wirelist ({!Ace_netlist.Hier.t}) whose flattening equals the flat
    extractor's circuit (tested). *)

type stats = {
  leaf_extractions : int;  (** calls to the (modified) flat extractor *)
  compose_calls : int;  (** compose operations actually performed *)
  window_hits : int;  (** redundant windows recognized by the table *)
  compose_hits : int;  (** compose results served from the memo table *)
  front_end_seconds : float;  (** partitioning and window recognition *)
  leaf_seconds : float;  (** flat extraction of unique leaf windows *)
  compose_seconds : float;  (** composing windows *)
}

(** [back_end_seconds] = leaf + compose (HEXT Table 5-1's split). *)
val back_end_seconds : stats -> float

(** Fraction of back-end time spent composing (HEXT Table 5-2). *)
val compose_fraction : stats -> float

(** A persistent window-redundancy and compose table.  Entries are keyed
    by canonical window {e content}, so one cache is valid across designs:
    passing the same cache to successive extractions of edited versions of
    a chip re-extracts only the windows that actually changed.  This is
    the {e incremental extractor} ACE §6 points to as future work. *)
type cache

val create_cache : unit -> cache

(** Extract a design hierarchically.  [leaf_limit] bounds the number of
    geometry boxes a leaf window may hold before the partitioner keeps
    slicing (default 512).  [memoize] turns the window-redundancy and
    compose tables off for ablation runs (default true).  [cache] persists
    those tables across calls (incremental extraction). *)
val extract :
  ?leaf_limit:int ->
  ?memoize:bool ->
  ?cache:cache ->
  Ace_cif.Design.t ->
  Hier.t * stats

(** Extract and flatten to a flat circuit (the papers note most CAD tools
    want a flat wirelist; flattening is linear in circuit size). *)
val extract_flat :
  ?leaf_limit:int ->
  ?memoize:bool ->
  ?cache:cache ->
  ?name:string ->
  Ace_cif.Design.t ->
  Circuit.t * stats

(** {1 Cell summaries}

    Helpers for consumers (hierarchical LVS) that memoize per-part
    analysis results across instances. *)

val cell_fingerprint : Hier.part -> int
(** Structural fingerprint of a part: a hash over its net count, name,
    exports, net names, devices, and child instance bindings.  Identical
    parts share a fingerprint, so a per-fingerprint memo visits each
    distinct cell exactly once. *)

val boundary_pins : Hier.part -> int list
(** The part's boundary terminals — its exported local nets — in
    declaration order. *)
