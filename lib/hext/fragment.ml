(* Re-export: the fragment/compose machinery moved to Ace_core so the
   domain-parallel sharded extractor can reuse it; HEXT consumes it from
   there.  Kept here as an alias so Ace_hext.Fragment stays a valid name. *)
include Ace_core.Fragment
