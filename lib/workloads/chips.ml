open Ace_tech

let single_inverter ?lambda () =
  let b = Builder.create ?lambda () in
  let inv = Builder.symbol b ~name:"inverter" (Cells.inverter ~labels:true b) in
  Builder.file b [ Builder.call b inv ~dx:0 ~dy:0 ]

let single_nand2 ?lambda () =
  let b = Builder.create ?lambda () in
  let g = Builder.symbol b ~name:"nand2" (Cells.nand2 ~labels:true b) in
  Builder.file b [ Builder.call b g ~dx:0 ~dy:0 ]

let single_nor2 ?lambda () =
  let b = Builder.create ?lambda () in
  let g = Builder.symbol b ~name:"nor2" (Cells.nor2 ~labels:true b) in
  Builder.file b [ Builder.call b g ~dx:0 ~dy:0 ]

let single_mux2 ?lambda () =
  let b = Builder.create ?lambda () in
  let g = Builder.symbol b ~name:"mux2" (Cells.mux2 ~labels:true b) in
  Builder.file b [ Builder.call b g ~dx:0 ~dy:0 ]

(* Cross-coupled inverter pair.  The forward path uses the standard
   output-to-next-input connector at the cell seam; the feedback path
   taps the second inverter's pull-up poly, runs down its right edge,
   back under both cells below the GND rail, and up into the first
   inverter's input poly.  Everything sits at (4,4) so the feedback
   stays in positive coordinates. *)
let latch ?lambda () =
  let b = Builder.create ?lambda () in
  let w = Cells.cell_width in
  let linked =
    Builder.symbol b ~name:"inv_fwd"
      (Cells.inverter b @ Cells.output_to_next_input b)
  in
  let last = Builder.symbol b ~name:"inv_back" (Cells.inverter b) in
  Builder.file b
    [
      Builder.call b linked ~dx:4 ~dy:4;
      Builder.call b last ~dx:(4 + w) ~dy:4;
      (* feedback: tap east of the second pull-up, down, under, up, in *)
      Builder.box b Layer.Poly ~l:(4 + (2 * w) - 4) ~b:16 ~r:(4 + (2 * w)) ~t_:18;
      Builder.box b Layer.Poly ~l:(4 + (2 * w) - 2) ~b:0 ~r:(4 + (2 * w)) ~t_:18;
      Builder.box b Layer.Poly ~l:0 ~b:0 ~r:(4 + (2 * w)) ~t_:2;
      Builder.box b Layer.Poly ~l:0 ~b:0 ~r:2 ~t_:10;
      Builder.box b Layer.Poly ~l:0 ~b:8 ~r:6 ~t_:10;
      Builder.label b "VDD" ~x:5 ~y:28 ~layer:Layer.Metal ();
      Builder.label b "GND" ~x:5 ~y:5 ~layer:Layer.Metal ();
      Builder.label b "QB" ~x:11 ~y:17 ~layer:Layer.Diffusion ();
      Builder.label b "Q" ~x:(4 + w + 7) ~y:17 ~layer:Layer.Diffusion ();
    ]

let inverter_chain ?lambda ~n () =
  if n <= 0 then invalid_arg "Chips.inverter_chain: n must be positive";
  let b = Builder.create ?lambda () in
  let linked =
    Builder.symbol b ~name:"inv_linked"
      (Cells.inverter b @ Cells.output_to_next_input b)
  in
  let last = Builder.symbol b ~name:"inv_last" (Cells.inverter b) in
  Builder.file b
    (List.init n (fun i ->
         Builder.call b
           (if i < n - 1 then linked else last)
           ~dx:(i * Cells.cell_width) ~dy:0)
    @ [
        Builder.label b "INP" ~x:1 ~y:5 ~layer:Layer.Poly ();
        Builder.label b "VDD" ~x:1 ~y:24 ~layer:Layer.Metal ();
        Builder.label b "GND" ~x:1 ~y:1 ~layer:Layer.Metal ();
        Builder.label b "OUT"
          ~x:(((n - 1) * Cells.cell_width) + 7)
          ~y:13 ~layer:Layer.Diffusion ();
      ])

let four_inverters ?lambda () =
  let b = Builder.create ?lambda () in
  let w = Cells.cell_width in
  let linked =
    Builder.symbol b ~name:"inverter"
      (Cells.inverter b @ Cells.output_to_next_input b)
  in
  let pair =
    Builder.symbol b ~name:"pair"
      [ Builder.call b linked ~dx:0 ~dy:0; Builder.call b linked ~dx:w ~dy:0 ]
  in
  let quad =
    Builder.symbol b ~name:"quad"
      [ Builder.call b pair ~dx:0 ~dy:0; Builder.call b pair ~dx:(2 * w) ~dy:0 ]
  in
  Builder.file b
    [
      Builder.call b quad ~dx:0 ~dy:0;
      Builder.label b "in" ~x:1 ~y:5 ~layer:Layer.Poly ();
      Builder.label b "VDD" ~x:1 ~y:24 ~layer:Layer.Metal ();
      Builder.label b "GND" ~x:1 ~y:1 ~layer:Layer.Metal ();
      Builder.label b "out" ~x:((3 * w) + 7) ~y:13 ~layer:Layer.Diffusion ();
    ]

let ram_array ?lambda ~rows ~cols () = Arrays.mesh ?lambda ~rows ~cols ()

(* ------------------------------------------------------------------ *)
(* Datapath: bit-slices of chained inverters                            *)
(* ------------------------------------------------------------------ *)

let datapath_section b ~bits ~stages ~x0 ~y0 =
  if bits <= 0 || stages <= 0 then invalid_arg "Chips.datapath: bad size";
  let linked =
    Builder.symbol b (Cells.inverter b @ Cells.output_to_next_input b)
  in
  let last = Builder.symbol b (Cells.inverter b) in
  let slice =
    Builder.symbol b ~name:"slice"
      (List.init stages (fun i ->
           Builder.call b
             (if i < stages - 1 then linked else last)
             ~dx:(i * Cells.cell_width) ~dy:0))
  in
  (* vertical pitch leaves a 3λ gap so adjacent slices' rails keep the
     metal spacing rule (and never short VDD into GND) *)
  let pitch = Cells.cell_height + 3 in
  List.init bits (fun j -> Builder.call b slice ~dx:x0 ~dy:(y0 + (j * pitch)))

let datapath ?lambda ~bits ~stages () =
  let b = Builder.create ?lambda () in
  Builder.file b (datapath_section b ~bits ~stages ~x0:0 ~y0:0)

(* ------------------------------------------------------------------ *)
(* Random logic: jittered unique cells plus random metal routing        *)
(* ------------------------------------------------------------------ *)

(* A deterministic split-mix style generator so workloads are reproducible
   across runs and platforms. *)
module Rng = struct
  type t = { mutable state : int }

  let create seed = { state = (seed * 2654435761) lor 1 }

  let next t =
    let s = t.state in
    let s = s lxor (s lsl 13) in
    let s = s lxor (s lsr 7) in
    let s = s lxor (s lsl 17) in
    t.state <- s;
    s land max_int

  let int t bound = if bound <= 0 then 0 else next t mod bound
end

(* An inverter with rng-perturbed decorative details: the perturbations keep
   the circuit an inverter but make the geometry of every cell unique, so a
   hierarchical extractor finds nothing to reuse — the character of the
   papers' irregular chips. *)
let jittered_inverter b rng =
  let input_end = 11 + Rng.int rng 3 in
  let stub_x = Rng.int rng 11 in
  let stub2_x = Rng.int rng 11 in
  [
    Builder.box b Layer.Metal ~l:0 ~b:23 ~r:Cells.cell_width ~t_:Cells.cell_height;
    Builder.box b Layer.Metal ~l:0 ~b:0 ~r:Cells.cell_width ~t_:3;
    Builder.box b Layer.Diffusion ~l:6 ~b:7 ~r:8 ~t_:25;
    Builder.box b Layer.Poly ~l:4 ~b:12 ~r:10 ~t_:22;
    Builder.box b Layer.Buried ~l:5 ~b:12 ~r:9 ~t_:14;
    Builder.box b Layer.Implant ~l:3 ~b:13 ~r:11 ~t_:23;
    Builder.box b Layer.Contact ~l:6 ~b:23 ~r:8 ~t_:25;
    Builder.box b Layer.Diffusion ~l:6 ~b:2 ~r:8 ~t_:7;
    Builder.box b Layer.Poly ~l:0 ~b:4 ~r:input_end ~t_:6;
    Builder.box b Layer.Contact ~l:6 ~b:1 ~r:8 ~t_:3;
    (* decorative rail stubs — unique per cell *)
    Builder.box b Layer.Metal ~l:stub_x ~b:20 ~r:(stub_x + 2) ~t_:23;
    Builder.box b Layer.Metal ~l:stub2_x ~b:3 ~r:(stub2_x + 2) ~t_:4;
  ]

(* Cell frames on a grid with 2λ horizontal gaps and 4λ routing rows. *)
let rl_pitch_x = Cells.cell_width + 2
let rl_pitch_y = Cells.cell_height + 4

let random_wire b rng ~grid_cols ~cells ~index ~x0 ~y0 =
  let src = Rng.int rng cells and dst = Rng.int rng cells in
  if src = dst then []
  else
    let pos i =
      ( x0 + (i mod grid_cols * rl_pitch_x),
        y0 + (i / grid_cols * rl_pitch_y) )
    in
    let sx, sy = pos src and dx, dy = pos dst in
    let vtrack = 14 + Rng.int rng 2 (* x offset of the gap drop *) in
    let htrack = Cells.cell_height + 1 + (index mod 3) in
    [
      (* output tap: contact over the pull-up poly, metal east into the gap *)
      Builder.box b Layer.Contact ~l:(sx + 8) ~b:(sy + 12) ~r:(sx + 10)
        ~t_:(sy + 14);
      Builder.box b Layer.Metal ~l:(sx + 8) ~b:(sy + 12) ~r:(sx + vtrack + 1)
        ~t_:(sy + 14);
      (* up the gap to the routing row above the source row *)
      Builder.box b Layer.Metal ~l:(sx + vtrack) ~b:(sy + 12)
        ~r:(sx + vtrack + 1)
        ~t_:(sy + htrack + 1);
      (* along the routing row to the destination gap *)
      Builder.box b Layer.Metal
        ~l:(min (sx + vtrack) (dx - 2))
        ~b:(sy + htrack)
        ~r:(max (sx + vtrack + 1) (dx - 1))
        ~t_:(sy + htrack + 1);
      (* down the destination's west gap to its input row *)
      Builder.box b Layer.Metal ~l:(dx - 2) ~b:(min (dy + 4) (sy + htrack))
        ~r:(dx - 1)
        ~t_:(max (dy + 6) (sy + htrack + 1));
      (* east into the input poly, contact *)
      Builder.box b Layer.Metal ~l:(dx - 2) ~b:(dy + 4) ~r:(dx + 3) ~t_:(dy + 6);
      Builder.box b Layer.Contact ~l:(dx + 1) ~b:(dy + 4) ~r:(dx + 3) ~t_:(dy + 6);
    ]

let random_logic_section b rng ~cells ~wires ~x0 ~y0 =
  let grid_cols = max 1 (int_of_float (ceil (sqrt (float_of_int cells)))) in
  let cell_elems =
    List.concat
      (List.init cells (fun i ->
           let sym = Builder.symbol b (jittered_inverter b rng) in
           let dx = x0 + (i mod grid_cols * rl_pitch_x) in
           let dy = y0 + (i / grid_cols * rl_pitch_y) in
           [ Builder.call b sym ~dx ~dy ]))
  in
  let wire_elems =
    if cells < 2 then []
    else
      List.concat
        (List.init wires (fun index ->
             random_wire b rng ~grid_cols ~cells ~index ~x0 ~y0))
  in
  (* wires stay top-level geometry: a whole-chip wiring symbol would defeat
     any partitioner, whereas plain boxes can be split at window cuts *)
  cell_elems @ wire_elems

let random_logic ?lambda ?wires ~cells ~seed () =
  let b = Builder.create ?lambda () in
  let rng = Rng.create seed in
  let wires = match wires with Some w -> w | None -> cells / 2 in
  Builder.file b (random_logic_section b rng ~cells ~wires ~x0:0 ~y0:0)

(* ------------------------------------------------------------------ *)
(* Paper-chip recipes                                                   *)
(* ------------------------------------------------------------------ *)

type recipe = {
  chip_name : string;
  devices_target : int;
  character : string;
  build : scale:float -> Ace_cif.Design.t;
}

let scaled target scale = max 1 (int_of_float (float_of_int target *. scale))

(* Sections laid out left to right with wide gaps. *)
let build_mixed ?lambda ~seed sections ~scale =
  let b = Builder.create ?lambda () in
  let rng = Rng.create seed in
  let x0 = ref 0 in
  let elements =
    List.concat_map
      (fun section ->
        match section with
        | `Ram devices ->
            let n = scaled devices scale in
            let side = max 1 (int_of_float (sqrt (float_of_int n))) in
            let cell = Builder.symbol b (Cells.array_cell b) in
            let row =
              Builder.symbol b
                (List.init side (fun i ->
                     Builder.call b cell ~dx:(i * Cells.array_cell_pitch) ~dy:0))
            in
            let arr =
              Builder.symbol b
                (List.init side (fun j ->
                     Builder.call b row ~dx:0 ~dy:(j * Cells.array_cell_pitch)))
            in
            let el = Builder.call b arr ~dx:!x0 ~dy:0 in
            x0 := !x0 + (side * Cells.array_cell_pitch) + 40;
            [ el ]
        | `Datapath devices ->
            let n = scaled devices scale in
            let bits = max 1 (int_of_float (sqrt (float_of_int (n / 2)) /. 2.)) in
            let stages = max 1 (n / 2 / bits) in
            let els = datapath_section b ~bits ~stages ~x0:!x0 ~y0:0 in
            x0 := !x0 + (stages * Cells.cell_width) + 40;
            els
        | `Random devices ->
            let cells = max 1 (scaled devices scale / 2) in
            let els =
              random_logic_section b rng ~cells ~wires:(cells / 2) ~x0:!x0 ~y0:0
            in
            let grid_cols =
              max 1 (int_of_float (ceil (sqrt (float_of_int cells))))
            in
            x0 := !x0 + (grid_cols * rl_pitch_x) + 40;
            els)
      sections
  in
  Ace_cif.Design.of_ast (Builder.file b elements)

let recipe chip_name devices_target character ~seed sections =
  {
    chip_name;
    devices_target;
    character;
    build = (fun ~scale -> build_mixed ~seed sections ~scale);
  }

let paper_suite =
  [
    recipe "cherry" 881 "irregular" ~seed:11 [ `Random 881 ];
    recipe "dchip" 4884 "mixed" ~seed:22 [ `Datapath 2440; `Random 2444 ];
    recipe "schip2" 9473 "irregular" ~seed:33 [ `Random 8050; `Datapath 1423 ];
    recipe "testram" 20480 "regular" ~seed:44 [ `Ram 20480 ];
    recipe "psc" 25521 "mixed" ~seed:55
      [ `Random 15312; `Datapath 5105; `Ram 5104 ];
    recipe "scheme81" 32031 "mixed" ~seed:66
      [ `Ram 12812; `Datapath 9610; `Random 9609 ];
    recipe "riscb" 42084 "regular" ~seed:77
      [ `Ram 21042; `Datapath 16834; `Random 4208 ];
  ]

let comparison_suite =
  List.filter
    (fun r ->
      List.mem r.chip_name [ "cherry"; "dchip"; "schip2"; "testram"; "riscb" ])
    paper_suite
