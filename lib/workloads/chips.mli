(** Synthetic chips standing in for the papers' benchmark designs.

    The papers measured ACE and HEXT on seven chips designed in the ARPA
    community (cherry, dchip, schip2, testram, psc, scheme81, riscb).
    Those CIF files are not available, so this module generates layouts
    with controlled size and {e regularity character} — the two properties
    the algorithms' performance actually depends on:

    - {!ram_array}: a cell/row/array hierarchy of identical
      single-transistor cells (testram's character: maximal regularity);
    - {!datapath}: bit-slices of chained inverters, replicated vertically
      (riscb's character: large regular blocks);
    - {!random_logic}: per-cell jittered gates, each a unique symbol, plus
      random metal routing (cherry/schip2's character: no reuse at all);
    - {!paper_suite}: one recipe per paper chip, mixing the three sections
      to the paper's device counts (scalable with [scale]). *)

(** Single labeled inverter — the chip of ACE Figures 3-3/3-4. *)
val single_inverter : ?lambda:int -> unit -> Ace_cif.Ast.file

(** Single labeled two-input NAND / NOR / 2:1 mux cells — LVS golden
    fixtures. *)
val single_nand2 : ?lambda:int -> unit -> Ace_cif.Ast.file

val single_nor2 : ?lambda:int -> unit -> Ace_cif.Ast.file
val single_mux2 : ?lambda:int -> unit -> Ace_cif.Ast.file

(** Cross-coupled inverter pair (Q/QB), the feedback routed in poly below
    the GND rail. *)
val latch : ?lambda:int -> unit -> Ace_cif.Ast.file

(** [inverter_chain ~n] — n inverters in a row, each driving the next. *)
val inverter_chain : ?lambda:int -> n:int -> unit -> Ace_cif.Ast.file

(** The four-inverter chain of HEXT Figures 2-1/2-2, built as nested pair
    symbols (inverter → pair → pair of pairs). *)
val four_inverters : ?lambda:int -> unit -> Ace_cif.Ast.file

val ram_array : ?lambda:int -> rows:int -> cols:int -> unit -> Ace_cif.Ast.file

val datapath : ?lambda:int -> bits:int -> stages:int -> unit -> Ace_cif.Ast.file

val random_logic :
  ?lambda:int -> ?wires:int -> cells:int -> seed:int -> unit -> Ace_cif.Ast.file

(** A paper-chip recipe.  [build ~scale] generates the design with device
    count ≈ [devices_target × scale]. *)
type recipe = {
  chip_name : string;
  devices_target : int;
  character : string;  (** "regular" / "irregular" / "mixed" *)
  build : scale:float -> Ace_cif.Design.t;
}

(** The seven chips of ACE Table 5-1 / HEXT Table 5-1, in paper order. *)
val paper_suite : recipe list

(** Subset used by ACE Table 5-2 (cherry dchip schip2 testram riscb). *)
val comparison_suite : recipe list
