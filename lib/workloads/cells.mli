(** NMOS leaf cells (λ-unit layouts).

    The inverter mirrors the structure of ACE Figure 3-3: a depletion
    pull-up with its gate tied to the output through a buried contact, and
    an enhancement pull-down gated by the poly input, between metal VDD and
    GND rails.  All cells share the same 14λ × 26λ frame with the rails at
    fixed heights so they tile horizontally. *)

(** Cell frame dimensions in λ. *)
val cell_width : int

val cell_height : int

(** The shared skeleton of the static gates: metal rails, the output
    diffusion column and the depletion pull-up (L/W = 4) with buried
    contact.  The pull-down region (y < 12) is left to the caller.  All
    cells obey the Mead–Conway rules enforced by [Ace_drc.Checker]. *)
val pull_up : Builder.t -> Ace_cif.Ast.element list

(** Padded GND contact for the pull-down diffusion column. *)
val gnd_contact : Builder.t -> Ace_cif.Ast.element list

(** Elements of an inverter cell.  [labels] adds VDD/GND/INP/OUT labels
    (wanted for single-cell demos, not for tiled arrays). *)
val inverter : ?labels:bool -> Builder.t -> Ace_cif.Ast.element list

(** Two-input NAND: two series enhancement pull-downs. *)
val nand2 : ?labels:bool -> Builder.t -> Ace_cif.Ast.element list

(** Two-input NOR: two parallel pull-downs side by side (cell is
    [cell_width + 6] λ wide). *)
val nor2 : ?labels:bool -> Builder.t -> Ace_cif.Ast.element list

(** 2:1 pass-transistor multiplexer: data diffusions A and B joined into
    Y, gated by the S and SB poly select lines.  No rails; 14λ × 16λ. *)
val mux2 : ?labels:bool -> Builder.t -> Ace_cif.Ast.element list

(** Pass transistor driven by a vertical poly control line; 8λ × 26λ,
    in series with the data diffusion at rail height. *)
val pass_gate : Builder.t -> Ace_cif.Ast.element list

(** Poly connector joining a cell's output to the input of the cell one
    frame to its right (both placed at the same y): lay these in the left
    cell's frame. *)
val output_to_next_input : Builder.t -> Ace_cif.Ast.element list

(** The single-transistor array cell of HEXT Table 4-1: a poly word line
    crossing a diffusion bit line, both running edge to edge so adjacent
    cells connect.  [pitch] λ square. *)
val array_cell : Builder.t -> Ace_cif.Ast.element list

val array_cell_pitch : int
