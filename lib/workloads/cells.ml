open Ace_tech

let cell_width = 14
let cell_height = 26

(* Shared pull-up / rail skeleton of the static gates: 4λ metal rails, the
   diffusion column from the output node up to VDD, the implanted depletion
   pull-up (L/W = 8/2 = 4) with its gate tied to the output through a
   buried contact, and a padded VDD contact.  The layouts obey the
   Mead–Conway rules checked by [Ace_drc]: 2λ poly/diffusion, 3λ metal, 2λ
   gate overhang, 2λ×2λ cuts with 1λ surround.  The pull-down region
   (y < 12) is cell-specific. *)
let pull_up b =
  [
    (* rails *)
    Builder.box b Layer.Metal ~l:0 ~b:22 ~r:cell_width ~t_:cell_height;
    Builder.box b Layer.Metal ~l:0 ~b:0 ~r:cell_width ~t_:4;
    (* diffusion column: output node at y 7..14, channel 14..22, drain to
       the VDD contact pad above *)
    Builder.box b Layer.Diffusion ~l:6 ~b:7 ~r:8 ~t_:25;
    Builder.box b Layer.Diffusion ~l:5 ~b:22 ~r:9 ~t_:26;
    (* depletion pull-up *)
    Builder.box b Layer.Poly ~l:4 ~b:12 ~r:10 ~t_:22;
    Builder.box b Layer.Buried ~l:5 ~b:12 ~r:9 ~t_:14;
    Builder.box b Layer.Implant ~l:3 ~b:13 ~r:11 ~t_:23;
    (* VDD contact, 1λ surround in metal and diffusion *)
    Builder.box b Layer.Contact ~l:6 ~b:23 ~r:8 ~t_:25;
  ]

(* Padded GND contact for the pull-down diffusion. *)
let gnd_contact b =
  [
    Builder.box b Layer.Diffusion ~l:5 ~b:0 ~r:9 ~t_:4;
    Builder.box b Layer.Contact ~l:6 ~b:1 ~r:8 ~t_:3;
  ]

let std_labels b =
  [
    Builder.label b "VDD" ~x:1 ~y:24 ~layer:Layer.Metal ();
    Builder.label b "GND" ~x:1 ~y:1 ~layer:Layer.Metal ();
    Builder.label b "OUT" ~x:7 ~y:13 ~layer:Layer.Diffusion ();
  ]

let inverter ?(labels = false) b =
  pull_up b
  @ [
      (* pull-down: diffusion from output node to GND, poly input across;
         the input stops at x = 10 so the chained-cell output leg keeps 2λ
         poly spacing *)
      Builder.box b Layer.Diffusion ~l:6 ~b:0 ~r:8 ~t_:7;
      Builder.box b Layer.Poly ~l:0 ~b:4 ~r:10 ~t_:6;
    ]
  @ gnd_contact b
  @
  if labels then
    std_labels b @ [ Builder.label b "INP" ~x:1 ~y:5 ~layer:Layer.Poly () ]
  else []

let nand2 ?(labels = false) b =
  pull_up b
  @ [
      (* two series pull-downs stacked on one diffusion column *)
      Builder.box b Layer.Diffusion ~l:6 ~b:0 ~r:8 ~t_:8;
      Builder.box b Layer.Poly ~l:0 ~b:4 ~r:10 ~t_:6 (* A, low *);
      Builder.box b Layer.Poly ~l:0 ~b:8 ~r:10 ~t_:10 (* B, high *);
    ]
  @ gnd_contact b
  @
  if labels then
    std_labels b
    @ [
        Builder.label b "A" ~x:1 ~y:5 ~layer:Layer.Poly ();
        Builder.label b "B" ~x:1 ~y:9 ~layer:Layer.Poly ();
      ]
  else []

let nor2 ?(labels = false) b =
  pull_up b
  @ [
      (* two parallel pull-downs: the main column and a second leg joined
         at the output spur and at a wide GND tie *)
      Builder.box b Layer.Diffusion ~l:6 ~b:0 ~r:8 ~t_:7;
      Builder.box b Layer.Diffusion ~l:6 ~b:7 ~r:17 ~t_:9 (* output spur *);
      Builder.box b Layer.Diffusion ~l:15 ~b:0 ~r:17 ~t_:7 (* leg 2 *);
      Builder.box b Layer.Diffusion ~l:5 ~b:0 ~r:18 ~t_:4 (* gnd tie *);
      Builder.box b Layer.Poly ~l:0 ~b:4 ~r:10 ~t_:6 (* A over leg 1 *);
      Builder.box b Layer.Poly ~l:13 ~b:4 ~r:20 ~t_:6 (* B over leg 2 *);
    ]
  @ gnd_contact b
  @
  if labels then
    std_labels b
    @ [
        Builder.label b "A" ~x:1 ~y:5 ~layer:Layer.Poly ();
        Builder.label b "B" ~x:19 ~y:5 ~layer:Layer.Poly ();
      ]
  else []

let mux2 ?(labels = false) b =
  [
    (* two pass transistors onto a shared output: horizontal data
       diffusions A (high) and B (low) joined at the right into Y, each
       gated by its own vertical poly select line (S / SB), 2λ apart *)
    Builder.box b Layer.Diffusion ~l:0 ~b:12 ~r:14 ~t_:14 (* A .. Y *);
    Builder.box b Layer.Diffusion ~l:0 ~b:4 ~r:14 ~t_:6 (* B .. Y *);
    Builder.box b Layer.Diffusion ~l:12 ~b:4 ~r:14 ~t_:14 (* join at Y *);
    Builder.box b Layer.Poly ~l:4 ~b:10 ~r:6 ~t_:16 (* S over A *);
    Builder.box b Layer.Poly ~l:4 ~b:2 ~r:6 ~t_:8 (* SB over B *);
  ]
  @
  if labels then
    [
      Builder.label b "A" ~x:1 ~y:13 ~layer:Layer.Diffusion ();
      Builder.label b "B" ~x:1 ~y:5 ~layer:Layer.Diffusion ();
      Builder.label b "Y" ~x:13 ~y:9 ~layer:Layer.Diffusion ();
      Builder.label b "S" ~x:5 ~y:15 ~layer:Layer.Poly ();
      Builder.label b "SB" ~x:5 ~y:3 ~layer:Layer.Poly ();
    ]
  else []

let pass_gate b =
  [
    (* horizontal data diffusion with a vertical poly control line *)
    Builder.box b Layer.Diffusion ~l:0 ~b:12 ~r:8 ~t_:14;
    Builder.box b Layer.Poly ~l:3 ~b:8 ~r:5 ~t_:18;
  ]

let output_to_next_input b =
  [
    (* east from the pull-up poly to the cell edge, then south to input
       height: the leg abuts the next cell's input poly at the seam, so
       chained cells connect without overlapping frames; 2λ wide and 2λ
       clear of this cell's own input *)
    Builder.box b Layer.Poly ~l:10 ~b:12 ~r:cell_width ~t_:14;
    Builder.box b Layer.Poly ~l:12 ~b:4 ~r:cell_width ~t_:14;
  ]

let array_cell_pitch = 8

let array_cell b =
  [
    (* bit line: vertical diffusion, edge to edge *)
    Builder.box b Layer.Diffusion ~l:3 ~b:0 ~r:5 ~t_:array_cell_pitch;
    (* word line: horizontal poly, edge to edge *)
    Builder.box b Layer.Poly ~l:0 ~b:3 ~r:array_cell_pitch ~t_:5;
  ]
