open Ace_netlist

(** Static electrical checks on extracted wirelists — compatibility shim.

    {b Deprecated}: this module survives for existing callers but is now a
    thin veneer over {!Ace_lint}, the configurable rule engine (stable rule
    registry, severity overrides, waiver baselines, SARIF output).  Use
    [Ace_lint.Engine.run] in new code.

    [check] runs the {e full} registry with its default configuration —
    the original battery (power-short, malformed, self-gate, ratio,
    undriven, stuck, floating-gate, isolated, no-rail) plus the newer
    analyses (pass-depth, fanout, sneak-path, superbuffer, name-collision,
    aliased-net, off-grid).  Rails are located by name with a
    case-insensitive fallback, so "Vdd"/"vdd" labels no longer silently
    skip every rail-dependent check. *)

type severity = Error | Warning | Info

type finding = {
  severity : severity;
  code : string;  (** stable identifier, e.g. "ratio", "floating-gate" *)
  message : string;
  device : int option;  (** index into the circuit's device array *)
  net : int option;
}

(** [check circuit] runs every default-enabled lint rule.  Power nets are
    located by name ([vdd] / [gnd], defaults "VDD" / "GND", falling back
    to a case-insensitive match); rail-dependent checks are skipped with
    an [Info] finding when a rail is missing. *)
val check : ?vdd:string -> ?gnd:string -> Circuit.t -> finding list

val severity_to_string : severity -> string

val pp_finding : Circuit.t -> Format.formatter -> finding -> unit

(** Counts by severity: (errors, warnings, infos). *)
val summarize : finding list -> int * int * int
