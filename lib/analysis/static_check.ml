(* Compatibility shim: the original 8-check module, now a thin veneer over
   the Ace_lint rule registry (which also runs the newer analyses).  New
   code should use Ace_lint directly — it exposes configuration, waiver
   baselines and structured diagnostics this interface cannot. *)

open Ace_netlist

type severity = Error | Warning | Info

type finding = {
  severity : severity;
  code : string;
  message : string;
  device : int option;
  net : int option;
}

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let summarize findings =
  List.fold_left
    (fun (e, w, i) f ->
      match f.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) findings

let pp_finding circuit ppf f =
  Format.fprintf ppf "%s[%s]: %s" (severity_to_string f.severity) f.code
    f.message;
  (match f.device with
  | Some d -> Format.fprintf ppf " (device D%d)" d
  | None -> ());
  match f.net with
  | Some n -> Format.fprintf ppf " (net %s)" (Circuit.net_display_name circuit n)
  | None -> ()

let of_lint (f : Ace_lint.Finding.t) =
  {
    severity =
      (match f.Ace_lint.Finding.severity with
      | Ace_lint.Finding.Error -> Error
      | Ace_lint.Finding.Warning -> Warning
      | Ace_lint.Finding.Info -> Info);
    code = f.Ace_lint.Finding.code;
    message = f.Ace_lint.Finding.message;
    device = f.Ace_lint.Finding.device;
    net = f.Ace_lint.Finding.net;
  }

let check ?(vdd = "VDD") ?(gnd = "GND") circuit =
  List.map of_lint (Ace_lint.Engine.run ~vdd ~gnd circuit)
