open Ace_tech
open Ace_netlist

type level = Low | High | Unknown

let level_to_string = function
  | Low -> "0"
  | High -> "1"
  | Unknown -> "X"

type t = {
  circuit : Circuit.t;
  vdd : int;
  gnd : int;
  forced : (int, level) Hashtbl.t;
  values : level array;
}

let circuit t = t.circuit

(* Rail lookup is exact-name first with a case-insensitive fallback, so a
   chip labelling its rails "Vdd"/"vdd" still simulates. *)
let create_result circuit ~vdd ~gnd =
  let missing name =
    Error
      (Ace_diag.Diag.error ~code:"missing-rail"
         (Printf.sprintf
            "no net named %S (even case-insensitively): cannot simulate \
             without both power rails"
            name))
  in
  match (Circuit.find_rail circuit vdd, Circuit.find_rail circuit gnd) with
  | None, _ -> missing vdd
  | _, None -> missing gnd
  | Some v, Some g ->
      let values = Array.make (Circuit.net_count circuit) Unknown in
      values.(v) <- High;
      values.(g) <- Low;
      Ok { circuit; vdd = v; gnd = g; forced = Hashtbl.create 8; values }

let create circuit ~vdd ~gnd =
  match create_result circuit ~vdd ~gnd with
  | Ok t -> t
  | Error _ -> raise Not_found

let set_input t name level =
  let n = Circuit.find_net t.circuit name in
  Hashtbl.replace t.forced n level

let release_input t name =
  let n = Circuit.find_net t.circuit name in
  Hashtbl.remove t.forced n

(* Combine a driven candidate into a (strength, level) slot. *)
let combine (s1, v1) (s2, v2) =
  if s1 > s2 then (s1, v1)
  else if s2 > s1 then (s2, v2)
  else if v1 = v2 then (s1, v1)
  else (s1, Unknown)

(* One settle pass: with gate states frozen, relax conduction to fixpoint;
   returns the new node values. *)
let settle t gate_values =
  let n = Circuit.net_count t.circuit in
  (* Rails and forced inputs sit at strength 4 — above anything a channel
     can carry (3), so nothing ever writes into them; stored charge is
     strength 1. *)
  let state = Array.make n (1, Unknown) in
  for i = 0 to n - 1 do
    state.(i) <- (1, t.values.(i))
  done;
  state.(t.vdd) <- (4, High);
  state.(t.gnd) <- (4, Low);
  Hashtbl.iter (fun net level -> state.(net) <- (4, level)) t.forced;
  let conducting (d : Circuit.device) =
    match d.dtype with
    | Nmos.Depletion -> `On 2 (* conducts, but only at pull-up strength *)
    | Nmos.Enhancement -> (
        match gate_values.(d.gate) with
        | High -> `On 3
        | Low -> `Off
        | Unknown -> `Maybe)
  in
  let changed = ref true in
  let guard = ref 0 in
  while !changed && !guard < 4 * (n + 1) do
    changed := false;
    incr guard;
    Array.iter
      (fun (d : Circuit.device) ->
        let flow max_strength a b =
          let sa, va = state.(a) in
          let sb, _ = state.(b) in
          let s = min sa max_strength in
          if s > 1 && s >= sb then begin
            let nv = combine state.(b) (s, va) in
            if nv <> state.(b) then begin
              state.(b) <- nv;
              changed := true
            end
          end
        in
        match conducting d with
        | `Off -> ()
        | `On strength ->
            flow strength d.source d.drain;
            flow strength d.drain d.source
        | `Maybe ->
            (* an X gate corrupts whatever it could drive *)
            let corrupt a b =
              let sa, _ = state.(a) in
              let s = min sa 3 in
              if s > 1 then begin
                let sb, vb = state.(b) in
                if s >= sb && vb <> Unknown then begin
                  state.(b) <- (max sb s, Unknown);
                  changed := true
                end
              end
            in
            corrupt d.source d.drain;
            corrupt d.drain d.source)
      t.circuit.Circuit.devices
  done;
  Array.map snd state

let stabilize ?(max_steps = 1000) t =
  let rec go steps =
    if steps >= max_steps then false
    else begin
      let next = settle t t.values in
      if next = t.values then true
      else begin
        Array.blit next 0 t.values 0 (Array.length next);
        go (steps + 1)
      end
    end
  in
  go 0

let value_of_net t n = t.values.(n)
let value t name = value_of_net t (Circuit.find_net t.circuit name)

let eval t ~inputs ~outputs =
  List.iter (fun (name, level) -> set_input t name level) inputs;
  if stabilize t then
    Some (List.map (fun name -> (name, value t name)) outputs)
  else None
