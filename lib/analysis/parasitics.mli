open Ace_tech
open Ace_netlist

(** Capacitance / resistance post-processing.

    ACE deliberately computes no electrical parameters itself: "it was
    undesirable to embed any fixed notion of a circuit model into the
    extractor code … it is possible, however, to obtain a list of geometry
    that constitutes each net and device.  This information is enough for a
    post-processing program to compute capacitances and resistances."
    This module is that post-processing program; it consumes circuits
    extracted with [emit_geometry:true]. *)

type net_parasitics = {
  area_by_layer : (Layer.t * int) list;  (** centimicrons² per layer *)
  cap_ff : float;  (** total area capacitance, fF *)
  gate_cap_ff : float;  (** added gate capacitance of driven gates *)
  res_ohms : float;  (** crude series-resistance estimate *)
}

(** Raises [Invalid_argument] when the net carries no geometry (circuit
    extracted without geometry output). *)
val net_parasitics : ?params:Nmos.params -> Circuit.t -> int -> net_parasitics

(** Channel on-resistance estimate: (L/W) × sheet-equivalent
    [r_on_per_square] (default 10 kΩ/□, a typical NMOS figure). *)
val device_resistance :
  ?r_on_per_square:float -> Circuit.device -> float

(** Gate capacitance of one device: channel area × gate cap density. *)
val device_gate_cap : ?params:Nmos.params -> Circuit.device -> float

(** Elmore-flavoured delay estimate for a driver device charging a net:
    R_device × C_net (seconds, with fF and Ω). *)
val rc_delay_seconds :
  ?params:Nmos.params -> Circuit.t -> driver:int -> net:int -> float

(** All nets, index-aligned with the circuit's net array.  Total: nets
    without geometry get zero estimates, summarised in one
    ["no-geometry"] hint diagnostic rather than an exception. *)
val all_nets :
  ?params:Nmos.params ->
  Circuit.t ->
  net_parasitics array * Ace_diag.Diag.t list
