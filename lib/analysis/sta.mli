open Ace_netlist

(** Static timing analysis over the recognized gate network.

    The papers list "timing errors … and performance characteristics" among
    what wirelist consumers check.  This analyzer combines {!Gates} (which
    gates exist), {!Parasitics} (what each gate drives) and a simple
    RC delay model: each gate's delay is its depletion pull-up's on-
    resistance times the capacitance it drives (gate loads plus wire
    capacitance when the circuit was extracted with geometry). *)

type timed_gate = {
  gate : Gates.gate;
  delay_s : float;  (** this stage's RC delay, seconds *)
  arrival_s : float;  (** worst-case arrival at the gate's output *)
}

type result = {
  critical_path : timed_gate list;  (** source first *)
  critical_delay_s : float;
  gate_count : int;
  has_feedback : bool;  (** combinational cycles found (latch/oscillator) *)
}

(** [None] when no gates are recognized (e.g. pure pass-transistor
    arrays). *)
val analyze :
  ?params:Ace_tech.Nmos.params ->
  ?r_on_per_square:float ->
  ?vdd:string ->
  ?gnd:string ->
  Circuit.t ->
  result option

(** As {!analyze}, but a missing power rail is reported as a
    ["missing-rail"] diagnostic rather than folded into the silent
    no-gates [None]. *)
val analyze_checked :
  ?params:Ace_tech.Nmos.params ->
  ?r_on_per_square:float ->
  ?vdd:string ->
  ?gnd:string ->
  Circuit.t ->
  result option * Ace_diag.Diag.t list

val pp_result : Circuit.t -> Format.formatter -> result -> unit
