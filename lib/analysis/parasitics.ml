open Ace_geom
open Ace_tech
open Ace_netlist

type net_parasitics = {
  area_by_layer : (Layer.t * int) list;
  cap_ff : float;
  gate_cap_ff : float;
  res_ohms : float;
}

(* Area per λ²: geometry is in centimicrons, capacitance densities in
   fF per λ². *)
let lambda_area params area = float_of_int area /. float_of_int (params.Nmos.lambda * params.Nmos.lambda)

let device_gate_cap ?(params = Nmos.default) (d : Circuit.device) =
  lambda_area params (d.length * d.width) *. params.Nmos.cap_gate

let device_resistance ?(r_on_per_square = 10_000.0) (d : Circuit.device) =
  float_of_int d.length /. float_of_int d.width *. r_on_per_square

let net_parasitics ?(params = Nmos.default) (circuit : Circuit.t) net =
  let n = circuit.Circuit.nets.(net) in
  if n.Circuit.geometry = [] then
    invalid_arg
      "Parasitics.net_parasitics: net has no geometry (extract with \
       emit_geometry:true)";
  let by_layer = Hashtbl.create 4 in
  List.iter
    (fun (lyr, bx) ->
      let a = Box.area bx in
      match Hashtbl.find_opt by_layer lyr with
      | Some r -> r := !r + a
      | None -> Hashtbl.replace by_layer lyr (ref a))
    n.Circuit.geometry;
  let area_by_layer =
    List.filter_map
      (fun lyr ->
        match Hashtbl.find_opt by_layer lyr with
        | Some r -> Some (lyr, !r)
        | None -> None)
      Layer.conducting_layers
  in
  let cap_ff =
    List.fold_left
      (fun acc (lyr, a) -> acc +. (lambda_area params a *. Nmos.cap_area params lyr))
      0.0 area_by_layer
  in
  let gate_cap_ff =
    Array.fold_left
      (fun acc (d : Circuit.device) ->
        if d.gate = net then acc +. device_gate_cap ~params d else acc)
      0.0 circuit.Circuit.devices
  in
  (* resistance: treat each layer's geometry as a wire of its bounding
     extent — length along the larger dimension, width the smaller; crude
     but monotone in the right quantities *)
  let res_ohms =
    List.fold_left
      (fun acc (lyr, _) ->
        let boxes =
          List.filter_map
            (fun (l, b) -> if Layer.equal l lyr then Some b else None)
            n.Circuit.geometry
        in
        match Box.hull_list boxes with
        | None -> acc
        | Some hull ->
            let long = max (Box.width hull) (Box.height hull) in
            let area =
              List.fold_left (fun a b -> a + Box.area b) 0 boxes
            in
            if area = 0 then acc
            else
              let mean_width = max 1 (area / max 1 long) in
              acc
              +. (float_of_int long /. float_of_int mean_width
                 *. Nmos.sheet_ohms params lyr))
      0.0 area_by_layer
  in
  { area_by_layer; cap_ff; gate_cap_ff; res_ohms }

let all_nets ?params circuit =
  let skipped = ref 0 in
  let values =
    Array.init (Circuit.net_count circuit) (fun i ->
        match net_parasitics ?params circuit i with
        | p -> p
        | exception Invalid_argument _ ->
            incr skipped;
            {
              area_by_layer = [];
              cap_ff = 0.0;
              gate_cap_ff = 0.0;
              res_ohms = 0.0;
            })
  in
  let diags =
    if !skipped = 0 then []
    else
      [
        Ace_diag.Diag.make Ace_diag.Diag.Hint ~code:"no-geometry"
          (Printf.sprintf
             "%d of %d nets carry no geometry (extract with \
              emit_geometry:true for wire parasitics); their C/R estimates \
              are zero"
             !skipped
             (Circuit.net_count circuit));
      ]
  in
  (values, diags)

let rc_delay_seconds ?(params = Nmos.default) circuit ~driver ~net =
  let d = circuit.Circuit.devices.(driver) in
  let r = device_resistance d in
  let p = net_parasitics ~params circuit net in
  (* fF × Ω = 1e-15 s *)
  r *. (p.cap_ff +. p.gate_cap_ff) *. 1e-15
