open Ace_tech
open Ace_netlist

type timed_gate = { gate : Gates.gate; delay_s : float; arrival_s : float }

type result = {
  critical_path : timed_gate list;
  critical_delay_s : float;
  gate_count : int;
  has_feedback : bool;
}

let gate_inputs = function
  | Gates.Inverter { input; _ } -> [ input ]
  | Gates.Nand { inputs; _ } | Gates.Nor { inputs; _ } -> inputs

let analyze ?(params = Nmos.default) ?(r_on_per_square = 10_000.0)
    ?vdd ?gnd (c : Circuit.t) =
  let recognition = Gates.recognize ?vdd ?gnd c in
  match recognition.Gates.gates with
  | [] -> None
  | gates ->
      let gates = Array.of_list gates in
      let n = Array.length gates in
      (* pull-up resistance per output net *)
      let pullup_r = Hashtbl.create 16 in
      Array.iter
        (fun (d : Circuit.device) ->
          if d.dtype = Nmos.Depletion then begin
            let r = Parasitics.device_resistance ~r_on_per_square d in
            if not (Hashtbl.mem pullup_r d.gate) then
              Hashtbl.replace pullup_r d.gate r
          end)
        c.Circuit.devices;
      (* capacitive load on a net: all gates it drives, plus wire cap when
         geometry is available *)
      let load_cap net =
        let gate_cap =
          Array.fold_left
            (fun acc (d : Circuit.device) ->
              if d.gate = net then acc +. Parasitics.device_gate_cap ~params d
              else acc)
            0.0 c.Circuit.devices
        in
        let wire_cap =
          match Parasitics.net_parasitics ~params c net with
          | p -> p.Parasitics.cap_ff
          | exception Invalid_argument _ -> 0.0
        in
        gate_cap +. wire_cap
      in
      let delay i =
        let out = Gates.gate_output gates.(i) in
        let r =
          match Hashtbl.find_opt pullup_r out with
          | Some r -> r
          | None -> r_on_per_square
        in
        (* fF × Ω → seconds *)
        r *. load_cap out *. 1e-15
      in
      let delays = Array.init n delay in
      (* successor edges: gate i drives gate j when output(i) ∈ inputs(j) *)
      let by_input = Hashtbl.create 16 in
      Array.iteri
        (fun j g ->
          List.iter
            (fun input ->
              let prev = try Hashtbl.find by_input input with Not_found -> [] in
              Hashtbl.replace by_input input (j :: prev))
            (gate_inputs g))
        gates;
      let successors i =
        match Hashtbl.find_opt by_input (Gates.gate_output gates.(i)) with
        | Some js -> js
        | None -> []
      in
      (* longest path by memoized DFS; cycles contribute no further depth
         but are reported *)
      let memo = Array.make n None in
      let on_stack = Array.make n false in
      let has_feedback = ref false in
      let rec longest i =
        match memo.(i) with
        | Some v -> v
        | None ->
            if on_stack.(i) then begin
              has_feedback := true;
              (0.0, [])
            end
            else begin
              on_stack.(i) <- true;
              let best_tail =
                List.fold_left
                  (fun (bd, bp) j ->
                    let d, p = longest j in
                    if d > bd then (d, p) else (bd, bp))
                  (0.0, []) (successors i)
              in
              on_stack.(i) <- false;
              let v = (delays.(i) +. fst best_tail, i :: snd best_tail) in
              memo.(i) <- Some v;
              v
            end
      in
      let best =
        Array.to_list (Array.init n longest)
        |> List.fold_left (fun (bd, bp) (d, p) -> if d > bd then (d, p) else (bd, bp))
             (0.0, [])
      in
      let _, path_indices = best in
      let critical_path =
        let arrival = ref 0.0 in
        List.map
          (fun i ->
            arrival := !arrival +. delays.(i);
            { gate = gates.(i); delay_s = delays.(i); arrival_s = !arrival })
          path_indices
      in
      Some
        {
          critical_path;
          critical_delay_s = fst best;
          gate_count = n;
          has_feedback = !has_feedback;
        }

(* As [analyze], but explains itself: a missing rail (the usual reason
   recognition finds no gates) comes back as a "missing-rail" diagnostic
   instead of a silent [None]. *)
let analyze_checked ?params ?r_on_per_square ?(vdd = "VDD") ?(gnd = "GND")
    (c : Circuit.t) =
  let missing name =
    Ace_diag.Diag.error ~code:"missing-rail"
      (Printf.sprintf
         "no net named %S (even case-insensitively): timing analysis needs \
          both power rails"
         name)
  in
  let diags =
    (match Circuit.find_rail c vdd with None -> [ missing vdd ] | Some _ -> [])
    @
    match Circuit.find_rail c gnd with None -> [ missing gnd ] | Some _ -> []
  in
  match diags with
  | _ :: _ -> (None, diags)
  | [] -> (analyze ?params ?r_on_per_square ~vdd ~gnd c, [])

let pp_result c ppf r =
  Format.fprintf ppf
    "%d gates, critical path %d stages, %.2f ns%s@."
    r.gate_count
    (List.length r.critical_path)
    (r.critical_delay_s *. 1e9)
    (if r.has_feedback then " (feedback loops present)" else "");
  List.iter
    (fun tg ->
      Format.fprintf ppf "  %a  +%.3f ns  @@ %.3f ns@."
        (Gates.pp_gate c) tg.gate (tg.delay_s *. 1e9) (tg.arrival_s *. 1e9))
    r.critical_path
