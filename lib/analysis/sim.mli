open Ace_netlist

(** Switch-level simulator for extracted NMOS circuits.

    The papers' first consumer of a wirelist is a logic simulator (ACE §1);
    this is a small Bryant-style switch-level simulator: nodes carry
    (strength, level) pairs, enhancement transistors conduct when their
    gate is high, depletion transistors always conduct but only at pull-up
    strength, and conflicts resolve to X.  Strengths: rail (3) > pull-up
    (2) > stored charge (1). *)

type level = Low | High | Unknown

val level_to_string : level -> string

type t

(** [create circuit ~vdd ~gnd] — rail nets by name (exact match first,
    then case-insensitive).  Raises [Not_found] if a rail name is
    missing; {!create_result} is the non-raising variant. *)
val create : Circuit.t -> vdd:string -> gnd:string -> t

(** As {!create}, but a missing rail yields a diagnostic with the stable
    code ["missing-rail"] instead of an exception. *)
val create_result :
  Circuit.t -> vdd:string -> gnd:string -> (t, Ace_diag.Diag.t) result

val circuit : t -> Circuit.t

(** Force a named net to a level (an input pad).  Raises [Not_found] for
    unknown names. *)
val set_input : t -> string -> level -> unit

(** Remove the forcing on a named net. *)
val release_input : t -> string -> unit

(** Propagate until stable.  Returns [true] if a fixpoint was reached
    within [max_steps] (default 1000) — [false] means oscillation. *)
val stabilize : ?max_steps:int -> t -> bool

(** Current level of a net (by name or index). *)
val value : t -> string -> level

val value_of_net : t -> int -> level

(** Convenience: set inputs, stabilize, read outputs.  Returns [None] on
    oscillation. *)
val eval :
  t -> inputs:(string * level) list -> outputs:string list ->
  (string * level) list option
