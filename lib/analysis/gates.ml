open Ace_tech
open Ace_netlist

type gate =
  | Inverter of { input : int; output : int }
  | Nand of { inputs : int list; output : int }
  | Nor of { inputs : int list; output : int }

type recognition = {
  gates : gate list;
  matched_devices : int;
  total_devices : int;
}

let gate_output = function
  | Inverter { output; _ } | Nand { output; _ } | Nor { output; _ } -> output

let pp_gate c ppf gate =
  let n i = Circuit.net_display_name c i in
  match gate with
  | Inverter { input; output } ->
      Format.fprintf ppf "INV(%s) -> %s" (n input) (n output)
  | Nand { inputs; output } ->
      Format.fprintf ppf "NAND(%s) -> %s"
        (String.concat ", " (List.map n inputs))
        (n output)
  | Nor { inputs; output } ->
      Format.fprintf ppf "NOR(%s) -> %s"
        (String.concat ", " (List.map n inputs))
        (n output)

let recognize ?(vdd = "VDD") ?(gnd = "GND") (c : Circuit.t) =
  let total_devices = Circuit.device_count c in
  let none = { gates = []; matched_devices = 0; total_devices } in
  match (Circuit.find_rail c vdd, Circuit.find_rail c gnd) with
  | None, _ | _, None -> none
  | Some v, Some g ->
      (* channel incidence per net, enhancement devices only *)
      let n = Circuit.net_count c in
      let incidence = Array.make n [] in
      Array.iteri
        (fun i (d : Circuit.device) ->
          if d.dtype = Nmos.Enhancement then begin
            incidence.(d.source) <- (i, d.drain) :: incidence.(d.source);
            incidence.(d.drain) <- (i, d.source) :: incidence.(d.drain)
          end)
        c.Circuit.devices;
      (* depletion loads: gate tied to the output node, channel to VDD *)
      let loads = Hashtbl.create 16 in
      Array.iteri
        (fun i (d : Circuit.device) ->
          if d.dtype = Nmos.Depletion then begin
            let node =
              if d.source = v && d.drain <> v then Some d.drain
              else if d.drain = v && d.source <> v then Some d.source
              else None
            in
            match node with
            | Some out when d.gate = out && not (Hashtbl.mem loads out) ->
                Hashtbl.replace loads out i
            | Some _ | None -> ()
          end)
        c.Circuit.devices;
      let gates = ref [] and matched = ref 0 in
      Hashtbl.iter
        (fun out load_idx ->
          (* try a series chain out -> ... -> gnd where every internal net
             has exactly two channel connections *)
          let rec chain net prev_dev acc =
            if net = g then Some (List.rev acc)
            else
              match
                List.filter (fun (d, _) -> Some d <> prev_dev) incidence.(net)
              with
              | [ (d, next) ]
                when net = out || List.length incidence.(net) = 2 ->
                  chain next (Some d) (d :: acc)
              | _ -> None
          in
          (* try a parallel bank: every device on out goes straight to gnd *)
          let parallel () =
            let direct =
              List.filter (fun (_, other) -> other = g) incidence.(out)
            in
            if
              List.length direct >= 2
              && List.length direct = List.length incidence.(out)
            then Some (List.map fst direct)
            else None
          in
          match chain out None [] with
          | Some [ d ] ->
              matched := !matched + 2;
              gates :=
                Inverter { input = c.Circuit.devices.(d).Circuit.gate; output = out }
                :: !gates;
              ignore load_idx
          | Some (_ :: _ :: _ as devs) ->
              matched := !matched + 1 + List.length devs;
              gates :=
                Nand
                  {
                    inputs =
                      List.map (fun d -> c.Circuit.devices.(d).Circuit.gate) devs;
                    output = out;
                  }
                :: !gates
          | Some [] | None -> (
              match parallel () with
              | Some devs ->
                  matched := !matched + 1 + List.length devs;
                  gates :=
                    Nor
                      {
                        inputs =
                          List.map
                            (fun d -> c.Circuit.devices.(d).Circuit.gate)
                            devs;
                        output = out;
                      }
                    :: !gates
              | None -> ()))
        loads;
      {
        gates =
          List.sort
            (fun a b -> Int.compare (gate_output a) (gate_output b))
            !gates;
        matched_devices = !matched;
        total_devices;
      }
