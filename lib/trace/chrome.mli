(** Chrome trace-event JSON export and validation. *)

val render : ?zero:bool -> Trace.session -> string
(** Renders a session as Chrome trace-event JSON (loadable in Perfetto /
    chrome://tracing).  With [~zero:true] wall times, pids and allocation
    figures are zeroed (counter values stay real) so the output is
    byte-stable for golden tests. *)

val write : ?zero:bool -> string -> Trace.session -> unit

val validate : string -> (int, string) result
(** Structural check used by the tests and the fuzz harness: the text is
    valid JSON with a [traceEvents] array; every event carries
    [ph]/[name]/[pid]/[tid]/[ts]; per-track timestamps are monotone
    non-decreasing; B/E events balance with matching names.  Returns the
    number of non-metadata events on success. *)
