(* Chrome trace-event export (chrome://tracing, Perfetto) and the
   validator the tests and fuzz harness run over every exported trace.

   One track per Trace tid: a "thread_name" metadata record, the B/E/i
   span events with timestamps in microseconds relative to the session
   start, allocation deltas attached to span ends, and one "C" counter
   sample per non-zero counter at the end of the track.  [~zero] zeroes
   wall times, pids and allocation figures (counters stay real) so the
   goldens under test/ are byte-stable. *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render ?(zero = false) (s : Trace.session) =
  let pid = if zero then 0 else Unix.getpid () in
  let us ts = if zero then 0.0 else Int64.to_float (Int64.sub ts s.t0) /. 1e3 in
  let b = Buffer.create 4096 in
  let first = ref true in
  let event line =
    if not !first then Buffer.add_string b ",\n";
    first := false;
    Buffer.add_string b "  ";
    Buffer.add_string b line
  in
  Buffer.add_string b "{\"traceEvents\": [\n";
  List.iter
    (fun (t : Trace.track) ->
      event
        (Printf.sprintf
           "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %d, \"tid\": \
            %d, \"ts\": 0, \"args\": {\"name\": \"%s\"}}"
           pid t.t_tid (escape t.t_name));
      (* stack of Begin alloc figures, to report per-span alloc deltas *)
      let begins = ref [] in
      let last_ts = ref 0.0 in
      Array.iter
        (fun (e : Trace.event) ->
          last_ts := us e.ts;
          match e.kind with
          | Trace.Begin ->
              begins := e.alloc :: !begins;
              event
                (Printf.sprintf
                   "{\"name\": \"%s\", \"cat\": \"ace\", \"ph\": \"B\", \
                    \"pid\": %d, \"tid\": %d, \"ts\": %.3f}"
                   (escape e.ename) pid t.t_tid (us e.ts))
          | Trace.End ->
              let alloc =
                match !begins with
                | a :: rest ->
                    begins := rest;
                    if zero then 0.0 else e.alloc -. a
                | [] -> 0.0
              in
              event
                (Printf.sprintf
                   "{\"name\": \"%s\", \"cat\": \"ace\", \"ph\": \"E\", \
                    \"pid\": %d, \"tid\": %d, \"ts\": %.3f, \"args\": \
                    {\"alloc_w\": %.0f}}"
                   (escape e.ename) pid t.t_tid (us e.ts) alloc)
          | Trace.Instant ->
              event
                (Printf.sprintf
                   "{\"name\": \"%s\", \"cat\": \"ace\", \"ph\": \"i\", \
                    \"pid\": %d, \"tid\": %d, \"ts\": %.3f, \"s\": \"t\"}"
                   (escape e.ename) pid t.t_tid (us e.ts)))
        t.t_events;
      Array.iteri
        (fun i v ->
          if v <> 0 then
            event
              (Printf.sprintf
                 "{\"name\": \"%s\", \"ph\": \"C\", \"pid\": %d, \"tid\": \
                  %d, \"ts\": %.3f, \"args\": {\"value\": %d}}"
                 (Trace.Counter.slug (List.nth Trace.Counter.all i))
                 pid t.t_tid !last_ts v))
        t.t_counters)
    s.tracks;
  Buffer.add_string b "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents b

let write ?zero path session =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?zero session))

(* --- validation --- *)

type stacks = (int * int, string list ref * float ref) Hashtbl.t

let validate text =
  match Json.parse text with
  | Error msg -> Error ("trace is not valid JSON: " ^ msg)
  | Ok root -> (
      match Json.member "traceEvents" root with
      | Some (Json.Arr events) -> (
          let stacks : stacks = Hashtbl.create 8 in
          let checked = ref 0 in
          let check e =
            let str name =
              match Json.member name e with
              | Some (Json.Str s) -> Ok s
              | _ -> Error (Printf.sprintf "event missing string %S" name)
            in
            let num name =
              match Json.member name e with
              | Some (Json.Num f) -> Ok f
              | _ -> Error (Printf.sprintf "event missing number %S" name)
            in
            let ( let* ) = Result.bind in
            let* ph = str "ph" in
            let* name = str "name" in
            let* pid = num "pid" in
            let* tid = num "tid" in
            let* ts = num "ts" in
            if ph = "M" then Ok ()
            else begin
              let key = (int_of_float pid, int_of_float tid) in
              let stack, last =
                match Hashtbl.find_opt stacks key with
                | Some v -> v
                | None ->
                    let v = (ref [], ref neg_infinity) in
                    Hashtbl.add stacks key v;
                    v
              in
              if ts < !last then
                Error
                  (Printf.sprintf
                     "timestamps not monotone on track %d: %.3f after %.3f"
                     (snd key) ts !last)
              else begin
                last := ts;
                incr checked;
                match ph with
                | "B" ->
                    stack := name :: !stack;
                    Ok ()
                | "E" -> (
                    match !stack with
                    | top :: rest when top = name ->
                        stack := rest;
                        Ok ()
                    | top :: _ ->
                        Error
                          (Printf.sprintf
                             "span end %S does not match open span %S on \
                              track %d"
                             name top (snd key))
                    | [] ->
                        Error
                          (Printf.sprintf
                             "span end %S with no open span on track %d" name
                             (snd key)))
                | "i" | "I" | "C" -> Ok ()
                | _ -> Error (Printf.sprintf "unknown event phase %S" ph)
              end
            end
          in
          let rec all = function
            | [] -> Ok ()
            | e :: rest -> (
                match check e with Ok () -> all rest | Error _ as err -> err)
          in
          match all events with
          | Error _ as err -> err
          | Ok () ->
              Hashtbl.fold
                (fun (_, tid) (stack, _) acc ->
                  match acc with
                  | Error _ -> acc
                  | Ok n ->
                      if !stack = [] then Ok n
                      else
                        Error
                          (Printf.sprintf
                             "track %d ends with %d unclosed span(s): %s" tid
                             (List.length !stack)
                             (String.concat ", " !stack)))
                stacks (Ok !checked))
      | _ -> Error "trace has no \"traceEvents\" array")
