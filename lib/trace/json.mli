(** Minimal JSON reader for validating exported traces. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
val member : string -> t -> t option
