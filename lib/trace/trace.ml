(* Pipeline-wide structured tracing.

   One process holds a set of *tracks* (one per domain, plus any explicit
   tracks the sharded extractor opens), each a flat buffer of span
   begin/end events stamped with a monotonic clock, plus an always-on
   array of named counters.  Recording spans is globally switched by one
   atomic flag: with the flag off, [with_span] is a single atomic load and
   a tail call — the null sink allocates nothing on the hot path.
   Counters are always accumulated (they are plain int-array increments on
   the domain's own buffer and feed the `-s` tables even without
   --trace).

   A *session* is one start/stop window.  [stop] snapshots every track's
   events and per-session counter deltas; the Chrome exporter and the
   text tree render sessions, never live buffers. *)

module Counter = struct
  type t =
    | Boxes_popped
    | Expansions
    | Active_merges
    | Uf_finds
    | Uf_unions
    | Net_merges
    | Transistors
    | Solver_iterations
    | Summary_hits
    | Summary_misses
    | Diags
    | Cache_hits
    | Cache_misses
    | Cache_evictions
    | Deadline_kills
    | Overloads
    | Lvs_reductions
    | Lvs_rounds
    | Lvs_matches
    | Lvs_cell_matches
    | Lvs_cell_hits
    | Tiles_extracted
    | Tile_steals
    | Seam_merges_h
    | Seam_merges_v

  let cardinal = 25

  let index = function
    | Boxes_popped -> 0
    | Expansions -> 1
    | Active_merges -> 2
    | Uf_finds -> 3
    | Uf_unions -> 4
    | Net_merges -> 5
    | Transistors -> 6
    | Solver_iterations -> 7
    | Summary_hits -> 8
    | Summary_misses -> 9
    | Diags -> 10
    | Cache_hits -> 11
    | Cache_misses -> 12
    | Cache_evictions -> 13
    | Deadline_kills -> 14
    | Overloads -> 15
    | Lvs_reductions -> 16
    | Lvs_rounds -> 17
    | Lvs_matches -> 18
    | Lvs_cell_matches -> 19
    | Lvs_cell_hits -> 20
    | Tiles_extracted -> 21
    | Tile_steals -> 22
    | Seam_merges_h -> 23
    | Seam_merges_v -> 24

  let all =
    [
      Boxes_popped;
      Expansions;
      Active_merges;
      Uf_finds;
      Uf_unions;
      Net_merges;
      Transistors;
      Solver_iterations;
      Summary_hits;
      Summary_misses;
      Diags;
      Cache_hits;
      Cache_misses;
      Cache_evictions;
      Deadline_kills;
      Overloads;
      Lvs_reductions;
      Lvs_rounds;
      Lvs_matches;
      Lvs_cell_matches;
      Lvs_cell_hits;
      Tiles_extracted;
      Tile_steals;
      Seam_merges_h;
      Seam_merges_v;
    ]

  let slug = function
    | Boxes_popped -> "boxes_popped"
    | Expansions -> "expansions"
    | Active_merges -> "active_merges"
    | Uf_finds -> "uf_finds"
    | Uf_unions -> "uf_unions"
    | Net_merges -> "net_merges"
    | Transistors -> "transistors"
    | Solver_iterations -> "solver_iterations"
    | Summary_hits -> "summary_hits"
    | Summary_misses -> "summary_misses"
    | Diags -> "diags"
    | Cache_hits -> "cache_hits"
    | Cache_misses -> "cache_misses"
    | Cache_evictions -> "cache_evictions"
    | Deadline_kills -> "deadline_kills"
    | Overloads -> "overloads"
    | Lvs_reductions -> "lvs_reductions"
    | Lvs_rounds -> "lvs_rounds"
    | Lvs_matches -> "lvs_matches"
    | Lvs_cell_matches -> "lvs_cell_matches"
    | Lvs_cell_hits -> "lvs_cell_hits"
    | Tiles_extracted -> "tiles_extracted"
    | Tile_steals -> "tile_steals"
    | Seam_merges_h -> "seam_merges_h"
    | Seam_merges_v -> "seam_merges_v"

  let describe = function
    | Boxes_popped -> "boxes delivered by the lazy front-end stream"
    | Expansions -> "one-level symbol expansions in the stream"
    | Active_merges -> "insertion merges into scanline active lists"
    | Uf_finds -> "union-find find operations (nets and device classes)"
    | Uf_unions -> "union-find union operations"
    | Net_merges -> "net unions that actually merged two classes"
    | Transistors -> "transistor channels recognized by the engine"
    | Solver_iterations -> "fixpoint solver transfer-function evaluations"
    | Summary_hits -> "hierarchical summary-cache hits"
    | Summary_misses -> "hierarchical summary-cache misses"
    | Diags -> "diagnostics constructed"
    | Cache_hits -> "persistent extraction-cache hits"
    | Cache_misses -> "persistent extraction-cache misses"
    | Cache_evictions -> "persistent extraction-cache entries evicted"
    | Deadline_kills -> "requests cancelled at their deadline"
    | Overloads -> "requests rejected with an overload reply"
    | Lvs_reductions -> "series/parallel device merges during LVS reduction"
    | Lvs_rounds -> "LVS partition-refinement rounds (incl. individualization)"
    | Lvs_matches -> "devices paired across the two LVS netlists"
    | Lvs_cell_matches -> "distinct LVS cell summaries compared"
    | Lvs_cell_hits -> "LVS cell instances served from the summary memo"
    | Tiles_extracted -> "tiles extracted by the sharded scheduler"
    | Tile_steals -> "tiles obtained by work stealing from another domain"
    | Seam_merges_h -> "fragment compositions across vertical seams (left|right)"
    | Seam_merges_v -> "fragment compositions across horizontal seams (bottom|top)"
end

(* --- clock --- *)

let now_ns () = Monotonic_clock.now ()

(* Total words ever allocated by this domain; the span exporter reports
   the delta across each span as its allocation cost. *)
let alloc_words () =
  let minor, promoted, major = Gc.counters () in
  minor +. major -. promoted

(* --- per-track buffers --- *)

type ekind = Begin | End | Instant

type event = { kind : ekind; ename : string; ts : int64; alloc : float }

let dummy_event = { kind = Instant; ename = ""; ts = 0L; alloc = 0.0 }

type buf = {
  seq : int;  (** creation order, for grouping same-tid bufs *)
  mutable tid : int;
  mutable tname : string;
  counters : int array;
  base : int array;  (** counter snapshot at session start *)
  mutable events : event array;
  mutable n : int;
  mutable dropped : int;
  mutable drop_depth : int;  (** open spans whose Begin was dropped *)
}

(* Cap per track: a runaway span emitter degrades to counting drops
   instead of exhausting memory.  Ends matching a recorded Begin are
   always recorded so the export stays balanced. *)
let max_events = 1 lsl 20

let registry : buf list ref = ref []
let registry_mu = Mutex.create ()
let next_seq = Atomic.make 0

let new_buf ~tid ~tname =
  let b =
    {
      seq = Atomic.fetch_and_add next_seq 1;
      tid;
      tname;
      counters = Array.make Counter.cardinal 0;
      base = Array.make Counter.cardinal 0;
      events = [||];
      n = 0;
      dropped = 0;
      drop_depth = 0;
    }
  in
  Mutex.lock registry_mu;
  registry := b :: !registry;
  Mutex.unlock registry_mu;
  b

let key =
  Domain.DLS.new_key (fun () ->
      let id = (Domain.self () :> int) in
      (* Worker domains' default tracks live far above the explicit
         track range [with_track] users allocate from 1 (shards, stitch),
         so a spawned domain's id can never collide with a shard tid. *)
      ref
        (if id = 0 then new_buf ~tid:0 ~tname:"main"
         else
           new_buf ~tid:(10000 + id) ~tname:(Printf.sprintf "domain %d" id)))

let current () = !(Domain.DLS.get key)

(* --- counters (always on) --- *)

let count c n =
  let b = current () in
  let i = Counter.index c in
  b.counters.(i) <- b.counters.(i) + n

let incr c = count c 1

let bufs_snapshot () =
  Mutex.lock registry_mu;
  let bs = !registry in
  Mutex.unlock registry_mu;
  List.rev bs

let counter_totals () =
  let totals = Array.make Counter.cardinal 0 in
  List.iter
    (fun b ->
      Array.iteri (fun i v -> totals.(i) <- totals.(i) + v) b.counters)
    (bufs_snapshot ());
  List.map (fun c -> (c, totals.(Counter.index c))) Counter.all

let reset_counters () =
  List.iter
    (fun b ->
      Array.fill b.counters 0 Counter.cardinal 0;
      Array.fill b.base 0 Counter.cardinal 0)
    (bufs_snapshot ())

let counters_snapshot () = Array.copy (current ()).counters

(* --- recording --- *)

let recording_flag = Atomic.make false
let recording () = Atomic.get recording_flag
let epoch = Atomic.make 0L

let push_event b e =
  match e.kind with
  | Begin when b.n >= max_events ->
      b.drop_depth <- b.drop_depth + 1;
      b.dropped <- b.dropped + 1
  | End when b.drop_depth > 0 ->
      b.drop_depth <- b.drop_depth - 1;
      b.dropped <- b.dropped + 1
  | Instant when b.n >= max_events -> b.dropped <- b.dropped + 1
  | Begin | End | Instant ->
      if b.n = Array.length b.events then begin
        let cap = max 256 (2 * b.n) in
        let a = Array.make cap dummy_event in
        Array.blit b.events 0 a 0 b.n;
        b.events <- a
      end;
      b.events.(b.n) <- e;
      b.n <- b.n + 1

let emit kind ename =
  let b = current () in
  push_event b { kind; ename; ts = now_ns (); alloc = alloc_words () }

let with_span name f =
  if not (Atomic.get recording_flag) then f ()
  else begin
    emit Begin name;
    Fun.protect ~finally:(fun () -> emit End name) f
  end

let instant name = if Atomic.get recording_flag then emit Instant name

(* The primitive [Timing] rides on: always measures wall time with the
   monotonic clock and hands the elapsed seconds to [on_elapsed]; when a
   session is recording it additionally emits the span, from the *same*
   clock samples, so phase timings derived from the trace agree exactly
   with the accumulated ones. *)
let timed name on_elapsed f =
  if Atomic.get recording_flag then begin
    let b = current () in
    let t0 = now_ns () in
    push_event b { kind = Begin; ename = name; ts = t0; alloc = alloc_words () };
    Fun.protect
      ~finally:(fun () ->
        let t1 = now_ns () in
        push_event b { kind = End; ename = name; ts = t1; alloc = alloc_words () };
        on_elapsed (Int64.to_float (Int64.sub t1 t0) /. 1e9))
      f
  end
  else begin
    let t0 = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        on_elapsed (Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9))
      f
  end

(* --- tracks --- *)

let with_track ~tid ~name f =
  let r = Domain.DLS.get key in
  let prev = !r in
  r := new_buf ~tid ~tname:name;
  Fun.protect ~finally:(fun () -> r := prev) f

let current_track () =
  let b = current () in
  (b.tid, b.tname)

(* --- sessions --- *)

type track = {
  t_tid : int;
  t_name : string;
  t_events : event array;
  t_counters : int array;  (** per-session deltas, [Counter.index]ed *)
  t_dropped : int;
}

type session = { tracks : track list; t0 : int64 }

let start () =
  Mutex.lock registry_mu;
  List.iter
    (fun b ->
      b.n <- 0;
      b.events <- [||];
      b.dropped <- 0;
      b.drop_depth <- 0;
      Array.blit b.counters 0 b.base 0 Counter.cardinal)
    !registry;
  Mutex.unlock registry_mu;
  Atomic.set epoch (now_ns ());
  Atomic.set recording_flag true

let stop () =
  Atomic.set recording_flag false;
  let bufs =
    List.sort
      (fun a b ->
        match Int.compare a.tid b.tid with
        | 0 -> Int.compare a.seq b.seq
        | c -> c)
      (bufs_snapshot ())
  in
  (* merge same-tid bufs (a track reopened across [with_track] calls)
     into one exported track, in creation order *)
  let by_ts (a : event) (b : event) = Int64.compare a.ts b.ts in
  let tracks =
    List.fold_left
      (fun acc b ->
        let events = Array.sub b.events 0 b.n in
        let deltas =
          Array.init Counter.cardinal (fun i -> b.counters.(i) - b.base.(i))
        in
        b.events <- [||];
        b.n <- 0;
        match acc with
        | t :: rest when t.t_tid = b.tid ->
            (* A reopened track's events follow the earlier buffer on the
               timeline, but a *nested* reopen (with_track re-entering a
               tid that is still open) interleaves with the outer buffer;
               a stable sort on the timestamps restores timeline order
               either way (it is the identity for the sequential case). *)
            let merged = Array.append t.t_events events in
            Array.stable_sort by_ts merged;
            {
              t with
              t_events = merged;
              t_counters =
                Array.init Counter.cardinal (fun i ->
                    t.t_counters.(i) + deltas.(i));
              t_dropped = t.t_dropped + b.dropped;
            }
            :: rest
        | _ ->
            {
              t_tid = b.tid;
              t_name = b.tname;
              t_events = events;
              t_counters = deltas;
              t_dropped = b.dropped;
            }
            :: acc)
      [] bufs
  in
  let tracks =
    List.filter
      (fun t ->
        Array.length t.t_events > 0
        || Array.exists (fun v -> v <> 0) t.t_counters)
      (List.rev tracks)
  in
  { tracks; t0 = Atomic.get epoch }

let session_counter_totals s =
  let totals = Array.make Counter.cardinal 0 in
  List.iter
    (fun t -> Array.iteri (fun i v -> totals.(i) <- totals.(i) + v) t.t_counters)
    s.tracks;
  List.map (fun c -> (c, totals.(Counter.index c))) Counter.all

(* --- compact text tree --- *)

type node = {
  mutable calls : int;
  mutable total_ns : int64;
  mutable alloc_w : float;
  children : (string, node) Hashtbl.t;
  mutable order : string list;  (** child names, first-seen order *)
}

let fresh_node () =
  { calls = 0; total_ns = 0L; alloc_w = 0.0; children = Hashtbl.create 4; order = [] }

let to_text (s : session) =
  let buffer = Buffer.create 1024 in
  List.iter
    (fun tr ->
      Buffer.add_string buffer
        (Printf.sprintf "track %d  %s\n" tr.t_tid tr.t_name);
      let root = fresh_node () in
      let stack = ref [ root ] in
      let starts = ref [] in
      Array.iter
        (fun e ->
          match e.kind with
          | Begin ->
              let parent = List.hd !stack in
              let node =
                match Hashtbl.find_opt parent.children e.ename with
                | Some n -> n
                | None ->
                    let n = fresh_node () in
                    Hashtbl.add parent.children e.ename n;
                    parent.order <- e.ename :: parent.order;
                    n
              in
              stack := node :: !stack;
              starts := e :: !starts
          | End -> (
              match (!stack, !starts) with
              | node :: rest, b :: brest when rest <> [] ->
                  node.calls <- node.calls + 1;
                  node.total_ns <-
                    Int64.add node.total_ns (Int64.sub e.ts b.ts);
                  node.alloc_w <- node.alloc_w +. (e.alloc -. b.alloc);
                  stack := rest;
                  starts := brest
              | _ -> () (* unbalanced: ignore, the validator reports it *))
          | Instant -> ())
        tr.t_events;
      let rec print indent node =
        List.iter
          (fun name ->
            let child = Hashtbl.find node.children name in
            Buffer.add_string buffer
              (Printf.sprintf "%s%-*s %8d× %10.3f ms %12.0f w\n" indent
                 (max 1 (30 - String.length indent))
                 name child.calls
                 (Int64.to_float child.total_ns /. 1e6)
                 child.alloc_w);
            print (indent ^ "  ") child)
          (List.rev node.order)
      in
      print "  " root;
      Array.iteri
        (fun i v ->
          if v <> 0 then
            Buffer.add_string buffer
              (Printf.sprintf "  #%-28s %10d\n"
                 (Counter.slug (List.nth Counter.all i))
                 v))
        tr.t_counters;
      if tr.t_dropped > 0 then
        Buffer.add_string buffer
          (Printf.sprintf "  (%d events dropped at the %d-event track cap)\n"
             tr.t_dropped max_events))
    s.tracks;
  Buffer.contents buffer

let print_counter_table ?(oc = stderr) totals =
  let nonzero = List.filter (fun (_, v) -> v <> 0) totals in
  if nonzero <> [] then begin
    Printf.fprintf oc "counters:\n";
    List.iter
      (fun (c, v) ->
        Printf.fprintf oc "  %-20s %12d  %s\n" (Counter.slug c) v
          (Counter.describe c))
      nonzero
  end
