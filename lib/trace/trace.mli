(** Low-overhead structured tracing: nestable spans on per-domain tracks,
    always-on named counters, and session snapshots consumed by the
    {!Chrome} exporter and the compact text tree.

    Counters are always live (plain int-array increments on the calling
    domain's own buffer).  Span recording is off by default; with it off,
    {!with_span} costs one atomic load and allocates nothing. *)

module Counter : sig
  type t =
    | Boxes_popped  (** boxes delivered by the lazy front-end stream *)
    | Expansions  (** one-level symbol expansions in the stream *)
    | Active_merges  (** insertion merges into scanline active lists *)
    | Uf_finds  (** union-find find operations *)
    | Uf_unions  (** union-find union operations *)
    | Net_merges  (** net unions that actually merged two classes *)
    | Transistors  (** transistor channels recognized by the engine *)
    | Solver_iterations  (** fixpoint transfer-function evaluations *)
    | Summary_hits  (** hierarchical summary-cache hits *)
    | Summary_misses  (** hierarchical summary-cache misses *)
    | Diags  (** diagnostics constructed *)
    | Cache_hits  (** persistent extraction-cache hits *)
    | Cache_misses  (** persistent extraction-cache misses *)
    | Cache_evictions  (** persistent extraction-cache entries evicted *)
    | Deadline_kills  (** requests cancelled at their deadline *)
    | Overloads  (** requests rejected with an overload reply *)
    | Lvs_reductions  (** series/parallel device merges during LVS reduction *)
    | Lvs_rounds  (** LVS partition-refinement rounds *)
    | Lvs_matches  (** devices paired across the two LVS netlists *)
    | Lvs_cell_matches  (** distinct LVS cell summaries compared *)
    | Lvs_cell_hits  (** LVS cell instances served from the summary memo *)
    | Tiles_extracted  (** tiles extracted by the sharded scheduler *)
    | Tile_steals  (** tiles obtained by work stealing from another domain *)
    | Seam_merges_h  (** fragment compositions across vertical seams *)
    | Seam_merges_v  (** fragment compositions across horizontal seams *)

  val cardinal : int
  val index : t -> int
  val all : t list
  val slug : t -> string
  val describe : t -> string
end

(** {1 Clock} *)

val now_ns : unit -> int64
(** The monotonic clock every span timestamp uses, in nanoseconds.
    Unaffected by wall-clock steps; only differences are meaningful.
    Exposed so shard telemetry and request deadlines share the same
    timebase as the trace. *)

(** {1 Counters (always on)} *)

val count : Counter.t -> int -> unit
val incr : Counter.t -> unit

val counter_totals : unit -> (Counter.t * int) list
(** Lifetime totals summed over every track of every domain. *)

val reset_counters : unit -> unit

val counters_snapshot : unit -> int array
(** Copy of the calling domain's current track counters,
    [Counter.index]-indexed.  Inside {!with_track} the track starts at
    zero, so this is the per-track (per-shard) contribution. *)

(** {1 Spans} *)

val recording : unit -> bool

val with_span : string -> (unit -> 'a) -> 'a
(** Runs the thunk inside a named span when a session is recording;
    otherwise just runs it.  The span is closed on exceptions. *)

val instant : string -> unit

val timed : string -> (float -> unit) -> (unit -> 'a) -> 'a
(** [timed name on_elapsed f] always measures [f]'s wall time with the
    monotonic clock and passes the elapsed seconds to [on_elapsed]
    (even on exceptions); when recording it additionally emits the span
    from the same clock samples, so timings derived from the trace agree
    exactly with the accumulated ones.  [Timing.charge] rides on this. *)

val with_track : tid:int -> name:string -> (unit -> 'a) -> 'a
(** Runs the thunk with the calling domain's events and counters routed to
    a fresh track with the given Chrome tid and thread name; the previous
    track is restored afterwards (also on exceptions). *)

val current_track : unit -> int * string

(** {1 Sessions} *)

type ekind = Begin | End | Instant

type event = { kind : ekind; ename : string; ts : int64; alloc : float }
(** [ts] is monotonic nanoseconds; [alloc] is the domain's cumulative
    allocated words at the event boundary. *)

type track = {
  t_tid : int;
  t_name : string;
  t_events : event array;
  t_counters : int array;  (** per-session deltas, [Counter.index]ed *)
  t_dropped : int;
}

type session = { tracks : track list; t0 : int64 }

val start : unit -> unit
(** Clears every track's events, snapshots counters, starts recording. *)

val stop : unit -> session
(** Stops recording and snapshots all tracks (sorted by tid; same-tid
    buffers merged in creation order; empty tracks elided). *)

val session_counter_totals : session -> (Counter.t * int) list

(** {1 Rendering} *)

val to_text : session -> string
(** Compact per-track call tree: span path, call count, total wall time,
    allocated words; then the track's non-zero counters. *)

val print_counter_table : ?oc:out_channel -> (Counter.t * int) list -> unit
(** Prints the non-zero counters with their glossary lines (the `-s`
    table).  Prints nothing when all counters are zero. *)
