(* Minimal JSON reader used to validate exported Chrome traces in tests
   and the fuzz harness.  Not a general-purpose library: no streaming,
   integers read as floats, \u escapes outside the BMP are not paired. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    &&
    match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected '%s'" word)

let utf8_of_code b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec loop () =
    if st.pos >= String.length st.src then fail st "unterminated string";
    let c = st.src.[st.pos] in
    st.pos <- st.pos + 1;
    match c with
    | '"' -> Buffer.contents b
    | '\\' ->
        (if st.pos >= String.length st.src then fail st "unterminated escape";
         let e = st.src.[st.pos] in
         st.pos <- st.pos + 1;
         match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'u' ->
             if st.pos + 4 > String.length st.src then fail st "short \\u";
             let hex = String.sub st.src st.pos 4 in
             st.pos <- st.pos + 4;
             let code =
               try int_of_string ("0x" ^ hex)
               with _ -> fail st "bad \\u escape"
             in
             utf8_of_code b code
         | _ -> fail st "bad escape");
        loop ()
    | c when Char.code c < 0x20 -> fail st "control character in string"
    | c ->
        Buffer.add_char b c;
        loop ()
  in
  loop ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && is_num_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then fail st "expected number";
  let tok = String.sub st.src start (st.pos - start) in
  match float_of_string_opt tok with
  | Some f -> f
  | None -> fail st (Printf.sprintf "bad number %S" tok)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              members ((k, v) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              Obj (List.rev ((k, v) :: acc))
          | _ -> fail st "expected ',' or '}'"
        in
        members []
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        Arr []
      end
      else begin
        let rec elems acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              elems (v :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              Arr (List.rev (v :: acc))
          | _ -> fail st "expected ',' or ']'"
        in
        elems []
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

let parse src =
  let st = { src; pos = 0 } in
  match parse_value st with
  | v ->
      skip_ws st;
      if st.pos <> String.length src then Error "trailing garbage"
      else Ok v
  | exception Parse_error msg -> Error msg

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None
