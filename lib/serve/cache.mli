(** Crash-safe persistent extraction cache.

    Entries are content-addressed: the key is an FNV-1a 64 hash of the
    canonical CIF text of the checked design plus everything else that
    shapes the result (quantum, part name, shard count, format version),
    so a warm hit is byte-identical to the cold computation by
    construction and stale entries are unreachable rather than
    invalidated.

    On-disk format, one file [<key>.ace] per entry:

    {v ace-cache/1 <fnv64-hex-of-payload> <payload-length>\n<payload> v}

    Writes are crash-safe: payload to a [.tmp.*] file, [fsync], atomic
    [rename] into place, directory fsync (best effort).  A crash before
    the rename leaves only a temp file, swept at {!open_dir} and {!gc};
    a crash after it leaves a complete entry.  Reads verify the version
    stamp, the length and the checksum: a version mismatch deletes the
    entry (format evolution), any corruption — truncation, bit flips,
    torn writes that bypassed the rename — quarantines it (renamed to
    [*.quarantined] for post-mortem) and reports a miss, so the daemon
    recomputes and heals the cache.

    Eviction is LRU by mtime: hits touch the entry's mtime, and when a
    byte cap is configured a sweep after each store removes
    oldest-first until under the cap.

    Every operation is total: filesystem errors degrade to misses or
    no-ops, never exceptions.  All operations take an internal lock, so
    one cache may be shared by the server's connection threads.
    Hits/misses/evictions also tick the global
    {!Ace_trace.Trace.Counter} set. *)

type t

val fnv1a64_hex : string -> string
(** FNV-1a 64-bit hash, as 16 lowercase hex digits. *)

val format_version : int

val open_dir :
  ?max_mb:int -> ?max_bytes:int -> faults:Faults.t -> string -> (t, string) result
(** Create/open a cache directory (created if missing, parents too) and
    sweep stale temp files left by a crashed writer.  [max_bytes] (used
    by tests for byte-precise eviction) wins over [max_mb]. *)

val dir : t -> string

val find : t -> string -> string option
(** [find t key] — the verified payload, or [None] (miss, version
    mismatch, corruption).  Hits refresh the entry's LRU position. *)

val store : t -> string -> string -> unit
(** [store t key payload] — atomic write, then an eviction sweep if a
    byte cap is set.  Failures are silent (the cache is advisory). *)

type gc_stats = {
  removed_tmp : int;
  removed_quarantined : int;
  evicted : int;
  kept : int;  (** live entries after the sweep *)
  bytes : int;  (** live bytes after the sweep *)
}

val gc : t -> gc_stats
(** Remove temp and quarantined files, then enforce the byte cap.
    [removed_tmp] also counts temp files swept when the cache was
    opened (reported once, by the first gc after open). *)

type stats = {
  entries : int;
  bytes : int;
  hits : int;
  misses : int;
  stores : int;
  quarantined : int;
  evictions : int;
}
(** Counts are since [open_dir]; entries/bytes are the current on-disk
    population. *)

val stats : t -> stats
