module Json = Ace_trace.Json

let err_bad_request = "bad-request"
let err_too_large = "request-too-large"
let err_deadline = "deadline-exceeded"
let err_overloaded = "overloaded"
let err_internal = "internal-error"

let str s = "\"" ^ Ace_diag.Diag.json_escape s ^ "\""
let int = string_of_int
let bool = string_of_bool
let arr xs = "[" ^ String.concat "," xs ^ "]"

let obj fields =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields)
  ^ "}"

let rec render = function
  | Json.Null -> "null"
  | Json.Bool b -> bool b
  | Json.Str s -> str s
  | Json.Num f ->
      (* The reader parses every number as a float; render integral values
         without a decimal point so small ids round-trip unchanged. *)
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.sprintf "%.0f" f
      else Printf.sprintf "%.17g" f
  | Json.Arr xs -> arr (List.map render xs)
  | Json.Obj kvs -> obj (List.map (fun (k, v) -> (k, render v)) kvs)

type request = {
  id : Json.t;
  op : string;
  cif : string option;
  name : string;
  jobs : int option;
  tile : (int * int) option;
  deadline_ms : int option;
  use_cache : bool;
  vdd : string option;
  gnd : string option;
  reference : string option;
  hier : bool;
  ref_format : string option;
  max_findings : int option;
}

let field_string j k =
  match Json.member k j with
  | Some (Json.Str s) -> Ok (Some s)
  | None | Some Json.Null -> Ok None
  | Some _ -> Error (Printf.sprintf "field %S must be a string" k)

let field_int j k =
  match Json.member k j with
  | Some (Json.Num f) when Float.is_integer f && Float.abs f < 1e9 ->
      Ok (Some (int_of_float f))
  | None | Some Json.Null -> Ok None
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" k)

let field_bool j k =
  match Json.member k j with
  | Some (Json.Bool b) -> Ok (Some b)
  | None | Some Json.Null -> Ok None
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" k)

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let parse line =
  match Json.parse line with
  | Error msg -> Error (err_bad_request, "invalid JSON: " ^ msg)
  | Ok (Json.Obj _ as j) -> (
      let id = Option.value (Json.member "id" j) ~default:Json.Null in
      let build =
        let* op = field_string j "op" in
        let* cif = field_string j "cif" in
        let* name = field_string j "name" in
        let* jobs = field_int j "jobs" in
        let* tile =
          let* s = field_string j "tile" in
          match s with
          | None -> Ok None
          | Some s -> (
              match Ace_core.Parallel.tile_of_string s with
              | Ok g -> Ok (Some g)
              | Error e -> Error e)
        in
        let* deadline_ms = field_int j "deadline_ms" in
        let* use_cache = field_bool j "cache" in
        let* vdd = field_string j "vdd" in
        let* gnd = field_string j "gnd" in
        let* reference = field_string j "ref" in
        let* hier = field_bool j "hier" in
        let* ref_format = field_string j "ref_format" in
        let* max_findings = field_int j "max_findings" in
        match op with
        | None -> Error "missing field \"op\""
        | Some op ->
            Ok
              {
                id;
                op;
                cif;
                name = Option.value name ~default:"chip";
                jobs;
                tile;
                deadline_ms;
                use_cache = Option.value use_cache ~default:true;
                vdd;
                gnd;
                reference;
                hier = Option.value hier ~default:false;
                ref_format;
                max_findings;
              }
      in
      match build with
      | Ok r -> Ok r
      | Error msg -> Error (err_bad_request, msg))
  | Ok _ -> Error (err_bad_request, "request must be a JSON object")

let ok ~id ~op fields =
  obj (("id", render id) :: ("ok", "true") :: ("op", str op) :: fields)

let error ~id ~code ?(extra = []) message =
  obj
    [
      ("id", render id);
      ("ok", "false");
      ("error", obj (("code", str code) :: ("message", str message) :: extra));
    ]
