type t = {
  mutable torn_write : bool;
  mutable bit_flip : bool;
  mutable slow_ms : int;
  mutable shard_raise : bool;
  mutable oom_soft : bool;
}

let none () =
  {
    torn_write = false;
    bit_flip = false;
    slow_ms = 0;
    shard_raise = false;
    oom_soft = false;
  }

let apply t spec =
  match spec with
  | "cache-torn-write" ->
      t.torn_write <- true;
      Ok ()
  | "cache-bit-flip" ->
      t.bit_flip <- true;
      Ok ()
  | "shard-raise" ->
      t.shard_raise <- true;
      Ok ()
  | "oom-soft" ->
      t.oom_soft <- true;
      Ok ()
  | _ -> (
      match String.index_opt spec '=' with
      | Some i when String.sub spec 0 i = "slow-request" -> (
          let v = String.sub spec (i + 1) (String.length spec - i - 1) in
          match int_of_string_opt v with
          | Some ms when ms >= 0 ->
              t.slow_ms <- ms;
              Ok ()
          | _ -> Error (Printf.sprintf "bad slow-request delay %S" v))
      | _ -> Error (Printf.sprintf "unknown fault %S" spec))

let of_specs specs =
  let t = none () in
  let rec go = function
    | [] -> Ok t
    | s :: rest -> ( match apply t s with Ok () -> go rest | Error e -> Error e)
  in
  go specs

let env_specs () =
  match Sys.getenv_opt "ACE_FAULTS" with
  | None -> []
  | Some s ->
      String.split_on_char ',' s
      |> List.map String.trim
      |> List.filter (fun x -> x <> "")

let to_specs t =
  List.concat
    [
      (if t.torn_write then [ "cache-torn-write" ] else []);
      (if t.bit_flip then [ "cache-bit-flip" ] else []);
      (if t.slow_ms > 0 then [ Printf.sprintf "slow-request=%d" t.slow_ms ]
       else []);
      (if t.shard_raise then [ "shard-raise" ] else []);
      (if t.oom_soft then [ "oom-soft" ] else []);
    ]
