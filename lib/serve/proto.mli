(** The aced wire protocol: newline-delimited JSON.

    One request per line, one reply per line, in order.  A request is a
    JSON object with an ["op"] field (["extract"], ["lint"], ["flow"],
    ["lvs"], ["ping"], ["stats"], ["cache-gc"], ["shutdown"]) and an
    optional
    ["id"] of any JSON type, echoed verbatim in the reply.  Replies are
    objects with ["id"], ["ok"], and either per-op result fields or an
    ["error"] object carrying a stable kebab-case ["code"] (the same
    namespace the diagnostics use) and a human ["message"].

    This module is pure data: request parsing (on top of the minimal
    {!Ace_trace.Json} reader) and reply rendering.  Rendering builds
    JSON text directly — values passed to {!obj}/{!arr} are already
    rendered fragments — so replies can splice cached payload bytes
    without a decode/re-encode round trip (the warm-equals-cold
    byte-identity contract depends on that). *)

module Json = Ace_trace.Json

(** {1 Error codes} *)

val err_bad_request : string
val err_too_large : string
val err_deadline : string
val err_overloaded : string
val err_internal : string

(** {1 Rendering} *)

val str : string -> string
(** A JSON string literal (escaped). *)

val int : int -> string

val bool : bool -> string

val arr : string list -> string
(** Elements are pre-rendered JSON fragments. *)

val obj : (string * string) list -> string
(** Values are pre-rendered JSON fragments; keys are escaped. *)

val render : Json.t -> string
(** Re-render a parsed value (used to echo request ids). *)

(** {1 Requests} *)

type request = {
  id : Json.t;  (** echoed verbatim; [Null] when absent *)
  op : string;
  cif : string option;  (** the layout, as CIF text *)
  name : string;  (** wirelist part name, default ["chip"] *)
  jobs : int option;  (** worker-count override, clamped by the server *)
  tile : (int * int) option;
      (** the ["tile"] field, a ["COLSxROWS"] string: explicit extraction
          tile grid (wirelists are byte-identical for every grid; only
          telemetry and warning framing vary) *)
  deadline_ms : int option;  (** per-request deadline *)
  use_cache : bool;  (** default [true] *)
  vdd : string option;  (** rail-name override for lint/flow/lvs *)
  gnd : string option;
  reference : string option;
      (** the ["ref"] field: the reference netlist text for op ["lvs"]
          (SPICE-ish or wirelist) *)
  hier : bool;  (** op ["lvs"]: compare hierarchically (default [false]) *)
  ref_format : string option;
      (** op ["lvs"]: reference dialect, ["spice"] (default) or
          ["verilog"] *)
  max_findings : int option;
      (** op ["lvs"]: per-code finding cap, [0] = unlimited (default 20) *)
}

(** [parse line] — [Error (code, message)] on malformed input; never
    raises.  The only code it produces is {!err_bad_request}. *)
val parse : string -> (request, string * string) result

(** {1 Replies} *)

(** [ok ~id ~op fields] — [{"id":…,"ok":true,"op":…,…fields}]. *)
val ok : id:Json.t -> op:string -> (string * string) list -> string

(** [error ~id ~code ?extra message] — [{"id":…,"ok":false,"error":
    {"code":…,"message":…,…extra}}]. *)
val error :
  id:Json.t -> code:string -> ?extra:(string * string) list -> string -> string
