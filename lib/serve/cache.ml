module Trace = Ace_trace.Trace

let fnv1a64_hex s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  Printf.sprintf "%016Lx" !h

let format_version = 1

let magic = Printf.sprintf "ace-cache/%d" format_version

type t = {
  dir : string;
  max_bytes : int option;
  faults : Faults.t;
  lock : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
  mutable quarantined : int;
  mutable evictions : int;
  mutable swept_at_open : int;
      (* .tmp files removed when the cache was opened, not yet reported
         by a [gc]; folded into the next gc summary so `aced cache gc`
         accounts for every temp file it actually cleaned up *)
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let is_tmp name = String.length name > 4 && String.sub name 0 4 = ".tmp"

let has_suffix suf name =
  let n = String.length name and s = String.length suf in
  n >= s && String.sub name (n - s) s = suf

let entry_path t key = Filename.concat t.dir (key ^ ".ace")

let rec mkdir_p path =
  if path = "" || path = "." || path = "/" || Sys.file_exists path then ()
  else begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let list_dir dir = try Sys.readdir dir with Sys_error _ -> [||]

let remove_file path = try Sys.remove path with Sys_error _ -> ()

let sweep_tmp dir =
  Array.fold_left
    (fun n name ->
      if is_tmp name then begin
        remove_file (Filename.concat dir name);
        n + 1
      end
      else n)
    0 (list_dir dir)

let open_dir ?max_mb ?max_bytes ~faults dir =
  match mkdir_p dir with
  | () ->
      if not (Sys.is_directory dir) then
        Error (Printf.sprintf "cache path %s is not a directory" dir)
      else begin
        let swept = sweep_tmp dir in
        Ok
          {
            dir;
            max_bytes =
              (match max_bytes with
              | Some _ as b -> b
              | None -> Option.map (fun mb -> mb * 1024 * 1024) max_mb);
            faults;
            lock = Mutex.create ();
            hits = 0;
            misses = 0;
            stores = 0;
            quarantined = 0;
            evictions = 0;
            swept_at_open = swept;
          }
      end
  | exception (Unix.Unix_error _ | Sys_error _) ->
      Error (Printf.sprintf "cannot create cache directory %s" dir)

let dir t = t.dir

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
      let len = in_channel_length ic in
      (try Some (really_input_string ic len) with End_of_file | Sys_error _ -> None)

(* Entry classification: [Ok payload] on a verified entry, [`Version] on a
   clean stamp mismatch (format evolved), [`Corrupt] on anything else. *)
let parse_entry data =
  match String.index_opt data '\n' with
  | None -> Error `Corrupt
  | Some nl -> (
      let header = String.sub data 0 nl in
      match String.split_on_char ' ' header with
      | [ m; csum; len ] when m = magic -> (
          match int_of_string_opt len with
          | Some len
            when String.length data - nl - 1 = len ->
              let payload = String.sub data (nl + 1) len in
              if fnv1a64_hex payload = csum then Ok payload else Error `Corrupt
          | _ -> Error `Corrupt)
      | m :: _
        when String.length m > 10 && String.sub m 0 10 = "ace-cache/" && m <> magic
        ->
          Error `Version
      | _ -> Error `Corrupt)

let quarantine t path =
  (try Sys.rename path (path ^ ".quarantined") with Sys_error _ -> ());
  t.quarantined <- t.quarantined + 1

let find t key =
  with_lock t @@ fun () ->
  let path = entry_path t key in
  let miss () =
    t.misses <- t.misses + 1;
    Trace.incr Trace.Counter.Cache_misses;
    None
  in
  match read_file path with
  | None -> miss ()
  | Some data -> (
      match parse_entry data with
      | Ok payload ->
          t.hits <- t.hits + 1;
          Trace.incr Trace.Counter.Cache_hits;
          (* LRU touch: bump the mtime to now. *)
          (try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ());
          Some payload
      | Error `Version ->
          remove_file path;
          miss ()
      | Error `Corrupt ->
          quarantine t path;
          miss ())

(* Live entries as (path, bytes, mtime), oldest first (name-tiebroken so
   eviction order is deterministic under coarse clocks). *)
let live_entries t =
  let es =
    Array.to_list (list_dir t.dir)
    |> List.filter_map (fun name ->
           if has_suffix ".ace" name then
             let path = Filename.concat t.dir name in
             match Unix.stat path with
             | st -> Some (path, st.Unix.st_size, st.Unix.st_mtime)
             | exception Unix.Unix_error _ -> None
           else None)
  in
  List.sort
    (fun (p1, _, m1) (p2, _, m2) ->
      match compare m1 m2 with 0 -> compare p1 p2 | c -> c)
    es

let evict_over_cap t =
  match t.max_bytes with
  | None -> 0
  | Some cap ->
      let es = live_entries t in
      let total = List.fold_left (fun a (_, sz, _) -> a + sz) 0 es in
      let rec drop n total = function
        | (path, sz, _) :: rest when total > cap ->
            remove_file path;
            Trace.incr Trace.Counter.Cache_evictions;
            drop (n + 1) (total - sz) rest
        | _ -> n
      in
      let n = drop 0 total es in
      t.evictions <- t.evictions + n;
      n

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let store t key payload =
  with_lock t @@ fun () ->
  try
    let path = entry_path t key in
    let header =
      Printf.sprintf "%s %s %d\n" magic (fnv1a64_hex payload)
        (String.length payload)
    in
    if t.faults.Faults.torn_write then begin
      (* Simulated crash mid-write: a truncated entry, visible at its
         final path — exactly what skipping the temp/rename protocol
         risks.  Readers must quarantine it. *)
      let oc = open_out_bin path in
      output_string oc header;
      output_string oc (String.sub payload 0 (String.length payload / 2));
      close_out oc
    end
    else begin
      let payload =
        if t.faults.Faults.bit_flip && String.length payload > 0 then begin
          let b = Bytes.of_string payload in
          let i = Bytes.length b / 2 in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
          Bytes.to_string b
        end
        else payload
      in
      let tmp =
        Filename.concat t.dir
          (Printf.sprintf ".tmp.%s.%d" key (Unix.getpid ()))
      in
      let oc = open_out_bin tmp in
      (try
         output_string oc header;
         output_string oc payload;
         flush oc;
         Unix.fsync (Unix.descr_of_out_channel oc);
         close_out oc
       with e ->
         close_out_noerr oc;
         remove_file tmp;
         raise e);
      Sys.rename tmp path;
      fsync_dir t.dir
    end;
    t.stores <- t.stores + 1;
    ignore (evict_over_cap t)
  with Sys_error _ | Unix.Unix_error _ -> ()

type gc_stats = {
  removed_tmp : int;
  removed_quarantined : int;
  evicted : int;
  kept : int;
  bytes : int;
}

let gc t =
  with_lock t @@ fun () ->
  let removed_tmp = sweep_tmp t.dir + t.swept_at_open in
  t.swept_at_open <- 0;
  let removed_quarantined =
    Array.fold_left
      (fun n name ->
        if has_suffix ".quarantined" name then begin
          remove_file (Filename.concat t.dir name);
          n + 1
        end
        else n)
      0 (list_dir t.dir)
  in
  let evicted = evict_over_cap t in
  let es = live_entries t in
  {
    removed_tmp;
    removed_quarantined;
    evicted;
    kept = List.length es;
    bytes = List.fold_left (fun a (_, sz, _) -> a + sz) 0 es;
  }

type stats = {
  entries : int;
  bytes : int;
  hits : int;
  misses : int;
  stores : int;
  quarantined : int;
  evictions : int;
}

let stats t =
  with_lock t @@ fun () ->
  let es = live_entries t in
  {
    entries = List.length es;
    bytes = List.fold_left (fun a (_, sz, _) -> a + sz) 0 es;
    hits = t.hits;
    misses = t.misses;
    stores = t.stores;
    quarantined = t.quarantined;
    evictions = t.evictions;
  }
