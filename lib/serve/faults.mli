(** Fault injection for the daemon's robustness tests.

    A fault set is parsed from repeated [--fault SPEC] flags and from the
    comma-separated [ACE_FAULTS] environment variable, and threaded into
    the cache and the request handlers.  Faults simulate the failure
    modes the daemon must survive, without needing kill -9 timing luck:

    - ["cache-torn-write"]: cache entries are written truncated, directly
      at their final path (no temp file, no fsync, no rename) — the
      on-disk state a crash mid-write leaves behind;
    - ["cache-bit-flip"]: one payload byte is flipped after the checksum
      is computed — silent media corruption;
    - ["slow-request=MS"]: every compute request sleeps [MS]
      milliseconds while holding its admission slot — lets tests drive
      the overload path deterministically;
    - ["shard-raise"]: every spawned extraction shard (index > 0) raises
      mid-flight — exercises worker isolation and the parallel join;
    - ["oom-soft"]: compute requests raise [Out_of_memory] — exercises
      the internal-error path with an asynchronous-looking exception. *)

type t = {
  mutable torn_write : bool;
  mutable bit_flip : bool;
  mutable slow_ms : int;  (** 0 = off *)
  mutable shard_raise : bool;
  mutable oom_soft : bool;
}

val none : unit -> t
(** Fresh fault set with everything off. *)

val apply : t -> string -> (unit, string) result
(** Enable one fault from its spec string. *)

val of_specs : string list -> (t, string) result

val env_specs : unit -> string list
(** Specs from [ACE_FAULTS] (comma-separated; empty items ignored). *)

val to_specs : t -> string list
(** Active faults, rendered back to spec strings (for the stats reply). *)
