(** The aced request server.

    One {!t} serves many connections (socket mode spawns a thread per
    connection; [--once] mode reads stdin).  The contract is totality:
    {!handle_line} never raises and always returns exactly one
    well-formed JSON reply, whatever the input — oversized lines,
    binary garbage, half a request, a layout that trips an internal
    exception on a spawned shard domain.  The daemon's health is never
    coupled to a request's fate.

    Robustness machinery per request:

    - {b deadlines}: [deadline_ms] (or the configured default) becomes
      an {!Ace_core.Cancel} token threaded into the extraction engine
      and the flow solver; expiry raises out of the hot loop and is
      mapped to a ["deadline-exceeded"] error reply (counted by the
      [deadline_kills] counter).  The token is also polled while a
      request waits its turn for the extraction lock, so queued
      requests time out too.
    - {b backpressure}: at most [max_inflight] compute requests run at
      once; beyond that, requests are rejected immediately with an
      ["overloaded"] reply carrying [retry_after_ms] — bounded memory
      under sustained overload ([ping]/[stats] are always admitted).
    - {b isolation}: any exception — including one raised on a spawned
      shard domain and re-raised at the parallel join — yields an
      ["internal-error"] reply with a stable exception fingerprint;
      the daemon keeps serving.
    - {b persistence}: extract results are cached content-addressed in
      a {!Cache}; a warm reply's [result] field is the cached payload
      spliced verbatim, so it is byte-identical to the cold reply. *)

type config = {
  jobs : int;  (** default and maximum shards per request *)
  cache : Cache.t option;
  max_request_bytes : int;
  max_inflight : int;
  default_deadline_ms : int;  (** 0 = none *)
  retry_after_ms : int;  (** hint in overload replies *)
  faults : Faults.t;
  vdd : string;  (** default rail names for lint/flow *)
  gnd : string;
}

val config :
  ?jobs:int ->
  ?cache:Cache.t ->
  ?max_request_bytes:int ->
  ?max_inflight:int ->
  ?default_deadline_ms:int ->
  ?retry_after_ms:int ->
  ?faults:Faults.t ->
  ?vdd:string ->
  ?gnd:string ->
  unit ->
  config
(** Defaults: [jobs = 1], no cache, 8 MiB requests, [max_inflight = 4],
    no deadline, [retry_after_ms = 100], no faults, rails VDD/GND. *)

type t

val create : config -> t

val stopping : t -> bool
(** True once a [shutdown] request has been accepted. *)

val handle_line : t -> string -> string
(** One request line in, one reply line out (no trailing newline).
    Total: never raises. *)

val serve_channel : t -> in_channel -> out_channel -> unit
(** Serve until EOF or shutdown.  Lines longer than
    [max_request_bytes] are drained without buffering and answered
    with ["request-too-large"]. *)

val serve_once : t -> unit
(** [serve_channel] over stdin/stdout. *)

val serve_socket : t -> string -> unit
(** Bind a Unix-domain socket at the given path (replacing any stale
    socket file), accept in a loop, one thread per connection.
    Returns after a [shutdown] request; the socket file is removed. *)
