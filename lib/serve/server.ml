module Trace = Ace_trace.Trace
module Json = Ace_trace.Json
module Diag = Ace_diag.Diag
module Cancel = Ace_core.Cancel
module Parallel = Ace_core.Parallel
module Circuit = Ace_netlist.Circuit
module Wirelist = Ace_netlist.Wirelist

type config = {
  jobs : int;
  cache : Cache.t option;
  max_request_bytes : int;
  max_inflight : int;
  default_deadline_ms : int;
  retry_after_ms : int;
  faults : Faults.t;
  vdd : string;
  gnd : string;
}

let config ?(jobs = 1) ?cache ?(max_request_bytes = 8 * 1024 * 1024)
    ?(max_inflight = 4) ?(default_deadline_ms = 0) ?(retry_after_ms = 100)
    ?faults ?(vdd = "VDD") ?(gnd = "GND") () =
  {
    jobs = max 1 jobs;
    cache;
    max_request_bytes;
    max_inflight = max 1 max_inflight;
    default_deadline_ms;
    retry_after_ms;
    faults = (match faults with Some f -> f | None -> Faults.none ());
    vdd;
    gnd;
  }

type t = {
  config : config;
  inflight : int Atomic.t;
  served : int Atomic.t;
  rejected : int Atomic.t;
  failed : int Atomic.t;
  stop : bool Atomic.t;
  started_ns : int64;
  extract_lock : Mutex.t;
  socket_path : string option Atomic.t;
}

let create config =
  {
    config;
    inflight = Atomic.make 0;
    served = Atomic.make 0;
    rejected = Atomic.make 0;
    failed = Atomic.make 0;
    stop = Atomic.make false;
    started_ns = Trace.now_ns ();
    extract_lock = Mutex.create ();
    socket_path = Atomic.make None;
  }

let stopping t = Atomic.get t.stop

(* ------------------------------------------------------------------ *)
(* Replies                                                            *)

let fingerprint_of_exn e = Cache.fnv1a64_hex (Printexc.to_string e)

let internal_error ~id e =
  Proto.error ~id ~code:Proto.err_internal
    ~extra:[ ("fingerprint", Proto.str (fingerprint_of_exn e)) ]
    (Printexc.to_string e)

let too_large t =
  Proto.error ~id:Json.Null ~code:Proto.err_too_large
    (Printf.sprintf "request exceeds %d bytes" t.config.max_request_bytes)

let diags_json diags = Proto.arr (List.map (fun d -> Diag.to_json d) diags)

(* ------------------------------------------------------------------ *)
(* Compute path                                                       *)

(* Serialize heavy work: shards of concurrent requests would otherwise
   multiply domains.  Waiters poll their cancel token, so a queued
   request still honours its deadline. *)
let with_extract_lock t cancel f =
  let rec acquire () =
    if Mutex.try_lock t.extract_lock then ()
    else begin
      Cancel.check cancel;
      Thread.yield ();
      Unix.sleepf 0.001;
      acquire ()
    end
  in
  acquire ();
  Fun.protect ~finally:(fun () -> Mutex.unlock t.extract_lock) f

let run_extract t ~cancel ~jobs ~tile ~name design =
  let on_shard idx =
    if t.config.faults.Faults.shard_raise && idx > 0 then
      failwith (Printf.sprintf "injected shard fault (shard %d)" idx)
  in
  with_extract_lock t cancel @@ fun () ->
  Parallel.extract_with_stats ~cancel ~on_shard ~jobs ?tile ~name design

(* The cached payload: the complete per-op result object, so a warm
   reply can splice it verbatim.  Byte-identity between warm and cold
   replies is the contract the restart tests check. *)
let payload_of_circuit circuit warnings =
  Proto.obj
    [
      ("wirelist", Proto.str (Wirelist.to_string circuit));
      ("nets", Proto.int (Circuit.net_count circuit));
      ("devices", Proto.int (Array.length circuit.Circuit.devices));
      ("warnings", diags_json warnings);
    ]

let circuit_of_payload payload =
  match Json.parse payload with
  | Error _ -> None
  | Ok j -> (
      match Json.member "wirelist" j with
      | Some (Json.Str wl) -> (
          try Some (Wirelist.of_string wl) with _ -> None)
      | _ -> None)

(* The tile grid is part of the key: the wirelist is grid-invariant,
   but the cached payload also carries the warnings, whose shard framing
   ("shard i/n: ...") depends on the grid. *)
let tile_tag = function
  | None -> "-"
  | Some (c, r) -> Printf.sprintf "%dx%d" c r

let cache_key design ~name ~jobs ~tile =
  let canonical = Ace_cif.Writer.to_string (Ace_cif.Design.ast design) in
  Cache.fnv1a64_hex
    (String.concat "\x00"
       [
         string_of_int Cache.format_version;
         string_of_int (Ace_cif.Design.quantum design);
         name;
         string_of_int jobs;
         tile_tag tile;
         canonical;
       ])

(* (payload, cached?).  Cache misses — including quarantined corrupt
   entries — fall through to a recomputation that heals the cache. *)
let obtain_payload t ~cancel ~use_cache ~jobs ~tile ~name design =
  let cache = if use_cache then t.config.cache else None in
  let key = Option.map (fun _ -> cache_key design ~name ~jobs ~tile) cache in
  let hit =
    match (cache, key) with
    | Some c, Some k -> Cache.find c k
    | _ -> None
  in
  match hit with
  | Some payload -> (payload, true)
  | None ->
      let circuit, stats = run_extract t ~cancel ~jobs ~tile ~name design in
      let payload = payload_of_circuit circuit stats.Parallel.warnings in
      (match (cache, key) with
      | Some c, Some k -> Cache.store c k payload
      | _ -> ());
      (payload, false)

(* Like [obtain_payload] but materializes the circuit (lint/flow).  A
   warm payload round-trips through the wirelist reader; the reader
   failing on our own checksummed output degrades to a recompute. *)
let obtain_circuit t ~cancel ~use_cache ~jobs ~tile ~name design =
  let cache = if use_cache then t.config.cache else None in
  let key = Option.map (fun _ -> cache_key design ~name ~jobs ~tile) cache in
  let hit =
    match (cache, key) with
    | Some c, Some k -> Option.bind (Cache.find c k) circuit_of_payload
    | _ -> None
  in
  match hit with
  | Some circuit -> (circuit, true)
  | None ->
      let circuit, _ = run_extract t ~cancel ~jobs ~tile ~name design in
      (circuit, false)

let front_end cif =
  let ast, pdiags = Ace_cif.Parser.parse_string_lenient cif in
  let design, sdiags = Ace_cif.Design.of_ast_lenient ast in
  (design, pdiags @ sdiags)

let request_params t (r : Proto.request) =
  let jobs =
    match r.Proto.jobs with
    | None -> t.config.jobs
    | Some j -> max 1 (min j t.config.jobs)
  in
  let deadline_ms =
    match r.Proto.deadline_ms with
    | Some ms -> ms
    | None -> t.config.default_deadline_ms
  in
  let cancel =
    if deadline_ms > 0 then Cancel.with_deadline_ms deadline_ms
    else Cancel.never
  in
  (jobs, r.Proto.tile, cancel)

let do_extract t (r : Proto.request) cif =
  let jobs, tile, cancel = request_params t r in
  let design, diags = front_end cif in
  let payload, cached =
    obtain_payload t ~cancel ~use_cache:r.Proto.use_cache ~jobs ~tile
      ~name:r.Proto.name design
  in
  Proto.ok ~id:r.Proto.id ~op:"extract"
    [
      ("cached", Proto.bool cached);
      ("result", payload);
      ("diags", diags_json diags);
    ]

let do_lint t (r : Proto.request) cif =
  let jobs, tile, cancel = request_params t r in
  let design, diags = front_end cif in
  let circuit, cached =
    obtain_circuit t ~cancel ~use_cache:r.Proto.use_cache ~jobs ~tile
      ~name:r.Proto.name design
  in
  let vdd = Option.value r.Proto.vdd ~default:t.config.vdd in
  let gnd = Option.value r.Proto.gnd ~default:t.config.gnd in
  let findings = Ace_lint.Engine.run ~vdd ~gnd circuit in
  let finding_json f =
    let d = Ace_lint.Finding.to_diag circuit f in
    Proto.obj
      [
        ("code", Proto.str d.Diag.code);
        ("severity", Proto.str (Diag.severity_to_string d.Diag.severity));
        ("message", Proto.str d.Diag.message);
        ("fingerprint", Proto.str (Ace_lint.Finding.fingerprint circuit f));
      ]
  in
  let errors, warnings, infos = Ace_lint.Finding.summarize findings in
  Proto.ok ~id:r.Proto.id ~op:"lint"
    [
      ("cached", Proto.bool cached);
      ("findings", Proto.arr (List.map finding_json findings));
      ("errors", Proto.int errors);
      ("warnings", Proto.int warnings);
      ("infos", Proto.int infos);
      ("diags", diags_json diags);
    ]

let do_flow t (r : Proto.request) cif =
  let jobs, tile, cancel = request_params t r in
  let design, diags = front_end cif in
  let circuit, cached =
    obtain_circuit t ~cancel ~use_cache:r.Proto.use_cache ~jobs ~tile
      ~name:r.Proto.name design
  in
  let vdd_name = Option.value r.Proto.vdd ~default:t.config.vdd in
  let gnd_name = Option.value r.Proto.gnd ~default:t.config.gnd in
  match
    ( Ace_lint.Engine.find_rail circuit vdd_name,
      Ace_lint.Engine.find_rail circuit gnd_name )
  with
  | None, _ ->
      Proto.error ~id:r.Proto.id ~code:"missing-rail"
        (Printf.sprintf "no net named %s" vdd_name)
  | _, None ->
      Proto.error ~id:r.Proto.id ~code:"missing-rail"
        (Printf.sprintf "no net named %s" gnd_name)
  | Some vdd, Some gnd ->
      let v = Ace_flow.Ternary.analyze ~cancel circuit ~vdd ~gnd in
      let nets ns =
        Proto.arr
          (List.map
             (fun n -> Proto.str (Circuit.net_display_name circuit n))
             ns)
      in
      Proto.ok ~id:r.Proto.id ~op:"flow"
        [
          ("cached", Proto.bool cached);
          ("contention", nets v.Ace_flow.Ternary.contention);
          ("bridges", Proto.int (List.length v.Ace_flow.Ternary.bridges));
          ("dead", Proto.int (List.length v.Ace_flow.Ternary.dead));
          ("float", nets v.Ace_flow.Ternary.float_nets);
          ("charge_sharing", Proto.int (List.length v.Ace_flow.Ternary.share));
          ("x_nets", Proto.int (List.length v.Ace_flow.Ternary.x_nets));
          ( "converged",
            Proto.bool v.Ace_flow.Ternary.stats.Ace_flow.Solver.converged );
          ("diags", diags_json diags);
        ]

(* LVS replies are cached whole, like extract payloads, under a key that
   also covers the reference text and the rail names — anything that can
   change the verdict.  The finding diagnostics are rendered with
   Diag.to_json, the exact lines `acelvs --diag-format=json` prints, so
   clients can diff daemon replies against one-shot runs byte for byte. *)
let lvs_cache_key design ~name ~jobs ~tile ~reference ~vdd ~gnd ~hier
    ~ref_format ~max_findings =
  let canonical = Ace_cif.Writer.to_string (Ace_cif.Design.ast design) in
  Cache.fnv1a64_hex
    (String.concat "\x00"
       [
         "lvs";
         string_of_int Cache.format_version;
         string_of_int (Ace_cif.Design.quantum design);
         name;
         string_of_int jobs;
         tile_tag tile;
         vdd;
         gnd;
         string_of_bool hier;
         ref_format;
         string_of_int max_findings;
         reference;
         canonical;
       ])

let lvs_payload t ~cancel ~use_cache ~jobs ~tile ~name ~vdd ~gnd ~hier
    ~ref_format ~max_findings design reference_text =
  let loaded =
    match ref_format with
    | "verilog" ->
        Ok
          (Ace_lvs.Verilog.parse ~name:"reference" ~vdd ~gnd reference_text)
    | _ -> (
        match
          Ace_lvs.Reference.load ~name:"reference" ~gnd reference_text
        with
        | Ok x -> Ok x
        | Error d ->
            Error
              (Printf.sprintf "unreadable reference netlist: %s"
                 d.Diag.message))
  in
  match loaded with
  | Error _ as e -> e
  | Ok (reference, ref_diags) ->
      let r, hstats =
        if hier then begin
          let ref_view =
            if ref_format = "verilog" then None
            else Ace_lvs.Reference.hier_view ~name:"reference" ~gnd
                   reference_text
          in
          let layout, _ = Ace_hext.Hext.extract design in
          let hr =
            Ace_lvs.Hier.run ~cancel ~vdd ~gnd ~max_findings ~layout
              ~reference ?ref_view ()
          in
          (hr.Ace_lvs.Hier.r, Some hr)
        end
        else begin
          let circuit, _ =
            obtain_circuit t ~cancel ~use_cache ~jobs ~tile ~name design
          in
          ( Ace_lvs.Match.run ~cancel ~vdd ~gnd ~max_findings ~layout:circuit
              ~reference (),
            None )
        end
      in
      let verdict =
        match r.Ace_lvs.Match.outcome with
        | Ace_lvs.Match.Clean -> "clean"
        | Ace_lvs.Match.Mismatch -> "mismatch"
        | Ace_lvs.Match.Inconclusive -> "inconclusive"
      in
      let s = r.Ace_lvs.Match.stats in
      let findings = r.Ace_lvs.Match.findings in
      Ok
        (Proto.obj
           ([
              ("verdict", Proto.str verdict);
              ( "findings",
                diags_json (List.map Ace_lvs.Report.to_diag findings) );
              ( "fingerprints",
                Proto.arr
                  (List.map
                     (fun f -> Proto.str (Ace_lvs.Report.fingerprint f))
                     findings) );
              ("devices", Proto.int s.Ace_lvs.Match.layout_devices);
              ("ref_devices", Proto.int s.Ace_lvs.Match.ref_devices);
              ("nets", Proto.int s.Ace_lvs.Match.layout_nets);
              ("ref_nets", Proto.int s.Ace_lvs.Match.ref_nets);
              ("matched", Proto.int s.Ace_lvs.Match.matched);
              ("reductions", Proto.int s.Ace_lvs.Match.reductions);
              ("rounds", Proto.int s.Ace_lvs.Match.rounds);
            ]
           @ (match hstats with
             | Some hr ->
                 [
                   ("hier", Proto.bool true);
                   ( "cell_matches",
                     Proto.int hr.Ace_lvs.Hier.cell_matches );
                   ("cell_hits", Proto.int hr.Ace_lvs.Hier.cell_hits);
                   ("fallback", Proto.bool hr.Ace_lvs.Hier.fallback);
                 ]
             | None -> [])
           @ [ ("ref_diags", diags_json ref_diags) ]))

let do_lvs t (r : Proto.request) cif =
  match r.Proto.reference with
  | None ->
      Proto.error ~id:r.Proto.id ~code:Proto.err_bad_request
        "missing field \"ref\""
  | Some reference_text -> (
      let jobs, tile, cancel = request_params t r in
      let design, diags = front_end cif in
      let vdd = Option.value r.Proto.vdd ~default:t.config.vdd in
      let gnd = Option.value r.Proto.gnd ~default:t.config.gnd in
      let hier = r.Proto.hier in
      let ref_format = Option.value r.Proto.ref_format ~default:"spice" in
      let max_findings = Option.value r.Proto.max_findings ~default:20 in
      if not (List.mem ref_format [ "spice"; "verilog" ]) then
        Proto.error ~id:r.Proto.id ~code:Proto.err_bad_request
          "field \"ref_format\" must be \"spice\" or \"verilog\""
      else if max_findings < 0 then
        Proto.error ~id:r.Proto.id ~code:Proto.err_bad_request
          "field \"max_findings\" must be non-negative"
      else
      let cache = if r.Proto.use_cache then t.config.cache else None in
      let key =
        Option.map
          (fun _ ->
            lvs_cache_key design ~name:r.Proto.name ~jobs ~tile
              ~reference:reference_text ~vdd ~gnd ~hier ~ref_format
              ~max_findings)
          cache
      in
      let hit =
        match (cache, key) with
        | Some c, Some k -> Cache.find c k
        | _ -> None
      in
      let computed =
        match hit with
        | Some payload -> Ok (payload, true)
        | None -> (
            match
              lvs_payload t ~cancel ~use_cache:r.Proto.use_cache ~jobs ~tile
                ~name:r.Proto.name ~vdd ~gnd ~hier ~ref_format ~max_findings
                design reference_text
            with
            | Error msg -> Error msg
            | Ok payload ->
                (match (cache, key) with
                | Some c, Some k -> Cache.store c k payload
                | _ -> ());
                Ok (payload, false))
      in
      match computed with
      | Error msg ->
          Proto.error ~id:r.Proto.id ~code:Proto.err_bad_request msg
      | Ok (payload, cached) ->
          Proto.ok ~id:r.Proto.id ~op:"lvs"
            [
              ("cached", Proto.bool cached);
              ("result", payload);
              ("diags", diags_json diags);
            ])

(* ------------------------------------------------------------------ *)
(* Dispatch                                                           *)

let stats_reply t id =
  let counters =
    Proto.obj
      (List.map
         (fun (c, n) -> (Trace.Counter.slug c, Proto.int n))
         (Trace.counter_totals ()))
  in
  let cache =
    match t.config.cache with
    | None -> "null"
    | Some c ->
        let s = Cache.stats c in
        Proto.obj
          [
            ("dir", Proto.str (Cache.dir c));
            ("entries", Proto.int s.Cache.entries);
            ("bytes", Proto.int s.Cache.bytes);
            ("hits", Proto.int s.Cache.hits);
            ("misses", Proto.int s.Cache.misses);
            ("stores", Proto.int s.Cache.stores);
            ("quarantined", Proto.int s.Cache.quarantined);
            ("evictions", Proto.int s.Cache.evictions);
          ]
  in
  let uptime_ms =
    Int64.to_int (Int64.div (Int64.sub (Trace.now_ns ()) t.started_ns) 1_000_000L)
  in
  Proto.ok ~id ~op:"stats"
    [
      ("served", Proto.int (Atomic.get t.served));
      ("inflight", Proto.int (Atomic.get t.inflight));
      ("rejected", Proto.int (Atomic.get t.rejected));
      ("failed", Proto.int (Atomic.get t.failed));
      ("uptime_ms", Proto.int uptime_ms);
      ("jobs", Proto.int t.config.jobs);
      ("faults", Proto.arr (List.map Proto.str (Faults.to_specs t.config.faults)));
      ("counters", counters);
      ("cache", cache);
    ]

let gc_reply t id =
  match t.config.cache with
  | None ->
      Proto.ok ~id ~op:"cache-gc" [ ("enabled", "false") ]
  | Some c ->
      let g = Cache.gc c in
      Proto.ok ~id ~op:"cache-gc"
        [
          ("enabled", "true");
          ("removed_tmp", Proto.int g.Cache.removed_tmp);
          ("removed_quarantined", Proto.int g.Cache.removed_quarantined);
          ("evicted", Proto.int g.Cache.evicted);
          ("kept", Proto.int g.Cache.kept);
          ("bytes", Proto.int g.Cache.bytes);
        ]

(* Admission control for compute ops: beyond [max_inflight], reject
   immediately — bounded queue depth and memory under overload. *)
let with_admission t (r : Proto.request) f =
  let n = Atomic.fetch_and_add t.inflight 1 in
  if n >= t.config.max_inflight then begin
    ignore (Atomic.fetch_and_add t.inflight (-1));
    Atomic.incr t.rejected;
    Trace.incr Trace.Counter.Overloads;
    Proto.error ~id:r.Proto.id ~code:Proto.err_overloaded
      ~extra:[ ("retry_after_ms", Proto.int t.config.retry_after_ms) ]
      "server at capacity"
  end
  else
    Fun.protect
      ~finally:(fun () -> ignore (Atomic.fetch_and_add t.inflight (-1)))
      f

let compute t (r : Proto.request) f =
  with_admission t r @@ fun () ->
  (* slow-request sits inside admission on purpose: it holds an inflight
     slot, so tests can drive the overload path deterministically. *)
  if t.config.faults.Faults.slow_ms > 0 then
    Unix.sleepf (float_of_int t.config.faults.Faults.slow_ms /. 1000.0);
  if t.config.faults.Faults.oom_soft then raise Out_of_memory;
  match r.Proto.cif with
  | None ->
      Proto.error ~id:r.Proto.id ~code:Proto.err_bad_request
        "missing field \"cif\""
  | Some cif -> f t r cif

let handle_request t (r : Proto.request) =
  match r.Proto.op with
  | "ping" -> Proto.ok ~id:r.Proto.id ~op:"ping" [ ("pong", "true") ]
  | "stats" -> stats_reply t r.Proto.id
  | "cache-gc" -> gc_reply t r.Proto.id
  | "shutdown" ->
      Atomic.set t.stop true;
      Proto.ok ~id:r.Proto.id ~op:"shutdown" [ ("stopping", "true") ]
  | "extract" -> compute t r do_extract
  | "lint" -> compute t r do_lint
  | "flow" -> compute t r do_flow
  | "lvs" -> compute t r do_lvs
  | op ->
      Proto.error ~id:r.Proto.id ~code:Proto.err_bad_request
        (Printf.sprintf "unknown op %S" op)

let handle_line t line =
  try
    if String.length line > t.config.max_request_bytes then too_large t
    else begin
      match Proto.parse line with
      | Error (code, msg) ->
          Atomic.incr t.failed;
          Proto.error ~id:Json.Null ~code msg
      | Ok r -> (
          match handle_request t r with
          | reply ->
              Atomic.incr t.served;
              reply
          | exception Cancel.Cancelled reason ->
              Atomic.incr t.failed;
              if reason = Proto.err_deadline then
                Trace.incr Trace.Counter.Deadline_kills;
              Proto.error ~id:r.Proto.id ~code:reason
                "request cancelled before completion"
          | exception e ->
              Atomic.incr t.failed;
              internal_error ~id:r.Proto.id e)
    end
  with e -> (* belt and braces: handle_line is total *)
    internal_error ~id:Json.Null e

(* ------------------------------------------------------------------ *)
(* Serving                                                            *)

type line_in = Line of string | Too_long | Eof

(* Bounded line reader: a line longer than [limit] is drained to its
   newline without being buffered, so a hostile client cannot balloon
   the daemon's memory. *)
let read_line_bounded ic limit =
  let b = Buffer.create 256 in
  let rec go n =
    match input_char ic with
    | exception End_of_file ->
        if n = 0 then Eof
        else if n > limit then Too_long
        else Line (Buffer.contents b)
    | '\n' -> if n > limit then Too_long else Line (Buffer.contents b)
    | c ->
        if n < limit then Buffer.add_char b c;
        go (n + 1)
  in
  go 0

let serve_channel t ic oc =
  let rec loop () =
    if not (stopping t) then
      match read_line_bounded ic t.config.max_request_bytes with
      | Eof -> ()
      | Too_long ->
          output_string oc (too_large t);
          output_char oc '\n';
          flush oc;
          loop ()
      | Line l ->
          output_string oc (handle_line t l);
          output_char oc '\n';
          flush oc;
          loop ()
  in
  try loop () with Sys_error _ | End_of_file -> ()

let serve_once t = serve_channel t stdin stdout

(* Wake a blocked [accept] after shutdown by connecting to ourselves
   (closing the listening fd does not reliably interrupt accept). *)
let wake_listener t =
  match Atomic.get t.socket_path with
  | None -> ()
  | Some path -> (
      match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
      | exception Unix.Unix_error _ -> ()
      | s ->
          (try Unix.connect s (Unix.ADDR_UNIX path)
           with Unix.Unix_error _ -> ());
          (try Unix.close s with Unix.Unix_error _ -> ()))

let handle_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (try serve_channel t ic oc with _ -> ());
  (try close_out_noerr oc with _ -> ());
  (try close_in_noerr ic with _ -> ());
  if stopping t then wake_listener t

let serve_socket t path =
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ -> ());
  let sock = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 64;
  Atomic.set t.socket_path (Some path);
  let rec accept_loop () =
    if not (stopping t) then
      match Unix.accept ~cloexec:true sock with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
          ignore (Thread.create (fun () -> handle_connection t fd) ());
          accept_loop ()
  in
  accept_loop ();
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
