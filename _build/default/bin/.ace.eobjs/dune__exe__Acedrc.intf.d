bin/acedrc.mli:
