bin/hext_cli.mli:
