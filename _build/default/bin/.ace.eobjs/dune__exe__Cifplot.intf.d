bin/cifplot.mli:
