bin/wlcmp.ml: Ace_netlist Arg Cmd Cmdliner Printf Term
