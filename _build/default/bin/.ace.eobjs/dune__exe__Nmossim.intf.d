bin/nmossim.mli:
