bin/acecheck.mli:
