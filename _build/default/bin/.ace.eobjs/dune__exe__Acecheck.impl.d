bin/acecheck.ml: Ace_analysis Ace_core Ace_netlist Arg Cmd Cmdliner Filename Format List Term
