bin/ace.mli:
