bin/acedrc.ml: Ace_cif Ace_drc Arg Cmd Cmdliner Format List Printf Term
