bin/wlcmp.mli:
