bin/cifplot.ml: Ace_cif Ace_plot Arg Cmd Cmdliner Printf Term
