bin/chipgen.mli:
