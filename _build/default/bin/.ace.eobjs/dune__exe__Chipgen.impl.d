bin/chipgen.ml: Ace_cif Ace_workloads Arg Cmd Cmdliner List Printf Term
