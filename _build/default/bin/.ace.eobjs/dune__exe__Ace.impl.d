bin/ace.ml: Ace_cif Ace_core Ace_netlist Arg Cmd Cmdliner Filename Format In_channel List Printf Term Unix
