bin/nmossim.ml: Ace_analysis Ace_core Ace_netlist Arg Array Cmd Cmdliner Fun List Printf String Term
