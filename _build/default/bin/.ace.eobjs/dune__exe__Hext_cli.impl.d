bin/hext_cli.ml: Ace_cif Ace_hext Ace_netlist Arg Cmd Cmdliner In_channel Printf Term Unix
