(* nmossim — switch-level simulation of an extracted layout. *)

let parse_assignment s =
  match String.index_opt s '=' with
  | Some i ->
      let name = String.sub s 0 i in
      let v = String.sub s (i + 1) (String.length s - i - 1) in
      let level =
        match v with
        | "0" -> Ace_analysis.Sim.Low
        | "1" -> Ace_analysis.Sim.High
        | "x" | "X" -> Ace_analysis.Sim.Unknown
        | _ -> failwith (Printf.sprintf "bad level %S (use 0, 1 or X)" v)
      in
      (name, level)
  | None -> failwith (Printf.sprintf "bad assignment %S (use NET=0|1|X)" s)

let run input sets watches vdd gnd =
  let ic = open_in_bin input in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let circuit = Ace_core.Extractor.extract_cif_string ~name:input text in
  let sim =
    match Ace_analysis.Sim.create circuit ~vdd ~gnd with
    | s -> s
    | exception Not_found ->
        Printf.eprintf "error: nets %s/%s not found (label your rails)\n" vdd gnd;
        exit 2
  in
  let inputs = List.map parse_assignment sets in
  let outputs =
    if watches = [] then
      (* default: every named net *)
      List.filter_map
        (fun i ->
          match circuit.Ace_netlist.Circuit.nets.(i).Ace_netlist.Circuit.names with
          | name :: _ -> Some name
          | [] -> None)
        (List.init (Ace_netlist.Circuit.net_count circuit) Fun.id)
    else watches
  in
  match Ace_analysis.Sim.eval sim ~inputs ~outputs with
  | Some values ->
      List.iter
        (fun (name, v) ->
          Printf.printf "%s = %s\n" name (Ace_analysis.Sim.level_to_string v))
        values
  | None ->
      Printf.printf "circuit did not settle (oscillation)\n";
      exit 1

open Cmdliner

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"CIF")
let sets = Arg.(value & opt_all string [] & info [ "set" ] ~docv:"NET=V" ~doc:"Force an input net (repeatable).")
let watches = Arg.(value & opt_all string [] & info [ "watch" ] ~docv:"NET" ~doc:"Nets to report (default: all named).")
let vdd = Arg.(value & opt string "VDD" & info [ "vdd" ] ~docv:"NAME")
let gnd = Arg.(value & opt string "GND" & info [ "gnd" ] ~docv:"NAME")

let cmd =
  Cmd.v
    (Cmd.info "nmossim" ~doc:"Switch-level simulation of an extracted NMOS layout")
    Term.(const run $ input $ sets $ watches $ vdd $ gnd)

let () = exit (Cmd.eval cmd)
