(* wlcmp — wirelist equivalence comparison. *)

let read path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let run a b with_sizes with_names =
  let load path =
    match Ace_netlist.Wirelist.of_string (read path) with
    | c -> c
    | exception Ace_netlist.Wirelist.Error m ->
        Printf.eprintf "%s: %s\n" path m;
        exit 2
  in
  let ca = load a and cb = load b in
  match Ace_netlist.Compare.compare ~with_sizes ~with_names ca cb with
  | Ace_netlist.Compare.Equivalent ->
      Printf.printf "%s and %s are equivalent (%d devices, %d nets)\n" a b
        (Ace_netlist.Circuit.device_count ca)
        (Ace_netlist.Circuit.net_count ca)
  | Ace_netlist.Compare.Distinct why ->
      Printf.printf "DISTINCT: %s\n" why;
      exit 1
  | Ace_netlist.Compare.Inconclusive why ->
      Printf.printf "INCONCLUSIVE: %s\n" why;
      exit 3

open Cmdliner

let a = Arg.(required & pos 0 (some file) None & info [] ~docv:"A")
let b = Arg.(required & pos 1 (some file) None & info [] ~docv:"B")

let with_sizes =
  Arg.(value & flag & info [ "sizes" ] ~doc:"Require matching transistor L/W.")

let with_names =
  Arg.(value & flag & info [ "names" ] ~doc:"Require matching net names.")

let cmd =
  Cmd.v
    (Cmd.info "wlcmp" ~doc:"Compare two wirelists for circuit equivalence")
    Term.(const run $ a $ b $ with_sizes $ with_names)

let () = exit (Cmd.eval cmd)
