(* acecheck — static electrical checks on a layout or wirelist. *)

let read path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let load path =
  let text = read path in
  if Filename.check_suffix path ".cif" then
    Ace_core.Extractor.extract_cif_string ~name:(Filename.basename path) text
  else
    match Ace_netlist.Wirelist.of_string text with
    | c -> c
    | exception Ace_netlist.Wirelist.Error _ ->
        (* fall back to CIF for suffix-less files *)
        Ace_core.Extractor.extract_cif_string ~name:(Filename.basename path) text

let run input vdd gnd verbose timing =
  let circuit = load input in
  let findings = Ace_analysis.Static_check.check ~vdd ~gnd circuit in
  let errors, warnings, infos = Ace_analysis.Static_check.summarize findings in
  List.iter
    (fun (f : Ace_analysis.Static_check.finding) ->
      if verbose || f.severity <> Ace_analysis.Static_check.Info then
        Format.printf "%a@." (Ace_analysis.Static_check.pp_finding circuit) f)
    findings;
  Format.printf "%s: %d devices, %d nets — %d errors, %d warnings, %d infos@."
    input
    (Ace_netlist.Circuit.device_count circuit)
    (Ace_netlist.Circuit.net_count circuit)
    errors warnings infos;
  if timing then begin
    match Ace_analysis.Sta.analyze ~vdd ~gnd circuit with
    | Some r -> Format.printf "@.timing: %a" (Ace_analysis.Sta.pp_result circuit) r
    | None -> Format.printf "@.timing: no gates recognized@."
  end;
  if errors > 0 then exit 1

open Cmdliner

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"A .cif layout or a wirelist.")
let vdd = Arg.(value & opt string "VDD" & info [ "vdd" ] ~docv:"NAME")
let gnd = Arg.(value & opt string "GND" & info [ "gnd" ] ~docv:"NAME")
let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Also print informational findings.")
let timing = Arg.(value & flag & info [ "timing" ] ~doc:"Run static timing analysis over the recognized gates.")

let cmd =
  Cmd.v
    (Cmd.info "acecheck" ~doc:"Static checker: ratio checks, malformed transistors, stuck signals")
    Term.(const run $ input $ vdd $ gnd $ verbose $ timing)

let () = exit (Cmd.eval cmd)
