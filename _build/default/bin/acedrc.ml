(* acedrc — scanline design-rule checking of a CIF layout. *)

let run input lambda =
  let ic = open_in_bin input in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Ace_cif.Parser.parse_string text with
  | exception Ace_cif.Parser.Error { position; message } ->
      prerr_endline
        (Ace_cif.Parser.describe_error ~source:text ~position ~message);
      exit 2
  | ast -> (
      match Ace_cif.Design.of_ast ast with
      | exception Ace_cif.Design.Semantic_error m ->
          Printf.eprintf "semantic error: %s\n" m;
          exit 2
      | design ->
          let rules = Ace_drc.Rules.mead_conway ~lambda () in
          let violations = Ace_drc.Checker.check ~rules design in
          List.iter
            (fun v -> Format.printf "%a@." Ace_drc.Checker.pp_violation v)
            violations;
          Printf.printf "%s: %d design-rule violations\n" input
            (List.length violations);
          if violations <> [] then exit 1)

open Cmdliner

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"CIF")

let lambda =
  Arg.(value & opt int 250 & info [ "lambda" ] ~docv:"CU"
         ~doc:"λ in centimicrons (Mead–Conway: 250).")

let cmd =
  Cmd.v
    (Cmd.info "acedrc"
       ~doc:"Mead-Conway design-rule checker (widths, spacings, contacts, gate overhang)")
    Term.(const run $ input $ lambda)

let () = exit (Cmd.eval cmd)
