(* cifplot — plot a CIF layout as SVG or ASCII (a homage to the Berkeley
   tool of ACE Table 5-2, which was plotter and extractor in one). *)

let run input output ascii grid scale =
  let ic = open_in_bin input in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Ace_cif.Parser.parse_string text with
  | exception Ace_cif.Parser.Error { position; message } ->
      prerr_endline
        (Ace_cif.Parser.describe_error ~source:text ~position ~message);
      exit 2
  | ast -> (
      match Ace_cif.Design.of_ast ast with
      | exception Ace_cif.Design.Semantic_error m ->
          Printf.eprintf "semantic error: %s\n" m;
          exit 2
      | design ->
          if ascii then
            let rows = Ace_plot.Ascii.render_design ~grid design in
            match output with
            | None -> print_string (Ace_plot.Ascii.to_string rows)
            | Some path ->
                Ace_plot.Svg.to_file path (Ace_plot.Ascii.to_string rows)
          else
            let svg = Ace_plot.Svg.render ~scale design in
            (match output with
            | None -> print_string svg
            | Some path -> Ace_plot.Svg.to_file path svg))

open Cmdliner

let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"CIF")
let output = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
let ascii = Arg.(value & flag & info [ "ascii" ] ~doc:"Character plot instead of SVG.")
let grid = Arg.(value & opt int 250 & info [ "grid" ] ~docv:"CU" ~doc:"Centimicrons per character (ASCII mode).")
let scale = Arg.(value & opt float 4.0 & info [ "px-per-lambda" ] ~docv:"PX" ~doc:"Pixels per λ (SVG mode).")

let cmd =
  Cmd.v
    (Cmd.info "cifplot" ~doc:"Plot a CIF layout (SVG or ASCII)")
    Term.(const run $ input $ output $ ascii $ grid $ scale)

let () = exit (Cmd.eval cmd)
