lib/analysis/parasitics.mli: Ace_netlist Ace_tech Circuit Layer Nmos
