lib/analysis/sta.mli: Ace_netlist Ace_tech Circuit Format Gates
