lib/analysis/sta.ml: Ace_netlist Ace_tech Array Circuit Format Gates Hashtbl List Nmos Parasitics
