lib/analysis/sim.ml: Ace_netlist Ace_tech Array Circuit Hashtbl List Nmos
