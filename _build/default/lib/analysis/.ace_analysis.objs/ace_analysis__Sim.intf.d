lib/analysis/sim.mli: Ace_netlist Circuit
