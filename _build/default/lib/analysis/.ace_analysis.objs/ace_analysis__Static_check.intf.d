lib/analysis/static_check.mli: Ace_netlist Circuit Format
