lib/analysis/static_check.ml: Ace_netlist Ace_tech Array Circuit Format Hashtbl List Nmos Queue
