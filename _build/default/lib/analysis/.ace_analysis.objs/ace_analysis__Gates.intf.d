lib/analysis/gates.mli: Ace_netlist Circuit Format
