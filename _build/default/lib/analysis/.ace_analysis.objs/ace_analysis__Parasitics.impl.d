lib/analysis/parasitics.ml: Ace_geom Ace_netlist Ace_tech Array Box Circuit Hashtbl Layer List Nmos
