lib/analysis/gates.ml: Ace_netlist Ace_tech Array Circuit Format Hashtbl Int List Nmos String
