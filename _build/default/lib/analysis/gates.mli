open Ace_netlist

(** Gate-level abstraction of extracted NMOS circuits.

    The papers' wirelist consumers include functional verification tools
    (Ackland & Weste's interactive environment is cited); the first step
    there is recognizing logic gates in the transistor network.  This
    module finds the standard static NMOS gate patterns: a depletion load
    (gate tied to the output) plus an enhancement pull-down network that is
    a single device (inverter), a series chain (NAND) or a parallel bank
    (NOR). *)

type gate =
  | Inverter of { input : int; output : int }
  | Nand of { inputs : int list; output : int }  (** inputs top-down *)
  | Nor of { inputs : int list; output : int }

type recognition = {
  gates : gate list;
  matched_devices : int;  (** devices explained by the gates *)
  total_devices : int;
}

val gate_output : gate -> int

val pp_gate : Circuit.t -> Format.formatter -> gate -> unit

(** [recognize ?vdd ?gnd circuit] — rails by name (defaults VDD/GND).
    Devices in irregular structures (pass transistors, complex
    pull-downs) are simply left unmatched. *)
val recognize : ?vdd:string -> ?gnd:string -> Circuit.t -> recognition
