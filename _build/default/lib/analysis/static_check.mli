open Ace_netlist

(** Static electrical checks on extracted wirelists.

    ACE §1 names the downstream tool: "a static checker performs ratio
    checks, detects malformed transistors, and checks for signals that are
    stuck at logical 0 or 1".  This is that checker, operating on the
    extractor's output. *)

type severity = Error | Warning | Info

type finding = {
  severity : severity;
  code : string;  (** stable identifier, e.g. "ratio", "floating-gate" *)
  message : string;
  device : int option;  (** index into the circuit's device array *)
  net : int option;
}

(** [check circuit] runs all checks.  Power nets are located by name
    ([vdd] / [gnd], defaults "VDD" / "GND"); rail-dependent checks are
    skipped with an [Info] finding when a rail is missing.

    Checks performed:
    - [power-short]: VDD and GND on the same net;
    - [malformed]: source = drain = gate (floating channel), or a
      depletion device with no connection to anything driven;
    - [self-gate]: enhancement device whose gate is its own source/drain;
    - [ratio]: enhancement pull-down against a depletion load weaker than
      the Mead–Conway 4:1 requirement;
    - [undriven]: net with gate connections but no channel path to a rail
      (stuck at X);
    - [stuck]: net whose only channel paths come from one rail (stuck at
      0 or 1) while it gates other devices;
    - [floating-gate]: gate net with no drivers and no name;
    - [isolated]: unnamed net touching no devices. *)
val check : ?vdd:string -> ?gnd:string -> Circuit.t -> finding list

val severity_to_string : severity -> string

val pp_finding : Circuit.t -> Format.formatter -> finding -> unit

(** Counts by severity: (errors, warnings, infos). *)
val summarize : finding list -> int * int * int
