open Ace_tech
open Ace_netlist

type severity = Error | Warning | Info

type finding = {
  severity : severity;
  code : string;
  message : string;
  device : int option;
  net : int option;
}

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let summarize findings =
  List.fold_left
    (fun (e, w, i) f ->
      match f.severity with
      | Error -> (e + 1, w, i)
      | Warning -> (e, w + 1, i)
      | Info -> (e, w, i + 1))
    (0, 0, 0) findings

let pp_finding circuit ppf f =
  Format.fprintf ppf "%s[%s]: %s" (severity_to_string f.severity) f.code
    f.message;
  (match f.device with
  | Some d -> Format.fprintf ppf " (device D%d)" d
  | None -> ());
  match f.net with
  | Some n -> Format.fprintf ppf " (net %s)" (Circuit.net_display_name circuit n)
  | None -> ()

(* Channel-graph reachability from a seed net: nets reachable through
   source/drain edges (gate terminals do not conduct). *)
let reachable circuit seeds =
  let n = Circuit.net_count circuit in
  let mark = Array.make n false in
  let queue = Queue.create () in
  List.iter
    (fun s ->
      if s >= 0 && s < n && not mark.(s) then begin
        mark.(s) <- true;
        Queue.add s queue
      end)
    seeds;
  (* adjacency: net -> nets across a channel *)
  let adj = Array.make n [] in
  Array.iter
    (fun (d : Circuit.device) ->
      adj.(d.source) <- d.drain :: adj.(d.source);
      adj.(d.drain) <- d.source :: adj.(d.drain))
    circuit.Circuit.devices;
  while not (Queue.is_empty queue) do
    let x = Queue.pop queue in
    List.iter
      (fun y ->
        if not mark.(y) then begin
          mark.(y) <- true;
          Queue.add y queue
        end)
      adj.(x)
  done;
  mark

let check ?(vdd = "VDD") ?(gnd = "GND") (circuit : Circuit.t) =
  let findings = ref [] in
  let add severity code ?device ?net fmt =
    Format.kasprintf
      (fun message ->
        findings := { severity; code; message; device; net } :: !findings)
      fmt
  in
  let find_rail name =
    match Circuit.find_net circuit name with
    | n -> Some n
    | exception Not_found -> None
  in
  let vdd_net = find_rail vdd and gnd_net = find_rail gnd in
  (match (vdd_net, gnd_net) with
  | Some v, Some g when v = g ->
      add Error "power-short" ~net:v "%s and %s are the same net" vdd gnd
  | Some _, Some _ -> ()
  | None, _ ->
      add Info "no-rail" "no net named %s: rail-dependent checks skipped" vdd
  | _, None ->
      add Info "no-rail" "no net named %s: rail-dependent checks skipped" gnd);
  (* per-device structural checks *)
  Array.iteri
    (fun i (d : Circuit.device) ->
      if d.gate = d.source && d.gate = d.drain then
        add Error "malformed" ~device:i
          "floating channel: gate, source and drain on one net"
      else
        match d.dtype with
        | Nmos.Enhancement ->
            if d.gate = d.source || d.gate = d.drain then
              add Warning "self-gate" ~device:i
                "enhancement device gated by its own source/drain"
        | Nmos.Depletion -> ())
    circuit.Circuit.devices;
  (* ratio check: depletion load from VDD to node N (gate tied to N),
     enhancement pull-down from N to GND *)
  (match (vdd_net, gnd_net) with
  | Some v, Some g ->
      let loads = Hashtbl.create 16 in
      Array.iteri
        (fun i (d : Circuit.device) ->
          match d.dtype with
          | Nmos.Depletion ->
              let node =
                if d.source = v && d.drain <> v then Some d.drain
                else if d.drain = v && d.source <> v then Some d.source
                else None
              in
              (match node with
              | Some n when d.gate = n -> Hashtbl.replace loads n (i, d)
              | Some _ | None -> ())
          | Nmos.Enhancement -> ())
        circuit.Circuit.devices;
      Array.iteri
        (fun i (d : Circuit.device) ->
          match d.dtype with
          | Nmos.Enhancement ->
              let node =
                if d.source = g && d.drain <> g then Some d.drain
                else if d.drain = g && d.source <> g then Some d.source
                else None
              in
              (match node with
              | Some n -> (
                  match Hashtbl.find_opt loads n with
                  | Some (_, (load : Circuit.device)) ->
                      let k =
                        float_of_int load.length /. float_of_int load.width
                        /. (float_of_int d.length /. float_of_int d.width)
                      in
                      if k < Nmos.min_inverter_ratio -. 1e-9 then
                        add Warning "ratio" ~device:i ~net:n
                          "pull-up/pull-down ratio %.2f below %.1f" k
                          Nmos.min_inverter_ratio
                  | None -> ())
              | None -> ())
          | Nmos.Depletion -> ())
        circuit.Circuit.devices
  | _ -> ());
  (* drivability *)
  let n = Circuit.net_count circuit in
  let gates = Array.make n false in
  let channels = Array.make n false in
  Array.iter
    (fun (d : Circuit.device) ->
      gates.(d.gate) <- true;
      channels.(d.source) <- true;
      channels.(d.drain) <- true)
    circuit.Circuit.devices;
  (match (vdd_net, gnd_net) with
  | Some v, Some g ->
      let from_vdd = reachable circuit [ v ] in
      let from_gnd = reachable circuit [ g ] in
      for net = 0 to n - 1 do
        if gates.(net) && net <> v && net <> g then
          if not (from_vdd.(net) || from_gnd.(net)) then begin
            if channels.(net) || circuit.Circuit.nets.(net).names = [] then
              add Warning "undriven" ~net
                "gates devices but has no channel path to either rail"
          end
          else if from_vdd.(net) && not from_gnd.(net) then
            add Warning "stuck" ~net "can only be pulled high (stuck at 1)"
          else if from_gnd.(net) && not from_vdd.(net) && channels.(net) then
            add Warning "stuck" ~net "can only be pulled low (stuck at 0)"
      done
  | _ -> ());
  (* floating gates: gate nets with no channel connection and no name *)
  for net = 0 to n - 1 do
    if
      gates.(net) && (not channels.(net))
      && circuit.Circuit.nets.(net).names = []
    then add Warning "floating-gate" ~net "gate net has no driver and no name"
  done;
  (* isolated nets *)
  for net = 0 to n - 1 do
    if
      (not gates.(net)) && (not channels.(net))
      && circuit.Circuit.nets.(net).names = []
    then add Info "isolated" ~net "unnamed net touches no devices"
  done;
  List.rev !findings
