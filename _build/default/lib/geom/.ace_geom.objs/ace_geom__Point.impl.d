lib/geom/point.ml: Format Int
