lib/geom/box.ml: Format Int List Point Printf
