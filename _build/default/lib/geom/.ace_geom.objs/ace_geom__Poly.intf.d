lib/geom/poly.mli: Box Point
