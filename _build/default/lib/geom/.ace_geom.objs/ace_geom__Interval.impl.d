lib/geom/interval.ml: Format Int List
