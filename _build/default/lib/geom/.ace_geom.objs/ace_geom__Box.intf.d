lib/geom/box.mli: Format Point
