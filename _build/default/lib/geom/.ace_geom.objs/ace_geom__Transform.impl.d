lib/geom/transform.ml: Box Format Point Printf
