lib/geom/poly.ml: Box Float Int Interval List Point
