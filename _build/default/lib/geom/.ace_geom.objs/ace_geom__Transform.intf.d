lib/geom/transform.mli: Box Format Point
