(** One-dimensional interval sets.

    An interval set is a canonical list of half-open intervals [\[lo, hi)],
    sorted by [lo], pairwise disjoint and non-abutting.  These are the
    per-layer cross-sections the scanline back-end manipulates: within one
    horizontal strip the mask state of a layer is exactly such a set.

    All operations are linear in the number of intervals. *)

type span = { lo : int; hi : int }

type t = span list

(** Canonical empty set. *)
val empty : t

val is_empty : t -> bool

(** [of_spans l] normalizes an arbitrary list of (lo, hi) pairs: drops
    empty spans, sorts, and merges overlapping or abutting ones. *)
val of_spans : (int * int) list -> t

val to_spans : t -> (int * int) list

(** Number of intervals. *)
val cardinal : t -> int

(** Sum of interval lengths. *)
val total_length : t -> int

val mem : t -> int -> bool

(** [union a b], [inter a b], [diff a b] are set operations producing
    canonical results. *)
val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val equal : t -> t -> bool

(** [overlap_length a b] = total length of [inter a b] without building it. *)
val overlap_length : t -> t -> int

(** [overlapping_pairs a b] enumerates the index pairs (i, j) such that the
    i-th interval of [a] strictly overlaps the j-th interval of [b], in
    order.  Used to union nets across a strip boundary. *)
val overlapping_pairs : t -> t -> (int * int) list

(** [spans_overlap x y] holds when the two spans share positive length. *)
val spans_overlap : span -> span -> bool

(** [span_overlap_length x y] is the (non-negative) shared length. *)
val span_overlap_length : span -> span -> int

val pp : Format.formatter -> t -> unit
