type t = { l : int; b : int; r : int; t : int }

let make ~l ~b ~r ~t =
  if l >= r || b >= t then
    invalid_arg
      (Printf.sprintf "Box.make: degenerate box l=%d b=%d r=%d t=%d" l b r t);
  { l; b; r; t }

let of_corners (p : Point.t) (q : Point.t) =
  make ~l:(min p.x q.x) ~b:(min p.y q.y) ~r:(max p.x q.x) ~t:(max p.y q.y)

let of_center_size ~cx ~cy ~w ~h =
  if w <= 0 || h <= 0 then invalid_arg "Box.of_center_size: non-positive size";
  (* CIF boxes have centimicron resolution; round corners outward for odd
     sizes so the box never collapses. *)
  let l = cx - (w / 2) and b = cy - (h / 2) in
  make ~l ~b ~r:(l + w) ~t:(b + h)

let width bx = bx.r - bx.l
let height bx = bx.t - bx.b
let area bx = width bx * height bx
let center bx = Point.make ((bx.l + bx.r) / 2) ((bx.b + bx.t) / 2)
let min_corner bx = Point.make bx.l bx.b
let equal a b = a.l = b.l && a.b = b.b && a.r = b.r && a.t = b.t

let compare a b =
  let c = Int.compare a.b b.b in
  if c <> 0 then c
  else
    let c = Int.compare a.l b.l in
    if c <> 0 then c
    else
      let c = Int.compare a.t b.t in
      if c <> 0 then c else Int.compare a.r b.r

let contains_point bx (p : Point.t) =
  bx.l <= p.x && p.x < bx.r && bx.b <= p.y && p.y < bx.t

let overlaps a b = a.l < b.r && b.l < a.r && a.b < b.t && b.b < a.t

let touches a b =
  (* Positive-area overlap or positive-length shared edge; corner-only
     contact does not count (it carries no electrical connection). *)
  (a.l <= b.r && b.l <= a.r && a.b < b.t && b.b < a.t)
  || (a.l < b.r && b.l < a.r && a.b <= b.t && b.b <= a.t)

let intersection a b =
  let l = max a.l b.l
  and r = min a.r b.r
  and b' = max a.b b.b
  and t = min a.t b.t in
  if l < r && b' < t then Some { l; b = b'; r; t } else None

let hull a b =
  { l = min a.l b.l; b = min a.b b.b; r = max a.r b.r; t = max a.t b.t }

let hull_list = function
  | [] -> None
  | bx :: rest -> Some (List.fold_left hull bx rest)

let translate bx ~dx ~dy =
  { l = bx.l + dx; b = bx.b + dy; r = bx.r + dx; t = bx.t + dy }

let clip bx ~window = intersection bx window

let pp ppf bx =
  Format.fprintf ppf "[%d,%d)x[%d,%d)" bx.l bx.r bx.b bx.t
