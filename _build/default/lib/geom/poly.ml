type polygon = Point.t list

let edges poly =
  match poly with
  | [] | [ _ ] -> []
  | first :: _ ->
      let rec go = function
        | [] -> []
        | [ last ] -> [ (last, first) ]
        | a :: (b :: _ as rest) -> (a, b) :: go rest
      in
      go poly

let is_manhattan poly =
  List.for_all
    (fun ((a : Point.t), (b : Point.t)) -> a.x = b.x || a.y = b.y)
    (edges poly)

let double_area poly =
  List.fold_left
    (fun acc ((a : Point.t), (b : Point.t)) -> acc + ((a.x * b.y) - (b.x * a.y)))
    0 (edges poly)

(* Scanline fill: for a horizontal band [y0, y1), collect the x-extent the
   polygon covers, sampled on the band midline (exact for manhattan
   polygons whose band boundaries are vertex y's).  Even-odd rule. *)
let band_intervals poly_edges ~y0 ~y1 =
  let ym2 = y0 + y1 in
  (* work with doubled y to keep the midline integral *)
  let crossings =
    List.filter_map
      (fun ((a : Point.t), (b : Point.t)) ->
        if a.y = b.y then None (* horizontal edge: never crosses midline *)
        else
          let p, q = if a.y <= b.y then (a, b) else (b, a) in
          let py2 = 2 * p.y and qy2 = 2 * q.y in
          if py2 <= ym2 && ym2 < qy2 then
            if p.x = q.x then Some p.x
            else
              (* x where the edge meets the midline, rounded to nearest *)
              let num = (p.x * (qy2 - ym2)) + (q.x * (ym2 - py2)) in
              let den = qy2 - py2 in
              Some (int_of_float (Float.round (float_of_int num /. float_of_int den)))
          else None)
      poly_edges
  in
  let xs = List.sort Int.compare crossings in
  let rec pair = function
    | x0 :: x1 :: rest -> (x0, x1) :: pair rest
    | _ -> []
  in
  Interval.of_spans (pair xs)

let band_boundaries poly ~quantum =
  let ys = List.sort_uniq Int.compare (List.map (fun (p : Point.t) -> p.y) poly) in
  match ys with
  | [] | [ _ ] -> []
  | y_min :: _ ->
      let y_max = List.fold_left max y_min ys in
      if is_manhattan poly then ys
      else
        (* subdivide at quantum steps, keeping vertex y's *)
        let q = max 1 quantum in
        let rec fill y acc = if y >= y_max then acc else fill (y + q) (y :: acc) in
        List.sort_uniq Int.compare (ys @ fill y_min [])

let coalesce_columns boxes =
  (* Merge vertically stacked boxes with identical x-extent to cut the box
     count of tall decompositions. *)
  let sorted =
    List.sort
      (fun (a : Box.t) (b : Box.t) ->
        let c = Int.compare a.l b.l in
        if c <> 0 then c
        else
          let c = Int.compare a.r b.r in
          if c <> 0 then c else Int.compare a.b b.b)
      boxes
  in
  let rec go acc = function
    | [] -> List.rev acc
    | (bx : Box.t) :: rest -> (
        match acc with
        | (prev : Box.t) :: acc'
          when prev.l = bx.l && prev.r = bx.r && prev.t = bx.b ->
            go (Box.make ~l:prev.l ~b:prev.b ~r:prev.r ~t:bx.t :: acc') rest
        | _ -> go (bx :: acc) rest)
  in
  go [] sorted

let boxes_of_polygon ~quantum poly =
  let poly =
    (* drop consecutive duplicate vertices *)
    let rec dedup = function
      | a :: b :: rest when Point.equal a b -> dedup (b :: rest)
      | a :: rest -> a :: dedup rest
      | [] -> []
    in
    match dedup poly with
    | a :: rest when (match List.rev rest with
                      | last :: _ -> Point.equal a last
                      | [] -> false) ->
        a :: List.filteri (fun i _ -> i < List.length rest - 1) rest
    | p -> p
  in
  if List.length poly < 3 || double_area poly = 0 then []
  else
    let es = edges poly in
    let bands = band_boundaries poly ~quantum in
    let rec strips = function
      | y0 :: (y1 :: _ as rest) ->
          let spans = band_intervals es ~y0 ~y1 in
          let boxes =
            List.map
              (fun (s : Interval.span) -> Box.make ~l:s.lo ~b:y0 ~r:s.hi ~t:y1)
              spans
          in
          boxes @ strips rest
      | _ -> []
    in
    coalesce_columns (strips bands)

let segment_boxes ~quantum ~width (a : Point.t) (b : Point.t) =
  let h = width / 2 in
  let h' = width - h in
  if a.x = b.x then
    let lo = min a.y b.y and hi = max a.y b.y in
    [ Box.make ~l:(a.x - h) ~b:(lo - h) ~r:(a.x + h') ~t:(hi + h') ]
  else if a.y = b.y then
    let lo = min a.x b.x and hi = max a.x b.x in
    [ Box.make ~l:(lo - h) ~b:(a.y - h) ~r:(hi + h') ~t:(a.y + h') ]
  else
    (* sloped segment: build the rectangle polygon around the centerline and
       decompose it; end caps handled by extending along the direction *)
    let dx = float_of_int (b.x - a.x) and dy = float_of_int (b.y - a.y) in
    let len = sqrt ((dx *. dx) +. (dy *. dy)) in
    let ux = dx /. len and uy = dy /. len in
    let hw = float_of_int width /. 2.0 in
    let px = -.uy *. hw and py = ux *. hw in
    let ex = ux *. hw and ey = uy *. hw in
    let fx = float_of_int and r = int_of_float in
    let corner sx sy ox oy =
      Point.make (r (fx a.x +. (sx *. ex) +. (ox *. px)))
        (r (fx a.y +. (sy *. ey) +. (oy *. py)))
    in
    let corner_b sx sy ox oy =
      Point.make (r (fx b.x +. (sx *. ex) +. (ox *. px)))
        (r (fx b.y +. (sy *. ey) +. (oy *. py)))
    in
    let quad =
      [ corner (-1.) (-1.) 1. 1.; corner (-1.) (-1.) (-1.) (-1.);
        corner_b 1. 1. (-1.) (-1.); corner_b 1. 1. 1. 1. ]
    in
    boxes_of_polygon ~quantum quad

let boxes_of_wire ~quantum ~width path =
  if width <= 0 then invalid_arg "Poly.boxes_of_wire: non-positive width";
  match path with
  | [] -> []
  | [ (p : Point.t) ] ->
      let h = width / 2 in
      let h' = width - h in
      [ Box.make ~l:(p.x - h) ~b:(p.y - h) ~r:(p.x + h') ~t:(p.y + h') ]
  | _ ->
      let rec segs = function
        | a :: (b :: _ as rest) ->
            segment_boxes ~quantum ~width a b @ segs rest
        | _ -> []
      in
      segs path

let boxes_of_round_flash ~quantum ~diameter ~center:(c : Point.t) =
  if diameter <= 0 then invalid_arg "Poly.boxes_of_round_flash";
  let rad = max 1 (diameter / 2) in
  (* never let the strip height reach the radius, or small flashes would
     vanish entirely into the inscribed-row approximation *)
  let q = max 1 (min quantum (max 1 (rad / 2))) in
  let rec rows y acc =
    if y >= rad then acc
    else
      let y1 = min rad (y + q) in
      (* inscribed half-width at the row farther from the center *)
      let ym = max (abs y) (abs y1) in
      let hw = int_of_float (sqrt (float_of_int ((rad * rad) - (ym * ym)))) in
      let acc =
        if hw > 0 then
          Box.make ~l:(c.x - hw) ~b:(c.y + y) ~r:(c.x + hw) ~t:(c.y + y1) :: acc
        else acc
      in
      rows y1 acc
  in
  coalesce_columns (rows (-rad) [])

let total_area boxes = List.fold_left (fun acc b -> acc + Box.area b) 0 boxes
