(** Axis-aligned integer boxes (rectangles).

    A box is the half-open product [\[l, r) × \[b, t)]: two boxes that merely
    share an edge have zero-area intersection but are considered {e abutting},
    which is what makes electrical connectivity through shared edges work.
    Invariant: [l < r] and [b < t] — empty boxes cannot be constructed. *)

type t = private { l : int; b : int; r : int; t : int }

(** [make ~l ~b ~r ~t] builds a box; raises [Invalid_argument] unless
    [l < r && b < t]. *)
val make : l:int -> b:int -> r:int -> t:int -> t

(** [of_corners p q] builds the box spanned by two opposite corners, in any
    order.  Raises [Invalid_argument] on degenerate (zero width/height)
    input. *)
val of_corners : Point.t -> Point.t -> t

(** [of_center_size ~cx ~cy ~w ~h] is CIF's B command geometry: a [w]×[h] box
    centered at ([cx], [cy]).  [w] and [h] must be positive and such that the
    corners land on integers (even, for odd centers use [make]). *)
val of_center_size : cx:int -> cy:int -> w:int -> h:int -> t

val width : t -> int
val height : t -> int
val area : t -> int

val center : t -> Point.t

(** Bottom-left corner. *)
val min_corner : t -> Point.t

val equal : t -> t -> bool
val compare : t -> t -> int

val contains_point : t -> Point.t -> bool

(** Strictly positive-area overlap. *)
val overlaps : t -> t -> bool

(** Overlapping or sharing an edge of positive length (not just a corner). *)
val touches : t -> t -> bool

val intersection : t -> t -> t option

(** Smallest box containing both. *)
val hull : t -> t -> t

(** Hull of a non-empty list; [None] for the empty list. *)
val hull_list : t list -> t option

val translate : t -> dx:int -> dy:int -> t

(** [clip box ~window] is the part of [box] inside [window], if any. *)
val clip : t -> window:t -> t option

val pp : Format.formatter -> t -> unit
