type t = { x : int; y : int }

let make x y = { x; y }
let origin = { x = 0; y = 0 }
let add a b = { x = a.x + b.x; y = a.y + b.y }
let sub a b = { x = a.x - b.x; y = a.y - b.y }
let equal a b = a.x = b.x && a.y = b.y

let compare a b =
  let c = Int.compare a.x b.x in
  if c <> 0 then c else Int.compare a.y b.y

let compare_yx a b =
  let c = Int.compare a.y b.y in
  if c <> 0 then c else Int.compare a.x b.x

let pp ppf p = Format.fprintf ppf "(%d,%d)" p.x p.y
