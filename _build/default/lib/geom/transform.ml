type t = { xx : int; xy : int; yx : int; yy : int; dx : int; dy : int }

let identity = { xx = 1; xy = 0; yx = 0; yy = 1; dx = 0; dy = 0 }
let translation ~dx ~dy = { identity with dx; dy }
let mirror_x = { identity with xx = -1 }
let mirror_y = { identity with yy = -1 }

let rotation ~a ~b =
  match (compare a 0, compare b 0) with
  | 1, 0 -> identity
  | 0, 1 -> { identity with xx = 0; xy = -1; yx = 1; yy = 0 }
  | -1, 0 -> { identity with xx = -1; yy = -1 }
  | 0, -1 -> { identity with xx = 0; xy = 1; yx = -1; yy = 0 }
  | _ ->
      invalid_arg
        (Printf.sprintf "Transform.rotation: non-manhattan direction (%d,%d)" a
           b)

(* [compose outer inner] p = outer (inner p). *)
let compose o i =
  {
    xx = (o.xx * i.xx) + (o.xy * i.yx);
    xy = (o.xx * i.xy) + (o.xy * i.yy);
    yx = (o.yx * i.xx) + (o.yy * i.yx);
    yy = (o.yx * i.xy) + (o.yy * i.yy);
    dx = (o.xx * i.dx) + (o.xy * i.dy) + o.dx;
    dy = (o.yx * i.dx) + (o.yy * i.dy) + o.dy;
  }

let then_ t op = compose op t

let apply t (p : Point.t) =
  Point.make ((t.xx * p.x) + (t.xy * p.y) + t.dx) ((t.yx * p.x) + (t.yy * p.y) + t.dy)

let inverse t =
  (* The rotation part is orthogonal, so its inverse is its transpose. *)
  let xx = t.xx and xy = t.yx and yx = t.xy and yy = t.yy in
  {
    xx;
    xy;
    yx;
    yy;
    dx = -((xx * t.dx) + (xy * t.dy));
    dy = -((yx * t.dx) + (yy * t.dy));
  }

let apply_box t (bx : Box.t) =
  let p = apply t (Point.make bx.l bx.b) and q = apply t (Point.make bx.r bx.t) in
  Box.of_corners p q

let is_orthogonal _ = true

let equal a b =
  a.xx = b.xx && a.xy = b.xy && a.yx = b.yx && a.yy = b.yy && a.dx = b.dx
  && a.dy = b.dy

let pp ppf t =
  Format.fprintf ppf "[%d %d; %d %d]+(%d,%d)" t.xx t.xy t.yx t.yy t.dx t.dy
