(** Orthogonal affine transforms — CIF symbol-call semantics.

    A transform maps p to M·p + d where M is one of the eight orthogonal
    integer matrices (four rotations, optionally mirrored).  CIF builds the
    transform of a call by applying primitive operations {e in order} to the
    symbol's coordinates: [T dx dy] (translate), [M X] (x → −x), [M Y]
    (y → −y), [R a b] (rotate the +x direction to point along (a, b);
    manhattan directions only). *)

type t

val identity : t

val translation : dx:int -> dy:int -> t

val mirror_x : t
val mirror_y : t

(** [rotation ~a ~b] rotates the +x axis to the direction (a, b), which must
    be one of the four axis directions (any positive multiple accepted).
    Raises [Invalid_argument] for non-manhattan directions. *)
val rotation : a:int -> b:int -> t

(** [then_ t op] is the transform applying [t] first, then [op] — the order
    CIF lists call operations in. *)
val then_ : t -> t -> t

(** [compose outer inner] applies [inner] first. *)
val compose : t -> t -> t

val inverse : t -> t

val apply : t -> Point.t -> Point.t

(** Transformed box (corners mapped, result re-normalized). *)
val apply_box : t -> Box.t -> Box.t

(** Does the transform preserve axis alignment trivially (always true for
    this type); exposed for documentation of invariants in callers. *)
val is_orthogonal : t -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
