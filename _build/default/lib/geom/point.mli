(** Integer lattice points.

    All ACE geometry lives on an integer grid (CIF centimicrons).  A point is
    an immutable pair of coordinates. *)

type t = { x : int; y : int }

val make : int -> int -> t

val origin : t

val add : t -> t -> t

val sub : t -> t -> t

val equal : t -> t -> bool

val compare : t -> t -> int

(** Lexicographic by [y] then [x]; useful for canonical orderings. *)
val compare_yx : t -> t -> int

val pp : Format.formatter -> t -> unit
