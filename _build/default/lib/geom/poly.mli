(** Polygon and wire decomposition into manhattan boxes.

    ACE's front-end "splits non-manhattan geometry into a number of small
    aligned boxes that approximate the original object" before handing it to
    the scanline back-end.  This module implements that splitting:

    - manhattan polygons (all edges axis-parallel) decompose {e exactly}
      into boxes;
    - polygons with sloped edges are sliced into horizontal strips of height
      [quantum] and each strip is approximated by the boxes covering the
      polygon's span at the strip midline;
    - CIF wires become one box per manhattan segment (with the half-width
      square-end extension CIF specifies); sloped segments go through the
      polygon path. *)

(** A polygon given by its vertices in order (closed implicitly). *)
type polygon = Point.t list

(** [is_manhattan poly] holds when every edge is axis-parallel. *)
val is_manhattan : polygon -> bool

(** Twice the signed area (shoelace); sign tells orientation. *)
val double_area : polygon -> int

(** [boxes_of_polygon ~quantum poly] decomposes a simple polygon.  [quantum]
    bounds the strip height used for sloped regions (e.g. λ/2); it is ignored
    for manhattan polygons.  Degenerate polygons (fewer than 3 distinct
    vertices, zero area) yield [\[\]]. *)
val boxes_of_polygon : quantum:int -> polygon -> Box.t list

(** [boxes_of_wire ~quantum ~width path] decomposes a CIF wire: a path of
    centerline points drawn with a pen of the given width.  Width must be
    positive; a single-point path yields one square. *)
val boxes_of_wire : quantum:int -> width:int -> Point.t list -> Box.t list

(** [boxes_of_round_flash ~quantum ~diameter ~center] approximates a CIF
    roundflash by stacked boxes inscribed in the circle. *)
val boxes_of_round_flash :
  quantum:int -> diameter:int -> center:Point.t -> Box.t list

(** Sum of box areas — decompositions of manhattan polygons preserve area. *)
val total_area : Box.t list -> int

(** Merge vertically stacked boxes with identical x-extent (reduces the box
    count of decompositions and geometry dumps). *)
val coalesce_columns : Box.t list -> Box.t list
