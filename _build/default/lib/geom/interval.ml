type span = { lo : int; hi : int }
type t = span list

let empty = []
let is_empty = function [] -> true | _ :: _ -> false

let of_spans pairs =
  let spans =
    List.filter_map
      (fun (lo, hi) -> if lo < hi then Some { lo; hi } else None)
      pairs
  in
  let sorted = List.sort (fun a b -> Int.compare a.lo b.lo) spans in
  (* Merge overlapping or abutting spans left to right. *)
  let rec merge acc = function
    | [] -> List.rev acc
    | s :: rest -> (
        match acc with
        | prev :: acc' when s.lo <= prev.hi ->
            merge ({ prev with hi = max prev.hi s.hi } :: acc') rest
        | _ -> merge (s :: acc) rest)
  in
  merge [] sorted

let to_spans t = List.map (fun s -> (s.lo, s.hi)) t
let cardinal = List.length
let total_length t = List.fold_left (fun acc s -> acc + s.hi - s.lo) 0 t
let mem t x = List.exists (fun s -> s.lo <= x && x < s.hi) t

let union a b = of_spans (to_spans a @ to_spans b)

let rec inter a b =
  match (a, b) with
  | [], _ | _, [] -> []
  | x :: a', y :: b' ->
      let lo = max x.lo y.lo and hi = min x.hi y.hi in
      let rest = if x.hi < y.hi then inter a' b else inter a b' in
      if lo < hi then { lo; hi } :: rest else rest

let rec diff a b =
  match (a, b) with
  | [], _ -> []
  | _, [] -> a
  | x :: a', y :: b' ->
      if y.hi <= x.lo then diff a b'
      else if x.hi <= y.lo then x :: diff a' b
      else
        (* x and y overlap *)
        let head = if x.lo < y.lo then [ { lo = x.lo; hi = y.lo } ] else [] in
        if y.hi < x.hi then head @ diff ({ lo = y.hi; hi = x.hi } :: a') b'
        else head @ diff a' b

let equal a b =
  List.length a = List.length b
  && List.for_all2 (fun x y -> x.lo = y.lo && x.hi = y.hi) a b

let spans_overlap x y = max x.lo y.lo < min x.hi y.hi
let span_overlap_length x y = max 0 (min x.hi y.hi - max x.lo y.lo)

let overlap_length a b =
  let rec go acc a b =
    match (a, b) with
    | [], _ | _, [] -> acc
    | x :: a', y :: b' ->
        let acc = acc + span_overlap_length x y in
        if x.hi < y.hi then go acc a' b else go acc a b'
  in
  go 0 a b

let overlapping_pairs a b =
  let rec go i j a b acc =
    match (a, b) with
    | [], _ | _, [] -> List.rev acc
    | x :: a', y :: b' ->
        let acc = if spans_overlap x y then (i, j) :: acc else acc in
        if x.hi < y.hi then go (i + 1) j a' b acc else go i (j + 1) a b' acc
  in
  go 0 0 a b []

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf s -> Format.fprintf ppf "[%d,%d)" s.lo s.hi))
    t
