type t = Diffusion | Poly | Contact | Metal | Implant | Buried | Glass

let all = [ Diffusion; Poly; Contact; Metal; Implant; Buried; Glass ]

let to_cif_name = function
  | Diffusion -> "ND"
  | Poly -> "NP"
  | Contact -> "NC"
  | Metal -> "NM"
  | Implant -> "NI"
  | Buried -> "NB"
  | Glass -> "NG"

let of_cif_name = function
  | "ND" -> Some Diffusion
  | "NP" -> Some Poly
  | "NC" -> Some Contact
  | "NM" -> Some Metal
  | "NI" -> Some Implant
  | "NB" -> Some Buried
  | "NG" -> Some Glass
  | _ -> None

let conducting = function
  | Metal | Poly | Diffusion -> true
  | Contact | Implant | Buried | Glass -> false

let conducting_layers = [ Metal; Poly; Diffusion ]

let index = function
  | Diffusion -> 0
  | Poly -> 1
  | Contact -> 2
  | Metal -> 3
  | Implant -> 4
  | Buried -> 5
  | Glass -> 6

let count = 7
let equal a b = index a = index b
let compare a b = Int.compare (index a) (index b)
let hash = index
let pp ppf t = Format.pp_print_string ppf (to_cif_name t)
