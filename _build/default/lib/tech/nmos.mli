(** NMOS process parameters and device-formation rules.

    ACE itself deliberately embeds no circuit model — it outputs geometry so
    that "a post-processing program" can compute capacitances and
    resistances.  The electrical numbers here therefore belong to the
    post-processor ([Ace_analysis]), not to the extractor; the extractor only
    uses [lambda] (grid quantum for non-manhattan approximation) and the
    structural rules below. *)

(** Transistor flavor: implant makes a depletion-mode device. *)
type device_type = Enhancement | Depletion

val device_type_equal : device_type -> device_type -> bool

(** Wirelist part names, as in the papers' figures ("nEnh" / "nDep"). *)
val device_type_name : device_type -> string

val pp_device_type : Format.formatter -> device_type -> unit

type params = {
  lambda : int;
      (** feature size in CIF centimicrons (Mead–Conway: 250 = 2.5 µm) *)
  sheet_ohms_diffusion : float;
  sheet_ohms_poly : float;
  sheet_ohms_metal : float;
  cap_area_diffusion : float;  (** fF per λ² *)
  cap_area_poly : float;
  cap_area_metal : float;
  cap_gate : float;  (** fF per λ² of channel *)
}

(** Mead–Conway textbook values. *)
val default : params

(** Sheet resistance of a conducting layer (Ω/□). *)
val sheet_ohms : params -> Layer.t -> float

(** Area capacitance of a conducting layer (fF/λ²). *)
val cap_area : params -> Layer.t -> float

(** Structural rule: a channel exists where diffusion and poly overlap with
    no buried contact; implant decides the flavor. *)
val channel_type : implanted:bool -> device_type

(** Minimal pull-up/pull-down ratio for a restoring NMOS gate driven by
    restored levels (Mead–Conway: 4). *)
val min_inverter_ratio : float
