type device_type = Enhancement | Depletion

let device_type_equal a b =
  match (a, b) with
  | Enhancement, Enhancement | Depletion, Depletion -> true
  | Enhancement, Depletion | Depletion, Enhancement -> false

let device_type_name = function
  | Enhancement -> "nEnh"
  | Depletion -> "nDep"

let pp_device_type ppf t = Format.pp_print_string ppf (device_type_name t)

type params = {
  lambda : int;
  sheet_ohms_diffusion : float;
  sheet_ohms_poly : float;
  sheet_ohms_metal : float;
  cap_area_diffusion : float;
  cap_area_poly : float;
  cap_area_metal : float;
  cap_gate : float;
}

let default =
  {
    lambda = 250;
    sheet_ohms_diffusion = 10.0;
    sheet_ohms_poly = 30.0;
    sheet_ohms_metal = 0.03;
    cap_area_diffusion = 0.625;
    cap_area_poly = 0.25;
    cap_area_metal = 0.1875;
    cap_gate = 2.5;
  }

let sheet_ohms p = function
  | Layer.Diffusion -> p.sheet_ohms_diffusion
  | Layer.Poly -> p.sheet_ohms_poly
  | Layer.Metal -> p.sheet_ohms_metal
  | Layer.Contact | Layer.Implant | Layer.Buried | Layer.Glass -> 0.0

let cap_area p = function
  | Layer.Diffusion -> p.cap_area_diffusion
  | Layer.Poly -> p.cap_area_poly
  | Layer.Metal -> p.cap_area_metal
  | Layer.Contact | Layer.Implant | Layer.Buried | Layer.Glass -> 0.0

let channel_type ~implanted = if implanted then Depletion else Enhancement
let min_inverter_ratio = 4.0
