(** Mask layers of the Mead–Conway NMOS process.

    These are the seven layers the papers' extractor knows about.  The four
    "interacting" layers scanned simultaneously for device recognition are
    diffusion, poly, buried and implant (ACE §3); the conducting layers
    carrying signals across window boundaries are diffusion, poly and metal
    (HEXT §3). *)

type t =
  | Diffusion  (** ND — n+ diffusion *)
  | Poly  (** NP — polysilicon *)
  | Contact  (** NC — contact cut (metal to poly or diffusion) *)
  | Metal  (** NM — metal *)
  | Implant  (** NI — depletion-mode implant *)
  | Buried  (** NB — buried contact (poly to diffusion) *)
  | Glass  (** NG — overglass openings *)

val all : t list

(** CIF layer names as used by the Mead–Conway NMOS design rules. *)
val to_cif_name : t -> string

val of_cif_name : string -> t option

(** Layers that carry electrical signals (metal, poly, diffusion). *)
val conducting : t -> bool

(** Conducting layers, in the order nets prefer for naming/location
    (metal, then poly, then diffusion). *)
val conducting_layers : t list

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** Dense index in [0, count); usable as an array index. *)
val index : t -> int

val count : int

val pp : Format.formatter -> t -> unit
