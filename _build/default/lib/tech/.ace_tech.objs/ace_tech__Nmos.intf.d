lib/tech/nmos.mli: Format Layer
