lib/tech/nmos.ml: Format Layer
