lib/tech/layer.mli: Format
