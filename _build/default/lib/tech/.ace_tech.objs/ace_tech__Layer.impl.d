lib/tech/layer.ml: Format Int
