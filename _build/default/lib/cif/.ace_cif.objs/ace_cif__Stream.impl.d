lib/cif/stream.ml: Ace_geom Ace_tech Array Ast Box Design Hashtbl Layer List Shapes Transform
