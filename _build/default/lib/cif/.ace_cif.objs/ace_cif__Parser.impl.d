lib/cif/parser.ml: Ace_geom Ast Float Format List Point Printf String
