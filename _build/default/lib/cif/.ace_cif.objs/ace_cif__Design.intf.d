lib/cif/design.mli: Ace_geom Ace_tech Ast Box Layer Point Transform
