lib/cif/shapes.ml: Ace_geom Ast Box Float List Point Poly
