lib/cif/ast.ml: Ace_geom Format List Point
