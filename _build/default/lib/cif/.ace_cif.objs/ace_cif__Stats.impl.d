lib/cif/stats.ml: Ace_geom Ace_tech Array Box Design Flatten Format Hashtbl Layer List Printf String
