lib/cif/writer.ml: Ace_geom Ast Buffer List Point Printf
