lib/cif/flatten.mli: Ace_geom Ace_tech Box Design Layer
