lib/cif/shapes.mli: Ace_geom Ast Box
