lib/cif/writer.mli: Ast Buffer
