lib/cif/parser.mli: Ast
