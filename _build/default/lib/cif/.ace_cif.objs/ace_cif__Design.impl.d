lib/cif/design.ml: Ace_geom Ace_tech Ast Box Format Hashtbl Int Layer List Point Printf Shapes Transform
