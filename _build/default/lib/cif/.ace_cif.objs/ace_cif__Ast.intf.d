lib/cif/ast.mli: Ace_geom Format Point
