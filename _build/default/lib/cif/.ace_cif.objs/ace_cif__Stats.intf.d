lib/cif/stats.mli: Ace_tech Design Format Layer
