lib/cif/stream.mli: Ace_geom Ace_tech Box Design Layer
