lib/cif/flatten.ml: Ace_geom Ace_tech Ast Design Layer List Shapes Transform
