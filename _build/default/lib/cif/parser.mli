
(** CIF 2.0 parser.

    Accepts the full command set: [P] polygon, [B] box, [W] wire, [R]
    roundflash, [L] layer, [DS]/[DF] symbol definition with scale factor,
    [DD] delete, [C] call with transformation list, [E] end, parenthesized
    (nested) comments, and user extensions — of which [9 name] (symbol
    name) and [94 name x y \[layer\]] (net label) are interpreted, the rest
    preserved verbatim.

    The [DS a b] scale factor is applied to all contained distances at parse
    time; the stateful current layer is resolved onto each shape. *)

exception Error of { position : int; message : string }

(** [parse_string s] parses a complete CIF file.  Raises {!Error}. *)
val parse_string : string -> Ast.file

val parse_file : string -> Ast.file

(** Human-readable rendering of a parse error against its source. *)
val describe_error : source:string -> position:int -> message:string -> string
