open Ace_geom

(** Conversion of CIF shapes to manhattan boxes.

    Implements the front-end rule "non-manhattan geometry is split into a
    number of small aligned boxes that approximate the original object"
    (ACE §3).  [quantum] is the strip height used for the approximation,
    typically λ/2. *)

(** Decomposed boxes of a shape, in symbol-local coordinates. *)
val boxes_of_shape : quantum:int -> Ast.shape -> Box.t list

(** Cheap conservative bounding box (no decomposition); [None] for
    degenerate shapes.  Always contains every box of [boxes_of_shape]. *)
val shape_bbox : Ast.shape -> Box.t option
