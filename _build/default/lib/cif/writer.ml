open Ace_geom

let transform_op_to_string = function
  | Ast.Translate (dx, dy) -> Printf.sprintf "T %d %d" dx dy
  | Ast.Mirror_x -> "M X"
  | Ast.Mirror_y -> "M Y"
  | Ast.Rotate (a, b) -> Printf.sprintf "R %d %d" a b

let add_points buf pts =
  List.iter (fun (p : Point.t) -> Printf.bprintf buf " %d %d" p.x p.y) pts

let add_shape buf layer shape =
  Printf.bprintf buf "L %s; " layer;
  (match shape with
  | Ast.Box { length; width; center; direction } -> (
      Printf.bprintf buf "B %d %d %d %d" length width center.x center.y;
      match direction with
      | None -> ()
      | Some d -> Printf.bprintf buf " %d %d" d.x d.y)
  | Ast.Polygon pts ->
      Buffer.add_char buf 'P';
      add_points buf pts
  | Ast.Wire { width; path } ->
      Printf.bprintf buf "W %d" width;
      add_points buf path
  | Ast.Round_flash { diameter; center } ->
      Printf.bprintf buf "R %d %d %d" diameter center.x center.y);
  Buffer.add_string buf ";\n"

let element_to_buffer buf = function
  | Ast.Shape { layer; shape } -> add_shape buf layer shape
  | Ast.Call { symbol; ops } ->
      Printf.bprintf buf "C %d" symbol;
      List.iter (fun op -> Printf.bprintf buf " %s" (transform_op_to_string op)) ops;
      Buffer.add_string buf ";\n"
  | Ast.Label { name; position; layer } -> (
      Printf.bprintf buf "94 %s %d %d" name position.x position.y;
      (match layer with None -> () | Some l -> Printf.bprintf buf " %s" l);
      Buffer.add_string buf ";\n")
  | Ast.Comment_ext text -> Printf.bprintf buf "%s;\n" text

let to_string (file : Ast.file) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (def : Ast.symbol_def) ->
      Printf.bprintf buf "DS %d 1 1;\n" def.id;
      (match def.name with
      | Some name -> Printf.bprintf buf "9 %s;\n" name
      | None -> ());
      List.iter (element_to_buffer buf) def.elements;
      Buffer.add_string buf "DF;\n")
    file.symbols;
  List.iter (element_to_buffer buf) file.top_level;
  Buffer.add_string buf "E\n";
  Buffer.contents buf

let to_file path file =
  let oc = open_out path in
  output_string oc (to_string file);
  close_out oc
