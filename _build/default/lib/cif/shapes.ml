open Ace_geom

type orient = Along_x | Along_y | Sloped of Point.t

let classify_direction = function
  | None -> Along_x
  | Some (d : Point.t) ->
      if d.y = 0 && d.x <> 0 then Along_x
      else if d.x = 0 && d.y <> 0 then Along_y
      else Sloped d

let boxes_of_shape ~quantum (shape : Ast.shape) =
  match shape with
  | Ast.Box { length; width; center; direction } -> (
      if length <= 0 || width <= 0 then []
      else
        match classify_direction direction with
        | Along_x ->
            [ Box.of_center_size ~cx:center.x ~cy:center.y ~w:length ~h:width ]
        | Along_y ->
            [ Box.of_center_size ~cx:center.x ~cy:center.y ~w:width ~h:length ]
        | Sloped d ->
            (* rotate the rectangle's corners about the center *)
            let fl = float_of_int in
            let len = sqrt ((fl d.x *. fl d.x) +. (fl d.y *. fl d.y)) in
            let ux = fl d.x /. len and uy = fl d.y /. len in
            let hx = fl length /. 2.0 and hy = fl width /. 2.0 in
            let corner sx sy =
              Point.make
                (center.x
                 + int_of_float (Float.round ((sx *. hx *. ux) -. (sy *. hy *. uy))))
                (center.y
                 + int_of_float (Float.round ((sx *. hx *. uy) +. (sy *. hy *. ux))))
            in
            Poly.boxes_of_polygon ~quantum
              [ corner (-1.) (-1.); corner 1. (-1.); corner 1. 1.; corner (-1.) 1. ])
  | Ast.Polygon pts -> Poly.boxes_of_polygon ~quantum pts
  | Ast.Wire { width; path } -> Poly.boxes_of_wire ~quantum ~width path
  | Ast.Round_flash { diameter; center } ->
      Poly.boxes_of_round_flash ~quantum ~diameter ~center

let shape_bbox (shape : Ast.shape) =
  match shape with
  | Ast.Box { length; width; center; direction } ->
      if length <= 0 || width <= 0 then None
      else (
        match classify_direction direction with
        | Along_x ->
            Some (Box.of_center_size ~cx:center.x ~cy:center.y ~w:length ~h:width)
        | Along_y ->
            Some (Box.of_center_size ~cx:center.x ~cy:center.y ~w:width ~h:length)
        | Sloped _ ->
            (* conservative square covering any rotation *)
            let d = length + width in
            Some
              (Box.make ~l:(center.x - d) ~b:(center.y - d) ~r:(center.x + d)
                 ~t:(center.y + d)))
  | Ast.Polygon pts -> (
      match pts with
      | [] -> None
      | (p0 : Point.t) :: rest ->
          let l, b, r, t =
            List.fold_left
              (fun (l, b, r, t) (p : Point.t) ->
                (min l p.x, min b p.y, max r p.x, max t p.y))
              (p0.x, p0.y, p0.x, p0.y)
              rest
          in
          if l < r && b < t then Some (Box.make ~l ~b ~r ~t) else None)
  | Ast.Wire { width; path } -> (
      match path with
      | [] -> None
      | (p0 : Point.t) :: rest ->
          let l, b, r, t =
            List.fold_left
              (fun (l, b, r, t) (p : Point.t) ->
                (min l p.x, min b p.y, max r p.x, max t p.y))
              (p0.x, p0.y, p0.x, p0.y)
              rest
          in
          let h = (width / 2) + 1 in
          Some (Box.make ~l:(l - h) ~b:(b - h) ~r:(r + h) ~t:(t + h)))
  | Ast.Round_flash { diameter; center } ->
      if diameter <= 0 then None
      else
        let rad = (diameter + 1) / 2 in
        Some
          (Box.make ~l:(center.x - rad) ~b:(center.y - rad) ~r:(center.x + rad)
             ~t:(center.y + rad))
