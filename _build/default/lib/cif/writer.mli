
(** CIF text generation.

    Produces conventional, human-readable CIF: one command per line,
    semicolon-terminated, symbol definitions first, then the top level and
    the final [E].  [Parser.parse_string] of the output reconstructs the
    same AST (round-trip property, tested). *)

val transform_op_to_string : Ast.transform_op -> string

val element_to_buffer : Buffer.t -> Ast.element -> unit

val to_string : Ast.file -> string

val to_file : string -> Ast.file -> unit
