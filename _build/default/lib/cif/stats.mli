open Ace_tech

(** Layout statistics — the quantities the papers' expected-time analysis
    is built on (Bentley, Haken & Hon, "Statistics on VLSI Designs").

    ACE §4 models an N-box chip as uniformly distributed small squares and
    derives O(√N) boxes on the scanline and O(√N) scanline stops, hence
    linear total time.  These statistics let the benchmark check that the
    synthetic workloads actually satisfy the model. *)

type t = {
  boxes : int;  (** total primitive boxes (the papers' N) *)
  boxes_per_layer : (Layer.t * int) list;
  mean_width : float;  (** centimicrons *)
  mean_height : float;
  chip_area : int;  (** bounding-box area, centimicrons² *)
  geometry_area : int;  (** sum of box areas (overlaps counted twice) *)
  density : float;  (** geometry_area / chip_area *)
  distinct_tops : int;  (** number of distinct top-edge y values *)
}

val of_design : Design.t -> t

val pp : Format.formatter -> t -> unit
