open Ace_geom

exception Error of { position : int; message : string }

let fail pos fmt =
  Format.kasprintf (fun message -> raise (Error { position = pos; message })) fmt

type cursor = { src : string; mutable pos : int }

let is_digit c = c >= '0' && c <= '9'
let is_upper c = c >= 'A' && c <= 'Z'

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

(* Skip CIF blanks: anything that is not a digit, uppercase letter, '-',
   '(', ')' or ';'.  Parenthesized comments nest and count as blank. *)
let rec skip_blanks cur =
  match peek cur with
  | None -> ()
  | Some '(' ->
      let depth = ref 0 in
      let continue = ref true in
      while !continue do
        (match peek cur with
        | None -> fail cur.pos "unterminated comment"
        | Some '(' -> incr depth
        | Some ')' -> if !depth = 1 then continue := false else decr depth
        | Some _ -> ());
        cur.pos <- cur.pos + 1
      done;
      skip_blanks cur
  | Some c when is_digit c || is_upper c || c = '-' || c = ';' || c = ')' -> ()
  | Some _ ->
      cur.pos <- cur.pos + 1;
      skip_blanks cur

let read_int cur =
  skip_blanks cur;
  let neg =
    match peek cur with
    | Some '-' ->
        cur.pos <- cur.pos + 1;
        true
    | _ -> false
  in
  let start = cur.pos in
  while match peek cur with Some c when is_digit c -> true | _ -> false do
    cur.pos <- cur.pos + 1
  done;
  if cur.pos = start then fail cur.pos "expected an integer";
  let n = int_of_string (String.sub cur.src start (cur.pos - start)) in
  if neg then -n else n

let try_read_int cur =
  skip_blanks cur;
  match peek cur with
  | Some c when is_digit c || c = '-' -> Some (read_int cur)
  | Some _ | None -> None

let read_point cur =
  let x = read_int cur in
  let y = read_int cur in
  Point.make x y

let expect_semi cur =
  skip_blanks cur;
  match peek cur with
  | Some ';' -> cur.pos <- cur.pos + 1
  | Some c -> fail cur.pos "expected ';', found %c" c
  | None -> fail cur.pos "expected ';', found end of input"

(* Read the rest of the command verbatim (for user extensions). *)
let read_to_semi cur =
  let start = cur.pos in
  while
    match peek cur with
    | Some ';' -> false
    | Some _ -> true
    | None -> fail cur.pos "unterminated command"
  do
    cur.pos <- cur.pos + 1
  done;
  let text = String.sub cur.src start (cur.pos - start) in
  cur.pos <- cur.pos + 1;
  String.trim text

let read_layer_name cur =
  skip_blanks cur;
  let start = cur.pos in
  while
    match peek cur with
    | Some c when is_upper c || is_digit c -> true
    | Some _ | None -> false
  do
    cur.pos <- cur.pos + 1
  done;
  if cur.pos = start then fail cur.pos "expected a layer name";
  String.sub cur.src start (cur.pos - start)

let read_points_until_semi cur =
  let rec go acc =
    match try_read_int cur with
    | None -> List.rev acc
    | Some x ->
        let y = read_int cur in
        go (Point.make x y :: acc)
  in
  go []

let read_transform_ops cur =
  let rec go acc =
    skip_blanks cur;
    match peek cur with
    | Some 'T' ->
        cur.pos <- cur.pos + 1;
        let dx = read_int cur in
        let dy = read_int cur in
        go (Ast.Translate (dx, dy) :: acc)
    | Some 'M' ->
        cur.pos <- cur.pos + 1;
        skip_blanks cur;
        (match peek cur with
        | Some 'X' ->
            cur.pos <- cur.pos + 1;
            go (Ast.Mirror_x :: acc)
        | Some 'Y' ->
            cur.pos <- cur.pos + 1;
            go (Ast.Mirror_y :: acc)
        | _ -> fail cur.pos "expected X or Y after M")
    | Some 'R' ->
        cur.pos <- cur.pos + 1;
        let a = read_int cur in
        let b = read_int cur in
        go (Ast.Rotate (a, b) :: acc)
    | Some _ | None -> List.rev acc
  in
  go []

(* A word of uppercase letters (used after a label position for an optional
   layer name); returns None at ';'. *)
let try_read_word cur =
  skip_blanks cur;
  match peek cur with
  | Some c when is_upper c -> Some (read_layer_name cur)
  | Some _ | None -> None

(* Labels in extension 94: a name is any run of non-blank, non-';'
   characters starting at the first non-blank position. *)
let read_label_name cur =
  let rec skip_soft () =
    match peek cur with
    | Some c when c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = ',' ->
        cur.pos <- cur.pos + 1;
        skip_soft ()
    | _ -> ()
  in
  skip_soft ();
  let start = cur.pos in
  while
    match peek cur with
    | Some c when c <> ';' && c <> ' ' && c <> '\t' && c <> '\n' && c <> '\r' ->
        true
    | Some _ | None -> false
  do
    cur.pos <- cur.pos + 1
  done;
  if cur.pos = start then fail cur.pos "expected a label name";
  String.sub cur.src start (cur.pos - start)

type def_state = {
  def_id : int;
  scale_num : int;
  scale_den : int;
  mutable def_name : string option;
  mutable def_elements : Ast.element list;  (** reversed *)
}

let scale st n =
  match st with
  | None -> n
  | Some d ->
      (* round-half-away-from-zero on the (rare) non-exact case *)
      let v = n * d.scale_num in
      if v mod d.scale_den = 0 then v / d.scale_den
      else
        let q = float_of_int v /. float_of_int d.scale_den in
        int_of_float (Float.round q)

let scale_point st (p : Point.t) = Point.make (scale st p.x) (scale st p.y)

let parse_string src =
  let cur = { src; pos = 0 } in
  let symbols = ref [] in
  let top = ref [] in
  let current_def : def_state option ref = ref None in
  let current_layer = ref None in
  let add_element e =
    match !current_def with
    | Some d -> d.def_elements <- e :: d.def_elements
    | None -> top := e :: !top
  in
  let add_shape shape =
    match !current_layer with
    | None -> fail cur.pos "geometry before any L (layer) command"
    | Some layer -> add_element (Ast.Shape { layer; shape })
  in
  let finished = ref false in
  while not !finished do
    skip_blanks cur;
    match peek cur with
    | None -> fail cur.pos "missing E (end) command"
    | Some ';' -> cur.pos <- cur.pos + 1 (* empty command *)
    | Some 'P' ->
        cur.pos <- cur.pos + 1;
        let pts = read_points_until_semi cur in
        expect_semi cur;
        let st = !current_def in
        add_shape (Ast.Polygon (List.map (scale_point st) pts))
    | Some 'B' ->
        cur.pos <- cur.pos + 1;
        let st = !current_def in
        let length = scale st (read_int cur) in
        let width = scale st (read_int cur) in
        let center = scale_point st (read_point cur) in
        let direction =
          match try_read_int cur with
          | None -> None
          | Some a ->
              let b = read_int cur in
              Some (Point.make a b)
        in
        expect_semi cur;
        add_shape (Ast.Box { length; width; center; direction })
    | Some 'W' ->
        cur.pos <- cur.pos + 1;
        let st = !current_def in
        let width = scale st (read_int cur) in
        let path = List.map (scale_point st) (read_points_until_semi cur) in
        expect_semi cur;
        add_shape (Ast.Wire { width; path })
    | Some 'R' ->
        cur.pos <- cur.pos + 1;
        let st = !current_def in
        let diameter = scale st (read_int cur) in
        let center = scale_point st (read_point cur) in
        expect_semi cur;
        add_shape (Ast.Round_flash { diameter; center })
    | Some 'L' ->
        cur.pos <- cur.pos + 1;
        let name = read_layer_name cur in
        expect_semi cur;
        current_layer := Some name
    | Some 'D' ->
        cur.pos <- cur.pos + 1;
        skip_blanks cur;
        (match peek cur with
        | Some 'S' ->
            cur.pos <- cur.pos + 1;
            if !current_def <> None then
              fail cur.pos "nested DS (symbol definitions cannot nest)";
            let id = read_int cur in
            let scale_num, scale_den =
              match try_read_int cur with
              | None -> (1, 1)
              | Some a ->
                  let b = read_int cur in
                  if a <= 0 || b <= 0 then
                    fail cur.pos "DS scale factors must be positive";
                  (a, b)
            in
            expect_semi cur;
            current_def :=
              Some
                {
                  def_id = id;
                  scale_num;
                  scale_den;
                  def_name = None;
                  def_elements = [];
                }
        | Some 'F' ->
            cur.pos <- cur.pos + 1;
            expect_semi cur;
            (match !current_def with
            | None -> fail cur.pos "DF without matching DS"
            | Some d ->
                symbols :=
                  {
                    Ast.id = d.def_id;
                    name = d.def_name;
                    elements = List.rev d.def_elements;
                  }
                  :: !symbols;
                current_def := None;
                (* CIF: the current layer does not survive a definition *)
                current_layer := None)
        | Some 'D' ->
            cur.pos <- cur.pos + 1;
            let n = read_int cur in
            expect_semi cur;
            (* Delete definitions >= n.  Rare; honored literally. *)
            symbols := List.filter (fun (s : Ast.symbol_def) -> s.id < n) !symbols
        | _ -> fail cur.pos "expected S, F or D after D")
    | Some 'C' ->
        cur.pos <- cur.pos + 1;
        let symbol = read_int cur in
        let raw_ops = read_transform_ops cur in
        expect_semi cur;
        let st = !current_def in
        let ops =
          List.map
            (function
              | Ast.Translate (dx, dy) ->
                  Ast.Translate (scale st dx, scale st dy)
              | (Ast.Mirror_x | Ast.Mirror_y | Ast.Rotate _) as op -> op)
            raw_ops
        in
        add_element (Ast.Call { symbol; ops })
    | Some 'E' ->
        cur.pos <- cur.pos + 1;
        if !current_def <> None then fail cur.pos "E inside a symbol definition";
        finished := true
    | Some '9' -> (
        cur.pos <- cur.pos + 1;
        match peek cur with
        | Some '4' ->
            cur.pos <- cur.pos + 1;
            let name = read_label_name cur in
            let st = !current_def in
            let position = scale_point st (read_point cur) in
            let layer = try_read_word cur in
            expect_semi cur;
            add_element (Ast.Label { name; position; layer })
        | _ ->
            (* 9 name; — names the current symbol *)
            let name = read_label_name cur in
            expect_semi cur;
            (match !current_def with
            | Some d -> d.def_name <- Some name
            | None -> add_element (Ast.Comment_ext ("9 " ^ name))))
    | Some c when is_digit c ->
        let text = read_to_semi cur in
        add_element (Ast.Comment_ext text)
    | Some c -> fail cur.pos "unknown command '%c'" c
  done;
  { Ast.symbols = List.rev !symbols; top_level = List.rev !top }

let parse_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_string s

let describe_error ~source ~position ~message =
  let line = ref 1 and col = ref 1 in
  String.iteri
    (fun i c ->
      if i < position then
        if c = '\n' then (
          incr line;
          col := 1)
        else incr col)
    source;
  Printf.sprintf "CIF parse error at line %d, column %d: %s" !line !col message
