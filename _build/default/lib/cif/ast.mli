open Ace_geom

(** Abstract syntax of CIF 2.0 (Caltech Intermediate Form).

    CIF is the interchange format the papers take as input (Mead & Conway,
    chapter 4).  A file is a sequence of commands; symbol definitions [DS]
    … [DF] bracket reusable cells which calls [C] instantiate under a
    geometric transformation.  The parser resolves CIF's stateful
    current-layer into an explicit layer on every shape, and applies the
    [DS] scale factor to all contained coordinates, so consumers never see
    either piece of state. *)

type transform_op =
  | Translate of int * int
  | Mirror_x  (** M X — negate x *)
  | Mirror_y  (** M Y — negate y *)
  | Rotate of int * int  (** R a b — +x axis to direction (a, b) *)

type shape =
  | Box of {
      length : int;  (** extent along the direction axis *)
      width : int;
      center : Point.t;
      direction : Point.t option;  (** None = (1, 0) *)
    }
  | Polygon of Point.t list
  | Wire of { width : int; path : Point.t list }
  | Round_flash of { diameter : int; center : Point.t }

type element =
  | Shape of { layer : string; shape : shape }
  | Call of { symbol : int; ops : transform_op list }
  | Label of { name : string; position : Point.t; layer : string option }
      (** user extension [94 name x y \[layer\]] — "Names in CIF" *)
  | Comment_ext of string
      (** any other user-extension command, kept verbatim *)

type symbol_def = {
  id : int;
  name : string option;  (** user extension [9 name] inside the definition *)
  elements : element list;
}

type file = { symbols : symbol_def list; top_level : element list }

val empty_file : file

(** All symbol ids called (directly) by these elements. *)
val called_symbols : element list -> int list

val pp_shape : Format.formatter -> shape -> unit
val pp_element : Format.formatter -> element -> unit
