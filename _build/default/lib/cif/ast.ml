open Ace_geom

type transform_op =
  | Translate of int * int
  | Mirror_x
  | Mirror_y
  | Rotate of int * int

type shape =
  | Box of {
      length : int;
      width : int;
      center : Point.t;
      direction : Point.t option;
    }
  | Polygon of Point.t list
  | Wire of { width : int; path : Point.t list }
  | Round_flash of { diameter : int; center : Point.t }

type element =
  | Shape of { layer : string; shape : shape }
  | Call of { symbol : int; ops : transform_op list }
  | Label of { name : string; position : Point.t; layer : string option }
  | Comment_ext of string

type symbol_def = { id : int; name : string option; elements : element list }
type file = { symbols : symbol_def list; top_level : element list }

let empty_file = { symbols = []; top_level = [] }

let called_symbols elements =
  List.filter_map
    (function
      | Call { symbol; _ } -> Some symbol
      | Shape _ | Label _ | Comment_ext _ -> None)
    elements

let pp_points ppf pts =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_space ppf ())
    Point.pp ppf pts

let pp_shape ppf = function
  | Box { length; width; center; direction } ->
      Format.fprintf ppf "B %d %d %a%a" length width Point.pp center
        (fun ppf -> function
          | None -> ()
          | Some d -> Format.fprintf ppf " dir %a" Point.pp d)
        direction
  | Polygon pts -> Format.fprintf ppf "P %a" pp_points pts
  | Wire { width; path } -> Format.fprintf ppf "W %d %a" width pp_points path
  | Round_flash { diameter; center } ->
      Format.fprintf ppf "R %d %a" diameter Point.pp center

let pp_element ppf = function
  | Shape { layer; shape } -> Format.fprintf ppf "L %s %a" layer pp_shape shape
  | Call { symbol; _ } -> Format.fprintf ppf "C %d ..." symbol
  | Label { name; position; _ } ->
      Format.fprintf ppf "94 %s %a" name Point.pp position
  | Comment_ext s -> Format.fprintf ppf "ext %S" s
