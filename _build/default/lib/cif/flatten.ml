open Ace_geom
open Ace_tech

let iter design f =
  let quantum = Design.quantum design in
  let rec walk tr elements =
    List.iter
      (fun el ->
        match el with
        | Ast.Shape { layer; shape } -> (
            match Design.resolve_layer layer with
            | None -> () (* rejected by Design.of_ast; unreachable *)
            | Some lyr ->
                List.iter
                  (fun bx -> f lyr (Transform.apply_box tr bx))
                  (Shapes.boxes_of_shape ~quantum shape))
        | Ast.Call { symbol; ops } ->
            let tr' = Transform.compose tr (Design.transform_of_ops ops) in
            walk tr' (Design.symbol design symbol).Ast.elements
        | Ast.Label _ | Ast.Comment_ext _ -> ())
      elements
  in
  walk Transform.identity (Design.ast design).Ast.top_level

let flatten design =
  let acc = ref [] in
  iter design (fun lyr bx -> acc := (lyr, bx) :: !acc);
  !acc

let flatten_layer design layer =
  let acc = ref [] in
  iter design (fun lyr bx -> if Layer.equal lyr layer then acc := bx :: !acc);
  !acc
