open Ace_geom
open Ace_tech

(** Full instantiation of a design to primitive boxes.

    This is the path baseline extractors take (they "operate on a list of
    all the geometric shapes on a chip", HEXT §1).  ACE's own front-end
    avoids it — see {!Stream}. *)

(** All primitive boxes of the chip, with resolved layers, in no particular
    order.  Allocates the whole list: O(N) space. *)
val flatten : Design.t -> (Layer.t * Box.t) list

(** [iter design f] visits every primitive box without building a list. *)
val iter : Design.t -> (Layer.t -> Box.t -> unit) -> unit

(** Boxes restricted to a single layer. *)
val flatten_layer : Design.t -> Layer.t -> Box.t list
