open Ace_geom
open Ace_tech

type t = {
  boxes : int;
  boxes_per_layer : (Layer.t * int) list;
  mean_width : float;
  mean_height : float;
  chip_area : int;
  geometry_area : int;
  density : float;
  distinct_tops : int;
}

let of_design design =
  let boxes = ref 0 in
  let per_layer = Array.make Layer.count 0 in
  let sum_w = ref 0 and sum_h = ref 0 and sum_area = ref 0 in
  let tops = Hashtbl.create 256 in
  Flatten.iter design (fun lyr bx ->
      incr boxes;
      per_layer.(Layer.index lyr) <- per_layer.(Layer.index lyr) + 1;
      sum_w := !sum_w + Box.width bx;
      sum_h := !sum_h + Box.height bx;
      sum_area := !sum_area + Box.area bx;
      Hashtbl.replace tops bx.Box.t ());
  let n = max 1 !boxes in
  let chip_area =
    match Design.bbox design with Some b -> Box.area b | None -> 0
  in
  {
    boxes = !boxes;
    boxes_per_layer =
      List.filter_map
        (fun lyr ->
          let c = per_layer.(Layer.index lyr) in
          if c > 0 then Some (lyr, c) else None)
        Layer.all;
    mean_width = float_of_int !sum_w /. float_of_int n;
    mean_height = float_of_int !sum_h /. float_of_int n;
    chip_area;
    geometry_area = !sum_area;
    density =
      (if chip_area > 0 then float_of_int !sum_area /. float_of_int chip_area
       else 0.0);
    distinct_tops = Hashtbl.length tops;
  }

let pp ppf t =
  Format.fprintf ppf
    "%d boxes (%s), mean %.0fx%.0f cu, density %.2f, %d distinct tops"
    t.boxes
    (String.concat ", "
       (List.map
          (fun (lyr, c) -> Printf.sprintf "%s %d" (Layer.to_cif_name lyr) c)
          t.boxes_per_layer))
    t.mean_width t.mean_height t.density t.distinct_tops
