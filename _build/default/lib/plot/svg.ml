open Ace_geom
open Ace_tech

let layer_color = function
  | Layer.Diffusion -> ("#2e8b57", 0.55)
  | Layer.Poly -> ("#cc2222", 0.55)
  | Layer.Metal -> ("#3355cc", 0.40)
  | Layer.Contact -> ("#111111", 0.90)
  | Layer.Implant -> ("#ccaa00", 0.35)
  | Layer.Buried -> ("#8b5a2b", 0.55)
  | Layer.Glass -> ("#888888", 0.30)

(* painting order: big background layers first, cuts last *)
let paint_order =
  [ Layer.Implant; Layer.Glass; Layer.Diffusion; Layer.Poly; Layer.Metal;
    Layer.Buried; Layer.Contact ]

let render_boxes ?(scale = 4.0) ?(labels = []) ?(lambda = 250) boxes =
  let margin = 2 * lambda in
  let bbox =
    match Box.hull_list (List.map snd boxes) with
    | Some b -> b
    | None -> Box.make ~l:0 ~b:0 ~r:lambda ~t:lambda
  in
  let px v = scale *. float_of_int v /. float_of_int lambda in
  let width = px (Box.width bbox + (2 * margin)) in
  let height = px (Box.height bbox + (2 * margin)) in
  (* SVG y grows downward: flip around the bbox top *)
  let x_of v = px (v - bbox.Box.l + margin) in
  let y_of v = px (bbox.Box.t + margin - v) in
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.1f\" height=\"%.1f\" \
     viewBox=\"0 0 %.1f %.1f\">\n"
    width height width height;
  Printf.bprintf buf
    "<rect width=\"100%%\" height=\"100%%\" fill=\"#f8f8f4\"/>\n";
  List.iter
    (fun layer ->
      let color, opacity = layer_color layer in
      let mine =
        List.filter_map
          (fun (lyr, bx) -> if Layer.equal lyr layer then Some bx else None)
          boxes
      in
      if mine <> [] then begin
        Printf.bprintf buf "<g fill=\"%s\" fill-opacity=\"%.2f\">\n" color
          opacity;
        List.iter
          (fun (bx : Box.t) ->
            Printf.bprintf buf
              "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\"/>\n"
              (x_of bx.l) (y_of bx.t)
              (px (Box.width bx))
              (px (Box.height bx)))
          mine;
        Buffer.add_string buf "</g>\n"
      end)
    paint_order;
  List.iter
    (fun (lab : Ace_cif.Design.label) ->
      Printf.bprintf buf
        "<text x=\"%.1f\" y=\"%.1f\" font-size=\"%.1f\" \
         font-family=\"monospace\" fill=\"#000\">%s</text>\n"
        (x_of lab.position.Point.x)
        (y_of lab.position.Point.y)
        (2.0 *. scale) lab.name)
    labels;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let render ?scale design =
  render_boxes ?scale
    ~labels:(Ace_cif.Design.labels design)
    ~lambda:250
    (Ace_cif.Flatten.flatten design)

let to_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc
