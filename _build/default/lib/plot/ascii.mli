open Ace_geom
open Ace_tech

(** Terminal rendering of layouts: one character per grid square, the
    topmost-priority layer wins ([X] marks a transistor channel).  Handy
    for eyeballing generated cells in tests and the REPL. *)

(** Character used for a layer. *)
val layer_char : Layer.t -> char

(** [render ~grid boxes] — [grid] is centimicrons per character cell
    (default 250 = 1λ).  Returns rows from top to bottom. *)
val render : ?grid:int -> (Layer.t * Box.t) list -> string list

val render_design : ?grid:int -> Ace_cif.Design.t -> string list

val to_string : string list -> string
