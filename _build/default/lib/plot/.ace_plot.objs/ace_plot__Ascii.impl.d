lib/plot/ascii.ml: Ace_cif Ace_geom Ace_tech Array Box Layer List String
