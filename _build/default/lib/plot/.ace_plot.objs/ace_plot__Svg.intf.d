lib/plot/svg.mli: Ace_cif Ace_geom Ace_tech Box Layer
