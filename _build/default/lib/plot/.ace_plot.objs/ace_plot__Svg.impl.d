lib/plot/svg.ml: Ace_cif Ace_geom Ace_tech Box Buffer Layer List Point Printf
