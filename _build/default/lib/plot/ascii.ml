open Ace_geom
open Ace_tech

let layer_char = function
  | Layer.Diffusion -> 'd'
  | Layer.Poly -> 'p'
  | Layer.Metal -> 'm'
  | Layer.Contact -> '#'
  | Layer.Implant -> 'i'
  | Layer.Buried -> 'b'
  | Layer.Glass -> 'g'

(* cell classification priority; a diffusion∧poly crossing shows as the
   transistor channel 'X' *)
let char_of_mask mask =
  let has lyr = mask land (1 lsl Layer.index lyr) <> 0 in
  if has Layer.Contact then '#'
  else if has Layer.Diffusion && has Layer.Poly && not (has Layer.Buried) then
    'X'
  else if has Layer.Buried && has Layer.Diffusion && has Layer.Poly then 'B'
  else if has Layer.Metal then 'm'
  else if has Layer.Poly then 'p'
  else if has Layer.Diffusion then 'd'
  else if has Layer.Implant then 'i'
  else if has Layer.Glass then 'g'
  else ' '

let render ?(grid = 250) boxes =
  match Box.hull_list (List.map snd boxes) with
  | None -> []
  | Some bbox ->
      let floor_div a b = if a >= 0 then a / b else -(((-a) + b - 1) / b) in
      let ceil_div a b = -floor_div (-a) b in
      let x0 = floor_div bbox.Box.l grid and y0 = floor_div bbox.Box.b grid in
      let x1 = ceil_div bbox.Box.r grid and y1 = ceil_div bbox.Box.t grid in
      let gw = x1 - x0 and gh = y1 - y0 in
      let masks = Array.make (gw * gh) 0 in
      List.iter
        (fun (lyr, (bx : Box.t)) ->
          let cl = max 0 (floor_div bx.l grid - x0)
          and cr = min gw (ceil_div bx.r grid - x0)
          and cb = max 0 (floor_div bx.b grid - y0)
          and ct = min gh (ceil_div bx.t grid - y0) in
          for y = cb to ct - 1 do
            for x = cl to cr - 1 do
              masks.((y * gw) + x) <-
                masks.((y * gw) + x) lor (1 lsl Layer.index lyr)
            done
          done)
        boxes;
      List.init gh (fun row ->
          let y = gh - 1 - row in
          String.init gw (fun x -> char_of_mask masks.((y * gw) + x)))

let render_design ?grid design = render ?grid (Ace_cif.Flatten.flatten design)
let to_string rows = String.concat "\n" rows ^ "\n"
