open Ace_geom
open Ace_tech

(** SVG rendering of layouts.

    The Berkeley comparator in ACE Table 5-2 was literally called
    "cifplot" — plotting was the other half of 1980s artwork analysis.
    This renderer draws each mask layer as translucent rectangles in the
    conventional NMOS colors (diffusion green, poly red, metal blue,
    implant yellow, buried brown, cuts black) with labels as text. *)

(** Hex fill and opacity of a layer. *)
val layer_color : Layer.t -> string * float

(** [render design] — the full chip as an SVG document string.  [scale]
    is output pixels per λ (default 4); layers are painted in
    back-to-front order so cuts stay visible. *)
val render : ?scale:float -> Ace_cif.Design.t -> string

(** Render a raw box list with optional labels. *)
val render_boxes :
  ?scale:float ->
  ?labels:Ace_cif.Design.label list ->
  ?lambda:int ->
  (Layer.t * Box.t) list ->
  string

val to_file : string -> string -> unit
