lib/hext/content.ml: Ace_cif Ace_geom Ace_tech Box Hashtbl Int Interval Layer List Point Stdlib Transform
