lib/hext/content.mli: Ace_cif Ace_geom Ace_tech Box Layer Transform
