lib/hext/fragment.mli: Ace_cif Ace_core Ace_geom Ace_netlist Ace_tech Box Hier Interval Layer Point
