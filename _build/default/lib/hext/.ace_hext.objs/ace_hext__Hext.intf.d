lib/hext/hext.mli: Ace_cif Ace_netlist Circuit Hier
