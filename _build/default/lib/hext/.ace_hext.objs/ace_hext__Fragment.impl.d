lib/hext/fragment.ml: Ace_cif Ace_core Ace_geom Ace_netlist Ace_tech Array Box Circuit Format Hashtbl Hier Int Interval Layer List Nmos Point Printf String Sys Union_find
