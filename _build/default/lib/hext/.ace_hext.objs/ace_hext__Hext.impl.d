lib/hext/hext.ml: Ace_cif Ace_geom Ace_netlist Circuit Content Fragment Hashtbl Hier List Point Unix
