open Ace_geom
open Ace_tech

type item =
  | Geometry of Layer.t * Box.t
  | Label of Ace_cif.Design.label
  | Instance of int * Transform.t

type window = { area : Box.t; items : item list }

let instance_bbox design sym tr =
  match Ace_cif.Design.symbol_bbox design sym with
  | None -> None
  | Some bb -> Some (Transform.apply_box tr bb)

let of_design design =
  match Ace_cif.Design.bbox design with
  | None -> None
  | Some area ->
      let quantum = Ace_cif.Design.quantum design in
      let items =
        List.concat_map
          (fun el ->
            match el with
            | Ace_cif.Ast.Shape { layer; shape } -> (
                match Ace_cif.Design.resolve_layer layer with
                | None -> []
                | Some lyr ->
                    List.map
                      (fun bx -> Geometry (lyr, bx))
                      (Ace_cif.Shapes.boxes_of_shape ~quantum shape))
            | Ace_cif.Ast.Call { symbol; ops } ->
                [ Instance (symbol, Ace_cif.Design.transform_of_ops ops) ]
            | Ace_cif.Ast.Label { name; position; layer } ->
                [
                  Label
                    {
                      Ace_cif.Design.name;
                      position;
                      layer =
                        (match layer with
                        | None -> None
                        | Some l -> Ace_cif.Design.resolve_layer l);
                    };
                ]
            | Ace_cif.Ast.Comment_ext _ -> [])
          (Ace_cif.Design.ast design).Ace_cif.Ast.top_level
      in
      Some { area; items }

(* ------------------------------------------------------------------ *)
(* Canonical form: origin-normalized, sorted                            *)
(* ------------------------------------------------------------------ *)

type canonical = { c_width : int; c_height : int; c_items : item list }

let translate_item ~dx ~dy = function
  | Geometry (lyr, bx) -> Geometry (lyr, Box.translate bx ~dx ~dy)
  | Label lab ->
      Label
        {
          lab with
          Ace_cif.Design.position =
            Point.add lab.Ace_cif.Design.position (Point.make dx dy);
        }
  | Instance (sym, tr) ->
      Instance (sym, Transform.compose (Transform.translation ~dx ~dy) tr)

let canonicalize w =
  let dx = -w.area.Box.l and dy = -w.area.Box.b in
  let items = List.map (translate_item ~dx ~dy) w.items in
  {
    c_width = Box.width w.area;
    c_height = Box.height w.area;
    c_items = List.sort Stdlib.compare items;
  }

let canonical_equal (a : canonical) b = a = b
let canonical_hash (c : canonical) = Hashtbl.hash_param 100 1000 c

let has_instances w =
  List.exists (function Instance _ -> true | Geometry _ | Label _ -> false) w.items

let box_count w =
  List.fold_left
    (fun acc -> function Geometry _ -> acc + 1 | Label _ | Instance _ -> acc)
    0 w.items

(* ------------------------------------------------------------------ *)
(* Cut selection                                                        *)
(* ------------------------------------------------------------------ *)

type cut = Vertical of int | Horizontal of int

(* A vertical cut at x is invalid if an instance bbox or a contact-cut box
   strictly straddles it; a horizontal cut only minds instances.  Blocked
   zones are merged into interval sets so validity checks are a membership
   test rather than a scan (keeps cut selection O(k log k)). *)
let choose_cut design w =
  let xs_blocked = ref []
  and ys_blocked = ref []
  and cut_spans = ref []
  and xs = ref []
  and ys = ref [] in
  let candidate_box (bx : Box.t) =
    xs := bx.l :: bx.r :: !xs;
    ys := bx.b :: bx.t :: !ys
  in
  List.iter
    (fun item ->
      match item with
      | Instance (sym, tr) -> (
          match instance_bbox design sym tr with
          | None -> ()
          | Some bb ->
              candidate_box bb;
              (* strictly-inside zone: x invalid iff l < x < r *)
              xs_blocked := (bb.Box.l + 1, bb.Box.r) :: !xs_blocked;
              ys_blocked := (bb.Box.b + 1, bb.Box.t) :: !ys_blocked)
      | Geometry (Layer.Contact, bx) ->
          candidate_box bx;
          cut_spans := (bx.Box.l, bx.Box.r) :: !cut_spans
      | Geometry
          ( ( Layer.Diffusion | Layer.Poly | Layer.Metal | Layer.Implant
            | Layer.Buried | Layer.Glass ),
            bx ) ->
          candidate_box bx
      | Label _ -> ())
    w.items;
  (* Abutting contact cuts merge into one bridging interval inside a strip,
     so a vertical line through the interior of the *merged* x-extent of
     the cut layer could split a bridge the flat extractor sees.  Merging
     all cut spans regardless of y is conservative (it may reject some
     workable cuts) but never unsound. *)
  List.iter
    (fun (s : Interval.span) -> xs_blocked := (s.lo + 1, s.hi) :: !xs_blocked)
    (Interval.of_spans !cut_spans);
  let xs_blocked = Interval.of_spans !xs_blocked
  and ys_blocked = Interval.of_spans !ys_blocked in
  let midx = (w.area.Box.l + w.area.Box.r) / 2
  and midy = (w.area.Box.b + w.area.Box.t) / 2 in
  (* two-pointer sweep: candidates and blocked spans are both sorted *)
  let best_of candidates ~blocked ~lo ~hi ~mid =
    let rec go best cands blocked =
      match cands with
      | [] -> best
      | v :: rest -> (
          match blocked with
          | (s : Interval.span) :: btl when s.hi <= v -> go best cands btl
          | (s : Interval.span) :: _ when s.lo <= v -> go best rest blocked
          | _ ->
              let best =
                if v <= lo || v >= hi then best
                else
                  match best with
                  | Some b when abs (b - mid) <= abs (v - mid) -> best
                  | Some _ | None -> Some v
              in
              go best rest blocked)
    in
    go None (List.sort_uniq Int.compare candidates) blocked
  in
  let bx =
    best_of !xs ~blocked:xs_blocked ~lo:w.area.Box.l ~hi:w.area.Box.r ~mid:midx
  and by =
    best_of !ys ~blocked:ys_blocked ~lo:w.area.Box.b ~hi:w.area.Box.t ~mid:midy
  in
  (* normalized distance to the middle decides between the orientations *)
  let score_x x =
    float_of_int (abs (x - midx)) /. float_of_int (max 1 (Box.width w.area))
  and score_y y =
    float_of_int (abs (y - midy)) /. float_of_int (max 1 (Box.height w.area))
  in
  match (bx, by) with
  | None, None -> None
  | Some x, None -> Some (Vertical x)
  | None, Some y -> Some (Horizontal y)
  | Some x, Some y ->
      if score_x x <= score_y y then Some (Vertical x) else Some (Horizontal y)

let split design w cut =
  let low_area, high_area =
    match cut with
    | Vertical x ->
        ( Box.make ~l:w.area.Box.l ~b:w.area.Box.b ~r:x ~t:w.area.Box.t,
          Box.make ~l:x ~b:w.area.Box.b ~r:w.area.Box.r ~t:w.area.Box.t )
    | Horizontal y ->
        ( Box.make ~l:w.area.Box.l ~b:w.area.Box.b ~r:w.area.Box.r ~t:y,
          Box.make ~l:w.area.Box.l ~b:y ~r:w.area.Box.r ~t:w.area.Box.t )
  in
  let low = ref [] and high = ref [] in
  List.iter
    (fun item ->
      match item with
      | Geometry (lyr, bx) ->
          (match Box.clip bx ~window:low_area with
          | Some c -> low := Geometry (lyr, c) :: !low
          | None -> ());
          (match Box.clip bx ~window:high_area with
          | Some c -> high := Geometry (lyr, c) :: !high
          | None -> ())
      | Label lab ->
          if Box.contains_point low_area lab.Ace_cif.Design.position then
            low := item :: !low
          else high := item :: !high
      | Instance (sym, tr) -> (
          (* valid cuts never straddle an instance: the whole bbox lies on
             one side *)
          match instance_bbox design sym tr with
          | None -> () (* empty symbol contributes nothing *)
          | Some bb -> (
              match cut with
              | Vertical x ->
                  if bb.Box.r <= x then low := item :: !low
                  else high := item :: !high
              | Horizontal y ->
                  if bb.Box.t <= y then low := item :: !low
                  else high := item :: !high)))
    w.items;
  ({ area = low_area; items = !low }, { area = high_area; items = !high })

let expand_instances design w =
  let quantum = Ace_cif.Design.quantum design in
  let items =
    List.concat_map
      (fun item ->
        match item with
        | Geometry _ | Label _ -> [ item ]
        | Instance (sym, tr) ->
            List.concat_map
              (fun el ->
                match el with
                | Ace_cif.Ast.Shape { layer; shape } -> (
                    match Ace_cif.Design.resolve_layer layer with
                    | None -> []
                    | Some lyr ->
                        List.filter_map
                          (fun bx ->
                            match
                              Box.clip (Transform.apply_box tr bx) ~window:w.area
                            with
                            | Some c -> Some (Geometry (lyr, c))
                            | None -> None)
                          (Ace_cif.Shapes.boxes_of_shape ~quantum shape))
                | Ace_cif.Ast.Call { symbol; ops } ->
                    [
                      Instance
                        ( symbol,
                          Transform.compose tr
                            (Ace_cif.Design.transform_of_ops ops) );
                    ]
                | Ace_cif.Ast.Label { name; position; layer } ->
                    [
                      Label
                        {
                          Ace_cif.Design.name;
                          position = Transform.apply tr position;
                          layer =
                            (match layer with
                            | None -> None
                            | Some l -> Ace_cif.Design.resolve_layer l);
                        };
                    ]
                | Ace_cif.Ast.Comment_ext _ -> [])
              (Ace_cif.Design.symbol design sym).Ace_cif.Ast.elements)
      w.items
  in
  { w with items }
