open Ace_geom
open Ace_tech

(** Window contents and the guillotine partitioner (HEXT's front-end).

    A window is a rectangle of the chip holding geometry boxes, labels and
    (unexpanded) symbol instances.  The partitioner repeatedly:

    - {e recognizes redundant windows} via a canonical form (HEXT §3:
      "the front-end remembers each unique window in a table");
    - slices a window in two along a cut line chosen from instance
      bounding-box edges — geometry is split at the line, instances never
      are (this realizes the paper's disjoint transformation with only
      simple windows, so {!Fragment.compose} never sees complex shapes);
    - expands instances one level when no valid cut exists (overlapping
      bounding boxes — the papers' cell-overlap problem).

    A vertical cut never crosses a contact-cut box: the contact rule
    bridges conductors {e horizontally} across the cut's extent within a
    strip, so splitting one in x could lose a connection that the flat
    extractor finds. *)

type item =
  | Geometry of Layer.t * Box.t
  | Label of Ace_cif.Design.label
  | Instance of int * Transform.t  (** symbol id, placement *)

type window = { area : Box.t; items : item list }

(** Initial window of a whole design: chip bounding box + top level. *)
val of_design : Ace_cif.Design.t -> window option

(** Origin-normalized, sorted content — equal canonical forms mean the
    windows are identical up to translation. *)
type canonical

val canonicalize : window -> canonical
val canonical_equal : canonical -> canonical -> bool
val canonical_hash : canonical -> int

val has_instances : window -> bool

(** Number of geometry boxes. *)
val box_count : window -> int

type cut = Vertical of int | Horizontal of int  (** chip coordinate *)

(** A valid guillotine cut strictly inside the window: prefers edges (of
    instance bboxes or geometry) near the middle.  [None] if nothing can
    be split. *)
val choose_cut : Ace_cif.Design.t -> window -> cut option

(** Split at a cut: geometry boxes are clipped to each side, labels
    assigned by position, instances (which never straddle a valid cut) by
    bbox.  Returns (low/left side, high/right side). *)
val split : Ace_cif.Design.t -> window -> cut -> window * window

(** Replace every instance by its symbol's contents (geometry decomposed,
    one level only), clipped to the window. *)
val expand_instances : Ace_cif.Design.t -> window -> window
