open Ace_tech

(** Convenience constructors for CIF ASTs.

    Layout generators work in λ (lambda) units; the builder scales them to
    CIF centimicrons.  All helpers produce plain {!Ace_cif.Ast} values so
    generated chips go through exactly the same front-end as file input. *)

type t

(** [create ~lambda ()] — λ in centimicrons (Mead–Conway: 250). *)
val create : ?lambda:int -> unit -> t

val lambda : t -> int

(** [box b layer ~l ~b_ ~r ~t] — a box given by edges in λ units. *)
val box : t -> Layer.t -> l:int -> b:int -> r:int -> t_:int -> Ace_cif.Ast.element

(** A label (CIF extension 94) at a λ-unit point. *)
val label : t -> string -> x:int -> y:int -> ?layer:Layer.t -> unit -> Ace_cif.Ast.element

(** Define a symbol from elements; returns its id for {!call}. *)
val symbol : t -> ?name:string -> Ace_cif.Ast.element list -> int

(** [call b id ~dx ~dy] — instantiate at a λ-unit offset. *)
val call : t -> int -> dx:int -> dy:int -> Ace_cif.Ast.element

(** Like {!call} with an arbitrary op list (offsets in λ). *)
val call_ops : t -> int -> Ace_cif.Ast.transform_op list -> Ace_cif.Ast.element

(** Translate op in λ units, for use with {!call_ops}. *)
val translate : t -> dx:int -> dy:int -> Ace_cif.Ast.transform_op

(** Finish: a file with the given top-level elements and all defined
    symbols. *)
val file : t -> Ace_cif.Ast.element list -> Ace_cif.Ast.file

(** Shorthand: build, check and wrap into a design in one step. *)
val design : t -> Ace_cif.Ast.element list -> Ace_cif.Design.t
