open Ace_tech
open Ace_geom

type t = {
  lam : int;
  mutable symbols : Ace_cif.Ast.symbol_def list;  (* reversed *)
  mutable next_id : int;
}

let create ?(lambda = 250) () =
  (* even λ keeps CIF box centers integral, so boxes round-trip exactly *)
  if lambda <= 0 || lambda mod 2 <> 0 then
    invalid_arg "Builder.create: lambda must be positive and even";
  { lam = lambda; symbols = []; next_id = 1 }

let lambda t = t.lam

let box t layer ~l ~b ~r ~t_ =
  if l >= r || b >= t_ then invalid_arg "Builder.box: degenerate box";
  let s = t.lam in
  Ace_cif.Ast.Shape
    {
      layer = Layer.to_cif_name layer;
      shape =
        Ace_cif.Ast.Box
          {
            length = (r - l) * s;
            width = (t_ - b) * s;
            center = Point.make ((l + r) * s / 2) ((b + t_) * s / 2);
            direction = None;
          };
    }

let label t name ~x ~y ?layer () =
  Ace_cif.Ast.Label
    {
      name;
      position = Point.make (x * t.lam) (y * t.lam);
      layer = Option.map Layer.to_cif_name layer;
    }

let symbol t ?name elements =
  let id = t.next_id in
  t.next_id <- id + 1;
  t.symbols <- { Ace_cif.Ast.id; name; elements } :: t.symbols;
  id

let translate t ~dx ~dy = Ace_cif.Ast.Translate (dx * t.lam, dy * t.lam)

let call_ops _t id ops = Ace_cif.Ast.Call { symbol = id; ops }

let call t id ~dx ~dy = call_ops t id [ translate t ~dx ~dy ]

let file t top_level =
  { Ace_cif.Ast.symbols = List.rev t.symbols; top_level }

let design t top_level = Ace_cif.Design.of_ast (file t top_level)
