(** Regular arrays — the workloads of HEXT §4 and ACE's testram analogue.

    [square_array_tree] builds the exact structure HEXT Table 4-1 measures:
    N identical single-transistor cells arranged as a complete binary tree
    of symbol pairings (alternating horizontal and vertical), so a
    hierarchical extractor needs only one leaf extraction plus log N
    (memoized) compose steps.

    [mesh] is the same cell array with a conventional cell/row/array
    hierarchy — the testram-style RAM core. *)

(** [square_array_tree ~lambda ~cells] — [cells] must be a power of 4. *)
val square_array_tree : ?lambda:int -> cells:int -> unit -> Ace_cif.Ast.file

(** [mesh ~rows ~cols] — rows × cols single-transistor cells. *)
val mesh : ?lambda:int -> rows:int -> cols:int -> unit -> Ace_cif.Ast.file
