let is_power_of_4 n =
  let rec go n = n = 1 || (n mod 4 = 0 && go (n / 4)) in
  n >= 1 && go n

let square_array_tree ?lambda ~cells () =
  if not (is_power_of_4 cells) then
    invalid_arg "Arrays.square_array_tree: cells must be a power of 4";
  let b = Builder.create ?lambda () in
  let pitch = Cells.array_cell_pitch in
  let cell = Builder.symbol b ~name:"cell" (Cells.array_cell b) in
  (* alternate horizontal and vertical pairing; after 2k levels the symbol
     is a 2^k × 2^k block *)
  let rec build sym level width height =
    if width * height >= cells then sym
    else if level mod 2 = 0 then
      let s =
        Builder.symbol b
          [ Builder.call b sym ~dx:0 ~dy:0;
            Builder.call b sym ~dx:(width * pitch) ~dy:0 ]
      in
      build s (level + 1) (2 * width) height
    else
      let s =
        Builder.symbol b
          [ Builder.call b sym ~dx:0 ~dy:0;
            Builder.call b sym ~dx:0 ~dy:(height * pitch) ]
      in
      build s (level + 1) width (2 * height)
  in
  let top = build cell 0 1 1 in
  Builder.file b [ Builder.call b top ~dx:0 ~dy:0 ]

let mesh ?lambda ~rows ~cols () =
  if rows <= 0 || cols <= 0 then invalid_arg "Arrays.mesh: non-positive size";
  let b = Builder.create ?lambda () in
  let pitch = Cells.array_cell_pitch in
  let cell = Builder.symbol b ~name:"cell" (Cells.array_cell b) in
  let row =
    Builder.symbol b ~name:"row"
      (List.init cols (fun i -> Builder.call b cell ~dx:(i * pitch) ~dy:0))
  in
  let array =
    Builder.symbol b ~name:"array"
      (List.init rows (fun j -> Builder.call b row ~dx:0 ~dy:(j * pitch)))
  in
  Builder.file b [ Builder.call b array ~dx:0 ~dy:0 ]
