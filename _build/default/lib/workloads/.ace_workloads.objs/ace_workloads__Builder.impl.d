lib/workloads/builder.ml: Ace_cif Ace_geom Ace_tech Layer List Option Point
