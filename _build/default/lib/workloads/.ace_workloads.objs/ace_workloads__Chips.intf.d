lib/workloads/chips.mli: Ace_cif
