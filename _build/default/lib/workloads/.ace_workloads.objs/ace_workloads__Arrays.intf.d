lib/workloads/arrays.mli: Ace_cif
