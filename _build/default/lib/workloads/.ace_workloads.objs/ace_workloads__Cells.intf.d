lib/workloads/cells.mli: Ace_cif Builder
