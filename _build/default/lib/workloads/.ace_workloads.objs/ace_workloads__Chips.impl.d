lib/workloads/chips.ml: Ace_cif Ace_tech Arrays Builder Cells Layer List
