lib/workloads/builder.mli: Ace_cif Ace_tech Layer
