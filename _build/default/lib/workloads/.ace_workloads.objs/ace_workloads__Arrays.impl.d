lib/workloads/arrays.ml: Builder Cells List
