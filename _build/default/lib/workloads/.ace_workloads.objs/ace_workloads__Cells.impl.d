lib/workloads/cells.ml: Ace_tech Builder Layer
