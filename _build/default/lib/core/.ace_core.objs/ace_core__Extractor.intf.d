lib/core/extractor.mli: Ace_cif Ace_geom Ace_netlist Ace_tech Box Circuit Engine Layer Point Timing Union_find
