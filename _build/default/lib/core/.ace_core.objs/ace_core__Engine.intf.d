lib/core/engine.mli: Ace_cif Ace_geom Ace_netlist Ace_tech Box Hashtbl Interval Layer Point Timing Union_find
