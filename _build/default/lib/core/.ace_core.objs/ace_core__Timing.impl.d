lib/core/timing.ml: Array Fun List Unix
