lib/core/extractor.ml: Ace_cif Ace_geom Ace_netlist Ace_tech Array Box Circuit Engine Hashtbl Int Layer List Nmos Point Poly String Timing Union_find
