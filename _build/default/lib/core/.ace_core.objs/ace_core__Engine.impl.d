lib/core/engine.ml: Ace_cif Ace_geom Ace_netlist Ace_tech Array Box Format Hashtbl Int Interval Layer List Point Timing Union_find
