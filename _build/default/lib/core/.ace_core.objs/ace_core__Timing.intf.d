lib/core/timing.mli:
