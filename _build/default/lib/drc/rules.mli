open Ace_tech

(** Mead–Conway λ design rules (the subset an early scanline checker
    enforced).

    All distances are multiples of λ, scaled to centimicrons via
    {!scaled}. *)

type t = {
  lambda : int;  (** centimicrons per λ *)
  min_width : (Layer.t * int) list;  (** λ units *)
  min_spacing : (Layer.t * int) list;
  cut_size : int;  (** contact cuts must be exactly this square (λ) *)
  cut_surround : int;  (** conducting material around a cut (λ) *)
  gate_overhang : int;  (** poly extension beyond the channel (λ) *)
}

(** The Mead–Conway NMOS rules: widths ND 2λ, NP 2λ, NM 3λ, NI/NB 2λ;
    spacings ND 3λ, NP 2λ, NM 3λ; 2λ×2λ cuts with 1λ surround; 2λ gate
    overhang. *)
val mead_conway : ?lambda:int -> unit -> t

(** Width rule of a layer, scaled to centimicrons (0 if unconstrained). *)
val width_of : t -> Layer.t -> int

(** Spacing rule, scaled (0 if unconstrained). *)
val spacing_of : t -> Layer.t -> int

val scaled : t -> int -> int
