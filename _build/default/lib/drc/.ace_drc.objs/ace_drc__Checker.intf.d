lib/drc/checker.mli: Ace_cif Ace_geom Ace_tech Box Format Layer Rules
