lib/drc/rules.ml: Ace_tech Layer List
