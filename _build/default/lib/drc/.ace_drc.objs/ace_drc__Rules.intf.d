lib/drc/rules.mli: Ace_tech Layer
