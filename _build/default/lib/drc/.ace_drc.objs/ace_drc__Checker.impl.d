lib/drc/checker.ml: Ace_cif Ace_geom Ace_tech Box Format Hashtbl Int Interval Layer List Printf Rules Stdlib
