open Ace_tech

type t = {
  lambda : int;
  min_width : (Layer.t * int) list;
  min_spacing : (Layer.t * int) list;
  cut_size : int;
  cut_surround : int;
  gate_overhang : int;
}

let mead_conway ?(lambda = 250) () =
  {
    lambda;
    min_width =
      [
        (Layer.Diffusion, 2); (Layer.Poly, 2); (Layer.Metal, 3);
        (Layer.Implant, 2); (Layer.Buried, 2);
      ];
    min_spacing =
      [ (Layer.Diffusion, 3); (Layer.Poly, 2); (Layer.Metal, 3) ];
    cut_size = 2;
    cut_surround = 1;
    gate_overhang = 2;
  }

let scaled t n = n * t.lambda

let width_of t layer =
  match List.assoc_opt layer t.min_width with
  | Some w -> scaled t w
  | None -> 0

let spacing_of t layer =
  match List.assoc_opt layer t.min_spacing with
  | Some s -> scaled t s
  | None -> 0
