(** Minimal S-expressions for the CMU wirelist format.

    The papers describe the wirelist format as "easy to parse and extend
    because of its LISP like syntax"; this is the LISP-like substrate:
    atoms, double-quoted strings, and parenthesized lists. *)

type t = Atom of string | Str of string | List of t list

exception Parse_error of string

val parse_string : string -> t list

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
