(** Growable disjoint-set forest (union by rank, path compression).

    The extractor creates a net for every piece of geometry that enters the
    active list independently, and merges nets as the scanline discovers
    connections — exactly the classic union-find workload.  Elements are
    dense integers handed out by {!fresh}. *)

type t

val create : unit -> t

(** Allocate a new singleton element; ids are consecutive from 0. *)
val fresh : t -> int

(** Number of elements allocated. *)
val count : t -> int

(** Representative of the element's class. *)
val find : t -> int -> int

val same : t -> int -> int -> bool

(** Merge two classes; returns the surviving representative. *)
val union : t -> int -> int -> int

(** Number of distinct classes. *)
val class_count : t -> int

(** [compress t] returns an array mapping every element to a dense class
    index in [0, class_count); representatives map to their own class. *)
val compress : t -> int array
