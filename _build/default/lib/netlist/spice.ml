open Ace_tech

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let to_string ?(gnd = "GND") (c : Circuit.t) =
  let gnd_net = try Some (Circuit.find_net c gnd) with Not_found -> None in
  let node i =
    if Some i = gnd_net then "0"
    else
      match c.Circuit.nets.(i).Circuit.names with
      | name :: _ -> sanitize name
      | [] -> Printf.sprintf "N%d" i
  in
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "* %s — extracted by ace\n" c.Circuit.name;
  Printf.bprintf buf
    ".MODEL ENH NMOS (LEVEL=1 VTO=1.0 KP=20U GAMMA=0.4 PHI=0.6)\n";
  Printf.bprintf buf
    ".MODEL DEP NMOS (LEVEL=1 VTO=-3.0 KP=20U GAMMA=0.4 PHI=0.6)\n";
  Array.iteri
    (fun i (d : Circuit.device) ->
      (* centimicrons to microns *)
      let microns v = float_of_int v /. 100.0 in
      Printf.bprintf buf "M%d %s %s %s 0 %s L=%.2fU W=%.2fU\n" i
        (node d.drain) (node d.gate) (node d.source)
        (match d.dtype with
        | Nmos.Enhancement -> "ENH"
        | Nmos.Depletion -> "DEP")
        (microns d.length) (microns d.width))
    c.Circuit.devices;
  (* a comment block mapping every named net to its node *)
  Array.iteri
    (fun i (n : Circuit.net) ->
      match n.Circuit.names with
      | [] -> ()
      | names ->
          Printf.bprintf buf "* net %s: %s\n" (node i)
            (String.concat " " names))
    c.Circuit.nets;
  Buffer.add_string buf ".END\n";
  Buffer.contents buf

let to_file ?gnd path c =
  let oc = open_out path in
  output_string oc (to_string ?gnd c);
  close_out oc

(* ------------------------------------------------------------------ *)
(* Hierarchical decks                                                   *)
(* ------------------------------------------------------------------ *)

let of_hier (h : Hier.t) =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "* hierarchical deck for %s — extracted by hext\n" h.Hier.top;
  Printf.bprintf buf
    ".MODEL ENH NMOS (LEVEL=1 VTO=1.0 KP=20U GAMMA=0.4 PHI=0.6)\n";
  Printf.bprintf buf
    ".MODEL DEP NMOS (LEVEL=1 VTO=-3.0 KP=20U GAMMA=0.4 PHI=0.6)\n";
  let node part i =
    match List.assoc_opt i part.Hier.net_names with
    | Some name -> sanitize name
    | None -> Printf.sprintf "N%d" i
  in
  let emit_body ~indent part =
    List.iteri
      (fun k (d : Hier.hdevice) ->
        let microns v = float_of_int v /. 100.0 in
        Printf.bprintf buf "%sM%d %s %s %s 0 %s L=%.2fU W=%.2fU\n" indent k
          (node part d.Hier.drain) (node part d.Hier.gate)
          (node part d.Hier.source)
          (match d.Hier.dtype with
          | Ace_tech.Nmos.Enhancement -> "ENH"
          | Ace_tech.Nmos.Depletion -> "DEP")
          (microns d.Hier.length) (microns d.Hier.width))
      part.Hier.devices;
    List.iteri
      (fun k (inst : Hier.instance) ->
        let child = Hier.part h inst.Hier.part_name in
        (* pin order = child exports; actual = parent net bound to it,
           fresh local node when unbound *)
        let actuals =
          List.map
            (fun pin ->
              match List.assoc_opt pin inst.Hier.net_map with
              | Some outer -> node part outer
              | None -> Printf.sprintf "%s_u%d" (sanitize inst.Hier.inst_name) pin)
            child.Hier.exports
        in
        Printf.bprintf buf "%sX%d_%s %s %s\n" indent k
          (sanitize inst.Hier.inst_name)
          (String.concat " " actuals)
          (sanitize inst.Hier.part_name))
      part.Hier.instances
  in
  List.iter
    (fun part ->
      if part.Hier.part_name <> h.Hier.top then begin
        Printf.bprintf buf ".SUBCKT %s %s\n"
          (sanitize part.Hier.part_name)
          (String.concat " " (List.map (node part) part.Hier.exports));
        emit_body ~indent:"  " part;
        Printf.bprintf buf ".ENDS %s\n" (sanitize part.Hier.part_name)
      end)
    h.Hier.parts;
  emit_body ~indent:"" (Hier.part h h.Hier.top);
  Buffer.add_string buf ".END\n";
  Buffer.contents buf
