(** SPICE deck generation from extracted circuits.

    The papers feed wirelists to "circuit simulators [that] help check for
    timing errors, overloading, and performance characteristics"; SPICE is
    that simulator.  This emits a level-1 NMOS deck: one [M] card per
    transistor with L/W in microns, [.MODEL] cards for the enhancement and
    depletion devices, and the GND net mapped to node 0. *)

(** [to_string ?gnd circuit] — [gnd] (default "GND") becomes node 0.
    Net names are sanitized to SPICE-safe identifiers; anonymous nets use
    their index. *)
val to_string : ?gnd:string -> Circuit.t -> string

val to_file : ?gnd:string -> string -> Circuit.t -> unit

(** Hierarchical deck: one [.SUBCKT] per part (pins = its exported nets),
    [X] cards for part instances, [M] cards for transistors; the top part's
    contents appear at the deck's top level. *)
val of_hier : Hier.t -> string
