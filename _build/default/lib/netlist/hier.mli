open Ace_geom
open Ace_tech

(** Hierarchical wirelists — HEXT's output model (paper Figure 2-2).

    A hierarchy is a list of parts in dependency order (leaves first).  Each
    part owns [net_count] local nets (indices [0 .. net_count-1]), a subset
    of which are exported; it contains primitive transistors and instances
    of earlier parts.  An instance binds child nets to parent nets through
    [net_map] — the figure's [(Net P1/N3 N16)] equivalences — and places the
    child at [offset] ([LocOffset]).

    Composite parts store only references to their children (the paper:
    "the resulting new window does not copy the contents of its component
    windows, but simply stores pointers to them"); {!flatten} instantiates
    the whole tree into a flat {!Circuit.t}. *)

type hdevice = {
  dtype : Nmos.device_type;
  gate : int;
  source : int;
  drain : int;
  length : int;
  width : int;
  location : Point.t;
}

type instance = {
  part_name : string;
  inst_name : string;
  offset : Point.t;
  net_map : (int * int) list;  (** (child-local net, parent-local net) *)
}

type part = {
  part_name : string;
  net_count : int;
  exports : int list;
  net_names : (int * string) list;
  devices : hdevice list;
  instances : instance list;
}

type t = { parts : part list; top : string }

exception Error of string

(** Find a part by name; raises {!Error}. *)
val part : t -> string -> part

(** Structural checks: top exists, instances reference earlier parts only,
    net indices in range, net maps bind exported child nets.  Returns
    problems (empty = valid). *)
val validate : t -> string list

(** Total device count of the full expansion (without expanding). *)
val flat_device_count : t -> int

(** Expand the hierarchy into a flat circuit.  Instance offsets accumulate
    into device locations; net names propagate through bindings. *)
val flatten : t -> Circuit.t

(** Render in the Figure 2-2 dialect. *)
val to_string : t -> string

(** Parse the Figure 2-2 dialect back.  Raises {!Error}. *)
val of_string : string -> t
