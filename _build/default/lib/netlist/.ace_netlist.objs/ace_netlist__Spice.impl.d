lib/netlist/spice.ml: Ace_tech Array Buffer Circuit Hier List Nmos Printf String
