lib/netlist/compare.mli: Circuit
