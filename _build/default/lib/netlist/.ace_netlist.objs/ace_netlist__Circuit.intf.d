lib/netlist/circuit.mli: Ace_geom Ace_tech Box Format Layer Nmos Point
