lib/netlist/compare.ml: Ace_tech Array Circuit Hashtbl Int List Printf
