lib/netlist/union_find.ml: Array
