lib/netlist/sexp.mli: Buffer
