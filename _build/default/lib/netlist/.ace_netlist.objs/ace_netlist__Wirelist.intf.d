lib/netlist/wirelist.mli: Ace_geom Ace_tech Box Circuit Layer
