lib/netlist/sexp.ml: Buffer List String
