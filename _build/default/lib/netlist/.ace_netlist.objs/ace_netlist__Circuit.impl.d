lib/netlist/circuit.ml: Ace_geom Ace_tech Array Box Format Layer List Nmos Point Printf
