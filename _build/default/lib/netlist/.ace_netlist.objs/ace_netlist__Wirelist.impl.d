lib/netlist/wirelist.ml: Ace_geom Ace_tech Array Box Buffer Circuit Format Hashtbl Int Layer List Nmos Option Point Printf Sexp String
