lib/netlist/hier.mli: Ace_geom Ace_tech Circuit Nmos Point
