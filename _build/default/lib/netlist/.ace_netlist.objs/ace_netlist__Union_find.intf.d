lib/netlist/union_find.mli:
