lib/netlist/spice.mli: Circuit Hier
