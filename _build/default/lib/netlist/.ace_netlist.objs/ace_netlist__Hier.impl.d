lib/netlist/hier.ml: Ace_geom Ace_tech Array Buffer Circuit Format Hashtbl List Nmos Point Printf Sexp String Union_find
