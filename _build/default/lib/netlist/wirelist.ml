open Ace_geom
open Ace_tech

exception Error of string

let fail fmt = Format.kasprintf (fun m -> raise (Error m)) fmt

module Geometry_text = struct
  let layer_name = function
    | None -> "NX"
    | Some lyr -> Layer.to_cif_name lyr

  let to_string boxes =
    let buf = Buffer.create 128 in
    Buffer.add_string buf " ";
    List.iter
      (fun (lyr, (bx : Box.t)) ->
        let c = Box.center bx in
        Printf.bprintf buf "L %s; B L%d W%d C%d %d; " (layer_name lyr)
          (Box.width bx) (Box.height bx) c.Point.x c.Point.y)
      boxes;
    Buffer.contents buf

  (* Tokenize on blanks and ';', honoring the L/W/C prefixes of the
     figures' dialect. *)
  let of_string text =
    let commands =
      String.split_on_char ';' text
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    let current_layer = ref None in
    let strip_prefix p s =
      if String.length s > 0 && s.[0] = p then
        String.sub s 1 (String.length s - 1)
      else s
    in
    List.filter_map
      (fun cmd ->
        let words =
          String.split_on_char ' ' cmd |> List.filter (fun s -> s <> "")
        in
        match words with
        | [ "L"; name ] ->
            current_layer :=
              Some (if name = "NX" then None else Layer.of_cif_name name);
            None
        | "B" :: rest -> (
            match rest with
            | [ lw; ww; cx; cy ] ->
                let parse_int what s =
                  match int_of_string_opt s with
                  | Some n -> n
                  | None -> fail "bad %s %S in geometry" what s
                in
                let w = parse_int "length" (strip_prefix 'L' lw) in
                let h = parse_int "width" (strip_prefix 'W' ww) in
                let x = parse_int "center x" (strip_prefix 'C' cx) in
                let y = parse_int "center y" cy in
                let layer =
                  match !current_layer with
                  | None -> fail "geometry box before any L command"
                  | Some (Some lyr) -> Some lyr
                  | Some None -> None
                in
                Some (layer, Box.of_center_size ~cx:x ~cy:y ~w ~h)
            | _ -> fail "malformed B command in geometry: %S" cmd)
        | _ -> fail "unknown geometry command %S" cmd)
      commands
end

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let net_id i = Printf.sprintf "N%d" i

let to_buffer ?(emit_geometry = false) buf (c : Circuit.t) =
  let pr fmt = Printf.bprintf buf fmt in
  pr "(DefPart %S\n" c.name;
  pr "(DefPart nEnh (Export Source Gate Drain))\n";
  pr "(DefPart nDep (Export Source Gate Drain))\n";
  Array.iteri
    (fun i (d : Circuit.device) ->
      pr "(Part %s (InstName D%d) (Location %d %d)\n"
        (Nmos.device_type_name d.dtype)
        i d.location.Point.x d.location.Point.y;
      pr " (T Gate %s) (T Source %s) (T Drain %s)\n" (net_id d.gate)
        (net_id d.source) (net_id d.drain);
      pr " (Channel (Length %d) (Width %d)" d.length d.width;
      if emit_geometry && d.geometry <> [] then
        pr "\n  ( CIF \"%s\")"
          (Geometry_text.to_string
             (List.map (fun (_, bx) -> (None, bx)) d.geometry));
      pr "))\n")
    c.devices;
  Array.iteri
    (fun i (n : Circuit.net) ->
      pr "(Net %s" (net_id i);
      List.iter (fun name -> pr " %s" name) n.names;
      pr " (Location %d %d)" n.location.Point.x n.location.Point.y;
      if emit_geometry && n.geometry <> [] then
        pr "\n ( CIF \"%s\")"
          (Geometry_text.to_string
             (List.map (fun (lyr, bx) -> (Some lyr, bx)) n.geometry));
      pr ")\n")
    c.nets;
  pr "(Local";
  Array.iteri (fun i _ -> pr " %s" (net_id i)) c.nets;
  pr "))\n"

let to_string ?emit_geometry c =
  let buf = Buffer.create 4096 in
  to_buffer ?emit_geometry buf c;
  Buffer.contents buf

let to_channel ?emit_geometry oc c = output_string oc (to_string ?emit_geometry c)

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

let parse_net_index atom =
  if String.length atom >= 2 && atom.[0] = 'N' then
    match int_of_string_opt (String.sub atom 1 (String.length atom - 1)) with
    | Some n -> n
    | None -> fail "bad net id %S" atom
  else fail "bad net id %S" atom

let atom = function
  | Sexp.Atom a -> a
  | s -> fail "expected an atom, got %s" (Sexp.to_string s)

let int_atom s =
  match int_of_string_opt (atom s) with
  | Some n -> n
  | None -> fail "expected an integer, got %s" (Sexp.to_string s)

let find_clause name items =
  List.find_map
    (function
      | Sexp.List (Sexp.Atom head :: rest) when head = name -> Some rest
      | _ -> None)
    items

let location_of items =
  match find_clause "Location" items with
  | Some [ x; y ] -> Point.make (int_atom x) (int_atom y)
  | Some _ -> fail "malformed Location clause"
  | None -> Point.origin

let cif_geometry_of items =
  (* ( CIF "..." ) — CIF appears as an atom inside a list *)
  List.find_map
    (function
      | Sexp.List [ Sexp.Atom "CIF"; Sexp.Str text ] ->
          Some (Geometry_text.of_string text)
      | _ -> None)
    items

let terminal_bindings items =
  List.filter_map
    (function
      | Sexp.List [ Sexp.Atom "T"; Sexp.Atom role; Sexp.Atom net ] ->
          Some (role, parse_net_index net)
      | _ -> None)
    items

type pre_device = {
  pd_type : Nmos.device_type;
  pd_gate : int;
  pd_source : int;
  pd_drain : int;
  pd_length : int;
  pd_width : int;
  pd_location : Point.t;
  pd_geometry : (Layer.t option * Box.t) list;
}

type pre_net = {
  pn_id : int;
  pn_names : string list;
  pn_location : Point.t;
  pn_geometry : (Layer.t option * Box.t) list;
}

let parse_part items =
  match items with
  | Sexp.Atom type_name :: rest ->
      let pd_type =
        match type_name with
        | "nEnh" -> Nmos.Enhancement
        | "nDep" -> Nmos.Depletion
        | other -> fail "unknown part type %S" other
      in
      let terminals = terminal_bindings rest in
      let terminal role =
        match List.assoc_opt role terminals with
        | Some n -> n
        | None -> fail "part missing terminal %s" role
      in
      let channel =
        match find_clause "Channel" rest with
        | Some c -> c
        | None -> fail "part missing Channel clause"
      in
      let dim name =
        match find_clause name channel with
        | Some [ v ] -> int_atom v
        | Some _ | None -> fail "channel missing %s" name
      in
      {
        pd_type;
        pd_gate = terminal "Gate";
        pd_source = terminal "Source";
        pd_drain = terminal "Drain";
        pd_length = dim "Length";
        pd_width = dim "Width";
        pd_location = location_of rest;
        pd_geometry = Option.value ~default:[] (cif_geometry_of channel);
      }
  | _ -> fail "malformed Part"

let parse_net items =
  match items with
  | Sexp.Atom id :: rest ->
      let pn_id = parse_net_index id in
      let names =
        let rec take = function
          | Sexp.Atom name :: more -> name :: take more
          | _ -> []
        in
        take rest
      in
      {
        pn_id;
        pn_names = names;
        pn_location = location_of rest;
        pn_geometry = Option.value ~default:[] (cif_geometry_of rest);
      }
  | _ -> fail "malformed Net"

let of_string text =
  let sexps =
    try Sexp.parse_string text
    with Sexp.Parse_error m -> fail "s-expression error: %s" m
  in
  match sexps with
  | [ Sexp.List (Sexp.Atom "DefPart" :: Sexp.Str name :: body) ] ->
      let devices = ref [] and nets = ref [] in
      List.iter
        (function
          | Sexp.List (Sexp.Atom "DefPart" :: _) -> () (* nEnh/nDep decls *)
          | Sexp.List (Sexp.Atom "Part" :: items) ->
              devices := parse_part items :: !devices
          | Sexp.List (Sexp.Atom "Net" :: items) ->
              nets := parse_net items :: !nets
          | Sexp.List (Sexp.Atom "Local" :: _) -> ()
          | other -> fail "unexpected wirelist item %s" (Sexp.to_string other))
        body;
      let devices = List.rev !devices and nets = List.rev !nets in
      (* Net ids may be sparse in handwritten files: build a dense map. *)
      let mentioned = Hashtbl.create 64 in
      let mention id = Hashtbl.replace mentioned id () in
      List.iter
        (fun d ->
          mention d.pd_gate;
          mention d.pd_source;
          mention d.pd_drain)
        devices;
      List.iter (fun n -> mention n.pn_id) nets;
      let ids = Hashtbl.fold (fun id () acc -> id :: acc) mentioned [] in
      let ids = List.sort Int.compare ids in
      let dense = Hashtbl.create 64 in
      List.iteri (fun i id -> Hashtbl.replace dense id i) ids;
      let map id = Hashtbl.find dense id in
      let net_array =
        Array.of_list
          (List.map
             (fun id ->
               match
                 List.find_opt (fun n -> n.pn_id = id) nets
               with
               | Some n ->
                   {
                     Circuit.names = n.pn_names;
                     location = n.pn_location;
                     geometry =
                       List.filter_map
                         (fun (lyr, bx) ->
                           match lyr with
                           | Some l -> Some (l, bx)
                           | None -> None)
                         n.pn_geometry;
                   }
               | None ->
                   { Circuit.names = []; location = Point.origin; geometry = [] })
             ids)
      in
      let device_array =
        Array.of_list
          (List.map
             (fun d ->
               {
                 Circuit.dtype = d.pd_type;
                 gate = map d.pd_gate;
                 source = map d.pd_source;
                 drain = map d.pd_drain;
                 length = d.pd_length;
                 width = d.pd_width;
                 location = d.pd_location;
                 geometry =
                   List.map
                     (fun (_, bx) -> (Layer.Diffusion, bx))
                     d.pd_geometry;
               })
             devices)
      in
      { Circuit.name; devices = device_array; nets = net_array }
  | _ -> fail "expected a single (DefPart \"name\" ...) form"
