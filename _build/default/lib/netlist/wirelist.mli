open Ace_geom
open Ace_tech

(** The CMU hierarchical wirelist format (Frank/Ebeling/Sproull, V085) —
    flat-circuit reader and writer.

    Reproduces the exact shape of the paper's Figure 3-4:

    {v
    (DefPart "inverter.cif"
    (DefPart nEnh (Export Source Gate Drain))
    (DefPart nDep (Export Source Gate Drain))
    (Part nEnh (InstName D0) (Location -800 -400)
     (T Gate N9) (T Source N5) (T Drain N11)
     (Channel (Length 400) (Width 2800)
      ( CIF " L NX; B L400 W1200 C-600 -1400; ")))
    (Net N5 OUT (Location -800 2800) ( CIF " ... "))
    (Local N2 N5 N9 N11))
    v}

    Geometry strings use the figure's mini-CIF dialect ([B L… W… C… …]) and
    the pseudo-layer [NX] for transistor channels.  [to_string] followed by
    [of_string] is the identity on circuits (round-trip property, tested);
    geometry strings survive when [emit_geometry] was set. *)

(** [to_string ?emit_geometry circuit] renders the wirelist.  Geometry is
    suppressed by default, like the paper's normal operation. *)
val to_string : ?emit_geometry:bool -> Circuit.t -> string

val to_channel : ?emit_geometry:bool -> out_channel -> Circuit.t -> unit

exception Error of string

(** Parse a flat wirelist back into a circuit.  Raises {!Error}. *)
val of_string : string -> Circuit.t

(** The mini-CIF geometry dialect of the figures.  [None] as a layer stands
    for the figures' pseudo-layer [NX] (transistor channel). *)
module Geometry_text : sig
  val to_string : (Layer.t option * Box.t) list -> string

  val of_string : string -> (Layer.t option * Box.t) list
end
