type t = Atom of string | Str of string | List of t list

exception Parse_error of string

let parse_string src =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let advance () = incr pos in
  let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
  let rec skip_space () =
    match peek () with
    | Some c when is_space c ->
        advance ();
        skip_space ()
    | _ -> ()
  in
  let read_string () =
    advance ();
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> raise (Parse_error "unterminated string")
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some c ->
              Buffer.add_char buf c;
              advance ()
          | None -> raise (Parse_error "dangling escape"));
          go ()
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Str (Buffer.contents buf)
  in
  let read_atom () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some c when (not (is_space c)) && c <> '(' && c <> ')' && c <> '"' ->
          advance ();
          go ()
      | _ -> ()
    in
    go ();
    Atom (String.sub src start (!pos - start))
  in
  let rec read_sexp () =
    skip_space ();
    match peek () with
    | None -> raise (Parse_error "unexpected end of input")
    | Some '(' ->
        advance ();
        let items = ref [] in
        let rec loop () =
          skip_space ();
          match peek () with
          | None -> raise (Parse_error "unterminated list")
          | Some ')' -> advance ()
          | Some _ ->
              items := read_sexp () :: !items;
              loop ()
        in
        loop ();
        List (List.rev !items)
    | Some '"' -> read_string ()
    | Some ')' -> raise (Parse_error "unexpected ')'")
    | Some _ -> read_atom ()
  in
  let result = ref [] in
  let rec top () =
    skip_space ();
    if !pos < n then begin
      result := read_sexp () :: !result;
      top ()
    end
  in
  top ();
  List.rev !result

let rec to_buffer buf = function
  | Atom a -> Buffer.add_string buf a
  | Str s ->
      Buffer.add_char buf '"';
      String.iter
        (fun c ->
          if c = '"' || c = '\\' then Buffer.add_char buf '\\';
          Buffer.add_char buf c)
        s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '(';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ' ';
          to_buffer buf item)
        items;
      Buffer.add_char buf ')'

let to_string sexp =
  let buf = Buffer.create 256 in
  to_buffer buf sexp;
  Buffer.contents buf
