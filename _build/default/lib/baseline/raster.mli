open Ace_geom
open Ace_tech

(** Fixed-grid raster-scan extractor — the Partlist comparator of ACE
    Table 5-2.

    "The chip is examined in a raster-scan order (left to right, top to
    bottom) looking through an L-shaped window containing three raster
    elements" (ACE §2).  The layout is rasterized onto a λ grid; each grid
    square is classified from the seven mask bitmaps, and connectivity
    follows from the left and upper neighbours only.  Cost is proportional
    to chip {e area} in grid squares — which is why ACE beats it: an
    edge-based extractor "does work only at the edges of a box as compared
    to a raster-based extractor which must visit each and every grid square
    spanned by the box".

    Produces circuits equivalent to {!Ace_core.Extractor}'s on λ-aligned
    layouts (tested), including identical L/W values. *)

type stats = {
  grid_width : int;
  grid_height : int;
  squares_visited : int;
}

(** [extract ~grid design] — [grid] is the raster pitch in centimicrons and
    must divide all geometry coordinates (default: 125 = λ/2 for the
    standard builder λ of 250). *)
val extract :
  ?grid:int -> ?name:string -> Ace_cif.Design.t -> Ace_netlist.Circuit.t

val extract_with_stats :
  ?grid:int ->
  ?name:string ->
  Ace_cif.Design.t ->
  Ace_netlist.Circuit.t * stats

(** Box-list entry point for tests. *)
val extract_boxes :
  ?grid:int ->
  ?name:string ->
  ?labels:Ace_cif.Design.label list ->
  (Layer.t * Box.t) list ->
  Ace_netlist.Circuit.t
