open Ace_geom
open Ace_tech

(** Non-incremental flat extractor — the Cifplot comparator of ACE
    Table 5-2.

    Same strip decomposition as the scanline engine, but with none of ACE's
    incremental machinery: at every scanline stop the active set is
    recomputed by scanning the {e entire} box list, giving
    O(N × stops) ≈ O(N^1.5) behaviour.  Produces circuits equivalent to
    {!Ace_core.Extractor}'s (tested); exists so the benchmark can reproduce
    the growing gap in the paper's comparison table. *)

type stats = { stops : int; boxes_scanned : int }

val extract :
  ?name:string -> Ace_cif.Design.t -> Ace_netlist.Circuit.t

val extract_with_stats :
  ?name:string -> Ace_cif.Design.t -> Ace_netlist.Circuit.t * stats

val extract_boxes :
  ?name:string ->
  ?labels:Ace_cif.Design.label list ->
  (Layer.t * Box.t) list ->
  Ace_netlist.Circuit.t
