lib/baseline/region.ml: Ace_cif Ace_core Ace_geom Ace_netlist Ace_tech Box Hashtbl Int Interval Layer List Point Printf Union_find
