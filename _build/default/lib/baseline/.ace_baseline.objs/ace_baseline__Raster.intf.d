lib/baseline/raster.mli: Ace_cif Ace_geom Ace_netlist Ace_tech Box Layer
