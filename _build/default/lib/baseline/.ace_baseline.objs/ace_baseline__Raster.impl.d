lib/baseline/raster.ml: Ace_cif Ace_core Ace_geom Ace_netlist Ace_tech Array Box Bytes Char Hashtbl Layer List Point Printf Union_find
