lib/baseline/region.mli: Ace_cif Ace_geom Ace_netlist Ace_tech Box Layer
