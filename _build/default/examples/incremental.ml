(* Incremental extraction — ACE §6's closing note made concrete.

   "As a result of its higher performance, it is not unusual to see a user
   with a 5,000 transistor chip go through a few iterations of extracting,
   simulating, and fixing bugs during a single two-hour session."  With
   HEXT's content-keyed window table made persistent, each iteration after
   the first only pays for the windows the edit touched.

   This example simulates three edit iterations on a random-logic chip:
   extract, "fix a bug" (replace one cell's decoration), re-extract through
   the same cache, and check the result against a cold flat extraction. *)

open Ace_tech

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* an edit: drop a decorative metal stub on cell [k]'s frame *)
let edit file k =
  let b = 250 in
  let x = 4 + (k mod 17 * 16) and y = 20 + (k / 17 * 30) in
  {
    file with
    Ace_cif.Ast.top_level =
      file.Ace_cif.Ast.top_level
      @ [
          Ace_cif.Ast.Shape
            {
              layer = Layer.to_cif_name Layer.Metal;
              shape =
                Ace_cif.Ast.Box
                  {
                    length = 2 * b;
                    width = 3 * b;
                    center = Ace_geom.Point.make ((x + 1) * b) ((y + 1) * b);
                    direction = None;
                  };
            };
        ];
  }

let () =
  let base = Ace_workloads.Chips.random_logic ~cells:250 ~seed:11 () in
  let cache = Ace_hext.Hext.create_cache () in
  let versions =
    [ base; edit base 3; edit (edit base 3) 100; edit (edit (edit base 3) 100) 42 ]
  in
  List.iteri
    (fun i file ->
      let design = Ace_cif.Design.of_ast file in
      let (circuit, stats), elapsed =
        time (fun () -> Ace_hext.Hext.extract_flat ~cache design)
      in
      let flat = Ace_core.Extractor.extract design in
      Printf.printf
        "%s: %.4f s — %4d windows extracted, %4d composes, %5d redundant \
         windows served from the table — %s\n"
        (if i = 0 then "initial extraction " else
           Printf.sprintf "after edit %d       " i)
        elapsed stats.Ace_hext.Hext.leaf_extractions stats.compose_calls
        stats.window_hits
        (Ace_netlist.Compare.verdict_to_string
           (Ace_netlist.Compare.compare ~with_sizes:true flat circuit)))
    versions;
  print_endline
    "\nonly the windows covering each edit are re-analyzed; everything else\n\
     comes from the persistent window and compose tables"
