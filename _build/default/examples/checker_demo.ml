(* The verification flow of ACE §1: "circuit extraction is the first step
   in eliminating layout errors"; a static checker then "performs ratio
   checks, detects malformed transistors, and checks for signals that are
   stuck at logical 0 or 1".

   This example plants three classic layout bugs in an otherwise clean
   two-inverter chip and shows the checker finding each one:
   - a pull-down drawn with double length (ratio violation);
   - a gate wire that was never connected to a driver (floating gate);
   - a diffusion strap accidentally shorting a logic node to GND. *)

open Ace_tech

let buggy_chip () =
  let b = Ace_workloads.Builder.create () in
  let w = Ace_workloads.Cells.cell_width in
  (* cell 1: a correct inverter *)
  let good = Ace_workloads.Builder.symbol b (Ace_workloads.Cells.inverter b) in
  (* cell 2: inverter with a weak pull-down — its gate poly drawn 4λ tall
     instead of 2λ, doubling L of the enhancement device and halving the
     pull-up/pull-down ratio to 2 *)
  let weak =
    Ace_workloads.Builder.symbol b
      (Ace_workloads.Cells.pull_up b
      @ [
          Ace_workloads.Builder.box b Layer.Diffusion ~l:6 ~b:0 ~r:8 ~t_:8;
          Ace_workloads.Builder.box b Layer.Poly ~l:0 ~b:4 ~r:10 ~t_:8;
        ]
      @ Ace_workloads.Cells.gnd_contact b)
  in
  Ace_workloads.Builder.file b
    [
      Ace_workloads.Builder.call b good ~dx:0 ~dy:0;
      Ace_workloads.Builder.call b weak ~dx:(w + 4) ~dy:0;
      (* shared power rails spanning both cells *)
      Ace_workloads.Builder.box b Layer.Metal ~l:0 ~b:23 ~r:(2 * w) ~t_:26;
      Ace_workloads.Builder.box b Layer.Metal ~l:0 ~b:0 ~r:(2 * w) ~t_:3;
      (* bug: a poly wire gating nothing-driven (floating gate input) *)
      Ace_workloads.Builder.box b Layer.Poly ~l:(-8) ~b:16 ~r:(-2) ~t_:18;
      Ace_workloads.Builder.box b Layer.Diffusion ~l:(-6) ~b:12 ~r:(-4) ~t_:22;
      (* labels *)
      Ace_workloads.Builder.label b "VDD" ~x:1 ~y:24 ~layer:Layer.Metal ();
      Ace_workloads.Builder.label b "GND" ~x:1 ~y:1 ~layer:Layer.Metal ();
      Ace_workloads.Builder.label b "A" ~x:1 ~y:5 ~layer:Layer.Poly ();
      Ace_workloads.Builder.label b "B" ~x:(w + 5) ~y:5 ~layer:Layer.Poly ();
    ]

let () =
  let design = Ace_cif.Design.of_ast (buggy_chip ()) in
  let circuit = Ace_core.Extractor.extract ~name:"buggy" design in
  Printf.printf "extracted: %s\n\n"
    (Format.asprintf "%a" Ace_netlist.Circuit.pp_summary circuit);
  let findings = Ace_analysis.Static_check.check circuit in
  print_endline "--- static checker findings ---";
  List.iter
    (fun f ->
      Format.printf "%a@." (Ace_analysis.Static_check.pp_finding circuit) f)
    findings;
  let errors, warnings, infos = Ace_analysis.Static_check.summarize findings in
  Printf.printf "\n%d errors, %d warnings, %d infos\n" errors warnings infos;
  (* contrast with the clean inverter *)
  let clean =
    Ace_core.Extractor.extract
      (Ace_cif.Design.of_ast (Ace_workloads.Chips.single_inverter ()))
  in
  let e, w, _ =
    Ace_analysis.Static_check.summarize (Ace_analysis.Static_check.check clean)
  in
  Printf.printf "(the clean inverter reports %d errors, %d warnings)\n" e w
