(* The four-inverter chain of HEXT Figures 2-1/2-2.

   The chip is built exactly as the paper describes the windows: an
   inverter cell, a pair of inverters, and a pair of pairs.  HEXT's
   front-end recognizes the redundant windows (the second pair is never
   re-analyzed), the back-end composes the unique ones, and the output is
   a hierarchical wirelist in the Figure 2-2 dialect. *)

let () =
  let file = Ace_workloads.Chips.four_inverters () in
  let design = Ace_cif.Design.of_ast file in

  let hier, stats = Ace_hext.Hext.extract design in
  print_endline "--- hierarchical wirelist (compare with HEXT Figure 2-2) ---";
  print_string (Ace_netlist.Hier.to_string hier);

  Printf.printf
    "\nfront-end: %d unique windows extracted, %d redundant windows skipped\n"
    stats.Ace_hext.Hext.leaf_extractions stats.window_hits;
  Printf.printf "back-end:  %d compose operations (%d served from the table)\n"
    stats.compose_calls stats.compose_hits;

  (* flattening the hierarchical wirelist gives the flat circuit… *)
  let flat_of_hier = Ace_netlist.Hier.flatten hier in
  (* …which must equal what the flat extractor sees *)
  let flat = Ace_core.Extractor.extract ~name:"four_inverters" design in
  Printf.printf "\nflat extractor:  %s\n"
    (Format.asprintf "%a" Ace_netlist.Circuit.pp_summary flat);
  Printf.printf "HEXT, flattened: %s\n"
    (Format.asprintf "%a" Ace_netlist.Circuit.pp_summary flat_of_hier);
  Printf.printf "equivalent: %s\n"
    (Ace_netlist.Compare.verdict_to_string
       (Ace_netlist.Compare.compare ~with_sizes:true flat flat_of_hier));

  (* the chain inverts: in=1 makes out=1 after four inversions *)
  let sim = Ace_analysis.Sim.create flat_of_hier ~vdd:"VDD" ~gnd:"GND" in
  match
    Ace_analysis.Sim.eval sim
      ~inputs:[ ("in", Ace_analysis.Sim.High) ]
      ~outputs:[ "out" ]
  with
  | Some [ (_, v) ] ->
      Printf.printf "simulate: in=1 -> out=%s (four inversions)\n"
        (Ace_analysis.Sim.level_to_string v)
  | _ -> print_endline "simulation did not settle"
