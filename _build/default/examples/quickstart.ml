(* Quickstart: extract the inverter of ACE Figures 3-3/3-4.

   Builds the single-inverter chip, runs the flat edge-based extractor with
   geometry output enabled, and prints the wirelist — the same artifact the
   paper shows in Figure 3-4 (a nDep pull-up whose gate is tied to the
   output, a nEnh pull-down gated by INP, and the four nets VDD / OUT /
   INP / GND with their constituent CIF geometry). *)

let () =
  (* 1. generate (or load) a CIF chip *)
  let file = Ace_workloads.Chips.single_inverter () in
  print_endline "--- input CIF ---";
  print_string (Ace_cif.Writer.to_string file);

  (* 1b. the layout itself, one character per λ — compare with the paper's
     Figure 3-3 (m metal, d diffusion, p poly, X channel, B buried contact,
     i implant, # cut) *)
  print_endline "\n--- layout (compare with ACE Figure 3-3) ---";
  print_string
    (Ace_plot.Ascii.to_string
       (Ace_plot.Ascii.render_design
          (Ace_cif.Design.of_ast file)));

  (* 2. semantic checking wraps the AST into a design *)
  let design = Ace_cif.Design.of_ast file in
  Printf.printf "\nchip: %d primitive boxes, bbox %s\n"
    (Ace_cif.Design.count_boxes design)
    (match Ace_cif.Design.bbox design with
    | Some b -> Format.asprintf "%a" Ace_geom.Box.pp b
    | None -> "(empty)");

  (* 3. extract: lazy front-end + scanline back-end *)
  let circuit, stats =
    Ace_core.Extractor.extract_with_stats ~emit_geometry:true
      ~name:"inverter.cif" design
  in
  Printf.printf
    "extracted with %d scanline stops, peak %d boxes on the scanline\n\n"
    stats.Ace_core.Extractor.stops stats.max_active;

  (* 4. the wirelist of Figure 3-4 *)
  print_endline "--- wirelist (compare with ACE Figure 3-4) ---";
  print_string (Ace_netlist.Wirelist.to_string ~emit_geometry:true circuit);

  (* 5. a taste of the downstream tools the paper lists *)
  let sim = Ace_analysis.Sim.create circuit ~vdd:"VDD" ~gnd:"GND" in
  List.iter
    (fun level ->
      match
        Ace_analysis.Sim.eval sim
          ~inputs:[ ("INP", level) ]
          ~outputs:[ "OUT" ]
      with
      | Some [ (_, out) ] ->
          Printf.printf "simulate: INP=%s -> OUT=%s\n"
            (Ace_analysis.Sim.level_to_string level)
            (Ace_analysis.Sim.level_to_string out)
      | _ -> print_endline "simulation did not settle")
    [ Ace_analysis.Sim.Low; Ace_analysis.Sim.High ];
  let out = Ace_netlist.Circuit.find_net circuit "OUT" in
  let p = Ace_analysis.Parasitics.net_parasitics circuit out in
  Printf.printf "post-process: OUT carries %.2f fF of wire + %.2f fF of gate\n"
    p.Ace_analysis.Parasitics.cap_ff p.Ace_analysis.Parasitics.gate_cap_ff
