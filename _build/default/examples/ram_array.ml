(* The testram scenario: a regular memory array is where hierarchical
   extraction shines (HEXT Table 5-1 shows testram at 1:36 against ACE's
   26:36).

   This example builds a 64×64 single-transistor core, extracts it with
   both extractors, shows the speedup and the window statistics, and
   verifies the two wirelists are the same circuit. *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let rows = 64 and cols = 64 in
  let design =
    Ace_cif.Design.of_ast (Ace_workloads.Arrays.mesh ~rows ~cols ())
  in
  Printf.printf "memory core: %d x %d cells, %d boxes\n" rows cols
    (Ace_cif.Design.count_boxes design);

  let (flat, flat_stats), t_flat =
    time (fun () -> Ace_core.Extractor.extract_with_stats ~name:"ram" design)
  in
  Printf.printf "\nACE  (flat):        %.4f s — %s\n" t_flat
    (Format.asprintf "%a" Ace_netlist.Circuit.pp_summary flat);
  Printf.printf "  scanline stops %d, peak %d boxes active\n"
    flat_stats.Ace_core.Extractor.stops flat_stats.max_active;

  let (hier, hext_stats), t_hext =
    time (fun () -> Ace_hext.Hext.extract design)
  in
  Printf.printf "\nHEXT (hierarchical): %.4f s\n" t_hext;
  Printf.printf
    "  %d unique windows (flat extractor ran %d times on a %d-cell array)\n"
    hext_stats.Ace_hext.Hext.leaf_extractions
    hext_stats.Ace_hext.Hext.leaf_extractions (rows * cols);
  Printf.printf "  %d composes, %d window-table hits, %d compose-table hits\n"
    hext_stats.compose_calls hext_stats.window_hits hext_stats.compose_hits;
  Printf.printf "  %.0f%% of back-end time spent composing\n"
    (100.0 *. Ace_hext.Hext.compose_fraction hext_stats);

  let flat_of_hier = Ace_netlist.Hier.flatten hier in
  Printf.printf "\nverification: %s\n"
    (Ace_netlist.Compare.verdict_to_string
       (Ace_netlist.Compare.compare ~with_sizes:true flat flat_of_hier));
  Printf.printf "speedup on this regular array: %.1fx\n" (t_flat /. t_hext)
