examples/simulate_logic.mli:
