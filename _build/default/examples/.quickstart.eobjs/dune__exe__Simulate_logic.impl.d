examples/simulate_logic.ml: Ace_analysis Ace_cif Ace_core Ace_geom Ace_netlist Ace_tech Ace_workloads Format Gates List Printf Sim
