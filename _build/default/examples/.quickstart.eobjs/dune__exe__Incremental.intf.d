examples/incremental.mli:
