examples/four_inverters.ml: Ace_analysis Ace_cif Ace_core Ace_hext Ace_netlist Ace_workloads Format Printf
