examples/checker_demo.mli:
