examples/incremental.ml: Ace_cif Ace_core Ace_geom Ace_hext Ace_netlist Ace_tech Ace_workloads Layer List Printf Unix
