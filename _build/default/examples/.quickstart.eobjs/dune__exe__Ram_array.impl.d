examples/ram_array.ml: Ace_cif Ace_core Ace_hext Ace_netlist Ace_workloads Format Printf Unix
