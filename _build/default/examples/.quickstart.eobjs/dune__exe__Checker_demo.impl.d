examples/checker_demo.ml: Ace_analysis Ace_cif Ace_core Ace_netlist Ace_tech Ace_workloads Format Layer List Printf
