examples/quickstart.ml: Ace_analysis Ace_cif Ace_core Ace_geom Ace_netlist Ace_plot Ace_workloads Format List Printf
