examples/ram_array.mli:
