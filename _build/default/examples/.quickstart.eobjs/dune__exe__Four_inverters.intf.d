examples/four_inverters.mli:
