examples/quickstart.mli:
