(* Logic validation via extraction + switch-level simulation — the
   "extract, simulate, fix bugs" loop of ACE §6.

   Extracts a NAND gate and an inverter chain straight from layout and
   drives them through their truth tables; then demonstrates oscillation
   detection on an extracted ring (an inverter whose output is its own
   input). *)

open Ace_analysis

let truth_table name circuit inputs output =
  let sim = Sim.create circuit ~vdd:"VDD" ~gnd:"GND" in
  Printf.printf "%s:\n" name;
  let rec enumerate assigned = function
    | [] -> (
        match Sim.eval sim ~inputs:assigned ~outputs:[ output ] with
        | Some [ (_, v) ] ->
            List.iter
              (fun (n, l) -> Printf.printf "  %s=%s" n (Sim.level_to_string l))
              (List.rev assigned);
            Printf.printf "  ->  %s=%s\n" output (Sim.level_to_string v)
        | _ -> print_endline "  did not settle")
    | input :: rest ->
        List.iter
          (fun level -> enumerate ((input, level) :: assigned) rest)
          [ Sim.Low; Sim.High ]
  in
  enumerate [] inputs

let () =
  (* NAND gate from layout *)
  let b = Ace_workloads.Builder.create () in
  let nand = Ace_workloads.Builder.symbol b (Ace_workloads.Cells.nand2 ~labels:true b) in
  let nand_file =
    Ace_workloads.Builder.file b [ Ace_workloads.Builder.call b nand ~dx:0 ~dy:0 ]
  in
  let nand_circuit =
    Ace_core.Extractor.extract ~name:"nand2" (Ace_cif.Design.of_ast nand_file)
  in
  truth_table "NAND (extracted from layout)" nand_circuit [ "A"; "B" ] "OUT";

  (* NOR gate *)
  let b2 = Ace_workloads.Builder.create () in
  let nor = Ace_workloads.Builder.symbol b2 (Ace_workloads.Cells.nor2 ~labels:true b2) in
  let nor_file =
    Ace_workloads.Builder.file b2 [ Ace_workloads.Builder.call b2 nor ~dx:0 ~dy:0 ]
  in
  let nor_circuit =
    Ace_core.Extractor.extract ~name:"nor2" (Ace_cif.Design.of_ast nor_file)
  in
  truth_table "NOR (extracted from layout)" nor_circuit [ "A"; "B" ] "OUT";

  (* inverter chain: a 1 ripples through five stages *)
  let chain =
    Ace_core.Extractor.extract
      (Ace_cif.Design.of_ast (Ace_workloads.Chips.inverter_chain ~n:5 ()))
  in
  truth_table "5-stage inverter chain" chain [ "INP" ] "OUT";

  (* gate-level abstraction: the recognizer reads the gates back out of
     the transistor network *)
  print_endline "gate recognition over the extracted chain:";
  let r = Gates.recognize chain in
  List.iter (fun g -> Format.printf "  %a@." (Gates.pp_gate chain) g) r.Gates.gates;
  Printf.printf "  (%d of %d devices explained)\n" r.matched_devices
    r.total_devices;

  (* and a SPICE deck for the circuit-level simulator *)
  print_endline "\nSPICE deck for the NAND gate:";
  print_string (Ace_netlist.Spice.to_string nand_circuit);

  (* ring oscillator: feed an inverter's output back into its input *)
  print_endline "ring (inverter output wired to its own input):";
  let ring =
    let net names =
      { Ace_netlist.Circuit.names; location = Ace_geom.Point.origin; geometry = [] }
    in
    {
      Ace_netlist.Circuit.name = "ring";
      nets = [| net [ "VDD" ]; net [ "N" ]; net [ "GND" ] |];
      devices =
        [|
          {
            Ace_netlist.Circuit.dtype = Ace_tech.Nmos.Depletion;
            gate = 1; source = 0; drain = 1; length = 8; width = 2;
            location = Ace_geom.Point.origin; geometry = [];
          };
          {
            Ace_netlist.Circuit.dtype = Ace_tech.Nmos.Enhancement;
            gate = 1; source = 1; drain = 2; length = 2; width = 2;
            location = Ace_geom.Point.origin; geometry = [];
          };
        |];
    }
  in
  let sim = Sim.create ring ~vdd:"VDD" ~gnd:"GND" in
  Sim.set_input sim "N" Sim.High;
  ignore (Sim.stabilize sim);
  Sim.release_input sim "N";
  if Sim.stabilize ~max_steps:64 sim then
    print_endline "  settled (unexpected)"
  else print_endline "  oscillation detected — no stable state exists"
