test/test_drc.ml: Ace_cif Ace_drc Ace_geom Ace_tech Ace_workloads Alcotest Box Checker Format Layer List Printf QCheck2 Stdlib String Tutil
