test/test_core.ml: Ace_baseline Ace_cif Ace_core Ace_geom Ace_netlist Ace_tech Ace_workloads Alcotest Array Box Circuit Int Interval Layer List Nmos Point QCheck2 Tutil
