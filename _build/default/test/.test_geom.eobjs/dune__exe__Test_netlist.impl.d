test/test_netlist.ml: Ace_geom Ace_netlist Ace_tech Alcotest Array Box Circuit Compare Hier Layer List Nmos Point Printf QCheck2 Sexp Spice String Tutil Union_find Wirelist
