test/test_geom.mli:
