test/test_cif.mli:
