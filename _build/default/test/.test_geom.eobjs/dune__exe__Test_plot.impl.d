test/test_plot.ml: Ace_cif Ace_geom Ace_plot Ace_tech Ace_workloads Alcotest Box Layer List Point String
