test/tutil.ml: Ace_cif Ace_geom Ace_netlist Ace_tech Array Box Format Layer List Nmos Point Printf QCheck2 QCheck_alcotest String
