test/test_cif.ml: Ace_cif Ace_core Ace_geom Ace_hext Ace_netlist Ace_tech Alcotest Array Box Filename Layer List Point Stdlib String Sys Tutil
