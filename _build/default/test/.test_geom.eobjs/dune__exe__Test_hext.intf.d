test/test_hext.mli:
