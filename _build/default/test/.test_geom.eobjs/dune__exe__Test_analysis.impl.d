test/test_analysis.ml: Ace_analysis Ace_cif Ace_core Ace_geom Ace_netlist Ace_tech Ace_workloads Alcotest Array Circuit Gates List Parasitics Printf Sim Sta Static_check Tutil
