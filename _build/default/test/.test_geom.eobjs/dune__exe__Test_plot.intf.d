test/test_plot.mli:
