test/test_drc.mli:
