test/test_workloads.ml: Ace_analysis Ace_cif Ace_core Ace_netlist Ace_tech Ace_workloads Alcotest Array Circuit List Printf Tutil
