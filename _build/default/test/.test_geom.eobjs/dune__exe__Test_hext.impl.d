test/test_hext.ml: Ace_baseline Ace_cif Ace_core Ace_geom Ace_hext Ace_netlist Ace_tech Ace_workloads Alcotest Box Circuit Compare Hier Layer List Option Point Tutil
