test/test_geom.ml: Ace_geom Alcotest Box Interval List Option Point Poly QCheck2 Transform Tutil
