open Ace_geom
open Ace_tech
open Ace_netlist

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let extract = Ace_core.Extractor.extract_boxes
let box = Tutil.box

let device (c : Circuit.t) i = c.Circuit.devices.(i)

(* ------------------------------------------------------------------ *)
(* Connectivity unit cases                                              *)
(* ------------------------------------------------------------------ *)

let test_empty () =
  let c = extract [] in
  check_int "no devices" 0 (Circuit.device_count c);
  check_int "no nets" 0 (Circuit.net_count c)

let test_single_box () =
  let c = extract [ (Layer.Metal, box ~l:0 ~b:0 ~r:10 ~t:4) ] in
  check_int "one net" 1 (Circuit.net_count c);
  check_int "no devices" 0 (Circuit.device_count c)

let test_disjoint_boxes () =
  let c =
    extract
      [
        (Layer.Metal, box ~l:0 ~b:0 ~r:4 ~t:4);
        (Layer.Metal, box ~l:10 ~b:0 ~r:14 ~t:4);
        (Layer.Poly, box ~l:0 ~b:10 ~r:4 ~t:14);
      ]
  in
  check_int "three nets" 3 (Circuit.net_count c)

let test_overlap_merges () =
  let c =
    extract
      [
        (Layer.Metal, box ~l:0 ~b:0 ~r:10 ~t:4);
        (Layer.Metal, box ~l:5 ~b:2 ~r:15 ~t:8);
      ]
  in
  check_int "one net" 1 (Circuit.net_count c)

let test_corner_contact_does_not_merge () =
  let c =
    extract
      [
        (Layer.Metal, box ~l:0 ~b:0 ~r:4 ~t:4);
        (Layer.Metal, box ~l:4 ~b:4 ~r:8 ~t:8);
      ]
  in
  check_int "two nets" 2 (Circuit.net_count c)

let test_layers_do_not_merge () =
  let c =
    extract
      [
        (Layer.Metal, box ~l:0 ~b:0 ~r:10 ~t:4);
        (Layer.Poly, box ~l:0 ~b:0 ~r:10 ~t:4);
        (Layer.Diffusion, box ~l:20 ~b:0 ~r:24 ~t:4);
      ]
  in
  check_int "three nets" 3 (Circuit.net_count c)

let test_u_shape_merges () =
  (* a U on one layer: left leg, bottom bar, right leg *)
  let c =
    extract
      [
        (Layer.Metal, box ~l:0 ~b:0 ~r:2 ~t:10);
        (Layer.Metal, box ~l:8 ~b:0 ~r:10 ~t:10);
        (Layer.Metal, box ~l:0 ~b:0 ~r:10 ~t:2);
      ]
  in
  check_int "one net" 1 (Circuit.net_count c)

let test_contact_rules () =
  let base =
    [
      (Layer.Metal, box ~l:0 ~b:0 ~r:4 ~t:12);
      (Layer.Diffusion, box ~l:0 ~b:0 ~r:12 ~t:4);
    ]
  in
  (* no cut: two nets *)
  check_int "no cut" 2 (Circuit.net_count (extract base));
  (* cut over both: one net *)
  check_int "with cut" 1
    (Circuit.net_count
       (extract ((Layer.Contact, box ~l:1 ~b:1 ~r:3 ~t:3) :: base)));
  (* cut touching only metal does nothing *)
  check_int "cut off to the side" 2
    (Circuit.net_count
       (extract ((Layer.Contact, box ~l:1 ~b:8 ~r:3 ~t:10) :: base)))

let test_buried_contact () =
  let c =
    extract
      [
        (Layer.Diffusion, box ~l:0 ~b:0 ~r:10 ~t:4);
        (Layer.Poly, box ~l:4 ~b:(-4) ~r:6 ~t:8);
        (Layer.Buried, box ~l:3 ~b:(-1) ~r:7 ~t:5);
      ]
  in
  check_int "no transistor" 0 (Circuit.device_count c);
  check_int "poly and diffusion joined" 1 (Circuit.net_count c)

(* ------------------------------------------------------------------ *)
(* Device recognition                                                   *)
(* ------------------------------------------------------------------ *)

let simple_transistor =
  [
    (Layer.Diffusion, box ~l:0 ~b:0 ~r:20 ~t:4);
    (Layer.Poly, box ~l:8 ~b:(-4) ~r:10 ~t:8);
  ]

let test_transistor_basic () =
  let c = extract simple_transistor in
  check_int "one device" 1 (Circuit.device_count c);
  check_int "three nets" 3 (Circuit.net_count c);
  let d = device c 0 in
  check "enhancement" true (Nmos.device_type_equal d.dtype Nmos.Enhancement);
  check_int "width = diffusion height" 4 d.width;
  check_int "length = poly width" 2 d.length;
  check "gate differs from s/d" true (d.gate <> d.source && d.gate <> d.drain);
  check "s/d differ" true (d.source <> d.drain)

let test_transistor_depletion () =
  let c =
    extract ((Layer.Implant, box ~l:6 ~b:(-1) ~r:12 ~t:5) :: simple_transistor)
  in
  check "depletion" true
    (Nmos.device_type_equal (device c 0).dtype Nmos.Depletion)

let test_partial_implant_majority () =
  (* implant covering less than half the channel leaves it enhancement *)
  let c =
    extract ((Layer.Implant, box ~l:8 ~b:0 ~r:9 ~t:1) :: simple_transistor)
  in
  check "still enhancement" true
    (Nmos.device_type_equal (device c 0).dtype Nmos.Enhancement)

let test_transistor_horizontal_gate () =
  (* poly crossing horizontally: width counted along x *)
  let c =
    extract
      [
        (Layer.Diffusion, box ~l:0 ~b:0 ~r:4 ~t:20);
        (Layer.Poly, box ~l:(-4) ~b:8 ~r:8 ~t:11);
      ]
  in
  let d = device c 0 in
  check_int "width" 4 d.width;
  check_int "length" 3 d.length

let test_two_transistors_series () =
  let c =
    extract
      [
        (Layer.Diffusion, box ~l:0 ~b:0 ~r:30 ~t:4);
        (Layer.Poly, box ~l:8 ~b:(-4) ~r:10 ~t:8);
        (Layer.Poly, box ~l:20 ~b:(-4) ~r:22 ~t:8);
      ]
  in
  check_int "two devices" 2 (Circuit.device_count c);
  (* nets: 3 diffusion segments + 2 gates *)
  check_int "five nets" 5 (Circuit.net_count c);
  (* the middle diffusion segment is shared: some net is a terminal of
     both devices *)
  let d0 = device c 0 and d1 = device c 1 in
  let terms d = [ d.Circuit.source; d.Circuit.drain ] in
  check "share a terminal" true
    (List.exists (fun t -> List.mem t (terms d1)) (terms d0))

let test_snake_transistor () =
  (* an L-shaped channel: diffusion bar crossed by an L-shaped poly *)
  let c =
    extract
      [
        (Layer.Diffusion, box ~l:0 ~b:0 ~r:24 ~t:12);
        (* poly L: vertical part and horizontal part, overlapping the
           diffusion interior *)
        (Layer.Poly, box ~l:8 ~b:(-2) ~r:12 ~t:8);
        (Layer.Poly, box ~l:8 ~b:4 ~r:26 ~t:8);
      ]
  in
  check_int "one device" 1 (Circuit.device_count c);
  let d = device c 0 in
  (* channel area: vertical 4×8 + horizontal 16×4 − shared 4×4 = 80;
     the sizing rule guarantees L = ⌊area / W⌋ *)
  check "L*W rounds down from the channel area" true
    (d.length * d.width <= 80 && 80 - (d.length * d.width) < d.width)

let test_ring_transistor_single_terminal () =
  (* poly ring around a diffusion island: source and drain end up on the
     two sides; make a channel crossing the whole diffusion so only one
     diffusion net remains *)
  let c =
    extract
      [
        (Layer.Diffusion, box ~l:0 ~b:0 ~r:10 ~t:10);
        (Layer.Poly, box ~l:(-2) ~b:3 ~r:12 ~t:7);
        (* second poly wire reconnecting the two halves outside: none —
           expect two separate diffusion nets *)
      ]
  in
  let d = device c 0 in
  check "two different terminals" true (d.source <> d.drain);
  (* now a C-shaped diffusion whose ends meet the channel from one side
     only: source = drain *)
  let c2 =
    extract
      [
        (Layer.Diffusion, box ~l:0 ~b:0 ~r:4 ~t:16);
        (Layer.Diffusion, box ~l:0 ~b:12 ~r:12 ~t:16);
        (Layer.Diffusion, box ~l:0 ~b:0 ~r:12 ~t:4);
        (Layer.Diffusion, box ~l:8 ~b:0 ~r:12 ~t:16);
        (Layer.Poly, box ~l:8 ~b:6 ~r:14 ~t:10);
      ]
  in
  let d2 = device c2 0 in
  check "ring: source equals drain" true (d2.source = d2.drain)

let test_mesh_counts () =
  (* n poly lines over m diffusion lines: n*m transistors — the papers'
     worst case *)
  let n = 5 and m = 4 in
  let boxes =
    List.init n (fun i -> (Layer.Poly, box ~l:(-4) ~b:(i * 10) ~r:(10 * m) ~t:((i * 10) + 2)))
    @ List.init m (fun j ->
          (Layer.Diffusion, box ~l:(j * 10) ~b:(-4) ~r:((j * 10) + 2) ~t:(10 * n)))
  in
  let c = extract boxes in
  check_int "n*m devices" (n * m) (Circuit.device_count c);
  (* nets: n poly lines + m*(n+1) diffusion segments *)
  check_int "nets" (n + (m * (n + 1))) (Circuit.net_count c)

let test_inverter_lw () =
  let design = Ace_cif.Design.of_ast (Ace_workloads.Chips.single_inverter ()) in
  let c = Ace_core.Extractor.extract design in
  let lam = 250 in
  let dep =
    Array.to_list c.Circuit.devices
    |> List.find (fun (d : Circuit.device) -> d.dtype = Nmos.Depletion)
  and enh =
    Array.to_list c.Circuit.devices
    |> List.find (fun (d : Circuit.device) -> d.dtype = Nmos.Enhancement)
  in
  check_int "pull-up L" (8 * lam) dep.length;
  check_int "pull-up W" (2 * lam) dep.width;
  check_int "pull-down L" (2 * lam) enh.length;
  check_int "pull-down W" (2 * lam) enh.width;
  (* terminal identities by label *)
  let net name = Circuit.find_net c name in
  check_int "enh gate is INP" (net "INP") enh.gate;
  check "dep gate is OUT" true (dep.gate = net "OUT");
  check "dep drives between VDD and OUT" true
    (List.sort Int.compare [ dep.source; dep.drain ]
    = List.sort Int.compare [ net "VDD"; net "OUT" ])

(* ------------------------------------------------------------------ *)
(* Labels and geometry output                                           *)
(* ------------------------------------------------------------------ *)

let test_labels () =
  let labels =
    [
      { Ace_cif.Design.name = "A"; position = Point.make 1 1; layer = Some Layer.Metal };
      { Ace_cif.Design.name = "B"; position = Point.make 1 1; layer = Some Layer.Poly };
      { Ace_cif.Design.name = "nowhere"; position = Point.make 50 50; layer = None };
    ]
  in
  let c =
    Ace_core.Extractor.extract_boxes ~labels
      [
        (Layer.Metal, box ~l:0 ~b:0 ~r:4 ~t:4);
        (Layer.Poly, box ~l:0 ~b:0 ~r:4 ~t:4);
      ]
  in
  check "A on metal" true (Circuit.find_net c "A" >= 0);
  check "B on poly" true (Circuit.find_net c "B" >= 0);
  check "A and B distinct" true (Circuit.find_net c "A" <> Circuit.find_net c "B");
  check "unplaced label missing" true
    (match Circuit.find_net c "nowhere" with
    | exception Not_found -> true
    | _ -> false)

let test_two_labels_one_net () =
  let labels =
    [
      { Ace_cif.Design.name = "X"; position = Point.make 1 1; layer = None };
      { Ace_cif.Design.name = "Y"; position = Point.make 9 1; layer = None };
    ]
  in
  let c =
    Ace_core.Extractor.extract_boxes ~labels
      [ (Layer.Metal, box ~l:0 ~b:0 ~r:10 ~t:4) ]
  in
  check_int "same net" (Circuit.find_net c "X") (Circuit.find_net c "Y")

let test_geometry_output () =
  let c =
    Ace_core.Extractor.extract_boxes ~emit_geometry:true simple_transistor
  in
  let total_net_geom =
    Array.fold_left
      (fun acc (n : Circuit.net) ->
        acc + List.fold_left (fun a (_, b) -> a + Box.area b) 0 n.geometry)
      0 c.Circuit.nets
  in
  (* diffusion (80) minus channel (8) + poly (24) = 96 *)
  check_int "net geometry area" 96 total_net_geom;
  let d = device c 0 in
  check_int "channel geometry area" 8
    (List.fold_left (fun a (_, b) -> a + Box.area b) 0 d.Circuit.geometry);
  (* suppressed by default, like the paper *)
  let c' = Ace_core.Extractor.extract_boxes simple_transistor in
  check "suppressed by default" true
    (Array.for_all (fun (n : Circuit.net) -> n.geometry = []) c'.Circuit.nets)

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)
(* ------------------------------------------------------------------ *)

let prop_translation_invariant =
  Tutil.qtest ~count:150 "extraction is translation invariant"
    QCheck2.Gen.(
      triple (Tutil.gen_layout ()) (int_range (-50) 50) (int_range (-50) 50))
    (fun (layout, dx, dy) ->
      let moved = List.map (fun (l, b) -> (l, Box.translate b ~dx ~dy)) layout in
      Tutil.circuit_equal ~with_sizes:true (extract layout) (extract moved))

let prop_order_invariant =
  Tutil.qtest ~count:150 "extraction is input-order invariant"
    (Tutil.gen_layout ())
    (fun layout ->
      Tutil.circuit_equal ~with_sizes:true
        (extract layout)
        (extract (List.rev layout)))

let prop_split_invariant =
  Tutil.qtest ~count:150 "splitting a box into abutting halves changes nothing"
    (Tutil.gen_layout ())
    (fun layout ->
      let split =
        List.concat_map
          (fun (lyr, (b : Box.t)) ->
            if Box.width b >= 2 then
              let m = (b.l + b.r) / 2 in
              [
                (lyr, Box.make ~l:b.l ~b:b.b ~r:m ~t:b.t);
                (lyr, Box.make ~l:m ~b:b.b ~r:b.r ~t:b.t);
              ]
            else [ (lyr, b) ])
          layout
      in
      Tutil.circuit_equal ~with_sizes:true (extract layout) (extract split))

let prop_duplicate_invariant =
  Tutil.qtest ~count:100 "duplicating boxes changes nothing"
    (Tutil.gen_layout ())
    (fun layout ->
      Tutil.circuit_equal ~with_sizes:true
        (extract layout)
        (extract (layout @ layout)))

let prop_mirror_invariant =
  Tutil.qtest ~count:100 "mirroring the layout preserves the circuit"
    (Tutil.gen_layout ())
    (fun layout ->
      let mirrored =
        List.map
          (fun (lyr, (b : Box.t)) ->
            (lyr, Box.make ~l:(-b.r) ~b:b.b ~r:(-b.l) ~t:b.t))
          layout
      in
      Tutil.circuit_equal ~with_sizes:true (extract layout) (extract mirrored))

let test_baseline_stats () =
  let design = Ace_cif.Design.of_ast (Ace_workloads.Arrays.mesh ~rows:4 ~cols:4 ()) in
  let _, rstats = Ace_baseline.Raster.extract_with_stats ~grid:250 design in
  check "raster grid covers the chip" true
    (rstats.Ace_baseline.Raster.grid_width >= 32
    && rstats.Ace_baseline.Raster.grid_height >= 32);
  check "raster visits every square" true
    (rstats.Ace_baseline.Raster.squares_visited
    = rstats.Ace_baseline.Raster.grid_width
      * rstats.Ace_baseline.Raster.grid_height);
  let _, gstats = Ace_baseline.Region.extract_with_stats design in
  check "region rescans the box list per stop" true
    (gstats.Ace_baseline.Region.boxes_scanned
    > 5 * Ace_cif.Design.count_boxes design)

let prop_agrees_with_region =
  Tutil.qtest ~count:200 "scanline and region extractors agree"
    (Tutil.gen_layout ())
    (fun layout ->
      Tutil.circuit_equal ~with_sizes:true (extract layout)
        (Ace_baseline.Region.extract_boxes layout))

let prop_agrees_with_raster =
  Tutil.qtest ~count:150 "scanline and raster extractors agree"
    (Tutil.gen_layout ())
    (fun layout ->
      Tutil.circuit_equal ~with_sizes:true (extract layout)
        (Ace_baseline.Raster.extract_boxes ~grid:1 layout))

(* ------------------------------------------------------------------ *)
(* End-to-end through CIF                                               *)
(* ------------------------------------------------------------------ *)

let test_extract_cif_string () =
  let src =
    "DS 1; L ND; B 20 4 10 2; L NP; B 2 12 9 2; DF; C 1; C 1 T 40 0; E"
  in
  let c = Ace_core.Extractor.extract_cif_string src in
  check_int "two transistors" 2 (Circuit.device_count c)

let test_wire_transistor () =
  (* a transistor drawn with CIF wires instead of boxes *)
  let c =
    Ace_core.Extractor.extract_cif_string
      "L ND; W 4 0 0 30 0; L NP; W 2 14 -10 14 10; E"
  in
  check_int "one device" 1 (Circuit.device_count c);
  check_int "three nets" 3 (Circuit.net_count c);
  let d = device c 0 in
  check_int "W = wire width of the diffusion" 4 d.width;
  check_int "L = wire width of the poly" 2 d.length

let test_polygon_transistor () =
  (* L-shaped diffusion polygon crossed by a poly box *)
  let c =
    Ace_core.Extractor.extract_cif_string
      "L ND; P 0 0 30 0 30 6 12 6 12 20 0 20; L NP; B 4 30 20 5; E"
  in
  check_int "one device" 1 (Circuit.device_count c);
  (* the poly at x 18..22 splits the bottom arm: the left piece merges with
     the column, the right piece is a separate net *)
  check_int "three nets" 3 (Circuit.net_count c);
  let d = device c 0 in
  check "distinct terminals" true (d.source <> d.drain);
  check_int "W = arm height" 6 d.width;
  check_int "L = poly width" 4 d.length

let test_roundflash_net () =
  let c = Ace_core.Extractor.extract_cif_string "L NM; R 20 0 0; E" in
  check_int "one net" 1 (Circuit.net_count c);
  check_int "no devices" 0 (Circuit.device_count c)

let test_rotation_invariance () =
  (* the same cell instantiated rotated yields an equivalent circuit *)
  let base = "DS 1; L ND; B 20 4 10 2; L NP; B 2 12 9 2; DF; C 1; E" in
  let rotated = "DS 1; L ND; B 20 4 10 2; L NP; B 2 12 9 2; DF; C 1 R 0 1; E" in
  let mirrored = "DS 1; L ND; B 20 4 10 2; L NP; B 2 12 9 2; DF; C 1 M X; E" in
  let cb = Ace_core.Extractor.extract_cif_string base in
  check "rotation" true
    (Tutil.circuit_equal ~with_sizes:true cb
       (Ace_core.Extractor.extract_cif_string rotated));
  check "mirror" true
    (Tutil.circuit_equal ~with_sizes:true cb
       (Ace_core.Extractor.extract_cif_string mirrored))

let test_scale_factor_invariance () =
  (* DS 1 2 1 doubles all coordinates: the circuit is the same shape with
     doubled dimensions *)
  let unit = "DS 1; L ND; B 20 4 10 2; L NP; B 2 12 9 2; DF; C 1; E" in
  let doubled = "DS 1 2 1; L ND; B 20 4 10 2; L NP; B 2 12 9 2; DF; C 1; E" in
  let cu = Ace_core.Extractor.extract_cif_string unit in
  let cd = Ace_core.Extractor.extract_cif_string doubled in
  check "same structure" true (Tutil.circuit_equal cu cd);
  check_int "doubled width" (2 * (device cu 0).width) (device cd 0).width;
  check_int "doubled length" (2 * (device cu 0).length) (device cd 0).length

let test_box_with_direction () =
  (* B with direction 0 1 swaps length and width *)
  let a = Ace_core.Extractor.extract_cif_string
      "L ND; B 20 4 10 2; L NP; B 2 12 9 2; E" in
  let b = Ace_core.Extractor.extract_cif_string
      "L ND; B 4 20 10 2 0 1; L NP; B 12 2 9 2 0 1; E" in
  check "direction rotates the box" true (Tutil.circuit_equal ~with_sizes:true a b)

let test_stats () =
  let design = Ace_cif.Design.of_ast (Ace_workloads.Arrays.mesh ~rows:4 ~cols:4 ()) in
  let _, stats = Ace_core.Extractor.extract_with_stats design in
  check_int "boxes" 32 stats.Ace_core.Extractor.boxes;
  check "stops counted" true (stats.stops > 4);
  check "active tracked" true (stats.max_active > 0);
  check "no warnings" true (stats.warnings = [])

(* ------------------------------------------------------------------ *)
(* Window (interface) mode                                              *)
(* ------------------------------------------------------------------ *)

let run_window boxes window =
  let source = Ace_core.Engine.source_of_boxes boxes in
  Ace_core.Engine.run
    { Ace_core.Engine.emit_geometry = false; window = Some window }
    source ~labels:[]

let test_window_boundary_spans () =
  (* a metal bar crossing the east boundary of the window *)
  let window = box ~l:0 ~b:0 ~r:10 ~t:10 in
  let raw = run_window [ (Layer.Metal, box ~l:2 ~b:4 ~r:20 ~t:6) ] window in
  let east =
    List.filter
      (fun (s : Ace_core.Engine.boundary_span) -> s.bface = Ace_core.Engine.East)
      raw.Ace_core.Engine.boundary_nets
  in
  check_int "one east crossing" 1 (List.length east);
  (match east with
  | [ s ] ->
      check "metal layer" true (Layer.equal s.blayer Layer.Metal);
      check "span is the strip y-range" true
        (s.bspan.Interval.lo = 4 && s.bspan.Interval.hi = 6)
  | _ -> ());
  check_int "no west crossing" 0
    (List.length
       (List.filter
          (fun (s : Ace_core.Engine.boundary_span) ->
            s.bface = Ace_core.Engine.West)
          raw.Ace_core.Engine.boundary_nets))

let test_window_clips () =
  (* geometry outside the window is invisible *)
  let window = box ~l:0 ~b:0 ~r:10 ~t:10 in
  let raw =
    run_window
      [
        (Layer.Metal, box ~l:2 ~b:2 ~r:6 ~t:6);
        (Layer.Metal, box ~l:100 ~b:100 ~r:110 ~t:110);
      ]
      window
  in
  check_int "one net (outside box clipped away)" 1
    (Ace_netlist.Union_find.class_count raw.Ace_core.Engine.nets)

let test_window_partial_device () =
  (* a transistor whose channel crosses the north boundary *)
  let window = box ~l:0 ~b:0 ~r:20 ~t:5 in
  let raw =
    run_window
      [
        (Layer.Diffusion, box ~l:0 ~b:0 ~r:20 ~t:10);
        (Layer.Poly, box ~l:8 ~b:2 ~r:10 ~t:12);
      ]
      window
  in
  (match raw.Ace_core.Engine.devices with
  | [ (_, d) ] ->
      check "touches boundary" true d.Ace_core.Engine.touches_boundary;
      check_int "clipped channel area" (2 * 3) d.Ace_core.Engine.area
  | _ -> Alcotest.fail "expected one channel component");
  check "north channel span recorded" true
    (List.exists
       (fun (c : Ace_core.Engine.boundary_channel) ->
         c.cface = Ace_core.Engine.North)
       raw.Ace_core.Engine.boundary_channels)

let test_window_interior_device_complete () =
  let window = box ~l:(-10) ~b:(-10) ~r:30 ~t:30 in
  let raw =
    run_window
      [
        (Layer.Diffusion, box ~l:0 ~b:0 ~r:20 ~t:4);
        (Layer.Poly, box ~l:8 ~b:(-4) ~r:10 ~t:8);
      ]
      window
  in
  match raw.Ace_core.Engine.devices with
  | [ (_, d) ] -> check "complete" false d.Ace_core.Engine.touches_boundary
  | _ -> Alcotest.fail "expected one device"

let test_warning_on_lost_label () =
  let labels =
    [ { Ace_cif.Design.name = "L"; position = Point.make 100 100; layer = None } ]
  in
  let source = Ace_core.Engine.source_of_boxes [ (Layer.Metal, box ~l:0 ~b:0 ~r:4 ~t:4) ] in
  let raw = Ace_core.Engine.run Ace_core.Engine.default_config source ~labels in
  check "warning emitted" true (raw.Ace_core.Engine.warnings <> [])

let () =
  Alcotest.run "core"
    [
      ( "connectivity",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "single box" `Quick test_single_box;
          Alcotest.test_case "disjoint boxes" `Quick test_disjoint_boxes;
          Alcotest.test_case "overlap merges" `Quick test_overlap_merges;
          Alcotest.test_case "corner contact" `Quick test_corner_contact_does_not_merge;
          Alcotest.test_case "layers independent" `Quick test_layers_do_not_merge;
          Alcotest.test_case "U shape" `Quick test_u_shape_merges;
          Alcotest.test_case "contact rules" `Quick test_contact_rules;
          Alcotest.test_case "buried contact" `Quick test_buried_contact;
        ] );
      ( "devices",
        [
          Alcotest.test_case "basic transistor" `Quick test_transistor_basic;
          Alcotest.test_case "depletion" `Quick test_transistor_depletion;
          Alcotest.test_case "partial implant" `Quick test_partial_implant_majority;
          Alcotest.test_case "horizontal gate" `Quick test_transistor_horizontal_gate;
          Alcotest.test_case "series pair" `Quick test_two_transistors_series;
          Alcotest.test_case "snake channel" `Quick test_snake_transistor;
          Alcotest.test_case "ring terminals" `Quick test_ring_transistor_single_terminal;
          Alcotest.test_case "mesh counts" `Quick test_mesh_counts;
          Alcotest.test_case "inverter L/W and terminals" `Quick test_inverter_lw;
        ] );
      ( "labels-and-geometry",
        [
          Alcotest.test_case "labels" `Quick test_labels;
          Alcotest.test_case "two labels one net" `Quick test_two_labels_one_net;
          Alcotest.test_case "geometry output" `Quick test_geometry_output;
          Alcotest.test_case "lost label warning" `Quick test_warning_on_lost_label;
        ] );
      ( "window-mode",
        [
          Alcotest.test_case "boundary spans" `Quick test_window_boundary_spans;
          Alcotest.test_case "clipping" `Quick test_window_clips;
          Alcotest.test_case "partial device" `Quick test_window_partial_device;
          Alcotest.test_case "interior device" `Quick test_window_interior_device_complete;
        ] );
      ( "properties",
        [
          prop_translation_invariant;
          prop_order_invariant;
          prop_split_invariant;
          prop_duplicate_invariant;
          prop_mirror_invariant;
          prop_agrees_with_region;
          prop_agrees_with_raster;
          Alcotest.test_case "baseline statistics" `Quick test_baseline_stats;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "extract CIF string" `Quick test_extract_cif_string;
          Alcotest.test_case "wire transistor" `Quick test_wire_transistor;
          Alcotest.test_case "polygon transistor" `Quick test_polygon_transistor;
          Alcotest.test_case "round flash" `Quick test_roundflash_net;
          Alcotest.test_case "rotation invariance" `Quick test_rotation_invariance;
          Alcotest.test_case "scale factor" `Quick test_scale_factor_invariance;
          Alcotest.test_case "box direction" `Quick test_box_with_direction;
          Alcotest.test_case "stats" `Quick test_stats;
        ] );
    ]
