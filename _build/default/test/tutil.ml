(* Shared helpers and generators for the test suites. *)
open Ace_geom
open Ace_tech

let box ~l ~b ~r ~t = Box.make ~l ~b ~r ~t

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Random layout generation                                            *)
(* ------------------------------------------------------------------ *)

(* Small λ-aligned layouts: coordinates in [0, extent), sizes 1..12.
   Layer mix favours the conducting/interacting layers so transistors,
   contacts and buried contacts all appear regularly. *)
let gen_layer =
  QCheck2.Gen.frequency
    [
      (4, QCheck2.Gen.return Layer.Diffusion);
      (4, QCheck2.Gen.return Layer.Poly);
      (3, QCheck2.Gen.return Layer.Metal);
      (2, QCheck2.Gen.return Layer.Contact);
      (1, QCheck2.Gen.return Layer.Buried);
      (1, QCheck2.Gen.return Layer.Implant);
    ]

let gen_box ?(extent = 40) () =
  let open QCheck2.Gen in
  let* l = int_range 0 (extent - 2) in
  let* b = int_range 0 (extent - 2) in
  let* w = int_range 1 (min 12 (extent - l - 1)) in
  let* h = int_range 1 (min 12 (extent - b - 1)) in
  return (Box.make ~l ~b ~r:(l + w) ~t:(b + h))

let gen_layout ?(extent = 40) ?(min_boxes = 1) ?(max_boxes = 30) () =
  let open QCheck2.Gen in
  let* n = int_range min_boxes max_boxes in
  list_size (return n)
    (let* lyr = gen_layer in
     let* bx = gen_box ~extent () in
     return (lyr, bx))

let print_layout layout =
  String.concat "; "
    (List.map
       (fun (lyr, bx) -> Format.asprintf "%a %a" Layer.pp lyr Box.pp bx)
       layout)

(* Random hierarchical designs: a few symbols of random geometry, placed
   (possibly overlapping, possibly transformed) at the top level. *)
let gen_transform_ops =
  let open QCheck2.Gen in
  let* dx = int_range 0 60 in
  let* dy = int_range 0 60 in
  let* flavour = int_range 0 5 in
  let base = [ Ace_cif.Ast.Translate (dx, dy) ] in
  return
    (match flavour with
    | 0 | 1 -> base
    | 2 -> Ace_cif.Ast.Mirror_x :: base
    | 3 -> Ace_cif.Ast.Mirror_y :: base
    | 4 -> Ace_cif.Ast.Rotate (0, 1) :: base
    | _ -> Ace_cif.Ast.Rotate (-1, 0) :: base)

let element_of_box lyr (bx : Box.t) =
  Ace_cif.Ast.Shape
    {
      layer = Layer.to_cif_name lyr;
      shape =
        Ace_cif.Ast.Box
          {
            length = Box.width bx;
            width = Box.height bx;
            center = Box.center bx;
            direction = None;
          };
    }

(* Labels land on the min corner of a generated box, so they reliably hit
   conducting geometry and exercise name attachment. *)
let labels_for prefix layout =
  List.filteri (fun i _ -> i < 2) layout
  |> List.mapi (fun i (lyr, (bx : Box.t)) ->
         Ace_cif.Ast.Label
           {
             name = Printf.sprintf "%s%d" prefix i;
             position = Point.make bx.l bx.b;
             layer =
               (if Layer.conducting lyr then Some (Layer.to_cif_name lyr)
                else None);
           })

let gen_design =
  let open QCheck2.Gen in
  let* n_symbols = int_range 1 3 in
  let* symbol_layouts =
    list_size (return n_symbols) (gen_layout ~extent:24 ~max_boxes:10 ())
  in
  let* with_labels = bool in
  let symbols =
    List.mapi
      (fun i layout ->
        {
          Ace_cif.Ast.id = i + 1;
          name = None;
          elements =
            List.map (fun (lyr, bx) -> element_of_box lyr bx) layout
            @ (if with_labels then labels_for (Printf.sprintf "S%d_" i) layout
               else []);
        })
      symbol_layouts
  in
  let* n_calls = int_range 1 6 in
  let* calls =
    list_size (return n_calls)
      (let* sym = int_range 1 n_symbols in
       let* ops = gen_transform_ops in
       return (Ace_cif.Ast.Call { symbol = sym; ops }))
  in
  let* extra = gen_layout ~extent:80 ~min_boxes:0 ~max_boxes:6 () in
  let top =
    calls
    @ List.map (fun (lyr, bx) -> element_of_box lyr bx) extra
    @ if with_labels then labels_for "T" extra else []
  in
  return { Ace_cif.Ast.symbols; top_level = top }

let print_design file = Ace_cif.Writer.to_string file

(* Box centers must be integral for exact CIF round-trips: double all
   coordinates of a layout. *)
let even_layout layout =
  List.map
    (fun (lyr, (bx : Box.t)) ->
      ( lyr,
        Box.make ~l:(2 * bx.l) ~b:(2 * bx.b) ~r:(2 * bx.r) ~t:(2 * bx.t) ))
    layout

let circuit_equal ?with_sizes a b =
  match Ace_netlist.Compare.compare ?with_sizes a b with
  | Ace_netlist.Compare.Equivalent -> true
  | Ace_netlist.Compare.Distinct _ | Ace_netlist.Compare.Inconclusive _ ->
      false

(* Random abstract circuits (not from layout): for wirelist/SPICE/compare
   round-trip properties. *)
let gen_circuit =
  let open QCheck2.Gen in
  let* n_nets = int_range 2 10 in
  let* n_devs = int_range 0 12 in
  let* devices =
    list_size (return n_devs)
      (let* dtype =
         oneof [ return Nmos.Enhancement; return Nmos.Depletion ]
       in
       let* gate = int_range 0 (n_nets - 1) in
       let* source = int_range 0 (n_nets - 1) in
       let* drain = int_range 0 (n_nets - 1) in
       let* length = int_range 1 20 in
       let* width = int_range 1 20 in
       let* x = int_range (-100) 100 in
       let* y = int_range (-100) 100 in
       return
         {
           Ace_netlist.Circuit.dtype;
           gate;
           source;
           drain;
           length = length * 50;
           width = width * 50;
           location = Point.make x y;
           geometry = [];
         })
  in
  let* named = int_range 0 (min 3 (n_nets - 1)) in
  let nets =
    Array.init n_nets (fun i ->
        {
          Ace_netlist.Circuit.names =
            (if i < named then [ Printf.sprintf "SIG%d" i ] else []);
          location = Point.make i i;
          geometry = [];
        })
  in
  return
    {
      Ace_netlist.Circuit.name = "random";
      devices = Array.of_list devices;
      nets;
    }
