open Ace_geom
open Ace_tech
open Ace_netlist

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let design_of file = Ace_cif.Design.of_ast file
let flat design = Ace_core.Extractor.extract design

let hext ?leaf_limit ?memoize design =
  Ace_hext.Hext.extract_flat ?leaf_limit ?memoize design

let agree ?leaf_limit design =
  Tutil.circuit_equal ~with_sizes:true (flat design)
    (fst (hext ?leaf_limit design))

(* ------------------------------------------------------------------ *)
(* Content / partitioner                                                *)
(* ------------------------------------------------------------------ *)

let window_of_layout layout =
  let area =
    Option.get (Box.hull_list (List.map snd layout))
  in
  {
    Ace_hext.Content.area;
    items = List.map (fun (l, b) -> Ace_hext.Content.Geometry (l, b)) layout;
  }

let dummy_design = design_of { Ace_cif.Ast.symbols = []; top_level = [] }

let test_canonical_translation () =
  let layout = [ (Layer.Metal, Tutil.box ~l:0 ~b:0 ~r:4 ~t:4) ] in
  let moved = [ (Layer.Metal, Tutil.box ~l:100 ~b:50 ~r:104 ~t:54) ] in
  check "translates equal" true
    (Ace_hext.Content.canonical_equal
       (Ace_hext.Content.canonicalize (window_of_layout layout))
       (Ace_hext.Content.canonicalize (window_of_layout moved)));
  let different = [ (Layer.Poly, Tutil.box ~l:0 ~b:0 ~r:4 ~t:4) ] in
  check "layer matters" false
    (Ace_hext.Content.canonical_equal
       (Ace_hext.Content.canonicalize (window_of_layout layout))
       (Ace_hext.Content.canonicalize (window_of_layout different)))

let test_cut_avoids_contacts () =
  (* the only candidate x-cuts cross the contact: no vertical cut through
     it may be chosen *)
  let w =
    window_of_layout
      [
        (Layer.Metal, Tutil.box ~l:0 ~b:0 ~r:20 ~t:4);
        (Layer.Contact, Tutil.box ~l:8 ~b:1 ~r:12 ~t:3);
      ]
  in
  match Ace_hext.Content.choose_cut dummy_design w with
  | Some (Ace_hext.Content.Vertical x) -> check "outside contact" true (x <= 8 || x >= 12)
  | Some (Ace_hext.Content.Horizontal _) | None -> ()

let test_split_clips_geometry () =
  let w = window_of_layout [ (Layer.Metal, Tutil.box ~l:0 ~b:0 ~r:10 ~t:4) ] in
  let low, high = Ace_hext.Content.split dummy_design w (Ace_hext.Content.Vertical 6) in
  check_int "low boxes" 1 (Ace_hext.Content.box_count low);
  check_int "high boxes" 1 (Ace_hext.Content.box_count high);
  check_int "areas preserved" 10
    (Box.width low.Ace_hext.Content.area + Box.width high.Ace_hext.Content.area)

(* ------------------------------------------------------------------ *)
(* Fragment compose on hand-built windows                               *)
(* ------------------------------------------------------------------ *)

let test_compose_net_across_seam () =
  (* one metal bar crossing the seam of two windows *)
  let wa = Box.make ~l:0 ~b:0 ~r:10 ~t:10 in
  let wb = Box.make ~l:10 ~b:0 ~r:20 ~t:10 in
  let fa =
    Ace_hext.Fragment.leaf ~next_id:0 ~window:wa
      ~boxes:[ (Layer.Metal, Box.make ~l:2 ~b:4 ~r:10 ~t:6) ]
      ~labels:[]
  in
  let fb =
    Ace_hext.Fragment.leaf ~next_id:1 ~window:wb
      ~boxes:[ (Layer.Metal, Box.make ~l:10 ~b:4 ~r:18 ~t:6) ]
      ~labels:[]
  in
  let f = Ace_hext.Fragment.compose ~next_id:2 fa fb ~offset:(Point.make 10 0) in
  let top = Ace_hext.Fragment.finalize ~next_id:3 f in
  let h =
    {
      Hier.parts =
        [ fa.Ace_hext.Fragment.part; fb.Ace_hext.Fragment.part;
          f.Ace_hext.Fragment.part; { top with Hier.part_name = "Top" } ];
      top = "Top";
    }
  in
  let c = Hier.flatten h in
  check_int "single net after compose" 1 (Circuit.net_count c)

let test_compose_partial_transistor () =
  (* a transistor whose channel straddles the seam *)
  let wa = Box.make ~l:0 ~b:(-6) ~r:9 ~t:10 in
  let wb = Box.make ~l:9 ~b:(-6) ~r:20 ~t:10 in
  let boxes =
    [
      (Layer.Diffusion, Box.make ~l:0 ~b:0 ~r:20 ~t:4);
      (Layer.Poly, Box.make ~l:7 ~b:(-4) ~r:11 ~t:8);
    ]
  in
  let clip w =
    List.filter_map
      (fun (l, b) ->
        match Box.clip b ~window:w with Some c -> Some (l, c) | None -> None)
      boxes
  in
  let fa =
    Ace_hext.Fragment.leaf ~next_id:0 ~window:wa ~boxes:(clip wa) ~labels:[]
  in
  let fb =
    Ace_hext.Fragment.leaf ~next_id:1 ~window:wb ~boxes:(clip wb) ~labels:[]
  in
  check_int "a has a partial" 1 (List.length fa.Ace_hext.Fragment.partials);
  check_int "b has a partial" 1 (List.length fb.Ace_hext.Fragment.partials);
  check_int "a has no completed device" 0
    (List.length fa.Ace_hext.Fragment.part.Hier.devices);
  let f = Ace_hext.Fragment.compose ~next_id:2 fa fb ~offset:(Point.make 9 0) in
  check_int "knit completes the device" 1 (List.length f.Ace_hext.Fragment.part.Hier.devices);
  check_int "no partials left" 0 (List.length f.Ace_hext.Fragment.partials);
  (match f.Ace_hext.Fragment.part.Hier.devices with
  | [ d ] ->
      check_int "width" 4 d.Hier.width;
      check_int "length" 4 d.Hier.length
  | _ -> assert false);
  (* and the whole thing equals the flat extraction *)
  let top = Ace_hext.Fragment.finalize ~next_id:3 f in
  let h =
    {
      Hier.parts =
        [ fa.Ace_hext.Fragment.part; fb.Ace_hext.Fragment.part;
          f.Ace_hext.Fragment.part; { top with Hier.part_name = "Top" } ];
      top = "Top";
    }
  in
  check "matches flat" true
    (Tutil.circuit_equal ~with_sizes:true
       (Ace_core.Extractor.extract_boxes boxes)
       (Hier.flatten h))

(* ------------------------------------------------------------------ *)
(* Whole-design equivalence                                             *)
(* ------------------------------------------------------------------ *)

let test_workload_equivalence () =
  List.iter
    (fun (name, file) ->
      check name true (agree (design_of file)))
    [
      ("inverter", Ace_workloads.Chips.single_inverter ());
      ("chain10", Ace_workloads.Chips.inverter_chain ~n:10 ());
      ("four", Ace_workloads.Chips.four_inverters ());
      ("mesh7x9", Ace_workloads.Arrays.mesh ~rows:7 ~cols:9 ());
      ("tree64", Ace_workloads.Arrays.square_array_tree ~cells:64 ());
      ("random30", Ace_workloads.Chips.random_logic ~cells:30 ~seed:9 ());
      ("datapath3x4", Ace_workloads.Chips.datapath ~bits:3 ~stages:4 ());
    ]

let test_small_leaf_limit () =
  (* forcing tiny leaves exercises the splitter and seam logic hard *)
  let d = design_of (Ace_workloads.Chips.inverter_chain ~n:6 ()) in
  check "leaf_limit 4" true (agree ~leaf_limit:4 d);
  check "leaf_limit 1" true (agree ~leaf_limit:1 d)

let test_memoize_off_same_answer () =
  let d = design_of (Ace_workloads.Arrays.mesh ~rows:6 ~cols:6 ()) in
  let with_memo, s1 = hext d in
  let without, s2 = hext ~memoize:false d in
  check "same circuit" true (Tutil.circuit_equal ~with_sizes:true with_memo without);
  check "memo saves leaf work" true
    (s1.Ace_hext.Hext.leaf_extractions < s2.Ace_hext.Hext.leaf_extractions);
  check_int "no hits without memo" 0 s2.Ace_hext.Hext.window_hits

let test_ideal_array_stats () =
  (* HEXT §4: one leaf extraction, O(log N) composes for a 2^k × 2^k array *)
  let d = design_of (Ace_workloads.Arrays.square_array_tree ~cells:256 ()) in
  let _, stats = hext d in
  check_int "one unique leaf" 1 stats.Ace_hext.Hext.leaf_extractions;
  check "composes logarithmic" true (stats.Ace_hext.Hext.compose_calls <= 20)

let test_hier_wirelist_output () =
  let d = design_of (Ace_workloads.Chips.four_inverters ()) in
  let hier, _ = Ace_hext.Hext.extract d in
  check "hierarchy validates" true (Hier.validate hier = []);
  let text = Hier.to_string hier in
  let hier' = Hier.of_string text in
  check "round-trips" true
    (Tutil.circuit_equal ~with_sizes:true (Hier.flatten hier) (Hier.flatten hier'));
  check "matches flat" true
    (Tutil.circuit_equal ~with_sizes:true (Hier.flatten hier) (flat d))

let hext_cached ~cache design = Ace_hext.Hext.extract_flat ~cache design

let test_incremental_cache () =
  (* extract a datapath, then re-extract an edited version through the same
     cache: only the windows touched by the edit are re-analyzed *)
  let base = Ace_workloads.Chips.datapath ~bits:6 ~stages:8 () in
  let edited =
    {
      base with
      Ace_cif.Ast.top_level =
        base.Ace_cif.Ast.top_level
        @ [
            (* a decorative metal stub on one slice's rail *)
            Tutil.element_of_box Layer.Metal
              (Box.make ~l:1000 ~b:5000 ~r:1500 ~t:5750);
          ];
    }
  in
  let cache = Ace_hext.Hext.create_cache () in
  let c1, s1 = hext_cached ~cache (design_of base) in
  let c2, s2 = hext_cached ~cache (design_of edited) in
  check "cold run did real work" true (s1.Ace_hext.Hext.leaf_extractions > 0);
  check "warm run re-extracts almost nothing" true
    (s2.Ace_hext.Hext.leaf_extractions <= 4);
  check "warm run correct" true
    (Tutil.circuit_equal ~with_sizes:true (flat (design_of edited)) c2);
  check "base still correct" true
    (Tutil.circuit_equal ~with_sizes:true (flat (design_of base)) c1);
  (* unchanged design through the warm cache: zero extraction work *)
  let _, s3 = hext_cached ~cache (design_of base) in
  check_int "identical re-run extracts nothing" 0
    s3.Ace_hext.Hext.leaf_extractions;
  check_int "identical re-run composes nothing" 0 s3.Ace_hext.Hext.compose_calls

(* Regression cases found by randomized search (see EXPERIMENTS.md):
   1. abutting contact cuts from two mirrored instances merge into one
      bridging interval that a window seam must not sever;
   2. a transistor with three contact edges, two tied in length, where
      flat and hierarchical extraction must break the tie identically;
   3. tied contacts whose minimal edge positions coincide at a corner,
      where the edge-side code decides. *)
let regression_cases =
  [
    ( "abutting cuts across a seam",
      "DS 1 1 1; L ND; B 10 5 10 9; L NP; B 10 5 10 5; L NC; B 7 1 3 4; DF; \
       C 1 M X T 0 41; C 1 T 0 41; E" );
    ( "tied contact lengths",
      "DS 1 1 1; DF; DS 2 1 1; L NP; B 3 6 20 18; DF; DS 3 1 1; L ND; B 9 1 \
       17 14; L ND; B 1 11 16 10; L NP; B 3 9 21 11; L ND; B 9 2 15 9; DF; C \
       2 M X T 51 11; C 2 M X T 30 36; C 3 R 0 1 T 40 15; C 2 R 0 1 T 52 39; \
       L NM; B 5 1 76 78; L NP; B 7 11 41 58; E" );
    ( "corner-coincident tie positions",
      "DS 1 1 1; L NP; B 11 1 15 9; DF; DS 3 1 1; L NP; B 9 5 14 11; L ND; B \
       5 5 20 11; L NC; B 2 5 4 10; DF; C 1 T 32 47; C 3 R -1 0 T 12 60; C 1 \
       M X T 8 38; C 3 R 0 1 T 7 26; L NP; B 2 6 29 51; E" );
    ( "phantom-free conductor-less boundary cuts",
      (* abutting huge cuts from mirrored instances, one side's piece
         touching conductors only in some strips: a phantom bridge element
         would transitively merge nets the flat extractor keeps apart *)
      "DS 2 1 1; L NC; B 9 8 8 9; L NP; B 10 5 13 6; L NP; B 7 3 11 15; L \
       ND; B 5 12 16 12; L NP; B 5 6 9 15; DF; C 2 T 40 39; C 2 M X T 48 \
       41; E" );
    ( "label outside its instance's geometry",
      (* the rotated instance's label names geometry provided by the other
         instance; the label must stay inside its instance's bounding box
         under rotation or partitioning strands it *)
      "DS 3 1 1; L ND; B 12 11 9 17; 94 S2_1 22 1; DF; C 3 R 0 1 T 18 12; C \
       3 R 0 1 T 40 30; E" );
  ]

let test_regressions () =
  List.iter
    (fun (name, cif) ->
      let design = design_of (Ace_cif.Parser.parse_string cif) in
      check name true (agree design);
      check (name ^ " (names)") true
        (match
           Compare.compare ~with_sizes:true ~with_names:true (flat design)
             (fst (hext design))
         with
        | Compare.Equivalent -> true
        | Compare.Distinct _ | Compare.Inconclusive _ -> false);
      check (name ^ " (tiny leaves)") true (agree ~leaf_limit:3 design);
      (* the baselines must agree on the same layouts *)
      check (name ^ " (raster)") true
        (Tutil.circuit_equal ~with_sizes:true (flat design)
           (Ace_baseline.Raster.extract ~grid:1 design));
      check (name ^ " (region)") true
        (Tutil.circuit_equal ~with_sizes:true (flat design)
           (Ace_baseline.Region.extract design)))
    regression_cases

let prop_random_designs =
  Tutil.qtest ~count:150 "HEXT equals flat extraction on random hierarchies"
    Tutil.gen_design
    (fun file ->
      match design_of file with
      | exception Ace_cif.Design.Semantic_error _ -> true
      | design ->
          Tutil.circuit_equal ~with_sizes:true (flat design)
            (fst (hext design)))

let prop_random_designs_tiny_leaves =
  Tutil.qtest ~count:75 "HEXT with tiny leaves equals flat extraction"
    Tutil.gen_design
    (fun file ->
      match design_of file with
      | exception Ace_cif.Design.Semantic_error _ -> true
      | design ->
          Tutil.circuit_equal ~with_sizes:true (flat design)
            (fst (hext ~leaf_limit:3 design)))

let prop_random_designs_with_names =
  (* labels must attach to equivalent nets on both paths, even when the
     labelled point sits next to a window seam *)
  Tutil.qtest ~count:100 "HEXT attaches net names like the flat extractor"
    Tutil.gen_design
    (fun file ->
      match design_of file with
      | exception Ace_cif.Design.Semantic_error _ -> true
      | design -> (
          let a = flat design and b = fst (hext design) in
          match Compare.compare ~with_sizes:true ~with_names:true a b with
          | Compare.Equivalent -> true
          | Compare.Distinct _ | Compare.Inconclusive _ -> false))

let prop_random_flat_layouts =
  Tutil.qtest ~count:100 "HEXT on flat layouts equals scanline"
    (Tutil.gen_layout ~extent:60 ~max_boxes:40 ())
    (fun layout ->
      let file =
        {
          Ace_cif.Ast.symbols = [];
          top_level = List.map (fun (l, b) -> Tutil.element_of_box l b) layout;
        }
      in
      let design = design_of file in
      Tutil.circuit_equal ~with_sizes:true
        (Ace_core.Extractor.extract design)
        (fst (hext ~leaf_limit:6 design)))

let () =
  Alcotest.run "hext"
    [
      ( "content",
        [
          Alcotest.test_case "canonical translation" `Quick test_canonical_translation;
          Alcotest.test_case "cuts avoid contacts" `Quick test_cut_avoids_contacts;
          Alcotest.test_case "split clips" `Quick test_split_clips_geometry;
        ] );
      ( "fragment",
        [
          Alcotest.test_case "net across seam" `Quick test_compose_net_across_seam;
          Alcotest.test_case "partial transistor" `Quick test_compose_partial_transistor;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "workloads" `Quick test_workload_equivalence;
          Alcotest.test_case "small leaf limit" `Quick test_small_leaf_limit;
          Alcotest.test_case "memoize off" `Quick test_memoize_off_same_answer;
          Alcotest.test_case "ideal array stats" `Quick test_ideal_array_stats;
          Alcotest.test_case "hier wirelist output" `Quick test_hier_wirelist_output;
          Alcotest.test_case "incremental cache" `Quick test_incremental_cache;
          Alcotest.test_case "regressions" `Quick test_regressions;
          prop_random_designs;
          prop_random_designs_tiny_leaves;
          prop_random_designs_with_names;
          prop_random_flat_layouts;
        ] );
    ]
