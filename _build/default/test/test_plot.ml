open Ace_geom
open Ace_tech

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let count_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i acc =
    if i + nn > nh then acc
    else if String.sub hay i nn = needle then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

(* ------------------------------------------------------------------ *)
(* SVG                                                                  *)
(* ------------------------------------------------------------------ *)

let test_svg_structure () =
  let svg =
    Ace_plot.Svg.render_boxes
      [
        (Layer.Metal, Box.make ~l:0 ~b:0 ~r:1000 ~t:250);
        (Layer.Poly, Box.make ~l:0 ~b:500 ~r:1000 ~t:750);
      ]
  in
  check "well-formed open" true (contains svg "<svg xmlns");
  check "well-formed close" true (contains svg "</svg>");
  check_int "one rect per box plus background" 3 (count_substring svg "<rect");
  let metal_color, _ = Ace_plot.Svg.layer_color Layer.Metal in
  check "metal color present" true (contains svg metal_color)

let test_svg_labels () =
  let svg =
    Ace_plot.Svg.render_boxes
      ~labels:
        [ { Ace_cif.Design.name = "CLK"; position = Point.make 100 100; layer = None } ]
      [ (Layer.Metal, Box.make ~l:0 ~b:0 ~r:1000 ~t:250) ]
  in
  check "label text" true (contains svg ">CLK</text>")

let test_svg_design () =
  let d = Ace_cif.Design.of_ast (Ace_workloads.Chips.single_inverter ()) in
  let svg = Ace_plot.Svg.render d in
  check "labels drawn" true (contains svg ">VDD</text>");
  let boxes =
    Ace_cif.Design.count_boxes
      (Ace_cif.Design.of_ast (Ace_workloads.Chips.single_inverter ()))
  in
  check_int "one rect per box plus background" (boxes + 1)
    (count_substring svg "<rect")

let test_svg_empty () =
  let svg = Ace_plot.Svg.render_boxes [] in
  check "still a document" true (contains svg "</svg>")

(* ------------------------------------------------------------------ *)
(* ASCII                                                                *)
(* ------------------------------------------------------------------ *)

let test_ascii_dimensions () =
  let rows =
    Ace_plot.Ascii.render ~grid:250
      [ (Layer.Metal, Box.make ~l:0 ~b:0 ~r:1000 ~t:500) ]
  in
  check_int "two rows" 2 (List.length rows);
  check_int "four columns" 4 (String.length (List.hd rows));
  check "all metal" true (List.for_all (fun r -> r = "mmmm") rows)

let test_ascii_priority () =
  (* a transistor crossing shows as X, cut as #, buried as B *)
  let rows =
    Ace_plot.Ascii.render ~grid:250
      [
        (Layer.Diffusion, Box.make ~l:0 ~b:0 ~r:750 ~t:250);
        (Layer.Poly, Box.make ~l:250 ~b:0 ~r:500 ~t:250);
      ]
  in
  check "channel marked" true (List.hd rows = "dXd");
  let rows2 =
    Ace_plot.Ascii.render ~grid:250
      [
        (Layer.Diffusion, Box.make ~l:0 ~b:0 ~r:250 ~t:250);
        (Layer.Poly, Box.make ~l:0 ~b:0 ~r:250 ~t:250);
        (Layer.Buried, Box.make ~l:0 ~b:0 ~r:250 ~t:250);
      ]
  in
  check "buried contact marked" true (List.hd rows2 = "B")

let test_ascii_orientation () =
  (* the top of the chip is the first row *)
  let rows =
    Ace_plot.Ascii.render ~grid:250
      [
        (Layer.Metal, Box.make ~l:0 ~b:250 ~r:250 ~t:500);
        (Layer.Poly, Box.make ~l:0 ~b:0 ~r:250 ~t:250);
      ]
  in
  check "metal on top" true (rows = [ "m"; "p" ])

let test_ascii_inverter_figure () =
  (* the quickstart's Figure 3-3 rendering: check the signature rows *)
  let d = Ace_cif.Design.of_ast (Ace_workloads.Chips.single_inverter ()) in
  let rows = Ace_plot.Ascii.render_design d in
  check_int "26 rows for a 26-lambda cell" 26 (List.length rows);
  check "depletion channel row" true (List.mem "   ippXXppi   " rows);
  check "buried contact row" true (List.mem "   ippBBppi   " rows);
  check "enhancement row" true (List.mem "ppppppXXpp    " rows);
  check "rail with cut" true (List.mem "mmmmmm##mmmmmm" rows)

let () =
  Alcotest.run "plot"
    [
      ( "svg",
        [
          Alcotest.test_case "structure" `Quick test_svg_structure;
          Alcotest.test_case "labels" `Quick test_svg_labels;
          Alcotest.test_case "design" `Quick test_svg_design;
          Alcotest.test_case "empty" `Quick test_svg_empty;
        ] );
      ( "ascii",
        [
          Alcotest.test_case "dimensions" `Quick test_ascii_dimensions;
          Alcotest.test_case "priority" `Quick test_ascii_priority;
          Alcotest.test_case "orientation" `Quick test_ascii_orientation;
          Alcotest.test_case "inverter figure" `Quick test_ascii_inverter_figure;
        ] );
    ]
