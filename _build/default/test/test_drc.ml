open Ace_geom
open Ace_tech
open Ace_drc

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let lam = 250
let box ~l ~b ~r ~t = Box.make ~l:(l * lam) ~b:(b * lam) ~r:(r * lam) ~t:(t * lam)

let violations_of boxes = Checker.check_boxes boxes
let count rule vs = List.length (List.filter (fun v -> v.Checker.rule = rule) vs)

(* ------------------------------------------------------------------ *)
(* Clean layouts                                                        *)
(* ------------------------------------------------------------------ *)

let test_clean_cells () =
  List.iter
    (fun (name, file) ->
      let d = Ace_cif.Design.of_ast file in
      let vs = Checker.check d in
      Alcotest.check Alcotest.int
        (Printf.sprintf "%s is DRC-clean (%s)" name
           (String.concat "; "
              (List.map (Format.asprintf "%a" Checker.pp_violation) vs)))
        0 (List.length vs))
    [
      ("inverter", Ace_workloads.Chips.single_inverter ());
      ("chain4", Ace_workloads.Chips.inverter_chain ~n:4 ());
      ("four inverters", Ace_workloads.Chips.four_inverters ());
      ("mesh 4x4", Ace_workloads.Arrays.mesh ~rows:4 ~cols:4 ());
      ("datapath 2x3", Ace_workloads.Chips.datapath ~bits:2 ~stages:3 ());
    ]

let test_clean_gates () =
  List.iter
    (fun (name, cell) ->
      let b = Ace_workloads.Builder.create () in
      let sym = Ace_workloads.Builder.symbol b (cell b) in
      let file =
        Ace_workloads.Builder.file b
          [ Ace_workloads.Builder.call b sym ~dx:0 ~dy:0 ]
      in
      check name true (Checker.check (Ace_cif.Design.of_ast file) = []))
    [
      ("nand2", Ace_workloads.Cells.nand2 ~labels:false);
      ("nor2", Ace_workloads.Cells.nor2 ~labels:false);
    ]

(* ------------------------------------------------------------------ *)
(* Planted violations                                                   *)
(* ------------------------------------------------------------------ *)

let test_width_vertical () =
  let vs = violations_of [ (Layer.Metal, box ~l:0 ~b:0 ~r:1 ~t:20) ] in
  check_int "one width violation" 1 (count "width" vs)

let test_width_horizontal () =
  (* caught by the transposed pass *)
  let vs = violations_of [ (Layer.Metal, box ~l:0 ~b:0 ~r:20 ~t:1) ] in
  check_int "one width violation" 1 (count "width" vs)

let test_width_ok () =
  check_int "3-lambda metal is fine" 0
    (count "width" (violations_of [ (Layer.Metal, box ~l:0 ~b:0 ~r:3 ~t:20) ]))

let test_spacing () =
  let vs =
    violations_of
      [
        (Layer.Poly, box ~l:0 ~b:0 ~r:2 ~t:10);
        (Layer.Poly, box ~l:3 ~b:0 ~r:5 ~t:10) (* 1 lambda gap, need 2 *);
      ]
  in
  check_int "spacing flagged" 1 (count "spacing" vs);
  let ok =
    violations_of
      [
        (Layer.Poly, box ~l:0 ~b:0 ~r:2 ~t:10);
        (Layer.Poly, box ~l:4 ~b:0 ~r:6 ~t:10);
      ]
  in
  check_int "2-lambda gap is fine" 0 (count "spacing" ok)

let test_spacing_vertical () =
  let vs =
    violations_of
      [
        (Layer.Metal, box ~l:0 ~b:0 ~r:10 ~t:3);
        (Layer.Metal, box ~l:0 ~b:4 ~r:10 ~t:7) (* 1 lambda vertical gap *);
      ]
  in
  check "vertical spacing flagged" true (count "spacing" vs >= 1)

let test_notch () =
  (* a U whose inner notch is too narrow *)
  let vs =
    violations_of
      [
        (Layer.Metal, box ~l:0 ~b:0 ~r:3 ~t:10);
        (Layer.Metal, box ~l:4 ~b:0 ~r:7 ~t:10);
        (Layer.Metal, box ~l:0 ~b:0 ~r:7 ~t:3);
      ]
  in
  check "notch flagged as spacing" true (count "spacing" vs >= 1)

let test_cut_size () =
  let vs =
    violations_of
      [
        (Layer.Metal, box ~l:0 ~b:0 ~r:6 ~t:6);
        (Layer.Diffusion, box ~l:0 ~b:0 ~r:6 ~t:6);
        (Layer.Contact, box ~l:1 ~b:1 ~r:4 ~t:3) (* 3x2, must be 2x2 *);
      ]
  in
  check_int "cut size flagged" 1 (count "cut-size" vs)

let test_cut_surround () =
  (* metal flush with the cut on the left: no 1-lambda surround *)
  let vs =
    violations_of
      [
        (Layer.Metal, box ~l:2 ~b:0 ~r:6 ~t:6);
        (Layer.Diffusion, box ~l:0 ~b:0 ~r:6 ~t:6);
        (Layer.Contact, box ~l:2 ~b:2 ~r:4 ~t:4);
      ]
  in
  check "surround flagged" true (count "cut-surround" vs >= 1);
  let ok =
    violations_of
      [
        (Layer.Metal, box ~l:0 ~b:0 ~r:6 ~t:6);
        (Layer.Diffusion, box ~l:0 ~b:0 ~r:6 ~t:6);
        (Layer.Contact, box ~l:2 ~b:2 ~r:4 ~t:4);
      ]
  in
  check_int "proper surround passes" 0 (count "cut-surround" ok)

let test_gate_overhang () =
  (* poly ends flush with the channel edge *)
  let vs =
    violations_of
      [
        (Layer.Diffusion, box ~l:0 ~b:0 ~r:12 ~t:2);
        (Layer.Poly, box ~l:4 ~b:0 ~r:6 ~t:2) (* no overhang at all *);
      ]
  in
  check "overhang flagged" true (count "gate-overhang" vs >= 1);
  let ok =
    violations_of
      [
        (Layer.Diffusion, box ~l:0 ~b:0 ~r:12 ~t:2);
        (Layer.Poly, box ~l:4 ~b:(-2) ~r:6 ~t:4);
      ]
  in
  check_int "2-lambda overhang passes" 0 (count "gate-overhang" ok)

let test_coalescing () =
  (* a long thin wire is one violation, not one per strip *)
  let vs =
    violations_of
      [
        (Layer.Metal, box ~l:0 ~b:0 ~r:1 ~t:10);
        (Layer.Metal, box ~l:5 ~b:2 ~r:9 ~t:8) (* forces strip boundaries *);
      ]
  in
  check_int "one coalesced width violation" 1 (count "width" vs)

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)
(* ------------------------------------------------------------------ *)

let scale_layout layout =
  List.map
    (fun (lyr, (b : Box.t)) ->
      (lyr, Box.make ~l:(lam * b.l) ~b:(lam * b.b) ~r:(lam * b.r) ~t:(lam * b.t)))
    layout

let prop_translation_invariant =
  Tutil.qtest ~count:100 "violation count is translation invariant"
    QCheck2.Gen.(
      triple (Tutil.gen_layout ()) (int_range (-20) 20) (int_range (-20) 20))
    (fun (layout, dx, dy) ->
      let layout = scale_layout layout in
      let moved =
        List.map
          (fun (l, b) -> (l, Box.translate b ~dx:(lam * dx) ~dy:(lam * dy)))
          layout
      in
      List.length (violations_of layout) = List.length (violations_of moved))

let prop_transpose_symmetric =
  (* the x- and y-direction passes overlap, so box areas are not
     transpose-stable; the classes of violations found must be.  This
     catches direction-blindness bugs (a rule checked on one axis only). *)
  Tutil.qtest ~count:100 "violation classes are transpose invariant"
    (Tutil.gen_layout ())
    (fun layout ->
      let layout = scale_layout layout in
      let transposed =
        List.map
          (fun (l, (b : Box.t)) ->
            (l, Box.make ~l:b.b ~b:b.l ~r:b.t ~t:b.r))
          layout
      in
      let signature vs =
        List.sort_uniq Stdlib.compare
          (List.map (fun v -> (v.Checker.rule, v.Checker.layer)) vs)
      in
      signature (violations_of layout) = signature (violations_of transposed))

let prop_monotone =
  Tutil.qtest ~count:100 "adding far-away geometry never removes violations"
    (Tutil.gen_layout ())
    (fun layout ->
      let layout = scale_layout layout in
      let clean_far =
        (Layer.Metal, Box.make ~l:1000000 ~b:1000000 ~r:1001000 ~t:1001000)
      in
      List.length (violations_of (clean_far :: layout))
      >= List.length (violations_of layout))

let () =
  Alcotest.run "drc"
    [
      ( "clean",
        [
          Alcotest.test_case "workload cells" `Quick test_clean_cells;
          Alcotest.test_case "nand/nor" `Quick test_clean_gates;
        ] );
      ( "planted",
        [
          Alcotest.test_case "width vertical" `Quick test_width_vertical;
          Alcotest.test_case "width horizontal" `Quick test_width_horizontal;
          Alcotest.test_case "width ok" `Quick test_width_ok;
          Alcotest.test_case "spacing" `Quick test_spacing;
          Alcotest.test_case "vertical spacing" `Quick test_spacing_vertical;
          Alcotest.test_case "notch" `Quick test_notch;
          Alcotest.test_case "cut size" `Quick test_cut_size;
          Alcotest.test_case "cut surround" `Quick test_cut_surround;
          Alcotest.test_case "gate overhang" `Quick test_gate_overhang;
          Alcotest.test_case "coalescing" `Quick test_coalescing;
        ] );
      ( "properties",
        [ prop_translation_invariant; prop_transpose_symmetric; prop_monotone ] );
    ]
