open Ace_netlist

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let extract file = Ace_core.Extractor.extract (Ace_cif.Design.of_ast file)

let test_builder_guards () =
  check "odd lambda rejected" true
    (match Ace_workloads.Builder.create ~lambda:251 () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let b = Ace_workloads.Builder.create () in
  check "degenerate box rejected" true
    (match Ace_workloads.Builder.box b Ace_tech.Layer.Metal ~l:2 ~b:0 ~r:2 ~t_:4 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_inverter_counts () =
  let c = extract (Ace_workloads.Chips.single_inverter ()) in
  check_int "devices" 2 (Circuit.device_count c);
  check_int "nets" 4 (Circuit.net_count c);
  List.iter
    (fun name -> check name true (Circuit.find_net c name >= 0))
    [ "VDD"; "GND"; "INP"; "OUT" ]

let test_inverter_is_clean () =
  let c = extract (Ace_workloads.Chips.single_inverter ()) in
  let errors, warnings, _ =
    Ace_analysis.Static_check.summarize (Ace_analysis.Static_check.check c)
  in
  check_int "no errors" 0 errors;
  check_int "no warnings" 0 warnings

let test_chain_counts () =
  List.iter
    (fun n ->
      let c = extract (Ace_workloads.Chips.inverter_chain ~n ()) in
      check_int (Printf.sprintf "chain %d devices" n) (2 * n)
        (Circuit.device_count c);
      (* VDD + GND + INP + n internal/output nodes *)
      check_int (Printf.sprintf "chain %d nets" n) (n + 3) (Circuit.net_count c))
    [ 1; 2; 5; 9 ]

let test_chain_simulates () =
  let c =
    Ace_core.Extractor.extract
      (Ace_cif.Design.of_ast (Ace_workloads.Chips.inverter_chain ~n:4 ()))
  in
  let sim = Ace_analysis.Sim.create c ~vdd:"VDD" ~gnd:"GND" in
  match
    Ace_analysis.Sim.eval sim
      ~inputs:[ ("INP", Ace_analysis.Sim.Low) ]
      ~outputs:[ "OUT" ]
  with
  | Some [ (_, v) ] -> check "0 through 4 inverters" true (v = Ace_analysis.Sim.Low)
  | _ -> Alcotest.fail "simulation failed"

let test_four_inverters () =
  let c = extract (Ace_workloads.Chips.four_inverters ()) in
  check_int "devices" 8 (Circuit.device_count c);
  check "in and out named" true
    (Circuit.find_net c "in" >= 0 && Circuit.find_net c "out" >= 0)

let test_mesh_counts () =
  List.iter
    (fun (rows, cols) ->
      let c = extract (Ace_workloads.Arrays.mesh ~rows ~cols ()) in
      check_int
        (Printf.sprintf "mesh %dx%d devices" rows cols)
        (rows * cols) (Circuit.device_count c);
      check_int
        (Printf.sprintf "mesh %dx%d nets" rows cols)
        (rows + (cols * (rows + 1)))
        (Circuit.net_count c))
    [ (1, 1); (3, 5); (8, 8) ]

let test_tree_equals_mesh () =
  let tree = extract (Ace_workloads.Arrays.square_array_tree ~cells:64 ()) in
  let mesh = extract (Ace_workloads.Arrays.mesh ~rows:8 ~cols:8 ()) in
  check "same circuit" true (Tutil.circuit_equal ~with_sizes:true tree mesh)

let test_tree_validates_input () =
  check "non power of 4 rejected" true
    (match Ace_workloads.Arrays.square_array_tree ~cells:48 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_datapath_counts () =
  let c = extract (Ace_workloads.Chips.datapath ~bits:5 ~stages:7 ()) in
  check_int "devices" (2 * 5 * 7) (Circuit.device_count c)

let test_random_logic_deterministic () =
  let a = extract (Ace_workloads.Chips.random_logic ~cells:25 ~seed:42 ()) in
  let b = extract (Ace_workloads.Chips.random_logic ~cells:25 ~seed:42 ()) in
  check "same seed, same chip" true (Tutil.circuit_equal ~with_sizes:true a b);
  let c = extract (Ace_workloads.Chips.random_logic ~cells:25 ~seed:43 ()) in
  check_int "device count independent of seed" (Circuit.device_count a)
    (Circuit.device_count c)

let test_recipes_hit_targets () =
  List.iter
    (fun (r : Ace_workloads.Chips.recipe) ->
      let design = r.build ~scale:0.02 in
      let c = Ace_core.Extractor.extract design in
      let expected = float_of_int r.devices_target *. 0.02 in
      let got = float_of_int (Circuit.device_count c) in
      check
        (Printf.sprintf "%s devices within 2x of scaled target (%f vs %f)"
           r.chip_name expected got)
        true
        (got > expected /. 2.0 && got < expected *. 2.0))
    Ace_workloads.Chips.paper_suite

let test_comparison_suite_subset () =
  check_int "five chips" 5 (List.length Ace_workloads.Chips.comparison_suite);
  List.iter
    (fun (r : Ace_workloads.Chips.recipe) ->
      check r.chip_name true
        (List.exists
           (fun (p : Ace_workloads.Chips.recipe) -> p.chip_name = r.chip_name)
           Ace_workloads.Chips.paper_suite))
    Ace_workloads.Chips.comparison_suite

let test_nand_nor_extract () =
  let b = Ace_workloads.Builder.create () in
  let sym = Ace_workloads.Builder.symbol b (Ace_workloads.Cells.nand2 ~labels:true b) in
  let file = Ace_workloads.Builder.file b [ Ace_workloads.Builder.call b sym ~dx:0 ~dy:0 ] in
  let c = extract file in
  check_int "nand devices" 3 (Circuit.device_count c);
  let b2 = Ace_workloads.Builder.create () in
  let sym2 = Ace_workloads.Builder.symbol b2 (Ace_workloads.Cells.nor2 ~labels:true b2) in
  let file2 = Ace_workloads.Builder.file b2 [ Ace_workloads.Builder.call b2 sym2 ~dx:0 ~dy:0 ] in
  let c2 = extract file2 in
  check_int "nor devices" 3 (Circuit.device_count c2)

let test_nand_truth_table_extracted () =
  let b = Ace_workloads.Builder.create () in
  let sym = Ace_workloads.Builder.symbol b (Ace_workloads.Cells.nand2 ~labels:true b) in
  let file = Ace_workloads.Builder.file b [ Ace_workloads.Builder.call b sym ~dx:0 ~dy:0 ] in
  let c = extract file in
  let sim = Ace_analysis.Sim.create c ~vdd:"VDD" ~gnd:"GND" in
  List.iter
    (fun (a, bv, expect) ->
      match
        Ace_analysis.Sim.eval sim
          ~inputs:[ ("A", a); ("B", bv) ]
          ~outputs:[ "OUT" ]
      with
      | Some [ (_, v) ] -> check "nand row" true (v = expect)
      | _ -> Alcotest.fail "no result")
    Ace_analysis.Sim.
      [
        (Low, Low, High); (Low, High, High); (High, Low, High); (High, High, Low);
      ]

let test_pass_gate_extracts () =
  let b = Ace_workloads.Builder.create () in
  let sym = Ace_workloads.Builder.symbol b (Ace_workloads.Cells.pass_gate b) in
  let file =
    Ace_workloads.Builder.file b [ Ace_workloads.Builder.call b sym ~dx:0 ~dy:0 ]
  in
  let c = extract file in
  check_int "one device" 1 (Circuit.device_count c);
  check_int "three nets" 3 (Circuit.net_count c);
  let d = c.Circuit.devices.(0) in
  check "enhancement" true (d.dtype = Ace_tech.Nmos.Enhancement);
  check "gate distinct from data" true (d.gate <> d.source && d.gate <> d.drain)

let test_mesh_is_paper_worst_case_structure () =
  (* n poly lines crossing n diffusion lines: the paper's worst-case mesh
     grows devices quadratically while boxes grow linearly *)
  let devices n =
    Circuit.device_count (extract (Ace_workloads.Arrays.mesh ~rows:n ~cols:n ()))
  in
  check_int "4x devices for 2x side" (4 * devices 4) (devices 8)

let test_datapath_connectivity () =
  (* each slice is an independent chain; slices do not short together *)
  let c = extract (Ace_workloads.Chips.datapath ~bits:3 ~stages:4 ()) in
  let findings = Ace_analysis.Static_check.check c in
  (* rails are unnamed in the datapath, so only rail-skip infos appear *)
  check "no errors" true
    (List.for_all
       (fun (f : Ace_analysis.Static_check.finding) ->
         f.severity <> Ace_analysis.Static_check.Error)
       findings)

let test_chain_gate_recognition () =
  let c = extract (Ace_workloads.Chips.inverter_chain ~n:7 ()) in
  let r = Ace_analysis.Gates.recognize c in
  check_int "seven inverters" 7 (List.length r.Ace_analysis.Gates.gates)

let test_recipes_character () =
  List.iter
    (fun (name, character) ->
      let r =
        List.find
          (fun (r : Ace_workloads.Chips.recipe) -> r.chip_name = name)
          Ace_workloads.Chips.paper_suite
      in
      check (name ^ " character") true (r.character = character))
    [ ("testram", "regular"); ("schip2", "irregular"); ("psc", "mixed") ]

let () =
  Alcotest.run "workloads"
    [
      ( "builder",
        [ Alcotest.test_case "guards" `Quick test_builder_guards ] );
      ( "cells",
        [
          Alcotest.test_case "inverter counts" `Quick test_inverter_counts;
          Alcotest.test_case "inverter clean" `Quick test_inverter_is_clean;
          Alcotest.test_case "nand/nor extract" `Quick test_nand_nor_extract;
          Alcotest.test_case "nand truth table" `Quick test_nand_truth_table_extracted;
        ] );
      ( "chips",
        [
          Alcotest.test_case "chain counts" `Quick test_chain_counts;
          Alcotest.test_case "chain simulates" `Quick test_chain_simulates;
          Alcotest.test_case "four inverters" `Quick test_four_inverters;
          Alcotest.test_case "datapath counts" `Quick test_datapath_counts;
          Alcotest.test_case "random deterministic" `Quick test_random_logic_deterministic;
          Alcotest.test_case "recipes hit targets" `Quick test_recipes_hit_targets;
          Alcotest.test_case "comparison suite" `Quick test_comparison_suite_subset;
        ] );
      ( "arrays",
        [
          Alcotest.test_case "mesh counts" `Quick test_mesh_counts;
          Alcotest.test_case "tree equals mesh" `Quick test_tree_equals_mesh;
          Alcotest.test_case "tree input validation" `Quick test_tree_validates_input;
          Alcotest.test_case "worst-case mesh structure" `Quick
            test_mesh_is_paper_worst_case_structure;
        ] );
      ( "more-cells",
        [
          Alcotest.test_case "pass gate" `Quick test_pass_gate_extracts;
          Alcotest.test_case "datapath clean" `Quick test_datapath_connectivity;
          Alcotest.test_case "chain recognition" `Quick test_chain_gate_recognition;
          Alcotest.test_case "recipe characters" `Quick test_recipes_character;
        ] );
    ]
