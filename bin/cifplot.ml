(* cifplot — plot a CIF layout as SVG or ASCII (a homage to the Berkeley
   tool of ACE Table 5-2, which was plotter and extractor in one). *)

let run input output ascii grid scale strict max_errors diag_format trace =
  Cli_common.setup_trace trace;
  let loaded = Cli_common.load ~strict ~max_errors input in
  Cli_common.report ~format:diag_format ~tool:"cifplot" ~uri:input
    ~source:loaded.Cli_common.source loaded.diags;
  match loaded.design with
  | None -> exit 2
  | Some design ->
      (if ascii then
         let rows = Ace_plot.Ascii.render_design ~grid design in
         match output with
         | None -> print_string (Ace_plot.Ascii.to_string rows)
         | Some path ->
             Ace_plot.Svg.to_file path (Ace_plot.Ascii.to_string rows)
       else
         let svg = Ace_plot.Svg.render ~scale design in
         match output with
         | None -> print_string svg
         | Some path -> Ace_plot.Svg.to_file path svg);
      exit (Cli_common.exit_code ~diags:loaded.diags ~usable:true)

open Cmdliner

let input = Arg.(required & pos 0 (some string) None & info [] ~docv:"CIF")
let output = Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE")
let ascii = Arg.(value & flag & info [ "ascii" ] ~doc:"Character plot instead of SVG.")
let grid = Arg.(value & opt int 250 & info [ "grid" ] ~docv:"CU" ~doc:"Centimicrons per character (ASCII mode).")
let scale = Arg.(value & opt float 4.0 & info [ "px-per-lambda" ] ~docv:"PX" ~doc:"Pixels per λ (SVG mode).")

let cmd =
  Cmd.v
    (Cmd.info "cifplot" ~doc:"Plot a CIF layout (SVG or ASCII)")
    Term.(
      const run $ input $ output $ ascii $ grid $ scale $ Cli_common.strict_t
      $ Cli_common.max_errors_t $ Cli_common.diag_format_t
      $ Cli_common.trace_t)

let () = exit (Cmd.eval cmd)
