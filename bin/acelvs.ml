(* acelvs — layout-vs-schematic comparison on the shared CLI conventions.

   The layout side is a .cif layout (extracted in-process, optionally
   sharded with -j) or an already-extracted wirelist; the reference side
   is a SPICE-ish schematic netlist (Ace_lvs.Reference) or a wirelist.
   Exit codes follow wlcmp: 0 = clean, 1 = mismatch (or error
   diagnostics), 2 = unreadable input, 3 = inconclusive. *)

module Diag = Ace_diag.Diag
module Lvs = Ace_lvs

let fail_usage msg =
  prerr_endline ("acelvs: " ^ msg);
  exit 2

(* Layout side, exactly like acecheck: CIF by suffix, wirelist otherwise,
   CIF as the fallback for suffix-less files. *)
let load_layout ~strict ~max_errors ~jobs path =
  match Cli_common.read_input path with
  | Error d -> (None, "", [ d ])
  | Ok text ->
      let from_cif () =
        match Cli_common.load_text ~strict ~max_errors text with
        | None, diags -> (None, text, diags)
        | Some design, diags ->
            let name = Filename.basename path in
            (Some (Ace_core.Parallel.extract ~jobs ~name design), text, diags)
      in
      if Filename.check_suffix path ".cif" then from_cif ()
      else (
        match Ace_netlist.Wirelist.of_string text with
        | c -> (Some c, text, [])
        | exception Ace_netlist.Wirelist.Error _ -> from_cif ())

(* Hierarchical layout side: CIF through the hierarchical extractor, a
   Figure 2-2 wirelist through Hier.of_string.  Flat wirelists have no
   hierarchy to exploit; the caller falls back to the flat path. *)
let load_layout_hier ~strict ~max_errors path =
  match Cli_common.read_input path with
  | Error d -> (None, "", [ d ])
  | Ok text ->
      let from_cif () =
        match Cli_common.load_text ~strict ~max_errors text with
        | None, diags -> (None, text, diags)
        | Some design, diags ->
            let h, _ = Ace_hext.Hext.extract design in
            (Some h, text, diags)
      in
      if Filename.check_suffix path ".cif" then from_cif ()
      else (
        match Ace_netlist.Hier.of_string text with
        | h -> (Some h, text, [])
        | exception Ace_netlist.Hier.Error _ -> (None, text, []))

let load_reference ~format ~want_view ~vdd ~gnd path =
  match Cli_common.read_input path with
  | Error d -> (None, None, "", [ d ])
  | Ok text -> (
      let name = Filename.basename path in
      let verilog =
        match format with
        | `Verilog -> true
        | `Spice -> false
        | `Auto -> Filename.check_suffix path ".v"
      in
      if verilog then
        let c, diags = Lvs.Verilog.parse ~name ~vdd ~gnd text in
        (Some c, None, text, diags)
      else (
          match Lvs.Reference.load ~name ~gnd text with
          | Ok (c, diags) ->
              let view =
                if want_view then Lvs.Reference.hier_view ~name ~gnd text
                else None
              in
              (Some c, view, text, diags)
          | Error d -> (None, None, text, [ d ])))

let print_rules () =
  Printf.printf "%-26s %-8s %s\n" "CODE" "LEVEL" "SUMMARY";
  List.iter
    (fun (r : Ace_diag.Sarif.rule) ->
      Printf.printf "%-26s %-8s %s\n" r.id r.level r.summary)
    (Lvs.Report.sarif_rules ())

let run layout_path ref_path vdd gnd no_sizes tolerance strict max_errors
    diag_format baseline_file write_baseline list_rules stats jobs hier
    ref_format max_findings trace =
  Cli_common.setup_trace trace;
  if list_rules then begin
    print_rules ();
    exit 0
  end;
  if jobs < 1 then fail_usage "-j must be at least 1";
  if tolerance < 0. then fail_usage "--tolerance must be non-negative";
  if max_findings < 0 then fail_usage "--max-findings must be non-negative";
  let layout, layout_src, layout_diags =
    let flat () =
      let c, src, diags = load_layout ~strict ~max_errors ~jobs layout_path in
      (Option.map (fun c -> `Flat c) c, src, diags)
    in
    if hier then
      match load_layout_hier ~strict ~max_errors layout_path with
      | Some h, src, diags -> (Some (`Hier h), src, diags)
      | None, _, _ ->
          (* no exploitable hierarchy (flat wirelist, unreadable CIF):
             the flat path owns diagnostics and the verdict *)
          flat ()
    else flat ()
  in
  let reference, ref_view, ref_src, ref_diags =
    load_reference ~format:ref_format ~want_view:hier ~vdd ~gnd ref_path
  in
  let sarif = diag_format = Cli_common.Sarif in
  let rules = Lvs.Report.sarif_rules () in
  (match (layout, reference) with
  | Some _, Some _ -> ()
  | _ ->
      Cli_common.report ~format:diag_format ~tool:"acelvs" ~uri:layout_path
        ~rules
        (layout_diags @ ref_diags);
      exit 2);
  let layout = Option.get layout and reference = Option.get reference in
  if strict && List.exists Diag.is_error ref_diags then begin
    Cli_common.report ~format:diag_format ~tool:"acelvs" ~uri:ref_path ~rules
      ~source:ref_src (layout_diags @ ref_diags);
    exit 2
  end;
  let r, hier_stats =
    match layout with
    | `Hier h ->
        let hr =
          Lvs.Hier.run ~with_sizes:(not no_sizes) ~tolerance ~vdd ~gnd
            ~max_findings ~layout:h ~reference ?ref_view ()
        in
        (hr.Lvs.Hier.r, Some hr)
    | `Flat layout ->
        ( Lvs.Match.run ~with_sizes:(not no_sizes) ~tolerance ~vdd ~gnd
            ~max_findings ~layout ~reference (),
          None )
  in
  let fingerprinted =
    List.map (fun f -> (f, Lvs.Report.fingerprint f)) r.Lvs.Match.findings
  in
  let baseline =
    match baseline_file with
    | None -> Ace_lint.Baseline.empty
    | Some path -> (
        match Ace_lint.Baseline.load path with
        | Ok b -> b
        | Error m -> fail_usage m)
  in
  let kept, waived =
    List.partition
      (fun (_, fp) -> not (Ace_lint.Baseline.mem baseline fp))
      fingerprinted
  in
  (match write_baseline with
  | None -> ()
  | Some path ->
      let path =
        if path <> "" then path
        else
          match baseline_file with
          | Some p -> p
          | None ->
              fail_usage
                "--write-baseline needs a path (or --baseline to overwrite)"
      in
      Ace_lint.Baseline.save path
        (Ace_lint.Baseline.of_fingerprints (List.map snd fingerprinted)));
  let annotated =
    List.map (fun (f, fp) -> (Lvs.Report.to_diag f, fp)) kept
  in
  let fingerprint d = List.assq_opt d annotated in
  if sarif then
    (* SARIF is one complete log per run: everything in one call, located
       in the layout artifact (findings carry no source spans anyway). *)
    Cli_common.report ~format:diag_format ~tool:"acelvs" ~uri:layout_path
      ~rules ~fingerprint
      (layout_diags @ ref_diags @ List.map fst annotated)
  else begin
    Cli_common.report ~format:diag_format ~tool:"acelvs" ~source:layout_src
      layout_diags;
    Cli_common.report ~format:diag_format ~tool:"acelvs" ~source:ref_src
      ref_diags;
    Cli_common.report ~format:diag_format ~tool:"acelvs" ~rules ~fingerprint
      (List.map fst annotated)
  end;
  let effective_outcome =
    if kept = [] then Lvs.Match.Clean else r.Lvs.Match.outcome
  in
  let s = r.Lvs.Match.stats in
  let verdict =
    match effective_outcome with
    | Lvs.Match.Clean -> "clean"
    | Lvs.Match.Mismatch -> "MISMATCH"
    | Lvs.Match.Inconclusive -> "inconclusive"
  in
  let summary =
    Printf.sprintf
      "%s vs %s: %s — %d/%d devices, %d/%d nets (layout/reference), %d \
       findings%s"
      layout_path ref_path verdict s.Lvs.Match.layout_devices
      s.Lvs.Match.ref_devices s.Lvs.Match.layout_nets s.Lvs.Match.ref_nets
      (List.length kept)
      (match List.length waived with
      | 0 -> ""
      | n -> Printf.sprintf " (%d waived by baseline)" n)
  in
  (* SARIF owns stdout: human chatter moves to stderr. *)
  let oc = if sarif then stderr else stdout in
  Printf.fprintf oc "%s\n" summary;
  flush oc;
  if stats then begin
    Printf.eprintf
      "acelvs: %d devices matched, %d series/parallel reductions, %d \
       refinement rounds\n"
      s.Lvs.Match.matched s.Lvs.Match.reductions s.Lvs.Match.rounds;
    (match hier_stats with
    | Some hr ->
        Printf.eprintf
          "acelvs: hierarchical: %d cell matches, %d memo hits%s\n"
          hr.Lvs.Hier.cell_matches hr.Lvs.Hier.cell_hits
          (if hr.Lvs.Hier.fallback then " (fell back to flat compare)"
           else "")
    | None -> ());
    Cli_common.print_counters ()
  end;
  match effective_outcome with
  | Lvs.Match.Inconclusive -> exit 3
  | Lvs.Match.Mismatch -> exit 1
  | Lvs.Match.Clean ->
      exit
        (Cli_common.exit_code
           ~diags:
             (List.filter Diag.is_error
                (layout_diags @ ref_diags @ List.map fst annotated))
           ~usable:true)

open Cmdliner

let layout_path =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"LAYOUT" ~doc:"A .cif layout or an extracted wirelist.")

let ref_path =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"REFERENCE"
        ~doc:"The reference netlist: SPICE-ish (.sp) or a wirelist.")

let vdd = Arg.(value & opt string "VDD" & info [ "vdd" ] ~docv:"NAME")
let gnd = Arg.(value & opt string "GND" & info [ "gnd" ] ~docv:"NAME")

let no_sizes =
  Arg.(
    value & flag
    & info [ "no-sizes" ]
        ~doc:"Skip the transistor L/W audit (topology and multiplicity only).")

let tolerance =
  Arg.(
    value & opt float 0.
    & info [ "tolerance" ] ~docv:"FRAC"
        ~doc:
          "Relative L/W deviation allowed before a size mismatch is \
           reported, e.g. $(b,0.05) for 5%.  Reference sizes of 0 \
           (unspecified) are never checked.")

let baseline_file =
  Arg.(
    value
    & opt (some string) None
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:
          "Waiver baseline: findings whose fingerprints appear in $(docv) \
           are suppressed, so only new discrepancies are reported.")

let write_baseline =
  Arg.(
    value
    & opt ~vopt:(Some "") (some string) None
    & info [ "write-baseline" ] ~docv:"FILE"
        ~doc:
          "Write the fingerprints of every finding of this run to $(docv) \
           (use $(b,--write-baseline=FILE)); with no value, overwrite the \
           $(b,--baseline) file.")

let list_rules =
  Arg.(
    value & flag
    & info [ "list-rules" ]
        ~doc:"Print every stable lvs-* code with its level and summary, then \
              exit.")

let stats =
  Arg.(
    value & flag
    & info [ "s"; "stats" ]
        ~doc:
          "Print match/reduction/refinement telemetry and the counter table \
           on standard error.")

let jobs =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Extract CIF layout input with $(docv) parallel shards (see \
           $(b,ace -j)); ignored for wirelist input.")

let hier =
  Arg.(
    value & flag
    & info [ "hier" ]
        ~doc:
          "Compare hierarchically: match each distinct layout cell against \
           a reference subcircuit once, memoize the verdict, and verify \
           only the top-level glue.  Verdicts are identical to the flat \
           compare (any obstruction falls back to it); $(b,lvs-cell-*) \
           findings name cells that fail to match.  Needs a CIF layout or \
           a hierarchical wirelist, and a $(b,.SUBCKT)-structured SPICE \
           reference; degenerates gracefully to the flat compare \
           otherwise.")

let ref_format =
  Arg.(
    value
    & opt (enum [ ("auto", `Auto); ("spice", `Spice); ("verilog", `Verilog) ])
        `Auto
    & info [ "ref-format" ] ~docv:"FMT"
        ~doc:
          "Reference netlist dialect: $(b,spice) (SPICE-ish or CMU \
           wirelist), $(b,verilog) (structural Verilog with \
           $(b,not)/$(b,nand)/$(b,nor)/$(b,nmos) primitives lowered to \
           NMOS networks), or $(b,auto) (default: by file suffix, \
           $(b,.v) means verilog).")

let max_findings =
  Arg.(
    value & opt int 20
    & info [ "max-findings" ] ~docv:"N"
        ~doc:
          "Cap each per-code finding flood at $(docv), with an overflow \
           note ($(b,0) = unlimited).  Default 20.")

let cmd =
  Cmd.v
    (Cmd.info "acelvs"
       ~doc:
         "Layout-vs-schematic: compare an extracted layout against a \
          reference netlist by series/parallel reduction and seeded \
          partition refinement")
    Term.(
      const run $ layout_path $ ref_path $ vdd $ gnd $ no_sizes $ tolerance
      $ Cli_common.strict_t $ Cli_common.max_errors_t
      $ Cli_common.diag_format_t $ baseline_file $ write_baseline $ list_rules
      $ stats $ jobs $ hier $ ref_format $ max_findings $ Cli_common.trace_t)

let () = exit (Cmd.eval cmd)
