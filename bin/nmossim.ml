(* nmossim — switch-level simulation of an extracted layout, on the shared
   CLI conventions: --strict / --max-errors / --diag-format, diagnostics
   through Cli_common.report, exit 0 = clean, 1 = diagnostics or
   oscillation, 2 = unusable input. *)

module Diag = Ace_diag.Diag

let parse_assignment s =
  match String.index_opt s '=' with
  | Some i ->
      let name = String.sub s 0 i in
      let v = String.sub s (i + 1) (String.length s - i - 1) in
      let level =
        match v with
        | "0" -> Ok Ace_analysis.Sim.Low
        | "1" -> Ok Ace_analysis.Sim.High
        | "x" | "X" -> Ok Ace_analysis.Sim.Unknown
        | _ ->
            Error
              (Diag.errorf ~code:"usage" "bad level %S (use 0, 1 or X)" v)
      in
      Result.map (fun level -> (name, level)) level
  | None ->
      Error (Diag.errorf ~code:"usage" "bad assignment %S (use NET=0|1|X)" s)

let run input sets watches vdd gnd strict max_errors diag_format trace =
  Cli_common.setup_trace trace;
  let report = Cli_common.report ~format:diag_format ~tool:"nmossim" ~uri:input in
  match Cli_common.read_input input with
  | Error d ->
      report [ d ];
      exit 2
  | Ok text -> (
      match Cli_common.load_text ~strict ~max_errors text with
      | None, diags ->
          report ~source:text diags;
          exit 2
      | Some design, diags -> (
          let circuit =
            Ace_core.Parallel.extract ~jobs:1
              ~name:(Filename.basename input) design
          in
          match Ace_analysis.Sim.create_result circuit ~vdd ~gnd with
          | Error d ->
              report ~source:text (diags @ [ d ]);
              exit 2
          | Ok sim -> (
              let inputs, bad =
                List.partition_map
                  (fun s ->
                    match parse_assignment s with
                    | Ok a -> Left a
                    | Error d -> Right d)
                  sets
              in
              if bad <> [] then begin
                report ~source:text (diags @ bad);
                exit 2
              end;
              let outputs =
                if watches = [] then
                  (* default: every named net *)
                  List.filter_map
                    (fun i ->
                      match
                        circuit.Ace_netlist.Circuit.nets.(i)
                          .Ace_netlist.Circuit.names
                      with
                      | name :: _ -> Some name
                      | [] -> None)
                    (List.init
                       (Ace_netlist.Circuit.net_count circuit)
                       Fun.id)
                else watches
              in
              match Ace_analysis.Sim.eval sim ~inputs ~outputs with
              | exception Not_found ->
                  report ~source:text
                    (diags
                    @ [
                        Diag.error ~code:"unknown-net"
                          "a --set or --watch net name does not exist in the \
                           extracted circuit";
                      ]);
                  exit 2
              | Some values ->
                  report ~source:text diags;
                  List.iter
                    (fun (name, v) ->
                      Printf.printf "%s = %s\n" name
                        (Ace_analysis.Sim.level_to_string v))
                    values;
                  exit (Cli_common.exit_code ~diags ~usable:true)
              | None ->
                  report ~source:text
                    (diags
                    @ [
                        Diag.warning ~code:"oscillation"
                          "circuit did not settle (oscillation)";
                      ]);
                  exit 1)))

open Cmdliner

let input = Arg.(required & pos 0 (some string) None & info [] ~docv:"CIF" ~doc:"A .cif layout ($(b,-) for standard input).")
let sets = Arg.(value & opt_all string [] & info [ "set" ] ~docv:"NET=V" ~doc:"Force an input net (repeatable).")
let watches = Arg.(value & opt_all string [] & info [ "watch" ] ~docv:"NET" ~doc:"Nets to report (default: all named).")
let vdd = Arg.(value & opt string "VDD" & info [ "vdd" ] ~docv:"NAME")
let gnd = Arg.(value & opt string "GND" & info [ "gnd" ] ~docv:"NAME")

let cmd =
  Cmd.v
    (Cmd.info "nmossim" ~doc:"Switch-level simulation of an extracted NMOS layout")
    Term.(
      const run $ input $ sets $ watches $ vdd $ gnd $ Cli_common.strict_t
      $ Cli_common.max_errors_t $ Cli_common.diag_format_t
      $ Cli_common.trace_t)

let () = exit (Cmd.eval cmd)
