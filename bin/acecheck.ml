(* acecheck — static electrical checks on a layout or wirelist. *)

(* Returns the circuit (None = unrecoverable) plus front-end diagnostics. *)
let load ~strict ~max_errors path =
  match Cli_common.read_input path with
  | Error d -> (None, "", [ d ])
  | Ok text ->
      let from_cif () =
        match Cli_common.load_text ~strict ~max_errors text with
        | None, diags -> (None, text, diags)
        | Some design, diags ->
            let name = Filename.basename path in
            (Some (Ace_core.Extractor.extract ~name design), text, diags)
      in
      if Filename.check_suffix path ".cif" then from_cif ()
      else (
        match Ace_netlist.Wirelist.of_string text with
        | c -> (Some c, text, [])
        | exception Ace_netlist.Wirelist.Error _ ->
            (* fall back to CIF for suffix-less files *)
            from_cif ())

let run input vdd gnd verbose timing strict max_errors diag_format =
  let circuit, source, diags = load ~strict ~max_errors input in
  Cli_common.report ~format:diag_format ~source diags;
  match circuit with
  | None -> exit 2
  | Some circuit ->
      let findings = Ace_analysis.Static_check.check ~vdd ~gnd circuit in
      let errors, warnings, infos =
        Ace_analysis.Static_check.summarize findings
      in
      List.iter
        (fun (f : Ace_analysis.Static_check.finding) ->
          if verbose || f.severity <> Ace_analysis.Static_check.Info then
            Format.printf "%a@." (Ace_analysis.Static_check.pp_finding circuit) f)
        findings;
      Format.printf "%s: %d devices, %d nets — %d errors, %d warnings, %d infos@."
        input
        (Ace_netlist.Circuit.device_count circuit)
        (Ace_netlist.Circuit.net_count circuit)
        errors warnings infos;
      if timing then begin
        match Ace_analysis.Sta.analyze ~vdd ~gnd circuit with
        | Some r -> Format.printf "@.timing: %a" (Ace_analysis.Sta.pp_result circuit) r
        | None -> Format.printf "@.timing: no gates recognized@."
      end;
      if errors > 0 then exit 1
      else exit (Cli_common.exit_code ~diags ~usable:true)

open Cmdliner

let input = Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"A .cif layout or a wirelist.")
let vdd = Arg.(value & opt string "VDD" & info [ "vdd" ] ~docv:"NAME")
let gnd = Arg.(value & opt string "GND" & info [ "gnd" ] ~docv:"NAME")
let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Also print informational findings.")
let timing = Arg.(value & flag & info [ "timing" ] ~doc:"Run static timing analysis over the recognized gates.")

let cmd =
  Cmd.v
    (Cmd.info "acecheck" ~doc:"Static checker: ratio checks, malformed transistors, stuck signals")
    Term.(
      const run $ input $ vdd $ gnd $ verbose $ timing $ Cli_common.strict_t
      $ Cli_common.max_errors_t $ Cli_common.diag_format_t)

let () = exit (Cmd.eval cmd)
